package repro

// One benchmark per table/figure of the paper (see DESIGN.md's
// per-experiment index), plus ablation benchmarks for the design
// decisions DESIGN.md calls out. Swarm benchmarks run scaled-down
// configurations per iteration so `go test -bench=.` stays tractable;
// cmd/p2plab regenerates the full-size figures.

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/exp"
	"repro/internal/flow"
	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
)

// lanClass returns an unconstrained-ish link for protocol benchmarks.
func lanClass() topo.LinkClass {
	return topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond}
}

// BenchmarkFig1SchedulerScaling runs the Fig 1 workload (1000
// concurrent CPU-bound processes) under each scheduler model.
func BenchmarkFig1SchedulerScaling(b *testing.B) {
	for _, kind := range sched.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig(kind)
				res := sched.Run(cfg, sched.CPUBoundJobs(1000))
				if res.AvgExecTime() < time.Second {
					b.Fatal("implausible result")
				}
			}
		})
	}
}

// BenchmarkFig2MemoryPressure runs the Fig 2 workload (50
// memory-intensive processes, 2× RAM overcommit) under each scheduler.
func BenchmarkFig2MemoryPressure(b *testing.B) {
	for _, kind := range sched.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig(kind)
				res := sched.Run(cfg, sched.MemoryJobs(50))
				if !res.SwapUsed {
					b.Fatal("expected swap")
				}
			}
		})
	}
}

// BenchmarkFig3Fairness runs the Fig 3 workload (100 concurrent 5 s
// processes) and builds the completion CDF.
func BenchmarkFig3Fairness(b *testing.B) {
	for _, kind := range sched.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig(kind)
				res := sched.Run(cfg, sched.FairnessJobs(100))
				if len(res.FinishTimes()) != 100 {
					b.Fatal("missing finishers")
				}
			}
		})
	}
}

// BenchmarkBindInterception measures the emulated connect/close cycle
// with and without the BINDIP libc interception (the paper's
// 10.22 µs vs 10.79 µs microbenchmark).
func BenchmarkBindInterception(b *testing.B) {
	for _, intercept := range []bool{false, true} {
		name := "plain"
		if intercept {
			name = "intercepted"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.BindOverhead()
				if err != nil {
					b.Fatal(err)
				}
				if intercept && res.Intercepted <= res.Plain {
					b.Fatal("interception should cost more")
				}
			}
		})
	}
}

// BenchmarkFig6RuleScaling measures the real CPU cost of the linear
// IPFW-style rule scan at the paper's table sizes — the Go benchmark
// shows the same linear artifact the paper measured with ping.
func BenchmarkFig6RuleScaling(b *testing.B) {
	src := ip.MustParseAddr("10.0.0.1")
	dst := ip.MustParseAddr("10.0.0.2")
	for _, rules := range []int{100, 1000, 10000, 50000} {
		rs := netem.NewFillerTable(rules, netem.ClassifierLinear)
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := rs.Eval(src, dst)
				if v.Visited != rules {
					b.Fatal("scan short-circuited")
				}
			}
		})
	}
}

// BenchmarkFig6RuleScalingIndexed is the ablation: the hash-indexed
// classifier IPFW could not offer stays O(1) as the table grows.
func BenchmarkFig6RuleScalingIndexed(b *testing.B) {
	src := ip.MustParseAddr("10.0.0.1")
	dst := ip.MustParseAddr("10.0.0.2")
	for _, rules := range []int{100, 1000, 10000, 50000} {
		rs := netem.NewRuleSet()
		rs.AddCount(ip.NewPrefix(src, 32), ip.Prefix{})
		netem.PadFiller(rs, rules)
		ix := netem.NewIndexedRuleSet(rs)
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ix.Eval(src, dst)
				if v.Visited > 16 {
					b.Fatal("index degenerated")
				}
			}
		})
	}
}

// BenchmarkRuleEval is the baseline-tracked classifier comparison: one
// packet classification against a 50k-rule table through the unified
// RuleSet API, under the linear scan and under the incrementally
// maintained hash index. The ~1000× gap is what Config.Rules'
// Classifier option buys on the emulation hot path.
func BenchmarkRuleEval(b *testing.B) {
	src := ip.MustParseAddr("10.0.0.1")
	dst := ip.MustParseAddr("10.0.0.2")
	const rules = 50000
	for _, classifier := range []netem.Classifier{netem.ClassifierLinear, netem.ClassifierIndexed} {
		rs := netem.NewFillerTable(rules, classifier)
		rs.AddCount(ip.NewPrefix(src, 32), ip.Prefix{})
		b.Run(classifier.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := rs.Eval(src, dst)
				if len(v.Pipes) != 0 || v.Deny {
					b.Fatal("unexpected verdict")
				}
			}
		})
	}
}

// BenchmarkFig6PingSweep runs the end-to-end Fig 6 measurement (ping
// across the emulated stack with a padded firewall).
func BenchmarkFig6PingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.Fig6([]int{0, 25000, 50000}, 5, 1, netem.ClassifierLinear)
		if err != nil {
			b.Fatal(err)
		}
		if points[2].Stats.Avg < points[0].Stats.Avg {
			b.Fatal("rule cost vanished")
		}
	}
}

// BenchmarkFig7Topology builds the 2750-node Fig 7 topology on a
// 14-node cluster and measures the worked-example RTT.
func BenchmarkFig7Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig7(14, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.RTT < 850*time.Millisecond {
			b.Fatal("rtt below model")
		}
	}
}

// benchSwarm runs one scaled swarm per iteration and reports virtual
// seconds simulated per wall second.
func benchSwarm(b *testing.B, sp exp.SwarmParams) {
	b.Helper()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		out, err := exp.RunSwarm(sp)
		if err != nil {
			b.Fatal(err)
		}
		if !out.AllDone {
			b.Fatal("swarm incomplete")
		}
		virtual += time.Duration(out.EndedAt)
	}
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds(), "virtual-s/s")
}

// BenchmarkFig8Swarm runs the Fig 8 experiment at 1/4 scale (40
// clients, 4 MiB file, same DSL links and protocol parameters).
func BenchmarkFig8Swarm(b *testing.B) {
	sp := exp.Fig8Params().Scale(4)
	sp.StartInterval = 4 * time.Second
	benchSwarm(b, sp)
}

// BenchmarkFig9Folding runs the folding experiment (Fig 9) at 1/4
// scale for foldings 1 and 10.
func BenchmarkFig9Folding(b *testing.B) {
	for _, folding := range []int{1, 10} {
		b.Run(fmt.Sprintf("folding=%d", folding), func(b *testing.B) {
			sp := exp.Fig8Params().Scale(4)
			sp.StartInterval = 4 * time.Second
			sp.Folding = folding
			benchSwarm(b, sp)
		})
	}
}

// BenchmarkFig10Scale runs the scalability experiment (Figs 10 and 11)
// at 1/16 scale: 359 clients folded 32-per-physical-node.
func BenchmarkFig10Scale(b *testing.B) {
	sp := exp.Fig10Params().Scale(16)
	benchSwarm(b, sp)
}

// BenchmarkFig11Completions measures building the completion-count
// series from a finished swarm (the Fig 11 post-processing).
func BenchmarkFig11Completions(b *testing.B) {
	sp := exp.Fig10Params().Scale(32)
	out, err := exp.RunSwarm(sp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := exp.CompletionSeries(out.Completions)
		if s.Len() == 0 {
			b.Fatal("no completions")
		}
	}
}

// BenchmarkDHTScaling runs the Chord scaling experiment (extension E1)
// on a 32-node ring.
func BenchmarkDHTScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.DHTScaling([]int{32}, 100, 1)
		if err != nil {
			b.Fatal(err)
		}
		if points[0].AvgHops <= 0 {
			b.Fatal("no hops measured")
		}
	}
}

// BenchmarkChurnSwarm runs the churn experiment (extension E3).
func BenchmarkChurnSwarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cp := exp.DefaultChurnSwarmParams()
		cp.Clients = 12
		cp.FileSize = 1 << 20
		out, err := exp.RunChurnSwarm(cp)
		if err != nil {
			b.Fatal(err)
		}
		if out.StableDone == 0 {
			b.Fatal("no completions")
		}
	}
}

// BenchmarkGossipSpread runs the epidemic dissemination experiment
// (extension E6) on a 64-node population.
func BenchmarkGossipSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := exp.GossipSpread(64, 3, lanClass(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if pt.Coverage < 1 {
			b.Fatal("incomplete coverage")
		}
	}
}

// --- Ablation and substrate microbenchmarks ---

// BenchmarkKernelModes compares the two ways to schedule work on the
// virtual-time kernel (DESIGN.md decision 1): goroutine park/wake
// versus pure event callbacks.
func BenchmarkKernelModes(b *testing.B) {
	b.Run("goroutines", func(b *testing.B) {
		k := sim.New(1)
		k.Go("worker", func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("events", func(b *testing.B) {
		k := sim.New(1)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < b.N {
				k.After(time.Microsecond, tick)
			}
		}
		k.After(time.Microsecond, tick)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkKernelQueues compares the kernel's two event-queue
// implementations under sustained depth: N outstanding timers, each
// rescheduling itself at a random offset. Queue depth is where the
// calendar queue's O(1) push/pop beats the heap's O(log n).
func BenchmarkKernelQueues(b *testing.B) {
	kinds := []struct {
		name string
		kind sim.QueueKind
	}{
		{"heap", sim.QueueHeap},
		{"calendar", sim.QueueCalendar},
	}
	for _, q := range kinds {
		for _, depth := range []int{1024, 32768} {
			b.Run(fmt.Sprintf("%s/depth=%d", q.name, depth), func(b *testing.B) {
				k := sim.NewWithQueue(1, q.kind)
				rng := rand.New(rand.NewSource(1))
				fired := 0
				for i := 0; i < depth; i++ {
					var fn func()
					fn = func() {
						fired++
						if fired+depth <= b.N {
							k.After(time.Duration(1+rng.Intn(1000))*time.Microsecond, fn)
						}
					}
					k.After(time.Duration(1+rng.Intn(1000))*time.Microsecond, fn)
				}
				if err := k.Run(); err != nil {
					b.Fatal(err)
				}
				if fired < b.N && fired != depth {
					b.Fatalf("fired %d events, want >= %d", fired, b.N)
				}
			})
		}
	}
}

// BenchmarkSweep runs a 4-cell scheduler sweep through the worker
// pool; on a multi-core runner the parallel variant should approach
// the wall time of its slowest cell.
func BenchmarkSweep(b *testing.B) {
	grid := exp.Grid{Experiment: exp.ExpSched, Peers: []int{100, 200, 300, 400}}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.RunSweep(grid, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != 0 {
					b.Fatal(res.Errs())
				}
			}
		})
	}
}

// BenchmarkPipeGranularity compares message-level pipe charging
// (DESIGN.md decision 2) against packet-chunked charging (1500-byte
// MTU) for a 16 KiB block.
func BenchmarkPipeGranularity(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := netem.PipeConfig{Bandwidth: 2 * netem.Mbps, Delay: 30 * time.Millisecond}
	b.Run("message", func(b *testing.B) {
		k := sim.New(1)
		p := netem.NewPipe(k, "m", cfg)
		at := sim.Time(0)
		for i := 0; i < b.N; i++ {
			exit, _ := p.ScheduleAt(at, 16384, rng)
			at = exit
		}
	})
	b.Run("packets", func(b *testing.B) {
		k := sim.New(1)
		p := netem.NewPipe(k, "p", cfg)
		at := sim.Time(0)
		for i := 0; i < b.N; i++ {
			var exit sim.Time
			for sent := 0; sent < 16384; sent += 1500 {
				chunk := 16384 - sent
				if chunk > 1500 {
					chunk = 1500
				}
				exit, _ = p.ScheduleAt(at, chunk, rng)
			}
			at = exit
		}
	})
}

// runFlowChurn drives the flow engine through steady-state churn of
// ~1k concurrent flows: every completion immediately starts a
// replacement, so each op is one departure plus one arrival.
// components=1 puts the whole population on one shared bottleneck;
// components=64 spreads it across disjoint bottlenecks, where the
// component scoping keeps each re-solve at ~16 flows.
func runFlowChurn(b *testing.B, comps int, window time.Duration) {
	const population = 1024
	k := sim.New(1)
	m := flow.NewWithConfig(k, flow.Config{Window: window})
	rng := rand.New(rand.NewSource(1))
	links := make([]*netem.Pipe, comps)
	for i := range links {
		links[i] = netem.NewPipe(k, fmt.Sprintf("l%d", i),
			netem.PipeConfig{Bandwidth: 100 * netem.Mbps})
	}
	completed := 0
	var spawn func(i int)
	spawn = func(i int) {
		size := 32*1024 + rng.Intn(256*1024)
		m.Transfer(k.Now(), size, []*netem.Pipe{links[i%comps]}, k.Rand(),
			func(_ sim.Time, ok bool) {
				if !ok {
					b.Fail()
					return
				}
				completed++
				if completed < b.N {
					spawn(i)
				} else {
					k.Stop()
				}
			})
	}
	for i := 0; i < population; i++ {
		spawn(i)
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	st := m.Stats()
	b.ReportMetric(float64(st.SolvedFlows)/float64(st.Started+st.Completed), "flows/churn-op")
}

// BenchmarkFlowChurn measures the batched max-min solver (DESIGN.md
// decisions 5 and 8) on the fast path: a 250 ms re-rate window drains
// each window's worth of churn in one solve, so per-churn-event work
// tracks the affected component and the batching factor, not the
// population. The flows/churn-op metric is the incrementality
// measure the bench gate watches.
func BenchmarkFlowChurn(b *testing.B) {
	for _, comps := range []int{1, 64} {
		b.Run(fmt.Sprintf("components=%d", comps), func(b *testing.B) {
			runFlowChurn(b, comps, 250*time.Millisecond)
		})
	}
}

// BenchmarkFlowChurnWindow sweeps the batch window on the shared
// bottleneck (the solver's worst case): window=0 is the per-event
// legacy path, the positive windows show how the amortization scales.
func BenchmarkFlowChurnWindow(b *testing.B) {
	for _, window := range []time.Duration{0, 50 * time.Millisecond, 250 * time.Millisecond} {
		b.Run(fmt.Sprintf("window=%s", window), func(b *testing.B) {
			runFlowChurn(b, 1, window)
		})
	}
}

// BenchmarkPipeScheduleAt measures the per-message cost of the pipe
// model in isolation.
func BenchmarkPipeScheduleAt(b *testing.B) {
	k := sim.New(1)
	p := netem.NewPipe(k, "b", netem.PipeConfig{Bandwidth: netem.Gbps, Delay: time.Millisecond})
	rng := rand.New(rand.NewSource(1))
	at := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exit, _ := p.ScheduleAt(at, 1500, rng)
		at = exit
	}
}

// BenchmarkBencode measures tracker-response encoding/decoding.
func BenchmarkBencode(b *testing.B) {
	peers := make([]any, 50)
	for i := range peers {
		peers[i] = map[string]any{"ip": "10.0.0.1", "port": int64(6881)}
	}
	resp := map[string]any{"interval": int64(1800), "peers": peers}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bt.Bencode(resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	enc, _ := bt.Bencode(resp)
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bt.Bdecode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPieceVerification compares real SHA-1 verification
// (MemStorage) against sparse tag verification (SparseStorage) — the
// trade-off behind DESIGN.md decision 4.
func BenchmarkPieceVerification(b *testing.B) {
	data := make([]byte, bt.DefaultPieceLength)
	rand.New(rand.NewSource(1)).Read(data)
	meta, err := bt.CreateTorrent("bench", data, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sha1", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			s := bt.NewMemStorage(meta)
			for off := 0; off < len(data); off += bt.BlockLength {
				s.WriteBlock(0, off, data[off:off+bt.BlockLength], 0)
			}
			if ok, _ := s.CompletePiece(0); !ok {
				b.Fatal("verify failed")
			}
		}
	})
	sparseMeta, _ := bt.SyntheticTorrent("bench", bt.DefaultPieceLength, 0)
	b.Run("sparse", func(b *testing.B) {
		b.SetBytes(int64(bt.DefaultPieceLength))
		for i := 0; i < b.N; i++ {
			s := bt.NewSparseStorage(sparseMeta)
			for off := 0; off < bt.DefaultPieceLength; off += bt.BlockLength {
				s.WriteBlock(0, off, nil, bt.BlockLength)
			}
			if ok, _ := s.CompletePiece(0); !ok {
				b.Fatal("verify failed")
			}
		}
	})
}

// BenchmarkPickerRarestFirst measures piece selection over a 1024-piece
// torrent with 40 known peers.
func BenchmarkPickerRarestFirst(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pk := bt.NewPicker(1024, rng)
	pk.RandomFirstThreshold = 0
	for p := 0; p < 40; p++ {
		bf := bt.NewBitfield(1024)
		for i := 0; i < 1024; i++ {
			if rng.Intn(2) == 0 {
				bf.Set(i)
			}
		}
		pk.AddBitfield(bf)
	}
	have := bt.NewBitfield(1024)
	peerHas := bt.Full(1024)
	none := func(int) bool { return false }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pk.Pick(have, peerHas, none) < 0 {
			b.Fatal("no pick")
		}
	}
}

// SwarmScaleParams is the configuration the swarm-scale family runs: a
// flash crowd of n campus-link leechers on an 8 MB sparse torrent,
// horizon-bounded so an iteration measures the join + transfer
// machinery per wall second rather than waiting out the virtual tail.
func swarmScaleParams(n int) exp.SwarmParams {
	seeders := n / 200
	if seeders < 4 {
		seeders = 4
	}
	return exp.SwarmParams{
		Clients:       n,
		Seeders:       seeders,
		FileSize:      8 * 1024 * 1024,
		StartInterval: time.Millisecond,
		Class:         topo.Campus,
		Seed:          1,
		Horizon:       2 * time.Minute,
	}
}

// BenchmarkSwarmScale runs a horizon-bounded megaswarm and reports
// peers/sec (emulated peers per wall-clock second — the paper's
// headline "how many clients fit on this hardware" number, ROADMAP
// item 1) and bytes/peer (verified payload per peer inside the
// horizon, a sanity check that the swarm actually transfers instead of
// idling). The 10k point is the gate: the bt hot-loop refactor must
// hold ≥5x the pre-refactor peers/sec there.
func BenchmarkSwarmScale(b *testing.B) {
	// The swarm kernel is strictly serial and its steady-state live heap
	// is small next to its allocation rate, so the default GOGC=100
	// spends a measurable slice of the run re-marking the same client
	// state. Trading heap headroom for fewer cycles is the intended
	// deployment configuration for dedicated emulation hosts (README
	// "Megaswarm"); megaswarm applies the same setting.
	old := debug.SetGCPercent(400)
	defer debug.SetGCPercent(old)
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			params := swarmScaleParams(n)
			for i := 0; i < b.N; i++ {
				start := time.Now()
				out, err := exp.RunSwarm(params)
				if err != nil {
					b.Fatal(err)
				}
				elapsed := time.Since(start).Seconds()
				var bytes int64
				for _, e := range out.Pieces {
					bytes += e.Bytes
				}
				if bytes == 0 {
					b.Fatal("swarm moved no data")
				}
				b.ReportMetric(float64(n)/elapsed, "peers/sec")
				b.ReportMetric(float64(bytes)/float64(n), "bytes/peer")
			}
		})
	}
}

// BenchmarkSnapshotSync runs the snapshot-sync family — the inverse of
// the megaswarm regime: 4 clients pull a 32 MiB file in 2 MiB pieces
// over 5 connections each, with a web seed behind the swarm, under the
// flow model with a 250 ms re-rate window. Variants cover the uncapped
// baseline, symmetric 256 KiB/s token-bucket caps (the limiter, not
// the link, is the bottleneck) and the seederless cold CDN fill. The
// reported virtual-s/s tracks the cost of the rate-limiter pumps and
// the web-seed request path on top of the swarm machinery.
func BenchmarkSnapshotSync(b *testing.B) {
	base := exp.SnapshotSyncParams{
		Clients:       4,
		Seeders:       1,
		WebSeeds:      1,
		FileSize:      32 << 20,
		PieceLength:   2 << 20,
		ConnCap:       5,
		StartInterval: time.Second,
		Class:         topo.FastDSL,
		Model:         netem.ModelFlow,
		Window:        250 * time.Millisecond,
		Seed:          1,
		Horizon:       time.Hour,
	}
	variants := []struct {
		name string
		mut  func(*exp.SnapshotSyncParams)
	}{
		{"uncapped", func(*exp.SnapshotSyncParams) {}},
		{"capped", func(p *exp.SnapshotSyncParams) { p.UpRate, p.DownRate = 256<<10, 256<<10 }},
		{"coldfill", func(p *exp.SnapshotSyncParams) { p.Seeders = 0 }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			params := base
			v.mut(&params)
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				out, err := exp.RunSnapshotSync(params)
				if err != nil {
					b.Fatal(err)
				}
				if !out.AllDone {
					b.Fatal("snapshot sync incomplete")
				}
				virtual += time.Duration(out.EndedAt)
			}
			b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds(), "virtual-s/s")
		})
	}
}

// BenchmarkObsHot measures the obs-registry update cost paid on the
// vnet transmit path when observability is attached: a counter bump
// and a histogram observation per message-sized unit of work, plus the
// nil-instrument variant every uninstrumented run pays instead. The
// regression gate is allocs/op == 0 for all three — hot-path metric
// updates must stay pure memory writes (DESIGN.md decision 9).
func BenchmarkObsHot(b *testing.B) {
	reg := obs.NewRegistry()
	sent := reg.Counter("p2plab_net_messages_sent_total", "")
	bytes := reg.Counter("p2plab_net_bytes_delivered_total", "")
	ttfp := reg.Histogram("p2plab_bt_time_to_first_peer_seconds", "", bt.TTFPBuckets)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sent.Inc()
			bytes.Add(1460)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ttfp.Observe(float64(i&1023) / 8)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var c *obs.Counter
		var h *obs.Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			c.Add(1460)
			h.Observe(1)
		}
	})
}
