// Command benchjson converts `go test -bench` output into a stable
// JSON document, and diffs two such documents. It backs the
// benchmark-regression harness: scripts/bench_baseline.sh records
// BENCH_baseline.json, and future changes diff against it with
//
//	go test -run=NONE -bench ... -benchmem . | go run ./cmd/benchjson > new.json
//	go run ./cmd/benchjson -diff BENCH_baseline.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one recorded benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // "ns/op", "B/op", "allocs/op", custom units
}

// Document is the recorded trajectory of one bench run.
type Document struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two recorded documents (old new) instead of converting stdin")
	tolerance := flag.Float64("tolerance", 0.25, "with -diff: fail if ns/op regresses by more than this fraction")
	ratioSpec := flag.String("ratio", "", "with -diff: comma-separated name=max pairs pinning new/old ns/op per benchmark (prefix match, overrides -tolerance)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two files, got %d", flag.NArg()))
		}
		ratios, err := parseRatios(*ratioSpec)
		if err != nil {
			fatal(err)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *tolerance, ratios); err != nil {
			fatal(err)
		}
		return
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName/sub-8   123456   71.2 ns/op   24 B/op   1 allocs/op
func parse(f *os.File) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) > 0 {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool { return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name })
	return doc, nil
}

func load(path string) (map[string]Benchmark, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Benchmark, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// parseRatios reads comma-separated name=max pairs. Names match
// benchmarks by prefix, so a spec can omit the -N GOMAXPROCS suffix go
// test appends to parallel benchmark names.
func parseRatios(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(spec, ",") {
		eq := strings.LastIndex(pair, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("-ratio entry %q is not name=max", pair)
		}
		max, err := strconv.ParseFloat(pair[eq+1:], 64)
		if err != nil || max <= 0 {
			return nil, fmt.Errorf("-ratio entry %q: max must be a positive number", pair)
		}
		out[pair[:eq]] = max
	}
	return out, nil
}

// ratioFor returns the longest-prefix -ratio spec matching name.
func ratioFor(ratios map[string]float64, name string) (float64, bool) {
	best := -1
	var max float64
	for prefix, m := range ratios {
		if strings.HasPrefix(name, prefix) && len(prefix) > best {
			best, max = len(prefix), m
		}
	}
	return max, best >= 0
}

// runDiff prints old vs new per shared benchmark and exits nonzero if
// any ns/op regression exceeds the tolerance, or any -ratio-pinned
// benchmark exceeds its new/old ceiling. Every -ratio spec must match
// at least one shared benchmark — a gate that matches nothing is a
// misconfiguration, not a pass.
func runDiff(oldPath, newPath string, tolerance float64, ratios map[string]float64) error {
	oldB, err := load(oldPath)
	if err != nil {
		return err
	}
	newB, err := load(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldB))
	for name := range oldB {
		if _, ok := newB[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}
	regressed := 0
	matched := map[string]bool{}
	fmt.Printf("%-55s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := oldB[name].Metrics["ns/op"], newB[name].Metrics["ns/op"]
		if o == 0 {
			continue
		}
		delta := (n - o) / o
		flag := ""
		if max, ok := ratioFor(ratios, name); ok {
			matched[name] = true
			if n > max*o {
				flag = fmt.Sprintf("  REGRESSED (ratio %.2f > %.2f)", n/o, max)
				regressed++
			}
		} else if delta > tolerance {
			flag = "  REGRESSED"
			regressed++
		}
		fmt.Printf("%-55s %14.1f %14.1f %+7.1f%%%s\n", name, o, n, 100*delta, flag)
	}
	for prefix := range ratios {
		found := false
		for name := range matched {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-ratio %s matched no shared benchmark", prefix)
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond their bounds", regressed)
	}
	return nil
}
