// Command btlab runs a configurable BitTorrent swarm experiment on the
// emulated platform and prints per-client completion statistics.
//
// Usage:
//
//	btlab -clients 160 -seeders 4 -size 16 -interval 10s
//	btlab -clients 320 -folding 32 -out swarm.dat
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/topo"
)

func main() {
	clients := flag.Int("clients", 160, "number of downloading clients")
	seeders := flag.Int("seeders", 4, "number of initial seeders")
	sizeMB := flag.Int64("size", 16, "file size in MiB")
	interval := flag.Duration("interval", 10*time.Second, "client start interval")
	folding := flag.Int("folding", 0, "virtual nodes per physical node (0 = no cluster layer)")
	phys := flag.Int("phys", 0, "physical node count (0 = computed)")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	horizon := flag.Duration("horizon", 4*time.Hour, "virtual-time cap")
	link := flag.String("link", "dsl", "access link class: dsl, modem, slow-dsl, fast-dsl, campus, office, lan")
	out := flag.String("out", "", "write cumulative-data series to this .dat file")
	flag.Parse()

	class, ok := map[string]topo.LinkClass{
		"dsl": topo.DSL, "modem": topo.Modem, "slow-dsl": topo.SlowDSL,
		"fast-dsl": topo.FastDSL, "campus": topo.Campus, "office": topo.Office,
		"lan": topo.LAN,
	}[*link]
	if !ok {
		fmt.Fprintf(os.Stderr, "btlab: unknown link class %q\n", *link)
		os.Exit(1)
	}

	sp := exp.SwarmParams{
		Clients:       *clients,
		Seeders:       *seeders,
		FileSize:      *sizeMB << 20,
		StartInterval: *interval,
		Class:         class,
		Folding:       *folding,
		PhysNodes:     *phys,
		Seed:          *seed,
		Horizon:       *horizon,
	}
	wall := time.Now()
	outcome, err := exp.RunSwarm(sp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btlab:", err)
		os.Exit(1)
	}

	var finished []float64
	for _, c := range outcome.Completions {
		if c > 0 {
			finished = append(finished, c.Seconds())
		}
	}
	sum := metrics.Summarize(finished)
	fmt.Printf("swarm: %d clients, %d seeders, %d MiB, start interval %v, folding %d\n",
		*clients, *seeders, *sizeMB, *interval, *folding)
	fmt.Printf("completed: %d/%d clients\n", len(finished), *clients)
	fmt.Printf("completion time: min %.0fs  median %.0fs  p90 %.0fs  max %.0fs\n",
		sum.Min, sum.Median, sum.P90, sum.Max)
	fmt.Printf("virtual time: %v   wall time: %v   kernel events: %d\n",
		time.Duration(outcome.EndedAt), time.Since(wall).Round(time.Millisecond), outcome.Kernel.Events)
	fmt.Printf("network: %d messages, %.1f MiB delivered\n",
		outcome.Net.MessagesDelivered, float64(outcome.Net.BytesDelivered)/(1<<20))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btlab:", err)
			os.Exit(1)
		}
		defer f.Close()
		total := exp.TotalReceivedSeries("total-received-MB", outcome.Pieces)
		completions := exp.CompletionSeries(outcome.Completions)
		if err := metrics.WriteDat(f, metrics.Downsample(total, 500), completions); err != nil {
			fmt.Fprintln(os.Stderr, "btlab:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
