// Command netlab exercises the network-emulation layer: the firewall
// rule-scaling measurement (Fig 6) and the topology latency check
// (Fig 7).
//
// Usage:
//
//	netlab -mode rules -max 50000 -step 10000
//	netlab -mode topology
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/metrics"
)

func main() {
	mode := flag.String("mode", "rules", "experiment: rules (Fig 6) or topology (Fig 7)")
	max := flag.Int("max", 50000, "rules mode: maximum rule count")
	step := flag.Int("step", 10000, "rules mode: rule count step")
	pings := flag.Int("pings", 10, "pings per measurement")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	flag.Parse()

	switch *mode {
	case "rules":
		var counts []int
		for n := 0; n <= *max; n += *step {
			counts = append(counts, n)
		}
		points, err := exp.Fig6(counts, *pings, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netlab:", err)
			os.Exit(1)
		}
		table := metrics.Table{Header: []string{"rules", "rtt avg", "rtt min", "rtt max"}}
		for _, pt := range points {
			table.AddRow(fmt.Sprint(pt.Rules),
				pt.Stats.Avg.String(), pt.Stats.Min.String(), pt.Stats.Max.String())
		}
		fmt.Println("round-trip time vs firewall rules (linear IPFW evaluation)")
		table.Render(os.Stdout)
	case "topology":
		res, err := exp.Fig7(14, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netlab:", err)
			os.Exit(1)
		}
		fmt.Printf("Fig 7 topology: %d virtual nodes in 5 groups over 3 regions\n", res.Hosts)
		fmt.Printf("ping 10.1.3.207 -> 10.2.2.117\n")
		fmt.Printf("  measured RTT:      %v\n", res.RTT)
		fmt.Printf("  model RTT:         %v\n", res.ModelRTT)
		fmt.Printf("  emulation overhead: %v\n", res.Overhead)
		fmt.Printf("decomposition (one way): %v egress + %v inter-group + %v ingress\n",
			res.EgressDelay, res.GroupDelay, res.IngressDelay)
	default:
		fmt.Fprintf(os.Stderr, "netlab: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}
