// Command netlab exercises the network-emulation layer: the firewall
// rule-scaling measurement (Fig 6) and the topology latency check
// (Fig 7).
//
// Usage:
//
//	netlab -mode rules -max 50000 -step 10000
//	netlab -mode topology
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/netem"
)

func main() {
	mode := flag.String("mode", "rules", "experiment: rules (Fig 6) or topology (Fig 7)")
	max := flag.Int("max", 50000, "rules mode: maximum rule count")
	step := flag.Int("step", 10000, "rules mode: rule count step")
	pings := flag.Int("pings", 10, "pings per measurement")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	classifierName := flag.String("classifier", "linear", "rules mode: packet classifier (linear, indexed)")
	flag.Parse()

	classifier, err := netem.ParseClassifier(*classifierName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netlab:", err)
		os.Exit(1)
	}

	switch *mode {
	case "rules":
		if *step < 1 || *max < 0 {
			fmt.Fprintln(os.Stderr, "netlab: -step must be at least 1 and -max non-negative")
			os.Exit(2)
		}
		var counts []int
		for n := 0; n <= *max; n += *step {
			counts = append(counts, n)
		}
		points, err := exp.Fig6(counts, *pings, *seed, classifier)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netlab:", err)
			os.Exit(1)
		}
		table := metrics.Table{Header: []string{"rules", "rtt avg", "rtt min", "rtt max"}}
		for _, pt := range points {
			table.AddRow(fmt.Sprint(pt.Rules),
				pt.Stats.Avg.String(), pt.Stats.Min.String(), pt.Stats.Max.String())
		}
		fmt.Printf("round-trip time vs firewall rules (%s classifier)\n", classifier)
		table.Render(os.Stdout)
	case "topology":
		if classifier != netem.ClassifierLinear {
			fmt.Fprintln(os.Stderr, "netlab: -classifier applies only to rules mode")
			os.Exit(2)
		}
		res, err := exp.Fig7(14, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netlab:", err)
			os.Exit(1)
		}
		fmt.Printf("Fig 7 topology: %d virtual nodes in 5 groups over 3 regions\n", res.Hosts)
		fmt.Printf("ping 10.1.3.207 -> 10.2.2.117\n")
		fmt.Printf("  measured RTT:      %v\n", res.RTT)
		fmt.Printf("  model RTT:         %v\n", res.ModelRTT)
		fmt.Printf("  emulation overhead: %v\n", res.Overhead)
		fmt.Printf("decomposition (one way): %v egress + %v inter-group + %v ingress\n",
			res.EgressDelay, res.GroupDelay, res.IngressDelay)
	default:
		fmt.Fprintf(os.Stderr, "netlab: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}
