// Command p2plab regenerates any table or figure of the paper and
// writes gnuplot-compatible .dat files plus a text summary, runs
// parameter-grid sweeps across the experiment families, and runs named
// scenarios from the committed corpus.
//
// Usage:
//
//	p2plab -fig 8 -out results/
//	p2plab -fig 9 -scale 10          # scaled-down folding sweep
//	p2plab -fig all -out results/
//	p2plab sweep -exp dht -peers 8,16,32 -class lan,dsl -seeds 1,2,3
//	p2plab sweep -exp swarm -peers 8,16 -churn 0,0.3 -workers 4 -out results/
//	p2plab sweep -exp scenario -scenario flash-crowd,churn-storm -seeds 1,2
//	p2plab sweep -exp snapshot-sync -pieces 1048576,2097152 -conncap 3,5 -rate 0,65536
//	p2plab list                      # the scenario catalogue
//	p2plab run transatlantic-partition-heal
//	p2plab run -spec my-scenario.json -trace 40
//	p2plab serve -addr 127.0.0.1:8080  # HTTP experiment service
//
// Figure ids: 1, 2, 3, bind, 6, 6x (indexed ablation), 7, 8, 9, 10, 11.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/netem"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "sweep":
			if err := sweepMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "run":
			if err := runMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "list":
			if err := listMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "serve":
			if err := serveMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
	}
	fig := flag.String("fig", "all", "figure to regenerate (1,2,3,bind,6,6x,7,8,9,10,11,all)")
	out := flag.String("out", "results", "output directory for .dat and .txt files")
	scale := flag.Int("scale", 1, "divide swarm experiment size by this factor")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	modelName := flag.String("model", "pipe", "link model for swarm experiments (pipe, flow)")
	rules := flag.Int("rules", 0, "pad the network firewall with this many filler rules (swarm figures; 0 = no firewall)")
	classifierName := flag.String("classifier", "linear", "firewall packet classifier (linear, indexed; figures 6 and 8-11)")
	flag.Parse()

	model, err := netem.ParseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	classifier, err := netem.ParseClassifier(*classifierName)
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = []string{"1", "2", "3", "bind", "6", "6x", "7", "8", "9", "10", "11", "dht", "churn", "gossip"}
	}
	if err := validateFirewallFlags(ids, *rules, classifier); err != nil {
		fatal(err)
	}
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("== figure %s ==\n", id)
		if err := run(id, *out, *scale, *seed, model, *rules, classifier); err != nil {
			fatal(fmt.Errorf("figure %s: %w", id, err))
		}
		fmt.Printf("   done in %v\n", time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2plab:", err)
	os.Exit(1)
}

// figVariant suffixes a figure id with the firewall parameters so a
// variant run does not silently overwrite the baseline artifacts with
// indistinguishable files; the note is appended to the plot title.
func figVariant(id string, rules int, classifier netem.Classifier) (variant, note string) {
	variant = id
	if rules > 0 {
		variant += fmt.Sprintf("-rules%d", rules)
		note += fmt.Sprintf(", %d firewall rules", rules)
	}
	if classifier != netem.ClassifierLinear {
		variant += "-" + classifier.String()
		note += ", " + classifier.String() + " classifier"
	}
	return variant, note
}

// validateFirewallFlags rejects -rules/-classifier on figure sets they
// cannot affect — silently running without the requested firewall
// would misrepresent the output, the same misuse the sweep axes
// reject.
func validateFirewallFlags(ids []string, rules int, classifier netem.Classifier) error {
	rulesApply, classifierApplies := false, false
	for _, id := range ids {
		switch id {
		case "8", "9", "10", "11", "churn":
			rulesApply = true
			if rules > 0 {
				classifierApplies = true
			}
		case "6":
			// Fig 6 sweeps its own rule counts; only the classifier
			// choice reaches it.
			classifierApplies = true
		}
	}
	if rules > 0 && !rulesApply {
		return fmt.Errorf("-rules applies only to the swarm figures (8, 9, 10, 11, churn)")
	}
	if classifier != netem.ClassifierLinear && !classifierApplies {
		return fmt.Errorf("-classifier needs -fig 6 or a swarm figure with -rules > 0")
	}
	return nil
}

// seriesNames extracts curve titles for plot scripts.
func seriesNames(series []*metrics.Series) []string {
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	return names
}

func writeDat(dir, name string, series ...*metrics.Series) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.WriteDat(f, series...)
}

// writePlot emits a gnuplot script that renders a .dat file the way the
// paper's figures look (one curve per index block).
func writePlot(dir, figID, datName, title, xlabel, ylabel string, curves []string, withLines bool) error {
	var b strings.Builder
	fmt.Fprintf(&b, "set title %q\n", title)
	fmt.Fprintf(&b, "set xlabel %q\nset ylabel %q\n", xlabel, ylabel)
	fmt.Fprintf(&b, "set key bottom right\nset grid\n")
	fmt.Fprintf(&b, "set terminal pngcairo size 900,600\nset output %q\n", "fig"+figID+".png")
	style := "points pt 7 ps 0.3"
	if withLines {
		style = "lines lw 2"
	}
	fmt.Fprint(&b, "plot ")
	for i, c := range curves {
		if i > 0 {
			fmt.Fprint(&b, ", \\\n     ")
		}
		fmt.Fprintf(&b, "%q index %d with %s title %q", datName, i, style, c)
	}
	fmt.Fprintln(&b)
	return os.WriteFile(filepath.Join(dir, "fig"+figID+".gp"), []byte(b.String()), 0o644)
}

func run(id, out string, scale int, seed int64, model netem.ModelKind, rules int, classifier netem.Classifier) error {
	switch id {
	case "1":
		series := exp.Fig1(nil, seed)
		if err := writePlot(out, "1", "fig1.dat",
			"Average per-process execution time (CPU-bound)",
			"number of concurrent processes", "seconds",
			seriesNames(series), true); err != nil {
			return err
		}
		return writeDat(out, "fig1.dat", series...)
	case "2":
		series := exp.Fig2(nil, seed)
		if err := writePlot(out, "2", "fig2.dat",
			"Average per-process execution time (memory-bound)",
			"number of concurrent processes", "seconds",
			seriesNames(series), true); err != nil {
			return err
		}
		return writeDat(out, "fig2.dat", series...)
	case "3":
		series := exp.Fig3(100, seed)
		if err := writePlot(out, "3", "fig3.dat",
			"CDF of completion times, 100 concurrent 5s processes",
			"process execution time (s)", "F(x)",
			seriesNames(series), true); err != nil {
			return err
		}
		return writeDat(out, "fig3.dat", series...)
	case "bind":
		res, err := exp.BindOverhead()
		if err != nil {
			return err
		}
		fmt.Printf("   connect/close cycle: %v plain, %v intercepted (+%v)\n",
			res.Plain, res.Intercepted, res.Overhead())
		return os.WriteFile(filepath.Join(out, "bind.txt"),
			[]byte(fmt.Sprintf("plain %v\nintercepted %v\noverhead %v\n",
				res.Plain, res.Intercepted, res.Overhead())), 0o644)
	case "6":
		points, err := exp.Fig6(nil, 10, seed, classifier)
		if err != nil {
			return err
		}
		for _, pt := range points {
			fmt.Printf("   %6d rules: rtt avg %v (min %v, max %v)\n",
				pt.Rules, pt.Stats.Avg, pt.Stats.Min, pt.Stats.Max)
		}
		fig6series := exp.Fig6Series(points)
		vid, note := figVariant("6", 0, classifier)
		if err := writePlot(out, vid, "fig"+vid+".dat",
			"Round-trip time vs number of firewall rules"+note,
			"number of rules to evaluate", "time (ms)",
			seriesNames(fig6series), true); err != nil {
			return err
		}
		return writeDat(out, "fig"+vid+".dat", fig6series...)
	case "6x":
		series := exp.Fig6Indexed(nil)
		return writeDat(out, "fig6_indexed.dat", series...)
	case "7":
		res, err := exp.Fig7(14, seed)
		if err != nil {
			return err
		}
		fmt.Printf("   measured RTT %v (model %v, overhead %v) over %d hosts\n",
			res.RTT, res.ModelRTT, res.Overhead, res.Hosts)
		return os.WriteFile(filepath.Join(out, "fig7.txt"),
			[]byte(fmt.Sprintf("rtt %v\nmodel %v\noverhead %v\nhosts %d\n",
				res.RTT, res.ModelRTT, res.Overhead, res.Hosts)), 0o644)
	case "8":
		sp := exp.Fig8Params().Scale(scale)
		sp.Seed = seed
		sp.Model = model
		sp.Rules = rules
		sp.Classifier = classifier
		outcome, err := exp.RunSwarm(sp)
		if err != nil {
			return err
		}
		report(outcome)
		var series []*metrics.Series
		for i, prog := range outcome.PerClient {
			s := exp.ProgressSeries(fmt.Sprintf("client-%d", i), prog, outcome.Meta.Length)
			series = append(series, metrics.Downsample(s, 200))
		}
		vid, note := figVariant("8", rules, classifier)
		if err := writePlot(out, vid, "fig"+vid+".dat",
			"Evolution of the download on each client"+note,
			"time (s)", "percentage of the file transferred",
			[]string{"clients"}, false); err != nil {
			return err
		}
		return writeDat(out, "fig"+vid+".dat", series...)
	case "9":
		sp := exp.Fig8Params().Scale(scale)
		sp.Seed = seed
		sp.Model = model
		sp.Rules = rules
		sp.Classifier = classifier
		foldings := exp.Fig9Foldings
		if scale > 1 {
			foldings = []int{1, 4, 8}
		}
		series, outcomes, err := exp.Fig9(sp, foldings)
		if err != nil {
			return err
		}
		for i, o := range outcomes {
			fmt.Printf("   folding %d: ", foldings[i])
			report(o)
		}
		ds := make([]*metrics.Series, len(series))
		for i, s := range series {
			ds[i] = metrics.Downsample(s, 400)
		}
		vid, note := figVariant("9", rules, classifier)
		if err := writePlot(out, vid, "fig"+vid+".dat",
			"Total amount of data received by the nodes"+note,
			"time (s)", "data received (MB)",
			seriesNames(ds), true); err != nil {
			return err
		}
		return writeDat(out, "fig"+vid+".dat", ds...)
	case "10", "11":
		sp := exp.Fig10Params().Scale(scale)
		sp.Seed = seed
		sp.Model = model
		sp.Rules = rules
		sp.Classifier = classifier
		outcome, err := exp.RunSwarm(sp)
		if err != nil {
			return err
		}
		report(outcome)
		if id == "10" {
			// The paper plots every 50th client.
			var series []*metrics.Series
			for i := 49; i < len(outcome.PerClient); i += 50 {
				s := exp.ProgressSeries(fmt.Sprintf("client-%d", i+1),
					outcome.PerClient[i], outcome.Meta.Length)
				series = append(series, metrics.Downsample(s, 200))
			}
			if len(series) == 0 { // tiny scaled runs
				for i, prog := range outcome.PerClient {
					series = append(series, exp.ProgressSeries(
						fmt.Sprintf("client-%d", i+1), prog, outcome.Meta.Length))
				}
			}
			vid, _ := figVariant("10", rules, classifier)
			return writeDat(out, "fig"+vid+".dat", series...)
		}
		vid, note := figVariant("11", rules, classifier)
		if err := writePlot(out, vid, "fig"+vid+".dat",
			"Clients having completed the download"+note,
			"time (s)", "number of clients",
			[]string{"number of clients"}, true); err != nil {
			return err
		}
		return writeDat(out, "fig"+vid+".dat", exp.CompletionSeries(outcome.Completions))
	case "dht":
		points, err := exp.DHTScaling(nil, 200, seed)
		if err != nil {
			return err
		}
		for _, pt := range points {
			fmt.Printf("   %4d nodes: %.2f avg hops, %v avg latency\n",
				pt.Nodes, pt.AvgHops, pt.AvgLatency)
		}
		byClass, err := exp.DHTLocality(seed)
		if err != nil {
			return err
		}
		for _, name := range []string{"lan", "campus", "dsl", "modem"} {
			pt := byClass[name]
			fmt.Printf("   32 nodes on %-7s %.2f hops, %v avg latency\n",
				name, pt.AvgHops, pt.AvgLatency)
		}
		return writeDat(out, "dht.dat", exp.DHTScalingSeries(points))
	case "churn":
		cp := exp.DefaultChurnSwarmParams()
		cp.Seed = seed
		cp.Model = model
		cp.Rules = rules
		cp.Classifier = classifier
		outcome, err := exp.RunChurnSwarm(cp)
		if err != nil {
			return err
		}
		fmt.Printf("   stable clients: %d/%d done; churners: %d/%d done; %d arrivals, %d departures\n",
			outcome.StableDone, outcome.StableTotal, outcome.ChurnDone, outcome.ChurnTotal,
			outcome.Arrivals, outcome.Departures)
		cid, _ := figVariant("churn", rules, classifier)
		return os.WriteFile(filepath.Join(out, cid+".txt"),
			[]byte(fmt.Sprintf("stable %d/%d\nchurners %d/%d\narrivals %d\ndepartures %d\n",
				outcome.StableDone, outcome.StableTotal, outcome.ChurnDone, outcome.ChurnTotal,
				outcome.Arrivals, outcome.Departures)), 0o644)
	case "gossip":
		points, err := exp.GossipFanoutSweep(64, nil, seed)
		if err != nil {
			return err
		}
		for _, pt := range points {
			fmt.Printf("   %v\n", pt)
		}
		return writeDat(out, "gossip.dat", exp.GossipSweepSeries(points)...)
	default:
		return fmt.Errorf("unknown figure id %q", id)
	}
}

func report(o *exp.SwarmOutcome) {
	done := 0
	var last float64
	for _, c := range o.Completions {
		if c > 0 {
			done++
			if c.Seconds() > last {
				last = c.Seconds()
			}
		}
	}
	fmt.Printf("   %d/%d clients done, last at %.0fs (kernel: %d events, %d switches)\n",
		done, len(o.Completions), last, o.Kernel.Events, o.Kernel.Switches)
}
