package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netem"
)

// The command's subcommand entry points are plain functions, so the
// binary can be smoke-tested end to end without exec-ing itself:
// each test drives a tiny grid or scenario into a temp directory.

func TestSweepSmoke(t *testing.T) {
	out := t.TempDir()
	err := sweepMain([]string{
		"-exp", "gossip", "-peers", "8", "-seeds", "1", "-workers", "2", "-out", out,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(out, "sweep.csv"))
	if err != nil {
		t.Fatalf("sweep.csv: %v", err)
	}
	if !strings.Contains(string(data), "coverage") {
		t.Errorf("sweep.csv missing gossip metrics:\n%s", data)
	}
}

func TestSweepScenarioSmoke(t *testing.T) {
	out := t.TempDir()
	err := sweepMain([]string{
		"-exp", "scenario", "-scenario", "gossip-partition", "-seeds", "1", "-out", out,
	})
	if err != nil {
		t.Fatalf("scenario sweep: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(out, "sweep.csv"))
	if err != nil {
		t.Fatalf("sweep.csv: %v", err)
	}
	if !strings.Contains(string(data), "gossip-partition") {
		t.Errorf("sweep.csv missing scenario label:\n%s", data)
	}
}

func TestSweepPingSmoke(t *testing.T) {
	out := t.TempDir()
	err := sweepMain([]string{
		"-exp", "ping", "-rules", "0,2000", "-classifier", "linear,indexed",
		"-workers", "2", "-out", out,
	})
	if err != nil {
		t.Fatalf("ping sweep: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(out, "sweep.csv"))
	if err != nil {
		t.Fatalf("sweep.csv: %v", err)
	}
	for _, want := range []string{"rtt-avg-ms", "indexed", "2000"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("sweep.csv missing %q:\n%s", want, data)
		}
	}
}

func TestValidateFirewallFlags(t *testing.T) {
	lin, idx := netem.ClassifierLinear, netem.ClassifierIndexed
	cases := []struct {
		ids        []string
		rules      int
		classifier netem.Classifier
		ok         bool
	}{
		{[]string{"3"}, 0, lin, true},
		{[]string{"3"}, 100, lin, false},       // -rules on a non-swarm figure
		{[]string{"8"}, 100, idx, true},        // firewalled swarm
		{[]string{"8"}, 0, idx, false},         // classifier without rules
		{[]string{"6"}, 0, idx, true},          // fig 6 owns its rule counts
		{[]string{"6x"}, 0, idx, false},        // 6x plots both classifiers itself
		{[]string{"1", "8"}, 50000, idx, true}, // mixed set: applies somewhere
	}
	for _, tc := range cases {
		err := validateFirewallFlags(tc.ids, tc.rules, tc.classifier)
		if (err == nil) != tc.ok {
			t.Errorf("validateFirewallFlags(%v, %d, %v) = %v, want ok=%v",
				tc.ids, tc.rules, tc.classifier, err, tc.ok)
		}
	}
}

func TestSweepRejectsBadFlags(t *testing.T) {
	if err := sweepMain([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := sweepMain([]string{"-exp", "gossip", "-scenario", "flash-crowd"}); err == nil {
		t.Error("scenario axis accepted on a non-scenario experiment")
	}
	if err := sweepMain([]string{"-exp", "scenario", "-scenario", "no-such-scenario"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := sweepMain([]string{"-exp", "dht", "-rules", "0,100"}); err == nil {
		t.Error("rules axis accepted on a non-firewall experiment")
	}
	if err := sweepMain([]string{"-exp", "ping", "-classifier", "hash"}); err == nil {
		t.Error("unknown classifier accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	out := t.TempDir()
	// A JSON spec exercises the loader end to end; tiny gossip ring so
	// the smoke test stays fast.
	spec := `{
	  "name": "smoke",
	  "horizon": "5m",
	  "groups": [{"name": "g", "class": "lan", "nodes": 8}],
	  "workload": {"kind": "gossip"},
	  "timeline": [
	    {"at": "2s", "action": "loss", "groups": ["g"], "loss": 0.1, "for": "3s"}
	  ]
	}`
	specPath := filepath.Join(out, "smoke.json")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMain([]string{"-spec", specPath, "-out", out, "-trace", "10"}); err != nil {
		t.Fatalf("run -spec: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "scenario-smoke.csv")); err != nil {
		t.Errorf("result CSV not written: %v", err)
	}
}

func TestRunCorpusByName(t *testing.T) {
	out := t.TempDir()
	if err := runMain([]string{"-out", out, "gossip-partition"}); err != nil {
		t.Fatalf("run gossip-partition: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "scenario-gossip-partition.csv")); err != nil {
		t.Errorf("result CSV not written: %v", err)
	}
	// Name-first order must work too (flag parsing stops at the first
	// positional argument; runMain pops a leading name itself).
	if err := runMain([]string{"gossip-partition", "-out", out}); err != nil {
		t.Fatalf("run <name> -flags: %v", err)
	}
	if err := runMain([]string{"gossip-partition", "-out", out, "extra"}); err == nil {
		t.Error("trailing argument accepted (name first)")
	}
	if err := runMain([]string{"-out", out, "gossip-partition", "extra"}); err == nil {
		t.Error("trailing argument accepted (flags first)")
	}
	if err := runMain([]string{"gossip-partition", "-spec", "x.json"}); err == nil {
		t.Error("name and -spec together accepted")
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := runMain([]string{"no-such-scenario"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := runMain([]string{}); err == nil {
		t.Error("missing scenario accepted")
	}
}

func TestRunDump(t *testing.T) {
	if err := runMain([]string{"-dump", "flash-crowd"}); err != nil {
		t.Fatalf("dump: %v", err)
	}
}

func TestListSmoke(t *testing.T) {
	if err := listMain(nil); err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := listMain([]string{"-json"}); err != nil {
		t.Fatalf("list -json: %v", err)
	}
}
