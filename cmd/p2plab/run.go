package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// runMain implements `p2plab run <scenario>`: execute one named corpus
// scenario (or a JSON spec file via -spec) and report its outcome.
func runMain(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specPath := fs.String("spec", "", "load the scenario from a JSON file instead of the corpus")
	seed := fs.Int64("seed", 0, "override the scenario's seed (0 keeps the spec value)")
	out := fs.String("out", "results", "output directory for the result CSV")
	dump := fs.Bool("dump", false, "print the resolved scenario as JSON and exit (editable with -spec)")
	traceTail := fs.Int("trace", 0, "print the last N trace events of the run")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: p2plab run [flags] <scenario-name>\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "scenarios: %v\n", scenario.Names())
	}
	// Accept the scenario name before or after the flags: the stdlib
	// parser stops at the first positional argument, so a leading name
	// is popped off before parsing.
	var name string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case name == "" && fs.NArg() == 1:
		name = fs.Arg(0)
	case name == "" && fs.NArg() > 1:
		return fmt.Errorf("run: unexpected arguments %v", fs.Args()[1:])
	case name != "" && fs.NArg() > 0:
		return fmt.Errorf("run: unexpected arguments %v", fs.Args())
	}
	if name != "" && *specPath != "" {
		return fmt.Errorf("run: pass a scenario name or -spec, not both")
	}

	var sp scenario.Spec
	switch {
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		loaded, err := scenario.Load(data)
		if err != nil {
			return err
		}
		sp = *loaded
	case name != "":
		var ok bool
		sp, ok = scenario.ByName(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (have %v)", name, scenario.Names())
		}
	default:
		fs.Usage()
		return fmt.Errorf("run: name a scenario or pass -spec")
	}

	if *dump {
		data, err := json.MarshalIndent(sp.WithDefaults(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	opt := scenario.Options{Seed: *seed}
	var lg *trace.Log
	if *traceTail > 0 {
		lg = trace.New(*traceTail)
		opt.Trace = lg
	}
	start := time.Now()
	fmt.Printf("== scenario %s ==\n", sp.Name)
	res, err := scenario.Run(&sp, opt)
	if err != nil {
		return err
	}
	reportScenario(res)
	fmt.Printf("   wall time %v\n", time.Since(start).Round(time.Millisecond))
	if lg != nil {
		fmt.Println("-- trace tail --")
		if err := lg.Render(os.Stdout); err != nil {
			return err
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	csvPath := filepath.Join(*out, "scenario-"+res.Spec.Name+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := metrics.WriteSnapshotsCSV(f, []*metrics.Snapshot{res.Snapshot}); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n", csvPath)
	return nil
}

// reportScenario prints the workload-appropriate summary of a run.
func reportScenario(res *scenario.Result) {
	sp := res.Spec
	fmt.Printf("   %s workload, %s model, seed %d, ended at %v\n",
		sp.Workload.Kind, res.Model, sp.Seed, res.EndedAt)
	switch sp.Workload.Kind {
	case scenario.WorkloadSwarm, scenario.WorkloadChurnSwarm:
		var last float64
		for _, c := range res.Completions {
			if c > 0 && c.Seconds() > last {
				last = c.Seconds()
			}
		}
		fmt.Printf("   %d/%d clients done, last stable completion at %.0fs\n", res.Done, res.Total, last)
		if res.Arrivals > 0 {
			fmt.Printf("   churn: %d arrivals, %d departures\n", res.Arrivals, res.Departures)
		}
	case scenario.WorkloadDHT:
		fmt.Printf("   %d/%d lookups ok, %.2f avg hops, %v avg latency\n",
			res.Done, res.Total, res.AvgHops, res.AvgLatency)
	case scenario.WorkloadGossip:
		fmt.Printf("   coverage %.0f%%, full coverage at %v\n", 100*res.Coverage, res.T100)
	}
	fmt.Printf("   kernel: %d events; net: %d sent, %d delivered, %d dropped, %d retransmits\n",
		res.Kernel.Events, res.Net.MessagesSent, res.Net.MessagesDelivered,
		res.Net.MessagesDropped, res.Net.Retransmits)
}

// listMain implements `p2plab list`: the scenario catalogue.
func listMain(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the corpus as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus := scenario.Corpus()
	sort.Slice(corpus, func(i, j int) bool { return corpus[i].Name < corpus[j].Name })
	if *asJSON {
		data, err := json.MarshalIndent(corpus, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("%-30s %-12s %-6s %6s %9s  %s\n", "SCENARIO", "WORKLOAD", "MODEL", "NODES", "TIMELINE", "DESCRIPTION")
	for _, sp := range corpus {
		d := sp.WithDefaults()
		fmt.Printf("%-30s %-12s %-6s %6d %9d  %s\n",
			d.Name, d.Workload.Kind, d.Model, d.TotalNodes(), len(d.Timeline), d.Description)
	}
	return nil
}
