package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/serve"
)

// serveMain implements the `p2plab serve` subcommand: a long-running
// HTTP experiment service. Scenario and sweep jobs are submitted into a
// bounded queue over the API, run on a worker pool, and observed live
// via SSE metric/progress streams and a Prometheus /metrics endpoint.
func serveMain(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	queue := fs.Int("queue", 8, "bounded job-queue depth (submissions beyond it get 503)")
	workers := fs.Int("workers", 2, "jobs running concurrently")
	sample := fs.Duration("sample", 10*time.Second, "default virtual-time interval between metric snapshots")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := serve.New(serve.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		SampleInterval: *sample,
	})
	defer s.Close()

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("p2plab serve: listening on http://%s (queue %d, %d worker(s), sample %v)\n",
		*addr, *queue, *workers, *sample)

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}
