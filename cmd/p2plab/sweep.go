package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/topo"
)

// sweepMain implements the `p2plab sweep` subcommand: expand a
// parameter grid, run every cell on a bounded worker pool, print the
// merged aggregate table and write per-cell results as CSV.
func sweepMain(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	expName := fs.String("exp", "swarm", "experiment family (swarm, churn, dht, gossip, sched, scenario, ping, snapshot-sync)")
	peers := fs.String("peers", "", "comma-separated population sizes (default: experiment-specific)")
	churn := fs.String("churn", "", "comma-separated churn fractions in [0,1)")
	classes := fs.String("class", "", "comma-separated link classes (dsl, modem, slow-dsl, fast-dsl, campus, office, lan)")
	models := fs.String("model", "", "comma-separated link models (pipe, flow)")
	windows := fs.String("window", "", "comma-separated flow-model batch windows (e.g. 0,50ms,250ms; needs -model flow)")
	scenarios := fs.String("scenario", "", "comma-separated corpus scenario names (scenario experiment; default: all)")
	rules := fs.String("rules", "", "comma-separated firewall rule-table sizes (ping and swarm families)")
	pieces := fs.String("pieces", "", "comma-separated piece sizes in bytes (snapshot-sync; default 2097152)")
	connCaps := fs.String("conncap", "", "comma-separated per-client connection caps (snapshot-sync; default 5)")
	rates := fs.String("rate", "", "comma-separated symmetric rate caps in bytes/s, 0 = unlimited (snapshot-sync)")
	classifiers := fs.String("classifier", "", "comma-separated firewall classifiers (linear, indexed)")
	seeds := fs.String("seeds", "", "comma-separated random seeds")
	workers := fs.Int("workers", 0, "worker pool size (default: one per CPU)")
	fileSize := fs.Int("file-size", 0, "swarm file size in bytes (default 2 MiB)")
	lookups := fs.Int("lookups", 0, "DHT lookups per cell (default 100)")
	fanout := fs.Int("fanout", 0, "gossip fanout (default 3)")
	horizon := fs.Duration("horizon", 0, "virtual-time cap per cell (default 6h)")
	out := fs.String("out", "results", "output directory for sweep.csv")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g := exp.Grid{
		Experiment: exp.Experiment(*expName),
		FileSize:   *fileSize,
		Lookups:    *lookups,
		Fanout:     *fanout,
		Horizon:    *horizon,
	}
	var err error
	if g.Peers, err = parseInts(*peers); err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	if g.Churn, err = parseFloats(*churn); err != nil {
		return fmt.Errorf("-churn: %w", err)
	}
	if g.Seeds, err = parseInt64s(*seeds); err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	if g.Classes, err = parseClasses(*classes); err != nil {
		return fmt.Errorf("-class: %w", err)
	}
	if g.Models, err = parseModels(*models); err != nil {
		return fmt.Errorf("-model: %w", err)
	}
	if g.Windows, err = parseDurations(*windows); err != nil {
		return fmt.Errorf("-window: %w", err)
	}
	if g.Rules, err = parseInts(*rules); err != nil {
		return fmt.Errorf("-rules: %w", err)
	}
	if g.PieceSizes, err = parseInts(*pieces); err != nil {
		return fmt.Errorf("-pieces: %w", err)
	}
	if g.ConnCaps, err = parseInts(*connCaps); err != nil {
		return fmt.Errorf("-conncap: %w", err)
	}
	if g.Rates, err = parseInt64s(*rates); err != nil {
		return fmt.Errorf("-rate: %w", err)
	}
	if g.Classifiers, err = parseClassifiers(*classifiers); err != nil {
		return fmt.Errorf("-classifier: %w", err)
	}
	g.Scenarios = splitList(*scenarios)

	cells, err := g.Cells()
	if err != nil {
		return err
	}
	fmt.Printf("== sweep: %d cell(s) of %s ==\n", len(cells), *expName)
	res, err := exp.RunSweep(g, *workers)
	if err != nil {
		return err
	}
	for _, c := range res.Cells {
		status := "ok"
		if c.Err != nil {
			status = "FAILED: " + c.Err.Error()
		}
		fmt.Printf("   %-48s %8v  %s\n", c.Cell, c.Wall.Round(time.Millisecond), status)
	}
	fmt.Printf("   %d/%d cells ok in %v (pool: %d workers)\n\n",
		len(res.Cells)-res.Failed, len(res.Cells), res.Wall.Round(time.Millisecond), res.Workers)

	if err := res.Merged.Table().Render(os.Stdout); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	csvPath := filepath.Join(*out, "sweep.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := metrics.WriteSnapshotsCSV(f, res.Snapshots()); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d rows)\n", csvPath, len(res.Cells)-res.Failed)
	if res.Failed > 0 {
		return fmt.Errorf("%d cell(s) failed", res.Failed)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, f := range splitList(s) {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, f := range splitList(s) {
		// "0" reads naturally in a window list; ParseDuration demands a
		// unit, so accept the bare zero explicitly.
		if f == "0" {
			out = append(out, 0)
			continue
		}
		v, err := time.ParseDuration(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseClasses(s string) ([]topo.LinkClass, error) {
	var out []topo.LinkClass
	for _, f := range splitList(s) {
		c, ok := topo.ClassByName(f)
		if !ok {
			return nil, fmt.Errorf("unknown link class %q", f)
		}
		out = append(out, c)
	}
	return out, nil
}

func parseModels(s string) ([]netem.ModelKind, error) {
	var out []netem.ModelKind
	for _, f := range splitList(s) {
		m, err := netem.ParseModel(f)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseClassifiers(s string) ([]netem.Classifier, error) {
	var out []netem.Classifier
	for _, f := range splitList(s) {
		c, err := netem.ParseClassifier(f)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
