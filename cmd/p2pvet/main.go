// Command p2pvet is the project's static-analysis vet tool. It drives
// the internal/lint analyzer suite (walltime, detrand, maporder,
// kernelgo, tokenheld — see DESIGN decision 13) under the protocol
// `go vet -vettool` expects from an analysis driver:
//
//	-V=full    describe the executable (for the build cache)
//	-flags     describe supported flags in JSON
//	unit.cfg   analyze one compilation unit described by a JSON file
//
// The protocol (and the vetx fact chaining it implies) matches
// golang.org/x/tools/go/analysis/unitchecker; this driver reimplements
// it on the standard library alone so the repository stays
// dependency-free.
//
// Invoked with anything else (package patterns, typically), it
// re-executes itself through the go command:
//
//	p2pvet ./...   ≡   go vet -vettool=$(which p2pvet) ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// vetConfig mirrors the JSON compilation-unit description the go
// command writes for vet tools (x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("p2pvet: ")

	args := os.Args[1:]
	var cfgPath string
	var passthrough []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			printFlags()
			return
		case strings.HasSuffix(a, ".cfg"):
			cfgPath = a
		case strings.HasPrefix(a, "-"):
			// Analyzer-selection flags are accepted for protocol
			// compatibility; the suite always runs whole.
		default:
			passthrough = append(passthrough, a)
		}
	}
	switch {
	case cfgPath != "":
		os.Exit(unit(cfgPath))
	case len(passthrough) > 0:
		os.Exit(selfVet(passthrough))
	default:
		fmt.Fprintln(os.Stderr, "usage: p2pvet ./...   (or, from go vet: go vet -vettool=$(which p2pvet) ./...)")
		os.Exit(2)
	}
}

// printVersion implements the -V=full half of the go command's tool-ID
// protocol: the output embeds a content hash of the executable so the
// build cache invalidates vet results when the tool changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// printFlags tells go vet which flags this tool understands.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range lint.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name + " analysis"})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// selfVet re-executes the tool through `go vet -vettool=self`.
func selfVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatal(err)
	}
	return 0
}

// unit analyzes one compilation unit and returns the process exit
// code.
func unit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgPath, err)
	}

	importPath := lint.NormalizeImportPath(cfg.ImportPath)
	files := analyzableFiles(cfg.GoFiles)
	if !lint.InModule(importPath) || len(files) == 0 {
		// Out-of-module dependencies (the standard library) and pure
		// test packages carry no p2pvet obligations; publish an empty
		// fact set so the vetx chain stays complete.
		writeVetx(cfg, analysis.NewFactSet())
		return 0
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	var analyzed []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it
			}
			log.Fatal(err)
		}
		parsed = append(parsed, f)
		if !strings.HasSuffix(name, "_test.go") {
			analyzed = append(analyzed, f)
		}
	}

	pkg, info, err := typecheck(fset, cfg, parsed)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("typechecking %s: %v", importPath, err)
	}

	imported := analysis.NewFactSet()
	for _, vetx := range cfg.PackageVetx {
		b, err := os.ReadFile(vetx)
		if err != nil {
			continue // a dependency with no fact file has no facts
		}
		fs, err := analysis.DecodeFacts(b)
		if err != nil {
			log.Fatalf("corrupt vetx %s: %v", vetx, err)
		}
		imported.Merge(fs)
	}

	out := analysis.NewFactSet()
	out.Merge(imported) // facts propagate transitively

	analyzers := lint.Analyzers()
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if cfg.VetxOnly && !a.UsesFacts {
			continue
		}
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     analyzed,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			ImportFact: func(key string) (string, bool) {
				return imported.Get(a.Name, key)
			},
			ExportFact: func(key, value string) {
				out.Set(a.Name, key, value)
			},
		}
		if err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}
	writeVetx(cfg, out)

	if cfg.VetxOnly {
		return 0
	}
	sup := lint.CollectSuppressions(fset, analyzed)
	exit := 0
	report := func(d analysis.Diagnostic) {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		exit = 1
	}
	for _, d := range sup.Bad() {
		report(d)
	}
	for _, d := range diags {
		if !suppressed(sup, fset, d) {
			report(d)
		}
	}
	return exit
}

// suppressed matches a diagnostic against //lint:allow comments. The
// analyzer name is the first word of the message up to the colon.
func suppressed(sup *lint.Suppressions, fset *token.FileSet, d analysis.Diagnostic) bool {
	name, _, ok := strings.Cut(d.Message, ":")
	if !ok {
		return false
	}
	return sup.Allowed(name, fset.Position(d.Pos))
}

func analyzableFiles(names []string) []string {
	var out []string
	for _, n := range names {
		if !strings.HasSuffix(n, "_test.go") {
			out = append(out, n)
		}
	}
	return out
}

func typecheck(fset *token.FileSet, cfg *vetConfig, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import spec.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // resolve vendoring etc.
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

func writeVetx(cfg *vetConfig, fs analysis.FactSet) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := fs.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		log.Fatal(err)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
