// Command schedlab runs the paper's scheduler-suitability experiments
// (Figs 1–3) for one workload and prints a table.
//
// Usage:
//
//	schedlab -workload cpu -n 1,100,1000
//	schedlab -workload mem -n 5,25,50
//	schedlab -workload fair -n 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	workload := flag.String("workload", "cpu", "workload: cpu (Fig 1), mem (Fig 2), fair (Fig 3)")
	ns := flag.String("n", "", "comma-separated process counts (defaults per workload)")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	flag.Parse()

	counts, err := parseCounts(*ns, *workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlab:", err)
		os.Exit(1)
	}

	switch *workload {
	case "cpu", "mem":
		table := metrics.Table{Header: []string{"N", "ULE", "4BSD", "Linux 2.6"}}
		for _, n := range counts {
			row := []string{strconv.Itoa(n)}
			for _, kind := range []sched.Kind{sched.ULE, sched.FourBSD, sched.LinuxO1} {
				cfg := sched.DefaultConfig(kind)
				cfg.Seed = *seed
				jobs := sched.CPUBoundJobs(n)
				if *workload == "mem" {
					jobs = sched.MemoryJobs(n)
				}
				res := sched.Run(cfg, jobs)
				row = append(row, fmt.Sprintf("%.3fs", res.AvgExecTime().Seconds()))
			}
			table.AddRow(row...)
		}
		fmt.Printf("average per-process execution time (%s workload)\n", *workload)
		table.Render(os.Stdout)
	case "fair":
		n := counts[0]
		table := metrics.Table{Header: []string{"scheduler", "min", "median", "p90", "max", "spread"}}
		for _, kind := range []sched.Kind{sched.ULE, sched.FourBSD, sched.LinuxO1} {
			cfg := sched.DefaultConfig(kind)
			cfg.Seed = *seed
			res := sched.Run(cfg, sched.FairnessJobs(n))
			var xs []float64
			for _, ft := range res.FinishTimes() {
				xs = append(xs, ft.Seconds())
			}
			s := metrics.Summarize(xs)
			table.AddRow(kind.String(),
				fmt.Sprintf("%.1fs", s.Min), fmt.Sprintf("%.1fs", s.Median),
				fmt.Sprintf("%.1fs", s.P90), fmt.Sprintf("%.1fs", s.Max),
				fmt.Sprintf("%.1fs", s.Spread()))
		}
		fmt.Printf("completion-time distribution of %d concurrent 5s processes\n", n)
		table.Render(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "schedlab: unknown workload %q\n", *workload)
		os.Exit(1)
	}
}

func parseCounts(ns, workload string) ([]int, error) {
	if ns == "" {
		switch workload {
		case "cpu":
			return []int{1, 100, 200, 400, 600, 800, 1000}, nil
		case "mem":
			return []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, nil
		default:
			return []int{100}, nil
		}
	}
	var counts []int
	for _, part := range strings.Split(ns, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}
