// Command contention demonstrates the flow-level link model: N
// leechers download the same file from one seeder at the same time,
// so every transfer crosses the seeder's 1 Mbps uplink — the classic
// seeder-bottleneck scenario the pipe model cannot express.
//
// Under the pipe model (Dummynet-style), concurrent messages are
// serialized FIFO through the uplink cursor: the first leecher gets
// the full bandwidth and later ones queue behind it. Under the flow
// model, the uplink's capacity is split max-min fair across the
// concurrent flows: every leecher sees ~C/N throughput and they all
// finish together — the throughput collapse a real shared uplink
// produces. Flip between the two with a single option
// (vnet.Config.Model); run with -trace to watch the "net.flow"
// rate-change events on the virtual timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vnet"
)

const (
	fileSize = 2_000_000 // 16 Mbit per leecher
	port     = ip.Port(6881)
)

func main() {
	peers := flag.Int("peers", 8, "number of simultaneous leechers")
	showTrace := flag.Bool("trace", false, "print the net.flow rate-change timeline (flow model)")
	flag.Parse()

	for _, model := range []netem.ModelKind{netem.ModelPipe, netem.ModelFlow} {
		if err := run(model, *peers, *showTrace); err != nil {
			fmt.Fprintln(os.Stderr, "contention:", err)
			os.Exit(1)
		}
	}
}

func run(model netem.ModelKind, peers int, showTrace bool) error {
	k := sim.New(1)
	cfg := vnet.DefaultConfig()
	cfg.Model = model
	// Under the pipe model the 16 s bulk messages block later
	// handshakes' SYNACKs on the uplink FIFO cursor (head-of-line
	// blocking is part of that model); give dials room to survive it.
	cfg.HandshakeTimeout = time.Hour
	net := vnet.NewNetwork(k, nil, cfg)

	var log *trace.Log
	if showTrace && model == netem.ModelFlow {
		log = trace.New(4096)
		net.SetTrace(log)
	}

	// The seeder's 1 Mbps uplink is the only bottleneck: leecher
	// downlinks are 20x faster, so all contention happens at the
	// seeder.
	seeder, err := net.AddHost(ip.MustParseAddr("10.0.0.1"),
		netem.PipeConfig{Bandwidth: 1 * netem.Mbps, Delay: 10 * time.Millisecond},
		netem.PipeConfig{Bandwidth: 20 * netem.Mbps, Delay: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	done := make([]sim.Time, peers)
	var leechers []*vnet.Host
	for i := 0; i < peers; i++ {
		h, err := net.AddHost(ip.MustParseAddr("10.0.1.1").Add(uint32(i)),
			netem.PipeConfig{Bandwidth: 1 * netem.Mbps, Delay: 10 * time.Millisecond},
			netem.PipeConfig{Bandwidth: 20 * netem.Mbps, Delay: 10 * time.Millisecond})
		if err != nil {
			return err
		}
		leechers = append(leechers, h)
	}

	k.Go("seeder", func(p *sim.Proc) {
		l, err := seeder.Listen(p, port)
		if err != nil {
			return
		}
		for i := 0; i < peers; i++ {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			k.Go("serve", func(p *sim.Proc) {
				// The whole file goes out as one message: one fluid
				// flow under the flow model, one serialized unit under
				// the pipe model.
				c.SendMeta(p, fileSize, nil)
				c.Close(p)
			})
		}
	})
	for i, h := range leechers {
		i, h := i, h
		k.Go(fmt.Sprintf("leech-%d", i), func(p *sim.Proc) {
			p.Sleep(time.Second) // let the seeder listen
			c, err := h.Dial(p, ip.Endpoint{Addr: seeder.Addr(), Port: port})
			if err != nil {
				return
			}
			got := 0
			for got < fileSize {
				pk, err := c.Recv(p)
				if err != nil {
					return
				}
				got += pk.Len()
			}
			done[i] = p.Now()
			c.Close(p)
		})
	}
	if err := k.RunUntil(sim.Time(2 * time.Hour)); err != nil {
		return err
	}

	fmt.Printf("== %s model: %d leechers x %d B through a 1 Mbps seeder uplink ==\n",
		model, peers, fileSize)
	var first, last sim.Time
	for i, at := range done {
		if at == 0 {
			fmt.Printf("   leecher %2d: DID NOT FINISH\n", i)
			continue
		}
		rate := float64(fileSize) * 8 / at.Sub(sim.Time(time.Second)).Seconds() / 1e6
		fmt.Printf("   leecher %2d: done at %8.1fs (%.2f Mbps effective)\n", i, at.Seconds(), rate)
		if first == 0 || at < first {
			first = at
		}
		if at > last {
			last = at
		}
	}
	fmt.Printf("   spread first->last: %.1fs", last.Sub(first).Seconds())
	if stats, ok := net.FlowStats(); ok {
		fmt.Printf("  (flows: %d started, %d rerates, %d solves)",
			stats.Started, stats.Rerates, stats.Solves)
	}
	fmt.Println()
	if log != nil {
		fmt.Println("-- net.flow timeline --")
		for _, e := range log.Filter("net.flow") {
			fmt.Printf("   %12s  %-16s %s\n", e.At, e.Node, e.Msg)
		}
	}
	fmt.Println()
	return nil
}
