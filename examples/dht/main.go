// DHT: studies a second peer-to-peer system on the platform — a Chord
// ring — demonstrating what the edge-centric emulation model is for:
// the same overlay, run over different access-link classes, shows that
// lookup latency is dominated by the edge links while routing hop
// counts stay O(log N).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Chord ring scaling (LAN links): avg lookup hops vs ring size")
	points, err := repro.DHTScaling([]int{8, 16, 32, 64}, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  nodes  avg-hops  avg-latency")
	for _, pt := range points {
		fmt.Printf("  %5d  %8.2f  %v\n", pt.Nodes, pt.AvgHops, pt.AvgLatency)
	}

	fmt.Println("\nSame 32-node ring, different access links (the platform's point):")
	byClass, err := repro.DHTLocality(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  link    avg-hops  avg-latency  p90-latency")
	for _, name := range []string{"lan", "campus", "dsl", "modem"} {
		pt := byClass[name]
		fmt.Printf("  %-7s %8.2f  %11v  %v\n", name, pt.AvgHops, pt.AvgLatency, pt.P90Latency)
	}
	fmt.Println("\nsame overlay, same hops — the edge link sets the latency,")
	fmt.Println("which is exactly the paper's argument for edge-centric emulation")
}
