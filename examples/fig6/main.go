// Command fig6 reproduces the paper's Figure 6 — ping round-trip time
// against the number of firewall rules — through the emulation path:
// every packet is classified src→dst by the network's IPFW-style rule
// table (vnet.Config.Rules) and the evaluation cost is charged to
// virtual time before serialization.
//
// Under the linear classifier (faithful to IPFW) the RTT rises
// linearly with the table size: at ~48 ns per rule visited and two
// traversals per round trip, 50 000 filler rules add ≈4.8 ms — the
// paper's measured slope, and the scalability limit it calls out ("it
// is not possible to evaluate the rules in a hierarchical way, or
// with a hash table"). Under the indexed classifier the same table is
// fronted by hash indexes over the source and destination /24, the
// filler buckets away, and the curve stays flat — the firewall IPFW
// could not be.
//
// Run it:
//
//	go run ./examples/fig6
//	go run ./examples/fig6 -step 5000 -pings 20
//
// The equivalent figure-grade sweeps:
//
//	p2plab -fig 6 -classifier linear     # physical-cluster path (virt)
//	p2plab sweep -exp ping -rules 0,10000,50000 -classifier linear,indexed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/netem"
)

func main() {
	max := flag.Int("max", 50000, "maximum rule-table size")
	step := flag.Int("step", 10000, "rule-count step")
	pings := flag.Int("pings", 10, "pings per measurement")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	flag.Parse()
	if *step < 1 || *max < 0 {
		fmt.Fprintln(os.Stderr, "fig6: -step must be at least 1 and -max non-negative")
		os.Exit(2)
	}

	fmt.Println("ping RTT vs firewall rules (vnet.Config.Rules, both classifiers)")
	fmt.Printf("%8s  %14s  %14s  %16s\n", "rules", "linear rtt", "indexed rtt", "visited lin/idx")
	for rules := 0; rules <= *max; rules += *step {
		var rtt [2]string
		var visited [2]uint64
		for i, classifier := range []netem.Classifier{netem.ClassifierLinear, netem.ClassifierIndexed} {
			out, err := exp.RunPing(exp.PingParams{
				Rules:      rules,
				Classifier: classifier,
				Pings:      *pings,
				Seed:       *seed,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig6:", err)
				os.Exit(1)
			}
			rtt[i] = out.Stats.Avg.String()
			if out.Evals > 0 {
				visited[i] = out.Visited / out.Evals
			}
		}
		fmt.Printf("%8d  %14s  %14s  %8d /%7d\n", rules, rtt[0], rtt[1], visited[0], visited[1])
	}
	fmt.Println()
	fmt.Println("the linear column is the paper's Fig 6 slope (≈48 ns/rule × 2 traversals);")
	fmt.Println("the indexed column is the ablation: same verdicts, near-constant cost.")
}
