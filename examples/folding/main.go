// Folding: a scaled-down version of the paper's Fig 9 experiment — the
// same BitTorrent swarm deployed at increasing folding ratios (virtual
// nodes per physical node). The paper's result, reproduced here, is
// that the aggregate download curves are nearly identical: process-
// level virtualization adds no measurable overhead until the host NIC
// saturates.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	clients := flag.Int("clients", 32, "number of downloading clients")
	sizeMB := flag.Int64("size", 2, "file size in MiB")
	flag.Parse()

	base := repro.Fig8Params()
	base.Clients = *clients
	base.Seeders = 2
	base.FileSize = *sizeMB << 20
	base.StartInterval = 2 * time.Second

	foldings := []int{1, 8, 16}
	fmt.Printf("swarm: %d clients, %d MiB file, foldings %v\n", *clients, *sizeMB, foldings)

	series, outcomes, err := repro.Fig9(base, foldings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfolding  last-completion  total-received  half-time")
	for i, s := range series {
		var last float64
		for _, c := range outcomes[i].Completions {
			if c.Seconds() > last {
				last = c.Seconds()
			}
		}
		half := halfTime(s)
		fmt.Printf("%7d  %14.0fs  %13.1fMB  %8.0fs\n", foldings[i], last, s.LastY(), half)
	}
	fmt.Println("\nnearly identical rows = the paper's folding-invariance result")
}

// halfTime returns when the cumulative curve crosses half its total.
func halfTime(s *repro.Series) float64 {
	half := s.LastY() / 2
	for _, p := range s.Points {
		if p.Y >= half {
			return p.X
		}
	}
	return -1
}
