// Locality: builds the paper's Fig 7 topology (three regions, five
// groups, 2750 nodes) and verifies the worked latency example — a ping
// from the fast-DSL ISP in region 1 to the campus network in region 2
// measures ≈853 ms, decomposed exactly as in the paper.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	lab, err := repro.NewLab(repro.LabConfig{
		Seed:      1,
		Topology:  repro.Fig7Topology(),
		PhysNodes: 14, // fold 2750 virtual nodes onto 14 machines
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d virtual nodes on %d physical nodes (folding %.0f)\n",
		len(lab.Hosts), len(lab.Cluster.Nodes()), lab.Cluster.FoldingRatio())

	src := lab.Net.Host(repro.MustParseAddr("10.1.3.207"))
	targets := []struct {
		addr  string
		label string
	}{
		{"10.1.3.10", "same ISP (fast-dsl)"},
		{"10.1.1.5", "modem ISP, same region (+2×100ms)"},
		{"10.2.2.117", "campus, region 2 (+2×400ms) — the paper's worked example"},
		{"10.3.0.9", "office, region 3 (+2×600ms)"},
	}

	lab.Go("pinger", func(p *repro.Proc) {
		for _, tgt := range targets {
			rtt, ok := src.Ping(p, repro.MustParseAddr(tgt.addr), 56, 10*time.Second)
			if !ok {
				fmt.Printf("  %-12s lost\n", tgt.addr)
				continue
			}
			fmt.Printf("  10.1.3.207 -> %-12s rtt %8.1fms   %s\n",
				tgt.addr, float64(rtt)/float64(time.Millisecond), tgt.label)
		}
	})
	if err := lab.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npaper's decomposition of the 853ms measurement:")
	fmt.Println("  20ms egress (fast-dsl) + 400ms region1<->region2 + 5ms ingress (campus)")
	fmt.Println("  = 425ms one way, 850ms round trip, plus emulation overhead")
}
