// Command megaswarm runs the swarm-scale stress workload: a flash
// crowd of N leechers (default 10000) joining an 8 MB sparse torrent
// within seconds, bounded by a virtual-time horizon. It is the
// "how many emulated peers fit on this hardware" measurement behind
// BenchmarkSwarmScale, packaged as a driver so the number is easy to
// reproduce outside the test binary:
//
//	go run ./examples/megaswarm              # 10k peers, 2 min horizon
//	go run ./examples/megaswarm -peers 1000  # reduced run (CI smoke)
//
// The run prints emulation throughput (peers per wall-clock second),
// transfer volume, and the kernel's event statistics. Before the bt
// hot-loop refactor (per-event O(pieces)/O(peers) scans) the 10k point
// sustained ~20 peers/sec; the incremental hot paths, the cross-layer
// pooling and the kernel lock-discipline work together hold it around
// ~59 (and ~102 at the 1k point) on the reference container —
// BENCH_baseline.json records the exact numbers for this hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"repro/internal/exp"
	"repro/internal/topo"
)

func main() {
	peers := flag.Int("peers", 10000, "number of leechers in the flash crowd")
	horizon := flag.Duration("horizon", 2*time.Minute, "virtual-time horizon for the run")
	fileMB := flag.Int64("filemb", 8, "torrent size in MiB (sparse, no bytes materialized)")
	seed := flag.Int64("seed", 1, "kernel RNG seed")
	flag.Parse()

	// Dedicated-emulation-host configuration: the kernel is strictly
	// serial and allocation-heavy relative to its live heap, so wider GC
	// headroom buys back a measurable share of the run (see
	// BenchmarkSwarmScale, which applies the same setting).
	debug.SetGCPercent(400)

	seeders := *peers / 200
	if seeders < 4 {
		seeders = 4
	}
	params := exp.SwarmParams{
		Clients:       *peers,
		Seeders:       seeders,
		FileSize:      *fileMB << 20,
		StartInterval: time.Millisecond,
		Class:         topo.Campus,
		Seed:          *seed,
		Horizon:       *horizon,
	}

	fmt.Printf("megaswarm: %d leechers + %d seeders, %d MiB torrent, %s horizon\n",
		params.Clients, params.Seeders, *fileMB, *horizon)
	start := time.Now()
	out, err := exp.RunSwarm(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "megaswarm:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	var bytes int64
	for _, e := range out.Pieces {
		bytes += e.Bytes
	}
	done := 0
	for _, c := range out.Completions {
		if c > 0 {
			done++
		}
	}
	if bytes == 0 {
		fmt.Fprintln(os.Stderr, "megaswarm: swarm moved no data")
		os.Exit(1)
	}

	fmt.Printf("wall time        %v\n", wall.Round(time.Millisecond))
	fmt.Printf("peers/sec        %.2f\n", float64(params.Clients)/wall.Seconds())
	fmt.Printf("virtual time     %v\n", time.Duration(out.EndedAt))
	fmt.Printf("pieces verified  %d (%.1f MiB, %.0f bytes/peer)\n",
		len(out.Pieces), float64(bytes)/(1<<20), float64(bytes)/float64(params.Clients))
	fmt.Printf("completed peers  %d/%d inside horizon\n", done, params.Clients)
	fmt.Printf("kernel events    %d dispatched, %d task spawns\n", out.Kernel.Events, out.Kernel.Spawns)
	fmt.Printf("net messages     %d delivered, %d dropped, %d retransmits\n",
		out.Net.MessagesDelivered, out.Net.MessagesDropped, out.Net.Retransmits)
}
