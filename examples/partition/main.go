// Command partition walks through the scenario subsystem's flagship
// capability: time-varying network conditions. It runs the corpus
// scenario "transatlantic-partition-heal" — a BitTorrent swarm spread
// over two DSL continents whose ocean link partitions mid-download and
// heals three minutes later — twice: once as committed, once with the
// timeline stripped. The side with the seeders barely notices; the
// seederless side stalls for the whole partition (its peers keep
// retrying with backoff, then re-announce after the heal) and the
// swarm's last completion moves by minutes. Per-group completion
// percentiles make the asymmetry visible.
//
// Run with -trace to watch the partition and heal land on the virtual
// timeline between the net.send/net.drop records they cause.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	showTrace := flag.Bool("trace", false, "print the scenario/partition trace events")
	seed := flag.Int64("seed", 0, "override the scenario seed")
	flag.Parse()

	sp, ok := scenario.ByName("transatlantic-partition-heal")
	if !ok {
		fmt.Fprintln(os.Stderr, "partition: corpus scenario missing")
		os.Exit(1)
	}

	healthy := sp
	healthy.Timeline = nil
	base, err := run(&healthy, *seed, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	cut, err := run(&sp, *seed, *showTrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}

	fmt.Printf("\nlast completion moved %v -> %v: the partition cost the swarm %v\n",
		lastCompletion(base), lastCompletion(cut),
		(lastCompletion(cut) - lastCompletion(base)).Round(time.Second))
}

func run(sp *scenario.Spec, seed int64, showTrace bool) (*scenario.Result, error) {
	label := "with partition"
	if len(sp.Timeline) == 0 {
		label = "no partition"
	}
	var lg *trace.Log
	opt := scenario.Options{Seed: seed}
	if showTrace {
		lg = trace.New(0)
		opt.Trace = lg
	}
	res, err := scenario.Run(sp, opt)
	if err != nil {
		return nil, err
	}
	fmt.Printf("== %s: %d/%d clients done, ended %v ==\n",
		label, res.Done, res.Total, res.EndedAt.Sub(0).Round(time.Second))

	// Per-group completion spread: clients are created group by group
	// (america then europe), seeders first — so the completions slice
	// splits at the group boundary minus the seeders.
	perGroup := map[string][]time.Duration{}
	idx := 0
	for _, g := range sp.Groups {
		n := g.Nodes
		if g.Name == sp.Workload.SeederGroup {
			n -= sp.Workload.Seeders // seeders are not in Completions
		}
		for i := 0; i < n && idx < len(res.Completions); i, idx = i+1, idx+1 {
			if c := res.Completions[idx]; c > 0 {
				perGroup[g.Name] = append(perGroup[g.Name], c.Sub(0))
			}
		}
	}
	for _, g := range sp.Groups {
		ds := perGroup[g.Name]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		if len(ds) == 0 {
			fmt.Printf("   %-10s no completions\n", g.Name)
			continue
		}
		fmt.Printf("   %-10s %2d done   median %8v   last %8v\n",
			g.Name, len(ds), ds[len(ds)/2].Round(time.Second), ds[len(ds)-1].Round(time.Second))
	}

	if lg != nil {
		fmt.Println("   -- partition timeline --")
		for _, e := range lg.Events() {
			if strings.HasPrefix(e.Cat, "scenario.") || e.Cat == "net.partition" {
				fmt.Printf("   %10s  %-16s %s\n", e.At, e.Cat, e.Msg)
			}
		}
		fmt.Printf("   net.drop events: %d\n", lg.Count("net.drop"))
	}
	return res, nil
}

func lastCompletion(res *scenario.Result) time.Duration {
	var last sim.Time
	for _, c := range res.Completions {
		if c > last {
			last = c
		}
	}
	return last.Sub(0)
}
