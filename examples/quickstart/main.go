// Quickstart: build a two-node DSL network, open a connection, send a
// message and ping — the 20-line tour of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	lab, err := repro.NewLab(repro.LabConfig{Seed: 1, Nodes: 2, Class: repro.DSL})
	if err != nil {
		log.Fatal(err)
	}
	alice, bob := lab.Host(0), lab.Host(1)

	lab.Go("bob", func(p *repro.Proc) {
		l, err := bob.Listen(p, 80)
		if err != nil {
			log.Fatal(err)
		}
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		pk, err := conn.Recv(p)
		if err != nil {
			return
		}
		fmt.Printf("[%8v] bob received %q from %v\n", p.Now(), pk.Data, pk.From)
	})

	lab.Go("alice", func(p *repro.Proc) {
		p.Yield() // let bob listen first
		rtt, ok := alice.Ping(p, bob.Addr(), 56, time.Second)
		fmt.Printf("[%8v] alice pinged bob: rtt=%v ok=%v\n", p.Now(), rtt, ok)

		conn, err := alice.Dial(p, repro.Endpoint{Addr: bob.Addr(), Port: 80})
		if err != nil {
			log.Fatal(err)
		}
		conn.Send(p, []byte("hello over emulated DSL"))
		conn.Close(p)
	})

	if err := lab.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulation finished at", lab.Kernel.Now())
}
