// Command snapshotsync runs the snapshot-sync workload: the inverse of
// the paper's many-small-peers swarms. A handful of clients pull one
// huge file in 2 MiB pieces over few connections, with token-bucket
// rate caps and a web seed as the always-available block source — the
// regime of a blockchain snapshot downloader (hundreds of GB behind a
// CDN in production, scaled down here to keep the run short).
//
//	go run ./examples/snapshotsync                     # 4 clients, 64 MiB, uncapped
//	go run ./examples/snapshotsync -down 1048576       # 1 MiB/s download caps
//	go run ./examples/snapshotsync -seeders 0          # cold CDN fill, web seed only
//
// The run prints per-client completion times, the share of payload the
// web seed carried, and the kernel's event statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	clients := flag.Int("clients", 4, "number of downloading clients")
	seeders := flag.Int("seeders", 1, "number of ordinary seeders")
	webseeds := flag.Int("webseeds", 1, "number of web-seed block servers")
	fileMB := flag.Int64("filemb", 64, "snapshot size in MiB (sparse, no bytes materialized)")
	pieceMB := flag.Int("piecemb", 2, "piece size in MiB")
	connCap := flag.Int("conncap", 5, "per-client connection cap")
	up := flag.Int64("up", 0, "per-client upload cap in bytes/s (0: unlimited)")
	down := flag.Int64("down", 0, "per-client download cap in bytes/s (0: unlimited)")
	model := flag.String("model", "flow", "link model (pipe, flow)")
	window := flag.Duration("window", 250*time.Millisecond, "flow-model re-rate batch window (0: solve per event)")
	seed := flag.Int64("seed", 1, "kernel RNG seed")
	horizon := flag.Duration("horizon", 2*time.Hour, "virtual-time horizon for the run")
	flag.Parse()

	m, err := netem.ParseModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshotsync:", err)
		os.Exit(1)
	}
	params := exp.SnapshotSyncParams{
		Clients:       *clients,
		Seeders:       *seeders,
		WebSeeds:      *webseeds,
		FileSize:      *fileMB << 20,
		PieceLength:   *pieceMB << 20,
		ConnCap:       *connCap,
		UpRate:        *up,
		DownRate:      *down,
		StartInterval: time.Second,
		Class:         topo.FastDSL,
		Model:         m,
		Window:        *window,
		Seed:          *seed,
		Horizon:       *horizon,
	}
	if m != netem.ModelFlow {
		params.Window = 0
	}

	fmt.Printf("snapshotsync: %d clients, %d seeders, %d web seeds; %d MiB in %d MiB pieces, %d conns/client\n",
		params.Clients, params.Seeders, params.WebSeeds, *fileMB, *pieceMB, params.ConnCap)
	if params.UpRate > 0 || params.DownRate > 0 {
		fmt.Printf("rate caps: up %d B/s, down %d B/s\n", params.UpRate, params.DownRate)
	}
	start := time.Now()
	out, err := exp.RunSnapshotSync(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshotsync:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	done := 0
	var last sim.Time
	for i, c := range out.Completions {
		if c > 0 {
			done++
			if c > last {
				last = c
			}
			fmt.Printf("client %d done at %v\n", i, time.Duration(c))
		} else {
			fmt.Printf("client %d DID NOT FINISH inside the horizon\n", i)
		}
	}
	total := uint64(params.FileSize) * uint64(done)
	share := 0.0
	if total > 0 {
		share = 100 * float64(out.WebSeedBytes) / float64(total)
	}
	fmt.Printf("wall time        %v\n", wall.Round(time.Millisecond))
	fmt.Printf("virtual time     %v (last completion %v)\n", time.Duration(out.EndedAt), time.Duration(last))
	fmt.Printf("completed        %d/%d clients\n", done, params.Clients)
	fmt.Printf("web seed bytes   %d (%.1f%% of delivered payload)\n", out.WebSeedBytes, share)
	fmt.Printf("kernel events    %d dispatched, %d task spawns\n", out.Kernel.Events, out.Kernel.Spawns)
	fmt.Printf("net messages     %d delivered, %d dropped, %d retransmits\n",
		out.Net.MessagesDelivered, out.Net.MessagesDropped, out.Net.Retransmits)
	if done == 0 {
		os.Exit(1)
	}
}
