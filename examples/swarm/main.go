// Swarm: a scaled-down version of the paper's Fig 8 experiment — a
// BitTorrent swarm on DSL links, reporting the three phases of a
// torrent's life (seeder-only, cooperative, seeded endgame).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	clients := flag.Int("clients", 40, "number of downloading clients")
	sizeMB := flag.Int64("size", 4, "file size in MiB")
	flag.Parse()

	params := repro.Fig8Params()
	params.Clients = *clients
	params.FileSize = *sizeMB << 20
	params.StartInterval = 5 * time.Second

	fmt.Printf("running %d-client swarm of a %d MiB file on emulated DSL...\n",
		params.Clients, *sizeMB)
	wall := time.Now()
	out, err := repro.RunSwarm(params)
	if err != nil {
		log.Fatal(err)
	}

	var first, last repro.Time
	done := 0
	for _, c := range out.Completions {
		if c == 0 {
			continue
		}
		done++
		if first == 0 || c < first {
			first = c
		}
		if c > last {
			last = c
		}
	}
	fmt.Printf("completed: %d/%d clients\n", done, params.Clients)
	fmt.Printf("first completion at %v, last at %v (virtual)\n", first, last)
	fmt.Printf("simulated %v of swarm activity in %v of wall time\n",
		time.Duration(out.EndedAt).Round(time.Second), time.Since(wall).Round(time.Millisecond))

	// The three phases of Fig 8, read off the aggregate curve.
	total := repro.Series{Name: "total"}
	var cum float64
	for _, e := range out.Pieces {
		cum += float64(e.Bytes)
		total.Add(e.At.Seconds(), cum)
	}
	totalBytes := float64(params.FileSize) * float64(params.Clients)
	phase1 := total.At(first.Seconds()/3) / totalBytes
	fmt.Printf("early phase (seeders only): %.1f%% of all data moved by t=%.0fs\n",
		100*phase1, first.Seconds()/3)
	fmt.Printf("swarm phase: 50%% of all data moved by t=%.0fs\n", findFrac(&total, totalBytes, 0.5))
	fmt.Printf("endgame: 95%% of all data moved by t=%.0fs\n", findFrac(&total, totalBytes, 0.95))
}

func findFrac(s *repro.Series, total, frac float64) float64 {
	for _, p := range s.Points {
		if p.Y >= total*frac {
			return p.X
		}
	}
	return -1
}
