// Package bt implements the BitTorrent file-distribution system the
// paper studies: metainfo with real SHA-1 piece hashes, a tracker, the
// peer wire protocol, rarest-first piece selection and the tit-for-tat
// choking algorithm, all running over the emulated network.
//
// The implementation follows the BitTorrent 4.x mainline client (the
// one the paper instruments), with documented simplifications: the
// tracker speaks bencoded messages over a vnet connection rather than
// HTTP, and large-swarm runs can use sparse piece storage to avoid
// materializing gigabytes of payload.
package bt

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
)

// Bencode serializes a value into bencoding, BitTorrent's wire encoding:
// integers (i42e), byte strings (4:spam), lists (l...e) and dicts
// (d...e, keys sorted). Supported Go types: int, int64, string, []byte,
// []any, map[string]any.
func Bencode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := bencodeTo(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func bencodeTo(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case int:
		fmt.Fprintf(buf, "i%de", x)
	case int64:
		fmt.Fprintf(buf, "i%de", x)
	case string:
		fmt.Fprintf(buf, "%d:%s", len(x), x)
	case []byte:
		fmt.Fprintf(buf, "%d:", len(x))
		buf.Write(x)
	case []any:
		buf.WriteByte('l')
		for _, e := range x {
			if err := bencodeTo(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	case map[string]any:
		buf.WriteByte('d')
		keys := make([]string, 0, len(x))
		//lint:allow maporder collected keys are sorted below, per the bencode canonical form
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(buf, "%d:%s", len(k), k)
			if err := bencodeTo(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	default:
		return fmt.Errorf("bt: cannot bencode %T", v)
	}
	return nil
}

// Bdecode parses one bencoded value. Integers decode as int64, strings
// as []byte, lists as []any and dicts as map[string]any.
func Bdecode(data []byte) (any, error) {
	v, rest, err := bdecode(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("bt: %d trailing bytes after bencoded value", len(rest))
	}
	return v, nil
}

func bdecode(data []byte) (any, []byte, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("bt: empty bencode input")
	}
	switch {
	case data[0] == 'i':
		end := bytes.IndexByte(data, 'e')
		if end < 0 {
			return nil, nil, fmt.Errorf("bt: unterminated integer")
		}
		n, err := strconv.ParseInt(string(data[1:end]), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bt: bad integer %q", data[1:end])
		}
		return n, data[end+1:], nil
	case data[0] >= '0' && data[0] <= '9':
		colon := bytes.IndexByte(data, ':')
		if colon < 0 {
			return nil, nil, fmt.Errorf("bt: unterminated string length")
		}
		n, err := strconv.Atoi(string(data[:colon]))
		if err != nil || n < 0 {
			return nil, nil, fmt.Errorf("bt: bad string length %q", data[:colon])
		}
		if len(data) < colon+1+n {
			return nil, nil, fmt.Errorf("bt: string truncated")
		}
		s := make([]byte, n)
		copy(s, data[colon+1:colon+1+n])
		return s, data[colon+1+n:], nil
	case data[0] == 'l':
		rest := data[1:]
		var list []any
		for {
			if len(rest) == 0 {
				return nil, nil, fmt.Errorf("bt: unterminated list")
			}
			if rest[0] == 'e' {
				return list, rest[1:], nil
			}
			var v any
			var err error
			v, rest, err = bdecode(rest)
			if err != nil {
				return nil, nil, err
			}
			list = append(list, v)
		}
	case data[0] == 'd':
		rest := data[1:]
		dict := make(map[string]any)
		for {
			if len(rest) == 0 {
				return nil, nil, fmt.Errorf("bt: unterminated dict")
			}
			if rest[0] == 'e' {
				return dict, rest[1:], nil
			}
			var k, v any
			var err error
			k, rest, err = bdecode(rest)
			if err != nil {
				return nil, nil, err
			}
			kb, ok := k.([]byte)
			if !ok {
				return nil, nil, fmt.Errorf("bt: dict key is not a string")
			}
			v, rest, err = bdecode(rest)
			if err != nil {
				return nil, nil, err
			}
			dict[string(kb)] = v
		}
	default:
		return nil, nil, fmt.Errorf("bt: unexpected byte %q", data[0])
	}
}
