package bt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBencodeScalars(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "i42e"},
		{int64(-7), "i-7e"},
		{"spam", "4:spam"},
		{[]byte{1, 2, 3}, "3:\x01\x02\x03"},
		{"", "0:"},
	}
	for _, c := range cases {
		got, err := Bencode(c.in)
		if err != nil {
			t.Fatalf("Bencode(%v): %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("Bencode(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBencodeDictSortsKeys(t *testing.T) {
	got, err := Bencode(map[string]any{"zebra": 1, "apple": 2})
	if err != nil {
		t.Fatal(err)
	}
	want := "d5:applei2e5:zebrai1ee"
	if string(got) != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestBencodeList(t *testing.T) {
	got, err := Bencode([]any{1, "a", []any{2}})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "li1e1:ali2eee" {
		t.Fatalf("got %q", got)
	}
}

func TestBencodeUnsupportedType(t *testing.T) {
	if _, err := Bencode(3.14); err == nil {
		t.Fatal("floats are not bencodable")
	}
}

func TestBdecodeRoundTrip(t *testing.T) {
	orig := map[string]any{
		"interval": int64(1800),
		"peers": []any{
			map[string]any{"ip": "10.0.0.1", "port": int64(6881)},
			map[string]any{"ip": "10.0.0.2", "port": int64(6881)},
		},
		"blob": []byte{0, 255, 10},
	}
	enc, err := Bencode(orig)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Bdecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	dict := dec.(map[string]any)
	if dict["interval"].(int64) != 1800 {
		t.Fatal("interval mismatch")
	}
	peers := dict["peers"].([]any)
	if len(peers) != 2 {
		t.Fatal("peers mismatch")
	}
	p0 := peers[0].(map[string]any)
	if string(p0["ip"].([]byte)) != "10.0.0.1" {
		t.Fatal("peer ip mismatch")
	}
	if !bytes.Equal(dict["blob"].([]byte), []byte{0, 255, 10}) {
		t.Fatal("blob mismatch")
	}
}

func TestBdecodeErrors(t *testing.T) {
	bad := []string{
		"", "i42", "4:spa", "x", "l", "d", "di1ei2ee", "i42etrailing",
		"-1:x", "99:x",
	}
	for _, s := range bad {
		if _, err := Bdecode([]byte(s)); err == nil {
			t.Errorf("Bdecode(%q) should fail", s)
		}
	}
}

func TestBencodePropertyRoundTrip(t *testing.T) {
	f := func(n int64, s []byte) bool {
		enc, err := Bencode(map[string]any{"n": n, "s": s})
		if err != nil {
			return false
		}
		dec, err := Bdecode(enc)
		if err != nil {
			return false
		}
		d := dec.(map[string]any)
		return d["n"].(int64) == n && bytes.Equal(d["s"].([]byte), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
