package bt

import "math/bits"

// Bitfield tracks piece possession, bit-packed exactly like the wire
// format (most significant bit of byte 0 is piece 0).
type Bitfield struct {
	bits []byte
	n    int
	set  int

	// small is inline storage for torrents of up to 128 pieces: bits
	// points into it instead of a separate heap block, so the hot
	// Has/Set probes touch the same cache line as the header instead of
	// chasing a second pointer — and a 10k-peer swarm holds one fewer
	// heap object per (peer, bitfield) pair.
	small [16]byte
}

// NewBitfield returns an empty bitfield for n pieces.
func NewBitfield(n int) *Bitfield {
	b := &Bitfield{n: n}
	if nb := (n + 7) / 8; nb <= len(b.small) {
		b.bits = b.small[:nb]
	} else {
		b.bits = make([]byte, nb)
	}
	return b
}

// BitfieldFromBytes reconstructs a bitfield received on the wire.
func BitfieldFromBytes(data []byte, n int) *Bitfield {
	b := NewBitfield(n)
	copy(b.bits, data)
	for i := 0; i < n; i++ {
		if b.Has(i) {
			b.set++
		}
	}
	return b
}

// Len returns the number of pieces tracked.
func (b *Bitfield) Len() int { return b.n }

// Count returns the number of pieces set.
func (b *Bitfield) Count() int { return b.set }

// Has reports whether piece i is set.
func (b *Bitfield) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.bits[i/8]&(0x80>>uint(i%8)) != 0
}

// Set marks piece i. Setting an already-set piece is a no-op.
func (b *Bitfield) Set(i int) {
	if i < 0 || i >= b.n || b.Has(i) {
		return
	}
	b.bits[i/8] |= 0x80 >> uint(i%8)
	b.set++
}

// Complete reports whether every piece is set.
func (b *Bitfield) Complete() bool { return b.set == b.n }

// Bytes returns the wire representation. The slice is shared; callers
// must not mutate it.
func (b *Bitfield) Bytes() []byte { return b.bits }

// ByteLen returns the wire length in bytes.
func (b *Bitfield) ByteLen() int { return len(b.bits) }

// Clone returns an independent copy.
func (b *Bitfield) Clone() *Bitfield {
	nb := NewBitfield(b.n)
	copy(nb.bits, b.bits)
	nb.set = b.set
	return nb
}

// forEachSet calls fn for every set piece in ascending order, scanning
// bytewise. Stray trailing bits beyond Len() — possible on a bitfield
// reconstructed from wire bytes — are ignored.
func (b *Bitfield) forEachSet(fn func(i int)) {
	for j, w := range b.bits {
		if j == len(b.bits)-1 {
			if tail := b.n % 8; tail != 0 {
				w &= 0xFF << (8 - tail)
			}
		}
		for w != 0 {
			lz := bits.LeadingZeros8(w)
			w &^= 0x80 >> uint(lz)
			fn(j*8 + lz)
		}
	}
}

// usefulCount returns |peerBits ∖ have|: how many pieces the peer has
// that we still need. Bytewise popcount; stray trailing wire bits are
// masked off.
func usefulCount(peerBits, have *Bitfield) int {
	n := 0
	hb := have.bits
	for j, w := range peerBits.bits {
		if j < len(hb) {
			w &^= hb[j]
		}
		if j == len(peerBits.bits)-1 {
			if tail := peerBits.n % 8; tail != 0 {
				w &= 0xFF << (8 - tail)
			}
		}
		n += bits.OnesCount8(w)
	}
	return n
}

// Full returns a bitfield with every piece set (a seeder's bitfield).
func Full(n int) *Bitfield {
	b := NewBitfield(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	return b
}
