package bt

// Bitfield tracks piece possession, bit-packed exactly like the wire
// format (most significant bit of byte 0 is piece 0).
type Bitfield struct {
	bits []byte
	n    int
	set  int
}

// NewBitfield returns an empty bitfield for n pieces.
func NewBitfield(n int) *Bitfield {
	return &Bitfield{bits: make([]byte, (n+7)/8), n: n}
}

// BitfieldFromBytes reconstructs a bitfield received on the wire.
func BitfieldFromBytes(data []byte, n int) *Bitfield {
	b := NewBitfield(n)
	copy(b.bits, data)
	for i := 0; i < n; i++ {
		if b.Has(i) {
			b.set++
		}
	}
	return b
}

// Len returns the number of pieces tracked.
func (b *Bitfield) Len() int { return b.n }

// Count returns the number of pieces set.
func (b *Bitfield) Count() int { return b.set }

// Has reports whether piece i is set.
func (b *Bitfield) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.bits[i/8]&(0x80>>uint(i%8)) != 0
}

// Set marks piece i. Setting an already-set piece is a no-op.
func (b *Bitfield) Set(i int) {
	if i < 0 || i >= b.n || b.Has(i) {
		return
	}
	b.bits[i/8] |= 0x80 >> uint(i%8)
	b.set++
}

// Complete reports whether every piece is set.
func (b *Bitfield) Complete() bool { return b.set == b.n }

// Bytes returns the wire representation. The slice is shared; callers
// must not mutate it.
func (b *Bitfield) Bytes() []byte { return b.bits }

// ByteLen returns the wire length in bytes.
func (b *Bitfield) ByteLen() int { return len(b.bits) }

// Clone returns an independent copy.
func (b *Bitfield) Clone() *Bitfield {
	nb := NewBitfield(b.n)
	copy(nb.bits, b.bits)
	nb.set = b.set
	return nb
}

// Full returns a bitfield with every piece set (a seeder's bitfield).
func Full(n int) *Bitfield {
	b := NewBitfield(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	return b
}
