package bt

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestBitfieldBasics(t *testing.T) {
	b := NewBitfield(10)
	if b.Count() != 0 || b.Complete() {
		t.Fatal("new bitfield should be empty")
	}
	b.Set(0)
	b.Set(9)
	b.Set(9) // idempotent
	if !b.Has(0) || !b.Has(9) || b.Has(5) {
		t.Fatal("Has wrong")
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
	if b.Has(-1) || b.Has(10) {
		t.Fatal("out-of-range Has should be false")
	}
}

func TestBitfieldWireFormat(t *testing.T) {
	// Piece 0 is the MSB of byte 0.
	b := NewBitfield(16)
	b.Set(0)
	b.Set(8)
	if b.Bytes()[0] != 0x80 || b.Bytes()[1] != 0x80 {
		t.Fatalf("wire bytes = %x", b.Bytes())
	}
	back := BitfieldFromBytes(b.Bytes(), 16)
	if back.Count() != 2 || !back.Has(0) || !back.Has(8) {
		t.Fatal("round trip failed")
	}
}

func TestBitfieldFullAndClone(t *testing.T) {
	f := Full(9)
	if !f.Complete() || f.Count() != 9 {
		t.Fatal("Full broken")
	}
	c := f.Clone()
	c.Set(0)
	if c.Count() != f.Count() {
		t.Fatal("clone should equal original")
	}
}

func TestBitfieldProperty(t *testing.T) {
	f := func(raw []byte, nRaw uint16) bool {
		n := int(nRaw%200) + 1
		b := NewBitfield(n)
		count := 0
		seen := map[int]bool{}
		for _, r := range raw {
			i := int(r) % n
			if !seen[i] {
				seen[i] = true
				count++
			}
			b.Set(i)
		}
		return b.Count() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTorrent(t *testing.T) {
	data := make([]byte, 600*1024) // 600 KB → 3 pieces of 256 KB
	rand.New(rand.NewSource(1)).Read(data)
	m, err := CreateTorrent("test", data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPieces() != 3 {
		t.Fatalf("pieces = %d, want 3", m.NumPieces())
	}
	if m.PieceSize(0) != 256*1024 {
		t.Fatalf("piece 0 size = %d", m.PieceSize(0))
	}
	if m.PieceSize(2) != 600*1024-512*1024 {
		t.Fatalf("last piece size = %d", m.PieceSize(2))
	}
	if m.InfoHash() == ([20]byte{}) {
		t.Fatal("info hash not computed")
	}
}

func TestMetaInfoBlockMath(t *testing.T) {
	m, err := SyntheticTorrent("f", 16*1024*1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPieces() != 64 {
		t.Fatalf("16MB/256KB = 64 pieces, got %d", m.NumPieces())
	}
	if m.BlocksIn(0) != 16 {
		t.Fatalf("256KB/16KB = 16 blocks, got %d", m.BlocksIn(0))
	}
	if m.TotalBlocks() != 1024 {
		t.Fatalf("total blocks = %d, want 1024", m.TotalBlocks())
	}
	if m.BlockSize(0, 0) != 16384 {
		t.Fatalf("block size = %d", m.BlockSize(0, 0))
	}
}

func TestMetaInfoOddSizes(t *testing.T) {
	// 1 MB + 1000 bytes: last piece is 1000 bytes, one block.
	m, err := SyntheticTorrent("odd", 1024*1024+1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := m.NumPieces() - 1
	if m.PieceSize(last) != 1000 {
		t.Fatalf("last piece = %d", m.PieceSize(last))
	}
	if m.BlocksIn(last) != 1 {
		t.Fatalf("blocks in last = %d", m.BlocksIn(last))
	}
	if m.BlockSize(last, 0) != 1000 {
		t.Fatalf("last block size = %d", m.BlockSize(last, 0))
	}
}

func TestInfoHashDistinguishesContent(t *testing.T) {
	a, _ := SyntheticTorrent("a", 1024*1024, 0)
	b, _ := SyntheticTorrent("b", 1024*1024, 0)
	if a.InfoHash() == b.InfoHash() {
		t.Fatal("different names must hash differently")
	}
}

func TestMemStorageRoundTrip(t *testing.T) {
	data := make([]byte, 300*1024)
	rand.New(rand.NewSource(2)).Read(data)
	m, err := CreateTorrent("t", data, 0)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := NewSeededMemStorage(m, data)
	if err != nil {
		t.Fatal(err)
	}
	leech := NewMemStorage(m)
	for pi := 0; pi < m.NumPieces(); pi++ {
		for b := 0; b < m.BlocksIn(pi); b++ {
			begin := b * BlockLength
			blk, ok := seed.ReadBlock(pi, begin, m.BlockSize(pi, b))
			if !ok {
				t.Fatalf("seeder missing block %d/%d", pi, b)
			}
			if err := leech.WriteBlock(pi, begin, blk, 0); err != nil {
				t.Fatal(err)
			}
		}
		ok, err := leech.CompletePiece(pi)
		if err != nil || !ok {
			t.Fatalf("piece %d failed verification: %v", pi, err)
		}
	}
	if !leech.Bitfield().Complete() {
		t.Fatal("leecher should be complete")
	}
	if string(leech.Bytes()) != string(data) {
		t.Fatal("reassembled bytes differ")
	}
}

func TestMemStorageRejectsCorruption(t *testing.T) {
	data := make([]byte, 256*1024)
	m, _ := CreateTorrent("t", data, 0)
	leech := NewMemStorage(m)
	bad := make([]byte, BlockLength)
	bad[0] = 0xFF
	for b := 0; b < m.BlocksIn(0); b++ {
		leech.WriteBlock(0, b*BlockLength, bad, 0)
	}
	ok, err := leech.CompletePiece(0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted piece must fail SHA-1")
	}
	if leech.HavePiece(0) {
		t.Fatal("failed piece must not be marked had")
	}
}

func TestSeededMemStorageRejectsWrongContent(t *testing.T) {
	data := make([]byte, 256*1024)
	m, _ := CreateTorrent("t", data, 0)
	wrong := make([]byte, 256*1024)
	wrong[0] = 1
	if _, err := NewSeededMemStorage(m, wrong); err == nil {
		t.Fatal("seeding wrong content must fail")
	}
}

func TestSparseStorage(t *testing.T) {
	m, _ := SyntheticTorrent("s", 512*1024, 0)
	seed := NewSeededSparseStorage(m)
	if !seed.Bitfield().Complete() {
		t.Fatal("seeded sparse storage should be complete")
	}
	leech := NewSparseStorage(m)
	if ok, _ := leech.CompletePiece(0); ok {
		t.Fatal("empty piece must not verify")
	}
	for b := 0; b < m.BlocksIn(0); b++ {
		if err := leech.WriteBlock(0, b*BlockLength, nil, BlockLength); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := leech.CompletePiece(0)
	if err != nil || !ok {
		t.Fatalf("complete sparse piece should verify: %v", err)
	}
	if !leech.HavePiece(0) || leech.HavePiece(1) {
		t.Fatal("possession wrong")
	}
}

func TestSparseStoragePartialPieceFails(t *testing.T) {
	m, _ := SyntheticTorrent("s", 512*1024, 0)
	leech := NewSparseStorage(m)
	leech.WriteBlock(0, 0, nil, BlockLength) // 1 of 16 blocks
	if ok, _ := leech.CompletePiece(0); ok {
		t.Fatal("partial piece must not verify")
	}
}

func TestWireSizes(t *testing.T) {
	cases := []struct {
		m    Msg
		want int
	}{
		{Msg{ID: MsgChoke}, 5},
		{Msg{ID: MsgUnchoke}, 5},
		{Msg{ID: MsgInterested}, 5},
		{Msg{ID: MsgHave, Index: 3}, 9},
		{Msg{ID: MsgRequest, Index: 1, Begin: 0, Length: 16384}, 17},
		{Msg{ID: MsgCancel}, 17},
		{Msg{ID: MsgPiece, Length: 16384}, 13 + 16384},
		{Msg{ID: MsgPiece, Block: make([]byte, 100)}, 113},
		{Msg{ID: MsgBitfield, Bits: make([]byte, 8)}, 13},
	}
	for _, c := range cases {
		if got := c.m.WireSize(); got != c.want {
			t.Errorf("WireSize(%v) = %d, want %d", c.m, got, c.want)
		}
	}
	if HandshakeSize != 68 {
		t.Fatal("handshake is 68 bytes in the spec")
	}
}

func TestRateEstimator(t *testing.T) {
	r := NewRateEstimator(20 * time.Second)
	now := sim.Time(0)
	// 1000 bytes/s for 20 seconds.
	for i := 0; i < 20; i++ {
		r.Add(now, 1000)
		now = now.Add(time.Second)
	}
	got := r.Rate(now)
	if got < 900 || got > 1100 {
		t.Fatalf("rate = %v, want ≈1000 B/s", got)
	}
	// After 30 idle seconds the window is empty.
	if r.Rate(now.Add(30*time.Second)) != 0 {
		t.Fatal("stale window should decay to zero")
	}
	if r.TotalBytes() != 20000 {
		t.Fatalf("lifetime = %d", r.TotalBytes())
	}
}

func TestPickerRarestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pk := NewPicker(4, rng)
	pk.RandomFirstThreshold = 0
	// Piece availability: 0 → 3 peers, 1 → 1 peer, 2 → 2 peers, 3 → 1.
	for i, n := range []int{3, 1, 2, 1} {
		for j := 0; j < n; j++ {
			pk.AddHave(i)
		}
	}
	have := NewBitfield(4)
	peerHas := Full(4)
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[pk.Pick(have, peerHas, func(int) bool { return false })]++
	}
	if counts[0] > 0 || counts[2] > 0 {
		t.Fatalf("picked common pieces: %v", counts)
	}
	if counts[1] == 0 || counts[3] == 0 {
		t.Fatalf("rarest tie not randomized: %v", counts)
	}
}

func TestPickerPartialPriority(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pk := NewPicker(4, rng)
	pk.RandomFirstThreshold = 0
	pk.AddBitfield(Full(4))
	pk.MarkPartial(2)
	have := NewBitfield(4)
	got := pk.Pick(have, Full(4), func(int) bool { return false })
	if got != 2 {
		t.Fatalf("picked %d, want partial piece 2", got)
	}
}

func TestPickerRespectsPeerBitfield(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pk := NewPicker(4, rng)
	pk.RandomFirstThreshold = 0
	peerHas := NewBitfield(4)
	peerHas.Set(3)
	have := NewBitfield(4)
	for i := 0; i < 10; i++ {
		if got := pk.Pick(have, peerHas, func(int) bool { return false }); got != 3 {
			t.Fatalf("picked %d, peer only has 3", got)
		}
	}
}

func TestPickerNothingUseful(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pk := NewPicker(4, rng)
	have := Full(4)
	if got := pk.Pick(have, Full(4), func(int) bool { return false }); got != -1 {
		t.Fatalf("picked %d from complete file", got)
	}
}

func TestPickerRandomFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pk := NewPicker(32, rng)
	pk.RandomFirstThreshold = 1
	// Give piece 0 lowest availability; random-first should still
	// scatter picks rather than always taking the rarest.
	for i := 1; i < 32; i++ {
		pk.AddHave(i)
	}
	have := NewBitfield(32)
	seen := map[int]bool{}
	for i := 0; i < 60; i++ {
		seen[pk.Pick(have, Full(32), func(int) bool { return false })] = true
	}
	if len(seen) < 5 {
		t.Fatalf("random-first should scatter, saw %v", seen)
	}
}

func TestPickerRemoveBitfield(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pk := NewPicker(3, rng)
	bf := Full(3)
	pk.AddBitfield(bf)
	pk.AddBitfield(bf)
	pk.RemoveBitfield(bf)
	for i := 0; i < 3; i++ {
		if pk.Availability(i) != 1 {
			t.Fatalf("availability[%d] = %d, want 1", i, pk.Availability(i))
		}
	}
}
