package bt

import (
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestClientStopClosesEverything(t *testing.T) {
	spec := DefaultSwarmSpec()
	spec.FileSize = 1 << 20
	k, _, trk, hosts := swarmEnv(t, 1, 4, fastClass)
	s, err := BuildSwarm(spec, trk, hosts[:1], hosts[1:])
	if err != nil {
		t.Fatal(err)
	}
	s.Start(time.Second)
	victim := s.Clients[0]
	k.After(sim.Duration(10*time.Second), victim.Stop)
	k.Go("waiter", func(p *sim.Proc) {
		// The two surviving clients must still finish.
		for s.CompletedCount() < 2 {
			p.Sleep(5 * time.Second)
			if p.Now() > sim.Time(30*time.Minute) {
				t.Error("survivors did not finish")
				break
			}
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !victim.Stopped() {
		t.Fatal("victim should report stopped")
	}
	if victim.Done() {
		t.Fatal("victim stopped at 10s cannot have finished a 1MB file on these settings... unless it did; adjust test")
	}
	if s.Tracker.Stats().Stopped == 0 {
		t.Fatal("tracker never saw the stopped announce")
	}
}

func TestClientResumeFromKeptStorage(t *testing.T) {
	// A client downloads partially, departs, and a new client instance
	// on the same host resumes from the same storage and completes.
	// DSL links make the 2 MiB download take minutes, so the 60 s
	// first session is genuinely partial.
	spec := DefaultSwarmSpec()
	spec.FileSize = 2 << 20
	k, _, trk, hosts := swarmEnv(t, 3, 3, topo.DSL)
	s, err := BuildSwarm(spec, trk, hosts[:1], hosts[1:2])
	if err != nil {
		t.Fatal(err)
	}
	// A separate host for the churner, sharing the same torrent.
	churnHost := hosts[2]
	store := NewSparseStorage(s.Meta)
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	first := NewClient(churnHost, s.Meta, store, trkEP, DefaultClientConfig())

	s.Start(0)
	first.Start()
	k.After(sim.Duration(60*time.Second), first.Stop)

	var resumed *Client
	var resumedDone bool
	var firstSessionBytes int64
	k.After(sim.Duration(90*time.Second), func() {
		firstSessionBytes = first.BytesDone()
		resumed = NewClient(churnHost, s.Meta, store, trkEP, DefaultClientConfig())
		resumed.OnComplete = func(*Client, sim.Time) { resumedDone = true }
		resumed.Start()
	})
	k.Go("waiter", func(p *sim.Proc) {
		for !resumedDone && p.Now() < sim.Time(time.Hour) {
			p.Sleep(10 * time.Second)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !resumedDone {
		t.Fatal("resumed client never completed")
	}
	if firstSessionBytes == 0 {
		t.Fatal("first session downloaded nothing in 60s; resume untested")
	}
	if firstSessionBytes >= s.Meta.Length {
		t.Fatal("first session finished before the stop; resume untested")
	}
	if resumed.Stats().Downloaded >= s.Meta.Length {
		t.Fatalf("resumed client re-downloaded everything (%d bytes); storage not reused",
			resumed.Stats().Downloaded)
	}
}

func TestSwarmSurvivesSeederChurnWithPeerSeeds(t *testing.T) {
	// Once at least one client finishes, killing the original seeder
	// must not prevent the rest from completing (the paper's "they
	// stay online and become seeders" behaviour is what keeps the
	// swarm alive).
	spec := DefaultSwarmSpec()
	spec.FileSize = 1 << 20
	k, _, trk, hosts := swarmEnv(t, 5, 5, fastClass)
	s, err := BuildSwarm(spec, trk, hosts[:1], hosts[1:])
	if err != nil {
		t.Fatal(err)
	}
	// Kill the seeder deterministically at the first completion.
	killed := false
	for _, c := range s.Clients {
		prev := c.OnComplete
		c.OnComplete = func(cl *Client, at sim.Time) {
			if prev != nil {
				prev(cl, at)
			}
			if !killed {
				killed = true
				s.Seeders[0].Stop()
			}
		}
	}
	s.Start(time.Second)
	k.Go("waiter", func(p *sim.Proc) {
		if !s.WaitAll(p, 30*time.Minute) {
			t.Errorf("swarm stalled after seeder death: %d/%d", s.CompletedCount(), len(s.Clients))
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("seeder was never stopped (no client completed)")
	}
}
