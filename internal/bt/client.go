package bt

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// ClientConfig tunes a BitTorrent client, defaults matching the 4.x
// mainline client the paper instruments.
type ClientConfig struct {
	// Port is the listening port (mainline: 6881).
	Port ip.Port
	// MaxPeers bounds total connections (mainline: ~40 usable).
	MaxPeers int
	// MaxInitiate bounds connections we initiate (mainline: 30-ish;
	// further peers come from inbound connections).
	MaxInitiate int
	// UploadSlots is the number of simultaneous unchokes, including the
	// optimistic one (mainline: 4).
	UploadSlots int
	// RechokeInterval is the choker period (mainline: 10 s).
	RechokeInterval time.Duration
	// OptimisticRounds is how many rechoke rounds an optimistic unchoke
	// lasts (mainline: 3 → 30 s).
	OptimisticRounds int
	// PipelineDepth is the outstanding-request backlog per peer
	// (mainline: ~5). 0 auto-scales to the torrent's blocks-per-piece
	// (clamped to [5,256]): a fixed 5-deep pipeline is 80 KiB in
	// flight, which caps an elephant flow at 80 KiB per RTT no matter
	// how fat the pipe — the snapshot-sync regime (2 MiB pieces over
	// long fat paths) needs the window to grow with the piece size.
	PipelineDepth int
	// RequestTimeout re-issues a block request that has not been
	// answered (covers choked-then-dropped requests).
	RequestTimeout time.Duration
	// EndgameDup is how many peers a block may be requested from in
	// endgame mode.
	EndgameDup int
	// MinPeers triggers a re-announce when the peer set shrinks below.
	MinPeers int
	// ReannounceMin is the minimum spacing between need-driven
	// announces.
	ReannounceMin time.Duration
	// Tick is the internal maintenance timer granularity.
	Tick time.Duration

	// UploadRate caps payload upload in bytes/second via a
	// deterministic virtual-time token bucket (0: unlimited). The
	// asymmetric pair mirrors anacrolix's UploadRateLimiter /
	// DownloadRateLimiter knobs in Erigon's snapshot downloader.
	UploadRate int64
	// DownloadRate caps payload download in bytes/second (0:
	// unlimited); enforced by gating request issue, so the cap is on
	// requested bytes per virtual second.
	DownloadRate int64
	// RateBurst is the token-bucket capacity in bytes shared by both
	// caps (0: twice the piece length, at least 128 KiB — Erigon uses
	// 2×DefaultPieceSize).
	RateBurst int64
	// WebSeeds lists always-available block servers (see WebSeed) the
	// client attaches as permanently-unchoked pseudo-peers.
	WebSeeds []ip.Endpoint
}

// DefaultClientConfig mirrors BitTorrent 4.x defaults.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Port:             6881,
		MaxPeers:         40,
		MaxInitiate:      30,
		UploadSlots:      4,
		RechokeInterval:  10 * time.Second,
		OptimisticRounds: 3,
		PipelineDepth:    5,
		RequestTimeout:   60 * time.Second,
		EndgameDup:       2,
		MinPeers:         20,
		ReannounceMin:    60 * time.Second,
		Tick:             5 * time.Second,
	}
}

// Progress is one point of a client's download trajectory.
type Progress struct {
	At     sim.Time
	Bytes  int64
	Pieces int
}

// ClientStats summarizes a client's transfer totals.
type ClientStats struct {
	Downloaded int64
	Uploaded   int64
	Peers      int
}

// eventKind discriminates client-loop events.
type eventKind int

const (
	evMsg eventKind = iota
	evPeerJoined
	evPeerClosed
	evPeers
	evTick
	evStop
	evUpPump   // upload token bucket refilled: drain queued uploads
	evFillWake // download token bucket refilled: resume request issue
)

type event struct {
	kind  eventKind
	peer  *peer
	msg   Msg
	peers []ip.Endpoint
	ivl   time.Duration // tracker announce interval (evPeers)
}

// pieceProgress tracks block arrival for an in-progress piece. The
// bitmap is multi-word: a single uint64 silently broke pieces with more
// than 64 blocks (any piece over 1 MiB), where 1<<b overflowed to zero,
// the duplicate check never fired and the piece "completed" with blocks
// missing.
type pieceProgress struct {
	received []uint64 // block-arrival bitmap
	count    int
}

func newPieceProgress(blocks int) *pieceProgress {
	return &pieceProgress{received: make([]uint64, (blocks+63)/64)}
}

func (pp *pieceProgress) has(b int) bool {
	return pp.received[b>>6]&(1<<uint(b&63)) != 0
}

func (pp *pieceProgress) set(b int) {
	pp.received[b>>6] |= 1 << uint(b&63)
}

// Client is one BitTorrent node: leecher or seeder depending on its
// storage. All protocol logic runs in a single simulated goroutine fed
// by an event queue; peer connections push into the queue via conn
// sinks, so a client costs O(1) goroutines regardless of peer count.
type Client struct {
	h       *vnet.Host
	meta    *MetaInfo
	store   Storage
	cfg     ClientConfig
	tracker ip.Endpoint

	events *sim.Chan[event]
	// freeBox is the message-box pool for sends (see msgBox).
	freeBox *msgBox
	peers   []*peer
	byAddr  map[ip.Addr]*peer
	picker  *Picker

	partials     map[int]*pieceProgress
	partialOrder []int          // keys of partials, ascending (block selection order)
	outstanding  map[uint64]int // global request refcounts by blockKey.pack() (endgame > 1)

	// Reusable scratch for per-event work, so the hot paths allocate
	// nothing in steady state.
	rankScratch []rankedPeer
	topScratch  []int
	candScratch []rankedPeer
	keyScratch  []uint64

	started      sim.Time
	finished     sim.Time
	done         bool
	progress     []Progress
	uploaded     int64
	downloaded   int64
	lastAnnounce sim.Time
	rechokeRound int
	dialing      int

	// depth is the effective pipeline depth (PipelineDepth, or the
	// auto-scaled blocks-per-piece value when the config says 0).
	depth int
	// announceIvl is the re-announce interval the tracker handed out
	// in its last response; periodic announces keep the registration
	// alive (0 until the first response: DefaultAnnounceInterval).
	announceIvl time.Duration
	// Rate limiting (nil: unlimited). Uploads that outrun the bucket
	// queue in upQueue and drain on evUpPump; request issue that
	// outruns the download bucket re-arms via evFillWake.
	upLim         *TokenBucket
	downLim       *TokenBucket
	upQueue       []pendingUpload
	upPumpArmed   bool
	fillWakeArmed bool
	// wsConns counts connected web-seed pseudo-peers inside c.peers;
	// they are excluded from the MaxPeers/MaxInitiate/MinPeers budgets
	// (a CDN connection is not swarm capacity).
	wsConns int

	stopped  bool
	listener *vnet.Listener

	om      btMetrics // obs instruments; all-nil when the network is uninstrumented
	sawPeer bool      // first peer admitted (time-to-first-peer observed)

	// OnComplete, if set, fires once when the download finishes.
	OnComplete func(c *Client, at sim.Time)
	// OnPiece, if set, fires at every piece completion (progress
	// collection for the figures).
	OnPiece func(c *Client, at sim.Time, piece int, bytesDone int64)
}

// NewClient creates a client on host h for the given torrent and
// storage, announcing to tracker. Call Start to run it.
//
//p2p:tokenentry constructed either during pre-Run setup (host goroutine is the only accessor) or from a simulated goroutine (resume path); single-threaded either way
func NewClient(h *vnet.Host, meta *MetaInfo, store Storage, tracker ip.Endpoint, cfg ClientConfig) *Client {
	k := h.Network().Kernel()
	c := &Client{
		h:           h,
		meta:        meta,
		store:       store,
		cfg:         cfg,
		tracker:     tracker,
		events:      sim.NewChan[event](k, 0),
		byAddr:      make(map[ip.Addr]*peer),
		picker:      NewPicker(meta.NumPieces(), k.Rand()),
		partials:    make(map[int]*pieceProgress),
		outstanding: make(map[uint64]int),
		om:          newBTMetrics(h.Network().Obs()),
	}
	if store.Bitfield().Complete() {
		c.done = true
	}
	c.depth = cfg.PipelineDepth
	if c.depth <= 0 {
		// Auto-scale: keep one full piece in flight per peer. 256 KiB
		// pieces keep the mainline depth of 5 per the clamp; 2 MiB
		// pieces get 128 (2 MiB in flight), enough to fill a long fat
		// pipe instead of stalling at 80 KiB/RTT.
		c.depth = (meta.PieceLength + BlockLength - 1) / BlockLength
		if c.depth < 5 {
			c.depth = 5
		}
		if c.depth > 256 {
			c.depth = 256
		}
	}
	burst := cfg.RateBurst
	if burst <= 0 {
		burst = 2 * int64(meta.PieceLength)
	}
	c.upLim = NewTokenBucket(cfg.UploadRate, burst)
	c.downLim = NewTokenBucket(cfg.DownloadRate, burst)
	return c
}

// Host returns the client's virtual node.
func (c *Client) Host() *vnet.Host { return c.h }

// Done reports whether the download has completed.
func (c *Client) Done() bool { return c.done }

// FinishedAt returns the completion instant (zero until done; seeders
// report zero).
func (c *Client) FinishedAt() sim.Time { return c.finished }

// StartedAt returns the instant Start ran.
func (c *Client) StartedAt() sim.Time { return c.started }

// Progress returns the piece-completion trajectory.
func (c *Client) Progress() []Progress { return c.progress }

// Stats returns transfer totals.
func (c *Client) Stats() ClientStats {
	return ClientStats{Downloaded: c.downloaded, Uploaded: c.uploaded, Peers: len(c.peers)}
}

// BytesDone returns verified bytes.
func (c *Client) BytesDone() int64 {
	var n int64
	bf := c.store.Bitfield()
	for i := 0; i < bf.Len(); i++ {
		if bf.Has(i) {
			n += int64(c.meta.PieceSize(i))
		}
	}
	return n
}

// Start launches the client's goroutines: listener, ticker, announcer
// and the main event loop.
func (c *Client) Start() {
	k := c.h.Network().Kernel()
	name := "bt-" + c.h.Addr().String()
	k.Go(name, func(p *sim.Proc) {
		c.started = p.Now()
		l, err := c.h.Listen(p, c.cfg.Port)
		if err != nil {
			return
		}
		c.listener = l
		p.Go(name+"/accept", func(p *sim.Proc) { c.acceptLoop(p, l) })
		p.Go(name+"/tick", func(p *sim.Proc) {
			for !c.stopped {
				p.Sleep(c.cfg.Tick)
				c.events.TrySend(event{kind: evTick})
			}
		})
		c.announceAsync(p, EventStarted)
		if !c.done {
			for _, ws := range c.cfg.WebSeeds {
				c.dialWebSeed(p, ws)
			}
		}
		c.loop(p)
	})
}

// dialWebSeed connects to a web seed and attaches it as a pseudo-peer:
// no handshake (the server speaks raw block requests), a full
// bitfield, never choking. Runs in a transient goroutine like dialPeer
// but outside the dial budget — a CDN connection is not swarm
// capacity.
func (c *Client) dialWebSeed(p *sim.Proc, ep ip.Endpoint) {
	p.Go("bt-webseed-dial", func(p *sim.Proc) {
		conn, err := c.h.Dial(p, ep)
		if err != nil {
			return
		}
		pr := newPeer(conn, conn.RemoteAddr().Addr, c.meta.NumPieces(), true)
		pr.webseed = true
		pr.peerChoking = false
		pr.bits = Full(c.meta.NumPieces())
		pr.cl = c
		conn.SetSink(func(pk vnet.Packet, closed bool) {
			if closed {
				c.events.TrySend(event{kind: evPeerClosed, peer: pr})
				return
			}
			if b, ok := pk.Meta.(*msgBox); ok {
				m := b.m
				b.release()
				c.events.TrySend(event{kind: evMsg, peer: pr, msg: m})
			} else if m, ok := pk.Meta.(Msg); ok {
				c.events.TrySend(event{kind: evMsg, peer: pr, msg: m})
			}
		})
		c.events.TrySend(event{kind: evPeerJoined, peer: pr})
	})
}

// Stop takes the client offline abruptly (a churn departure): it closes
// the listener and every peer connection, tells the tracker, and ends
// the event loop. The storage keeps its verified pieces, so a later
// client on the same host can resume from them.
//
//p2p:token
func (c *Client) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.events.TrySend(event{kind: evStop})
}

// Stopped reports whether Stop has been called.
func (c *Client) Stopped() bool { return c.stopped }

// onStop runs inside the event loop when a Stop request arrives.
func (c *Client) onStop(p *sim.Proc) {
	if c.listener != nil {
		c.listener.Close()
	}
	for _, pr := range c.peers {
		pr.closed = true
		pr.conn.Close(p)
	}
	c.peers = nil
	c.byAddr = make(map[ip.Addr]*peer)
	c.announceAsync(p, EventStopped)
	c.events.Close()
}

// left reports bytes remaining, for tracker announces.
func (c *Client) left() int64 { return c.meta.Length - c.BytesDone() }

// announceAsync runs a tracker announce in a transient goroutine and
// feeds the resulting peer list back as an event.
func (c *Client) announceAsync(p *sim.Proc, evt string) {
	c.lastAnnounce = p.Now()
	p.Go("bt-announce", func(p *sim.Proc) {
		peers, ivl, err := AnnounceRequest(p, c.h, c.tracker, c.meta.InfoHash(),
			c.cfg.Port, evt, c.left(), DefaultNumWant)
		if err != nil {
			return
		}
		c.events.TrySend(event{kind: evPeers, peers: peers, ivl: ivl})
	})
}

// acceptLoop admits inbound connections: exchange handshakes in a
// transient goroutine, then hand the peer to the main loop.
func (c *Client) acceptLoop(p *sim.Proc, l *vnet.Listener) {
	for {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		cn := conn
		p.Go("bt-handshake-in", func(p *sim.Proc) {
			hs, ok := recvHandshake(p, cn, 30*time.Second)
			if !ok || hs.InfoHash != c.meta.InfoHash() {
				cn.Close(p)
				return
			}
			if err := sendHandshake(p, cn, c.handshake()); err != nil {
				cn.Close(p)
				return
			}
			c.admit(cn, false)
		})
	}
}

func (c *Client) handshake() Handshake {
	var id [20]byte
	copy(id[:], fmt.Sprintf("%-20s", "go-"+c.h.Addr().String()))
	return Handshake{InfoHash: c.meta.InfoHash(), PeerID: id}
}

// dialPeer initiates an outbound connection in a transient goroutine.
func (c *Client) dialPeer(p *sim.Proc, ep ip.Endpoint) {
	c.dialing++
	c.om.dialAttempts.Inc()
	p.Go("bt-handshake-out", func(p *sim.Proc) {
		defer c.events.TrySend(event{kind: evMsg, msg: Msg{}, peer: nil}) // nudge loop (dialing--)
		conn, err := c.h.Dial(p, ep)
		if err != nil {
			c.om.dialFailures.Inc()
			return
		}
		if err := sendHandshake(p, conn, c.handshake()); err != nil {
			conn.Close(p)
			return
		}
		hs, ok := recvHandshake(p, conn, 30*time.Second)
		if !ok || hs.InfoHash != c.meta.InfoHash() {
			conn.Close(p)
			return
		}
		c.admit(conn, true)
	})
}

// admit registers an established, handshaken connection with the main
// loop. Runs in transient goroutines.
//
//p2p:token
func (c *Client) admit(conn *vnet.Conn, initiated bool) {
	pr := newPeer(conn, conn.RemoteAddr().Addr, c.meta.NumPieces(), initiated)
	pr.cl = c
	conn.SetSink(func(pk vnet.Packet, closed bool) {
		if closed {
			c.events.TrySend(event{kind: evPeerClosed, peer: pr})
			return
		}
		if b, ok := pk.Meta.(*msgBox); ok {
			m := b.m
			b.release()
			c.events.TrySend(event{kind: evMsg, peer: pr, msg: m})
		} else if m, ok := pk.Meta.(Msg); ok {
			c.events.TrySend(event{kind: evMsg, peer: pr, msg: m})
		}
	})
	c.events.TrySend(event{kind: evPeerJoined, peer: pr})
}

// loop is the client's single-threaded protocol engine.
func (c *Client) loop(p *sim.Proc) {
	for {
		ev, err := c.events.Recv(p)
		if err != nil {
			return
		}
		switch ev.kind {
		case evPeerJoined:
			c.onJoin(p, ev.peer)
		case evPeerClosed:
			c.onClose(p, ev.peer)
		case evMsg:
			if ev.peer == nil {
				c.dialing-- // dial attempt resolved (possibly failed)
				continue
			}
			if ev.peer.closed {
				continue
			}
			c.onMsg(p, ev.peer, ev.msg)
		case evPeers:
			if ev.ivl > 0 {
				c.announceIvl = ev.ivl
			}
			if !c.stopped {
				c.onPeers(p, ev.peers)
			}
		case evTick:
			if !c.stopped {
				c.onTick(p)
			}
		case evUpPump:
			if !c.stopped {
				c.onUpPump(p)
			}
		case evFillWake:
			if !c.stopped {
				c.onFillWake(p)
			}
		case evStop:
			c.onStop(p)
			return
		}
	}
}

func (c *Client) onJoin(p *sim.Proc, pr *peer) {
	// The connection can die between admit and this event: a remote at
	// its MaxPeers cap accepts the handshake, then rejects and closes in
	// its own onJoin, and our sink's close notification may be queued
	// ahead of the join. onClose then runs first on a never-registered
	// peer. Registering it here anyway would leave a closed zombie in
	// c.peers forever — it counts toward MinPeers (suppressing the
	// starvation re-announce) and occupies byAddr (blocking a re-dial),
	// wedging the client with no live connections.
	if pr.closed {
		return
	}
	// Note: the dial budget is NOT released here. dialPeer's deferred
	// nudge decrements c.dialing exactly once per attempt, successful or
	// not; decrementing again for initiated peers made every successful
	// dial count twice, drifting c.dialing negative and letting onPeers
	// dial past MaxInitiate.
	if pr.webseed {
		// A web seed bypasses the swarm-capacity budget and the peer
		// wire protocol: no bitfield exchange (its bitfield is full by
		// construction), no interest signaling, no choking either way.
		if c.byAddr[pr.addr] != nil {
			// Mark closed so the sink's close event cannot reach onClose
			// and un-count this peer's (never-added) full bitfield.
			pr.closed = true
			pr.conn.Close(p)
			return
		}
		c.registerPeer(pr)
		c.wsConns++
		c.picker.AddBitfield(pr.bits)
		pr.useful = usefulCount(pr.bits, c.store.Bitfield())
		pr.amInterested = !c.done && pr.useful > 0
		c.fillRequests(p, pr)
		return
	}
	if c.byAddr[pr.addr] != nil || pr.addr == c.h.Addr() {
		pr.conn.Close(p)
		return
	}
	if len(c.peers)-c.wsConns >= c.cfg.MaxPeers {
		// At capacity, a seed prefers a peer it can serve over a
		// redundant seed-to-seed connection: evict the first mutual-seed
		// conn (peer-list order, deterministic) and admit the newcomer.
		// Without this, a tightly capped swarm (snapshot regime: 5 conns
		// per client) can wedge — the late joiner is rejected by every
		// peer forever once the others form a saturated clique of seeds.
		var victim *peer
		if c.done {
			for _, pr2 := range c.peers {
				if !pr2.webseed && pr2.bits.Complete() {
					victim = pr2
					break
				}
			}
		}
		if victim == nil {
			pr.conn.Close(p)
			return
		}
		c.onClose(p, victim)
	}
	c.registerPeer(pr)
	if !c.sawPeer {
		c.sawPeer = true
		c.om.ttfp.Observe(p.Now().Sub(c.started).Seconds())
	}
	if c.store.Bitfield().Count() > 0 {
		bf := c.store.Bitfield()
		pr.send(p, Msg{ID: MsgBitfield, Bits: bf.Bytes()})
	}
}

// registerPeer appends a peer to the ordered peer list and the address
// index, recording its slice position for O(1) departure.
func (c *Client) registerPeer(pr *peer) {
	pr.idx = len(c.peers)
	pr.cl = c
	c.peers = append(c.peers, pr)
	c.byAddr[pr.addr] = pr
}

func (c *Client) onClose(p *sim.Proc, pr *peer) {
	if pr.closed {
		return
	}
	pr.closed = true
	if pr.webseed && pr.idx >= 0 {
		c.wsConns--
	}
	pr.conn.Close(p)
	// Ordered removal by recorded index, not a pointer scan. The order
	// of c.peers is trace-visible (Have broadcasts, rechoke ranking), so
	// later peers shift down rather than swap-filling the hole.
	if i := pr.idx; i >= 0 && i < len(c.peers) && c.peers[i] == pr {
		copy(c.peers[i:], c.peers[i+1:])
		c.peers[len(c.peers)-1] = nil
		c.peers = c.peers[:len(c.peers)-1]
		for j := i; j < len(c.peers); j++ {
			c.peers[j].idx = j
		}
		pr.idx = -1
	}
	// Only drop the index entry this peer owns: a rejected duplicate
	// connection closing must not evict the live peer at the same
	// address.
	if c.byAddr[pr.addr] == pr {
		delete(c.byAddr, pr.addr)
	}
	c.picker.RemoveBitfield(pr.bits)
	for _, e := range pr.inflight {
		c.releaseRequest(e.bk)
	}
}

// releaseRequest drops one outstanding refcount for a block (keyed by
// blockKey.pack()).
func (c *Client) releaseRequest(bk uint64) {
	if n := c.outstanding[bk]; n > 1 {
		c.outstanding[bk] = n - 1
	} else {
		delete(c.outstanding, bk)
	}
}

func (c *Client) onMsg(p *sim.Proc, pr *peer, m Msg) {
	switch m.ID {
	case MsgBitfield:
		c.picker.RemoveBitfield(pr.bits)
		pr.bits = BitfieldFromBytes(m.Bits, c.meta.NumPieces())
		c.picker.AddBitfield(pr.bits)
		pr.useful = usefulCount(pr.bits, c.store.Bitfield())
		c.updateInterest(p, pr)
	case MsgHave:
		if !pr.bits.Has(m.Index) {
			pr.bits.Set(m.Index)
			c.picker.AddHave(m.Index)
			if !c.store.Bitfield().Has(m.Index) {
				pr.useful++
			}
		}
		c.updateInterest(p, pr)
	case MsgChoke:
		pr.peerChoking = true
		for _, e := range pr.inflight {
			c.releaseRequest(e.bk)
		}
		pr.inflight = pr.inflight[:0]
	case MsgUnchoke:
		pr.peerChoking = false
		c.fillRequests(p, pr)
	case MsgInterested:
		pr.peerInterested = true
	case MsgNotInterested:
		pr.peerInterested = false
	case MsgRequest:
		c.onRequest(p, pr, m)
	case MsgPiece:
		c.onBlock(p, pr, m)
	case MsgCancel:
		// Uploads are sent immediately on request in this model, so a
		// cancel that arrives later has nothing to remove.
	}
}

// updateInterest signals a change in our interest in a peer. The
// predicate reads the incrementally maintained useful-piece counter
// (see peer.useful) instead of rescanning the bitfield per wire event.
func (c *Client) updateInterest(p *sim.Proc, pr *peer) {
	want := !c.done && pr.useful > 0
	if want != pr.amInterested {
		pr.amInterested = want
		if pr.webseed {
			return // no interest wire traffic to a block server
		}
		id := MsgNotInterested
		if want {
			id = MsgInterested
		}
		pr.send(p, Msg{ID: id})
	}
}

// onRequest serves an upload request if the peer is unchoked.
func (c *Client) onRequest(p *sim.Proc, pr *peer, m Msg) {
	if pr.amChoking {
		return // stale request racing our choke
	}
	if m.Length <= 0 || m.Length > 128*1024 {
		return
	}
	data, ok := c.store.ReadBlock(m.Index, m.Begin, m.Length)
	if !ok && !c.store.HavePiece(m.Index) {
		return
	}
	out := Msg{ID: MsgPiece, Index: m.Index, Begin: m.Begin, Length: m.Length, Block: data}
	if data == nil {
		if ss, isSparse := c.store.(*SparseStorage); isSparse {
			out.Tag = ss.Tag(m.Index)
		}
	}
	n := int64(out.BlockLen())
	if c.upLim != nil {
		// Pace uploads through the token bucket. FIFO: once anything
		// is queued, later blocks queue behind it even if the bucket
		// has refilled, so send order never depends on block size.
		if len(c.upQueue) > 0 {
			c.upQueue = append(c.upQueue, pendingUpload{pr: pr, m: out, n: n})
			return
		}
		if wait := c.upLim.Take(p.Now(), n); wait > 0 {
			c.upQueue = append(c.upQueue, pendingUpload{pr: pr, m: out, n: n})
			c.armUpPump(wait)
			return
		}
	}
	if pr.send(p, out) == nil {
		c.uploaded += n
		pr.upRate.Add(p.Now(), n)
	}
}

// pendingUpload is one rate-limited piece message awaiting tokens.
type pendingUpload struct {
	pr *peer
	m  Msg
	n  int64
}

// armUpPump schedules an evUpPump wake-up after the given virtual
// delay (at most one timer outstanding).
func (c *Client) armUpPump(wait time.Duration) {
	if c.upPumpArmed {
		return
	}
	c.upPumpArmed = true
	c.h.Network().Kernel().After(wait, func() {
		c.events.TrySend(event{kind: evUpPump})
	})
}

// onUpPump drains the upload queue as far as the refilled token
// bucket allows, re-arming for the remainder.
func (c *Client) onUpPump(p *sim.Proc) {
	c.upPumpArmed = false
	now := p.Now()
	i := 0
	for ; i < len(c.upQueue); i++ {
		e := c.upQueue[i]
		if e.pr.closed || e.pr.amChoking {
			continue // peer departed or was choked while queued
		}
		if wait := c.upLim.Take(now, e.n); wait > 0 {
			c.armUpPump(wait)
			break
		}
		if e.pr.send(p, e.m) == nil {
			c.uploaded += e.n
			e.pr.upRate.Add(now, e.n)
		}
	}
	c.upQueue = append(c.upQueue[:0], c.upQueue[i:]...)
}

// onFillWake resumes request issue after the download bucket
// refilled, in peer-list order (the same order onTick uses).
func (c *Client) onFillWake(p *sim.Proc) {
	c.fillWakeArmed = false
	for _, pr := range c.peers {
		if !pr.peerChoking && pr.amInterested && !pr.closed {
			c.fillRequests(p, pr)
		}
	}
}

// armFillWake schedules an evFillWake wake-up after the given virtual
// delay (at most one timer outstanding).
func (c *Client) armFillWake(wait time.Duration) {
	if c.fillWakeArmed {
		return
	}
	c.fillWakeArmed = true
	c.h.Network().Kernel().After(wait, func() {
		c.events.TrySend(event{kind: evFillWake})
	})
}

// onBlock ingests a downloaded block.
func (c *Client) onBlock(p *sim.Proc, pr *peer, m Msg) {
	bk := blockKey{m.Index, m.Begin}.pack()
	if pr.inflightDel(bk) {
		c.releaseRequest(bk)
	}
	n := int64(m.BlockLen())
	c.downloaded += n
	pr.downRate.Add(p.Now(), n)

	if c.store.HavePiece(m.Index) || c.done {
		c.fillRequests(p, pr)
		return
	}
	pp := c.partials[m.Index]
	if pp == nil {
		pp = newPieceProgress(c.meta.BlocksIn(m.Index))
		c.partials[m.Index] = pp
		c.partialsInsert(m.Index)
		c.picker.MarkPartial(m.Index)
	}
	b := m.Begin / BlockLength
	if pp.has(b) {
		c.fillRequests(p, pr) // endgame duplicate
		return
	}
	if m.Block != nil {
		if err := c.store.WriteBlock(m.Index, m.Begin, m.Block, 0); err != nil {
			return
		}
	} else {
		if err := c.store.WriteBlock(m.Index, m.Begin, nil, m.Length); err != nil {
			return
		}
	}
	pp.set(b)
	pp.count++
	if pp.count == c.meta.BlocksIn(m.Index) {
		okPiece, err := c.store.CompletePiece(m.Index)
		delete(c.partials, m.Index)
		c.partialsRemove(m.Index)
		c.picker.ClearPartial(m.Index)
		if err == nil && okPiece {
			c.onPieceDone(p, m.Index)
		} else {
			// Hash failure: forget the piece and re-download. Refcounts
			// for blocks of this piece must survive for requests still in
			// flight at other peers (endgame duplicates), so rebuild each
			// block's count from the surviving inflight entries instead
			// of deleting wholesale — a wholesale delete zeroed counts
			// other peers still held, and later freeBlock calls then
			// re-requested the block past the EndgameDup bound.
			for b := 0; b < c.meta.BlocksIn(m.Index); b++ {
				rk := blockKey{m.Index, b * BlockLength}.pack()
				live := 0
				for _, other := range c.peers {
					if other.inflightHas(rk) {
						live++
					}
				}
				if live == 0 {
					delete(c.outstanding, rk)
				} else {
					c.outstanding[rk] = live
				}
			}
		}
	}
	c.fillRequests(p, pr)
}

// partialsInsert adds piece pi to the ordered partial-piece list,
// keeping it sorted so block selection never re-sorts per request.
func (c *Client) partialsInsert(pi int) {
	i := sort.SearchInts(c.partialOrder, pi)
	c.partialOrder = append(c.partialOrder, 0)
	copy(c.partialOrder[i+1:], c.partialOrder[i:])
	c.partialOrder[i] = pi
}

// partialsRemove drops piece pi from the ordered partial-piece list.
func (c *Client) partialsRemove(pi int) {
	i := sort.SearchInts(c.partialOrder, pi)
	if i < len(c.partialOrder) && c.partialOrder[i] == pi {
		c.partialOrder = append(c.partialOrder[:i], c.partialOrder[i+1:]...)
	}
}

// onPieceDone broadcasts Have, records progress and checks completion.
func (c *Client) onPieceDone(p *sim.Proc, piece int) {
	now := p.Now()
	c.om.pieces.Inc()
	bytesDone := c.BytesDone()
	c.progress = append(c.progress, Progress{At: now, Bytes: bytesDone, Pieces: c.store.Bitfield().Count()})
	if c.OnPiece != nil {
		c.OnPiece(c, now, piece, bytesDone)
	}
	c.picker.MarkHave(piece)
	for _, pr := range c.peers {
		if pr.bits.Has(piece) {
			pr.useful--
		}
		if !pr.webseed {
			pr.send(p, Msg{ID: MsgHave, Index: piece})
		}
		// Cancel endgame duplicates for this piece, in block order: the
		// cancels are wire messages, so their send order must not
		// depend on map iteration order. Packed keys of one piece sort
		// by begin offset.
		dups := c.keyScratch[:0]
		for _, e := range pr.inflight {
			if unpackBlockKey(e.bk).piece == piece {
				dups = append(dups, e.bk)
			}
		}
		slices.Sort(dups)
		c.keyScratch = dups[:0]
		for _, bk := range dups {
			begin := unpackBlockKey(bk).begin
			pr.send(p, Msg{ID: MsgCancel, Index: piece, Begin: begin, Length: c.meta.BlockSize(piece, begin/BlockLength)})
			pr.inflightDel(bk)
			c.releaseRequest(bk)
		}
	}
	if c.store.Bitfield().Complete() && !c.done {
		c.done = true
		c.finished = now
		c.om.completions.Inc()
		c.announceAsync(p, EventCompleted)
		for _, pr := range c.peers {
			c.updateInterest(p, pr)
		}
		if c.OnComplete != nil {
			c.OnComplete(c, now)
		}
	}
}

// onPeers dials tracker-provided peers we are not yet connected to.
func (c *Client) onPeers(p *sim.Proc, eps []ip.Endpoint) {
	for _, ep := range eps {
		if len(c.peers)-c.wsConns+c.dialing >= c.cfg.MaxInitiate {
			return
		}
		if ep.Addr == c.h.Addr() || c.byAddr[ep.Addr] != nil {
			continue
		}
		c.dialPeer(p, ep)
	}
}

// onTick drives the choker, request timeouts and re-announces.
func (c *Client) onTick(p *sim.Proc) {
	now := p.Now()
	// Request timeouts.
	for _, pr := range c.peers {
		for i := 0; i < len(pr.inflight); {
			e := pr.inflight[i]
			if now.Sub(e.at) > c.cfg.RequestTimeout {
				last := len(pr.inflight) - 1
				pr.inflight[i] = pr.inflight[last]
				pr.inflight = pr.inflight[:last]
				c.releaseRequest(e.bk)
				continue // the swapped-in entry now sits at i
			}
			i++
		}
		if !pr.peerChoking && pr.amInterested {
			c.fillRequests(p, pr)
		}
	}
	// Rechoke on its own period (tick granularity).
	if now.Sub(c.started) >= time.Duration(c.rechokeRound+1)*c.cfg.RechokeInterval {
		c.rechokeRound++
		c.rechoke(p)
	}
	// Re-announce when starved for peers.
	if !c.done && len(c.peers)-c.wsConns < c.cfg.MinPeers &&
		now.Sub(c.lastAnnounce) >= c.cfg.ReannounceMin {
		c.announceAsync(p, EventEmpty)
		return
	}
	// Honor the tracker's announce interval: periodic re-announces keep
	// the registration alive (the tracker expires peers that miss ~2
	// intervals) and pick up swarm changes even when the peer set is
	// healthy. Before this path existed the interval was parsed off the
	// wire and dropped, and a client with MinPeers satisfied never
	// announced again. Completed clients keep the historical behavior —
	// announce on complete/stop only — so a seeder's trace does not
	// change with this fix.
	if !c.done {
		ivl := c.announceIvl
		if ivl <= 0 {
			ivl = DefaultAnnounceInterval
		}
		if now.Sub(c.lastAnnounce) >= ivl {
			c.announceAsync(p, EventEmpty)
		}
	}
}

// rankedPeer is one interested peer with its rate snapshot and its
// position in Client.peers — rate descending, position ascending is the
// total order the choker ranks by (identical to a stable sort of the
// peer list by rate).
type rankedPeer struct {
	pr   *peer
	rate float64
	ord  int
}

// betterRanked is the choker's strict total order.
func betterRanked(a, b rankedPeer) bool {
	return a.rate > b.rate || (a.rate == b.rate && a.ord < b.ord)
}

// rechoke implements tit-for-tat: unchoke the UploadSlots-1 best
// interested peers (by their upload rate to us while leeching, by our
// upload rate to them while seeding) plus one optimistic unchoke
// rotated every OptimisticRounds rounds.
//
// Selection is top-K over a single pass of rate snapshots instead of an
// insertion sort of all interested peers: the old sort re-evaluated
// RateEstimator.Rate (a window trim) inside the comparator, O(n²) trims
// per round. Rates are evaluated exactly once per peer here, and the
// unchoke set is tracked by a per-round stamp on the peer rather than a
// freshly allocated map. The ranking order — rate descending, peer-list
// position breaking ties — is the same one the stable sort produced, so
// choke decisions and the optimistic RNG draw are bit-identical.
func (c *Client) rechoke(p *sim.Proc) {
	now := p.Now()
	round := c.rechokeRound
	// Snapshot interested peers and their rates, in peer-list order.
	ranked := c.rankScratch[:0]
	for ord, pr := range c.peers {
		if !pr.peerInterested {
			continue
		}
		r := pr.downRate.Rate(now)
		if c.done {
			r = pr.upRate.Rate(now)
		}
		ranked = append(ranked, rankedPeer{pr: pr, rate: r, ord: ord})
	}
	c.rankScratch = ranked[:0]
	// Top-K regular unchokes by bounded insertion (K = UploadSlots-1,
	// a handful), marked with this round's stamp.
	regular := c.cfg.UploadSlots - 1
	top := c.topScratch[:0]
	if regular > 0 {
		for i := range ranked {
			n := len(top)
			if n == regular && !betterRanked(ranked[i], ranked[top[n-1]]) {
				continue
			}
			pos := n
			for pos > 0 && betterRanked(ranked[i], ranked[top[pos-1]]) {
				pos--
			}
			if n < regular {
				top = append(top, 0)
				copy(top[pos+1:], top[pos:n])
			} else {
				copy(top[pos+1:], top[pos:n-1])
			}
			top[pos] = i
		}
	}
	c.topScratch = top[:0]
	for _, i := range top {
		ranked[i].pr.unchokeStamp = round
	}
	// Optimistic slot: rotate every OptimisticRounds rounds.
	rotate := round%c.cfg.OptimisticRounds == 1 || c.cfg.OptimisticRounds <= 1
	var current *peer
	for _, pr := range c.peers {
		if pr.optimistic {
			current = pr
		}
	}
	if current == nil || rotate || current.unchokeStamp == round {
		if current != nil {
			current.optimistic = false
		}
		// Candidates are the interested peers outside the regular set;
		// the RNG draws a rank into their rate ordering, so select the
		// k-th best by partial selection over the (small) remainder.
		cand := c.candScratch[:0]
		for _, rp := range ranked {
			if rp.pr.unchokeStamp != round {
				cand = append(cand, rp)
			}
		}
		c.candScratch = cand[:0]
		if len(cand) > 0 {
			k := c.h.Network().Kernel().Rand().Intn(len(cand))
			for j := 0; j <= k; j++ {
				best := j
				for l := j + 1; l < len(cand); l++ {
					if betterRanked(cand[l], cand[best]) {
						best = l
					}
				}
				cand[j], cand[best] = cand[best], cand[j]
			}
			current = cand[k].pr
			current.optimistic = true
		} else {
			current = nil
		}
	}
	if current != nil {
		current.unchokeStamp = round
	}
	for _, pr := range c.peers {
		want := pr.unchokeStamp == round
		if want && pr.amChoking {
			pr.amChoking = false
			c.om.unchokes.Inc()
			pr.send(p, Msg{ID: MsgUnchoke})
		} else if !want && !pr.amChoking {
			pr.amChoking = true
			c.om.chokes.Inc()
			pr.send(p, Msg{ID: MsgChoke})
		}
	}
}

// fillRequests keeps a peer's request pipeline full.
func (c *Client) fillRequests(p *sim.Proc, pr *peer) {
	if c.done || pr.peerChoking || !pr.amInterested || pr.closed {
		return
	}
	now := p.Now()
	for len(pr.inflight) < c.depth {
		piece, begin, length := c.nextBlock(pr)
		if piece < 0 {
			return
		}
		if c.downLim != nil {
			// Gate request issue on the download bucket: the cap is on
			// requested bytes per virtual second, which converges to
			// received bytes per second once the pipeline drains. The
			// picked block is not yet marked outstanding, so it is
			// re-offered (same piece, same block) when the bucket wakes
			// us — selection stays deterministic.
			if wait := c.downLim.Take(now, int64(length)); wait > 0 {
				c.armFillWake(wait)
				return
			}
		}
		bk := blockKey{piece, begin}.pack()
		pr.inflightAdd(bk, now)
		c.outstanding[bk]++
		if pr.send(p, Msg{ID: MsgRequest, Index: piece, Begin: begin, Length: length}) != nil {
			return
		}
	}
}

// nextBlock selects the next block to request from a peer: first an
// unrequested block of a partial piece, then a fresh piece from the
// picker, then endgame duplication. Partial pieces are visited in
// ascending index order via the maintained c.partialOrder list — block
// selection is trace-visible and must be deterministic for a fixed
// seed, and re-sorting the partial map's keys per request was the
// request path's main allocation.
func (c *Client) nextBlock(pr *peer) (piece, begin, length int) {
	have := c.store.Bitfield()
	// 1. Unrequested blocks of partial pieces the peer has.
	for _, pi := range c.partialOrder {
		if !pr.bits.Has(pi) {
			continue
		}
		if b := c.freeBlock(pi, c.partials[pi], pr, 0); b >= 0 {
			return pi, b * BlockLength, c.meta.BlockSize(pi, b)
		}
	}
	// 2. A fresh piece.
	inFlight := func(i int) bool {
		// A piece is saturated when every block is requested.
		if c.partials[i] != nil {
			return c.freeBlockAny(i, c.partials[i], 0) < 0
		}
		return c.pieceSaturated(i)
	}
	pi := c.picker.Pick(have, pr.bits, inFlight)
	if pi >= 0 && c.partials[pi] == nil {
		// Start the piece: request block 0 (further blocks follow as
		// the pipeline refills).
		if c.outstanding[blockKey{pi, 0}.pack()] == 0 {
			c.picker.MarkPartial(pi)
			c.partials[pi] = newPieceProgress(c.meta.BlocksIn(pi))
			c.partialsInsert(pi)
			return pi, 0, c.meta.BlockSize(pi, 0)
		}
	} else if pi >= 0 {
		if b := c.freeBlock(pi, c.partials[pi], pr, 0); b >= 0 {
			return pi, b * BlockLength, c.meta.BlockSize(pi, b)
		}
	}
	// 3. Endgame: duplicate outstanding blocks up to EndgameDup.
	for _, pi := range c.partialOrder {
		if !pr.bits.Has(pi) {
			continue
		}
		if b := c.freeBlock(pi, c.partials[pi], pr, c.cfg.EndgameDup-1); b >= 0 {
			return pi, b * BlockLength, c.meta.BlockSize(pi, b)
		}
	}
	return -1, 0, 0
}

// freeBlock finds a block of piece pi not yet received, not in flight
// at this peer, and with a global outstanding count ≤ maxDup.
func (c *Client) freeBlock(pi int, pp *pieceProgress, pr *peer, maxDup int) int {
	n := c.meta.BlocksIn(pi)
	for b := 0; b < n; b++ {
		if pp.has(b) {
			continue
		}
		bk := blockKey{pi, b * BlockLength}.pack()
		if pr.inflightHas(bk) {
			continue
		}
		if c.outstanding[bk] > maxDup {
			continue
		}
		return b
	}
	return -1
}

// freeBlockAny is freeBlock without the per-peer exclusion.
func (c *Client) freeBlockAny(pi int, pp *pieceProgress, maxDup int) int {
	n := c.meta.BlocksIn(pi)
	for b := 0; b < n; b++ {
		if pp.has(b) {
			continue
		}
		if c.outstanding[blockKey{pi, b * BlockLength}.pack()] > maxDup {
			continue
		}
		return b
	}
	return -1
}

// pieceSaturated reports whether a not-yet-started piece's first block
// is already outstanding (conservative saturation check).
func (c *Client) pieceSaturated(i int) bool {
	return c.outstanding[blockKey{i, 0}.pack()] > 0
}
