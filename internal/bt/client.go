package bt

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// ClientConfig tunes a BitTorrent client, defaults matching the 4.x
// mainline client the paper instruments.
type ClientConfig struct {
	// Port is the listening port (mainline: 6881).
	Port ip.Port
	// MaxPeers bounds total connections (mainline: ~40 usable).
	MaxPeers int
	// MaxInitiate bounds connections we initiate (mainline: 30-ish;
	// further peers come from inbound connections).
	MaxInitiate int
	// UploadSlots is the number of simultaneous unchokes, including the
	// optimistic one (mainline: 4).
	UploadSlots int
	// RechokeInterval is the choker period (mainline: 10 s).
	RechokeInterval time.Duration
	// OptimisticRounds is how many rechoke rounds an optimistic unchoke
	// lasts (mainline: 3 → 30 s).
	OptimisticRounds int
	// PipelineDepth is the outstanding-request backlog per peer
	// (mainline: ~5).
	PipelineDepth int
	// RequestTimeout re-issues a block request that has not been
	// answered (covers choked-then-dropped requests).
	RequestTimeout time.Duration
	// EndgameDup is how many peers a block may be requested from in
	// endgame mode.
	EndgameDup int
	// MinPeers triggers a re-announce when the peer set shrinks below.
	MinPeers int
	// ReannounceMin is the minimum spacing between need-driven
	// announces.
	ReannounceMin time.Duration
	// Tick is the internal maintenance timer granularity.
	Tick time.Duration
}

// DefaultClientConfig mirrors BitTorrent 4.x defaults.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Port:             6881,
		MaxPeers:         40,
		MaxInitiate:      30,
		UploadSlots:      4,
		RechokeInterval:  10 * time.Second,
		OptimisticRounds: 3,
		PipelineDepth:    5,
		RequestTimeout:   60 * time.Second,
		EndgameDup:       2,
		MinPeers:         20,
		ReannounceMin:    60 * time.Second,
		Tick:             5 * time.Second,
	}
}

// Progress is one point of a client's download trajectory.
type Progress struct {
	At     sim.Time
	Bytes  int64
	Pieces int
}

// ClientStats summarizes a client's transfer totals.
type ClientStats struct {
	Downloaded int64
	Uploaded   int64
	Peers      int
}

// eventKind discriminates client-loop events.
type eventKind int

const (
	evMsg eventKind = iota
	evPeerJoined
	evPeerClosed
	evPeers
	evTick
	evStop
)

type event struct {
	kind  eventKind
	peer  *peer
	msg   Msg
	peers []ip.Endpoint
}

// pieceProgress tracks block arrival for an in-progress piece.
type pieceProgress struct {
	received uint64 // bitmap
	count    int
}

// Client is one BitTorrent node: leecher or seeder depending on its
// storage. All protocol logic runs in a single simulated goroutine fed
// by an event queue; peer connections push into the queue via conn
// sinks, so a client costs O(1) goroutines regardless of peer count.
type Client struct {
	h       *vnet.Host
	meta    *MetaInfo
	store   Storage
	cfg     ClientConfig
	tracker ip.Endpoint

	events *sim.Chan[event]
	peers  []*peer
	byAddr map[ip.Addr]*peer
	picker *Picker

	partials    map[int]*pieceProgress
	outstanding map[blockKey]int // global request refcounts (endgame > 1)

	started      sim.Time
	finished     sim.Time
	done         bool
	progress     []Progress
	uploaded     int64
	downloaded   int64
	lastAnnounce sim.Time
	rechokeRound int
	dialing      int

	stopped  bool
	listener *vnet.Listener

	om      btMetrics // obs instruments; all-nil when the network is uninstrumented
	sawPeer bool      // first peer admitted (time-to-first-peer observed)

	// OnComplete, if set, fires once when the download finishes.
	OnComplete func(c *Client, at sim.Time)
	// OnPiece, if set, fires at every piece completion (progress
	// collection for the figures).
	OnPiece func(c *Client, at sim.Time, piece int, bytesDone int64)
}

// NewClient creates a client on host h for the given torrent and
// storage, announcing to tracker. Call Start to run it.
func NewClient(h *vnet.Host, meta *MetaInfo, store Storage, tracker ip.Endpoint, cfg ClientConfig) *Client {
	k := h.Network().Kernel()
	c := &Client{
		h:           h,
		meta:        meta,
		store:       store,
		cfg:         cfg,
		tracker:     tracker,
		events:      sim.NewChan[event](k, 0),
		byAddr:      make(map[ip.Addr]*peer),
		picker:      NewPicker(meta.NumPieces(), k.Rand()),
		partials:    make(map[int]*pieceProgress),
		outstanding: make(map[blockKey]int),
		om:          newBTMetrics(h.Network().Obs()),
	}
	if store.Bitfield().Complete() {
		c.done = true
	}
	return c
}

// Host returns the client's virtual node.
func (c *Client) Host() *vnet.Host { return c.h }

// Done reports whether the download has completed.
func (c *Client) Done() bool { return c.done }

// FinishedAt returns the completion instant (zero until done; seeders
// report zero).
func (c *Client) FinishedAt() sim.Time { return c.finished }

// StartedAt returns the instant Start ran.
func (c *Client) StartedAt() sim.Time { return c.started }

// Progress returns the piece-completion trajectory.
func (c *Client) Progress() []Progress { return c.progress }

// Stats returns transfer totals.
func (c *Client) Stats() ClientStats {
	return ClientStats{Downloaded: c.downloaded, Uploaded: c.uploaded, Peers: len(c.peers)}
}

// BytesDone returns verified bytes.
func (c *Client) BytesDone() int64 {
	var n int64
	bf := c.store.Bitfield()
	for i := 0; i < bf.Len(); i++ {
		if bf.Has(i) {
			n += int64(c.meta.PieceSize(i))
		}
	}
	return n
}

// Start launches the client's goroutines: listener, ticker, announcer
// and the main event loop.
func (c *Client) Start() {
	k := c.h.Network().Kernel()
	name := "bt-" + c.h.Addr().String()
	k.Go(name, func(p *sim.Proc) {
		c.started = p.Now()
		l, err := c.h.Listen(p, c.cfg.Port)
		if err != nil {
			return
		}
		c.listener = l
		p.Go(name+"/accept", func(p *sim.Proc) { c.acceptLoop(p, l) })
		p.Go(name+"/tick", func(p *sim.Proc) {
			for !c.stopped {
				p.Sleep(c.cfg.Tick)
				c.events.TrySend(event{kind: evTick})
			}
		})
		c.announceAsync(p, EventStarted)
		c.loop(p)
	})
}

// Stop takes the client offline abruptly (a churn departure): it closes
// the listener and every peer connection, tells the tracker, and ends
// the event loop. The storage keeps its verified pieces, so a later
// client on the same host can resume from them.
func (c *Client) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.events.TrySend(event{kind: evStop})
}

// Stopped reports whether Stop has been called.
func (c *Client) Stopped() bool { return c.stopped }

// onStop runs inside the event loop when a Stop request arrives.
func (c *Client) onStop(p *sim.Proc) {
	if c.listener != nil {
		c.listener.Close()
	}
	for _, pr := range c.peers {
		pr.closed = true
		pr.conn.Close(p)
	}
	c.peers = nil
	c.byAddr = make(map[ip.Addr]*peer)
	c.announceAsync(p, EventStopped)
	c.events.Close()
}

// left reports bytes remaining, for tracker announces.
func (c *Client) left() int64 { return c.meta.Length - c.BytesDone() }

// announceAsync runs a tracker announce in a transient goroutine and
// feeds the resulting peer list back as an event.
func (c *Client) announceAsync(p *sim.Proc, evt string) {
	c.lastAnnounce = p.Now()
	p.Go("bt-announce", func(p *sim.Proc) {
		peers, err := AnnounceRequest(p, c.h, c.tracker, c.meta.InfoHash(),
			c.cfg.Port, evt, c.left(), DefaultNumWant)
		if err != nil {
			return
		}
		c.events.TrySend(event{kind: evPeers, peers: peers})
	})
}

// acceptLoop admits inbound connections: exchange handshakes in a
// transient goroutine, then hand the peer to the main loop.
func (c *Client) acceptLoop(p *sim.Proc, l *vnet.Listener) {
	for {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		cn := conn
		p.Go("bt-handshake-in", func(p *sim.Proc) {
			hs, ok := recvHandshake(p, cn, 30*time.Second)
			if !ok || hs.InfoHash != c.meta.InfoHash() {
				cn.Close(p)
				return
			}
			if err := sendHandshake(p, cn, c.handshake()); err != nil {
				cn.Close(p)
				return
			}
			c.admit(cn, false)
		})
	}
}

func (c *Client) handshake() Handshake {
	var id [20]byte
	copy(id[:], fmt.Sprintf("%-20s", "go-"+c.h.Addr().String()))
	return Handshake{InfoHash: c.meta.InfoHash(), PeerID: id}
}

// dialPeer initiates an outbound connection in a transient goroutine.
func (c *Client) dialPeer(p *sim.Proc, ep ip.Endpoint) {
	c.dialing++
	c.om.dialAttempts.Inc()
	p.Go("bt-handshake-out", func(p *sim.Proc) {
		defer c.events.TrySend(event{kind: evMsg, msg: Msg{}, peer: nil}) // nudge loop (dialing--)
		conn, err := c.h.Dial(p, ep)
		if err != nil {
			c.om.dialFailures.Inc()
			return
		}
		if err := sendHandshake(p, conn, c.handshake()); err != nil {
			conn.Close(p)
			return
		}
		hs, ok := recvHandshake(p, conn, 30*time.Second)
		if !ok || hs.InfoHash != c.meta.InfoHash() {
			conn.Close(p)
			return
		}
		c.admit(conn, true)
	})
}

// admit registers an established, handshaken connection with the main
// loop. Runs in transient goroutines.
func (c *Client) admit(conn *vnet.Conn, initiated bool) {
	pr := newPeer(conn, conn.RemoteAddr().Addr, c.meta.NumPieces(), initiated)
	conn.SetSink(func(pk vnet.Packet, closed bool) {
		if closed {
			c.events.TrySend(event{kind: evPeerClosed, peer: pr})
			return
		}
		if m, ok := pk.Meta.(Msg); ok {
			c.events.TrySend(event{kind: evMsg, peer: pr, msg: m})
		}
	})
	c.events.TrySend(event{kind: evPeerJoined, peer: pr})
}

// loop is the client's single-threaded protocol engine.
func (c *Client) loop(p *sim.Proc) {
	for {
		ev, err := c.events.Recv(p)
		if err != nil {
			return
		}
		switch ev.kind {
		case evPeerJoined:
			c.onJoin(p, ev.peer)
		case evPeerClosed:
			c.onClose(p, ev.peer)
		case evMsg:
			if ev.peer == nil {
				c.dialing-- // dial attempt resolved (possibly failed)
				continue
			}
			if ev.peer.closed {
				continue
			}
			c.onMsg(p, ev.peer, ev.msg)
		case evPeers:
			if !c.stopped {
				c.onPeers(p, ev.peers)
			}
		case evTick:
			if !c.stopped {
				c.onTick(p)
			}
		case evStop:
			c.onStop(p)
			return
		}
	}
}

func (c *Client) onJoin(p *sim.Proc, pr *peer) {
	if pr.initiated {
		c.dialing--
	}
	if len(c.peers) >= c.cfg.MaxPeers || c.byAddr[pr.addr] != nil || pr.addr == c.h.Addr() {
		pr.conn.Close(p)
		return
	}
	c.peers = append(c.peers, pr)
	c.byAddr[pr.addr] = pr
	if !c.sawPeer {
		c.sawPeer = true
		c.om.ttfp.Observe(p.Now().Sub(c.started).Seconds())
	}
	if c.store.Bitfield().Count() > 0 {
		bf := c.store.Bitfield()
		pr.send(p, Msg{ID: MsgBitfield, Bits: bf.Bytes()})
	}
}

func (c *Client) onClose(p *sim.Proc, pr *peer) {
	if pr.closed {
		return
	}
	pr.closed = true
	pr.conn.Close(p)
	for i, x := range c.peers {
		if x == pr {
			c.peers = append(c.peers[:i], c.peers[i+1:]...)
			break
		}
	}
	delete(c.byAddr, pr.addr)
	c.picker.RemoveBitfield(pr.bits)
	for bk := range pr.inflight {
		c.releaseRequest(bk)
	}
}

// releaseRequest drops one outstanding refcount for a block.
func (c *Client) releaseRequest(bk blockKey) {
	if n := c.outstanding[bk]; n > 1 {
		c.outstanding[bk] = n - 1
	} else {
		delete(c.outstanding, bk)
	}
}

func (c *Client) onMsg(p *sim.Proc, pr *peer, m Msg) {
	switch m.ID {
	case MsgBitfield:
		c.picker.RemoveBitfield(pr.bits)
		pr.bits = BitfieldFromBytes(m.Bits, c.meta.NumPieces())
		c.picker.AddBitfield(pr.bits)
		c.updateInterest(p, pr)
	case MsgHave:
		if !pr.bits.Has(m.Index) {
			pr.bits.Set(m.Index)
			c.picker.AddHave(m.Index)
		}
		c.updateInterest(p, pr)
	case MsgChoke:
		pr.peerChoking = true
		for bk := range pr.inflight {
			c.releaseRequest(bk)
			delete(pr.inflight, bk)
		}
	case MsgUnchoke:
		pr.peerChoking = false
		c.fillRequests(p, pr)
	case MsgInterested:
		pr.peerInterested = true
	case MsgNotInterested:
		pr.peerInterested = false
	case MsgRequest:
		c.onRequest(p, pr, m)
	case MsgPiece:
		c.onBlock(p, pr, m)
	case MsgCancel:
		// Uploads are sent immediately on request in this model, so a
		// cancel that arrives later has nothing to remove.
	}
}

// updateInterest recomputes and signals our interest in a peer.
func (c *Client) updateInterest(p *sim.Proc, pr *peer) {
	want := false
	if !c.done {
		have := c.store.Bitfield()
		for i := 0; i < pr.bits.Len(); i++ {
			if pr.bits.Has(i) && !have.Has(i) {
				want = true
				break
			}
		}
	}
	if want != pr.amInterested {
		pr.amInterested = want
		id := MsgNotInterested
		if want {
			id = MsgInterested
		}
		pr.send(p, Msg{ID: id})
	}
}

// onRequest serves an upload request if the peer is unchoked.
func (c *Client) onRequest(p *sim.Proc, pr *peer, m Msg) {
	if pr.amChoking {
		return // stale request racing our choke
	}
	if m.Length <= 0 || m.Length > 128*1024 {
		return
	}
	data, ok := c.store.ReadBlock(m.Index, m.Begin, m.Length)
	if !ok && !c.store.HavePiece(m.Index) {
		return
	}
	out := Msg{ID: MsgPiece, Index: m.Index, Begin: m.Begin, Length: m.Length, Block: data}
	if data == nil {
		if ss, isSparse := c.store.(*SparseStorage); isSparse {
			out.Tag = ss.Tag(m.Index)
		}
	}
	if pr.send(p, out) == nil {
		n := int64(out.BlockLen())
		c.uploaded += n
		pr.upRate.Add(p.Now(), n)
	}
}

// onBlock ingests a downloaded block.
func (c *Client) onBlock(p *sim.Proc, pr *peer, m Msg) {
	bk := blockKey{m.Index, m.Begin}
	if _, was := pr.inflight[bk]; was {
		delete(pr.inflight, bk)
		c.releaseRequest(bk)
	}
	n := int64(m.BlockLen())
	c.downloaded += n
	pr.downRate.Add(p.Now(), n)

	if c.store.HavePiece(m.Index) || c.done {
		c.fillRequests(p, pr)
		return
	}
	pp := c.partials[m.Index]
	if pp == nil {
		pp = &pieceProgress{}
		c.partials[m.Index] = pp
		c.picker.MarkPartial(m.Index)
	}
	b := m.Begin / BlockLength
	bit := uint64(1) << uint(b)
	if pp.received&bit != 0 {
		c.fillRequests(p, pr) // endgame duplicate
		return
	}
	if m.Block != nil {
		if err := c.store.WriteBlock(m.Index, m.Begin, m.Block, 0); err != nil {
			return
		}
	} else {
		if err := c.store.WriteBlock(m.Index, m.Begin, nil, m.Length); err != nil {
			return
		}
	}
	pp.received |= bit
	pp.count++
	if pp.count == c.meta.BlocksIn(m.Index) {
		okPiece, err := c.store.CompletePiece(m.Index)
		delete(c.partials, m.Index)
		c.picker.ClearPartial(m.Index)
		if err == nil && okPiece {
			c.onPieceDone(p, m.Index)
		} else {
			// Hash failure: forget the piece and re-download.
			for b := 0; b < c.meta.BlocksIn(m.Index); b++ {
				delete(c.outstanding, blockKey{m.Index, b * BlockLength})
			}
		}
	}
	c.fillRequests(p, pr)
}

// onPieceDone broadcasts Have, records progress and checks completion.
func (c *Client) onPieceDone(p *sim.Proc, piece int) {
	now := p.Now()
	c.om.pieces.Inc()
	bytesDone := c.BytesDone()
	c.progress = append(c.progress, Progress{At: now, Bytes: bytesDone, Pieces: c.store.Bitfield().Count()})
	if c.OnPiece != nil {
		c.OnPiece(c, now, piece, bytesDone)
	}
	for _, pr := range c.peers {
		pr.send(p, Msg{ID: MsgHave, Index: piece})
		// Cancel endgame duplicates for this piece, in block order: the
		// cancels are wire messages, so their send order must not
		// depend on map iteration order.
		var dups []blockKey
		for bk := range pr.inflight {
			if bk.piece == piece {
				dups = append(dups, bk)
			}
		}
		sort.Slice(dups, func(i, j int) bool { return dups[i].begin < dups[j].begin })
		for _, bk := range dups {
			pr.send(p, Msg{ID: MsgCancel, Index: bk.piece, Begin: bk.begin, Length: c.meta.BlockSize(bk.piece, bk.begin/BlockLength)})
			delete(pr.inflight, bk)
			c.releaseRequest(bk)
		}
	}
	if c.store.Bitfield().Complete() && !c.done {
		c.done = true
		c.finished = now
		c.om.completions.Inc()
		c.announceAsync(p, EventCompleted)
		for _, pr := range c.peers {
			c.updateInterest(p, pr)
		}
		if c.OnComplete != nil {
			c.OnComplete(c, now)
		}
	}
}

// onPeers dials tracker-provided peers we are not yet connected to.
func (c *Client) onPeers(p *sim.Proc, eps []ip.Endpoint) {
	for _, ep := range eps {
		if len(c.peers)+c.dialing >= c.cfg.MaxInitiate {
			return
		}
		if ep.Addr == c.h.Addr() || c.byAddr[ep.Addr] != nil {
			continue
		}
		c.dialPeer(p, ep)
	}
}

// onTick drives the choker, request timeouts and re-announces.
func (c *Client) onTick(p *sim.Proc) {
	now := p.Now()
	// Request timeouts.
	for _, pr := range c.peers {
		for bk, at := range pr.inflight {
			if now.Sub(at) > c.cfg.RequestTimeout {
				delete(pr.inflight, bk)
				c.releaseRequest(bk)
			}
		}
		if !pr.peerChoking && pr.amInterested {
			c.fillRequests(p, pr)
		}
	}
	// Rechoke on its own period (tick granularity).
	if now.Sub(c.started) >= time.Duration(c.rechokeRound+1)*c.cfg.RechokeInterval {
		c.rechokeRound++
		c.rechoke(p)
	}
	// Re-announce when starved for peers.
	if !c.done && len(c.peers) < c.cfg.MinPeers &&
		now.Sub(c.lastAnnounce) >= c.cfg.ReannounceMin {
		c.announceAsync(p, EventEmpty)
	}
}

// rechoke implements tit-for-tat: unchoke the UploadSlots-1 best
// interested peers (by their upload rate to us while leeching, by our
// upload rate to them while seeding) plus one optimistic unchoke
// rotated every OptimisticRounds rounds.
func (c *Client) rechoke(p *sim.Proc) {
	now := p.Now()
	rate := func(pr *peer) float64 {
		if c.done {
			return pr.upRate.Rate(now)
		}
		return pr.downRate.Rate(now)
	}
	// Rank interested peers.
	var interested []*peer
	for _, pr := range c.peers {
		if pr.peerInterested {
			interested = append(interested, pr)
		}
	}
	for i := 1; i < len(interested); i++ {
		for j := i; j > 0 && rate(interested[j]) > rate(interested[j-1]); j-- {
			interested[j], interested[j-1] = interested[j-1], interested[j]
		}
	}
	regular := c.cfg.UploadSlots - 1
	unchoke := make(map[*peer]bool)
	for i := 0; i < len(interested) && i < regular; i++ {
		unchoke[interested[i]] = true
	}
	// Optimistic slot: rotate every OptimisticRounds rounds.
	rotate := c.rechokeRound%c.cfg.OptimisticRounds == 1 || c.cfg.OptimisticRounds <= 1
	var current *peer
	for _, pr := range c.peers {
		if pr.optimistic {
			current = pr
		}
	}
	if current == nil || rotate || unchoke[current] {
		if current != nil {
			current.optimistic = false
		}
		var candidates []*peer
		for _, pr := range interested {
			if !unchoke[pr] {
				candidates = append(candidates, pr)
			}
		}
		if len(candidates) > 0 {
			current = candidates[c.h.Network().Kernel().Rand().Intn(len(candidates))]
			current.optimistic = true
		} else {
			current = nil
		}
	}
	if current != nil {
		unchoke[current] = true
	}
	for _, pr := range c.peers {
		want := unchoke[pr]
		if want && pr.amChoking {
			pr.amChoking = false
			c.om.unchokes.Inc()
			pr.send(p, Msg{ID: MsgUnchoke})
		} else if !want && !pr.amChoking {
			pr.amChoking = true
			c.om.chokes.Inc()
			pr.send(p, Msg{ID: MsgChoke})
		}
	}
}

// fillRequests keeps a peer's request pipeline full.
func (c *Client) fillRequests(p *sim.Proc, pr *peer) {
	if c.done || pr.peerChoking || !pr.amInterested || pr.closed {
		return
	}
	now := p.Now()
	for len(pr.inflight) < c.cfg.PipelineDepth {
		piece, begin, length := c.nextBlock(pr)
		if piece < 0 {
			return
		}
		bk := blockKey{piece, begin}
		pr.inflight[bk] = now
		c.outstanding[bk]++
		if pr.send(p, Msg{ID: MsgRequest, Index: piece, Begin: begin, Length: length}) != nil {
			return
		}
	}
}

// nextBlock selects the next block to request from a peer: first an
// unrequested block of a partial piece, then a fresh piece from the
// picker, then endgame duplication.
func (c *Client) nextBlock(pr *peer) (piece, begin, length int) {
	have := c.store.Bitfield()
	// Partial pieces in ascending index order: c.partials is a map and
	// its iteration order is randomized per run, but block selection is
	// trace-visible and must be deterministic for a fixed seed.
	partials := make([]int, 0, len(c.partials))
	for pi := range c.partials {
		partials = append(partials, pi)
	}
	sort.Ints(partials)
	// 1. Unrequested blocks of partial pieces the peer has.
	for _, pi := range partials {
		if !pr.bits.Has(pi) {
			continue
		}
		if b := c.freeBlock(pi, c.partials[pi], pr, 0); b >= 0 {
			return pi, b * BlockLength, c.meta.BlockSize(pi, b)
		}
	}
	// 2. A fresh piece.
	inFlight := func(i int) bool {
		// A piece is saturated when every block is requested.
		if c.partials[i] != nil {
			return c.freeBlockAny(i, c.partials[i], 0) < 0
		}
		return c.pieceSaturated(i)
	}
	pi := c.picker.Pick(have, pr.bits, inFlight)
	if pi >= 0 && c.partials[pi] == nil {
		// Start the piece: request block 0 (further blocks follow as
		// the pipeline refills).
		if c.outstanding[blockKey{pi, 0}] == 0 {
			c.picker.MarkPartial(pi)
			c.partials[pi] = &pieceProgress{}
			return pi, 0, c.meta.BlockSize(pi, 0)
		}
	} else if pi >= 0 {
		if b := c.freeBlock(pi, c.partials[pi], pr, 0); b >= 0 {
			return pi, b * BlockLength, c.meta.BlockSize(pi, b)
		}
	}
	// 3. Endgame: duplicate outstanding blocks up to EndgameDup.
	for _, pi := range partials {
		if !pr.bits.Has(pi) {
			continue
		}
		if b := c.freeBlock(pi, c.partials[pi], pr, c.cfg.EndgameDup-1); b >= 0 {
			return pi, b * BlockLength, c.meta.BlockSize(pi, b)
		}
	}
	return -1, 0, 0
}

// freeBlock finds a block of piece pi not yet received, not in flight
// at this peer, and with a global outstanding count ≤ maxDup.
func (c *Client) freeBlock(pi int, pp *pieceProgress, pr *peer, maxDup int) int {
	n := c.meta.BlocksIn(pi)
	for b := 0; b < n; b++ {
		if pp.received&(1<<uint(b)) != 0 {
			continue
		}
		bk := blockKey{pi, b * BlockLength}
		if _, mine := pr.inflight[bk]; mine {
			continue
		}
		if c.outstanding[bk] > maxDup {
			continue
		}
		return b
	}
	return -1
}

// freeBlockAny is freeBlock without the per-peer exclusion.
func (c *Client) freeBlockAny(pi int, pp *pieceProgress, maxDup int) int {
	n := c.meta.BlocksIn(pi)
	for b := 0; b < n; b++ {
		if pp.received&(1<<uint(b)) != 0 {
			continue
		}
		if c.outstanding[blockKey{pi, b * BlockLength}] > maxDup {
			continue
		}
		return b
	}
	return -1
}

// pieceSaturated reports whether a not-yet-started piece's first block
// is already outstanding (conservative saturation check).
func (c *Client) pieceSaturated(i int) bool {
	return c.outstanding[blockKey{i, 0}] > 0
}
