package bt

import (
	"reflect"
	"testing"
)

// FuzzBdecode is the decoder-robustness property: Bdecode must never
// panic on arbitrary bytes, and any input it accepts must survive an
// encode/decode round trip unchanged (the tracker protocol re-encodes
// decoded announce dictionaries).
func FuzzBdecode(f *testing.F) {
	seeds := []string{
		"i42e",
		"i-1e",
		"4:spam",
		"0:",
		"le",
		"de",
		"l4:spami42ee",
		"d3:cow3:moo4:spaml1:aee",
		"d4:infod6:lengthi16777216e4:name9:paper.bin12:piece lengthi262144eee",
		"d8:intervali1800e5:peersld2:ip9:10.0.0.17:peer id20:aaaaaaaaaaaaaaaaaaaa4:porti6881eeee",
		// Malformed inputs the decoder must reject gracefully.
		"i42",
		"4:spa",
		"l4:spam",
		"d3:cow",
		"d3:cowe",
		"di1e3:mooe",
		"99999999999999999999:x",
		"i999999999999999999999999e",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Bdecode(data)
		if err != nil {
			return
		}
		enc, err := Bencode(v)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v (value %#v)", err, v)
		}
		back, err := Bdecode(enc)
		if err != nil {
			t.Fatalf("re-encoded form does not decode: %v (encoded %q)", err, enc)
		}
		if !reflect.DeepEqual(v, back) {
			t.Fatalf("round trip diverged:\n first %#v\nsecond %#v", v, back)
		}
	})
}
