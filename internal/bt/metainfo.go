package bt

import (
	"crypto/sha1"
	"fmt"
)

// Piece and block sizing, matching BitTorrent 4.x and the paper: "the
// file is always divided in pieces of 256 KB"; clients transfer pieces
// in 16 KiB blocks.
const (
	DefaultPieceLength = 256 * 1024
	BlockLength        = 16 * 1024
)

// MetaInfo is the content of a .torrent file: file metadata plus the
// SHA-1 hash of every piece.
type MetaInfo struct {
	Name        string
	Length      int64
	PieceLength int
	PieceHashes [][20]byte
	infoHash    [20]byte
}

// NumPieces returns the piece count.
func (m *MetaInfo) NumPieces() int { return len(m.PieceHashes) }

// PieceSize returns the size of piece i (the last piece may be short).
func (m *MetaInfo) PieceSize(i int) int {
	if i == m.NumPieces()-1 {
		if rem := int(m.Length % int64(m.PieceLength)); rem != 0 {
			return rem
		}
	}
	return m.PieceLength
}

// BlocksIn returns the number of blocks in piece i.
func (m *MetaInfo) BlocksIn(i int) int {
	return (m.PieceSize(i) + BlockLength - 1) / BlockLength
}

// BlockSize returns the size of block b of piece i.
func (m *MetaInfo) BlockSize(i, b int) int {
	size := m.PieceSize(i) - b*BlockLength
	if size > BlockLength {
		return BlockLength
	}
	return size
}

// TotalBlocks returns the number of blocks in the whole file.
func (m *MetaInfo) TotalBlocks() int {
	n := 0
	for i := 0; i < m.NumPieces(); i++ {
		n += m.BlocksIn(i)
	}
	return n
}

// InfoHash returns the SHA-1 of the bencoded info dictionary — the
// torrent's identity in handshakes and tracker announces.
func (m *MetaInfo) InfoHash() [20]byte { return m.infoHash }

// computeInfoHash builds the bencoded info dict and hashes it.
func (m *MetaInfo) computeInfoHash() error {
	pieces := make([]byte, 0, 20*len(m.PieceHashes))
	for _, h := range m.PieceHashes {
		pieces = append(pieces, h[:]...)
	}
	enc, err := Bencode(map[string]any{
		"name":         m.Name,
		"length":       m.Length,
		"piece length": m.PieceLength,
		"pieces":       pieces,
	})
	if err != nil {
		return err
	}
	m.infoHash = sha1.Sum(enc)
	return nil
}

// CreateTorrent hashes real content into a MetaInfo, like a .torrent
// maker would.
func CreateTorrent(name string, data []byte, pieceLength int) (*MetaInfo, error) {
	if pieceLength <= 0 {
		pieceLength = DefaultPieceLength
	}
	m := &MetaInfo{Name: name, Length: int64(len(data)), PieceLength: pieceLength}
	for off := 0; off < len(data); off += pieceLength {
		end := off + pieceLength
		if end > len(data) {
			end = len(data)
		}
		m.PieceHashes = append(m.PieceHashes, sha1.Sum(data[off:end]))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("bt: empty torrent")
	}
	if err := m.computeInfoHash(); err != nil {
		return nil, err
	}
	return m, nil
}

// SyntheticTorrent builds a MetaInfo for generated content of the given
// length: piece i's bytes are deterministically derived from (name, i),
// so seeders and verifiers agree without storing the file. Used by the
// large-swarm experiments (a 16 MB file for 5754 clients would need
// ~92 GB of hashing and storage if materialized per client).
func SyntheticTorrent(name string, length int64, pieceLength int) (*MetaInfo, error) {
	if pieceLength <= 0 {
		pieceLength = DefaultPieceLength
	}
	if length <= 0 {
		return nil, fmt.Errorf("bt: empty torrent")
	}
	m := &MetaInfo{Name: name, Length: length, PieceLength: pieceLength}
	n := int((length + int64(pieceLength) - 1) / int64(pieceLength))
	for i := 0; i < n; i++ {
		m.PieceHashes = append(m.PieceHashes, syntheticPieceHash(name, i))
	}
	if err := m.computeInfoHash(); err != nil {
		return nil, err
	}
	return m, nil
}

// syntheticPieceHash derives a deterministic 20-byte tag for piece i of
// the named synthetic file.
func syntheticPieceHash(name string, i int) [20]byte {
	return sha1.Sum([]byte(fmt.Sprintf("%s/%d", name, i)))
}
