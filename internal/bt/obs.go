package bt

import "repro/internal/obs"

// TTFPBuckets are the time-to-first-peer histogram bounds, in seconds —
// the metric webtor's seeder exports to spot swarms whose members never
// find each other (SNIPPETS 3); the wide top buckets catch clients that
// only meet a peer after a partition heals.
var TTFPBuckets = []float64{0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600}

// btMetrics holds the client-layer instrument handles. All clients of
// one network share the same series (no per-client labels: a 50k-peer
// swarm must not create 50k series), and with observability off every
// handle is nil, making each update a single nil-check branch.
type btMetrics struct {
	ttfp         *obs.Histogram
	chokes       *obs.Counter
	unchokes     *obs.Counter
	pieces       *obs.Counter
	completions  *obs.Counter
	dialAttempts *obs.Counter
	dialFailures *obs.Counter
}

// newBTMetrics registers the client instruments on reg (nil-safe).
func newBTMetrics(reg *obs.Registry) btMetrics {
	return btMetrics{
		ttfp:         reg.Histogram("p2plab_bt_time_to_first_peer_seconds", "Virtual time from client start to first admitted peer.", TTFPBuckets),
		chokes:       reg.Counter("p2plab_bt_chokes_total", "Choke messages sent by the tit-for-tat choker."),
		unchokes:     reg.Counter("p2plab_bt_unchokes_total", "Unchoke messages sent by the tit-for-tat choker."),
		pieces:       reg.Counter("p2plab_bt_piece_completions_total", "Pieces completed and verified."),
		completions:  reg.Counter("p2plab_bt_downloads_completed_total", "Clients that finished their download."),
		dialAttempts: reg.Counter("p2plab_bt_dial_attempts_total", "Outbound peer connection attempts."),
		dialFailures: reg.Counter("p2plab_bt_dial_failures_total", "Outbound peer dials that failed to connect."),
	}
}
