package bt

import (
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// blockKey identifies one block of the torrent.
type blockKey struct {
	piece, begin int
}

// peer is the client-side state of one remote peer connection,
// following the wire protocol's four-flag model.
type peer struct {
	conn      *vnet.Conn
	addr      ip.Addr // remote host identity (one client per host)
	bits      *Bitfield
	initiated bool // we dialed them

	amChoking      bool // we choke them
	amInterested   bool // we want their pieces
	peerChoking    bool // they choke us
	peerInterested bool // they want ours

	// inflight tracks requests we sent and when, for timeout re-issue.
	inflight map[blockKey]sim.Time

	downRate *RateEstimator // payload bytes they sent us
	upRate   *RateEstimator // payload bytes we sent them

	optimistic bool
	closed     bool
}

func newPeer(conn *vnet.Conn, addr ip.Addr, numPieces int, initiated bool) *peer {
	return &peer{
		conn:        conn,
		addr:        addr,
		bits:        NewBitfield(numPieces),
		initiated:   initiated,
		amChoking:   true,
		peerChoking: true,
		inflight:    make(map[blockKey]sim.Time),
		downRate:    NewRateEstimator(20 * time.Second),
		upRate:      NewRateEstimator(20 * time.Second),
	}
}

// send transmits a wire message as a sparse payload of spec-accurate
// size. Real piece bytes ride in msg.Block and count toward the size.
func (pr *peer) send(p *sim.Proc, m Msg) error {
	return pr.conn.SendMeta(p, m.WireSize(), m)
}

// sendHandshake transmits the 68-byte handshake.
func sendHandshake(p *sim.Proc, c *vnet.Conn, hs Handshake) error {
	return c.SendMeta(p, HandshakeSize, hs)
}

// recvHandshake blocks for the peer's handshake with a deadline.
func recvHandshake(p *sim.Proc, c *vnet.Conn, timeout time.Duration) (Handshake, bool) {
	pk, ok, err := c.RecvTimeout(p, timeout)
	if err != nil || !ok {
		return Handshake{}, false
	}
	hs, isHS := pk.Meta.(Handshake)
	return hs, isHS
}
