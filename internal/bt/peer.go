package bt

import (
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// blockKey identifies one block of the torrent.
type blockKey struct {
	piece, begin int
}

// pack encodes the key as one word so the request-tracking maps use the
// runtime's fast uint64 paths. Piece index and byte offset both fit in
// 32 bits (a piece is at most a few MiB).
func (bk blockKey) pack() uint64 {
	return uint64(uint32(bk.piece))<<32 | uint64(uint32(bk.begin))
}

// unpackBlockKey inverts pack.
func unpackBlockKey(k uint64) blockKey {
	return blockKey{piece: int(uint32(k >> 32)), begin: int(uint32(k))}
}

// peer is the client-side state of one remote peer connection,
// following the wire protocol's four-flag model.
type peer struct {
	conn      *vnet.Conn
	addr      ip.Addr // remote host identity (one client per host)
	bits      *Bitfield
	initiated bool // we dialed them

	amChoking      bool // we choke them
	amInterested   bool // we want their pieces
	peerChoking    bool // they choke us
	peerInterested bool // they want ours

	// inflight tracks requests we sent and when, for timeout re-issue,
	// keyed by blockKey.pack(). A flat slice, not a map: the pipeline
	// depth bounds it to a few dozen entries, where a linear scan of one
	// contiguous array beats hashing — and 10k peers × dozens of
	// connections each would otherwise keep hundreds of thousands of
	// live maps for the GC to mark.
	inflight []inflightEntry

	downRate *RateEstimator // payload bytes they sent us
	upRate   *RateEstimator // payload bytes we sent them

	// idx is this peer's position in Client.peers (-1 until registered),
	// so departure does not scan the peer slice.
	idx int
	// cl is the owning client, set at admission: send draws message
	// boxes from its pool.
	cl *Client
	// useful counts pieces the peer has that we still need — the
	// interest predicate maintained incrementally on bitfield/have
	// arrival and local piece completion, replacing an O(pieces) rescan
	// per wire event.
	useful int
	// unchokeStamp marks membership in the current rechoke round's
	// unchoke set (== Client.rechokeRound), replacing a per-round map.
	unchokeStamp int

	optimistic bool
	closed     bool
	// webseed marks a pseudo-peer backed by a WebSeed block server: full
	// bitfield by construction, never choking, outside the swarm
	// connection budgets, and no interest/Have/choke wire traffic.
	webseed bool
}

func newPeer(conn *vnet.Conn, addr ip.Addr, numPieces int, initiated bool) *peer {
	return &peer{
		conn:        conn,
		addr:        addr,
		bits:        NewBitfield(numPieces),
		initiated:   initiated,
		amChoking:   true,
		peerChoking: true,
		idx:         -1,
		downRate:    NewRateEstimator(20 * time.Second),
		upRate:      NewRateEstimator(20 * time.Second),
	}
}

// inflightEntry is one outstanding request: the packed block key and
// the instant it was issued.
type inflightEntry struct {
	bk uint64
	at sim.Time
}

// inflightHas reports whether block bk has an outstanding request.
func (pr *peer) inflightHas(bk uint64) bool {
	for i := range pr.inflight {
		if pr.inflight[i].bk == bk {
			return true
		}
	}
	return false
}

// inflightAdd records an outstanding request. The caller guarantees bk
// is not already present (request issue paths check first).
func (pr *peer) inflightAdd(bk uint64, at sim.Time) {
	pr.inflight = append(pr.inflight, inflightEntry{bk: bk, at: at})
}

// inflightDel removes block bk's entry if present (swap-remove; the
// set is unordered) and reports whether it was there.
func (pr *peer) inflightDel(bk uint64) bool {
	for i := range pr.inflight {
		if pr.inflight[i].bk == bk {
			last := len(pr.inflight) - 1
			pr.inflight[i] = pr.inflight[last]
			pr.inflight = pr.inflight[:last]
			return true
		}
	}
	return false
}

// send transmits a wire message as a sparse payload of spec-accurate
// size. Real piece bytes ride in msg.Block and count toward the size.
func (pr *peer) send(p *sim.Proc, m Msg) error {
	return pr.conn.SendMeta(p, m.WireSize(), pr.cl.newBox(m))
}

// sendHandshake transmits the 68-byte handshake.
func sendHandshake(p *sim.Proc, c *vnet.Conn, hs Handshake) error {
	return c.SendMeta(p, HandshakeSize, hs)
}

// recvHandshake blocks for the peer's handshake with a deadline.
func recvHandshake(p *sim.Proc, c *vnet.Conn, timeout time.Duration) (Handshake, bool) {
	pk, ok, err := c.RecvTimeout(p, timeout)
	if err != nil || !ok {
		return Handshake{}, false
	}
	hs, isHS := pk.Meta.(Handshake)
	return hs, isHS
}

// msgBox boxes a wire Msg behind a pooled pointer for its trip across
// the virtual network: passing Msg by value through the `any` metadata
// boxed ~100 B per send, the dominant allocation at swarm scale. The
// receiving client's sink copies the Msg out and returns the box to
// the owning client's free list. The release crosses clients, but
// never kernels — and one kernel serializes all execution, so the
// pools need no locking. Boxes on dropped messages are simply
// garbage-collected.
type msgBox struct {
	m     Msg
	owner *Client
	next  *msgBox
}

// newBox draws a box from the client's pool.
func (c *Client) newBox(m Msg) *msgBox {
	b := c.freeBox
	if b == nil {
		b = &msgBox{owner: c}
	} else {
		c.freeBox = b.next
	}
	b.m, b.next = m, nil
	return b
}

// release clears the payload (so pooled boxes pin no slices) and
// returns the box to its owner's pool.
func (b *msgBox) release() {
	b.m = Msg{}
	b.next = b.owner.freeBox
	b.owner.freeBox = b
}
