package bt

import "math/rand"

// Picker implements the mainline client's piece-selection policy:
//
//   - strict priority to finishing partially downloaded pieces;
//   - random first pieces while the client has fewer than a threshold
//     of complete pieces (get something uploadable fast);
//   - rarest-first afterwards, with random tie-breaking among equally
//     rare pieces;
//   - endgame (handled by the client) once everything is requested.
//
// The picker tracks per-piece availability from peers' bitfields and
// have messages.
type Picker struct {
	meta    *Picks
	avail   []int // how many known peers have each piece
	partial map[int]bool
	rng     *rand.Rand

	// RandomFirstThreshold is how many pieces to pick randomly before
	// switching to rarest-first (mainline: 1 in 4.x; configurable).
	RandomFirstThreshold int
}

// Picks carries the sizing the picker needs (decoupled from MetaInfo
// for testability).
type Picks struct {
	NumPieces int
}

// NewPicker returns a picker for n pieces.
func NewPicker(n int, rng *rand.Rand) *Picker {
	return &Picker{
		meta:                 &Picks{NumPieces: n},
		avail:                make([]int, n),
		partial:              make(map[int]bool),
		rng:                  rng,
		RandomFirstThreshold: 1,
	}
}

// AddBitfield counts a newly known peer's pieces.
func (pk *Picker) AddBitfield(b *Bitfield) {
	for i := 0; i < b.Len(); i++ {
		if b.Has(i) {
			pk.avail[i]++
		}
	}
}

// RemoveBitfield removes a departed peer's pieces from the counts.
func (pk *Picker) RemoveBitfield(b *Bitfield) {
	if b == nil {
		return
	}
	for i := 0; i < b.Len(); i++ {
		if b.Has(i) {
			pk.avail[i]--
		}
	}
}

// AddHave counts one piece announced by a peer.
func (pk *Picker) AddHave(i int) {
	if i >= 0 && i < len(pk.avail) {
		pk.avail[i]++
	}
}

// Availability returns how many known peers have piece i.
func (pk *Picker) Availability(i int) int { return pk.avail[i] }

// MarkPartial records that a piece has outstanding or completed blocks
// and should be finished before new pieces are started.
func (pk *Picker) MarkPartial(i int) { pk.partial[i] = true }

// ClearPartial removes a piece from the partial set (completed or
// abandoned).
func (pk *Picker) ClearPartial(i int) { delete(pk.partial, i) }

// Pick chooses the next piece to download. have is the local bitfield;
// peerHas is the candidate peer's; inFlight reports pieces already fully
// requested. It returns -1 when the peer has nothing useful.
func (pk *Picker) Pick(have, peerHas *Bitfield, inFlight func(int) bool) int {
	// 1. Finish partial pieces first. Ties on availability break to
	// the lowest index: map iteration order is randomized per run and
	// piece selection must be deterministic for a fixed seed.
	best := -1
	bestAvail := int(^uint(0) >> 1)
	for i := range pk.partial {
		if have.Has(i) || !peerHas.Has(i) || inFlight(i) {
			continue
		}
		if pk.avail[i] < bestAvail || (pk.avail[i] == bestAvail && i < best) {
			best, bestAvail = i, pk.avail[i]
		}
	}
	if best >= 0 {
		return best
	}
	// 2. Random first pieces.
	if have.Count() < pk.RandomFirstThreshold {
		var candidates []int
		for i := 0; i < pk.meta.NumPieces; i++ {
			if !have.Has(i) && peerHas.Has(i) && !inFlight(i) {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			return -1
		}
		return candidates[pk.rng.Intn(len(candidates))]
	}
	// 3. Rarest first with random tie-break.
	var ties []int
	for i := 0; i < pk.meta.NumPieces; i++ {
		if have.Has(i) || !peerHas.Has(i) || inFlight(i) {
			continue
		}
		switch {
		case best < 0 || pk.avail[i] < bestAvail:
			best, bestAvail = i, pk.avail[i]
			ties = ties[:0]
			ties = append(ties, i)
		case pk.avail[i] == bestAvail:
			ties = append(ties, i)
		}
	}
	if len(ties) > 1 {
		return ties[pk.rng.Intn(len(ties))]
	}
	return best
}
