package bt

import (
	"math/bits"
	"math/rand"
)

// Picker implements the mainline client's piece-selection policy:
//
//   - strict priority to finishing partially downloaded pieces;
//   - random first pieces while the client has fewer than a threshold
//     of complete pieces (get something uploadable fast);
//   - rarest-first afterwards, with random tie-breaking among equally
//     rare pieces;
//   - endgame (handled by the client) once everything is requested.
//
// The picker tracks per-piece availability from peers' bitfields and
// have messages. Rarest-first selection is availability-bucketed: every
// "open" piece (not partial, not verified) sits in a per-availability
// bitmap, so Pick walks buckets from rarest up and scans candidate
// bitmaps bytewise instead of rescanning all pieces per call. The
// bucketed walk visits min-availability candidates in ascending piece
// order and draws the same single rng.Intn per multi-way tie as the
// linear scan did, so picks are bit-identical to the O(pieces) version.
type Picker struct {
	meta    *Picks
	avail   []int // how many known peers have each piece
	partial map[int]bool
	rng     *rand.Rand

	// RandomFirstThreshold is how many pieces to pick randomly before
	// switching to rarest-first (mainline: 1 in 4.x; configurable).
	RandomFirstThreshold int

	// buckets[a] holds the open pieces with availability a as a bitmap
	// in wire bit order (piece 0 = MSB of byte 0). state tracks which
	// structure owns each piece; scratch is Pick's reusable tie list.
	buckets []bucket
	state   []uint8
	scratch []int
}

// bucket is one availability class of open pieces.
type bucket struct {
	bits  []byte
	count int
}

// Piece states for the bucketed index. Open pieces live in a bucket;
// partial pieces are in the partial map (strict-priority step); have
// pieces are verified locally and permanently out of rarest-first.
const (
	pieceOpen uint8 = iota
	piecePartial
	pieceHave
)

// Picks carries the sizing the picker needs (decoupled from MetaInfo
// for testability).
type Picks struct {
	NumPieces int
}

// NewPicker returns a picker for n pieces.
func NewPicker(n int, rng *rand.Rand) *Picker {
	pk := &Picker{
		meta:                 &Picks{NumPieces: n},
		avail:                make([]int, n),
		partial:              make(map[int]bool),
		rng:                  rng,
		RandomFirstThreshold: 1,
		state:                make([]uint8, n),
	}
	// Every piece starts open at availability 0.
	pk.buckets = append(pk.buckets, bucket{bits: make([]byte, (n+7)/8), count: n})
	b := &pk.buckets[0]
	for i := range b.bits {
		b.bits[i] = 0xFF
	}
	if tail := n % 8; tail != 0 {
		b.bits[len(b.bits)-1] = 0xFF << (8 - tail)
	}
	if n == 0 {
		b.bits = b.bits[:0]
	}
	return pk
}

// ensureBucket grows the bucket slice to cover availability a.
func (pk *Picker) ensureBucket(a int) {
	for len(pk.buckets) <= a {
		pk.buckets = append(pk.buckets, bucket{bits: make([]byte, (pk.meta.NumPieces+7)/8)})
	}
}

// bucketAdd places open piece i into availability class a.
func (pk *Picker) bucketAdd(i, a int) {
	pk.ensureBucket(a)
	b := &pk.buckets[a]
	b.bits[i/8] |= 0x80 >> uint(i%8)
	b.count++
}

// bucketRemove takes open piece i out of availability class a.
func (pk *Picker) bucketRemove(i, a int) {
	b := &pk.buckets[a]
	b.bits[i/8] &^= 0x80 >> uint(i%8)
	b.count--
}

// addAvail adjusts piece i's availability by delta, moving it between
// buckets when it is open. Availability is clamped at zero: the client
// only removes bitfields it previously added, so the clamp never binds
// in balanced use.
func (pk *Picker) addAvail(i, delta int) {
	old := pk.avail[i]
	nw := old + delta
	if nw < 0 {
		nw = 0
	}
	pk.avail[i] = nw
	if nw != old && pk.state[i] == pieceOpen {
		pk.bucketRemove(i, old)
		pk.bucketAdd(i, nw)
	}
}

// AddBitfield counts a newly known peer's pieces.
func (pk *Picker) AddBitfield(b *Bitfield) {
	b.forEachSet(func(i int) { pk.addAvail(i, 1) })
}

// RemoveBitfield removes a departed peer's pieces from the counts.
func (pk *Picker) RemoveBitfield(b *Bitfield) {
	if b == nil {
		return
	}
	b.forEachSet(func(i int) { pk.addAvail(i, -1) })
}

// AddHave counts one piece announced by a peer.
func (pk *Picker) AddHave(i int) {
	if i >= 0 && i < len(pk.avail) {
		pk.addAvail(i, 1)
	}
}

// Availability returns how many known peers have piece i.
func (pk *Picker) Availability(i int) int { return pk.avail[i] }

// MarkPartial records that a piece has outstanding or completed blocks
// and should be finished before new pieces are started.
func (pk *Picker) MarkPartial(i int) {
	pk.partial[i] = true
	if pk.state[i] == pieceOpen {
		pk.bucketRemove(i, pk.avail[i])
		pk.state[i] = piecePartial
	}
}

// ClearPartial removes a piece from the partial set (completed or
// abandoned). An abandoned piece rejoins its availability bucket; a
// completed one leaves rarest-first for good via MarkHave.
func (pk *Picker) ClearPartial(i int) {
	delete(pk.partial, i)
	if i >= 0 && i < len(pk.state) && pk.state[i] == piecePartial {
		pk.bucketAdd(i, pk.avail[i])
		pk.state[i] = pieceOpen
	}
}

// MarkHave records that piece i is verified locally: it will never be
// picked again, so it leaves the availability buckets permanently.
// Pick still filters candidates against the caller's have bitfield, so
// calling MarkHave is an optimization, not a correctness requirement.
func (pk *Picker) MarkHave(i int) {
	if i < 0 || i >= len(pk.state) {
		return
	}
	if pk.state[i] == pieceOpen {
		pk.bucketRemove(i, pk.avail[i])
	}
	pk.state[i] = pieceHave
}

// Pick chooses the next piece to download. have is the local bitfield;
// peerHas is the candidate peer's; inFlight reports pieces already fully
// requested. It returns -1 when the peer has nothing useful.
func (pk *Picker) Pick(have, peerHas *Bitfield, inFlight func(int) bool) int {
	// 1. Finish partial pieces first. Ties on availability break to
	// the lowest index: map iteration order is randomized per run and
	// piece selection must be deterministic for a fixed seed.
	best := -1
	bestAvail := int(^uint(0) >> 1)
	//lint:allow maporder deterministic argmin: the (avail, index) minimum is unique, so the result is independent of visit order
	for i := range pk.partial {
		if have.Has(i) || !peerHas.Has(i) || inFlight(i) {
			continue
		}
		if pk.avail[i] < bestAvail || (pk.avail[i] == bestAvail && i < best) {
			best, bestAvail = i, pk.avail[i]
		}
	}
	if best >= 0 {
		return best
	}
	// 2. Random first pieces.
	if have.Count() < pk.RandomFirstThreshold {
		candidates := pk.scratch[:0]
		for i := 0; i < pk.meta.NumPieces; i++ {
			if !have.Has(i) && peerHas.Has(i) && !inFlight(i) {
				candidates = append(candidates, i)
			}
		}
		pk.scratch = candidates[:0]
		if len(candidates) == 0 {
			return -1
		}
		return candidates[pk.rng.Intn(len(candidates))]
	}
	// 3. Rarest first with random tie-break: the first availability
	// bucket with an eligible piece holds exactly the linear scan's
	// minimum-availability tie set. Bucket bitmaps only ever set bits
	// for valid pieces, so masking with them also discards any stray
	// trailing bits a wire bitfield may carry.
	hb, pb := have.bits, peerHas.bits
	for a := range pk.buckets {
		b := &pk.buckets[a]
		if b.count == 0 {
			continue
		}
		ties := pk.scratch[:0]
		limit := len(b.bits)
		if len(pb) < limit {
			limit = len(pb)
		}
		for j := 0; j < limit; j++ {
			w := b.bits[j] & pb[j]
			if j < len(hb) {
				w &^= hb[j]
			}
			for w != 0 {
				lz := bits.LeadingZeros8(w)
				w &^= 0x80 >> uint(lz)
				i := j*8 + lz
				if !inFlight(i) {
					ties = append(ties, i)
				}
			}
		}
		pk.scratch = ties[:0]
		switch {
		case len(ties) > 1:
			return ties[pk.rng.Intn(len(ties))]
		case len(ties) == 1:
			return ties[0]
		}
	}
	return -1
}
