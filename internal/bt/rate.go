package bt

import (
	"time"

	"repro/internal/sim"
)

// RateEstimator measures transfer rate over a sliding window, like the
// mainline client's 20-second rate estimate that drives choking
// decisions.
type RateEstimator struct {
	window   time.Duration
	samples  []rateSample
	total    int64 // bytes within the window
	lifetime int64 // bytes ever recorded
}

type rateSample struct {
	at    sim.Time
	bytes int64
}

// NewRateEstimator returns an estimator with the given window
// (the mainline client uses 20 s).
func NewRateEstimator(window time.Duration) *RateEstimator {
	if window <= 0 {
		window = 20 * time.Second
	}
	return &RateEstimator{window: window}
}

// Add records bytes transferred at instant now.
func (r *RateEstimator) Add(now sim.Time, bytes int64) {
	r.samples = append(r.samples, rateSample{at: now, bytes: bytes})
	r.total += bytes
	r.lifetime += bytes
	r.trim(now)
}

func (r *RateEstimator) trim(now sim.Time) {
	cutoff := now.Add(-r.window)
	i := 0
	for i < len(r.samples) && r.samples[i].at < cutoff {
		r.total -= r.samples[i].bytes
		i++
	}
	if i > 0 {
		r.samples = append(r.samples[:0], r.samples[i:]...)
	}
}

// Rate returns bytes/second over the window ending at now.
func (r *RateEstimator) Rate(now sim.Time) float64 {
	r.trim(now)
	if len(r.samples) == 0 {
		return 0
	}
	span := r.window.Seconds()
	return float64(r.total) / span
}

// TotalBytes returns all bytes ever recorded (not windowed).
func (r *RateEstimator) TotalBytes() int64 { return r.lifetime }
