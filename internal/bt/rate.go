package bt

import (
	"time"

	"repro/internal/sim"
)

// RateEstimator measures transfer rate over a sliding window, like the
// mainline client's 20-second rate estimate that drives choking
// decisions.
type RateEstimator struct {
	window   time.Duration
	samples  []rateSample
	total    int64 // bytes within the window
	lifetime int64 // bytes ever recorded
	first    sim.Time
	started  bool // first activity recorded
}

type rateSample struct {
	at    sim.Time
	bytes int64
}

// NewRateEstimator returns an estimator with the given window
// (the mainline client uses 20 s).
func NewRateEstimator(window time.Duration) *RateEstimator {
	if window <= 0 {
		window = 20 * time.Second
	}
	return &RateEstimator{window: window}
}

// Add records bytes transferred at instant now. Trimming happens
// before the append so an idle gap that drained the whole window is
// detected here too (not only on a Rate call mid-gap) and restarts
// the warm-up origin.
func (r *RateEstimator) Add(now sim.Time, bytes int64) {
	r.trim(now)
	if !r.started {
		r.started = true
		r.first = now
	}
	r.samples = append(r.samples, rateSample{at: now, bytes: bytes})
	r.total += bytes
	r.lifetime += bytes
}

func (r *RateEstimator) trim(now sim.Time) {
	cutoff := now.Add(-r.window)
	i := 0
	for i < len(r.samples) && r.samples[i].at < cutoff {
		r.total -= r.samples[i].bytes
		i++
	}
	if i > 0 {
		r.samples = append(r.samples[:0], r.samples[i:]...)
		if len(r.samples) == 0 {
			// An idle gap drained the whole window: the next activity
			// starts a fresh warm-up, so a resumed transfer is not
			// divided by the full window again.
			r.started = false
		}
	}
}

// Rate returns bytes/second over the window ending at now. During
// warm-up — less than a full window since the first recorded activity —
// the divisor is the elapsed time, not the window: dividing by the
// full window would under-report a transfer 2 s into a 20 s window by
// 10×, which feeds choke/unchoke ordering. The warm-up divisor is
// clamped to at least one second so a single block recorded moments
// before a query cannot masquerade as a multi-MB/s peer.
func (r *RateEstimator) Rate(now sim.Time) float64 {
	r.trim(now)
	if len(r.samples) == 0 {
		return 0
	}
	span := now.Sub(r.first)
	if span < time.Second {
		span = time.Second
	}
	if span > r.window {
		span = r.window
	}
	return float64(r.total) / span.Seconds()
}

// TotalBytes returns all bytes ever recorded (not windowed).
func (r *RateEstimator) TotalBytes() int64 { return r.lifetime }
