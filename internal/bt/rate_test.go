package bt

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.Time(0).Add(d) }

// TestRateWarmUp: during warm-up the divisor is the elapsed time since
// first activity, not the full window — a transfer 2 s into a 20 s
// window must not report 10× low (that ordering feeds choke/unchoke).
func TestRateWarmUp(t *testing.T) {
	r := NewRateEstimator(20 * time.Second)
	r.Add(at(0), 1000)
	r.Add(at(time.Second), 1000)
	now := at(2 * time.Second)
	if got, want := r.Rate(now), 1000.0; got != want {
		t.Fatalf("warm-up rate = %g B/s, want %g (2000 B over 2 s)", got, want)
	}
}

// TestRateFullWindow: once a full window has elapsed, the divisor is
// the window again.
func TestRateFullWindow(t *testing.T) {
	r := NewRateEstimator(20 * time.Second)
	for i := 0; i <= 40; i++ {
		r.Add(at(time.Duration(i)*time.Second), 500)
	}
	now := at(40 * time.Second)
	// Samples at 20..40 s inclusive survive the trim: 21 × 500 B over
	// the 20 s window.
	if got, want := r.Rate(now), 21*500.0/20; got != want {
		t.Fatalf("steady rate = %g B/s, want %g", got, want)
	}
}

// TestRateFirstInstant: the warm-up divisor is clamped to one second,
// so a block recorded moments before the query reads as block/1s —
// never as an unbounded instantaneous spike.
func TestRateFirstInstant(t *testing.T) {
	r := NewRateEstimator(20 * time.Second)
	r.Add(at(5*time.Second), 4096)
	if got, want := r.Rate(at(5*time.Second)), 4096.0; got != want {
		t.Fatalf("instantaneous rate = %g, want %g (1 s floor)", got, want)
	}
	if got, want := r.Rate(at(5*time.Second+time.Millisecond)), 4096.0; got != want {
		t.Fatalf("rate 1 ms in = %g, want %g (1 s floor)", got, want)
	}
	if got, want := r.Rate(at(7*time.Second)), 2048.0; got != want {
		t.Fatalf("rate after 2 s = %g, want %g", got, want)
	}
}

// TestRateIdleWindowEmpties: after a long idle stretch the window
// drains and the rate returns to zero, warm-up logic notwithstanding.
func TestRateIdleWindowEmpties(t *testing.T) {
	r := NewRateEstimator(20 * time.Second)
	r.Add(at(0), 1000)
	if got := r.Rate(at(time.Minute)); got != 0 {
		t.Fatalf("idle rate = %g, want 0", got)
	}
}

// TestRateResumeAfterIdle: draining the window restarts warm-up, so a
// transfer resuming after a long idle gap is divided by time since the
// resume, not by the full window (the same 10× under-report the
// warm-up fix targets, via a different path).
func TestRateResumeAfterIdle(t *testing.T) {
	r := NewRateEstimator(20 * time.Second)
	r.Add(at(0), 1000)
	r.Add(at(5*time.Second), 1000)
	// Idle straight into the resume — no Rate() call during the gap,
	// so Add itself must notice the drained window.
	r.Add(at(2*time.Minute), 1000)
	r.Add(at(2*time.Minute+time.Second), 1000)
	if got, want := r.Rate(at(2*time.Minute+2*time.Second)), 1000.0; got != want {
		t.Fatalf("resumed rate = %g, want %g (2000 B over 2 s since resume)", got, want)
	}
}
