package bt

import (
	"time"

	"repro/internal/sim"
)

// TokenBucket is a deterministic virtual-time rate limiter: a classic
// token bucket whose clock is the simulation kernel's, not the wall's.
// Real clients wrap golang.org/x/time/rate; that limiter reads
// time.Now and sleeps OS threads, both of which would make a run's
// trace depend on host scheduling. Here the bucket is advanced lazily
// from the kernel instants the caller passes in, all arithmetic is
// integer nanoseconds, and the "wait" it returns is a virtual-time
// delay the client turns into a kernel timer — so two runs with the
// same seed meter traffic identically, byte for byte.
//
// A bucket is owned by one client event loop and needs no locking
// (one kernel serializes all execution).
type TokenBucket struct {
	rate  int64 // tokens (bytes) per second
	burst int64 // bucket capacity in bytes

	tokens int64    // current fill, in bytes
	last   sim.Time // instant of the last advance
}

// NewTokenBucket returns a bucket replenishing rate bytes/second with
// the given capacity, created full. A rate <= 0 returns nil — the
// "unlimited" limiter callers test with == nil. The burst is clamped
// to at least one maximum-length wire block (128 KiB) so a single
// block request can always eventually be admitted.
func NewTokenBucket(rate, burst int64) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	const minBurst = 128 * 1024
	if burst < minBurst {
		burst = minBurst
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// advance replenishes the bucket for the virtual time elapsed since
// the last advance.
func (tb *TokenBucket) advance(now sim.Time) {
	if now <= tb.last {
		return
	}
	elapsed := int64(now.Sub(tb.last))
	tb.last = now
	// rate bytes per 1e9 ns; split the multiply to stay in int64 for
	// any plausible (elapsed, rate) pair.
	tb.tokens += elapsed / int64(time.Second) * tb.rate
	tb.tokens += elapsed % int64(time.Second) * tb.rate / int64(time.Second)
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}

// Take requests n bytes at virtual instant now. It returns 0 and
// debits the bucket when the bytes are admitted; otherwise it returns
// the exact virtual-time wait until n tokens will be available (the
// bucket is left untouched, so the caller retries after the wait).
func (tb *TokenBucket) Take(now sim.Time, n int64) time.Duration {
	tb.advance(now)
	if n > tb.burst {
		n = tb.burst // oversized requests drain a full bucket
	}
	if tb.tokens >= n {
		tb.tokens -= n
		return 0
	}
	deficit := n - tb.tokens
	// ceil(deficit * 1e9 / rate) nanoseconds until the bucket holds n.
	wait := (deficit*int64(time.Second) + tb.rate - 1) / tb.rate
	return time.Duration(wait)
}
