package bt

import (
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

// TestDialBudgetNotDoubleDecremented pins the dial-budget accounting:
// dialPeer's deferred nudge is the single decrement of c.dialing per
// attempt. The old code decremented again in onJoin for initiated
// peers, so every successful dial drove c.dialing negative and the next
// tracker response dialed past MaxInitiate.
func TestDialBudgetNotDoubleDecremented(t *testing.T) {
	const targets = 20
	const maxInitiate = 5
	k, _, trk, hosts := swarmEnv(t, 7, targets+1, fastClass)
	tracker := NewTracker(trk)
	_ = tracker

	spec := DefaultSwarmSpec()
	spec.FileSize = 512 * 1024
	meta, err := SyntheticTorrent(spec.FileName, spec.FileSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}

	// Targets: seeders that accept inbound connections.
	cfg := DefaultClientConfig()
	for _, h := range hosts[:targets] {
		s := NewClient(h, meta, NewSeededSparseStorage(meta), trkEP, cfg)
		s.Start()
	}

	// Client under test with a tight initiate budget.
	tcfg := DefaultClientConfig()
	tcfg.MaxInitiate = maxInitiate
	c := NewClient(hosts[targets], meta, NewSparseStorage(meta), trkEP, tcfg)
	c.Start()

	// A 200-endpoint tracker-style response: the reachable targets
	// followed by endpoints no host answers, injected twice with time for
	// the first round's dials to resolve in between. With correct
	// accounting the second round must not dial at all.
	var eps []ip.Endpoint
	for _, h := range hosts[:targets] {
		eps = append(eps, ip.Endpoint{Addr: h.Addr(), Port: cfg.Port})
	}
	bogus := ip.MustParseAddr("10.99.0.1")
	for len(eps) < 200 {
		eps = append(eps, ip.Endpoint{Addr: bogus, Port: 6881})
		bogus = bogus.Add(1)
	}
	k.Go("injector", func(p *sim.Proc) {
		p.Sleep(2 * time.Second) // past startup announce
		c.events.TrySend(event{kind: evPeers, peers: eps})
		p.Sleep(20 * time.Second)
		c.events.TrySend(event{kind: evPeers, peers: eps})
		p.Sleep(20 * time.Second)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.dialing != 0 {
		t.Fatalf("dialing = %d at quiescence, want 0", c.dialing)
	}
	if got := len(c.peers); got > maxInitiate {
		t.Fatalf("connected to %d initiated peers, budget is %d", got, maxInitiate)
	}
}

// TestLargePieceDownloadCompletes pins multi-word block bitmaps: with 2
// MiB pieces (128 blocks of 16 KiB) the old single-uint64 tracking in
// both pieceProgress and SparseStorage silently corrupted receipt state
// for blocks past 64 (SparseStorage refused such torrents outright with
// a panic), so a download could never verify. The swarm must complete.
func TestLargePieceDownloadCompletes(t *testing.T) {
	spec := DefaultSwarmSpec()
	spec.FileName = "bigpieces"
	spec.PieceLength = 2 * 1024 * 1024
	spec.FileSize = 2 * int64(spec.PieceLength)
	runSwarm(t, spec, 1, 2, fastClass, 30*time.Minute)
}

// failFirstVerify wraps a Storage and fails the first CompletePiece
// call, simulating a hash failure.
type failFirstVerify struct {
	Storage
	failed bool
}

func (f *failFirstVerify) CompletePiece(piece int) (bool, error) {
	if !f.failed {
		f.failed = true
		return false, nil
	}
	return f.Storage.CompletePiece(piece)
}

// TestHashFailureKeepsEndgameRefcounts pins the hash-failure cleanup in
// onBlock: when a completed piece fails verification, the outstanding
// refcounts of its blocks must be rebuilt from the requests still in
// flight at other peers. The old code wholesale-deleted the keys,
// zeroing counts that endgame duplicates at other peers still held, so
// the block could immediately be re-requested past the EndgameDup bound.
func TestHashFailureKeepsEndgameRefcounts(t *testing.T) {
	k, _, trk, hosts := swarmEnv(t, 3, 1, fastClass)
	meta, err := SyntheticTorrent("t", 2*BlockLength, 2*BlockLength) // 1 piece, 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	store := &failFirstVerify{Storage: NewSparseStorage(meta)}
	c := NewClient(hosts[0], meta, store, trkEP, DefaultClientConfig())

	b0 := blockKey{0, 0}.pack()
	b1 := blockKey{0, BlockLength}.pack()
	pr1 := newPeer(nil, ip.MustParseAddr("10.9.0.1"), meta.NumPieces(), false)
	pr2 := newPeer(nil, ip.MustParseAddr("10.9.0.2"), meta.NumPieces(), false)
	c.registerPeer(pr1)
	c.registerPeer(pr2)

	k.Go("drive", func(p *sim.Proc) {
		// pr1 delivers block 0.
		pr1.inflightAdd(b0, p.Now())
		c.outstanding[b0] = 1
		c.onBlock(p, pr1, Msg{ID: MsgPiece, Index: 0, Begin: 0, Length: BlockLength})
		// Endgame: block 1 in flight at both peers.
		pr1.inflightAdd(b1, p.Now())
		pr2.inflightAdd(b1, p.Now())
		c.outstanding[b1] = 2
		// pr1 delivers block 1; the piece completes but verification
		// fails (first CompletePiece call).
		c.onBlock(p, pr1, Msg{ID: MsgPiece, Index: 0, Begin: BlockLength, Length: BlockLength})
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !store.failed {
		t.Fatal("verification was never attempted")
	}
	if got := c.outstanding[b1]; got != 1 {
		t.Fatalf("outstanding[block1] = %d after hash failure, want 1 (pr2's endgame duplicate)", got)
	}
	if _, ok := c.outstanding[b0]; ok {
		t.Fatalf("outstanding[block0] survived, want deleted (no peer has it in flight)")
	}
}

// TestTrackerClampsNumWant pins the numwant clamp: a client asking for
// an absurd peer count gets at most MaxNumWant endpoints, not the whole
// swarm.
func TestTrackerClampsNumWant(t *testing.T) {
	k, _, trk, _ := swarmEnv(t, 5, 0, fastClass)
	_ = k
	tr := &Tracker{host: trk, swarms: make(map[[20]byte]*swarmPeers)}
	meta, _ := SyntheticTorrent("t", 512*1024, 0)
	ih := meta.InfoHash()

	announce := func(from ip.Addr, port int64, numwant int64) ([]byte, error) {
		req, err := Bencode(map[string]any{
			"info_hash": ih[:],
			"peer_id":   "xxxxxxxxxxxxxxxxxxxx",
			"port":      port,
			"event":     EventStarted,
			"left":      int64(1),
			"numwant":   numwant,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.announce(req, from)
	}

	base := ip.MustParseAddr("10.50.0.1")
	for i := 0; i < MaxNumWant+100; i++ {
		if _, err := announce(base.Add(uint32(i)), 6881, 50); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := announce(ip.MustParseAddr("10.60.0.1"), 6881, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Bdecode(resp)
	if err != nil {
		t.Fatal(err)
	}
	peers := v.(map[string]any)["peers"].([]any)
	if len(peers) != MaxNumWant {
		t.Fatalf("response lists %d peers, want clamp at %d", len(peers), MaxNumWant)
	}
}

// TestTrackerRejectsPortZero pins port validation: a registration with
// port 0 (an unreachable endpoint that would waste other peers' dial
// budgets) is refused and not added to the swarm.
func TestTrackerRejectsPortZero(t *testing.T) {
	k, _, trk, _ := swarmEnv(t, 5, 0, fastClass)
	_ = k
	tr := &Tracker{host: trk, swarms: make(map[[20]byte]*swarmPeers)}
	meta, _ := SyntheticTorrent("t", 512*1024, 0)
	ih := meta.InfoHash()
	req, err := Bencode(map[string]any{
		"info_hash": ih[:],
		"peer_id":   "xxxxxxxxxxxxxxxxxxxx",
		"port":      int64(0),
		"event":     EventStarted,
		"left":      int64(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.announce(req, ip.MustParseAddr("10.50.0.1")); err == nil {
		t.Fatal("port-0 registration accepted, want error")
	}
	if got := tr.PeerCount(ih); got != 0 {
		t.Fatalf("peer count = %d after rejected announce, want 0", got)
	}
}

// TestSparseStorageManyBlocks unit-pins the multi-word receipt bitmap:
// every block of a 128-block piece must be tracked individually.
func TestSparseStorageManyBlocks(t *testing.T) {
	meta, err := SyntheticTorrent("t", 2*1024*1024, 2*1024*1024) // 1 piece, 128 blocks
	if err != nil {
		t.Fatal(err)
	}
	s := NewSparseStorage(meta)
	n := meta.BlocksIn(0)
	if n != 128 {
		t.Fatalf("BlocksIn = %d, want 128", n)
	}
	// All blocks but #100: must not verify.
	for b := 0; b < n; b++ {
		if b == 100 {
			continue
		}
		if err := s.WriteBlock(0, b*BlockLength, nil, BlockLength); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := s.CompletePiece(0); ok {
		t.Fatal("piece verified with block 100 missing")
	}
	if err := s.WriteBlock(0, 100*BlockLength, nil, BlockLength); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.CompletePiece(0); !ok {
		t.Fatal("piece did not verify with all 128 blocks written")
	}
}
