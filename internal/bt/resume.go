package bt

import (
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// ResumingClient adapts one (host, storage) pair to a churn-driven
// lifecycle: each Online starts a fresh Client resuming from the kept
// storage, Offline stops the current incarnation abruptly (the peer
// departs mid-transfer; storage survives). The Online/Offline methods
// satisfy repro/internal/churn.Peer — both the E3 churn-swarm driver
// (internal/exp) and the scenario runner (internal/scenario) drive
// their churning populations through this adapter.
type ResumingClient struct {
	host    *vnet.Host
	meta    *MetaInfo
	store   Storage
	tracker ip.Endpoint
	cfg     ClientConfig
	cur     *Client
	done    bool
}

// NewResumingClient returns an offline resuming client; the first
// Online call starts its first session.
func NewResumingClient(host *vnet.Host, meta *MetaInfo, store Storage, tracker ip.Endpoint, cfg ClientConfig) *ResumingClient {
	return &ResumingClient{host: host, meta: meta, store: store, tracker: tracker, cfg: cfg}
}

// Online implements churn.Peer: start a fresh client session resuming
// from the kept storage. A still-running session is left alone
// (session-overlap guard).
func (rc *ResumingClient) Online(p *sim.Proc) {
	if rc.cur != nil && !rc.cur.Stopped() {
		return
	}
	c := NewClient(rc.host, rc.meta, rc.store, rc.tracker, rc.cfg)
	c.OnComplete = func(*Client, sim.Time) { rc.done = true }
	if rc.store.Bitfield().Complete() {
		rc.done = true // resumed into completeness
	}
	rc.cur = c
	c.Start()
}

// Offline implements churn.Peer: abrupt departure.
func (rc *ResumingClient) Offline(p *sim.Proc) {
	if rc.cur != nil {
		rc.cur.Stop()
	}
}

// Done reports whether the download has completed across sessions
// (observed by a session, or present in the kept storage).
func (rc *ResumingClient) Done() bool {
	return rc.done || rc.store.Bitfield().Complete()
}
