package bt

import (
	"math/rand"
	"testing"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// BenchmarkSwarmScaleHot measures the two per-event client paths the
// megaswarm refactor makes incremental, at a piece count (2048) where
// the old O(pieces) rescans dominate:
//
//   - have: steady-state MsgHave handling on a nearly-complete
//     download — the interest recomputation's worst case, since the
//     old scan only stops at the last still-useful piece;
//   - pick: rarest-first piece selection mid-download with a realistic
//     availability spread.
//
// Both are gated to 0 allocs/op by scripts/bench_baseline.sh — these
// run once per wire event (Have) and once per block request (Pick), so
// a single allocation per call is a GC storm at 10k peers.
func BenchmarkSwarmScaleHot(b *testing.B) {
	const pieces = 2048

	b.Run("have", func(b *testing.B) {
		k := sim.New(1)
		net := vnet.NewNetwork(k, nil, vnet.DefaultConfig())
		h, err := net.AddHostClass(ip.MustParseAddr("10.0.0.1"), topo.LAN)
		if err != nil {
			b.Fatal(err)
		}
		meta, err := SyntheticTorrent("hot", int64(pieces)*DefaultPieceLength, 0)
		if err != nil {
			b.Fatal(err)
		}
		store := NewSparseStorage(meta)
		c := NewClient(h, meta, store, ip.Endpoint{}, DefaultClientConfig())
		// Endgame state: everything verified but the last piece, so the
		// interest scan cannot exit early.
		for i := 0; i < pieces-1; i++ {
			store.have.Set(i)
		}
		pr := newPeer(nil, ip.MustParseAddr("10.0.0.2"), pieces, false)
		c.registerPeer(pr)
		// nil conn: the steady state below never flips interest, so the
		// client never sends on this peer.
		pr.amInterested = true
		c.onMsg(nil, pr, Msg{ID: MsgBitfield, Bits: Full(pieces).Bytes()})
		if !pr.amInterested {
			b.Fatal("peer should be interesting (last piece missing)")
		}
		msg := Msg{ID: MsgHave, Index: pieces / 2} // already set: pure recompute path
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.onMsg(nil, pr, msg)
		}
		if !pr.amInterested {
			b.Fatal("interest flipped")
		}
	})

	b.Run("pick", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		pk := NewPicker(pieces, rng)
		pk.RandomFirstThreshold = 0
		// Availability spread of a converged swarm: every piece known to
		// 1..40 peers.
		for p := 0; p < 40; p++ {
			bf := NewBitfield(pieces)
			for i := 0; i < pieces; i++ {
				if rng.Intn(40) >= p {
					bf.Set(i)
				}
			}
			pk.AddBitfield(bf)
		}
		have := NewBitfield(pieces)
		for i := 0; i < pieces; i += 2 {
			have.Set(i)
		}
		peerHas := Full(pieces)
		none := func(int) bool { return false }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pk.Pick(have, peerHas, none) < 0 {
				b.Fatal("no pick")
			}
		}
	})
}
