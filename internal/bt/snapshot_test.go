package bt

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// longFat is a high-bandwidth high-latency path: the regime where a
// fixed 5-deep request pipeline (80 KiB in flight) caps throughput at
// 80 KiB/RTT regardless of link capacity.
var longFat = topo.LinkClass{Name: "longfat", Down: 100 * netem.Mbps, Up: 100 * netem.Mbps, Latency: 50 * time.Millisecond}

func TestTokenBucketNilWhenUnlimited(t *testing.T) {
	if NewTokenBucket(0, 1<<20) != nil {
		t.Fatal("rate 0 should mean unlimited (nil bucket)")
	}
	if NewTokenBucket(-5, 0) != nil {
		t.Fatal("negative rate should mean unlimited (nil bucket)")
	}
}

func TestTokenBucketBurstClamp(t *testing.T) {
	// A burst below one max wire block is clamped up, so a full-size
	// block request can always eventually be admitted.
	tb := NewTokenBucket(1024, 1)
	if got := tb.Take(sim.Time(0), 128*1024); got != 0 {
		t.Fatalf("full clamped bucket refused a 128 KiB block: wait %v", got)
	}
}

func TestTokenBucketTakeAndRefill(t *testing.T) {
	t0 := sim.Time(0)
	tb := NewTokenBucket(1024, 128*1024) // 1 KiB/s, 128 KiB burst
	if w := tb.Take(t0, 128*1024); w != 0 {
		t.Fatalf("bucket created full, got wait %v", w)
	}
	// Empty now: 1024 bytes at 1024 B/s is exactly one virtual second,
	// and the failed Take must not debit.
	w := tb.Take(t0, 1024)
	if w != time.Second {
		t.Fatalf("wait = %v, want exactly 1s", w)
	}
	if got := tb.Take(t0.Add(w), 1024); got != 0 {
		t.Fatalf("bucket not refilled after its own predicted wait: %v", got)
	}
	// Drained again; half a block costs half the time.
	if w := tb.Take(t0.Add(time.Second), 512); w != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms", w)
	}
}

// TestClientHonorsAnnounceInterval pins the interval-driven re-announce
// path: a client whose peer set is healthy (MinPeers disabled) must
// still re-announce on the tracker's advertised interval. The old
// client parsed only "peers" out of the response and announced again
// only when starved, so a tracker's interval was dead configuration.
func TestClientHonorsAnnounceInterval(t *testing.T) {
	k, _, trk, hosts := swarmEnv(t, 5, 1, fastClass)
	tracker := NewTrackerConfig(trk, TrackerConfig{Interval: 30 * time.Second})
	meta, err := SyntheticTorrent("t", 512*1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	cfg := DefaultClientConfig()
	cfg.MinPeers = 0 // disable the starvation re-announce path entirely
	c := NewClient(hosts[0], meta, NewSparseStorage(meta), trkEP, cfg)
	c.Start()
	k.Go("watchdog", func(p *sim.Proc) {
		p.Sleep(150 * time.Second)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.announceIvl != 30*time.Second {
		t.Fatalf("client recorded interval %v, want 30s", c.announceIvl)
	}
	// t=0 started + periodic at 30/60/90/120 (tick-quantized).
	if got := tracker.Stats().Announces; got < 4 {
		t.Fatalf("announces in 150s at a 30s interval = %d, want >= 4", got)
	}
}

// TestTrackerExpiresSilentPeers pins churn-storm-style expiry: a peer
// that vanishes without EventStopped must stop being handed out after
// ~2 missed intervals. The old tracker kept dead endpoints forever,
// burning every other peer's dial budget on guaranteed-failed dials.
func TestTrackerExpiresSilentPeers(t *testing.T) {
	k, _, trk, hosts := swarmEnv(t, 9, 2, fastClass)
	tracker := NewTrackerConfig(trk, TrackerConfig{Interval: 20 * time.Second}) // ttl 40s
	meta, err := SyntheticTorrent("t", 512*1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	k.Go("seq", func(p *sim.Proc) {
		// A registers, then goes silent (a crash, not a Stop).
		if _, _, err := AnnounceRequest(p, hosts[0], trkEP, meta.InfoHash(), 6881, EventStarted, meta.Length, 50); err != nil {
			t.Errorf("announce A: %v", err)
		}
		first, _, err := AnnounceRequest(p, hosts[1], trkEP, meta.InfoHash(), 6881, EventStarted, meta.Length, 50)
		if err != nil {
			t.Errorf("announce B: %v", err)
		}
		if len(first) != 1 {
			t.Errorf("B's first announce saw %d peers, want 1 (A alive)", len(first))
		}
		// B keeps announcing on schedule; A stays silent past 2 intervals.
		var last []ip.Endpoint
		for i := 0; i < 3; i++ {
			p.Sleep(20 * time.Second)
			last, _, err = AnnounceRequest(p, hosts[1], trkEP, meta.InfoHash(), 6881, EventEmpty, meta.Length, 50)
			if err != nil {
				t.Errorf("re-announce B: %v", err)
			}
		}
		if len(last) != 0 {
			t.Errorf("vanished peer still handed out after expiry: %v", last)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tracker.PeerCount(meta.InfoHash()); got != 1 {
		t.Fatalf("registered peers after expiry = %d, want 1 (the live announcer)", got)
	}
}

// TestWebSeedColdFill is the CDN-fill scenario in miniature: no seeders
// at all, one web seed, one client. The client must complete entirely
// from the web seed.
func TestWebSeedColdFill(t *testing.T) {
	k, _, trk, hosts := swarmEnv(t, 11, 2, fastClass)
	NewTracker(trk)
	const fileSize = 4 << 20
	meta, err := SyntheticTorrent("snap", fileSize, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWebSeed(hosts[0], meta, NewSeededSparseStorage(meta))
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	cfg := DefaultClientConfig()
	cfg.WebSeeds = []ip.Endpoint{ws.Endpoint()}
	c := NewClient(hosts[1], meta, NewSparseStorage(meta), trkEP, cfg)
	c.OnComplete = func(*Client, sim.Time) { k.Stop() }
	c.Start()
	k.Go("watchdog", func(p *sim.Proc) {
		p.Sleep(10 * time.Minute)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Done() {
		t.Fatal("client did not complete from the web seed alone")
	}
	if got := ws.Stats().BytesServed; got < fileSize {
		t.Fatalf("web seed served %d bytes, want >= %d", got, fileSize)
	}
	if c.wsConns != 1 || len(c.peers) != 1 || !c.peers[0].webseed {
		t.Fatalf("expected exactly one web-seed pseudo-peer, got wsConns=%d peers=%d", c.wsConns, len(c.peers))
	}
}

func TestBuildSwarmRejectsHugeNonSparse(t *testing.T) {
	_, _, trk, _ := swarmEnv(t, 1, 0, fastClass)
	spec := DefaultSwarmSpec()
	spec.Sparse = false
	spec.FileSize = MaxMaterializedBytes + 1
	if _, err := BuildSwarm(spec, trk, nil, nil); err == nil {
		t.Fatal("non-sparse build above MaxMaterializedBytes must error")
	} else if !strings.Contains(err.Error(), "non-sparse") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestSparseWriteBlockRejectsMisaligned(t *testing.T) {
	meta, err := SyntheticTorrent("t", 512*1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSparseStorage(meta)
	if err := s.WriteBlock(0, BlockLength/2, nil, BlockLength); err == nil {
		t.Fatal("misaligned begin must be rejected, not folded into the wrong block bit")
	}
	if err := s.WriteBlock(0, BlockLength, nil, BlockLength); err != nil {
		t.Fatalf("aligned begin rejected: %v", err)
	}
}

// transferTime runs a 1-seeder/1-leecher swarm under the given link
// model and returns the leecher's completion instant.
func transferTime(t *testing.T, seed int64, model netem.ModelKind, class topo.LinkClass,
	cfg ClientConfig, fileSize int64, pieceLen int, horizon time.Duration) time.Duration {
	t.Helper()
	k := sim.New(seed)
	ncfg := vnet.DefaultConfig()
	ncfg.Model = model
	net := vnet.NewNetwork(k, nil, ncfg)
	trk, err := net.AddHostClass(ip.MustParseAddr("10.200.0.1"), topo.LAN)
	if err != nil {
		t.Fatal(err)
	}
	var hosts []*vnet.Host
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < 2; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), class)
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	spec := SwarmSpec{FileName: "snap", FileSize: fileSize, PieceLength: pieceLen, Sparse: true, Client: cfg}
	s, err := BuildSwarm(spec, trk, hosts[:1], hosts[1:])
	if err != nil {
		t.Fatal(err)
	}
	s.Start(0)
	var done bool
	k.Go("waiter", func(p *sim.Proc) {
		done = s.WaitAll(p, horizon)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("transfer did not complete within %v", horizon)
	}
	return time.Duration(s.Clients[0].FinishedAt())
}

// TestPipelineDepthAutoScaleLongFat is the elephant-flow property test
// at 2 MiB pieces, under both link models: on a long fat pipe the
// auto-scaled pipeline (PipelineDepth 0 → blocks-per-piece) must beat
// the fixed mainline depth of 5 by a wide margin, because 80 KiB in
// flight caps a 100 Mbps/100 ms-RTT path at ~800 KiB/s. Also exercises
// the multi-word block bitmaps on the real download path (128 blocks
// per piece).
func TestPipelineDepthAutoScaleLongFat(t *testing.T) {
	const fileSize = 8 << 20
	const pieceLen = 2 << 20
	for _, model := range []netem.ModelKind{netem.ModelPipe, netem.ModelFlow} {
		fixed := DefaultClientConfig()
		fixed.RechokeInterval = time.Second // keep the unchoke delay out of the ratio
		auto := fixed
		auto.PipelineDepth = 0 // auto-scale to blocks-per-piece

		tFixed := transferTime(t, 21, model, longFat, fixed, fileSize, pieceLen, 30*time.Minute)
		tAuto := transferTime(t, 21, model, longFat, auto, fileSize, pieceLen, 30*time.Minute)
		if 2*tAuto > tFixed {
			t.Fatalf("model %v: auto depth %v not ≥2x faster than fixed depth %v", model, tAuto, tFixed)
		}
	}
}

// TestRateLimitedTransferDeterministic pins two properties of the
// token-bucket path: the cap actually bounds throughput (a capped run
// is slower than an uncapped one by at least the metered difference),
// and a rate-limited run is bit-deterministic — two identical runs
// finish at the identical virtual instant.
func TestRateLimitedTransferDeterministic(t *testing.T) {
	const fileSize = 1 << 20
	cfg := DefaultClientConfig()
	cfg.RechokeInterval = time.Second
	capped := cfg
	capped.UploadRate = 256 * 1024 // seeder-side cap: 256 KiB/s
	capped.RateBurst = 128 * 1024

	tFree := transferTime(t, 31, netem.ModelPipe, fastClass, cfg, fileSize, 0, 10*time.Minute)
	tCap1 := transferTime(t, 31, netem.ModelPipe, fastClass, capped, fileSize, 0, 10*time.Minute)
	tCap2 := transferTime(t, 31, netem.ModelPipe, fastClass, capped, fileSize, 0, 10*time.Minute)
	if tCap1 != tCap2 {
		t.Fatalf("rate-limited run not deterministic: %v vs %v", tCap1, tCap2)
	}
	// 1 MiB minus the 128 KiB burst at 256 KiB/s is 3.5 s of metering.
	if tCap1 < tFree+2500*time.Millisecond {
		t.Fatalf("upload cap not enforced: capped %v vs uncapped %v", tCap1, tFree)
	}
}
