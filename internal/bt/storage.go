package bt

import (
	"crypto/sha1"
	"fmt"
)

// Storage holds a torrent's content on one node and verifies pieces.
// Two implementations: MemStorage keeps real bytes and verifies real
// SHA-1 hashes; SparseStorage tracks only completion state and verifies
// synthetic piece tags, for swarms too large to materialize.
type Storage interface {
	// ReadBlock returns the payload of the given block for uploading.
	// The bool reports whether the piece is available.
	ReadBlock(piece, begin, length int) ([]byte, bool)
	// WriteBlock stores a downloaded block.
	WriteBlock(piece, begin int, data []byte, sparseLen int) error
	// CompletePiece verifies a fully downloaded piece against the
	// metainfo; on success the piece becomes readable.
	CompletePiece(piece int) (bool, error)
	// HavePiece reports whether a piece is complete and verified.
	HavePiece(piece int) bool
	// Bitfield returns the current possession map. The caller must not
	// mutate it.
	Bitfield() *Bitfield
}

// MemStorage is byte-accurate storage with real SHA-1 verification.
type MemStorage struct {
	meta *MetaInfo
	data []byte
	have *Bitfield
}

// NewMemStorage returns empty storage for a leecher.
func NewMemStorage(meta *MetaInfo) *MemStorage {
	return &MemStorage{
		meta: meta,
		data: make([]byte, meta.Length),
		have: NewBitfield(meta.NumPieces()),
	}
}

// NewSeededMemStorage returns storage pre-filled with content, whose
// hashes must match the metainfo (a seeder).
func NewSeededMemStorage(meta *MetaInfo, data []byte) (*MemStorage, error) {
	if int64(len(data)) != meta.Length {
		return nil, fmt.Errorf("bt: content is %d bytes, torrent says %d", len(data), meta.Length)
	}
	s := &MemStorage{meta: meta, data: append([]byte(nil), data...), have: NewBitfield(meta.NumPieces())}
	for i := 0; i < meta.NumPieces(); i++ {
		if sha1.Sum(s.pieceBytes(i)) != meta.PieceHashes[i] {
			return nil, fmt.Errorf("bt: piece %d hash mismatch", i)
		}
		s.have.Set(i)
	}
	return s, nil
}

func (s *MemStorage) pieceBytes(i int) []byte {
	off := int64(i) * int64(s.meta.PieceLength)
	end := off + int64(s.meta.PieceSize(i))
	return s.data[off:end]
}

// ReadBlock implements Storage.
func (s *MemStorage) ReadBlock(piece, begin, length int) ([]byte, bool) {
	if !s.have.Has(piece) {
		return nil, false
	}
	pb := s.pieceBytes(piece)
	if begin < 0 || begin+length > len(pb) {
		return nil, false
	}
	out := make([]byte, length)
	copy(out, pb[begin:begin+length])
	return out, true
}

// WriteBlock implements Storage. sparseLen is ignored: real bytes are
// required.
func (s *MemStorage) WriteBlock(piece, begin int, data []byte, sparseLen int) error {
	if data == nil {
		return fmt.Errorf("bt: MemStorage needs real block bytes (got sparse of %d)", sparseLen)
	}
	off := int64(piece)*int64(s.meta.PieceLength) + int64(begin)
	if off < 0 || off+int64(len(data)) > s.meta.Length {
		return fmt.Errorf("bt: block out of range (piece %d begin %d)", piece, begin)
	}
	copy(s.data[off:], data)
	return nil
}

// CompletePiece implements Storage with a real SHA-1 check.
func (s *MemStorage) CompletePiece(piece int) (bool, error) {
	if piece < 0 || piece >= s.meta.NumPieces() {
		return false, fmt.Errorf("bt: piece %d out of range", piece)
	}
	if sha1.Sum(s.pieceBytes(piece)) != s.meta.PieceHashes[piece] {
		return false, nil
	}
	s.have.Set(piece)
	return true, nil
}

// HavePiece implements Storage.
func (s *MemStorage) HavePiece(piece int) bool { return s.have.Has(piece) }

// Bitfield implements Storage.
func (s *MemStorage) Bitfield() *Bitfield { return s.have }

// Bytes returns the assembled content (for test assertions).
func (s *MemStorage) Bytes() []byte { return s.data }

// SparseStorage tracks only which blocks have arrived; piece
// verification checks the synthetic piece tag carried in block metadata
// against the metainfo. It uses O(pieces) memory regardless of file
// size, enabling the 5754-client experiment.
type SparseStorage struct {
	meta   *MetaInfo
	have   *Bitfield
	blocks []uint64 // received-block bitmaps, stride words per piece
	stride int      // words per piece
	tags   [][20]byte
}

// NewSparseStorage returns empty sparse storage for a leecher. The
// received-block bitmap is stride words per piece: the earlier single
// uint64 silently corrupted receipt tracking for pieces of more than 64
// blocks (pieces over 1 MiB at the standard 16 KiB block size).
func NewSparseStorage(meta *MetaInfo) *SparseStorage {
	maxBlocks := (meta.PieceLength + BlockLength - 1) / BlockLength
	stride := (maxBlocks + 63) / 64
	if stride < 1 {
		stride = 1
	}
	return &SparseStorage{
		meta:   meta,
		have:   NewBitfield(meta.NumPieces()),
		blocks: make([]uint64, meta.NumPieces()*stride),
		stride: stride,
		tags:   make([][20]byte, meta.NumPieces()),
	}
}

// NewSeededSparseStorage returns sparse storage that already has every
// piece (a seeder of synthetic content).
func NewSeededSparseStorage(meta *MetaInfo) *SparseStorage {
	s := NewSparseStorage(meta)
	for i := 0; i < meta.NumPieces(); i++ {
		s.have.Set(i)
		s.tags[i] = meta.PieceHashes[i]
	}
	return s
}

// ReadBlock implements Storage; sparse blocks have no bytes, so it
// returns nil with true when the piece is available (callers send the
// piece tag as metadata instead).
func (s *SparseStorage) ReadBlock(piece, begin, length int) ([]byte, bool) {
	return nil, s.have.Has(piece)
}

// Tag returns the verification tag for an owned piece.
func (s *SparseStorage) Tag(piece int) [20]byte { return s.meta.PieceHashes[piece] }

// WriteBlock implements Storage: it records block receipt; data is
// ignored, the piece tag arrives via CompleteTag.
func (s *SparseStorage) WriteBlock(piece, begin int, data []byte, sparseLen int) error {
	if piece < 0 || piece >= s.meta.NumPieces() {
		return fmt.Errorf("bt: piece %d out of range", piece)
	}
	if begin%BlockLength != 0 {
		// Integer division below would silently fold a misaligned offset
		// into the wrong block bit, marking a block received that never
		// arrived.
		return fmt.Errorf("bt: block offset %d in piece %d not aligned to %d", begin, piece, BlockLength)
	}
	b := begin / BlockLength
	if b < 0 || b >= s.meta.BlocksIn(piece) {
		return fmt.Errorf("bt: block offset %d out of piece %d", begin, piece)
	}
	s.blocks[piece*s.stride+b/64] |= 1 << uint(b%64)
	s.tags[piece] = s.meta.PieceHashes[piece] // tag implied by protocol metadata
	return nil
}

// CompletePiece implements Storage: the piece passes when every block
// arrived and the recorded tag matches the metainfo.
func (s *SparseStorage) CompletePiece(piece int) (bool, error) {
	if piece < 0 || piece >= s.meta.NumPieces() {
		return false, fmt.Errorf("bt: piece %d out of range", piece)
	}
	n := s.meta.BlocksIn(piece)
	words := s.blocks[piece*s.stride : (piece+1)*s.stride]
	for b0 := 0; b0 < n; b0 += 64 {
		span := n - b0
		want := ^uint64(0)
		if span < 64 {
			want = uint64(1)<<uint(span) - 1
		}
		if words[b0/64] != want {
			return false, nil
		}
	}
	if s.tags[piece] != s.meta.PieceHashes[piece] {
		return false, nil
	}
	s.have.Set(piece)
	return true, nil
}

// HavePiece implements Storage.
func (s *SparseStorage) HavePiece(piece int) bool { return s.have.Has(piece) }

// Bitfield implements Storage.
func (s *SparseStorage) Bitfield() *Bitfield { return s.have }
