package bt

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// Swarm bundles a tracker, seeders and downloading clients built on an
// emulated network — the unit of the paper's BitTorrent experiments.
type Swarm struct {
	Meta        *MetaInfo
	Tracker     *Tracker
	TrackerHost *vnet.Host
	Seeders     []*Client
	Clients     []*Client

	completed int
	allDone   *sim.Cond
}

// SwarmSpec describes the torrent side of an experiment (the hosts come
// from the caller, which owns topology and placement).
type SwarmSpec struct {
	// FileName names the synthetic content.
	FileName string
	// FileSize is the torrent size (the paper: 16 MB).
	FileSize int64
	// PieceLength defaults to 256 KiB.
	PieceLength int
	// Sparse selects SparseStorage (synthetic tags) instead of
	// MemStorage (real bytes + SHA-1). Large swarms must use sparse.
	Sparse bool
	// Client configures all clients and seeders.
	Client ClientConfig
	// Tracker configures the tracker (zero value: defaults).
	Tracker TrackerConfig
}

// MaxMaterializedBytes bounds non-sparse swarm builds. A Sparse: false
// spec materializes the full file once as the master copy plus once per
// seeder (real bytes, SHA-1 hashed) — a snapshot-sized spec quietly
// allocating gigabytes is a misconfiguration, not a workload.
const MaxMaterializedBytes = 64 << 20

// DefaultSwarmSpec mirrors the paper's first experiment: a 16 MB file.
func DefaultSwarmSpec() SwarmSpec {
	return SwarmSpec{
		FileName:    "paper-16mb",
		FileSize:    16 * 1024 * 1024,
		PieceLength: DefaultPieceLength,
		Sparse:      true,
		Client:      DefaultClientConfig(),
	}
}

// BuildSwarm creates the tracker on trackerHost, seeders on seedHosts
// and leechers on clientHosts. Nothing starts until Start.
func BuildSwarm(spec SwarmSpec, trackerHost *vnet.Host, seedHosts, clientHosts []*vnet.Host) (*Swarm, error) {
	var meta *MetaInfo
	var seedData []byte
	var err error
	if spec.Sparse {
		meta, err = SyntheticTorrent(spec.FileName, spec.FileSize, spec.PieceLength)
	} else {
		if spec.FileSize > MaxMaterializedBytes {
			return nil, fmt.Errorf("bt: non-sparse swarm of %d bytes exceeds %d (MaxMaterializedBytes); use Sparse: true for large files",
				spec.FileSize, int64(MaxMaterializedBytes))
		}
		seedData = make([]byte, spec.FileSize)
		rnd := rand.New(rand.NewSource(42))
		rnd.Read(seedData)
		meta, err = CreateTorrent(spec.FileName, seedData, spec.PieceLength)
	}
	if err != nil {
		return nil, err
	}
	k := trackerHost.Network().Kernel()
	s := &Swarm{
		Meta:        meta,
		Tracker:     NewTrackerConfig(trackerHost, spec.Tracker),
		TrackerHost: trackerHost,
		allDone:     sim.NewCond(k),
	}
	trackerEP := ip.Endpoint{Addr: trackerHost.Addr(), Port: TrackerPort}

	for _, h := range seedHosts {
		var store Storage
		if spec.Sparse {
			store = NewSeededSparseStorage(meta)
		} else {
			ms, err := NewSeededMemStorage(meta, seedData)
			if err != nil {
				return nil, err
			}
			store = ms
		}
		s.Seeders = append(s.Seeders, NewClient(h, meta, store, trackerEP, spec.Client))
	}
	for _, h := range clientHosts {
		var store Storage
		if spec.Sparse {
			store = NewSparseStorage(meta)
		} else {
			store = NewMemStorage(meta)
		}
		c := NewClient(h, meta, store, trackerEP, spec.Client)
		//p2p:token invoked by the client event loop when the download completes
		c.OnComplete = func(*Client, sim.Time) {
			s.completed++
			if s.completed == len(s.Clients) {
				s.allDone.Broadcast()
			}
		}
		s.Clients = append(s.Clients, c)
	}
	return s, nil
}

// Start launches the seeders immediately and the clients staggered by
// startInterval ("the clients are started with a 10s interval" in
// Fig 8, 0.25 s in Fig 10).
func (s *Swarm) Start(startInterval time.Duration) {
	k := s.TrackerHost.Network().Kernel()
	for _, seed := range s.Seeders {
		seed.Start()
	}
	for i, c := range s.Clients {
		c := c
		k.After(time.Duration(i)*startInterval, func() { c.Start() })
	}
}

// CompletedCount returns how many clients have finished so far.
func (s *Swarm) CompletedCount() int { return s.completed }

// WaitAll parks until every client completes or the timeout elapses; it
// reports whether all completed.
func (s *Swarm) WaitAll(p *sim.Proc, timeout time.Duration) bool {
	deadline := p.Now().Add(timeout)
	for s.completed < len(s.Clients) {
		remaining := deadline.Sub(p.Now())
		if remaining <= 0 {
			return false
		}
		s.allDone.WaitTimeout(p, remaining)
	}
	return true
}

// CompletionTimes returns each client's finish instant (zero when it
// did not finish).
func (s *Swarm) CompletionTimes() []sim.Time {
	out := make([]sim.Time, len(s.Clients))
	for i, c := range s.Clients {
		out[i] = c.FinishedAt()
	}
	return out
}

// String summarizes the swarm.
func (s *Swarm) String() string {
	return fmt.Sprintf("swarm(%s: %d seeders, %d clients, %d pieces)",
		s.Meta.Name, len(s.Seeders), len(s.Clients), s.Meta.NumPieces())
}
