package bt

import (
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// swarmEnv creates a kernel, network, tracker host and n node hosts on
// the given link class.
func swarmEnv(t *testing.T, seed int64, n int, class topo.LinkClass) (*sim.Kernel, *vnet.Network, *vnet.Host, []*vnet.Host) {
	t.Helper()
	k := sim.New(seed)
	net := vnet.NewNetwork(k, nil, vnet.DefaultConfig())
	trk, err := net.AddHostClass(ip.MustParseAddr("10.200.0.1"), topo.LAN)
	if err != nil {
		t.Fatal(err)
	}
	var hosts []*vnet.Host
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < n; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), class)
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	return k, net, trk, hosts
}

// fastClass is a quick link for functional tests (seconds, not hours).
var fastClass = topo.LinkClass{Name: "fast", Down: 100 * netem.Mbps, Up: 100 * netem.Mbps, Latency: 5 * time.Millisecond}

func TestTrackerAnnounceAndPeerList(t *testing.T) {
	k, _, trk, hosts := swarmEnv(t, 1, 3, fastClass)
	tracker := NewTracker(trk)
	m, _ := SyntheticTorrent("t", 512*1024, 0)
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	var got [][]ip.Endpoint
	k.Go("announcers", func(p *sim.Proc) {
		for _, h := range hosts {
			peers, _, err := AnnounceRequest(p, h, trkEP, m.InfoHash(), 6881, EventStarted, m.Length, 50)
			if err != nil {
				t.Errorf("announce: %v", err)
				return
			}
			got = append(got, peers)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("announces = %d", len(got))
	}
	if len(got[0]) != 0 {
		t.Fatalf("first announcer should see no peers, got %v", got[0])
	}
	if len(got[2]) != 2 {
		t.Fatalf("third announcer should see 2 peers, got %v", got[2])
	}
	if tracker.Stats().Started != 3 {
		t.Fatalf("started = %d", tracker.Stats().Started)
	}
	if tracker.PeerCount(m.InfoHash()) != 3 {
		t.Fatalf("peer count = %d", tracker.PeerCount(m.InfoHash()))
	}
}

func TestTrackerStoppedRemovesPeer(t *testing.T) {
	k, _, trk, hosts := swarmEnv(t, 1, 1, fastClass)
	tracker := NewTracker(trk)
	m, _ := SyntheticTorrent("t", 512*1024, 0)
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	k.Go("a", func(p *sim.Proc) {
		AnnounceRequest(p, hosts[0], trkEP, m.InfoHash(), 6881, EventStarted, m.Length, 50)
		AnnounceRequest(p, hosts[0], trkEP, m.InfoHash(), 6881, EventStopped, m.Length, 50)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tracker.PeerCount(m.InfoHash()) != 0 {
		t.Fatalf("peer count after stop = %d", tracker.PeerCount(m.InfoHash()))
	}
}

func TestTrackerCompletedCount(t *testing.T) {
	k, _, trk, hosts := swarmEnv(t, 1, 1, fastClass)
	tracker := NewTracker(trk)
	m, _ := SyntheticTorrent("t", 512*1024, 0)
	trkEP := ip.Endpoint{Addr: trk.Addr(), Port: TrackerPort}
	k.Go("a", func(p *sim.Proc) {
		AnnounceRequest(p, hosts[0], trkEP, m.InfoHash(), 6881, EventStarted, m.Length, 50)
		AnnounceRequest(p, hosts[0], trkEP, m.InfoHash(), 6881, EventCompleted, 0, 50)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tracker.CompletedCount(m.InfoHash()) != 1 {
		t.Fatalf("completed = %d", tracker.CompletedCount(m.InfoHash()))
	}
}

// runSwarm executes a swarm to completion and returns it.
func runSwarm(t *testing.T, spec SwarmSpec, seeders, clients int, class topo.LinkClass, horizon time.Duration) *Swarm {
	t.Helper()
	k, _, trk, hosts := swarmEnv(t, 1, seeders+clients, class)
	s, err := BuildSwarm(spec, trk, hosts[:seeders], hosts[seeders:])
	if err != nil {
		t.Fatal(err)
	}
	s.Start(time.Second)
	var allDone bool
	k.Go("waiter", func(p *sim.Proc) {
		allDone = s.WaitAll(p, horizon)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !allDone {
		t.Fatalf("swarm did not complete within %v: %d/%d done",
			horizon, s.CompletedCount(), len(s.Clients))
	}
	return s
}

func TestSwarmMemStorageEndToEnd(t *testing.T) {
	// Real bytes, real SHA-1: 1 seeder, 3 leechers, 1 MB file.
	spec := SwarmSpec{
		FileName: "e2e", FileSize: 1 << 20, PieceLength: DefaultPieceLength,
		Sparse: false, Client: DefaultClientConfig(),
	}
	s := runSwarm(t, spec, 1, 3, fastClass, 10*time.Minute)
	for i, c := range s.Clients {
		ms := c.store.(*MemStorage)
		if !ms.Bitfield().Complete() {
			t.Fatalf("client %d incomplete", i)
		}
		seedBytes := s.Seeders[0].store.(*MemStorage).Bytes()
		if string(ms.Bytes()) != string(seedBytes) {
			t.Fatalf("client %d content differs from seed", i)
		}
	}
}

func TestSwarmSparseEndToEnd(t *testing.T) {
	spec := DefaultSwarmSpec()
	spec.FileSize = 2 << 20
	s := runSwarm(t, spec, 1, 5, fastClass, 10*time.Minute)
	for i, c := range s.Clients {
		if !c.Done() {
			t.Fatalf("client %d not done", i)
		}
		if c.FinishedAt() == 0 {
			t.Fatalf("client %d has no finish time", i)
		}
	}
}

func TestSwarmProgressMonotone(t *testing.T) {
	spec := DefaultSwarmSpec()
	spec.FileSize = 1 << 20
	s := runSwarm(t, spec, 1, 3, fastClass, 10*time.Minute)
	for i, c := range s.Clients {
		prog := c.Progress()
		if len(prog) != s.Meta.NumPieces() {
			t.Fatalf("client %d: %d progress points, want %d", i, len(prog), s.Meta.NumPieces())
		}
		for j := 1; j < len(prog); j++ {
			if prog[j].At < prog[j-1].At || prog[j].Bytes <= prog[j-1].Bytes {
				t.Fatalf("client %d progress not monotone at %d", i, j)
			}
		}
		if prog[len(prog)-1].Bytes != s.Meta.Length {
			t.Fatalf("client %d final bytes = %d", i, prog[len(prog)-1].Bytes)
		}
	}
}

func TestSwarmDownloadUploadAccounting(t *testing.T) {
	spec := DefaultSwarmSpec()
	spec.FileSize = 1 << 20
	s := runSwarm(t, spec, 1, 4, fastClass, 10*time.Minute)
	var totalDown, totalUp int64
	for _, c := range s.Clients {
		st := c.Stats()
		if st.Downloaded < s.Meta.Length {
			t.Fatalf("client downloaded %d < file size %d", st.Downloaded, s.Meta.Length)
		}
		totalDown += st.Downloaded
		totalUp += st.Uploaded
	}
	for _, sd := range s.Seeders {
		totalUp += sd.Stats().Uploaded
	}
	if totalUp < totalDown {
		t.Fatalf("uploads (%d) cannot be less than downloads (%d)", totalUp, totalDown)
	}
}

func TestSwarmPeersActuallyShare(t *testing.T) {
	// With one slow seeder and several clients, peers must exchange
	// data among themselves: total client uploads must be substantial.
	spec := DefaultSwarmSpec()
	spec.FileSize = 2 << 20
	s := runSwarm(t, spec, 1, 6, topo.DSL, 4*time.Hour)
	var clientUp int64
	for _, c := range s.Clients {
		clientUp += c.Stats().Uploaded
	}
	// 6 clients × 2 MB = 12 MB total demand; the single seeder's
	// contribution is bounded by its up-link, so the swarm must supply
	// at least half.
	if clientUp < 6<<20 {
		t.Fatalf("client-to-client uploads = %d bytes, swarm is not sharing", clientUp)
	}
}

func TestSwarmDeterminism(t *testing.T) {
	spec := DefaultSwarmSpec()
	spec.FileSize = 1 << 20
	runOnce := func() []sim.Time {
		k, _, trk, hosts := swarmEnv(t, 42, 4, fastClass)
		s, err := BuildSwarm(spec, trk, hosts[:1], hosts[1:])
		if err != nil {
			t.Fatal(err)
		}
		s.Start(time.Second)
		k.Go("waiter", func(p *sim.Proc) {
			s.WaitAll(p, time.Hour)
			k.Stop()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return s.CompletionTimes()
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeederNeverDownloads(t *testing.T) {
	spec := DefaultSwarmSpec()
	spec.FileSize = 1 << 20
	s := runSwarm(t, spec, 1, 2, fastClass, 10*time.Minute)
	if s.Seeders[0].Stats().Downloaded > 0 {
		t.Fatalf("seeder downloaded %d bytes", s.Seeders[0].Stats().Downloaded)
	}
	if !s.Seeders[0].Done() {
		t.Fatal("seeder should report done")
	}
}

func TestCompletedClientsSeedOthers(t *testing.T) {
	// The paper: "when the clients have finished the download of the
	// file, they stay online and become seeders". Late-started clients
	// must receive data from early finishers.
	spec := DefaultSwarmSpec()
	spec.FileSize = 1 << 20
	k, _, trk, hosts := swarmEnv(t, 7, 4, fastClass)
	s, err := BuildSwarm(spec, trk, hosts[:1], hosts[1:])
	if err != nil {
		t.Fatal(err)
	}
	// Big stagger: client 3 starts long after 1 and 2 finish.
	s.Start(30 * time.Second)
	k.Go("waiter", func(p *sim.Proc) {
		s.WaitAll(p, time.Hour)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.CompletedCount() != 3 {
		t.Fatalf("completed = %d", s.CompletedCount())
	}
	var earlyUp int64
	for _, c := range s.Clients[:2] {
		earlyUp += c.Stats().Uploaded
	}
	if earlyUp == 0 {
		t.Fatal("early finishers uploaded nothing; they are not seeding")
	}
}

func TestSwarmCompletesOverLossyLinks(t *testing.T) {
	// Failure injection: 2% message loss on every access link. The
	// reliable-connection layer retransmits, so the swarm must still
	// complete with intact content.
	lossy := topo.LinkClass{
		Name: "lossy", Down: 100 * netem.Mbps, Up: 100 * netem.Mbps,
		Latency: 5 * time.Millisecond, Loss: 0.02,
	}
	spec := SwarmSpec{
		FileName: "lossy-e2e", FileSize: 1 << 20, PieceLength: DefaultPieceLength,
		Sparse: false, Client: DefaultClientConfig(),
	}
	k, n, trk, hosts := swarmEnv(t, 1, 4, lossy)
	s, err := BuildSwarm(spec, trk, hosts[:1], hosts[1:])
	if err != nil {
		t.Fatal(err)
	}
	s.Start(time.Second)
	var allDone bool
	k.Go("waiter", func(p *sim.Proc) {
		allDone = s.WaitAll(p, time.Hour)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !allDone {
		t.Fatalf("lossy swarm incomplete: %d/%d", s.CompletedCount(), len(s.Clients))
	}
	if n.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions on a 2% lossy network")
	}
	// Real SHA-1 storage: content must be byte-identical to the seed.
	seedBytes := s.Seeders[0].store.(*MemStorage).Bytes()
	for i, c := range s.Clients {
		if string(c.store.(*MemStorage).Bytes()) != string(seedBytes) {
			t.Fatalf("client %d content corrupted by loss", i)
		}
	}
}

func TestSwarmDSLTimescale(t *testing.T) {
	// Sanity-check absolute time: 4 DSL clients (128 kb/s up), 1 LAN
	// seeder, 2 MB file. Aggregate upload ≈ seeder unbounded... use a
	// DSL seeder so capacity ≈ 5×128 kb/s; 4×2 MB demand ⇒ ≥ ~105 s.
	spec := DefaultSwarmSpec()
	spec.FileSize = 2 << 20
	s := runSwarm(t, spec, 1, 4, topo.DSL, 4*time.Hour)
	var last sim.Time
	for _, ft := range s.CompletionTimes() {
		if ft > last {
			last = ft
		}
	}
	if last < sim.Time(100*time.Second) {
		t.Fatalf("swarm finished impossibly fast: %v", last)
	}
	if last > sim.Time(1*time.Hour) {
		t.Fatalf("swarm took too long: %v", last)
	}
}
