package bt

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// TrackerPort is the customary BitTorrent tracker port.
const TrackerPort ip.Port = 6969

// DefaultNumWant is how many peers an announce returns (mainline: 50).
const DefaultNumWant = 50

// MaxNumWant caps a client-requested numwant. Without the cap a single
// announce with numwant=10^9 makes the tracker build (and bencode) a
// response listing the entire swarm, which at 10k peers is a
// megabyte-scale reply per request — real trackers clamp for the same
// reason.
const MaxNumWant = 200

// Announce events, as in the tracker HTTP protocol.
const (
	EventStarted   = "started"
	EventCompleted = "completed"
	EventStopped   = "stopped"
	EventEmpty     = ""
)

// DefaultAnnounceInterval is the re-announce interval a tracker hands
// out unless configured otherwise (mainline trackers: 30 min).
const DefaultAnnounceInterval = 30 * time.Minute

// TrackerConfig tunes a tracker's announce lifecycle. The zero value
// means defaults, so struct-literal construction in tests keeps
// working.
type TrackerConfig struct {
	// Interval is the re-announce interval handed to clients in every
	// announce response (0: DefaultAnnounceInterval).
	Interval time.Duration
	// ExpireAfter is how many announce intervals a registered peer may
	// stay silent before it is pruned (0: 2). Peers that depart
	// gracefully announce EventStopped and leave immediately; expiry
	// is for the ones that vanish — crashed processes, partitioned
	// hosts — whose stale endpoints would otherwise be handed out
	// forever, burning other peers' dial budgets on dead addresses.
	ExpireAfter int
}

// DefaultTrackerConfig returns the standard announce lifecycle.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{Interval: DefaultAnnounceInterval, ExpireAfter: 2}
}

// TrackerStats counts tracker activity.
type TrackerStats struct {
	Announces int
	Started   int
	Completed int
	Stopped   int
}

// Tracker is the rendezvous service: it registers announcing peers per
// info-hash and returns random peer subsets. It speaks bencoded
// messages over vnet connections (the real tracker speaks HTTP GET; the
// payload and the information flow are the same — documented
// substitution).
type Tracker struct {
	host   *vnet.Host
	cfg    TrackerConfig
	swarms map[[20]byte]*swarmPeers
	stats  TrackerStats

	// permScratch is the reusable buffer for the per-announce random
	// permutation: rand.Perm allocates len(order) ints per call, which
	// at 10k registered peers is ~80 KB per announce.
	permScratch []int
}

type swarmPeers struct {
	order []trackerPeer
	index map[ip.Endpoint]int
}

type trackerPeer struct {
	ep       ip.Endpoint
	complete bool
	// lastSeen is the virtual instant of the peer's latest announce;
	// expiry prunes peers silent for ExpireAfter intervals. Virtual
	// time, never wall time: expiry decisions are trace-visible (they
	// change which endpoints later announces hand out), so they must
	// be a pure function of the simulation's own clock.
	lastSeen sim.Time
}

// NewTracker creates a tracker with the default announce lifecycle on
// the given host and starts its accept loop on TrackerPort.
func NewTracker(host *vnet.Host) *Tracker {
	return NewTrackerConfig(host, TrackerConfig{})
}

// NewTrackerConfig is NewTracker with an explicit announce lifecycle
// (zero fields take defaults).
func NewTrackerConfig(host *vnet.Host, cfg TrackerConfig) *Tracker {
	t := &Tracker{host: host, cfg: cfg, swarms: make(map[[20]byte]*swarmPeers)}
	host.Network().Kernel().Go("tracker", t.serve)
	return t
}

// interval returns the configured announce interval, defaulted.
func (t *Tracker) interval() time.Duration {
	if t.cfg.Interval > 0 {
		return t.cfg.Interval
	}
	return DefaultAnnounceInterval
}

// expireAfter returns the silence budget before a peer is pruned.
func (t *Tracker) expireAfter() time.Duration {
	n := t.cfg.ExpireAfter
	if n <= 0 {
		n = 2
	}
	return time.Duration(n) * t.interval()
}

// Stats returns a snapshot of announce counters.
func (t *Tracker) Stats() TrackerStats { return t.stats }

// PeerCount returns how many peers are registered for a torrent.
func (t *Tracker) PeerCount(infoHash [20]byte) int {
	sw := t.swarms[infoHash]
	if sw == nil {
		return 0
	}
	return len(sw.order)
}

// CompletedCount returns how many registered peers have completed.
func (t *Tracker) CompletedCount(infoHash [20]byte) int {
	sw := t.swarms[infoHash]
	if sw == nil {
		return 0
	}
	n := 0
	for _, p := range sw.order {
		if p.complete {
			n++
		}
	}
	return n
}

func (t *Tracker) serve(p *sim.Proc) {
	l, err := t.host.Listen(p, TrackerPort)
	if err != nil {
		return
	}
	for {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		c := conn
		p.Go("tracker-conn", func(p *sim.Proc) { t.handle(p, c) })
	}
}

func (t *Tracker) handle(p *sim.Proc, c *vnet.Conn) {
	defer c.Close(p)
	pk, ok, err := c.RecvTimeout(p, 30*time.Second)
	if err != nil || !ok {
		return
	}
	resp, err := t.announce(pk.Data, pk.From.Addr)
	if err != nil {
		enc, _ := Bencode(map[string]any{"failure reason": err.Error()})
		c.Send(p, enc)
		return
	}
	c.Send(p, resp)
}

// announce processes one bencoded announce and returns the bencoded
// response.
//
//p2p:token
func (t *Tracker) announce(req []byte, from ip.Addr) ([]byte, error) {
	v, err := Bdecode(req)
	if err != nil {
		return nil, err
	}
	dict, ok := v.(map[string]any)
	if !ok {
		return nil, errors.New("announce is not a dict")
	}
	ihRaw, _ := dict["info_hash"].([]byte)
	if len(ihRaw) != 20 {
		return nil, errors.New("bad info_hash")
	}
	var ih [20]byte
	copy(ih[:], ihRaw)
	portN, _ := dict["port"].(int64)
	event := ""
	if e, ok := dict["event"].([]byte); ok {
		event = string(e)
	}
	left, _ := dict["left"].(int64)
	numWant := int64(DefaultNumWant)
	if nw, ok := dict["numwant"].(int64); ok && nw > 0 {
		numWant = nw
		if numWant > MaxNumWant {
			numWant = MaxNumWant
		}
	}
	self := ip.Endpoint{Addr: from, Port: ip.Port(portN)}

	sw := t.swarms[ih]
	if sw == nil {
		sw = &swarmPeers{index: make(map[ip.Endpoint]int)}
		t.swarms[ih] = sw
	}
	now := t.host.Network().Kernel().Now()
	// Prune peers that vanished without EventStopped before serving
	// the announce: a returning silent peer re-registers below, and a
	// fresh peer never sees the dead endpoints.
	t.expire(sw, now)
	t.stats.Announces++
	switch event {
	case EventStarted, EventEmpty, EventCompleted:
		// A peer that registers port 0 (or garbage) is unreachable:
		// handing its endpoint to other peers just burns their dial
		// budget on guaranteed-failed connections. Real trackers reject
		// these announces.
		if portN <= 0 || portN > 65535 {
			return nil, fmt.Errorf("invalid port %d", portN)
		}
		if event == EventStarted {
			t.stats.Started++
		}
		if event == EventCompleted {
			t.stats.Completed++
		}
		if i, known := sw.index[self]; known {
			sw.order[i].complete = left == 0 || event == EventCompleted
			sw.order[i].lastSeen = now
		} else {
			sw.index[self] = len(sw.order)
			sw.order = append(sw.order, trackerPeer{ep: self, complete: left == 0, lastSeen: now})
		}
	case EventStopped:
		t.stats.Stopped++
		if i, known := sw.index[self]; known {
			last := len(sw.order) - 1
			sw.index[sw.order[last].ep] = i
			sw.order[i] = sw.order[last]
			sw.order = sw.order[:last]
			delete(sw.index, self)
		}
	default:
		return nil, fmt.Errorf("unknown event %q", event)
	}

	// Random subset of other peers, like the real tracker. The shuffle
	// replicates rand.Perm's exact algorithm into a reused buffer: the
	// Intn draw sequence — and therefore the trace — is identical to
	// rng.Perm(n), without the per-announce allocation.
	rng := t.host.Network().Kernel().Rand()
	var peers []any
	if cap(t.permScratch) < len(sw.order) {
		t.permScratch = make([]int, len(sw.order))
	}
	perm := t.permScratch[:len(sw.order)]
	for i := range perm {
		j := rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	for _, i := range perm {
		if len(peers) >= int(numWant) {
			break
		}
		tp := sw.order[i]
		if tp.ep == self {
			continue
		}
		peers = append(peers, map[string]any{
			"ip":   tp.ep.Addr.String(),
			"port": int64(tp.ep.Port),
		})
	}
	return Bencode(map[string]any{
		"interval": int64(t.interval() / time.Second),
		"peers":    peers,
	})
}

// expire swap-removes every registered peer silent for longer than
// the expiry budget. Swap-removal perturbs sw.order, but only when a
// peer actually expires — an expiry-free announce leaves the order,
// and therefore the response permutation's draw sequence, untouched.
func (t *Tracker) expire(sw *swarmPeers, now sim.Time) {
	ttl := t.expireAfter()
	for i := 0; i < len(sw.order); {
		if now.Sub(sw.order[i].lastSeen) <= ttl {
			i++
			continue
		}
		ep := sw.order[i].ep
		last := len(sw.order) - 1
		sw.order[i] = sw.order[last]
		sw.order = sw.order[:last]
		delete(sw.index, ep)
		if i < last {
			sw.index[sw.order[i].ep] = i
		}
		// Re-examine the swapped-in entry now at i.
	}
}

// AnnounceRequest is the client-side helper: it dials the tracker,
// sends an announce and parses the peer list and the tracker's
// re-announce interval (0 when the response carries none). Earlier
// versions read only "peers" and dropped the interval on the floor,
// so clients could never honor the tracker's announce schedule.
func AnnounceRequest(p *sim.Proc, h *vnet.Host, tracker ip.Endpoint, infoHash [20]byte,
	port ip.Port, event string, left int64, numWant int) ([]ip.Endpoint, time.Duration, error) {
	c, err := h.Dial(p, tracker)
	if err != nil {
		return nil, 0, err
	}
	defer c.Close(p)
	req, err := Bencode(map[string]any{
		"info_hash": infoHash[:],
		"peer_id":   fmt.Sprintf("%-20s", "go-p2plab-"+h.Addr().String())[:20],
		"port":      int64(port),
		"event":     event,
		"left":      left,
		"numwant":   int64(numWant),
	})
	if err != nil {
		return nil, 0, err
	}
	if err := c.Send(p, req); err != nil {
		return nil, 0, err
	}
	pk, ok, err := c.RecvTimeout(p, 30*time.Second)
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, vnet.ErrTimeout
	}
	v, err := Bdecode(pk.Data)
	if err != nil {
		return nil, 0, err
	}
	dict, okd := v.(map[string]any)
	if !okd {
		return nil, 0, errors.New("bt: tracker response is not a dict")
	}
	if f, bad := dict["failure reason"].([]byte); bad {
		return nil, 0, fmt.Errorf("bt: tracker failure: %s", f)
	}
	var interval time.Duration
	if sec, okI := dict["interval"].(int64); okI && sec > 0 {
		interval = time.Duration(sec) * time.Second
	}
	rawPeers, _ := dict["peers"].([]any)
	var peers []ip.Endpoint
	for _, rp := range rawPeers {
		pd, okp := rp.(map[string]any)
		if !okp {
			continue
		}
		addrB, _ := pd["ip"].([]byte)
		portN, _ := pd["port"].(int64)
		a, err := ip.ParseAddr(string(addrB))
		if err != nil {
			continue
		}
		peers = append(peers, ip.Endpoint{Addr: a, Port: ip.Port(portN)})
	}
	return peers, interval, nil
}
