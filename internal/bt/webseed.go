package bt

import (
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// WebSeedPort is the well-known port web-seed hosts listen on.
const WebSeedPort ip.Port = 8080

// WebSeedStats counts a web seed's serving activity.
type WebSeedStats struct {
	Requests    uint64
	BytesServed uint64
}

// WebSeed is an always-available block server: the emulation analogue
// of an HTTP range server in a BEP 19 deployment (Erigon's snapshot
// webseeds are the production model). It speaks the same block
// request/response shapes as a peer but none of the peer protocol —
// no handshake, no choking, no bitfields, no interest. Clients attach
// it as a permanently-unchoked pseudo-peer (ClientConfig.WebSeeds)
// and fall back to it whenever swarm capacity leaves pipeline room,
// which is exactly the CDN-fallback role the real thing plays.
type WebSeed struct {
	host  *vnet.Host
	meta  *MetaInfo
	store Storage
	stats WebSeedStats
}

// NewWebSeed creates a web seed on host serving the torrent from
// store (normally a seeded storage) and starts its accept loop.
func NewWebSeed(host *vnet.Host, meta *MetaInfo, store Storage) *WebSeed {
	w := &WebSeed{host: host, meta: meta, store: store}
	host.Network().Kernel().Go("webseed-"+host.Addr().String(), w.serve)
	return w
}

// Endpoint returns the address clients configure in
// ClientConfig.WebSeeds.
func (w *WebSeed) Endpoint() ip.Endpoint {
	return ip.Endpoint{Addr: w.host.Addr(), Port: WebSeedPort}
}

// Stats returns a snapshot of serving counters.
func (w *WebSeed) Stats() WebSeedStats { return w.stats }

func (w *WebSeed) serve(p *sim.Proc) {
	l, err := w.host.Listen(p, WebSeedPort)
	if err != nil {
		return
	}
	for {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		cn := conn
		p.Go("webseed-conn", func(p *sim.Proc) { w.handle(p, cn) })
	}
}

// handle serves one client connection: a loop of block requests, each
// answered immediately (an HTTP range GET per block). Anything that
// is not a well-formed request — cancels, stray peer-protocol
// messages — is ignored, like a web server ignoring unknown headers.
func (w *WebSeed) handle(p *sim.Proc, cn *vnet.Conn) {
	defer cn.Close(p)
	for {
		pk, err := cn.Recv(p)
		if err != nil {
			return
		}
		var m Msg
		switch v := pk.Meta.(type) {
		case *msgBox:
			m = v.m
			v.release()
		case Msg:
			m = v
		default:
			continue
		}
		if m.ID != MsgRequest || m.Length <= 0 || m.Length > 128*1024 {
			continue
		}
		data, ok := w.store.ReadBlock(m.Index, m.Begin, m.Length)
		if !ok && !w.store.HavePiece(m.Index) {
			continue
		}
		out := Msg{ID: MsgPiece, Index: m.Index, Begin: m.Begin, Length: m.Length, Block: data}
		if data == nil {
			if ss, isSparse := w.store.(*SparseStorage); isSparse {
				out.Tag = ss.Tag(m.Index)
			}
		}
		if err := cn.SendMeta(p, out.WireSize(), out); err != nil {
			return
		}
		w.stats.Requests++
		w.stats.BytesServed += uint64(out.BlockLen())
	}
}
