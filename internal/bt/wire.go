package bt

import "fmt"

// MsgID is a peer wire protocol message type, numbered per the
// BitTorrent specification.
type MsgID byte

const (
	MsgChoke         MsgID = 0
	MsgUnchoke       MsgID = 1
	MsgInterested    MsgID = 2
	MsgNotInterested MsgID = 3
	MsgHave          MsgID = 4
	MsgBitfield      MsgID = 5
	MsgRequest       MsgID = 6
	MsgPiece         MsgID = 7
	MsgCancel        MsgID = 8
)

// String names the message like protocol documentation does.
func (id MsgID) String() string {
	names := [...]string{"choke", "unchoke", "interested", "not-interested",
		"have", "bitfield", "request", "piece", "cancel"}
	if int(id) < len(names) {
		return names[id]
	}
	return fmt.Sprintf("msg(%d)", byte(id))
}

// HandshakeSize is the wire size of the BitTorrent handshake:
// 1 + len("BitTorrent protocol") + 8 reserved + 20 infohash + 20 peerid.
const HandshakeSize = 68

// Handshake opens every peer connection.
type Handshake struct {
	InfoHash [20]byte
	PeerID   [20]byte
}

// Msg is one peer wire message. Messages travel as sparse vnet payloads
// (the struct as metadata, the spec-accurate size on the wire); Block
// carries real bytes only under MemStorage.
type Msg struct {
	ID     MsgID
	Index  int      // have, request, piece, cancel
	Begin  int      // request, piece, cancel
	Length int      // request, cancel; for sparse piece: payload length
	Bits   []byte   // bitfield
	Block  []byte   // piece payload (nil when sparse)
	Tag    [20]byte // sparse piece verification tag
}

// WireSize returns the message's size on the wire, per the protocol
// spec: 4-byte length prefix + 1-byte id + payload.
func (m Msg) WireSize() int {
	switch m.ID {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
		return 5
	case MsgHave:
		return 9
	case MsgBitfield:
		return 5 + len(m.Bits)
	case MsgRequest, MsgCancel:
		return 17
	case MsgPiece:
		n := m.Length
		if m.Block != nil {
			n = len(m.Block)
		}
		return 13 + n
	default:
		return 5
	}
}

// BlockLen returns the payload length of a piece message regardless of
// sparse/real representation.
func (m Msg) BlockLen() int {
	if m.Block != nil {
		return len(m.Block)
	}
	return m.Length
}

// String renders the message for traces.
func (m Msg) String() string {
	switch m.ID {
	case MsgHave:
		return fmt.Sprintf("have %d", m.Index)
	case MsgRequest:
		return fmt.Sprintf("request %d+%d/%d", m.Index, m.Begin, m.Length)
	case MsgPiece:
		return fmt.Sprintf("piece %d+%d (%dB)", m.Index, m.Begin, m.BlockLen())
	case MsgCancel:
		return fmt.Sprintf("cancel %d+%d/%d", m.Index, m.Begin, m.Length)
	case MsgBitfield:
		return fmt.Sprintf("bitfield (%dB)", len(m.Bits))
	default:
		return m.ID.String()
	}
}
