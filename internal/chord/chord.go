// Package chord implements the Chord distributed hash table over the
// emulated network — a second peer-to-peer system to study on the
// platform, exercising exactly what P2PLab was built to measure: how a
// structured overlay's lookup latency depends on edge-link latencies
// and node locality (the group model of internal/topo).
//
// The implementation follows Stoica et al. (SIGCOMM 2001): an m-bit
// identifier circle, successor pointers, finger tables, iterative
// lookups, and the periodic stabilize/fix-fingers/check-predecessor
// maintenance protocol. Nodes communicate with request/response
// messages over vnet connections.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"repro/internal/ip"
)

// M is the identifier width in bits. 32 bits is plenty for emulated
// overlays of thousands of nodes while keeping IDs readable.
const M = 32

// ID is a point on the identifier circle.
type ID uint32

// HashAddr maps a node address to its identifier (SHA-1, like Chord).
func HashAddr(a ip.Addr) ID {
	sum := sha1.Sum([]byte(a.String()))
	return ID(binary.BigEndian.Uint32(sum[:4]))
}

// HashKey maps an application key to its identifier.
func HashKey(key string) ID {
	sum := sha1.Sum([]byte(key))
	return ID(binary.BigEndian.Uint32(sum[:4]))
}

// Between reports whether x lies on the circle segment (a, b]
// (wrapping). By convention Between(x, a, a] is true for x != a... no:
// when a == b the interval covers the whole circle.
func Between(x, a, b ID) bool {
	if a == b {
		return true
	}
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// BetweenOpen reports whether x lies in the open segment (a, b).
func BetweenOpen(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// fingerStart returns the start of the i-th finger interval of n:
// n + 2^i mod 2^M.
func fingerStart(n ID, i int) ID {
	return n + ID(uint32(1)<<uint(i))
}

// NodeRef is a remote node's identity: its ring ID and its endpoint.
type NodeRef struct {
	ID   ID
	Addr ip.Endpoint
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.Addr.Addr.IsZero() }

// String formats the reference for traces.
func (r NodeRef) String() string {
	return fmt.Sprintf("%08x@%v", uint32(r.ID), r.Addr)
}
