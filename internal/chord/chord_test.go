package chord

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false}, // open at a
		{10, 1, 10, true}, // closed at b
		{15, 1, 10, false},
		{5, 10, 1, false}, // wrapping interval (10, 1]
		{15, 10, 1, true}, // inside the wrap
		{0, 10, 1, true},  // inside the wrap
		{7, 7, 7, true},   // a==b covers the circle
		{100, 7, 7, true},
	}
	for _, c := range cases {
		if got := Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%d, %d, %d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBetweenOpen(t *testing.T) {
	if BetweenOpen(10, 1, 10) {
		t.Error("open at b")
	}
	if !BetweenOpen(5, 1, 10) {
		t.Error("inside")
	}
	if BetweenOpen(7, 7, 7) {
		t.Error("x==a excluded even on full circle")
	}
	if !BetweenOpen(8, 7, 7) {
		t.Error("full circle includes others")
	}
}

func TestBetweenProperty(t *testing.T) {
	// Exactly one of the two half-circle intervals contains any x not
	// equal to either endpoint.
	f := func(xr, ar, br uint32) bool {
		x, a, b := ID(xr), ID(ar), ID(br)
		if x == a || x == b || a == b {
			return true
		}
		return BetweenOpen(x, a, b) != BetweenOpen(x, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerStartWraps(t *testing.T) {
	n := ID(1<<32 - 10)
	if fingerStart(n, 4) != ID(6) {
		t.Fatalf("fingerStart wrap = %d", fingerStart(n, 4))
	}
}

func TestHashDeterministic(t *testing.T) {
	a := ip.MustParseAddr("10.0.0.1")
	if HashAddr(a) != HashAddr(a) {
		t.Fatal("hash must be deterministic")
	}
	if HashAddr(a) == HashAddr(ip.MustParseAddr("10.0.0.2")) {
		t.Fatal("different addrs should hash apart")
	}
	if HashKey("k1") == HashKey("k2") {
		t.Fatal("different keys should hash apart")
	}
}

// ring builds an n-node Chord ring on fast links, runs maintenance for
// warm seconds of virtual time, then calls check inside the sim.
func ring(t *testing.T, n int, warm time.Duration, check func(p *sim.Proc, nodes []*Node)) {
	t.Helper()
	k := sim.New(1)
	net := vnet.NewNetwork(k, nil, vnet.DefaultConfig())
	lan := topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond}
	var nodes []*Node
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < n; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), lan)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, NewNode(h, DefaultConfig()))
	}
	nodes[0].Create()
	bootstrap := nodes[0].Ref().Addr
	for i := 1; i < n; i++ {
		// Stagger joins so stabilization keeps up (as in the Chord
		// paper's experiments).
		i := i
		k.After(time.Duration(i)*500*time.Millisecond, func() { nodes[i].Join(bootstrap) })
	}
	k.Go("checker", func(p *sim.Proc) {
		p.Sleep(warm)
		check(p, nodes)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// ringIsCorrect verifies the successor pointers form the sorted-ID
// cycle over all alive nodes.
func ringIsCorrect(nodes []*Node) error {
	var alive []*Node
	for _, nd := range nodes {
		if nd.Alive() {
			alive = append(alive, nd)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID() < alive[j].ID() })
	for i, nd := range alive {
		want := alive[(i+1)%len(alive)].ID()
		if nd.Successor().ID != want {
			return fmt.Errorf("node %08x successor = %08x, want %08x",
				uint32(nd.ID()), uint32(nd.Successor().ID), uint32(want))
		}
	}
	return nil
}

func TestRingConverges(t *testing.T) {
	ring(t, 16, 60*time.Second, func(p *sim.Proc, nodes []*Node) {
		if err := ringIsCorrect(nodes); err != nil {
			t.Error(err)
		}
	})
}

func TestLookupFindsCorrectOwner(t *testing.T) {
	ring(t, 16, 60*time.Second, func(p *sim.Proc, nodes []*Node) {
		ids := make([]ID, len(nodes))
		for i, nd := range nodes {
			ids[i] = nd.ID()
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		owner := func(key ID) ID {
			for _, id := range ids {
				if id >= key {
					return id
				}
			}
			return ids[0] // wrap
		}
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("key-%d", i)
			res, err := nodes[i%len(nodes)].Lookup(p, key)
			if err != nil {
				t.Fatalf("lookup %s: %v", key, err)
			}
			if res.Owner.ID != owner(HashKey(key)) {
				t.Fatalf("lookup %s: owner %08x, want %08x",
					key, uint32(res.Owner.ID), uint32(owner(HashKey(key))))
			}
		}
	})
}

func TestLookupHopsLogarithmic(t *testing.T) {
	ring(t, 32, 120*time.Second, func(p *sim.Proc, nodes []*Node) {
		totalHops := 0
		const lookups = 100
		for i := 0; i < lookups; i++ {
			res, err := nodes[i%len(nodes)].Lookup(p, fmt.Sprintf("k%d", i))
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			totalHops += res.Hops
		}
		avg := float64(totalHops) / lookups
		// log2(32) = 5; Chord's expectation is ½·log2(N) ≈ 2.5.
		if avg > 6 {
			t.Errorf("average hops = %.2f, want O(log N) ≈ 2.5", avg)
		}
	})
}

func TestPutGet(t *testing.T) {
	ring(t, 8, 40*time.Second, func(p *sim.Proc, nodes []*Node) {
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("item-%d", i)
			if err := nodes[0].Put(p, key, fmt.Sprintf("value-%d", i)); err != nil {
				t.Fatalf("put %s: %v", key, err)
			}
		}
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("item-%d", i)
			// Read from a different node than the writer.
			v, ok, err := nodes[3].Get(p, key)
			if err != nil || !ok {
				t.Fatalf("get %s: ok=%v err=%v", key, ok, err)
			}
			if v != fmt.Sprintf("value-%d", i) {
				t.Fatalf("get %s = %q", key, v)
			}
		}
	})
}

func TestGetMissingKey(t *testing.T) {
	ring(t, 4, 30*time.Second, func(p *sim.Proc, nodes []*Node) {
		_, ok, err := nodes[0].Get(p, "never-stored")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if ok {
			t.Fatal("missing key reported present")
		}
	})
}

func TestRingHealsAfterDepartures(t *testing.T) {
	ring(t, 16, 60*time.Second, func(p *sim.Proc, nodes []*Node) {
		// Kill a quarter of the ring abruptly.
		for i := 0; i < 4; i++ {
			nodes[i*4+1].Leave()
		}
		p.Sleep(90 * time.Second) // let stabilization heal
		if err := ringIsCorrect(nodes); err != nil {
			t.Error(err)
		}
		// Lookups from a survivor still resolve.
		for i := 0; i < 10; i++ {
			if _, err := nodes[0].Lookup(p, fmt.Sprintf("after-%d", i)); err != nil {
				t.Fatalf("post-churn lookup: %v", err)
			}
		}
	})
}

func TestSingleNodeRing(t *testing.T) {
	ring(t, 1, 10*time.Second, func(p *sim.Proc, nodes []*Node) {
		res, err := nodes[0].Lookup(p, "anything")
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner.ID != nodes[0].ID() {
			t.Fatal("sole node must own everything")
		}
	})
}

func TestLookupLatencyReflectsTopology(t *testing.T) {
	// Two rings, identical membership: one on a LAN, one on DSL with
	// 30 ms latency. Lookup latency must be dominated by link latency.
	latency := func(class topo.LinkClass) time.Duration {
		k := sim.New(1)
		net := vnet.NewNetwork(k, nil, vnet.DefaultConfig())
		var nodes []*Node
		base := ip.MustParseAddr("10.0.0.1")
		for i := 0; i < 8; i++ {
			h, _ := net.AddHostClass(base.Add(uint32(i)), class)
			nodes = append(nodes, NewNode(h, DefaultConfig()))
		}
		nodes[0].Create()
		for i := 1; i < 8; i++ {
			i := i
			k.After(time.Duration(i)*500*time.Millisecond, func() { nodes[i].Join(nodes[0].Ref().Addr) })
		}
		var total time.Duration
		k.Go("measure", func(p *sim.Proc) {
			p.Sleep(40 * time.Second)
			for i := 0; i < 20; i++ {
				res, err := nodes[i%8].Lookup(p, fmt.Sprintf("k%d", i))
				if err == nil {
					total += res.Latency
				}
			}
			k.Stop()
		})
		k.Run()
		return total / 20
	}
	lan := latency(topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond})
	dsl := latency(topo.DSL)
	if dsl < 5*lan {
		t.Fatalf("DSL lookups (%v) should be much slower than LAN (%v)", dsl, lan)
	}
}

func TestNodeStatsAccumulate(t *testing.T) {
	ring(t, 8, 40*time.Second, func(p *sim.Proc, nodes []*Node) {
		var stabilizes uint64
		for _, nd := range nodes {
			stabilizes += nd.Stats.Stabilizes
		}
		if stabilizes == 0 {
			t.Fatal("no stabilize rounds recorded")
		}
	})
}

func TestNodeRefString(t *testing.T) {
	r := NodeRef{ID: 0xdeadbeef, Addr: ip.Endpoint{Addr: ip.MustParseAddr("10.0.0.1"), Port: Port}}
	if r.String() != "deadbeef@10.0.0.1:4000" {
		t.Fatalf("String = %q", r.String())
	}
	if !((NodeRef{}).IsZero()) {
		t.Fatal("zero ref should be zero")
	}
}
