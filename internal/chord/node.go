package chord

import (
	"errors"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// Port is the Chord protocol port.
const Port ip.Port = 4000

// rpcKind discriminates protocol messages.
type rpcKind int

const (
	rpcFindSuccessor rpcKind = iota
	rpcGetPredecessor
	rpcNotify
	rpcPing
	rpcGet
	rpcPut
	rpcReply
)

// rpcMsg is one Chord protocol message (request or reply).
type rpcMsg struct {
	Kind   rpcKind
	Seq    uint64
	Target ID      // find_successor
	Node   NodeRef // notify / replies carrying a node
	OK     bool
	Key    string // get/put
	Value  string
	Hops   int // accumulated forwarding hops (diagnostics)
}

// wireSize approximates the message's wire footprint.
func (m rpcMsg) wireSize() int { return 48 + len(m.Key) + len(m.Value) }

// Config tunes the maintenance protocol.
type Config struct {
	// Stabilize is the period of the stabilize/fix-fingers loop.
	Stabilize time.Duration
	// RPCTimeout bounds each remote call.
	RPCTimeout time.Duration
	// SuccessorListLen is the replication factor of the successor list
	// (fault tolerance under churn).
	SuccessorListLen int
}

// DefaultConfig mirrors the Chord paper's simulation settings, scaled
// to interactive experiment lengths.
func DefaultConfig() Config {
	return Config{
		Stabilize:        2 * time.Second,
		RPCTimeout:       10 * time.Second,
		SuccessorListLen: 8,
	}
}

// Node is one Chord participant running on a virtual host.
type Node struct {
	h   *vnet.Host
	cfg Config
	id  ID
	ref NodeRef

	predecessor NodeRef
	successors  []NodeRef // successors[0] is THE successor
	finger      [M]NodeRef
	nextFinger  int

	store map[string]string

	seq     uint64
	pending map[uint64]*rpcWaiter
	alive   bool

	// Stats accumulate over the node's lifetime.
	Stats NodeStats
}

// NodeStats counts protocol activity.
type NodeStats struct {
	LookupsServed uint64 // find_successor requests answered
	LookupsSent   uint64
	Stabilizes    uint64
	Timeouts      uint64
}

type rpcWaiter struct {
	cond  *sim.Cond
	reply rpcMsg
	done  bool
}

// NewNode creates a Chord node on host h. Call Create or Join to start
// it.
func NewNode(h *vnet.Host, cfg Config) *Node {
	n := &Node{
		h:       h,
		cfg:     cfg,
		id:      HashAddr(h.Addr()),
		store:   make(map[string]string),
		pending: make(map[uint64]*rpcWaiter),
	}
	n.ref = NodeRef{ID: n.id, Addr: ip.Endpoint{Addr: h.Addr(), Port: Port}}
	n.successors = make([]NodeRef, 1, cfg.SuccessorListLen)
	return n
}

// Ref returns the node's ring identity.
func (n *Node) Ref() NodeRef { return n.ref }

// ID returns the node's ring identifier.
func (n *Node) ID() ID { return n.id }

// Successor returns the current successor pointer.
func (n *Node) Successor() NodeRef { return n.successors[0] }

// Predecessor returns the current predecessor pointer (zero if
// unknown).
func (n *Node) Predecessor() NodeRef { return n.predecessor }

// Alive reports whether the node is running.
func (n *Node) Alive() bool { return n.alive }

// Create starts the node as the first member of a new ring.
func (n *Node) Create() {
	n.successors[0] = n.ref
	n.start()
}

// Join starts the node and joins the ring known to bootstrap.
// It spawns the node's goroutines; the join completes asynchronously
// (the first stabilize round wires the node in).
func (n *Node) Join(bootstrap ip.Endpoint) {
	n.successors[0] = n.ref // provisional; fixed on first lookup
	n.start()
	k := n.h.Network().Kernel()
	k.Go("chord-join-"+n.h.Addr().String(), func(p *sim.Proc) {
		reply, err := n.call(p, bootstrap, rpcMsg{Kind: rpcFindSuccessor, Target: n.id})
		if err != nil || reply.Node.IsZero() {
			return
		}
		if reply.Node.ID != n.id {
			n.successors[0] = reply.Node
		}
	})
}

// Leave stops the node abruptly (a churn departure: no graceful
// handoff, as in the Chord paper's failure model).
func (n *Node) Leave() { n.alive = false }

// start launches the server loop and the maintenance ticker.
func (n *Node) start() {
	n.alive = true
	k := n.h.Network().Kernel()
	name := "chord-" + n.h.Addr().String()
	k.Go(name+"/server", n.serve)
	k.Go(name+"/stabilize", func(p *sim.Proc) {
		for n.alive {
			p.Sleep(n.cfg.Stabilize)
			if !n.alive {
				return
			}
			n.stabilize(p)
			n.fixFinger(p)
			n.checkPredecessor(p)
			n.Stats.Stabilizes++
		}
	})
}

// serve accepts connections; each connection carries one request and
// gets one reply (the RPC style keeps the node loop simple and matches
// iterative Chord lookups).
func (n *Node) serve(p *sim.Proc) {
	l, err := n.h.Listen(p, Port)
	if err != nil {
		return
	}
	for {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		c := conn
		p.Go("chord-rpc", func(p *sim.Proc) { n.handle(p, c) })
	}
}

func (n *Node) handle(p *sim.Proc, c *vnet.Conn) {
	defer c.Close(p)
	if !n.alive {
		return // dead nodes do not answer: callers time out
	}
	pk, ok, err := c.RecvTimeout(p, n.cfg.RPCTimeout)
	if err != nil || !ok {
		return
	}
	req, isMsg := pk.Meta.(rpcMsg)
	if !isMsg || !n.alive {
		return
	}
	reply := n.dispatch(p, req)
	reply.Kind = rpcReply
	reply.Seq = req.Seq
	c.SendMeta(p, reply.wireSize(), reply)
}

// dispatch executes one request against local state.
func (n *Node) dispatch(p *sim.Proc, req rpcMsg) rpcMsg {
	switch req.Kind {
	case rpcFindSuccessor:
		n.Stats.LookupsServed++
		return n.findSuccessor(p, req.Target, req.Hops)
	case rpcGetPredecessor:
		return rpcMsg{Node: n.predecessor, OK: true}
	case rpcNotify:
		n.notify(req.Node)
		return rpcMsg{OK: true}
	case rpcPing:
		return rpcMsg{OK: true}
	case rpcGet:
		v, ok := n.store[req.Key]
		return rpcMsg{Value: v, OK: ok}
	case rpcPut:
		n.store[req.Key] = req.Value
		return rpcMsg{OK: true}
	default:
		return rpcMsg{OK: false}
	}
}

// findSuccessor resolves the successor of target, forwarding through
// the finger table (recursive routing, each hop a nested RPC).
func (n *Node) findSuccessor(p *sim.Proc, target ID, hops int) rpcMsg {
	succ := n.successors[0]
	if Between(target, n.id, succ.ID) || succ.ID == n.id {
		return rpcMsg{Node: succ, OK: true, Hops: hops}
	}
	next := n.closestPreceding(target)
	if next.ID == n.id || next.IsZero() {
		return rpcMsg{Node: succ, OK: true, Hops: hops}
	}
	reply, err := n.call(p, next.Addr, rpcMsg{Kind: rpcFindSuccessor, Target: target, Hops: hops + 1})
	if err != nil {
		// Fall back to the successor pointer on a dead finger.
		return rpcMsg{Node: succ, OK: true, Hops: hops}
	}
	return reply
}

// closestPreceding returns the finger-table entry closest to target
// from above n.
func (n *Node) closestPreceding(target ID) NodeRef {
	for i := M - 1; i >= 0; i-- {
		f := n.finger[i]
		if f.IsZero() {
			continue
		}
		if BetweenOpen(f.ID, n.id, target) {
			return f
		}
	}
	return n.successors[0]
}

// stabilize is Chord's periodic successor verification: ask the
// successor for its predecessor, adopt it if closer, then notify.
func (n *Node) stabilize(p *sim.Proc) {
	succ := n.successors[0]
	if succ.ID == n.id {
		// Alone, or provisional self-successor after join.
		if n.predecessor.IsZero() || n.predecessor.ID == n.id {
			return
		}
		n.successors[0] = n.predecessor
		succ = n.predecessor
	}
	reply, err := n.call(p, succ.Addr, rpcMsg{Kind: rpcGetPredecessor})
	if err != nil {
		n.dropSuccessor()
		return
	}
	x := reply.Node
	if !x.IsZero() && BetweenOpen(x.ID, n.id, succ.ID) {
		n.successors[0] = x
	}
	n.call(p, n.successors[0].Addr, rpcMsg{Kind: rpcNotify, Node: n.ref})
	n.refreshSuccessorList(p)
}

// refreshSuccessorList copies the successor's list, shifted.
func (n *Node) refreshSuccessorList(p *sim.Proc) {
	// Simplified: ping successors in order and keep the alive prefix;
	// the full list is rebuilt via stabilize rounds. We extend the list
	// with the successor's successor when short.
	succ := n.successors[0]
	if len(n.successors) < n.cfg.SuccessorListLen {
		reply, err := n.call(p, succ.Addr, rpcMsg{Kind: rpcFindSuccessor, Target: succ.ID + 1})
		if err == nil && !reply.Node.IsZero() && reply.Node.ID != n.id {
			for _, s := range n.successors {
				if s.ID == reply.Node.ID {
					return
				}
			}
			n.successors = append(n.successors, reply.Node)
		}
	}
}

// dropSuccessor discards a dead successor, promoting the next one.
func (n *Node) dropSuccessor() {
	if len(n.successors) > 1 {
		n.successors = n.successors[1:]
		return
	}
	n.successors[0] = n.ref // last resort: point at self, wait for notify
}

// notify is called by a node that believes it is our predecessor.
func (n *Node) notify(candidate NodeRef) {
	if candidate.ID == n.id {
		return
	}
	if n.predecessor.IsZero() || BetweenOpen(candidate.ID, n.predecessor.ID, n.id) {
		n.predecessor = candidate
	}
}

// fixFinger refreshes one finger-table entry per round.
func (n *Node) fixFinger(p *sim.Proc) {
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % M
	reply := n.findSuccessor(p, fingerStart(n.id, i), 0)
	if reply.OK && !reply.Node.IsZero() {
		n.finger[i] = reply.Node
	}
}

// checkPredecessor clears a dead predecessor pointer.
func (n *Node) checkPredecessor(p *sim.Proc) {
	if n.predecessor.IsZero() {
		return
	}
	if _, err := n.call(p, n.predecessor.Addr, rpcMsg{Kind: rpcPing}); err != nil {
		n.predecessor = NodeRef{}
	}
}

// errRPC is returned for failed or timed-out calls.
var errRPC = errors.New("chord: rpc failed")

// call performs one request/response exchange with a remote node.
func (n *Node) call(p *sim.Proc, to ip.Endpoint, req rpcMsg) (rpcMsg, error) {
	if to.Addr == n.h.Addr() {
		// Local fast path: no network.
		return n.dispatch(p, req), nil
	}
	n.Stats.LookupsSent++
	c, err := n.h.Dial(p, to)
	if err != nil {
		n.Stats.Timeouts++
		return rpcMsg{}, errRPC
	}
	defer c.Close(p)
	if err := c.SendMeta(p, req.wireSize(), req); err != nil {
		return rpcMsg{}, errRPC
	}
	pk, ok, err := c.RecvTimeout(p, n.cfg.RPCTimeout)
	if err != nil || !ok {
		n.Stats.Timeouts++
		return rpcMsg{}, errRPC
	}
	reply, isMsg := pk.Meta.(rpcMsg)
	if !isMsg {
		return rpcMsg{}, errRPC
	}
	return reply, nil
}

// LookupResult reports one resolved lookup.
type LookupResult struct {
	Owner   NodeRef
	Hops    int
	Latency time.Duration
}

// Lookup resolves the node responsible for key, reporting routing hops
// and wall (virtual) latency — the measurement of the DHT experiments.
func (n *Node) Lookup(p *sim.Proc, key string) (LookupResult, error) {
	start := p.Now()
	reply := n.findSuccessor(p, HashKey(key), 0)
	if !reply.OK || reply.Node.IsZero() {
		return LookupResult{}, errRPC
	}
	return LookupResult{
		Owner:   reply.Node,
		Hops:    reply.Hops,
		Latency: time.Duration(p.Now().Sub(start)),
	}, nil
}

// Put stores a key/value pair at its owner node.
func (n *Node) Put(p *sim.Proc, key, value string) error {
	res, err := n.Lookup(p, key)
	if err != nil {
		return err
	}
	_, err = n.call(p, res.Owner.Addr, rpcMsg{Kind: rpcPut, Key: key, Value: value})
	return err
}

// Get fetches a key from its owner node.
func (n *Node) Get(p *sim.Proc, key string) (string, bool, error) {
	res, err := n.Lookup(p, key)
	if err != nil {
		return "", false, err
	}
	reply, err := n.call(p, res.Owner.Addr, rpcMsg{Kind: rpcGet, Key: key})
	if err != nil {
		return "", false, err
	}
	return reply.Value, reply.OK, nil
}
