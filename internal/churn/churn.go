// Package churn models peer arrival and departure — the defining
// stress of peer-to-peer systems and the reason an experimentation
// platform like P2PLab exists. It provides session-time distributions
// measured in deployed systems (exponential and heavy-tailed Pareto
// lifetimes, flash crowds) and a driver that applies them to any
// population of start/stoppable peers on the virtual timeline.
package churn

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Lifetime draws session or downtime durations.
type Lifetime interface {
	// Sample draws one duration.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution mean (for reporting).
	Mean() time.Duration
}

// Exponential is the memoryless session-time model.
type Exponential struct {
	MeanDuration time.Duration
}

// Sample implements Lifetime.
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(e.MeanDuration))
}

// Mean implements Lifetime.
func (e Exponential) Mean() time.Duration { return e.MeanDuration }

// Pareto is the heavy-tailed session model measured in deployed P2P
// systems (most sessions short, a few very long). Alpha must be > 1
// for a finite mean.
type Pareto struct {
	Scale time.Duration // minimum session length (x_m)
	Alpha float64
}

// Sample implements Lifetime.
func (p Pareto) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	if u == 0 {
		u = 1e-12
	}
	return time.Duration(float64(p.Scale) / math.Pow(u, 1/p.Alpha))
}

// Mean implements Lifetime. For α ≤ 1 the mean diverges and the
// maximum representable duration is returned.
func (p Pareto) Mean() time.Duration {
	if p.Alpha <= 1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(p.Scale) * p.Alpha / (p.Alpha - 1))
}

// Fixed is a deterministic lifetime, for tests.
type Fixed struct {
	D time.Duration
}

// Sample implements Lifetime.
func (f Fixed) Sample(*rand.Rand) time.Duration { return f.D }

// Mean implements Lifetime.
func (f Fixed) Mean() time.Duration { return f.D }

// Peer is anything the churn driver can bring up and down.
type Peer interface {
	// Online starts (or restarts) the peer.
	Online(p *sim.Proc)
	// Offline stops the peer abruptly.
	Offline(p *sim.Proc)
}

// Config drives a churn process over a peer population.
type Config struct {
	// Session draws online durations.
	Session Lifetime
	// Downtime draws offline durations between sessions; nil means
	// peers never return.
	Downtime Lifetime
	// InitialDelay staggers each peer's first arrival uniformly over
	// this window (a flash crowd uses a short window).
	InitialDelay time.Duration
	// Horizon stops scheduling churn events past this virtual instant
	// (0 = unbounded).
	Horizon time.Duration
}

// Stats counts churn activity.
type Stats struct {
	Arrivals   int
	Departures int
}

// Driver applies a churn process to a set of peers.
type Driver struct {
	k     *sim.Kernel
	cfg   Config
	stats Stats
}

// NewDriver returns a churn driver on kernel k.
func NewDriver(k *sim.Kernel, cfg Config) *Driver {
	return &Driver{k: k, cfg: cfg}
}

// Stats returns arrival/departure counts so far.
func (d *Driver) Stats() Stats { return d.stats }

// Drive schedules the churn lifecycle for every peer: arrive after a
// uniform initial delay, stay online for a session draw, depart, stay
// offline for a downtime draw, repeat.
//
//p2p:tokenentry pre-Run setup: runs on the host goroutine before Kernel.Run, the only accessor until the run starts
func (d *Driver) Drive(peers []Peer) {
	rng := d.k.Rand()
	for i, peer := range peers {
		var delay time.Duration
		if d.cfg.InitialDelay > 0 {
			delay = time.Duration(rng.Int63n(int64(d.cfg.InitialDelay)))
		}
		d.scheduleArrival(peer, i, delay)
	}
}

func (d *Driver) pastHorizon(at sim.Time) bool {
	return d.cfg.Horizon > 0 && at > sim.Time(d.cfg.Horizon)
}

func (d *Driver) scheduleArrival(peer Peer, idx int, after time.Duration) {
	at := d.k.Now().Add(after)
	if d.pastHorizon(at) {
		return
	}
	d.k.After(after, func() {
		d.stats.Arrivals++
		d.k.Go("churn-up", func(p *sim.Proc) { peer.Online(p) })
		session := d.cfg.Session.Sample(d.k.Rand())
		d.scheduleDeparture(peer, idx, session)
	})
}

func (d *Driver) scheduleDeparture(peer Peer, idx int, after time.Duration) {
	at := d.k.Now().Add(after)
	if d.pastHorizon(at) {
		return
	}
	d.k.After(after, func() {
		d.stats.Departures++
		d.k.Go("churn-down", func(p *sim.Proc) { peer.Offline(p) })
		if d.cfg.Downtime == nil {
			return
		}
		down := d.cfg.Downtime.Sample(d.k.Rand())
		d.scheduleArrival(peer, idx, down)
	})
}

// FuncPeer adapts two closures into a Peer.
type FuncPeer struct {
	Up   func(p *sim.Proc)
	Down func(p *sim.Proc)
}

// Online implements Peer.
func (f FuncPeer) Online(p *sim.Proc) {
	if f.Up != nil {
		f.Up(p)
	}
}

// Offline implements Peer.
func (f FuncPeer) Offline(p *sim.Proc) {
	if f.Down != nil {
		f.Down(p)
	}
}
