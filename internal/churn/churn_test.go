package churn

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := Exponential{MeanDuration: 100 * time.Second}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	got := sum / n
	if got < 95*time.Second || got > 105*time.Second {
		t.Fatalf("empirical mean = %v, want ≈100s", got)
	}
	if e.Mean() != 100*time.Second {
		t.Fatal("Mean() wrong")
	}
}

func TestParetoProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Pareto{Scale: 10 * time.Second, Alpha: 2}
	const n = 20000
	var sum time.Duration
	min := time.Duration(1 << 62)
	for i := 0; i < n; i++ {
		s := p.Sample(rng)
		if s < min {
			min = s
		}
		sum += s
	}
	if min < 10*time.Second {
		t.Fatalf("Pareto sample below scale: %v", min)
	}
	// Mean = scale·α/(α−1) = 20 s.
	got := sum / n
	if got < 18*time.Second || got > 22*time.Second {
		t.Fatalf("empirical mean = %v, want ≈20s", got)
	}
	if p.Mean() != 20*time.Second {
		t.Fatalf("Mean() = %v", p.Mean())
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := Pareto{Scale: time.Second, Alpha: 1}
	if p.Mean() < time.Duration(1<<62) {
		t.Fatal("α ≤ 1 must report an unbounded mean")
	}
}

func TestParetoSamplesPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Pareto{Scale: time.Second, Alpha: 1.5}
		for i := 0; i < 100; i++ {
			if p.Sample(rng) < time.Second {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedLifetime(t *testing.T) {
	f := Fixed{D: 5 * time.Second}
	if f.Sample(nil) != 5*time.Second || f.Mean() != 5*time.Second {
		t.Fatal("Fixed broken")
	}
}

// countingPeer records its own session history.
type countingPeer struct {
	ups, downs int
	online     bool
	upTimes    []sim.Time
}

func (c *countingPeer) Online(p *sim.Proc) {
	c.ups++
	c.online = true
	c.upTimes = append(c.upTimes, p.Now())
}
func (c *countingPeer) Offline(p *sim.Proc) {
	c.downs++
	c.online = false
}

func TestDriverSingleSessionNoReturn(t *testing.T) {
	k := sim.New(1)
	d := NewDriver(k, Config{Session: Fixed{D: 10 * time.Second}})
	peers := []*countingPeer{{}, {}, {}}
	ps := make([]Peer, len(peers))
	for i, p := range peers {
		ps[i] = p
	}
	d.Drive(ps)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if p.ups != 1 || p.downs != 1 {
			t.Fatalf("peer %d: ups=%d downs=%d, want 1/1", i, p.ups, p.downs)
		}
		if p.online {
			t.Fatalf("peer %d still online", i)
		}
	}
	st := d.Stats()
	if st.Arrivals != 3 || st.Departures != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDriverRepeatingSessions(t *testing.T) {
	k := sim.New(1)
	d := NewDriver(k, Config{
		Session:  Fixed{D: 10 * time.Second},
		Downtime: Fixed{D: 5 * time.Second},
		Horizon:  100 * time.Second,
	})
	peer := &countingPeer{}
	d.Drive([]Peer{peer})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Cycle = 15 s; in 100 s the peer comes up ⌈100/15⌉ ≈ 7 times.
	if peer.ups < 6 || peer.ups > 8 {
		t.Fatalf("ups = %d, want ≈7", peer.ups)
	}
	// Sessions start at 0, 15, 30, ...
	for i, at := range peer.upTimes {
		want := sim.Time(time.Duration(i) * 15 * time.Second)
		if at != want {
			t.Fatalf("session %d started at %v, want %v", i, at, want)
		}
	}
}

func TestDriverInitialDelayStaggers(t *testing.T) {
	k := sim.New(1)
	d := NewDriver(k, Config{
		Session:      Fixed{D: time.Second},
		InitialDelay: time.Minute,
	})
	peers := make([]*countingPeer, 20)
	ps := make([]Peer, 20)
	for i := range peers {
		peers[i] = &countingPeer{}
		ps[i] = peers[i]
	}
	d.Drive(ps)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	distinct := map[sim.Time]bool{}
	for _, p := range peers {
		distinct[p.upTimes[0]] = true
		if p.upTimes[0] > sim.Time(time.Minute) {
			t.Fatalf("arrival after window: %v", p.upTimes[0])
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("arrivals not staggered: %d distinct times", len(distinct))
	}
}

func TestDriverHorizonStopsChurn(t *testing.T) {
	k := sim.New(1)
	d := NewDriver(k, Config{
		Session:  Fixed{D: time.Second},
		Downtime: Fixed{D: time.Second},
		Horizon:  10 * time.Second,
	})
	peer := &countingPeer{}
	d.Drive([]Peer{peer})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() > sim.Time(11*time.Second) {
		t.Fatalf("churn ran past horizon: %v", k.Now())
	}
}

func TestDriverDeterministic(t *testing.T) {
	runOnce := func() []sim.Time {
		k := sim.New(42)
		d := NewDriver(k, Config{
			Session:      Exponential{MeanDuration: 20 * time.Second},
			Downtime:     Exponential{MeanDuration: 10 * time.Second},
			InitialDelay: 30 * time.Second,
			Horizon:      5 * time.Minute,
		})
		peers := make([]*countingPeer, 10)
		ps := make([]Peer, 10)
		for i := range peers {
			peers[i] = &countingPeer{}
			ps[i] = peers[i]
		}
		d.Drive(ps)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		var all []sim.Time
		for _, p := range peers {
			all = append(all, p.upTimes...)
		}
		return all
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestFuncPeer(t *testing.T) {
	k := sim.New(1)
	ups := 0
	d := NewDriver(k, Config{Session: Fixed{D: time.Second}})
	d.Drive([]Peer{FuncPeer{Up: func(*sim.Proc) { ups++ }}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ups != 1 {
		t.Fatalf("ups = %d", ups)
	}
	// Nil closures are fine.
	k2 := sim.New(1)
	d2 := NewDriver(k2, Config{Session: Fixed{D: time.Second}})
	d2.Drive([]Peer{FuncPeer{}})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
}
