package exp

import (
	"time"

	"repro/internal/bt"
	"repro/internal/churn"
	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// ChurnSwarmParams configures extension experiment E3: a BitTorrent
// swarm in which a fraction of the clients churn (depart abruptly and
// return later, resuming from kept storage) — the workload class the
// platform exists to study and the paper lists as future territory.
type ChurnSwarmParams struct {
	Clients       int
	Seeders       int
	FileSize      int64
	Class         topo.LinkClass
	StartInterval time.Duration
	// ChurnFraction of the clients live under the churn process.
	ChurnFraction float64
	// Session and Downtime describe the churners' lifecycle.
	Session  churn.Lifetime
	Downtime churn.Lifetime
	// Model selects pipe-level or flow-level link emulation.
	Model netem.ModelKind
	// Window batches the flow model's re-rate solves
	// (vnet.Config.FlowWindow); ignored under the pipe model.
	Window time.Duration
	// Rules and Classifier configure the network firewall exactly as
	// in SwarmParams; 0 rules means no firewall.
	Rules      int
	Classifier netem.Classifier
	Seed       int64
	Horizon    time.Duration
}

// DefaultChurnSwarmParams returns a moderate-churn configuration.
func DefaultChurnSwarmParams() ChurnSwarmParams {
	return ChurnSwarmParams{
		Clients:       24,
		Seeders:       2,
		FileSize:      4 * 1024 * 1024,
		Class:         topo.DSL,
		StartInterval: 2 * time.Second,
		ChurnFraction: 0.5,
		Session:       churn.Pareto{Scale: 120 * time.Second, Alpha: 1.8},
		Downtime:      churn.Exponential{MeanDuration: 60 * time.Second},
		Seed:          1,
		Horizon:       6 * time.Hour,
	}
}

// ChurnSwarmOutcome reports E3's measurements.
type ChurnSwarmOutcome struct {
	StableDone     int // stable clients that completed
	StableTotal    int
	ChurnDone      int // churning clients that completed despite churn
	ChurnTotal     int
	Arrivals       int // churn sessions started (incl. first)
	Departures     int
	StableLastDone sim.Time
	EndedAt        sim.Time
}

// RunChurnSwarm executes E3 and reports completion under churn.
func RunChurnSwarm(cp ChurnSwarmParams) (*ChurnSwarmOutcome, error) {
	k := sim.New(cp.Seed)
	ncfg := vnet.DefaultConfig()
	ncfg.Model = cp.Model
	ncfg.FlowWindow = cp.Window
	ncfg.Rules = fillerRules(cp.Rules, cp.Classifier)
	net := vnet.NewNetwork(k, nil, ncfg)
	trackerHost, err := net.AddHostClass(ip.MustParseAddr("10.250.0.1"), topo.LAN)
	if err != nil {
		return nil, err
	}
	nChurn := int(float64(cp.Clients) * cp.ChurnFraction)
	nStable := cp.Clients - nChurn

	var seedHosts, stableHosts, churnHosts []*vnet.Host
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < cp.Seeders+cp.Clients; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), cp.Class)
		if err != nil {
			return nil, err
		}
		switch {
		case i < cp.Seeders:
			seedHosts = append(seedHosts, h)
		case i < cp.Seeders+nStable:
			stableHosts = append(stableHosts, h)
		default:
			churnHosts = append(churnHosts, h)
		}
	}
	spec := bt.DefaultSwarmSpec()
	spec.FileSize = cp.FileSize
	swarm, err := bt.BuildSwarm(spec, trackerHost, seedHosts, stableHosts)
	if err != nil {
		return nil, err
	}
	trackerEP := ip.Endpoint{Addr: trackerHost.Addr(), Port: bt.TrackerPort}

	churners := make([]*bt.ResumingClient, len(churnHosts))
	peers := make([]churn.Peer, len(churnHosts))
	for i, h := range churnHosts {
		churners[i] = bt.NewResumingClient(h, swarm.Meta, bt.NewSparseStorage(swarm.Meta), trackerEP, spec.Client)
		peers[i] = churners[i]
	}
	driver := churn.NewDriver(k, churn.Config{
		Session:      cp.Session,
		Downtime:     cp.Downtime,
		InitialDelay: time.Duration(len(churnHosts)) * cp.StartInterval,
		Horizon:      cp.Horizon,
	})

	swarm.Start(cp.StartInterval)
	driver.Drive(peers)

	out := &ChurnSwarmOutcome{StableTotal: nStable, ChurnTotal: nChurn}
	k.Go("waiter", func(p *sim.Proc) {
		swarm.WaitAll(p, cp.Horizon/2)
		// Give churners the second half of the horizon to catch up.
		deadline := p.Now().Add(cp.Horizon / 2)
		for p.Now() < deadline {
			all := true
			for _, cc := range churners {
				if !cc.Done() {
					all = false
					break
				}
			}
			if all {
				break
			}
			p.Sleep(30 * time.Second)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		return nil, err
	}
	for _, c := range swarm.Clients {
		if c.Done() {
			out.StableDone++
			if c.FinishedAt() > out.StableLastDone {
				out.StableLastDone = c.FinishedAt()
			}
		}
	}
	for _, cc := range churners {
		if cc.Done() {
			out.ChurnDone++
		}
	}
	st := driver.Stats()
	out.Arrivals = st.Arrivals
	out.Departures = st.Departures
	out.EndedAt = k.Now()
	return out, nil
}
