package exp

import (
	"testing"
	"time"

	"repro/internal/churn"
)

func TestChurnSwarmStableClientsComplete(t *testing.T) {
	cp := DefaultChurnSwarmParams()
	cp.Clients = 12
	cp.FileSize = 1 << 20
	out, err := RunChurnSwarm(cp)
	if err != nil {
		t.Fatal(err)
	}
	if out.StableDone != out.StableTotal {
		t.Errorf("stable clients: %d/%d done — churn must not break the stable swarm",
			out.StableDone, out.StableTotal)
	}
	if out.Arrivals == 0 || out.Departures == 0 {
		t.Errorf("no churn happened: %+v", out)
	}
}

func TestChurnSwarmChurnersEventuallyFinish(t *testing.T) {
	// With sessions much longer than the download and short downtimes,
	// even churning clients complete (resume makes progress durable).
	cp := DefaultChurnSwarmParams()
	cp.Clients = 8
	cp.FileSize = 1 << 20
	cp.Session = churn.Fixed{D: 10 * time.Minute}
	cp.Downtime = churn.Fixed{D: 30 * time.Second}
	out, err := RunChurnSwarm(cp)
	if err != nil {
		t.Fatal(err)
	}
	if out.ChurnDone < out.ChurnTotal {
		t.Errorf("churners done = %d/%d with generous sessions", out.ChurnDone, out.ChurnTotal)
	}
}

func TestChurnSwarmHarshChurnStillProgresses(t *testing.T) {
	// Short sessions: churners may not finish, but their storage must
	// show progress (durable resume) and the run must stay stable.
	cp := DefaultChurnSwarmParams()
	cp.Clients = 10
	cp.FileSize = 2 << 20
	cp.Session = churn.Fixed{D: 45 * time.Second}
	cp.Downtime = churn.Fixed{D: 45 * time.Second}
	cp.Horizon = time.Hour
	out, err := RunChurnSwarm(cp)
	if err != nil {
		t.Fatal(err)
	}
	if out.StableDone == 0 {
		t.Error("no stable client finished under harsh churn")
	}
	if out.Departures < out.ChurnTotal {
		t.Errorf("departures = %d, want at least one per churner", out.Departures)
	}
}
