package exp

import (
	"fmt"
	"time"

	"repro/internal/chord"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// The DHT experiments are extensions beyond the paper's evaluation:
// they use the platform for what it was built for — studying another
// peer-to-peer system (Chord) under controlled edge-network conditions.
// E1 verifies O(log N) routing; E2 shows how lookup latency depends on
// the access-link class, something only the edge-centric emulation
// model can vary cleanly.

// DHTPoint is one measurement of the DHT experiments.
type DHTPoint struct {
	Nodes      int
	AvgHops    float64
	AvgLatency time.Duration
	P90Latency time.Duration
	Timeouts   uint64
}

// DHTRing builds an n-node ring on the given link class, warms it up,
// performs lookups and reports the aggregate. It is the cell runner
// behind DHTScaling, DHTLocality and the sweep engine's dht adapter.
func DHTRing(n, lookups int, class topo.LinkClass, seed int64) (DHTPoint, error) {
	return DHTRingModel(n, lookups, class, netem.ModelPipe, seed)
}

// DHTRingModel is DHTRing under an explicit link model — the sweep
// engine's model axis.
func DHTRingModel(n, lookups int, class topo.LinkClass, model netem.ModelKind, seed int64) (DHTPoint, error) {
	k := sim.New(seed)
	ncfg := vnet.DefaultConfig()
	ncfg.Model = model
	net := vnet.NewNetwork(k, nil, ncfg)
	var nodes []*chord.Node
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < n; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), class)
		if err != nil {
			return DHTPoint{}, err
		}
		nodes = append(nodes, chord.NewNode(h, chord.DefaultConfig()))
	}
	nodes[0].Create()
	for i := 1; i < n; i++ {
		i := i
		k.After(time.Duration(i)*500*time.Millisecond, func() { nodes[i].Join(nodes[0].Ref().Addr) })
	}
	warm := time.Duration(n)*500*time.Millisecond + 60*time.Second

	pt := DHTPoint{Nodes: n}
	var latencies []float64
	k.Go("measure", func(p *sim.Proc) {
		p.Sleep(warm)
		totalHops := 0
		var totalLat time.Duration
		done := 0
		for i := 0; i < lookups; i++ {
			res, err := nodes[i%n].Lookup(p, fmt.Sprintf("key-%d", i))
			if err != nil {
				continue
			}
			done++
			totalHops += res.Hops
			totalLat += res.Latency
			latencies = append(latencies, res.Latency.Seconds()*1000)
		}
		if done > 0 {
			pt.AvgHops = float64(totalHops) / float64(done)
			pt.AvgLatency = totalLat / time.Duration(done)
		}
		for _, nd := range nodes {
			pt.Timeouts += nd.Stats.Timeouts
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		return pt, err
	}
	if len(latencies) > 0 {
		pt.P90Latency = time.Duration(metrics.Summarize(latencies).P90 * float64(time.Millisecond))
	}
	return pt, nil
}

// DHTScaling measures average lookup hops against ring size (extension
// experiment E1): Chord's O(log N) routing measured on the emulated
// network.
func DHTScaling(sizes []int, lookups int, seed int64) ([]DHTPoint, error) {
	if sizes == nil {
		sizes = []int{8, 16, 32, 64, 128}
	}
	if lookups <= 0 {
		lookups = 200
	}
	lan := topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond}
	var out []DHTPoint
	for _, n := range sizes {
		pt, err := DHTRing(n, lookups, lan, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// DHTScalingSeries converts scaling points into a hops-vs-N series.
func DHTScalingSeries(points []DHTPoint) *metrics.Series {
	s := &metrics.Series{Name: "avg-lookup-hops"}
	for _, pt := range points {
		s.Add(float64(pt.Nodes), pt.AvgHops)
	}
	return s
}

// DHTLocality measures lookup latency for the same 32-node ring on
// different access links (extension experiment E2): the edge link, not
// the overlay, dominates DHT latency — the paper's core modelling
// argument applied to a structured overlay.
func DHTLocality(seed int64) (map[string]DHTPoint, error) {
	classes := []topo.LinkClass{
		{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond},
		topo.Campus,
		topo.DSL,
		topo.Modem,
	}
	out := make(map[string]DHTPoint, len(classes))
	for _, class := range classes {
		pt, err := DHTRing(32, 200, class, seed)
		if err != nil {
			return nil, err
		}
		out[class.Name] = pt
	}
	return out, nil
}
