package exp

import (
	"math"
	"testing"
)

func TestDHTScalingLogarithmic(t *testing.T) {
	points, err := DHTScaling([]int{8, 32}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		// Chord expectation: ≈ ½·log2(N) hops, generously bounded.
		bound := math.Log2(float64(pt.Nodes)) + 1
		if pt.AvgHops > bound {
			t.Errorf("N=%d: avg hops %.2f exceeds log2(N)+1 = %.1f", pt.Nodes, pt.AvgHops, bound)
		}
		if pt.AvgLatency <= 0 {
			t.Errorf("N=%d: no latency recorded", pt.Nodes)
		}
	}
	// Hops must grow with ring size.
	if points[1].AvgHops <= points[0].AvgHops {
		t.Errorf("hops did not grow: N=8 → %.2f, N=32 → %.2f",
			points[0].AvgHops, points[1].AvgHops)
	}
}

func TestDHTScalingSeries(t *testing.T) {
	points := []DHTPoint{{Nodes: 8, AvgHops: 1.5}, {Nodes: 16, AvgHops: 2.0}}
	s := DHTScalingSeries(points)
	if s.Len() != 2 || s.Points[1].Y != 2.0 {
		t.Fatalf("series = %+v", s)
	}
}

func TestDHTLocalityOrdering(t *testing.T) {
	points, err := DHTLocality(1)
	if err != nil {
		t.Fatal(err)
	}
	lan, dsl, modem := points["lan"], points["dsl"], points["modem"]
	// Identical overlay; latency must be ordered by access link.
	if !(lan.AvgLatency < dsl.AvgLatency && dsl.AvgLatency < modem.AvgLatency) {
		t.Fatalf("latency ordering broken: lan=%v dsl=%v modem=%v",
			lan.AvgLatency, dsl.AvgLatency, modem.AvgLatency)
	}
	// And hop counts must be (statistically) similar: same overlay.
	if math.Abs(lan.AvgHops-modem.AvgHops) > 1.5 {
		t.Fatalf("hops diverged across links: lan=%.2f modem=%.2f", lan.AvgHops, modem.AvgHops)
	}
}
