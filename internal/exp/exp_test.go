package exp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestFig1FlatBand(t *testing.T) {
	series := Fig1([]int{1, 100, 1000}, 1)
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3 schedulers", len(series))
	}
	for _, s := range series {
		if s.Len() != 3 {
			t.Fatalf("%s: %d points", s.Name, s.Len())
		}
		if s.MinY() < 1.64 || s.MaxY() > 1.70 {
			t.Errorf("%s: outside the paper's band: [%v, %v]", s.Name, s.MinY(), s.MaxY())
		}
		if s.Points[0].Y < s.Points[2].Y {
			t.Errorf("%s: per-process time should not increase with N", s.Name)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	series := Fig2([]int{10, 30, 50}, 1)
	byName := map[string][]float64{}
	for _, s := range series {
		var ys []float64
		for _, p := range s.Points {
			ys = append(ys, p.Y)
		}
		byName[s.Name] = ys
	}
	for _, bsd := range []string{"4BSD scheduler", "ULE scheduler"} {
		ys := byName[bsd]
		if ys[2] < 5 {
			t.Errorf("%s at N=50 = %.2fs, want thrashing (>5s)", bsd, ys[2])
		}
		if ys[0] > 2 {
			t.Errorf("%s at N=10 = %.2fs, want ≈1.25s", bsd, ys[0])
		}
	}
	lin := byName["Linux 2.6"]
	if lin[2] > 4 {
		t.Errorf("Linux at N=50 = %.2fs, want bounded", lin[2])
	}
}

func TestFig3SpreadOrdering(t *testing.T) {
	series := Fig3(100, 1)
	spread := map[string]float64{}
	for _, s := range series {
		spread[s.Name] = s.Points[s.Len()-1].X - s.Points[0].X
	}
	if spread["ULE scheduler"] < 4*spread["4BSD scheduler"] {
		t.Errorf("ULE spread %.1fs should dwarf 4BSD %.1fs",
			spread["ULE scheduler"], spread["4BSD scheduler"])
	}
	for _, s := range series {
		// All CDFs live around the paper's x-window (210..290 s);
		// allow some slack on the fast edge.
		if s.Points[0].X < 180 || s.Points[s.Len()-1].X > 300 {
			t.Errorf("%s CDF range [%.0f, %.0f] outside the paper's window",
				s.Name, s.Points[0].X, s.Points[s.Len()-1].X)
		}
	}
	// ULE's unfairness shows as a tail past the fair completion point
	// (100 × 5 s / 2 CPUs = 250 s) while 4BSD stays tight around it.
	for _, s := range series {
		last := s.Points[s.Len()-1].X
		if s.Name == "ULE scheduler" && last < 255 {
			t.Errorf("ULE slowest finisher at %.0fs, want a tail past 255s", last)
		}
		if s.Name == "4BSD scheduler" && (last < 245 || last > 260) {
			t.Errorf("4BSD slowest finisher at %.0fs, want ≈250s", last)
		}
	}
}

func TestBindOverheadMatchesPaper(t *testing.T) {
	res, err := BindOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plain != 10220*time.Nanosecond {
		t.Errorf("plain = %v, want 10.22µs", res.Plain)
	}
	if res.Intercepted != 10790*time.Nanosecond {
		t.Errorf("intercepted = %v, want 10.79µs", res.Intercepted)
	}
	if res.Overhead() != 570*time.Nanosecond {
		t.Errorf("overhead = %v, want 570ns", res.Overhead())
	}
}

func TestFig6Linear(t *testing.T) {
	points, err := Fig6([]int{0, 10000, 20000}, 4, 1, netem.ClassifierLinear)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	base := points[0].Stats.Avg
	d1 := points[1].Stats.Avg - base
	d2 := points[2].Stats.Avg - base
	// Two traversals of the padded table per RTT at ~48ns/rule:
	// +10000 rules ⇒ ≈0.96ms.
	if d1 < 800*time.Microsecond || d1 > 1200*time.Microsecond {
		t.Errorf("slope at 10k rules = %v, want ≈0.96ms", d1)
	}
	// Linearity: doubling rules doubles the delta (±15%).
	ratio := float64(d2) / float64(d1)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("linearity ratio = %.2f, want ≈2", ratio)
	}
}

func TestFig6At50kMatchesPaperMagnitude(t *testing.T) {
	points, err := Fig6([]int{50000}, 3, 1, netem.ClassifierLinear)
	if err != nil {
		t.Fatal(err)
	}
	rtt := points[0].Stats.Avg
	// The paper measures ≈5 ms at 50000 rules.
	if rtt < 4*time.Millisecond || rtt > 6*time.Millisecond {
		t.Errorf("RTT at 50k rules = %v, want ≈5ms", rtt)
	}
}

func TestFig6IndexedFlat(t *testing.T) {
	series := Fig6Indexed([]int{0, 10000, 50000})
	lin, idx := series[0], series[1]
	if lin.Points[2].Y < 50000 {
		t.Errorf("linear visited %v at 50k rules, want ≥50000", lin.Points[2].Y)
	}
	if idx.Points[2].Y > 10 {
		t.Errorf("indexed visited %v at 50k rules, want O(1)", idx.Points[2].Y)
	}
}

func TestFig7WorkedExample(t *testing.T) {
	res, err := Fig7(14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 2750 {
		t.Fatalf("hosts = %d, want 2750", res.Hosts)
	}
	// Paper: 853 ms measured, 850 ms model, ~3 ms overhead.
	if res.RTT < 850*time.Millisecond || res.RTT > 860*time.Millisecond {
		t.Errorf("RTT = %v, want ≈853ms", res.RTT)
	}
	if res.Overhead < 0 {
		t.Errorf("overhead = %v, must be nonnegative", res.Overhead)
	}
}

// smallSwarm returns a fast, scaled-down Fig 8 configuration.
func smallSwarm() SwarmParams {
	sp := Fig8Params()
	sp.Clients = 16
	sp.Seeders = 2
	sp.FileSize = 2 * 1024 * 1024
	sp.StartInterval = 2 * time.Second
	sp.Horizon = 2 * time.Hour
	return sp
}

func TestRunSwarmCompletes(t *testing.T) {
	out, err := RunSwarm(smallSwarm())
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDone {
		t.Fatalf("swarm incomplete: %v", out.Completions)
	}
	if len(out.Completions) != 16 {
		t.Fatalf("completions = %d", len(out.Completions))
	}
	for i, c := range out.Completions {
		if c == 0 {
			t.Errorf("client %d unfinished", i)
		}
	}
	if len(out.Pieces) != 16*out.Meta.NumPieces() {
		t.Errorf("piece events = %d, want %d", len(out.Pieces), 16*out.Meta.NumPieces())
	}
}

func TestRunSwarmWithFolding(t *testing.T) {
	sp := smallSwarm()
	sp.Folding = 8
	out, err := RunSwarm(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDone {
		t.Fatal("folded swarm incomplete")
	}
}

func TestFig9FoldingInvariance(t *testing.T) {
	// The paper's folding result: deploying the same swarm at different
	// folding ratios produces nearly identical data-received curves.
	// BitTorrent dynamics are chaotic per client (a different optimistic
	// unchoke shifts individual completions), so the comparison is on
	// the aggregate cumulative curve, like the paper's Fig 9.
	sp := smallSwarm()
	sp.Clients = 32
	series, outcomes, err := Fig9(sp, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	totalWant := float64(32) * 2 // 32 clients × 2 MB, in MB
	for _, s := range series {
		if got := s.LastY(); got < totalWant*0.99 || got > totalWant*1.01 {
			t.Errorf("%s: final total = %.1f MB, want %.1f", s.Name, got, totalWant)
		}
	}
	// Compare the cumulative curves at the quartiles of the unfolded
	// run: the folded run must deliver within 10% of the same data.
	unfolded, folded := series[0], series[1]
	end := unfolded.Points[unfolded.Len()-1].X
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		x := end * frac
		a, b := unfolded.At(x), folded.At(x)
		if a == 0 {
			continue
		}
		if diff := (b - a) / totalWant; diff < -0.10 || diff > 0.10 {
			t.Errorf("at t=%.0fs: unfolded %.1f MB vs folded %.1f MB (%.0f%% of total apart)",
				x, a, b, 100*diff)
		}
	}
	_ = outcomes
}

func lastCompletion(cs []sim.Time) sim.Time {
	var last sim.Time
	for _, c := range cs {
		if c > last {
			last = c
		}
	}
	return last
}

func TestProgressAndCompletionSeries(t *testing.T) {
	out, err := RunSwarm(smallSwarm())
	if err != nil {
		t.Fatal(err)
	}
	ps := ProgressSeries("c0", out.PerClient[0], out.Meta.Length)
	if ps.LastY() != 100 {
		t.Fatalf("final percent = %v", ps.LastY())
	}
	cs := CompletionSeries(out.Completions)
	if cs.LastY() != 16 {
		t.Fatalf("final completions = %v, want 16", cs.LastY())
	}
	ts := TotalReceivedSeries("total", out.Pieces)
	if ts.LastY() < 31.9 || ts.LastY() > 32.1 {
		t.Fatalf("total received = %v MB, want 32", ts.LastY())
	}
}

func TestScaleParams(t *testing.T) {
	sp := Fig10Params().Scale(100)
	if sp.Clients != 57 {
		t.Fatalf("clients = %d", sp.Clients)
	}
	if sp.FileSize != 512*1024 {
		t.Fatalf("file size = %d", sp.FileSize)
	}
	if sp.PhysNodes == 0 {
		t.Fatal("phys nodes should be recomputed")
	}
	if sp.Folding != 32 {
		t.Fatal("folding preserved")
	}
}

func TestFig8ParamsMatchPaper(t *testing.T) {
	sp := Fig8Params()
	if sp.Clients != 160 || sp.Seeders != 4 || sp.FileSize != 16*1024*1024 ||
		sp.StartInterval != 10*time.Second || sp.Class != topo.DSL {
		t.Fatalf("Fig8 parameters drifted: %+v", sp)
	}
	sp10 := Fig10Params()
	if sp10.Clients != 5754 || sp10.Folding != 32 || sp10.PhysNodes != 180 ||
		sp10.StartInterval != 250*time.Millisecond {
		t.Fatalf("Fig10 parameters drifted: %+v", sp10)
	}
}
