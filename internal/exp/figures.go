package exp

import (
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/virt"
	"repro/internal/vnet"
)

// Fig1Counts is the paper's x-axis sample for Fig 1 (1..1000 processes).
var Fig1Counts = []int{1, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

// Fig1 measures average per-process execution time for CPU-bound,
// non-memory-intensive processes under each scheduler.
func Fig1(counts []int, seed int64) []*metrics.Series {
	if counts == nil {
		counts = Fig1Counts
	}
	var out []*metrics.Series
	for _, kind := range sched.Kinds {
		s := &metrics.Series{Name: kind.String()}
		for _, n := range counts {
			cfg := sched.DefaultConfig(kind)
			cfg.Seed = seed
			res := sched.Run(cfg, sched.CPUBoundJobs(n))
			s.Add(float64(n), res.AvgExecTime().Seconds())
		}
		out = append(out, s)
	}
	return out
}

// Fig2Counts is the paper's x-axis for Fig 2 (5..50 memory-intensive
// processes).
var Fig2Counts = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}

// Fig2 measures average per-process execution time for CPU- and
// memory-intensive processes: FreeBSD degrades sharply once swap
// engages, Linux 2.6 stays bounded.
func Fig2(counts []int, seed int64) []*metrics.Series {
	if counts == nil {
		counts = Fig2Counts
	}
	var out []*metrics.Series
	for _, kind := range sched.Kinds {
		s := &metrics.Series{Name: kind.String()}
		for _, n := range counts {
			cfg := sched.DefaultConfig(kind)
			cfg.Seed = seed
			res := sched.Run(cfg, sched.MemoryJobs(n))
			s.Add(float64(n), res.AvgExecTime().Seconds())
		}
		out = append(out, s)
	}
	return out
}

// Fig3 runs 100 identical 5-second processes under each scheduler and
// returns the CDFs of their completion times (the fairness figure).
func Fig3(n int, seed int64) []*metrics.Series {
	if n <= 0 {
		n = 100
	}
	var out []*metrics.Series
	for _, kind := range sched.Kinds {
		cfg := sched.DefaultConfig(kind)
		cfg.Seed = seed
		res := sched.Run(cfg, sched.FairnessJobs(n))
		samples := make([]float64, 0, n)
		for _, ft := range res.FinishTimes() {
			samples = append(samples, ft.Seconds())
		}
		cdf := metrics.CDF(samples)
		cdf.Name = kind.String()
		out = append(out, &cdf)
	}
	return out
}

// BindOverheadResult reports the libc-interception microbenchmark
// (the Virtualization section's 10.22 µs vs 10.79 µs).
type BindOverheadResult struct {
	Plain       time.Duration // connect/close cycle, unmodified libc
	Intercepted time.Duration // with BINDIP getenv+bind preamble
}

// Overhead returns the added cost per cycle.
func (r BindOverheadResult) Overhead() time.Duration { return r.Intercepted - r.Plain }

// BindOverhead measures the emulated syscall cost of one local TCP
// connect/disconnect cycle with and without the BINDIP interception.
func BindOverhead() (BindOverheadResult, error) {
	cycle := func(intercept bool) (time.Duration, error) {
		k := sim.New(1)
		n := vnet.NewNetwork(k, nil, vnet.DefaultConfig())
		client, err := n.AddHost(ip.MustParseAddr("10.0.0.1"), netem.PipeConfig{}, netem.PipeConfig{})
		if err != nil {
			return 0, err
		}
		server, err := n.AddHost(ip.MustParseAddr("10.0.0.2"), netem.PipeConfig{}, netem.PipeConfig{})
		if err != nil {
			return 0, err
		}
		if intercept {
			client.SetBindEnv(client.Addr())
		}
		k.Go("server", func(p *sim.Proc) {
			l, err := server.Listen(p, 80)
			if err != nil {
				return
			}
			for {
				if _, err := l.Accept(p); err != nil {
					return
				}
			}
		})
		k.Go("client", func(p *sim.Proc) {
			p.Yield()
			c, err := client.Dial(p, ip.Endpoint{Addr: server.Addr(), Port: 80})
			if err != nil {
				return
			}
			c.Close(p)
			k.Stop()
		})
		if err := k.Run(); err != nil {
			return 0, err
		}
		return client.Meter().Total, nil
	}
	var res BindOverheadResult
	var err error
	if res.Plain, err = cycle(false); err != nil {
		return res, err
	}
	if res.Intercepted, err = cycle(true); err != nil {
		return res, err
	}
	return res, nil
}

// Fig6Counts is the paper's x-axis for Fig 6 (0..50000 firewall rules).
var Fig6Counts = []int{0, 5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000, 50000}

// Fig6Point is one measurement of Fig 6.
type Fig6Point struct {
	Rules int
	Stats vnet.PingStats
}

// Fig6 measures ping round-trip time between two virtual nodes on two
// physical nodes while the first node's firewall table grows: the RTT
// rises linearly because IPFW evaluates rules linearly. With
// netem.ClassifierIndexed the same sweep runs the hash-indexed
// classifier and the curve stays near-flat — the ablation the paper
// could not perform ("it is not possible to evaluate the rules in a
// hierarchical way, or with a hash table").
func Fig6(counts []int, pings int, seed int64, classifier netem.Classifier) ([]Fig6Point, error) {
	if counts == nil {
		counts = Fig6Counts
	}
	if pings <= 0 {
		pings = 10
	}
	var out []Fig6Point
	for _, rules := range counts {
		k := sim.New(seed)
		vcfg := virt.DefaultConfig(nil)
		vcfg.Classifier = classifier
		cluster, err := virt.NewCluster(k, 2, vcfg)
		if err != nil {
			return nil, err
		}
		n := vnet.NewNetwork(k, cluster, vnet.DefaultConfig())
		lan := topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: 50 * time.Microsecond}
		a, err := n.AddHostClass(ip.MustParseAddr("10.0.0.1"), lan)
		if err != nil {
			return nil, err
		}
		b, err := n.AddHostClass(ip.MustParseAddr("10.0.0.2"), lan)
		if err != nil {
			return nil, err
		}
		if err := cluster.PlaceSuccessive([]*vnet.Host{a, b}, 1); err != nil {
			return nil, err
		}
		// Filler rules on the first node, never matching the ping path
		// (the paper pads the table to vary evaluation cost; see
		// netem.PadFiller for the shape).
		netem.PadFiller(cluster.Node(0).Rules(), rules)
		var st vnet.PingStats
		k.Go("pinger", func(p *sim.Proc) {
			st = a.PingSeries(p, b.Addr(), vnet.DefaultPingSize, pings, 50*time.Millisecond, 5*time.Second)
			k.Stop()
		})
		if err := k.Run(); err != nil {
			return nil, err
		}
		out = append(out, Fig6Point{Rules: rules, Stats: st})
	}
	return out, nil
}

// Fig6Series converts Fig6 points into avg/min/max series (the paper
// plots "round trip time (avg, min, max)").
func Fig6Series(points []Fig6Point) []*metrics.Series {
	avg := &metrics.Series{Name: "rtt-avg"}
	min := &metrics.Series{Name: "rtt-min"}
	max := &metrics.Series{Name: "rtt-max"}
	for _, pt := range points {
		x := float64(pt.Rules)
		avg.Add(x, pt.Stats.Avg.Seconds()*1000)
		min.Add(x, pt.Stats.Min.Seconds()*1000)
		max.Add(x, pt.Stats.Max.Seconds()*1000)
	}
	return []*metrics.Series{avg, min, max}
}

// Fig6Indexed is the ablation: the same sweep with a hash-indexed
// classifier instead of the linear table, showing the flat curve IPFW
// could not offer. It reports the rules *visited* per evaluation for
// both structures.
func Fig6Indexed(counts []int) []*metrics.Series {
	if counts == nil {
		counts = Fig6Counts
	}
	linear := &metrics.Series{Name: "linear-visited"}
	indexed := &metrics.Series{Name: "indexed-visited"}
	src := ip.MustParseAddr("10.0.0.1")
	dst := ip.MustParseAddr("10.0.0.2")
	for _, rules := range counts {
		rs := netem.NewRuleSet()
		rs.AddCount(ip.NewPrefix(src, 32), ip.Prefix{})
		rs.AddCount(ip.Prefix{}, ip.NewPrefix(src, 32))
		// Filler shaped like real per-vnode rules (/32 sources), so the
		// hash index can bucket them — the point of the ablation (see
		// netem.PadFiller).
		netem.PadFiller(rs, rules)
		ix := netem.NewIndexedRuleSet(rs)
		lv := rs.Eval(src, dst)
		iv := ix.Eval(src, dst)
		linear.Add(float64(rules), float64(lv.Visited))
		indexed.Add(float64(rules), float64(iv.Visited))
	}
	return []*metrics.Series{linear, indexed}
}

// Fig7Result reports the topology-latency check around the paper's
// worked example (853 ms measured between 10.1.3.207 and 10.2.2.117).
type Fig7Result struct {
	RTT          time.Duration
	ModelRTT     time.Duration // 850 ms: 2×(egress+group+ingress)
	Overhead     time.Duration // emulation overhead beyond the model
	EgressDelay  time.Duration // 20 ms
	GroupDelay   time.Duration // 400 ms
	IngressDelay time.Duration // 5 ms
	Hosts        int
}

// Fig7 builds the full Fig 7 topology (2750 nodes in 5 groups over 3
// regions) on a physical cluster, then measures the paper's worked
// example with ping.
func Fig7(physNodes int, seed int64) (Fig7Result, error) {
	if physNodes <= 0 {
		physNodes = 14
	}
	k := sim.New(seed)
	tp := topo.Fig7()
	cfg := virt.DefaultConfig(tp)
	cluster, err := virt.NewCluster(k, physNodes, cfg)
	if err != nil {
		return Fig7Result{}, err
	}
	n := vnet.NewNetwork(k, cluster, vnet.DefaultConfig())
	hosts, err := n.PopulateTopology(tp)
	if err != nil {
		return Fig7Result{}, err
	}
	perNode := (len(hosts) + physNodes - 1) / physNodes
	if err := cluster.PlaceSuccessive(hosts, perNode); err != nil {
		return Fig7Result{}, err
	}
	src := n.Host(ip.MustParseAddr("10.1.3.207"))
	dst := n.Host(ip.MustParseAddr("10.2.2.117"))
	if src == nil || dst == nil {
		return Fig7Result{}, fmt.Errorf("exp: fig7 endpoints missing")
	}
	res := Fig7Result{
		ModelRTT:     850 * time.Millisecond,
		EgressDelay:  topo.FastDSL.Latency,
		GroupDelay:   400 * time.Millisecond,
		IngressDelay: topo.Campus.Latency,
		Hosts:        len(hosts),
	}
	var ok bool
	k.Go("pinger", func(p *sim.Proc) {
		var rtt time.Duration
		rtt, ok = src.Ping(p, dst.Addr(), vnet.DefaultPingSize, 10*time.Second)
		res.RTT = rtt
		k.Stop()
	})
	if err := k.Run(); err != nil {
		return res, err
	}
	if !ok {
		return res, fmt.Errorf("exp: fig7 ping lost")
	}
	res.Overhead = res.RTT - res.ModelRTT
	return res, nil
}

// Fig9Foldings is the paper's folding sweep: 1, 10, 20, 40 and 80
// clients per physical node.
var Fig9Foldings = []int{1, 10, 20, 40, 80}

// Fig9 runs the Fig 8 experiment at each folding ratio and returns one
// cumulative-data series per folding. The paper's result: the curves
// coincide ("results are nearly identical ... even with 80 virtual
// nodes on each physical node").
func Fig9(base SwarmParams, foldings []int) ([]*metrics.Series, []*SwarmOutcome, error) {
	if foldings == nil {
		foldings = Fig9Foldings
	}
	var series []*metrics.Series
	var outcomes []*SwarmOutcome
	for _, f := range foldings {
		sp := base
		sp.Folding = f
		sp.PhysNodes = 0
		out, err := RunSwarm(sp)
		if err != nil {
			return nil, nil, err
		}
		name := fmt.Sprintf("%d client(s) per physical node", f)
		series = append(series, TotalReceivedSeries(name, out.Pieces))
		outcomes = append(outcomes, out)
	}
	return series, outcomes, nil
}
