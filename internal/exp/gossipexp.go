package exp

import (
	"fmt"
	"time"

	"repro/internal/gossip"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// GossipPoint is one measurement of extension experiment E6: epidemic
// dissemination time over the emulated network.
type GossipPoint struct {
	Nodes    int
	Fanout   int
	Coverage float64       // fraction of nodes reached
	T50      time.Duration // time to 50% coverage
	T100     time.Duration // time to full observed coverage
	Pushes   uint64
}

// GossipSpread runs one dissemination experiment: n nodes on the given
// class, one update published at t=1s, measured until full coverage or
// the horizon.
func GossipSpread(n, fanout int, class topo.LinkClass, seed int64) (GossipPoint, error) {
	return GossipSpreadModel(n, fanout, class, netem.ModelPipe, seed)
}

// GossipSpreadModel is GossipSpread under an explicit link model — the
// sweep engine's model axis.
func GossipSpreadModel(n, fanout int, class topo.LinkClass, model netem.ModelKind, seed int64) (GossipPoint, error) {
	k := sim.New(seed)
	ncfg := vnet.DefaultConfig()
	ncfg.Model = model
	net := vnet.NewNetwork(k, nil, ncfg)
	cfg := gossip.DefaultConfig()
	cfg.Fanout = fanout
	var nodes []*gossip.Node
	var eps []ip.Endpoint
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < n; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), class)
		if err != nil {
			return GossipPoint{}, err
		}
		nodes = append(nodes, gossip.NewNode(h, cfg))
		eps = append(eps, ip.Endpoint{Addr: h.Addr(), Port: gossip.Port})
	}
	for _, nd := range nodes {
		nd.SetPeers(eps)
		nd.Start()
	}

	pt := GossipPoint{Nodes: n, Fanout: fanout}
	const updateID = 1
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		start := p.Now()
		nodes[0].Publish(p, gossip.Update{ID: updateID})
		deadline := start.Add(5 * time.Minute)
		half := false
		for p.Now() < deadline {
			p.Sleep(250 * time.Millisecond)
			covered := 0
			for _, nd := range nodes {
				if nd.Knows(updateID) {
					covered++
				}
			}
			if !half && covered*2 >= n {
				pt.T50 = time.Duration(p.Now().Sub(start))
				half = true
			}
			if covered == n {
				pt.T100 = time.Duration(p.Now().Sub(start))
				break
			}
		}
		covered := 0
		for _, nd := range nodes {
			if nd.Knows(updateID) {
				covered++
			}
			pt.Pushes += nd.Stats.Pushes
		}
		pt.Coverage = float64(covered) / float64(n)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		return pt, err
	}
	return pt, nil
}

// GossipFanoutSweep measures dissemination time against fanout for a
// fixed population (E6): higher fanout trades messages for speed.
func GossipFanoutSweep(n int, fanouts []int, seed int64) ([]GossipPoint, error) {
	if fanouts == nil {
		fanouts = []int{1, 2, 3, 5, 8}
	}
	lan := topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond}
	var out []GossipPoint
	for _, f := range fanouts {
		pt, err := GossipSpread(n, f, lan, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// GossipSweepSeries converts sweep points into T100-vs-fanout and
// pushes-vs-fanout series.
func GossipSweepSeries(points []GossipPoint) []*metrics.Series {
	t100 := &metrics.Series{Name: "time-to-full-coverage-s"}
	cost := &metrics.Series{Name: "push-messages"}
	for _, pt := range points {
		t100.Add(float64(pt.Fanout), pt.T100.Seconds())
		cost.Add(float64(pt.Fanout), float64(pt.Pushes))
	}
	return []*metrics.Series{t100, cost}
}

// gossipString formats a point for command output.
func (pt GossipPoint) String() string {
	return fmt.Sprintf("n=%d fanout=%d coverage=%.0f%% t50=%v t100=%v pushes=%d",
		pt.Nodes, pt.Fanout, 100*pt.Coverage, pt.T50, pt.T100, pt.Pushes)
}
