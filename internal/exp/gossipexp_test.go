package exp

import (
	"testing"
	"time"

	"repro/internal/topo"
)

func TestGossipSpreadFullCoverage(t *testing.T) {
	pt, err := GossipSpread(32, 3, topo.LAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Coverage != 1 {
		t.Fatalf("coverage = %.2f, want full", pt.Coverage)
	}
	if pt.T50 <= 0 || pt.T100 < pt.T50 {
		t.Fatalf("times inconsistent: t50=%v t100=%v", pt.T50, pt.T100)
	}
}

func TestGossipFanoutTradeoff(t *testing.T) {
	points, err := GossipFanoutSweep(32, []int{1, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lowF, highF := points[0], points[1]
	if highF.T100 > lowF.T100 {
		t.Errorf("fanout 5 (%v) should not be slower than fanout 1 (%v)",
			highF.T100, lowF.T100)
	}
	if highF.Pushes <= lowF.Pushes {
		t.Errorf("fanout 5 (%d pushes) must cost more messages than fanout 1 (%d)",
			highF.Pushes, lowF.Pushes)
	}
	series := GossipSweepSeries(points)
	if len(series) != 2 || series[0].Len() != 2 {
		t.Fatalf("series malformed")
	}
}

func TestGossipSlowLinksSlowCoverage(t *testing.T) {
	lan, err := GossipSpread(16, 3, topo.LAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsl, err := GossipSpread(16, 3, topo.DSL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dsl.Coverage != 1 || lan.Coverage != 1 {
		t.Fatal("both runs should reach full coverage")
	}
	if dsl.T100 < lan.T100 {
		t.Errorf("DSL (%v) should not beat LAN (%v)", dsl.T100, lan.T100)
	}
	_ = time.Second
}
