package exp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/topo"
)

// TestGridModelAxis: the model axis expands like any other axis, is
// validated for duplicates, and is rejected for families without a
// network.
func TestGridModelAxis(t *testing.T) {
	g := Grid{
		Experiment: ExpSwarm,
		Peers:      []int{4},
		Models:     []netem.ModelKind{netem.ModelPipe, netem.ModelFlow},
		Seeds:      []int64{1},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	if cells[0].Model != netem.ModelPipe || cells[1].Model != netem.ModelFlow {
		t.Fatalf("model axis order wrong: %v, %v", cells[0].Model, cells[1].Model)
	}

	dup := Grid{Experiment: ExpSwarm, Models: []netem.ModelKind{netem.ModelFlow, netem.ModelFlow}}
	if _, err := dup.Cells(); err == nil {
		t.Error("duplicate model axis values not rejected")
	}
	sched := Grid{Experiment: ExpSched, Models: []netem.ModelKind{netem.ModelPipe, netem.ModelFlow}}
	if _, err := sched.Cells(); err == nil {
		t.Error("sched should reject a multi-valued model axis")
	}
}

// TestSweepModelAxisCells runs a tiny pipe-vs-flow swarm sweep
// end-to-end: both cells must complete, carry the model label, and
// produce different completion profiles (contention exists in any
// swarm, so the models cannot coincide).
func TestSweepModelAxisCells(t *testing.T) {
	g := Grid{
		Experiment: ExpSwarm,
		Peers:      []int{4},
		Models:     []netem.ModelKind{netem.ModelPipe, netem.ModelFlow},
		FileSize:   256 * 1024,
		Horizon:    2 * time.Hour,
	}
	res, err := RunSweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed cells: %v", res.Errs())
	}
	var ended []float64
	for i, c := range res.Cells {
		if got := c.Snapshot.Labels["model"]; got != c.Cell.Model.String() {
			t.Errorf("cell %d model label = %q, want %q", i, got, c.Cell.Model)
		}
		if done := c.Snapshot.Values["done-fraction"]; done < 1 {
			t.Errorf("cell %d (%s) done-fraction = %v, want 1", i, c.Cell, done)
		}
		ended = append(ended, c.Snapshot.Values["last-completion-s"])
	}
	if ended[0] == ended[1] {
		t.Errorf("pipe and flow cells produced identical completion times (%v); model option has no effect", ended[0])
	}
}

// TestDHTGossipModelVariants: the model-aware runners accept the flow
// model and still measure sane aggregates.
func TestDHTGossipModelVariants(t *testing.T) {
	pt, err := DHTRingModel(8, 20, topo.LAN, netem.ModelFlow, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.AvgHops <= 0 {
		t.Errorf("no hops measured under flow model: %+v", pt)
	}
	gp, err := GossipSpreadModel(16, 3, topo.LAN, netem.ModelFlow, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Coverage < 1 {
		t.Errorf("gossip coverage %v under flow model, want 1", gp.Coverage)
	}
}
