package exp

import (
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// PingParams configures one network-level firewall ping measurement —
// the Fig 6 mechanism driven through vnet.Config.Rules instead of the
// physical-cluster fabric, so it sweeps over both classifiers and
// composes with either link model.
type PingParams struct {
	// Rules is the number of filler rules padding the table (/32
	// sources, the shape real per-vnode rules have: the linear scan
	// visits every one, the indexed classifier buckets them away).
	Rules int
	// Classifier selects the table's classification algorithm.
	Classifier netem.Classifier
	// Class is the two endpoints' access-link class (default LAN-ish
	// gigabit, the paper's measurement network).
	Class topo.LinkClass
	// Model selects pipe- or flow-level link emulation.
	Model netem.ModelKind
	// Window batches the flow model's re-rate solves
	// (vnet.Config.FlowWindow); ignored under the pipe model.
	Window time.Duration
	// Pings is the number of echo round trips (default 10).
	Pings int
	Seed  int64
}

// PingOutcome is the measured result.
type PingOutcome struct {
	Params PingParams
	Stats  vnet.PingStats
	// Evals and Visited are the firewall's evaluation counters for the
	// whole run: Visited/Evals is the average scan length, the
	// quantity the classifier changes.
	Evals   uint64
	Visited uint64
}

// RunPing measures ping RTT between two hosts through a padded
// firewall table. RTT = base + 2 × Visited × PerRuleCost: linear in
// Rules under ClassifierLinear, near-flat under ClassifierIndexed.
func RunPing(pp PingParams) (*PingOutcome, error) {
	if pp.Pings <= 0 {
		pp.Pings = 10
	}
	if pp.Class.Name == "" {
		// A bespoke measurement link, deliberately NOT named "lan":
		// topo.LAN exists with a different latency, and two result rows
		// sharing a class label must be comparable.
		pp.Class = topo.LinkClass{Name: "measure-lan", Down: netem.Gbps, Up: netem.Gbps, Latency: 50 * time.Microsecond}
	}
	k := sim.New(pp.Seed)
	rs := netem.NewFillerTable(pp.Rules, pp.Classifier)
	cfg := vnet.DefaultConfig()
	cfg.Model = pp.Model
	cfg.FlowWindow = pp.Window
	cfg.Rules = rs
	n := vnet.NewNetwork(k, nil, cfg)
	a, err := n.AddHostClass(ip.MustParseAddr("10.0.0.1"), pp.Class)
	if err != nil {
		return nil, err
	}
	b, err := n.AddHostClass(ip.MustParseAddr("10.0.0.2"), pp.Class)
	if err != nil {
		return nil, err
	}
	out := &PingOutcome{Params: pp}
	k.Go("pinger", func(p *sim.Proc) {
		out.Stats = a.PingSeries(p, b.Addr(), vnet.DefaultPingSize, pp.Pings, 50*time.Millisecond, 5*time.Second)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		return nil, err
	}
	out.Evals, out.Visited = rs.EvalStats()
	return out, nil
}
