package exp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/topo"
)

// lanTestClass is an unconstrained-ish access link so the swarm tests
// below are dominated by the firewall cost, not serialization.
func lanTestClass() topo.LinkClass {
	return topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond}
}

// TestRunPingFig6Shape: the network-level Fig 6 driver — linear RTT
// growth under the linear classifier, a near-flat curve under the
// indexed one, identical base.
func TestRunPingFig6Shape(t *testing.T) {
	run := func(rules int, cf netem.Classifier) *PingOutcome {
		out, err := RunPing(PingParams{Rules: rules, Classifier: cf, Pings: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(0, netem.ClassifierLinear).Stats.Avg
	lin10 := run(10000, netem.ClassifierLinear).Stats.Avg
	lin20 := run(20000, netem.ClassifierLinear).Stats.Avg
	// Two traversals × 10000 rules × 48 ns = 0.96 ms per step.
	if d := lin10 - base; d != 2*10000*netem.DefaultPerRuleCost {
		t.Errorf("slope at 10k = %v, want %v", d, 2*10000*netem.DefaultPerRuleCost)
	}
	if d1, d2 := lin10-base, lin20-base; d2 != 2*d1 {
		t.Errorf("not linear: deltas %v then %v", d1, d2)
	}
	idx := run(20000, netem.ClassifierIndexed)
	if idx.Stats.Avg != base {
		t.Errorf("indexed RTT at 20k rules = %v, want flat base %v", idx.Stats.Avg, base)
	}
	if idx.Visited != 0 {
		t.Errorf("indexed visited %d filler rules, want 0", idx.Visited)
	}
}

// TestGridRulesAxis: expansion, defaults and rejection rules for the
// rules and classifier axes.
func TestGridRulesAxis(t *testing.T) {
	g := Grid{
		Experiment:  ExpPing,
		Rules:       []int{0, 1000},
		Classifiers: []netem.Classifier{netem.ClassifierLinear, netem.ClassifierIndexed},
		Seeds:       []int64{1, 2},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// rules=0 collapses to one baseline cell (an empty table behaves
	// identically under every classifier): (1 + 2) × 2 seeds.
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want (1 baseline + 2 classifiers at 1000 rules) × 2 seeds = 6", len(cells))
	}
	zeroCells := 0
	for _, c := range cells {
		if c.Rules == 0 {
			zeroCells++
		}
	}
	if zeroCells != 2 {
		t.Fatalf("rules=0 cells = %d, want 2 (one per seed, not per classifier)", zeroCells)
	}

	if _, err := (Grid{Experiment: ExpDHT, Rules: []int{0, 100}}).Cells(); err == nil {
		t.Error("dht accepted the rules axis")
	}
	if _, err := (Grid{Experiment: ExpDHT, Rules: []int{100}}).Cells(); err == nil {
		t.Error("dht accepted a single-valued rules axis (would silently run without a firewall)")
	}
	if _, err := (Grid{Experiment: ExpSched, Classifiers: []netem.Classifier{netem.ClassifierIndexed}}).Cells(); err == nil {
		t.Error("sched accepted a single-valued classifier axis")
	}
	if _, err := (Grid{Experiment: ExpGossip, Classifiers: []netem.Classifier{netem.ClassifierLinear, netem.ClassifierIndexed}}).Cells(); err == nil {
		t.Error("gossip accepted the classifier axis")
	}
	if _, err := (Grid{Experiment: ExpPing, Rules: []int{100, 100}}).Cells(); err == nil {
		t.Error("duplicate rules axis accepted")
	}
	if _, err := (Grid{Experiment: ExpPing, Rules: []int{-1}}).Cells(); err == nil {
		t.Error("negative rule count accepted")
	}
	if _, err := (Grid{Experiment: ExpPing, Peers: []int{2, 4}}).Cells(); err == nil {
		t.Error("ping accepted the peers axis")
	}
}

// TestSweepPingCells runs a small ping sweep end-to-end and checks the
// labels and the flat-vs-linear artifact in the merged snapshots.
func TestSweepPingCells(t *testing.T) {
	g := Grid{
		Experiment:  ExpPing,
		Rules:       []int{0, 5000},
		Classifiers: []netem.Classifier{netem.ClassifierLinear, netem.ClassifierIndexed},
	}
	res, err := RunSweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed cells: %v", res.Errs())
	}
	byKey := map[string]float64{}
	for _, c := range res.Cells {
		byKey[c.Snapshot.Labels["rules"]+"/"+c.Snapshot.Labels["classifier"]] = c.Snapshot.Values["rtt-avg-ms"]
	}
	// rules=0 ran once, as the linear baseline.
	if byKey["5000/linear"] <= byKey["0/linear"] {
		t.Errorf("linear classifier: 5000 rules (%g ms) not slower than 0 (%g ms)",
			byKey["5000/linear"], byKey["0/linear"])
	}
	if byKey["5000/indexed"] != byKey["0/linear"] {
		t.Errorf("indexed classifier: %g ms at 5000 rules, want flat baseline %g",
			byKey["5000/indexed"], byKey["0/linear"])
	}
}

// TestSwarmRulesSlowCompletion: a firewalled swarm pays the scan on
// every message — with a large linear table the download measurably
// slows; the indexed classifier removes the overhead.
func TestSwarmRulesSlowCompletion(t *testing.T) {
	run := func(rules int, cf netem.Classifier) *SwarmOutcome {
		out, err := RunSwarm(SwarmParams{
			Clients: 4, Seeders: 1, FileSize: 256 << 10,
			StartInterval: time.Second, Class: lanTestClass(),
			Rules: rules, Classifier: cf, Seed: 1, Horizon: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllDone {
			t.Fatal("swarm incomplete")
		}
		return out
	}
	base := run(0, netem.ClassifierLinear).EndedAt
	heavy := run(50000, netem.ClassifierLinear).EndedAt
	light := run(50000, netem.ClassifierIndexed).EndedAt
	if heavy <= base {
		t.Errorf("50k-rule linear swarm ended at %v, want later than %v", heavy, base)
	}
	if light >= heavy {
		t.Errorf("indexed swarm ended at %v, want earlier than linear %v", light, heavy)
	}
}
