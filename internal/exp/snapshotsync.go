package exp

import (
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// SnapshotSyncParams configures the snapshot-sync experiment: the
// inverse of the paper's many-small-peers swarms. A handful of peers
// pull one huge file in large pieces over few connections, with
// asymmetric token-bucket rate caps and web seeds as the fallback
// source — the regime of Erigon's snapshot downloader (hundreds of GB,
// 2 MiB pieces, ~5 conns per torrent, webseed CDN behind the swarm).
type SnapshotSyncParams struct {
	Clients  int
	Seeders  int
	WebSeeds int // always-available block servers on LAN edge hosts
	FileSize int64
	// PieceLength defaults to 2 MiB (Erigon's snapshot piece size).
	PieceLength int
	// ConnCap bounds MaxPeers and MaxInitiate (default 5, the
	// conns-per-torrent of the snapshot downloader).
	ConnCap int
	// UpRate / DownRate cap each client's payload rates in bytes/second
	// via deterministic virtual-time token buckets (0: unlimited).
	UpRate   int64
	DownRate int64

	StartInterval time.Duration
	Class         topo.LinkClass
	Model         netem.ModelKind
	Window        time.Duration // flow-model batch window
	Seed          int64
	Horizon       time.Duration
}

// DefaultSnapshotSyncParams is a scaled-down snapshot pull: 4 clients,
// 1 seeder and 1 web seed moving a 16 MiB file in 2 MiB pieces over 5
// connections each.
func DefaultSnapshotSyncParams() SnapshotSyncParams {
	return SnapshotSyncParams{
		Clients:       4,
		Seeders:       1,
		WebSeeds:      1,
		FileSize:      16 << 20,
		PieceLength:   2 << 20,
		ConnCap:       5,
		StartInterval: time.Second,
		Class:         topo.FastDSL,
		Seed:          1,
		Horizon:       2 * time.Hour,
	}
}

// SnapshotSyncOutcome is the measured result of one snapshot-sync run.
type SnapshotSyncOutcome struct {
	Params       SnapshotSyncParams
	Meta         *bt.MetaInfo
	Completions  []sim.Time // per client; zero = unfinished
	WebSeedBytes uint64     // payload served by all web seeds
	AllDone      bool
	EndedAt      sim.Time
	Kernel       sim.Stats
	Net          vnet.NetworkStats
}

// RunSnapshotSync executes one snapshot-sync experiment to completion
// (or horizon).
func RunSnapshotSync(sp SnapshotSyncParams) (*SnapshotSyncOutcome, error) {
	if sp.Clients < 1 {
		return nil, fmt.Errorf("exp: snapshot-sync needs at least 1 client")
	}
	if sp.Seeders < 1 && sp.WebSeeds < 1 {
		return nil, fmt.Errorf("exp: snapshot-sync needs a seeder or a web seed")
	}
	pieceLen := sp.PieceLength
	if pieceLen <= 0 {
		pieceLen = 2 << 20
	}
	connCap := sp.ConnCap
	if connCap <= 0 {
		connCap = 5
	}

	k := sim.New(sp.Seed)
	ncfg := vnet.DefaultConfig()
	ncfg.Model = sp.Model
	ncfg.FlowWindow = sp.Window
	net := vnet.NewNetwork(k, nil, ncfg)

	trackerHost, err := net.AddHostClass(ip.MustParseAddr("10.250.0.1"), topo.LAN)
	if err != nil {
		return nil, err
	}
	// Web seeds live on LAN-class edge hosts: the CDN side of the path
	// is fat, the bottleneck is the client's access link (and its rate
	// caps), as in the production deployment.
	var wsHosts []*vnet.Host
	wsBase := ip.MustParseAddr("10.251.0.1")
	for i := 0; i < sp.WebSeeds; i++ {
		h, err := net.AddHostClass(wsBase.Add(uint32(i)), topo.LAN)
		if err != nil {
			return nil, err
		}
		wsHosts = append(wsHosts, h)
	}
	var wsEndpoints []ip.Endpoint
	for _, h := range wsHosts {
		wsEndpoints = append(wsEndpoints, ip.Endpoint{Addr: h.Addr(), Port: bt.WebSeedPort})
	}
	var nodeHosts []*vnet.Host
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < sp.Seeders+sp.Clients; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), sp.Class)
		if err != nil {
			return nil, err
		}
		nodeHosts = append(nodeHosts, h)
		h.SetBindEnv(h.Addr())
	}

	cfg := bt.DefaultClientConfig()
	cfg.MaxPeers = connCap
	cfg.MaxInitiate = connCap
	cfg.MinPeers = connCap // below this the starvation re-announce kicks in
	cfg.PipelineDepth = 0  // auto-scale to blocks-per-piece
	cfg.UploadRate = sp.UpRate
	cfg.DownloadRate = sp.DownRate
	cfg.WebSeeds = wsEndpoints

	spec := bt.SwarmSpec{
		FileName:    "snapshot",
		FileSize:    sp.FileSize,
		PieceLength: pieceLen,
		Sparse:      true,
		Client:      cfg,
	}
	swarm, err := bt.BuildSwarm(spec, trackerHost, nodeHosts[:sp.Seeders], nodeHosts[sp.Seeders:])
	if err != nil {
		return nil, err
	}
	var webseeds []*bt.WebSeed
	for _, h := range wsHosts {
		webseeds = append(webseeds, bt.NewWebSeed(h, swarm.Meta, bt.NewSeededSparseStorage(swarm.Meta)))
	}

	out := &SnapshotSyncOutcome{Params: sp, Meta: swarm.Meta}
	swarm.Start(sp.StartInterval)
	k.Go("snapshot-waiter", func(p *sim.Proc) {
		out.AllDone = swarm.WaitAll(p, sp.Horizon)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("exp: snapshot-sync kernel: %w", err)
	}
	out.Completions = swarm.CompletionTimes()
	for _, ws := range webseeds {
		out.WebSeedBytes += ws.Stats().BytesServed
	}
	out.EndedAt = k.Now()
	out.Kernel = k.Snapshot()
	out.Net = net.Stats()
	return out, nil
}
