// Package exp contains one driver per table and figure of the paper's
// evaluation. Each driver builds the experiment from the substrate
// packages, runs it on a fresh kernel and returns typed series ready
// for rendering (metrics.WriteDat) and for assertions in tests and
// benchmarks.
//
// The index figure → driver lives in DESIGN.md; paper-vs-measured
// numbers live in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/virt"
	"repro/internal/vnet"
)

// SwarmParams configures one BitTorrent swarm experiment (Figs 8–11).
type SwarmParams struct {
	Clients       int
	Seeders       int
	FileSize      int64
	StartInterval time.Duration
	Class         topo.LinkClass
	// Folding is the number of virtual nodes per physical node; 0 runs
	// without the physical-cluster layer (pure network emulation).
	Folding int
	// PhysNodes overrides the computed physical node count.
	PhysNodes int
	// Model selects pipe-level (default) or flow-level link emulation
	// for the whole experiment.
	Model netem.ModelKind
	// Window batches the flow model's re-rate solves
	// (vnet.Config.FlowWindow); ignored under the pipe model.
	Window time.Duration
	// Rules pads the network firewall with this many filler rules
	// (never matching swarm traffic): every message then pays the
	// classification cost, the Fig 6 artifact applied to a whole
	// workload. 0 runs without a firewall (vnet.Config.Rules == nil).
	Rules int
	// Classifier selects the firewall's classification algorithm when
	// Rules > 0.
	Classifier netem.Classifier
	Seed       int64
	// Horizon caps the experiment's virtual time.
	Horizon time.Duration
}

// fillerRules builds a firewall table padded with n filler rules under
// the given classifier, or nil for n == 0 (no firewall at all).
func fillerRules(n int, classifier netem.Classifier) *netem.RuleSet {
	if n <= 0 {
		return nil
	}
	return netem.NewFillerTable(n, classifier)
}

// Fig8Params returns the paper's first BitTorrent experiment: "the
// download of a 16 MB file by 160 clients ... provided by 4 seeders.
// All nodes have a network connection with a download rate of 2 mbps,
// an upload rate of 128 kbps, and a latency of 30 ms ... clients are
// started with a 10s interval."
func Fig8Params() SwarmParams {
	return SwarmParams{
		Clients:       160,
		Seeders:       4,
		FileSize:      16 * 1024 * 1024,
		StartInterval: 10 * time.Second,
		Class:         topo.DSL,
		Seed:          1,
		Horizon:       4 * time.Hour,
	}
}

// Fig10Params returns the scalability experiment: "5760 virtual nodes
// (5754 clients, 4 seeders, one tracker) hosted on 180 physical nodes
// (32 virtual nodes per physical node). The clients are started every
// 0.25s."
func Fig10Params() SwarmParams {
	return SwarmParams{
		Clients:       5754,
		Seeders:       4,
		FileSize:      16 * 1024 * 1024,
		StartInterval: 250 * time.Millisecond,
		Class:         topo.DSL,
		Folding:       32,
		PhysNodes:     180,
		Seed:          1,
		Horizon:       6 * time.Hour,
	}
}

// Scale shrinks a swarm experiment by an integer factor (clients,
// file size) while preserving link classes and intervals — used by
// tests and -short benchmarks.
func (sp SwarmParams) Scale(factor int) SwarmParams {
	out := sp
	if factor <= 1 {
		return out
	}
	out.Clients = sp.Clients / factor
	if out.Clients < 2 {
		out.Clients = 2
	}
	out.FileSize = sp.FileSize / int64(factor)
	if out.FileSize < 512*1024 {
		out.FileSize = 512 * 1024
	}
	if out.PhysNodes > 0 {
		out.PhysNodes = (out.Clients + out.Folding - 1) / out.Folding
	}
	return out
}

// PieceEvent is one piece completion anywhere in the swarm.
type PieceEvent struct {
	At    sim.Time
	Bytes int64 // size of the completed piece
}

// SwarmOutcome is the measured result of one swarm run.
type SwarmOutcome struct {
	Params      SwarmParams
	Meta        *bt.MetaInfo
	Completions []sim.Time      // per client; zero = unfinished
	PerClient   [][]bt.Progress // per-client piece trajectories
	Pieces      []PieceEvent    // global, in time order
	AllDone     bool
	EndedAt     sim.Time
	Kernel      sim.Stats
	Net         vnet.NetworkStats
}

// RunSwarm executes one swarm experiment to completion (or horizon).
func RunSwarm(sp SwarmParams) (*SwarmOutcome, error) {
	k := sim.New(sp.Seed)

	var fabric vnet.Fabric
	var cluster *virt.Cluster
	if sp.Folding > 0 {
		physNodes := sp.PhysNodes
		if physNodes == 0 {
			physNodes = (sp.Clients + sp.Seeders + sp.Folding - 1) / sp.Folding
		}
		cfg := virt.DefaultConfig(nil)
		if physNodes > 200 {
			cfg.AdminSubnet = ip.MustParsePrefix("192.168.0.0/16")
		}
		var err error
		cluster, err = virt.NewCluster(k, physNodes, cfg)
		if err != nil {
			return nil, err
		}
		fabric = cluster
	}
	ncfg := vnet.DefaultConfig()
	ncfg.Model = sp.Model
	ncfg.FlowWindow = sp.Window
	ncfg.Rules = fillerRules(sp.Rules, sp.Classifier)
	net := vnet.NewNetwork(k, fabric, ncfg)

	trackerHost, err := net.AddHostClass(ip.MustParseAddr("10.250.0.1"), topo.LAN)
	if err != nil {
		return nil, err
	}
	var nodeHosts []*vnet.Host
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < sp.Seeders+sp.Clients; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), sp.Class)
		if err != nil {
			return nil, err
		}
		nodeHosts = append(nodeHosts, h)
		h.SetBindEnv(h.Addr()) // P2PLab's BINDIP interception is active
	}
	if cluster != nil {
		if err := cluster.PlaceSuccessive(nodeHosts, sp.Folding); err != nil {
			return nil, err
		}
	}

	spec := bt.DefaultSwarmSpec()
	spec.FileSize = sp.FileSize
	swarm, err := bt.BuildSwarm(spec, trackerHost, nodeHosts[:sp.Seeders], nodeHosts[sp.Seeders:])
	if err != nil {
		return nil, err
	}

	out := &SwarmOutcome{Params: sp, Meta: swarm.Meta}
	for _, c := range swarm.Clients {
		c.OnPiece = func(_ *bt.Client, at sim.Time, piece int, _ int64) {
			out.Pieces = append(out.Pieces, PieceEvent{At: at, Bytes: int64(swarm.Meta.PieceSize(piece))})
		}
	}
	swarm.Start(sp.StartInterval)
	k.Go("experiment-waiter", func(p *sim.Proc) {
		out.AllDone = swarm.WaitAll(p, sp.Horizon)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("exp: swarm kernel: %w", err)
	}
	out.Completions = swarm.CompletionTimes()
	for _, c := range swarm.Clients {
		out.PerClient = append(out.PerClient, c.Progress())
	}
	out.EndedAt = k.Now()
	out.Kernel = k.Snapshot()
	out.Net = net.Stats()
	return out, nil
}

// ProgressSeries converts a client trajectory into a percent-complete
// series — one curve of Fig 8 / Fig 10.
func ProgressSeries(name string, prog []bt.Progress, total int64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for _, pt := range prog {
		s.Add(pt.At.Seconds(), 100*float64(pt.Bytes)/float64(total))
	}
	return s
}

// CompletionSeries builds "clients having completed the download" over
// time — Fig 11.
func CompletionSeries(completions []sim.Time) *metrics.Series {
	var done []float64
	for _, c := range completions {
		if c > 0 {
			done = append(done, c.Seconds())
		}
	}
	s := metrics.CDF(done)
	s.Name = "completions"
	// Scale F(x) back to absolute counts.
	for i := range s.Points {
		s.Points[i].Y *= float64(len(done))
	}
	return &s
}

// TotalReceivedSeries builds "total amount of data received by the
// nodes" over time, in megabytes — the y-axis of Fig 9.
func TotalReceivedSeries(name string, events []PieceEvent) *metrics.Series {
	s := &metrics.Series{Name: name}
	var cum float64
	for _, e := range events {
		cum += float64(e.Bytes) / (1 << 20)
		s.Add(e.At.Seconds(), cum)
	}
	return s
}
