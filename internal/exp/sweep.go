package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/topo"
)

// The sweep engine turns every experiment in this package into a
// grid-runnable scenario: a Grid is the cross product of parameter
// axes (population × churn rate × access-link class × seed), each cell
// runs as an independent deterministic sim.Kernel on its own OS thread
// via a bounded worker pool, and per-cell metrics.Snapshot results
// merge into an aggregate table and CSV. Determinism is per-kernel
// (see repro/internal/sim), so parallelism across cells cannot perturb
// any cell's result: the merged output is identical for any worker
// count.

// Experiment names a sweepable scenario family.
type Experiment string

const (
	// ExpSwarm is the BitTorrent swarm download (Figs 8-11). Cells with
	// a nonzero churn rate run the churn variant (extension E3).
	ExpSwarm Experiment = "swarm"
	// ExpChurn is the churned swarm with a default churn rate of 0.5;
	// otherwise identical to ExpSwarm.
	ExpChurn Experiment = "churn"
	// ExpDHT is the Chord lookup experiment (extensions E1/E2).
	ExpDHT Experiment = "dht"
	// ExpGossip is the epidemic dissemination experiment (E6).
	ExpGossip Experiment = "gossip"
	// ExpSched is the scheduler-suitability workload (Figs 1-3); it
	// uses only the population and seed axes.
	ExpSched Experiment = "sched"
	// ExpScenario runs named scenarios from the committed corpus
	// (repro/internal/scenario): the scenario axis replaces the
	// peers/churn/class/model axes (the spec owns those), leaving the
	// seed axis for replication.
	ExpScenario Experiment = "scenario"
	// ExpPing is the firewall rule-scaling measurement (Fig 6): ping
	// RTT against the rule-table size, under either classifier. It
	// ignores the peers and churn axes and reads the rules and
	// classifier axes.
	ExpPing Experiment = "ping"
	// ExpSnapshotSync is the few-peers/huge-file regime of Erigon's
	// snapshot downloader: large pieces, capped connections, token-
	// bucket rate limiters and web seeds. It reads the piece-size,
	// conn-cap and rate axes on top of peers/class/model/window and
	// measures completion time.
	ExpSnapshotSync Experiment = "snapshot-sync"
)

// Experiments lists the sweepable experiment families.
var Experiments = []Experiment{ExpSwarm, ExpChurn, ExpDHT, ExpGossip, ExpSched, ExpScenario, ExpPing, ExpSnapshotSync}

// Grid is a parameter grid. Cells() expands the cross product of the
// axes; nil axes get a single experiment-appropriate default, so a
// zero-ish Grid is one cell. Axis values must be distinct: the
// expansion is guaranteed exhaustive and duplicate-free.
type Grid struct {
	Experiment  Experiment
	Peers       []int              // population sizes (clients / ring size / processes)
	Churn       []float64          // churn fractions in [0,1); swarm-family only
	Classes     []topo.LinkClass   // access-link classes
	Models      []netem.ModelKind  // link-emulation models (pipe, flow)
	Windows     []time.Duration    // flow-model batch windows; needs the flow model on the models axis
	Scenarios   []string           // corpus scenario names; scenario experiment only
	Rules       []int              // firewall rule-table sizes; ping and swarm families
	Classifiers []netem.Classifier // firewall classifiers (linear, indexed)
	PieceSizes  []int              // torrent piece lengths in bytes; snapshot-sync only
	ConnCaps    []int              // per-client connection caps; snapshot-sync only
	Rates       []int64            // symmetric up/down rate caps in bytes/s (0 = unlimited); snapshot-sync only
	Seeds       []int64

	// Knobs held constant across the grid.
	FileSize int           // bytes per swarm download (default 2 MiB)
	Lookups  int           // DHT lookups per cell (default 100)
	Fanout   int           // gossip fanout (default 3)
	Horizon  time.Duration // virtual-time cap per cell (default 6 h)
}

// Cell is one point of the grid.
type Cell struct {
	Index      int // position in grid order
	Experiment Experiment
	Peers      int
	Churn      float64
	Class      topo.LinkClass
	Model      netem.ModelKind
	Window     time.Duration // flow-model batch window; always 0 for pipe cells
	Scenario   string        // scenario experiment only
	Rules      int           // firewall rule-table size; ping and swarm families
	Classifier netem.Classifier
	PieceSize  int   // piece length in bytes; snapshot-sync only
	ConnCap    int   // per-client connection cap; snapshot-sync only
	Rate       int64 // symmetric rate cap in bytes/s; snapshot-sync only
	Seed       int64

	fileSize int
	lookups  int
	fanout   int
	horizon  time.Duration
}

// String identifies the cell in logs and errors.
func (c Cell) String() string {
	if c.Experiment == ExpScenario {
		return fmt.Sprintf("%s[%s seed=%d]", c.Experiment, c.Scenario, c.Seed)
	}
	win := ""
	if c.Window > 0 {
		win = fmt.Sprintf(" window=%s", c.Window)
	}
	if c.Experiment == ExpSnapshotSync {
		return fmt.Sprintf("%s[peers=%d class=%s model=%s%s piece=%d conncap=%d rate=%d seed=%d]",
			c.Experiment, c.Peers, c.Class.Name, c.Model, win, c.PieceSize, c.ConnCap, c.Rate, c.Seed)
	}
	if c.Experiment == ExpPing || (c.Experiment.usesRulesAxis() && c.Rules > 0) {
		return fmt.Sprintf("%s[peers=%d churn=%g class=%s model=%s%s rules=%d classifier=%s seed=%d]",
			c.Experiment, c.Peers, c.Churn, c.Class.Name, c.Model, win, c.Rules, c.Classifier, c.Seed)
	}
	return fmt.Sprintf("%s[peers=%d churn=%g class=%s model=%s%s seed=%d]",
		c.Experiment, c.Peers, c.Churn, c.Class.Name, c.Model, win, c.Seed)
}

// usesChurnAxis reports whether the experiment reads the churn axis.
func (e Experiment) usesChurnAxis() bool { return e == ExpSwarm || e == ExpChurn }

// usesPeersAxis reports whether the experiment reads the peers axis
// (a scenario spec owns its own populations; ping is a fixed pair).
func (e Experiment) usesPeersAxis() bool { return e != ExpScenario && e != ExpPing }

// usesClassAxis reports whether the experiment reads the class axis.
func (e Experiment) usesClassAxis() bool { return e != ExpSched && e != ExpScenario }

// usesModelAxis reports whether the experiment reads the link-model
// axis (every vnet-based family does; sched has no network and a
// scenario spec picks its own model).
func (e Experiment) usesModelAxis() bool { return e != ExpSched && e != ExpScenario }

// usesRulesAxis reports whether the experiment reads the firewall
// rules and classifier axes: the Fig 6 ping sweep and the swarm
// families (every message of a firewalled swarm pays the scan).
func (e Experiment) usesRulesAxis() bool { return e == ExpPing || e == ExpSwarm || e == ExpChurn }

// usesWindowAxis reports whether the experiment reads the flow-model
// batch-window axis: the vnet families whose runners take a network
// config (a scenario spec owns its own flow_window knob; the DHT and
// gossip models keep their fixed signatures; sched has no network).
func (e Experiment) usesWindowAxis() bool {
	return e == ExpSwarm || e == ExpChurn || e == ExpPing || e == ExpSnapshotSync
}

// usesSnapshotAxes reports whether the experiment reads the
// piece-size, conn-cap and rate axes (the snapshot-sync workload
// knobs; everything else has fixed piece geometry and no limiter).
func (e Experiment) usesSnapshotAxes() bool { return e == ExpSnapshotSync }

// Cells expands the grid into its cells, in row-major grid order
// (peers, then churn, then class, then model, then scenario, then
// rules, then classifier, then seed). It rejects repeated axis values
// and multi-valued axes the experiment ignores — both would produce
// duplicate cells, and a sweep must be exhaustive and duplicate-free.
func (g Grid) Cells() ([]Cell, error) {
	exp := g.Experiment
	if exp == "" {
		exp = ExpSwarm
	}
	known := false
	for _, e := range Experiments {
		if e == exp {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("exp: unknown experiment %q", exp)
	}

	peers := g.Peers
	if len(peers) == 0 {
		peers = []int{defaultPeers(exp)}
	}
	churns := g.Churn
	if len(churns) == 0 {
		if exp == ExpChurn {
			churns = []float64{0.5}
		} else {
			churns = []float64{0}
		}
	}
	classes := g.Classes
	if len(classes) == 0 {
		classes = []topo.LinkClass{topo.DSL}
	}
	models := g.Models
	if len(models) == 0 {
		models = []netem.ModelKind{netem.ModelPipe}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	scenarios := g.Scenarios
	if exp == ExpScenario {
		if len(scenarios) == 0 {
			scenarios = scenario.Names() // default: the whole corpus
		}
		for _, s := range seeds {
			// Seed 0 means "use the spec's own seed" (scenario.Options),
			// so it would silently duplicate that seed's cell.
			if s == 0 {
				return nil, fmt.Errorf("exp: scenario sweeps need nonzero seeds (0 falls back to the spec's seed)")
			}
		}
		seenScenario := map[string]bool{}
		for _, name := range scenarios {
			if _, ok := scenario.ByName(name); !ok {
				return nil, fmt.Errorf("exp: unknown scenario %q (have %v)", name, scenario.Names())
			}
			if seenScenario[name] {
				return nil, fmt.Errorf("exp: duplicate scenario axis value %q", name)
			}
			seenScenario[name] = true
		}
	} else {
		if len(scenarios) > 0 {
			return nil, fmt.Errorf("exp: %s ignores the scenario axis; %d values would duplicate cells", exp, len(scenarios))
		}
		scenarios = []string{""}
	}

	windows := g.Windows
	if len(windows) == 0 {
		windows = []time.Duration{0}
	}

	ruleCounts := g.Rules
	if len(ruleCounts) == 0 {
		ruleCounts = []int{0}
	}
	classifiers := g.Classifiers
	if len(classifiers) == 0 {
		classifiers = []netem.Classifier{netem.ClassifierLinear}
	}

	pieceSizes := g.PieceSizes
	connCaps := g.ConnCaps
	rates := g.Rates
	if exp.usesSnapshotAxes() {
		if len(pieceSizes) == 0 {
			pieceSizes = []int{2 << 20}
		}
		if len(connCaps) == 0 {
			connCaps = []int{5}
		}
		if len(rates) == 0 {
			rates = []int64{0}
		}
		if err := distinctInts("piece-size", pieceSizes); err != nil {
			return nil, err
		}
		for _, ps := range pieceSizes {
			if ps <= 0 {
				return nil, fmt.Errorf("exp: non-positive piece size %d", ps)
			}
		}
		if err := distinctInts("conn-cap", connCaps); err != nil {
			return nil, err
		}
		for _, cc := range connCaps {
			if cc <= 0 {
				return nil, fmt.Errorf("exp: non-positive conn cap %d", cc)
			}
		}
		seenRate := map[int64]bool{}
		for _, r := range rates {
			if r < 0 {
				return nil, fmt.Errorf("exp: negative rate cap %d", r)
			}
			if seenRate[r] {
				return nil, fmt.Errorf("exp: duplicate rate axis value %d", r)
			}
			seenRate[r] = true
		}
	} else {
		if len(g.PieceSizes) > 0 || len(g.ConnCaps) > 0 || len(g.Rates) > 0 {
			// Even a single explicit value is rejected: these axes select
			// the snapshot workload's knobs, and silently dropping them
			// would misrepresent every cell of the sweep.
			return nil, fmt.Errorf("exp: %s ignores the piece-size, conn-cap and rate axes", exp)
		}
		pieceSizes, connCaps, rates = []int{0}, []int{0}, []int64{0}
	}

	if !exp.usesPeersAxis() && len(peers) > 1 {
		return nil, fmt.Errorf("exp: %s ignores the peers axis; %d values would duplicate cells", exp, len(peers))
	}
	if !exp.usesChurnAxis() && len(churns) > 1 {
		return nil, fmt.Errorf("exp: %s ignores the churn axis; %d values would duplicate cells", exp, len(churns))
	}
	if !exp.usesClassAxis() && len(classes) > 1 {
		return nil, fmt.Errorf("exp: %s ignores the class axis; %d values would duplicate cells", exp, len(classes))
	}
	if !exp.usesModelAxis() && len(models) > 1 {
		return nil, fmt.Errorf("exp: %s ignores the model axis; %d values would duplicate cells", exp, len(models))
	}
	if !exp.usesWindowAxis() && len(g.Windows) > 0 {
		return nil, fmt.Errorf("exp: %s ignores the flow-window axis", exp)
	}
	if len(g.Windows) > 0 {
		seenWindow := map[time.Duration]bool{}
		anyPositive := false
		for _, w := range g.Windows {
			if w < 0 {
				return nil, fmt.Errorf("exp: negative flow window %v", w)
			}
			if seenWindow[w] {
				return nil, fmt.Errorf("exp: duplicate window axis value %v", w)
			}
			seenWindow[w] = true
			if w > 0 {
				anyPositive = true
			}
		}
		if anyPositive {
			// The window only exists inside the flow solver; a pipe-only
			// sweep would silently run every window value identically.
			anyFlow := false
			for _, mdl := range models {
				if mdl == netem.ModelFlow {
					anyFlow = true
				}
			}
			if !anyFlow {
				return nil, fmt.Errorf("exp: the window axis needs the flow model on the models axis (the pipe model has no solver to batch)")
			}
		}
	}
	if !exp.usesRulesAxis() && (len(g.Rules) > 0 || len(g.Classifiers) > 0) {
		// Even a single explicit value is rejected: these axes request a
		// firewall, and silently running without one would misrepresent
		// every cell of the sweep.
		return nil, fmt.Errorf("exp: %s ignores the rules and classifier axes", exp)
	}
	if err := distinctInts("rules", ruleCounts); err != nil {
		return nil, err
	}
	for _, rc := range ruleCounts {
		if rc < 0 {
			return nil, fmt.Errorf("exp: negative rule count %d", rc)
		}
	}
	seenClassifier := map[netem.Classifier]bool{}
	for _, cl := range classifiers {
		if seenClassifier[cl] {
			return nil, fmt.Errorf("exp: duplicate classifier axis value %q", cl)
		}
		seenClassifier[cl] = true
	}
	if len(g.Classifiers) > 0 {
		// An empty table behaves identically under every classifier
		// (the swarm families do not even install one), so an explicit
		// classifier axis without a nonzero rules value would be
		// silently ignored — error loudly instead, like every other
		// ignored-axis misuse.
		anyRules := false
		for _, rc := range ruleCounts {
			if rc > 0 {
				anyRules = true
			}
		}
		if !anyRules {
			return nil, fmt.Errorf("exp: the classifier axis needs a nonzero rules axis value (an empty table is classifier-independent)")
		}
	}
	seenModel := map[netem.ModelKind]bool{}
	for _, mdl := range models {
		if seenModel[mdl] {
			return nil, fmt.Errorf("exp: duplicate model axis value %q", mdl)
		}
		seenModel[mdl] = true
	}
	if err := distinctInts("peers", peers); err != nil {
		return nil, err
	}
	if err := distinctFloats("churn", churns); err != nil {
		return nil, err
	}
	for _, ch := range churns {
		if ch < 0 || ch >= 1 {
			return nil, fmt.Errorf("exp: churn fraction %g outside [0,1)", ch)
		}
	}
	seen := map[string]bool{}
	for _, c := range classes {
		if seen[c.Name] {
			return nil, fmt.Errorf("exp: duplicate class axis value %q", c.Name)
		}
		seen[c.Name] = true
	}
	seenSeed := map[int64]bool{}
	for _, s := range seeds {
		if seenSeed[s] {
			return nil, fmt.Errorf("exp: duplicate seed axis value %d", s)
		}
		seenSeed[s] = true
	}

	fileSize := g.FileSize
	if fileSize <= 0 {
		fileSize = 2 << 20
		if exp == ExpSnapshotSync {
			// The snapshot regime is defined by big transfers; a 2 MiB
			// default would be a single piece.
			fileSize = 16 << 20
		}
	}
	lookups := g.Lookups
	if lookups <= 0 {
		lookups = 100
	}
	fanout := g.Fanout
	if fanout <= 0 {
		fanout = 3
	}
	horizon := g.Horizon
	if horizon <= 0 {
		horizon = 6 * time.Hour
	}

	var cells []Cell
	for _, p := range peers {
		for _, ch := range churns {
			for _, cl := range classes {
				for _, mdl := range models {
					for wIdx, win := range windows {
						// The batch window lives inside the flow solver, so
						// pipe cells collapse to a single window=0 cell —
						// the expansion stays duplicate-free.
						if mdl != netem.ModelFlow {
							if wIdx > 0 {
								continue
							}
							win = 0
						}
						for _, sc := range scenarios {
							for _, rc := range ruleCounts {
								for cfIdx, cf := range classifiers {
									// An empty table behaves identically under
									// every classifier (the swarm families do
									// not even install one), so rules=0 emits
									// a single baseline cell — the expansion
									// stays duplicate-free.
									if rc == 0 && cfIdx > 0 {
										continue
									}
									for _, ps := range pieceSizes {
										for _, cc := range connCaps {
											for _, rt := range rates {
												for _, s := range seeds {
													cells = append(cells, Cell{
														Index: len(cells), Experiment: exp,
														Peers: p, Churn: ch, Class: cl, Model: mdl, Window: win,
														Scenario: sc, Rules: rc, Classifier: cf,
														PieceSize: ps, ConnCap: cc, Rate: rt, Seed: s,
														fileSize: fileSize, lookups: lookups,
														fanout: fanout, horizon: horizon,
													})
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

func defaultPeers(e Experiment) int {
	switch e {
	case ExpSched:
		return 100
	case ExpPing:
		return 2
	case ExpSnapshotSync:
		return 4 // few peers moving a huge file is the whole point
	default:
		return 16
	}
}

func distinctInts(axis string, vs []int) error {
	seen := map[int]bool{}
	for _, v := range vs {
		if seen[v] {
			return fmt.Errorf("exp: duplicate %s axis value %d", axis, v)
		}
		seen[v] = true
	}
	return nil
}

func distinctFloats(axis string, vs []float64) error {
	seen := map[float64]bool{}
	for _, v := range vs {
		if seen[v] {
			return fmt.Errorf("exp: duplicate %s axis value %g", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// CellResult is one cell's outcome. Exactly one of Snapshot and Err is
// set: a failing cell carries its error here and never poisons
// siblings.
type CellResult struct {
	Cell     Cell
	Snapshot *metrics.Snapshot
	Err      error
	Wall     time.Duration
}

// SweepResult is a completed sweep.
type SweepResult struct {
	Cells   []CellResult // in grid order, one per cell
	Merged  *metrics.Aggregate
	Failed  int
	Workers int // effective pool size after defaulting and clamping
	Wall    time.Duration
}

// Snapshots returns per-cell snapshots in grid order (nil for failed
// cells), ready for metrics.WriteSnapshotsCSV.
func (r *SweepResult) Snapshots() []*metrics.Snapshot {
	out := make([]*metrics.Snapshot, len(r.Cells))
	for i, c := range r.Cells {
		out[i] = c.Snapshot
	}
	return out
}

// Errs returns the failed cells' errors, in grid order.
func (r *SweepResult) Errs() []error {
	var out []error
	for _, c := range r.Cells {
		if c.Err != nil {
			out = append(out, fmt.Errorf("%s: %w", c.Cell, c.Err))
		}
	}
	return out
}

// RunSweep executes every cell of the grid on a bounded pool of
// workers (default: one per CPU). Each worker locks an OS thread and
// runs one kernel at a time; cells are deterministic in isolation, so
// the merged result is byte-identical for any worker count. A failing
// or panicking cell records its error and leaves every other cell
// untouched.
func RunSweep(g Grid, workers int) (*SweepResult, error) {
	return RunSweepProgress(g, workers, nil)
}

// RunSweepProgress is RunSweep with a completion callback: onCell runs
// after each cell finishes (successfully or not), serialized under an
// internal mutex, with the count of completed cells so far and the
// grid total — the hook the serve layer streams per-cell progress
// from. Cells still complete in nondeterministic wall-clock order; the
// returned SweepResult remains in grid order and worker-count
// independent. A nil onCell is RunSweep exactly.
func RunSweepProgress(g Grid, workers int, onCell func(completed, total int, res CellResult)) (*SweepResult, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	start := time.Now()
	results := make([]CellResult, len(cells))
	work := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	completed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One kernel run loop per OS thread: cheap context switches
			// between the loop and its simulated goroutines, and no
			// scheduler migration mid-cell.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for i := range work {
				results[i] = runCellGuarded(cells[i])
				if onCell != nil {
					progressMu.Lock()
					completed++
					onCell(completed, len(cells), results[i])
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()

	res := &SweepResult{Cells: results, Merged: metrics.NewAggregate(), Workers: workers, Wall: time.Since(start)}
	for _, c := range results { // grid order: worker-count independent
		if c.Err != nil {
			res.Failed++
			continue
		}
		res.Merged.Add(c.Snapshot)
	}
	return res, nil
}

// runCellGuarded runs one cell, converting a panic into that cell's
// error so one bad cell cannot take down the sweep.
func runCellGuarded(c Cell) (res CellResult) {
	start := time.Now()
	res.Cell = c
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Snapshot = nil
			res.Err = fmt.Errorf("cell panicked: %v", r)
		}
	}()
	res.Snapshot, res.Err = RunCell(c)
	return res
}

// RunCell executes one grid cell on a fresh kernel and returns its
// snapshot.
func RunCell(c Cell) (*metrics.Snapshot, error) {
	if c.Peers < 2 && c.Experiment != ExpSched {
		return nil, fmt.Errorf("population %d too small (need at least 2 peers)", c.Peers)
	}
	if c.Peers < 1 {
		return nil, fmt.Errorf("population %d too small (need at least 1 process)", c.Peers)
	}
	snap := metrics.NewSnapshot()
	snap.Label("experiment", string(c.Experiment))
	if c.Experiment == ExpScenario {
		snap.Label("scenario", c.Scenario)
	} else {
		snap.Label("peers", fmt.Sprintf("%d", c.Peers))
		snap.Label("churn", fmt.Sprintf("%g", c.Churn))
		snap.Label("class", c.Class.Name)
		snap.Label("model", c.Model.String())
		// Only the flow model has a solver to batch, so a window label
		// on a pipe cell would claim a knob that never ran; window=0
		// flow cells are the legacy per-event behavior and stay
		// label-compatible with older sweeps.
		if c.Window > 0 {
			snap.Label("window", c.Window.String())
		}
	}
	if c.Experiment.usesSnapshotAxes() {
		snap.Label("piece", fmt.Sprintf("%d", c.PieceSize))
		snap.Label("conncap", fmt.Sprintf("%d", c.ConnCap))
		snap.Label("rate", fmt.Sprintf("%d", c.Rate))
	}
	if c.Experiment.usesRulesAxis() {
		snap.Label("rules", fmt.Sprintf("%d", c.Rules))
		// The swarm families run with no firewall at all when Rules ==
		// 0 (fillerRules returns nil), so a classifier label there
		// would claim a classifier that never ran; ping always installs
		// the table, empty or not.
		if c.Rules > 0 || c.Experiment == ExpPing {
			snap.Label("classifier", c.Classifier.String())
		}
	}
	snap.Label("seed", fmt.Sprintf("%d", c.Seed))

	var err error
	switch c.Experiment {
	case ExpSwarm, ExpChurn:
		if c.Churn > 0 {
			err = runChurnCell(c, snap)
		} else {
			err = runSwarmCell(c, snap)
		}
	case ExpDHT:
		err = runDHTCell(c, snap)
	case ExpGossip:
		err = runGossipCell(c, snap)
	case ExpSched:
		err = runSchedCell(c, snap)
	case ExpScenario:
		err = runScenarioCell(c, snap)
	case ExpPing:
		err = runPingCell(c, snap)
	case ExpSnapshotSync:
		err = runSnapshotCell(c, snap)
	default:
		err = fmt.Errorf("unknown experiment %q", c.Experiment)
	}
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// runPingCell sweeps the Fig 6 measurement: RTT against rule-table
// size under the cell's classifier.
func runPingCell(c Cell, snap *metrics.Snapshot) error {
	out, err := RunPing(PingParams{
		Rules:      c.Rules,
		Classifier: c.Classifier,
		Class:      c.Class,
		Model:      c.Model,
		Window:     c.Window,
		Seed:       c.Seed,
	})
	if err != nil {
		return err
	}
	snap.Set("rtt-avg-ms", out.Stats.Avg.Seconds()*1000)
	snap.Set("rtt-min-ms", out.Stats.Min.Seconds()*1000)
	snap.Set("rtt-max-ms", out.Stats.Max.Seconds()*1000)
	snap.Count("fw-evals", out.Evals)
	snap.Count("fw-visited", out.Visited)
	return nil
}

func runSwarmCell(c Cell, snap *metrics.Snapshot) error {
	seeders := 2
	if c.Peers >= 40 {
		seeders = 4
	}
	out, err := RunSwarm(SwarmParams{
		Clients:       c.Peers,
		Seeders:       seeders,
		FileSize:      int64(c.fileSize),
		StartInterval: 2 * time.Second,
		Class:         c.Class,
		Model:         c.Model,
		Window:        c.Window,
		Rules:         c.Rules,
		Classifier:    c.Classifier,
		Seed:          c.Seed,
		Horizon:       c.horizon,
	})
	if err != nil {
		return err
	}
	done := 0
	var last float64
	for _, t := range out.Completions {
		if t > 0 {
			done++
			if t.Seconds() > last {
				last = t.Seconds()
			}
		}
	}
	snap.Set("clients-done", float64(done))
	snap.Set("done-fraction", float64(done)/float64(len(out.Completions)))
	snap.Set("last-completion-s", last)
	snap.Set("ended-s", out.EndedAt.Seconds())
	addKernelNetCounters(snap, out.Kernel.Events, out.Kernel.Switches, out.Kernel.Spawns,
		out.Net.MessagesSent, out.Net.MessagesDelivered, out.Net.MessagesDropped,
		out.Net.Retransmits, out.Net.BytesDelivered)
	return nil
}

// runSnapshotCell sweeps the snapshot-sync workload: completion time
// of a few rate-capped clients pulling a huge file in large pieces
// from a seeder plus a web seed.
func runSnapshotCell(c Cell, snap *metrics.Snapshot) error {
	out, err := RunSnapshotSync(SnapshotSyncParams{
		Clients:       c.Peers,
		Seeders:       1,
		WebSeeds:      1,
		FileSize:      int64(c.fileSize),
		PieceLength:   c.PieceSize,
		ConnCap:       c.ConnCap,
		UpRate:        c.Rate,
		DownRate:      c.Rate,
		StartInterval: time.Second,
		Class:         c.Class,
		Model:         c.Model,
		Window:        c.Window,
		Seed:          c.Seed,
		Horizon:       c.horizon,
	})
	if err != nil {
		return err
	}
	done := 0
	var last, sum float64
	for _, t := range out.Completions {
		if t > 0 {
			done++
			sum += t.Seconds()
			if t.Seconds() > last {
				last = t.Seconds()
			}
		}
	}
	snap.Set("clients-done", float64(done))
	snap.Set("done-fraction", float64(done)/float64(len(out.Completions)))
	snap.Set("last-completion-s", last)
	if done > 0 {
		snap.Set("mean-completion-s", sum/float64(done))
		// Per-client goodput over the slowest completion: the figure of
		// merit the piece-size × conn-cap × rate grid is swept for.
		snap.Set("goodput-mbps", float64(c.fileSize)*8/(last*1e6))
	}
	snap.Set("ended-s", out.EndedAt.Seconds())
	snap.Count("webseed-bytes", out.WebSeedBytes)
	addKernelNetCounters(snap, out.Kernel.Events, out.Kernel.Switches, out.Kernel.Spawns,
		out.Net.MessagesSent, out.Net.MessagesDelivered, out.Net.MessagesDropped,
		out.Net.Retransmits, out.Net.BytesDelivered)
	return nil
}

func runChurnCell(c Cell, snap *metrics.Snapshot) error {
	out, err := RunChurnSwarm(ChurnSwarmParams{
		Clients:       c.Peers,
		Seeders:       2,
		FileSize:      int64(c.fileSize),
		Class:         c.Class,
		StartInterval: 2 * time.Second,
		ChurnFraction: c.Churn,
		Session:       DefaultChurnSwarmParams().Session,
		Downtime:      DefaultChurnSwarmParams().Downtime,
		Model:         c.Model,
		Window:        c.Window,
		Rules:         c.Rules,
		Classifier:    c.Classifier,
		Seed:          c.Seed,
		Horizon:       c.horizon,
	})
	if err != nil {
		return err
	}
	total := out.StableTotal + out.ChurnTotal
	snap.Set("clients-done", float64(out.StableDone+out.ChurnDone))
	snap.Set("done-fraction", float64(out.StableDone+out.ChurnDone)/float64(total))
	snap.Set("stable-done", float64(out.StableDone))
	snap.Set("churn-done", float64(out.ChurnDone))
	snap.Set("ended-s", out.EndedAt.Seconds())
	snap.Count("arrivals", uint64(out.Arrivals))
	snap.Count("departures", uint64(out.Departures))
	return nil
}

func runDHTCell(c Cell, snap *metrics.Snapshot) error {
	pt, err := DHTRingModel(c.Peers, c.lookups, c.Class, c.Model, c.Seed)
	if err != nil {
		return err
	}
	snap.Set("avg-hops", pt.AvgHops)
	snap.Set("avg-latency-ms", pt.AvgLatency.Seconds()*1000)
	snap.Set("p90-latency-ms", pt.P90Latency.Seconds()*1000)
	snap.Count("timeouts", pt.Timeouts)
	return nil
}

func runGossipCell(c Cell, snap *metrics.Snapshot) error {
	pt, err := GossipSpreadModel(c.Peers, c.fanout, c.Class, c.Model, c.Seed)
	if err != nil {
		return err
	}
	snap.Set("coverage", pt.Coverage)
	snap.Set("t50-s", pt.T50.Seconds())
	snap.Set("t100-s", pt.T100.Seconds())
	snap.Count("pushes", pt.Pushes)
	return nil
}

// runScenarioCell runs one corpus scenario under the cell's seed and
// copies its workload metrics into the cell snapshot.
func runScenarioCell(c Cell, snap *metrics.Snapshot) error {
	sp, ok := scenario.ByName(c.Scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q", c.Scenario)
	}
	res, err := scenario.Run(&sp, scenario.Options{Seed: c.Seed})
	if err != nil {
		return err
	}
	snap.Label("workload", sp.Workload.Kind)
	snap.Label("model", res.Model.String())
	for k, v := range res.Snapshot.Values {
		snap.Set(k, v)
	}
	for k, v := range res.Snapshot.Counters {
		snap.Count(k, v)
	}
	return nil
}

func runSchedCell(c Cell, snap *metrics.Snapshot) error {
	for _, kind := range sched.Kinds {
		cfg := sched.DefaultConfig(kind)
		cfg.Seed = c.Seed
		res := sched.Run(cfg, sched.CPUBoundJobs(c.Peers))
		snap.Set("exec-avg-s/"+kind.String(), res.AvgExecTime().Seconds())
		snap.Set("makespan-s/"+kind.String(), res.Makespan.Seconds())
	}
	return nil
}

func addKernelNetCounters(snap *metrics.Snapshot, events, switches, spawns,
	sent, delivered, dropped, retrans, bytes uint64) {
	snap.Count("kernel-events", events)
	snap.Count("kernel-switches", switches)
	snap.Count("kernel-spawns", spawns)
	snap.Count("net-sent", sent)
	snap.Count("net-delivered", delivered)
	snap.Count("net-dropped", dropped)
	snap.Count("net-retransmits", retrans)
	snap.Count("net-bytes", bytes)
}
