package exp

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/topo"
)

// TestGridExpansion checks the cross product is exhaustive,
// duplicate-free and in deterministic grid order.
func TestGridExpansion(t *testing.T) {
	g := Grid{
		Experiment: ExpDHT,
		Peers:      []int{4, 8, 16},
		Classes:    []topo.LinkClass{topo.LAN, topo.DSL},
		Seeds:      []int64{1, 2},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*2*2 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		key := c.String()
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
	}
	// Every axis combination must appear (exhaustive).
	for _, p := range g.Peers {
		for _, cl := range g.Classes {
			for _, s := range g.Seeds {
				want := Cell{Experiment: ExpDHT, Peers: p, Class: cl, Seed: s}.String()
				if !seen[want] {
					t.Fatalf("missing cell %s", want)
				}
			}
		}
	}
	// Row-major order: seed varies fastest, peers slowest.
	if cells[0].Peers != 4 || cells[0].Seed != 1 || cells[1].Seed != 2 {
		t.Fatalf("unexpected order: %v then %v", cells[0], cells[1])
	}
	if cells[len(cells)-1].Peers != 16 {
		t.Fatalf("last cell %v should have the largest population", cells[len(cells)-1])
	}
}

// TestGridDefaults checks a zero-ish grid is exactly one cell.
func TestGridDefaults(t *testing.T) {
	cells, err := Grid{}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("default grid expanded to %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Experiment != ExpSwarm || c.Peers != 16 || c.Churn != 0 || c.Class.Name != "dsl" || c.Seed != 1 {
		t.Fatalf("default cell = %v", c)
	}
	// The churn experiment defaults to a churning population.
	cells, err = Grid{Experiment: ExpChurn}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Churn != 0.5 {
		t.Fatalf("churn default = %g, want 0.5", cells[0].Churn)
	}
}

// TestGridRejectsDuplicates checks that repeated axis values and
// multi-valued ignored axes are rejected rather than silently
// producing duplicate cells.
func TestGridRejectsDuplicates(t *testing.T) {
	cases := []Grid{
		{Experiment: ExpDHT, Peers: []int{8, 8}},
		{Experiment: ExpDHT, Seeds: []int64{1, 1}},
		{Experiment: ExpSwarm, Churn: []float64{0.2, 0.2}},
		{Experiment: ExpDHT, Classes: []topo.LinkClass{topo.DSL, topo.DSL}},
		{Experiment: ExpDHT, Churn: []float64{0, 0.5}},                           // dht ignores churn
		{Experiment: ExpSched, Classes: []topo.LinkClass{topo.DSL, topo.Campus}}, // sched ignores class
		{Experiment: ExpChurn, Churn: []float64{1.5}},                            // churn outside [0,1)
		{Experiment: ExpChurn, Churn: []float64{-0.5}},
		{Experiment: "bogus"},
		{Experiment: ExpDHT, Windows: []time.Duration{0, 50 * time.Millisecond}}, // dht ignores the window
		{Experiment: ExpSwarm, Windows: []time.Duration{time.Millisecond, time.Millisecond}},
		{Experiment: ExpSwarm, Windows: []time.Duration{-time.Millisecond}},
		// A positive window with no flow model on the models axis has no
		// solver to batch.
		{Experiment: ExpSwarm, Windows: []time.Duration{50 * time.Millisecond}},
		{Experiment: ExpSwarm, Windows: []time.Duration{50 * time.Millisecond},
			Models: []netem.ModelKind{netem.ModelPipe}},
	}
	for i, g := range cases {
		if _, err := g.Cells(); err == nil {
			t.Errorf("case %d: expected error, got none", i)
		}
	}
}

// TestGridWindowAxis expands a models × windows grid: flow cells carry
// every window, pipe cells collapse to a single window=0 cell instead
// of duplicating per window value.
func TestGridWindowAxis(t *testing.T) {
	g := Grid{
		Experiment: ExpSwarm,
		Models:     []netem.ModelKind{netem.ModelPipe, netem.ModelFlow},
		Windows:    []time.Duration{0, 50 * time.Millisecond, 250 * time.Millisecond},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// 1 pipe cell + 3 flow cells.
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4: %v", len(cells), cells)
	}
	var pipe, flow, windowed int
	for _, c := range cells {
		switch c.Model {
		case netem.ModelPipe:
			pipe++
			if c.Window != 0 {
				t.Fatalf("pipe cell carries window %v: %s", c.Window, c)
			}
		case netem.ModelFlow:
			flow++
			if c.Window > 0 {
				windowed++
				if !strings.Contains(c.String(), "window="+c.Window.String()) {
					t.Fatalf("windowed cell label misses the window: %s", c)
				}
			}
		}
	}
	if pipe != 1 || flow != 3 || windowed != 2 {
		t.Fatalf("pipe=%d flow=%d windowed=%d, want 1/3/2", pipe, flow, windowed)
	}
	// Window=0 cells keep the pre-axis label so existing result rows
	// stay comparable.
	if s := cells[0].String(); strings.Contains(s, "window=") {
		t.Fatalf("window=0 cell label changed: %s", s)
	}
}

// sweepCSV renders a sweep's per-cell snapshots to CSV bytes.
func sweepCSV(t *testing.T, r *SweepResult) string {
	t.Helper()
	var b strings.Builder
	if err := metrics.WriteSnapshotsCSV(&b, r.Snapshots()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSweepWorkerCountIndependence runs the same grid with a serial
// pool and a wide pool: per-cell snapshots and the merged aggregate
// must be identical, because cells are independent kernels.
func TestSweepWorkerCountIndependence(t *testing.T) {
	g := Grid{
		Experiment: ExpDHT,
		Peers:      []int{4, 6},
		Seeds:      []int64{1, 2},
		Lookups:    10,
	}
	serial, err := RunSweep(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunSweep(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Failed != 0 || wide.Failed != 0 {
		t.Fatalf("failures: serial %v, wide %v", serial.Errs(), wide.Errs())
	}
	if a, b := sweepCSV(t, serial), sweepCSV(t, wide); a != b {
		t.Fatalf("per-cell results depend on worker count:\nserial:\n%s\nwide:\n%s", a, b)
	}
	if !reflect.DeepEqual(serial.Merged, wide.Merged) {
		t.Fatalf("merged aggregates depend on worker count:\nserial %+v\nwide %+v",
			serial.Merged, wide.Merged)
	}
	if serial.Merged.Cells != 4 {
		t.Fatalf("merged %d cells, want 4", serial.Merged.Cells)
	}
}

// TestSweepFailingCellIsolation checks a failing cell surfaces its
// error without poisoning sibling cells.
func TestSweepFailingCellIsolation(t *testing.T) {
	g := Grid{
		Experiment: ExpDHT,
		Peers:      []int{1, 4}, // population 1 cannot form a ring: cell error
		Lookups:    10,
	}
	res, err := RunSweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (errs: %v)", res.Failed, res.Errs())
	}
	if res.Cells[0].Err == nil || res.Cells[0].Snapshot != nil {
		t.Fatalf("failing cell: err=%v snapshot=%v", res.Cells[0].Err, res.Cells[0].Snapshot)
	}
	if res.Cells[1].Err != nil || res.Cells[1].Snapshot == nil {
		t.Fatalf("sibling cell poisoned: err=%v", res.Cells[1].Err)
	}
	if res.Merged.Cells != 1 {
		t.Fatalf("merged %d cells, want 1", res.Merged.Cells)
	}
	errs := res.Errs()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "dht[peers=1") {
		t.Fatalf("errors should identify the failing cell: %v", errs)
	}
}

// TestSweepSchedCell smoke-tests the sched adapter end to end and the
// aggregate table rendering.
func TestSweepSchedCell(t *testing.T) {
	g := Grid{Experiment: ExpSched, Peers: []int{20, 40}, Seeds: []int64{1}}
	res, err := RunSweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatal(res.Errs())
	}
	sum := res.Merged.Summary("exec-avg-s/Linux 2.6")
	if sum.N != 2 || sum.Min <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	var b strings.Builder
	if err := res.Merged.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "exec-avg-s") {
		t.Fatalf("table missing measurements:\n%s", b.String())
	}
}

// TestGridSnapshotAxes pins the snapshot-sync axis wiring: defaults
// expand to one Erigon-shaped cell, the new axes cross-multiply, and
// every other experiment rejects them loudly.
func TestGridSnapshotAxes(t *testing.T) {
	cells, err := Grid{Experiment: ExpSnapshotSync}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("default snapshot grid = %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Peers != 4 || c.PieceSize != 2<<20 || c.ConnCap != 5 || c.Rate != 0 {
		t.Fatalf("default cell = %+v", c)
	}
	if c.fileSize != 16<<20 {
		t.Fatalf("default snapshot file size = %d, want 16 MiB", c.fileSize)
	}
	cells, err = Grid{
		Experiment: ExpSnapshotSync,
		PieceSizes: []int{512 * 1024, 2 << 20},
		ConnCaps:   []int{2, 5},
		Rates:      []int64{0, 256 * 1024},
	}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("2x2x2 snapshot grid = %d cells, want 8", len(cells))
	}
	if _, err := (Grid{Experiment: ExpSwarm, PieceSizes: []int{1 << 20}}).Cells(); err == nil {
		t.Fatal("swarm must reject the piece-size axis")
	}
	if _, err := (Grid{Experiment: ExpDHT, Rates: []int64{1024}}).Cells(); err == nil {
		t.Fatal("dht must reject the rate axis")
	}
	if _, err := (Grid{Experiment: ExpSnapshotSync, ConnCaps: []int{0}}).Cells(); err == nil {
		t.Fatal("non-positive conn cap must be rejected")
	}
}

// TestSweepSnapshotCellsDeterministic runs a small rate-capped
// snapshot-sync grid serially and in parallel: the per-cell results
// must be identical for any worker count (rate limiters are virtual
// time, so metering cannot observe wall-clock scheduling), every cell
// must complete, and the web seed must have carried traffic.
func TestSweepSnapshotCellsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot cells are slow")
	}
	g := Grid{
		Experiment: ExpSnapshotSync,
		Peers:      []int{2},
		FileSize:   2 << 20,
		PieceSizes: []int{512 * 1024},
		ConnCaps:   []int{2},
		// The capped value sits well under the DSL downlink (~256 KiB/s),
		// so the limiter — not the link — is the bottleneck.
		Rates:   []int64{0, 64 * 1024},
		Horizon: time.Hour,
	}
	serial, err := RunSweep(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunSweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Failed != 0 || wide.Failed != 0 {
		t.Fatalf("failures: serial %v, wide %v", serial.Errs(), wide.Errs())
	}
	if a, b := sweepCSV(t, serial), sweepCSV(t, wide); a != b {
		t.Fatalf("snapshot cells depend on worker count:\nserial:\n%s\nwide:\n%s", a, b)
	}
	for i, cr := range serial.Cells {
		if cr.Snapshot.Values["done-fraction"] != 1 {
			t.Fatalf("cell %d incomplete: %v", i, cr.Snapshot.Values)
		}
		if cr.Snapshot.Counters["webseed-bytes"] == 0 {
			t.Fatalf("cell %d: web seed served nothing", i)
		}
	}
	// The capped cell must be strictly slower than the uncapped one.
	free := serial.Cells[0].Snapshot.Values["last-completion-s"]
	capped := serial.Cells[1].Snapshot.Values["last-completion-s"]
	if capped <= free {
		t.Fatalf("rate cap had no effect: capped %.2fs vs free %.2fs", capped, free)
	}
}

// TestSweepSwarmAndChurnCells runs one tiny swarm cell and one tiny
// churn cell through the public adapter, checking the swarm-family
// routing on the churn axis.
func TestSweepSwarmAndChurnCells(t *testing.T) {
	if testing.Short() {
		t.Skip("swarm cells are slow")
	}
	g := Grid{
		Experiment: ExpSwarm,
		Peers:      []int{6},
		Churn:      []float64{0, 0.5},
		FileSize:   1 << 20,
		Horizon:    4 * time.Hour,
	}
	res, err := RunSweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatal(res.Errs())
	}
	plain, churned := res.Cells[0].Snapshot, res.Cells[1].Snapshot
	if plain.Values["done-fraction"] != 1 {
		t.Fatalf("plain swarm incomplete: %v", plain.Values)
	}
	if _, ok := churned.Counters["arrivals"]; !ok {
		t.Fatalf("churn cell did not run the churn variant: %v", churned.Counters)
	}
	if plain.Counters["kernel-events"] == 0 {
		t.Fatal("swarm cell recorded no kernel activity")
	}
}
