package flow

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// refMaxMin recomputes the max-min fair allocation of every live flow
// from scratch, independently of the engine's incremental state:
// textbook progressive filling over a snapshot of the links↔flows
// graph. The allocation is unique, so any correct solver must agree
// with it up to floating-point accumulation order.
func refMaxMin(m *Model) map[*xfer]float64 {
	var links []*link
	for _, l := range m.links {
		if len(l.flows) > 0 {
			links = append(links, l)
		}
	}
	sort.Slice(links, func(i, j int) bool { return links[i].id < links[j].id })
	residual := map[*link]float64{}
	active := map[*link]int{}
	rates := map[*xfer]float64{}
	unfrozen := 0
	seen := map[*xfer]bool{}
	for _, l := range links {
		if bw := l.pipe.Config().Bandwidth; bw <= 0 {
			residual[l] = math.Inf(1)
		} else {
			residual[l] = float64(bw)
		}
		active[l] = len(l.flows)
		for _, f := range l.flows {
			if !seen[f] {
				seen[f] = true
				unfrozen++
			}
		}
	}
	for unfrozen > 0 {
		var bott *link
		var share float64
		for _, l := range links {
			if active[l] == 0 {
				continue
			}
			if s := residual[l] / float64(active[l]); bott == nil || s < share {
				bott, share = l, s
			}
		}
		if bott == nil {
			break
		}
		if share < 0 {
			share = 0
		}
		for _, f := range bott.flows {
			if _, done := rates[f]; done {
				continue
			}
			rates[f] = share
			unfrozen--
			for _, l2 := range f.links {
				if !math.IsInf(share, 1) {
					residual[l2] -= share
				}
				active[l2]--
			}
		}
	}
	return rates
}

func closeRel(got, want, eps float64) bool {
	if got == want {
		return true
	}
	scale := math.Abs(want)
	if s := math.Abs(got); s > scale {
		scale = s
	}
	return math.Abs(got-want) <= eps*scale
}

// TestIncrementalMatchesScratch is the property test for the
// incremental re-leveler: randomized bipartite graphs (flows over
// random pipe subsets, random arrival times and sizes, departures as
// flows drain) driven through the batched solver, checked at sampling
// instants against a from-scratch progressive filling of the live
// graph. Worker counts vary with the seed, so the parallel component
// path is exercised too.
func TestIncrementalMatchesScratch(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := sim.New(seed)
			m := NewWithConfig(k, Config{
				Window:  time.Duration(1+rng.Intn(40)) * time.Millisecond,
				Workers: 1 + rng.Intn(4),
			})
			pipes := make([]*netem.Pipe, 2+rng.Intn(5))
			for i := range pipes {
				pipes[i] = netem.NewPipe(k, fmt.Sprintf("p%d", i), netem.PipeConfig{
					Bandwidth: int64(1+rng.Intn(40)) * netem.Mbps / 4,
				})
			}
			for i := 0; i < 60+rng.Intn(60); i++ {
				var path []*netem.Pipe
				for _, p := range pipes {
					if rng.Intn(3) == 0 {
						path = append(path, p)
					}
				}
				if len(path) == 0 {
					path = append(path, pipes[rng.Intn(len(pipes))])
				}
				size := 50_000 + rng.Intn(2_000_000)
				at := sim.Time(rng.Int63n(int64(10 * time.Second)))
				k.At(at, func() {
					m.Transfer(k.Now(), size, path, k.Rand(), func(sim.Time, bool) {})
				})
			}
			for s := 1; s <= 24; s++ {
				at := sim.Time(int64(s) * int64(500*time.Millisecond))
				k.At(at, func() {
					m.FlushBatch()
					want := refMaxMin(m)
					for f, w := range want {
						if f.rate < 0 {
							t.Fatalf("at %v: flow %d unrated after flush", k.Now(), f.id)
						}
						if !closeRel(f.rate, w, 1e-9) {
							t.Fatalf("at %v: flow %d rate %v bps, want %v bps (%d flows live)",
								k.Now(), f.id, f.rate, w, len(want))
						}
					}
				})
			}
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if m.stats.Completed == 0 {
				t.Fatal("workload completed no flows; property vacuous")
			}
		})
	}
}

// batchedWorkload drives a multi-component churn workload through a
// fixed 50 ms window and returns the rendered trace plus exit times —
// the full observable behavior — and the engine stats.
func batchedWorkload(t *testing.T, workers int) (string, []sim.Time, Stats) {
	t.Helper()
	k := sim.New(11)
	m := NewWithConfig(k, Config{Window: 50 * time.Millisecond, Workers: workers})
	log := trace.New(0)
	m.SetTrace(log)
	// Four disjoint clusters of two pipes each: flows stay inside one
	// cluster, so every flush sees several independent components.
	var pipes []*netem.Pipe
	for i := 0; i < 8; i++ {
		pipes = append(pipes, netem.NewPipe(k, fmt.Sprintf("c%dp%d", i/2, i%2), netem.PipeConfig{
			Bandwidth: int64(i+1) * netem.Mbps, Delay: time.Millisecond,
		}))
	}
	rng := rand.New(rand.NewSource(5))
	var exits []sim.Time
	for i := 0; i < 120; i++ {
		cluster := rng.Intn(4)
		path := []*netem.Pipe{pipes[2*cluster]}
		if rng.Intn(2) == 0 {
			path = append(path, pipes[2*cluster+1])
		}
		size := 10_000 + rng.Intn(1<<19)
		at := sim.Time(rng.Int63n(int64(4 * time.Second)))
		k.At(at, func() {
			m.Transfer(k.Now(), size, path, k.Rand(), func(e sim.Time, ok bool) {
				exits = append(exits, e)
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := log.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), exits, m.Stats()
}

// TestBatchDeterminismAcrossWorkers: for a fixed window, the rendered
// trace, every exit time and every counter are identical whatever the
// worker count — parallelism only touches disjoint components and the
// results are applied in deterministic component order.
func TestBatchDeterminismAcrossWorkers(t *testing.T) {
	refTrace, refExits, refStats := batchedWorkload(t, 1)
	if refStats.Flushes == 0 || refStats.Solves == 0 {
		t.Fatalf("workload never flushed (stats %+v); determinism check vacuous", refStats)
	}
	for _, workers := range []int{2, 4, 0} {
		tr, exits, stats := batchedWorkload(t, workers)
		if tr != refTrace {
			t.Fatalf("workers=%d: trace differs from workers=1", workers)
		}
		if len(exits) != len(refExits) {
			t.Fatalf("workers=%d: %d exits, want %d", workers, len(exits), len(refExits))
		}
		for i := range exits {
			if exits[i] != refExits[i] {
				t.Fatalf("workers=%d: exit %d = %v, want %v", workers, i, exits[i], refExits[i])
			}
		}
		if stats != refStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, refStats)
		}
	}
}

// TestBatchCoalescesSolves: several arrivals inside one window drain in
// a single solve at the window boundary, and the flows still split the
// link fairly from that instant.
func TestBatchCoalescesSolves(t *testing.T) {
	k := sim.New(1)
	m := NewWithConfig(k, Config{Window: 100 * time.Millisecond})
	p := netem.NewPipe(k, "p", netem.PipeConfig{Bandwidth: 4 * netem.Mbps})
	for i := 0; i < 4; i++ {
		at := sim.Time(int64(i) * int64(10*time.Millisecond))
		k.At(at, func() {
			m.Transfer(k.Now(), 1<<20, []*netem.Pipe{p}, k.Rand(), func(sim.Time, bool) {})
		})
	}
	// Just past the boundary (first arrival at 0 + 100 ms window): one
	// flush, one solve, all four flows leveled at cap/4.
	k.At(sim.Time(int64(101*time.Millisecond)), func() {
		st := m.Stats()
		if st.Flushes != 1 || st.Solves != 1 {
			t.Errorf("at boundary: %d flushes / %d solves, want 1 / 1", st.Flushes, st.Solves)
		}
		if st.Batched != 4 {
			t.Errorf("batched events = %d, want 4", st.Batched)
		}
		for _, f := range m.links[p].flows {
			if f.rate != mbps {
				t.Errorf("flow %d rate = %v, want %v", f.id, f.rate, mbps)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Completed != 4 {
		t.Fatalf("completed %d flows, want 4", st.Completed)
	}
}

// TestBatchedChurnSolveRatio is the incrementality bound the tentpole
// targets: a single shared bottleneck (components=1) under steady
// churn must re-level far fewer flows per churn event than the
// population, because one window's worth of churn drains in one solve.
func TestBatchedChurnSolveRatio(t *testing.T) {
	const population = 256
	k := sim.New(3)
	m := NewWithConfig(k, Config{Window: 250 * time.Millisecond})
	p := netem.NewPipe(k, "shared", netem.PipeConfig{Bandwidth: 100 * netem.Mbps})
	rng := rand.New(rand.NewSource(42))
	churned := 0
	var spawn func()
	spawn = func() {
		size := 32*1024 + rng.Intn(256*1024)
		m.Transfer(k.Now(), size, []*netem.Pipe{p}, k.Rand(), func(sim.Time, bool) {
			if churned++; churned < 2000 {
				spawn()
			}
		})
	}
	for i := 0; i < population; i++ {
		spawn()
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	ratio := float64(st.SolvedFlows) / float64(st.Started+st.Completed)
	// Per-event solving re-levels the whole population every churn op
	// (ratio ≈ population/2 ≈ 128 here, counting both edges); batching
	// amortizes one full re-level over a window's worth of events.
	if ratio > population/4 {
		t.Fatalf("SolvedFlows/(Started+Completed) = %.1f, want <= %d (stats %+v)",
			ratio, population/4, st)
	}
	if st.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	t.Logf("ratio %.1f flows/churn-op over %d flushes", ratio, st.Flushes)
}

// TestReconfigureFlushesBatch: a pipe reconfiguration mid-window does
// not wait for the boundary — the batch drains immediately, so the
// re-solve under the new capacity observes settled rates and pending
// arrivals get leveled at the reconfigure instant.
func TestReconfigureFlushesBatch(t *testing.T) {
	k := sim.New(1)
	m := NewWithConfig(k, Config{Window: 10 * time.Second})
	p := netem.NewPipe(k, "p", netem.PipeConfig{Bandwidth: 8 * netem.Mbps})
	start(t, m, k, 1<<20, p)
	start(t, m, k, 1<<20, p)
	k.At(sim.Time(int64(time.Second)), func() {
		if st := m.Stats(); st.Flushes != 0 {
			t.Errorf("flushed before the window with no reconfigure: %+v", st)
		}
		cfg := p.Config()
		cfg.Bandwidth = 2 * netem.Mbps
		p.Reconfigure(cfg)
		m.PipeReconfigured(p)
		st := m.Stats()
		if st.Flushes != 1 {
			t.Errorf("reconfigure flushed %d batches, want 1", st.Flushes)
		}
		for _, f := range m.links[p].flows {
			if f.rate != mbps {
				t.Errorf("flow %d rate = %v after degrade, want %v", f.id, f.rate, mbps)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Completed != 2 {
		t.Fatalf("completed %d flows, want 2", st.Completed)
	}
}

// TestQueueAdmissionFreshLink is the regression test for the
// history-dependent queue admission: a message larger than QueueBytes
// must be refused whether or not any flow ever crossed the pipe —
// admission depends on the backlog (state), not on whether the link
// exists in the engine's map (history).
func TestQueueAdmissionFreshLink(t *testing.T) {
	cfg := netem.PipeConfig{Bandwidth: netem.Mbps, QueueBytes: 10 * 1024}

	// Fresh pipe, never used: the oversized message must still bounce.
	k := sim.New(1)
	m := New(k)
	p := netem.NewPipe(k, "fresh", cfg)
	dropped := false
	m.Transfer(0, 20*1024, []*netem.Pipe{p}, k.Rand(), func(_ sim.Time, ok bool) {
		dropped = !ok
	})
	if !dropped {
		t.Fatal("oversized message admitted on a never-used pipe")
	}
	if st := m.Stats(); st.Overflows != 1 {
		t.Fatalf("overflows = %d, want 1", st.Overflows)
	}
	if st := p.Stats(); st.Overflows != 1 {
		t.Fatalf("pipe overflows = %d, want 1", st.Overflows)
	}

	// Same verdict once the link has history (an earlier small
	// transfer created it and already drained).
	k2 := sim.New(1)
	m2 := New(k2)
	p2 := netem.NewPipe(k2, "used", cfg)
	start(t, m2, k2, 1024, p2)
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	dropped = false
	m2.Transfer(k2.Now(), 20*1024, []*netem.Pipe{p2}, k2.Rand(), func(_ sim.Time, ok bool) {
		dropped = !ok
	})
	if !dropped {
		t.Fatal("oversized message admitted on a drained pipe")
	}
}

// TestMTUAdmissionParity is the regression test for MTU-chunked queue
// admission: the flow model's entry verdict must match the pipe
// model's packet-granularity verdict (Pipe.schedulePackets) for a
// message arriving at one instant on an idle link — including the
// interaction where lost packets claim no queue space. Both models
// draw losses from identical RNG streams, so the verdicts must agree
// trial by trial.
func TestMTUAdmissionParity(t *testing.T) {
	gen := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		cfg := netem.PipeConfig{
			Bandwidth:  netem.Mbps,
			MTU:        500 + gen.Intn(1500),
			QueueBytes: int64(2000 + gen.Intn(20000)),
		}
		if gen.Intn(2) == 0 {
			cfg.Loss = 0.7 * gen.Float64()
		}
		size := 500 + gen.Intn(40000)
		seed := gen.Int63()

		kp := sim.New(1)
		pipe := netem.NewPipe(kp, "pipe", cfg)
		_, pipeOK := pipe.ScheduleAt(0, size, rand.New(rand.NewSource(seed)))

		kf := sim.New(1)
		m := New(kf)
		fp := netem.NewPipe(kf, "flow", cfg)
		flowOK := false
		m.Transfer(0, size, []*netem.Pipe{fp}, rand.New(rand.NewSource(seed)), func(_ sim.Time, ok bool) {
			flowOK = ok
		})
		if !flowOK {
			// Admission verdicts are synchronous; an admitted flow just
			// has no completion yet.
			flowOK = m.InFlight() == 1
		}
		if pipeOK != flowOK {
			t.Fatalf("trial %d: pipe admits=%v flow admits=%v (size=%d cfg=%+v seed=%d)",
				trial, pipeOK, flowOK, size, cfg, seed)
		}
	}
}

// TestMTULossFreesQueueSpace pins the admission interaction directly:
// with loss=1 every packet of an oversized message is lost — the
// verdict is a loss drop, never an overflow, because lost packets
// claim no queue space.
func TestMTULossFreesQueueSpace(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	p := netem.NewPipe(k, "lossy", netem.PipeConfig{
		Bandwidth: netem.Mbps, MTU: 1000, QueueBytes: 4000, Loss: 1,
	})
	ok := true
	m.Transfer(0, 20_000, []*netem.Pipe{p}, k.Rand(), func(_ sim.Time, o bool) { ok = o })
	if ok {
		t.Fatal("message survived loss=1")
	}
	st := m.Stats()
	if st.Lost != 1 || st.Overflows != 0 {
		t.Fatalf("stats = %+v, want 1 loss and 0 overflows", st)
	}
}
