package flow_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/netem"
	"repro/internal/sim"
)

// The flow model's fidelity anchor: with no sharing — at most one flow
// in flight, at most one bandwidth-constrained pipe per path — the
// fluid model degenerates to the pipe model's serialization + delay
// schedule, byte for byte, including the loss and jitter draw
// sequence. Randomized path shapes, sizes, losses and jitters all
// must agree between the two models under the same seed.

// pathConfig is one randomized scenario: a pipe path with at most one
// bandwidth-constrained pipe, and a message arrival plan that never
// overlaps two messages (send i+1 only after i has fully exited).
type pathConfig struct {
	pipes []netem.PipeConfig
	sizes []int
}

// genConfig draws a scenario from rng.
func genConfig(rng *rand.Rand) pathConfig {
	var pc pathConfig
	nPipes := 1 + rng.Intn(3)
	constrained := rng.Intn(nPipes)
	for i := 0; i < nPipes; i++ {
		cfg := netem.PipeConfig{Delay: time.Duration(rng.Intn(100)) * time.Millisecond}
		if rng.Intn(2) == 0 {
			cfg.Jitter = time.Duration(1+rng.Intn(10)) * time.Millisecond
		}
		if rng.Intn(4) == 0 {
			cfg.Loss = 0.2 * rng.Float64()
		}
		if i == constrained {
			cfg.Bandwidth = int64(64+rng.Intn(2048)) * netem.Kbps
		}
		pc.pipes = append(pc.pipes, cfg)
	}
	nMsgs := 5 + rng.Intn(20)
	for i := 0; i < nMsgs; i++ {
		pc.sizes = append(pc.sizes, 64+rng.Intn(64*1024))
	}
	return pc
}

// runSchedule replays the scenario under one model kind and returns
// the per-message exit instants (-1 = dropped). Messages are strictly
// serialized: each is sent at a fixed instant far past the previous
// one's worst-case exit, so no two flows ever share a link.
func runSchedule(t *testing.T, pc pathConfig, kind netem.ModelKind, seed int64) []sim.Time {
	t.Helper()
	k := sim.New(seed)
	var model netem.LinkModel
	if kind == netem.ModelFlow {
		model = flow.New(k)
	} else {
		model = netem.NewPipeModel(k)
	}
	var pipes []*netem.Pipe
	for i, cfg := range pc.pipes {
		pipes = append(pipes, netem.NewPipe(k, fmt.Sprintf("p%d", i), cfg))
	}
	// Worst case per message: 64 KiB at 64 kbps ≈ 8.4 s plus delays.
	const gap = 30 * time.Second
	exits := make([]sim.Time, len(pc.sizes))
	for i, size := range pc.sizes {
		i, size := i, size
		k.At(sim.Time(i)*sim.Time(gap), func() {
			model.Transfer(k.Now(), size, pipes, k.Rand(), func(exit sim.Time, ok bool) {
				if !ok {
					exits[i] = -1
					return
				}
				exits[i] = exit
			})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return exits
}

// TestFlowPipeEquivalence is the no-sharing property test from the
// issue: for fixed seeds, the flow model's completion times are
// byte-identical to the pipe model's serialization + delay schedule.
func TestFlowPipeEquivalence(t *testing.T) {
	meta := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 40; trial++ {
		pc := genConfig(meta)
		seed := meta.Int63()
		pipeExits := runSchedule(t, pc, netem.ModelPipe, seed)
		flowExits := runSchedule(t, pc, netem.ModelFlow, seed)
		for i := range pipeExits {
			if pipeExits[i] != flowExits[i] {
				t.Fatalf("trial %d (%+v): message %d exits differ: pipe=%v flow=%v",
					trial, pc.pipes, i, pipeExits[i], flowExits[i])
			}
		}
	}
}

// TestFlowPipeEquivalenceUnconstrained: a path with no bandwidth limit
// at all is the inline fast path in both models.
func TestFlowPipeEquivalenceUnconstrained(t *testing.T) {
	pc := pathConfig{
		pipes: []netem.PipeConfig{{Delay: 10 * time.Millisecond}, {Delay: 20 * time.Millisecond}},
		sizes: []int{100, 2000, 30000},
	}
	pipeExits := runSchedule(t, pc, netem.ModelPipe, 5)
	flowExits := runSchedule(t, pc, netem.ModelFlow, 5)
	for i := range pipeExits {
		if pipeExits[i] != flowExits[i] {
			t.Fatalf("message %d exits differ: pipe=%v flow=%v", i, pipeExits[i], flowExits[i])
		}
	}
}
