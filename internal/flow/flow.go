// Package flow implements a flow-level max-min fair bandwidth-sharing
// link model — the contention-aware alternative to netem's Dummynet
// pipe model.
//
// The pipe model charges each message against one pipe in isolation:
// a thousand peers uploading through the same bottleneck never
// contend, every transfer sees the full configured bandwidth. This
// package models each in-flight transfer as a *fluid flow* over the
// bandwidth-constrained pipes of its path and splits every pipe's
// capacity among the flows crossing it by progressive filling (the
// classic max-min fair allocation: repeatedly saturate the most
// constrained link, freeze its flows at the fair share, and
// redistribute the slack — an alternating rescale-to-constraints loop
// in the spirit of iterative proportional fitting).
//
// The solver is *incremental*: flows and links form a bipartite graph,
// and a flow arriving or finishing can only change the rates inside
// its connected component of that graph. Only that component is
// re-solved, and only the flows whose rate actually changed have their
// completion events rescheduled (via sim.Event.Reschedule on the
// calendar queue). Disjoint bottlenecks — separate clusters, separate
// seeder uplinks — therefore cost nothing when traffic elsewhere
// churns, which is what keeps thousand-flow experiments tractable.
//
// Model fidelity notes, recorded as DESIGN.md decision 5:
//
//   - A path's rate is bounded by the *minimum* constrained pipe, not
//     the sum of per-hop serializations; a single-bottleneck path is
//     byte-identical to the pipe model (the equivalence property test),
//     a multi-constrained path is faster here than store-and-forward.
//   - Loss and queue admission are evaluated once, at flow entry; the
//     queue analog is the fluid backlog (sum of the remaining bytes of
//     the flows already on the link). MTU-chunked pipes keep their
//     packet-granularity loss (per-packet draws, all-must-survive) but
//     are carried as one fluid flow, not store-and-forward chunks.
//   - Jitter is drawn at entry, one draw per pipe in path order — the
//     same draw sequence the pipe model makes for serialized traffic.
package flow

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// link is the fluid counterpart of one bandwidth-constrained pipe.
type link struct {
	id    uint64
	pipe  *netem.Pipe
	flows []*xfer // flows crossing the link, arrival order

	// Solver scratch, valid only inside one resolve call.
	residual float64 // capacity not yet granted to frozen flows
	active   int     // unfrozen flows on the link
	mark     uint64  // component-BFS epoch stamp
}

// remove deletes f preserving arrival order, so solver iteration order
// (and therefore floating-point accumulation order) is a deterministic
// function of the simulation history.
func (l *link) remove(f *xfer) {
	for i, g := range l.flows {
		if g == f {
			l.flows = append(l.flows[:i], l.flows[i+1:]...)
			return
		}
	}
}

// backlogAt returns the fluid backlog: bytes still to be carried for
// the flows currently on the link, drained to instant now.
func (l *link) backlogAt(now sim.Time) int64 {
	var bits float64
	for _, f := range l.flows {
		if r := f.remainingAt(now); r > 0 {
			bits += r
		}
	}
	return int64(bits / 8)
}

// xfer is one in-flight transfer.
type xfer struct {
	id        uint64
	links     []*link // constrained pipes of the path, deduplicated
	remaining float64 // bits left to carry, as of ratedAt
	rate      float64 // bits/sec currently allotted; <0 = not yet rated
	ratedAt   sim.Time
	prop      time.Duration // propagation + jitter appended after completion
	ev        *sim.Event    // pending completion
	done      func(exit sim.Time, ok bool)

	mark    uint64  // component-BFS epoch stamp
	newRate float64 // solver scratch; <0 = not yet frozen
}

// remainingAt returns the bits left at instant now without settling.
func (f *xfer) remainingAt(now sim.Time) float64 {
	r := f.remaining
	if el := now.Sub(f.ratedAt).Seconds(); f.rate > 0 && el > 0 {
		r -= f.rate * el
	}
	return r
}

// Stats counts engine activity. SolvedFlows / (Started + Completed) is
// the average component size touched per churn event — the
// incrementality measure the churn benchmark tracks.
type Stats struct {
	Started     uint64 // flows admitted
	Completed   uint64 // flows delivered
	Lost        uint64 // dropped by per-pipe random loss at entry
	Overflows   uint64 // dropped by fluid queue admission at entry
	Solves      uint64 // component re-solves
	SolvedFlows uint64 // flows visited across all re-solves
	Rerates     uint64 // rate assignments applied (incl. initial)
}

// Model is the flow-level engine. It implements netem.LinkModel; use
// it by setting vnet.Config.Model = netem.ModelFlow, or construct one
// directly with New for engine-level experiments.
type Model struct {
	k          *sim.Kernel
	links      map[*netem.Pipe]*link
	nextFlowID uint64
	nextLinkID uint64
	epoch      uint64
	tracer     *trace.Log
	stats      Stats

	// Component scratch, reused across resolves.
	compLinks []*link
	compFlows []*xfer
}

// New returns an empty flow engine on kernel k.
func New(k *sim.Kernel) *Model {
	return &Model{k: k, links: make(map[*netem.Pipe]*link)}
}

// SetTrace attaches an event log: every rate change is recorded under
// the "net.flow" category, so re-allocations are observable on the
// virtual timeline like any other event.
func (m *Model) SetTrace(l *trace.Log) { m.tracer = l }

// Stats returns a snapshot of the engine counters.
func (m *Model) Stats() Stats { return m.stats }

// InFlight returns the number of active flows.
func (m *Model) InFlight() int {
	n := uint64(0)
	if m.stats.Started > m.stats.Completed {
		n = m.stats.Started - m.stats.Completed
	}
	return int(n)
}

// linkFor returns (creating on first use) the fluid link of a pipe.
func (m *Model) linkFor(p *netem.Pipe) *link {
	l := m.links[p]
	if l == nil {
		m.nextLinkID++
		l = &link{id: m.nextLinkID, pipe: p}
		m.links[p] = l
	}
	return l
}

// PipeReconfigured implements netem.ReconfigurableModel: after a
// runtime change to p's configuration the fair shares of every flow in
// p's connected component are stale, so the component is re-solved at
// the current instant and re-rated flows get rescheduled completions.
// The solver reads capacity from the pipe's live config, so no other
// bookkeeping is needed; a pipe carrying no flows is a no-op. Rates
// only ever apply from now forward — bytes already carried were settled
// at the old rate — so completions never move into the virtual past.
func (m *Model) PipeReconfigured(p *netem.Pipe) {
	l := m.links[p]
	if l == nil || len(l.flows) == 0 {
		return
	}
	m.resolve(m.k.Now(), []*link{l})
}

// Transfer implements netem.LinkModel: admit the message (loss and
// fluid-queue checks per pipe, in path order), then run it as a flow
// over the path's constrained pipes. A path with no constrained pipe
// completes synchronously after pure propagation, mirroring the pipe
// model's inline fast path.
func (m *Model) Transfer(at sim.Time, size int, path []*netem.Pipe, rng *rand.Rand, done func(sim.Time, bool)) {
	var prop time.Duration
	var links []*link
	for _, p := range path {
		cfg := p.Config()
		if cfg.Loss > 0 {
			// Packet-granularity pipes (MTU > 0) test each of the
			// ⌈size/MTU⌉ packets independently and the message survives
			// only if every packet does, matching Pipe.schedulePackets
			// (which also keeps drawing after a lost packet).
			lost := false
			if cfg.MTU > 0 && size > cfg.MTU {
				for sent := 0; sent < size; sent += cfg.MTU {
					if rng.Float64() < cfg.Loss {
						lost = true
					}
				}
			} else {
				lost = rng.Float64() < cfg.Loss
			}
			if lost {
				m.stats.Lost++
				p.AccountDrop(false)
				done(0, false)
				return
			}
		}
		if cfg.Bandwidth > 0 && cfg.QueueBytes > 0 {
			if l := m.links[p]; l != nil && l.backlogAt(at)+int64(size) > cfg.QueueBytes {
				m.stats.Overflows++
				p.AccountDrop(true)
				done(0, false)
				return
			}
		}
		prop += cfg.Delay
		if cfg.Jitter > 0 {
			prop += time.Duration(rng.Int63n(int64(cfg.Jitter)))
		}
		if cfg.Bandwidth > 0 {
			l := m.linkFor(p)
			dup := false
			for _, seen := range links {
				if seen == l {
					dup = true // a pipe listed twice constrains the flow once
					break
				}
			}
			if !dup {
				links = append(links, l)
			}
		}
	}
	for _, p := range path {
		p.AccountTransfer(size)
	}
	if len(links) == 0 {
		done(at.Add(prop), true)
		return
	}
	m.nextFlowID++
	f := &xfer{
		id:        m.nextFlowID,
		links:     links,
		remaining: float64(int64(size) * 8),
		rate:      -1,
		newRate:   -1,
		ratedAt:   at,
		prop:      prop,
		done:      done,
	}
	for _, l := range links {
		l.flows = append(l.flows, f)
	}
	m.stats.Started++
	m.resolve(at, links)
}

// complete fires when a flow's last byte is carried: detach it,
// re-solve the component it leaves behind (its peers speed up), and
// deliver after the accumulated propagation.
func (m *Model) complete(f *xfer) {
	now := m.k.Now()
	f.ev = nil
	for _, l := range f.links {
		l.remove(f)
	}
	m.stats.Completed++
	if m.tracer != nil {
		m.tracer.Add(now, "net.flow", f.links[0].pipe.Name(), "flow %d done", f.id)
	}
	m.resolve(now, f.links)
	f.done(now.Add(f.prop), true)
}

// resolve recomputes the max-min fair allocation of the connected
// component containing the seed links, by progressive filling, and
// applies the result. Links and flows outside the component are never
// visited.
func (m *Model) resolve(now sim.Time, seeds []*link) {
	m.stats.Solves++

	// Component discovery: BFS over the links↔flows bipartite graph.
	// Epoch stamps avoid clearing; traversal order (seed order, then
	// each link's arrival-ordered flow list) is deterministic.
	links := m.compLinks[:0]
	flows := m.compFlows[:0]
	m.epoch++
	ep := m.epoch
	for _, l := range seeds {
		if l.mark != ep {
			l.mark = ep
			links = append(links, l)
		}
	}
	for i := 0; i < len(links); i++ {
		for _, f := range links[i].flows {
			if f.mark == ep {
				continue
			}
			f.mark = ep
			flows = append(flows, f)
			for _, l2 := range f.links {
				if l2.mark != ep {
					l2.mark = ep
					links = append(links, l2)
				}
			}
		}
	}
	m.compLinks, m.compFlows = links, flows // keep grown capacity
	m.stats.SolvedFlows += uint64(len(flows))
	if len(flows) == 0 {
		return
	}

	// Progressive filling: find the most constrained link (smallest
	// fair share among links with unfrozen flows), freeze its flows at
	// that share, subtract the share from every link they cross,
	// repeat. Each iteration saturates at least one link, so the loop
	// runs at most len(links) times.
	for _, l := range links {
		// A pipe reconfigured to unlimited (<=0) mid-run stops
		// constraining the flows it still carries: infinite residual
		// keeps it from ever being the bottleneck.
		if bw := l.pipe.Config().Bandwidth; bw <= 0 {
			l.residual = math.Inf(1)
		} else {
			l.residual = float64(bw)
		}
		l.active = len(l.flows)
	}
	for _, f := range flows {
		f.newRate = -1
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		var bott *link
		var share float64
		for _, l := range links {
			if l.active == 0 {
				continue
			}
			if s := l.residual / float64(l.active); bott == nil || s < share {
				bott, share = l, s
			}
		}
		if bott == nil {
			break // unreachable: every flow crosses at least one link
		}
		if share < 0 {
			share = 0 // clamp float underflow of a saturated residual
		}
		for _, f := range bott.flows {
			if f.newRate >= 0 {
				continue
			}
			f.newRate = share
			unfrozen--
			for _, l2 := range f.links {
				// An infinite share means every remaining active link
				// is unlimited (a finite one would have been a smaller
				// bottleneck); skip the subtraction — Inf-Inf is NaN,
				// which would poison later iterations' shares.
				if !math.IsInf(share, 1) {
					l2.residual -= share
				}
				l2.active--
			}
		}
	}

	m.apply(now, flows)
}

// apply settles and reschedules every component flow whose allocation
// changed. A flow whose recomputed rate is bit-identical keeps its
// pending completion event untouched — together with component scoping
// this is what makes churn cost proportional to the affected
// bottleneck, not the population.
func (m *Model) apply(now sim.Time, flows []*xfer) {
	for _, f := range flows {
		if f.newRate == f.rate {
			continue
		}
		if el := now.Sub(f.ratedAt).Seconds(); f.rate > 0 && el > 0 {
			// el > 0 also keeps an infinite rate (a link reconfigured
			// to unlimited) from producing Inf*0 = NaN.
			f.remaining -= f.rate * el
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		old := f.rate
		f.rate = f.newRate
		f.ratedAt = now
		at := now.Add(durBits(f.remaining, f.rate))
		if f.ev == nil {
			ff := f
			f.ev = m.k.At(at, func() { m.complete(ff) })
		} else {
			f.ev.Reschedule(at)
		}
		m.stats.Rerates++
		if m.tracer != nil {
			if old < 0 {
				m.tracer.Add(now, "net.flow", f.links[0].pipe.Name(),
					"flow %d start %.0f bps over %d link(s)", f.id, f.rate, len(f.links))
			} else {
				m.tracer.Add(now, "net.flow", f.links[0].pipe.Name(),
					"flow %d rerate %.0f -> %.0f bps", f.id, old, f.rate)
			}
		}
	}
}

// maxDur bounds a completion delay so a degenerate zero rate schedules
// far-future instead of overflowing the timeline.
const maxDur = time.Duration(math.MaxInt64 / 4)

// durBits returns the time to carry bits at rate bits/sec. The
// expression matches netem's Pipe.serialization exactly, which is what
// makes an uncontended single-bottleneck flow byte-identical to the
// pipe model.
func durBits(bits, rate float64) time.Duration {
	if !(bits > 0) { // also catches NaN
		return 0
	}
	if !(rate > 0) { // also catches NaN: a poisoned rate must never
		return maxDur // schedule into the virtual past
	}
	s := bits / rate * float64(time.Second)
	if s >= float64(maxDur) {
		return maxDur
	}
	return time.Duration(s)
}
