// Package flow implements a flow-level max-min fair bandwidth-sharing
// link model — the contention-aware alternative to netem's Dummynet
// pipe model.
//
// The pipe model charges each message against one pipe in isolation:
// a thousand peers uploading through the same bottleneck never
// contend, every transfer sees the full configured bandwidth. This
// package models each in-flight transfer as a *fluid flow* over the
// bandwidth-constrained pipes of its path and splits every pipe's
// capacity among the flows crossing it by progressive filling (the
// classic max-min fair allocation: repeatedly saturate the most
// constrained link, freeze its flows at the fair share, and
// redistribute the slack — an alternating rescale-to-constraints loop
// in the spirit of iterative proportional fitting).
//
// The solver is *incremental* along two axes (DESIGN.md decision 8):
//
//   - Component scoping: flows and links form a bipartite graph, and a
//     flow arriving or finishing can only change the rates inside its
//     connected component of that graph. Only that component is
//     re-solved, and only the flows whose rate actually changed have
//     their completion events rescheduled (via sim.Event.Reschedule on
//     the calendar queue).
//   - Re-leveling scoping (batched mode): within a component, the
//     solver starts from the links whose residual/active ratio moved
//     (the dirty seeds), keeps the frozen allocations of flows whose
//     bottleneck is untouched, and grows the affected set only when a
//     frozen allocation is inconsistent with the recomputed levels.
//
// With Config.Window > 0 the engine additionally *batches* re-rates:
// churn events inside one virtual-time window coalesce and drain in a
// single solve per affected component at the window boundary. The
// boundary is a scheduled kernel event — not wall clock — so batching
// is exactly as deterministic as the rest of the simulation, and
// independent components of one flush may be solved on parallel
// goroutines because the results are applied sequentially in a fixed
// component order. Window = 0 (the default) re-solves at every churn
// event: the exact legacy semantics the golden traces pin.
//
// Model fidelity notes, recorded as DESIGN.md decision 5:
//
//   - A path's rate is bounded by the *minimum* constrained pipe, not
//     the sum of per-hop serializations; a single-bottleneck path is
//     byte-identical to the pipe model (the equivalence property test),
//     a multi-constrained path is faster here than store-and-forward.
//   - Loss and queue admission are evaluated once, at flow entry; the
//     queue analog is the fluid backlog (sum of the remaining bytes of
//     the flows already on the link — zero for a link no flow has ever
//     crossed). MTU-chunked pipes keep their packet granularity for
//     both loss and queue admission: per-packet loss draws with
//     all-must-survive, and each surviving packet claims queue space on
//     top of the fluid backlog, so lost packets free room exactly as
//     Pipe.schedulePackets admits them. The admitted flow is still
//     carried as one fluid flow, not store-and-forward chunks.
//   - Jitter is drawn at entry, one draw per pipe in path order — the
//     same draw sequence the pipe model makes for serialized traffic.
package flow

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// link is the fluid counterpart of one bandwidth-constrained pipe.
type link struct {
	id    uint64
	pipe  *netem.Pipe
	flows []*xfer // flows crossing the link, arrival order

	// Solver scratch, valid only inside one resolve/flush call.
	residual float64 // capacity not yet granted to frozen flows
	active   int     // unfrozen flows on the link
	level    float64 // fair share granted to flows leveled here; +Inf if never the bottleneck
	mark     uint64  // component-BFS epoch stamp
	comp     int     // component index within one flush's partition
	inR      bool    // member of the current incremental region
	dirty    bool    // queued in Model.dirty for the next flush
}

// remove deletes f preserving arrival order, so solver iteration order
// (and therefore floating-point accumulation order) is a deterministic
// function of the simulation history.
func (l *link) remove(f *xfer) {
	for i, g := range l.flows {
		if g == f {
			l.flows = append(l.flows[:i], l.flows[i+1:]...)
			return
		}
	}
}

// backlogAt returns the fluid backlog: bytes still to be carried for
// the flows currently on the link, drained to instant now. Batched
// arrivals not yet rated count at full size — they are queued.
func (l *link) backlogAt(now sim.Time) int64 {
	var bits float64
	for _, f := range l.flows {
		if r := f.remainingAt(now); r > 0 {
			bits += r
		}
	}
	return int64(bits / 8)
}

// xfer is one in-flight transfer.
type xfer struct {
	id        uint64
	links     []*link // constrained pipes of the path, deduplicated
	remaining float64 // bits left to carry, as of ratedAt
	rate      float64 // bits/sec currently allotted; <0 = not yet rated
	ratedAt   sim.Time
	prop      time.Duration // propagation + jitter appended after completion
	ev        *sim.Event    // pending completion
	done      func(exit sim.Time, ok bool)

	mark    uint64  // component-BFS epoch stamp
	newRate float64 // solver scratch; <0 = not yet frozen
	bott    *link   // link this flow was last leveled at
	inF     bool    // member of the current affected set
}

// remainingAt returns the bits left at instant now without settling.
func (f *xfer) remainingAt(now sim.Time) float64 {
	r := f.remaining
	if el := now.Sub(f.ratedAt).Seconds(); f.rate > 0 && el > 0 {
		r -= f.rate * el
	}
	return r
}

// Stats counts engine activity. SolvedFlows / (Started + Completed) is
// the average number of flows re-leveled per churn event — the
// incrementality measure the churn benchmark tracks.
type Stats struct {
	Started     uint64 // flows admitted
	Completed   uint64 // flows delivered
	Lost        uint64 // dropped by per-pipe random loss at entry
	Overflows   uint64 // dropped by fluid queue admission at entry
	Solves      uint64 // component re-solves
	SolvedFlows uint64 // flows re-leveled across all re-solves
	Rerates     uint64 // rate assignments applied (incl. initial)
	Flushes     uint64 // batch windows drained (window > 0 only)
	Batched     uint64 // churn events coalesced into batches (window > 0 only)
}

// Config tunes the engine. The zero value is the legacy per-event
// behavior.
type Config struct {
	// Window batches re-rate solves: churn events within one window of
	// virtual time coalesce and drain in a single solve per affected
	// component at the window boundary — a scheduled kernel event, so
	// batching is deterministic. New flows carry no bytes until the
	// boundary (they sit in the fluid queue), which bounds the extra
	// latency a transfer can see by one window. 0 solves at every
	// churn event, the exact semantics the golden traces pin.
	Window time.Duration
	// Workers bounds the goroutines solving independent components of
	// one flush in parallel. 0 uses GOMAXPROCS; 1 solves inline. The
	// allocation is identical for every setting: components are
	// disjoint subgraphs and results are applied in component order.
	Workers int
}

// Model is the flow-level engine. It implements netem.LinkModel; use
// it by setting vnet.Config.Model = netem.ModelFlow, or construct one
// directly with New / NewWithConfig for engine-level experiments.
type Model struct {
	k          *sim.Kernel
	cfg        Config
	links      map[*netem.Pipe]*link
	nextFlowID uint64
	nextLinkID uint64
	epoch      uint64
	tracer     *trace.Log
	stats      Stats

	// Batch state (cfg.Window > 0 only).
	dirty   []*link    // links touched since the last flush, dirtying order
	flushEv *sim.Event // pending window boundary

	// Component scratch, reused across per-event resolves.
	compLinks []*link
	compFlows []*xfer
}

// New returns an empty flow engine on kernel k with per-event solves
// (Window = 0).
func New(k *sim.Kernel) *Model {
	return NewWithConfig(k, Config{})
}

// NewWithConfig returns an empty flow engine on kernel k. A negative
// window is treated as 0.
func NewWithConfig(k *sim.Kernel, cfg Config) *Model {
	if cfg.Window < 0 {
		cfg.Window = 0
	}
	return &Model{k: k, cfg: cfg, links: make(map[*netem.Pipe]*link)}
}

// SetTrace attaches an event log: every rate change is recorded under
// the "net.flow" category, so re-allocations are observable on the
// virtual timeline like any other event.
func (m *Model) SetTrace(l *trace.Log) { m.tracer = l }

// Stats returns a snapshot of the engine counters.
func (m *Model) Stats() Stats { return m.stats }

// InFlight returns the number of active flows.
func (m *Model) InFlight() int {
	n := uint64(0)
	if m.stats.Started > m.stats.Completed {
		n = m.stats.Started - m.stats.Completed
	}
	return int(n)
}

// linkFor returns (creating on first use) the fluid link of a pipe.
func (m *Model) linkFor(p *netem.Pipe) *link {
	l := m.links[p]
	if l == nil {
		m.nextLinkID++
		l = &link{id: m.nextLinkID, pipe: p}
		m.links[p] = l
	}
	return l
}

// PipeReconfigured implements netem.ReconfigurableModel: after a
// runtime change to p's configuration the fair shares of every flow in
// p's connected component are stale, so the component is re-solved at
// the current instant and re-rated flows get rescheduled completions.
// The solver reads capacity from the pipe's live config, so no other
// bookkeeping is needed; a pipe carrying no flows is a no-op. Rates
// only ever apply from now forward — bytes already carried were settled
// at the old rate — so completions never move into the virtual past.
//
// In batched mode a reconfiguration is a synchronization point: the
// changed link's component re-levels immediately under the new
// configuration rather than waiting out the window. (vnet flushes the
// batch *before* the config changes, via FlushBatch, so coalesced
// churn settles under the configuration it happened under.)
func (m *Model) PipeReconfigured(p *netem.Pipe) {
	l := m.links[p]
	if l == nil || len(l.flows) == 0 {
		return
	}
	if m.cfg.Window > 0 {
		m.markDirty(l)
		m.FlushBatch()
		return
	}
	m.resolve(m.k.Now(), []*link{l})
}

// FlushBatch implements netem.FlushableModel: drain any batched churn
// immediately, at the current instant, instead of at the pending
// window boundary. Reconfiguration points call this so runtime changes
// observe settled, current rates. A no-op when nothing is pending.
func (m *Model) FlushBatch() {
	if m.flushEv != nil {
		m.flushEv.Cancel()
		m.flushEv = nil
	}
	m.flush()
}

// Transfer implements netem.LinkModel: admit the message (loss and
// fluid-queue checks per pipe, in path order), then run it as a flow
// over the path's constrained pipes. A path with no constrained pipe
// completes synchronously after pure propagation, mirroring the pipe
// model's inline fast path.
func (m *Model) Transfer(at sim.Time, size int, path []*netem.Pipe, rng *rand.Rand, done func(sim.Time, bool)) {
	var prop time.Duration
	var links []*link
	for _, p := range path {
		cfg := p.Config()
		if !m.admit(at, size, p, cfg, rng) {
			done(0, false)
			return
		}
		prop += cfg.Delay
		if cfg.Jitter > 0 {
			prop += time.Duration(rng.Int63n(int64(cfg.Jitter)))
		}
		if cfg.Bandwidth > 0 {
			l := m.linkFor(p)
			dup := false
			for _, seen := range links {
				if seen == l {
					dup = true // a pipe listed twice constrains the flow once
					break
				}
			}
			if !dup {
				links = append(links, l)
			}
		}
	}
	for _, p := range path {
		p.AccountTransfer(size)
	}
	if len(links) == 0 {
		done(at.Add(prop), true)
		return
	}
	m.nextFlowID++
	f := &xfer{
		id:        m.nextFlowID,
		links:     links,
		remaining: float64(int64(size) * 8),
		rate:      -1,
		newRate:   -1,
		ratedAt:   at,
		prop:      prop,
		done:      done,
	}
	for _, l := range links {
		l.flows = append(l.flows, f)
	}
	m.stats.Started++
	if m.cfg.Window > 0 {
		m.stats.Batched++
		for _, l := range links {
			m.markDirty(l)
		}
		m.armFlush(at)
		return
	}
	m.resolve(at, links)
}

// admit runs one pipe's entry checks (loss, then fluid-queue) and
// accounts a failure; it reports whether the message survived. The
// backlog is a function of the link's *current* flows only — a pipe no
// flow has ever crossed has an empty backlog, but a message larger
// than the queue bound is still refused on it (admission depends on
// state, never on history).
func (m *Model) admit(at sim.Time, size int, p *netem.Pipe, cfg netem.PipeConfig, rng *rand.Rand) bool {
	queued := cfg.Bandwidth > 0 && cfg.QueueBytes > 0
	if cfg.MTU > 0 && size > cfg.MTU && (cfg.Loss > 0 || queued) {
		// Packet-granularity admission, chunk for chunk the verdict of
		// Pipe.schedulePackets for a message arriving at one instant:
		// every packet draws its own loss verdict, and each surviving
		// packet claims queue space on top of the fluid backlog — lost
		// packets claim none, so a lossy pipe can admit a message the
		// whole-size check would tail-drop. The message survives only
		// if every packet does. The loss-draw sequence matches both the
		// pipe model and this package's previous per-packet loss loop.
		var backlog int64
		if queued {
			if l := m.links[p]; l != nil {
				backlog = l.backlogAt(at)
			}
		}
		lost, overflowed := false, false
		var admitted int64
		for sent := 0; sent < size; sent += cfg.MTU {
			chunk := size - sent
			if chunk > cfg.MTU {
				chunk = cfg.MTU
			}
			if cfg.Loss > 0 && rng.Float64() < cfg.Loss {
				lost = true
				continue
			}
			if queued {
				if backlog+admitted+int64(chunk) > cfg.QueueBytes {
					overflowed = true
					continue
				}
				admitted += int64(chunk)
			}
		}
		if lost {
			m.stats.Lost++
			p.AccountDrop(false)
			return false
		}
		if overflowed {
			m.stats.Overflows++
			p.AccountDrop(true)
			return false
		}
		return true
	}
	if cfg.Loss > 0 && rng.Float64() < cfg.Loss {
		m.stats.Lost++
		p.AccountDrop(false)
		return false
	}
	if queued {
		var backlog int64
		if l := m.links[p]; l != nil {
			backlog = l.backlogAt(at)
		}
		if backlog+int64(size) > cfg.QueueBytes {
			m.stats.Overflows++
			p.AccountDrop(true)
			return false
		}
	}
	return true
}

// complete fires when a flow's last byte is carried: detach it,
// re-solve the component it leaves behind (its peers speed up), and
// deliver after the accumulated propagation. In batched mode delivery
// is still exact — only the peers' speed-up waits for the window
// boundary, at their current (conservative) rates.
func (m *Model) complete(f *xfer) {
	now := m.k.Now()
	f.ev = nil
	for _, l := range f.links {
		l.remove(f)
	}
	m.stats.Completed++
	if m.tracer != nil {
		m.tracer.Add(now, "net.flow", f.links[0].pipe.Name(), "flow %d done", f.id)
	}
	if m.cfg.Window > 0 {
		m.stats.Batched++
		for _, l := range f.links {
			m.markDirty(l)
		}
		m.armFlush(now)
		f.done(now.Add(f.prop), true)
		return
	}
	m.resolve(now, f.links)
	f.done(now.Add(f.prop), true)
}

// markDirty queues l for the next batch flush, once.
func (m *Model) markDirty(l *link) {
	if !l.dirty {
		l.dirty = true
		m.dirty = append(m.dirty, l)
	}
}

// armFlush schedules the batch boundary one window after the first
// event of the batch. The boundary is a kernel event, so batching is
// as deterministic as any other scheduled work: same history, same
// flush instants, same solves.
func (m *Model) armFlush(at sim.Time) {
	if m.flushEv == nil {
		m.flushEv = m.k.At(at.Add(m.cfg.Window), m.flush)
	}
}

// flush drains the pending batch: partition the dirty links into
// connected components, incrementally re-level each (in parallel when
// there are several), and apply the new allocations sequentially in
// component order — which keeps the outcome independent of the worker
// count.
func (m *Model) flush() {
	m.flushEv = nil
	if len(m.dirty) == 0 {
		return
	}
	seeds := m.dirty
	m.dirty = nil
	for _, l := range seeds {
		l.dirty = false
	}
	m.stats.Flushes++
	now := m.k.Now()
	comps := m.partition(seeds)
	m.solveComponents(comps)
	for _, c := range comps {
		m.stats.Solves++
		m.stats.SolvedFlows += uint64(len(c.aff))
		m.apply(now, c.aff)
		for _, f := range c.aff {
			f.inF = false
		}
		for _, l := range c.region {
			l.inR = false
		}
	}
}

// component is one connected dirty region drained by a flush.
type component struct {
	links []*link // full component, BFS order over the bipartite graph
	flows []*xfer // full component, BFS order
	seeds []*link // dirty links, in global dirtying order

	// solve output.
	region []*link // links re-leveled (levels in link.level)
	aff    []*xfer // flows re-leveled (rates in xfer.newRate)
}

// partition groups the dirty links of one flush into connected
// components of the links↔flows bipartite graph. Seed order (global
// dirtying order) fixes both the component order and each component's
// BFS order, so the result is deterministic.
func (m *Model) partition(seeds []*link) []*component {
	m.epoch++
	ep := m.epoch
	var comps []*component
	for _, seed := range seeds {
		if seed.mark == ep {
			comps[seed.comp].seeds = append(comps[seed.comp].seeds, seed)
			continue
		}
		c := &component{}
		seed.mark = ep
		seed.comp = len(comps)
		c.seeds = append(c.seeds, seed)
		c.links = append(c.links, seed)
		for i := 0; i < len(c.links); i++ {
			for _, f := range c.links[i].flows {
				if f.mark == ep {
					continue
				}
				f.mark = ep
				c.flows = append(c.flows, f)
				for _, l2 := range f.links {
					if l2.mark != ep {
						l2.mark = ep
						l2.comp = seed.comp
						c.links = append(c.links, l2)
					}
				}
			}
		}
		comps = append(comps, c)
	}
	return comps
}

// solveComponents runs component.solve for every component, striding
// them across up to cfg.Workers goroutines. Components are disjoint
// subgraphs, so workers share no mutable state; results land in the
// per-component structs and are applied sequentially by the caller.
//
//lint:allow kernelgo documented boundary: the solver pool runs between kernel events (virtual time frozen), joins before returning, and workers share no state — deterministic regardless of interleaving
func (m *Model) solveComponents(comps []*component) {
	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 {
		for _, c := range comps {
			c.solve()
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(comps); i += workers {
				comps[i].solve()
			}
		}(w)
	}
	wg.Wait()
}

const (
	// rateEps is the relative slack separating a genuine rate change
	// from floating-point noise when the incremental solver decides
	// whether a frozen allocation is still consistent with the new
	// levels.
	rateEps = 1e-9
	// absEps is the absolute bandwidth slack (bits/sec) below which
	// leftover capacity is not worth re-leveling for — far below any
	// configurable rate.
	absEps = 1e-6
	// maxIncFills bounds the grow-and-refill passes before solve falls
	// back to a from-scratch re-level of the whole component.
	maxIncFills = 3
)

// solve computes the new max-min allocation for the component,
// re-leveling as few flows as the dirty seeds allow. It starts from
// the flows that must move — batched arrivals not yet rated, and flows
// bottlenecked on a dirty link — fills that region with every other
// allocation frozen, then grows the affected set wherever a frozen
// allocation is inconsistent with the recomputed levels: it exceeds
// the new level of a link it crosses (squeezing the flows leveled
// there), its links are oversubscribed, or its own bottleneck now has
// room for it to rise. The affected set grows strictly, so the loop
// terminates; past maxIncFills passes it falls back to a from-scratch
// re-level of the whole component.
func (c *component) solve() {
	if len(c.flows) == 0 {
		return
	}
	addLink := func(l *link) {
		if !l.inR {
			l.inR = true
			c.region = append(c.region, l)
		}
	}
	addFlow := func(f *xfer) {
		if !f.inF {
			f.inF = true
			c.aff = append(c.aff, f)
			for _, l := range f.links {
				addLink(l)
			}
		}
	}
	for _, l := range c.seeds {
		addLink(l)
	}
	for _, l := range c.seeds {
		for _, f := range l.flows {
			if f.rate < 0 || f.bott == l {
				addFlow(f)
			}
		}
	}
	for pass := 0; ; pass++ {
		if pass == maxIncFills || len(c.aff) == len(c.flows) {
			// Incrementality stopped paying: re-level the whole
			// component from scratch (the exact legacy solve).
			for _, l := range c.links {
				addLink(l)
			}
			for _, f := range c.flows {
				addFlow(f)
			}
			fill(c.region, c.aff)
			return
		}
		fill(c.region, c.aff)
		grew := false
		n := len(c.region)
		for i := 0; i < n; i++ {
			l := c.region[i]
			// Oversubscribed: the frozen flows alone exceed the link's
			// capacity (a degrade, or affected flows that rose into
			// them) — all of them must re-level.
			over := false
			if bw := l.pipe.Config().Bandwidth; bw > 0 {
				over = l.residual < -(float64(bw)*rateEps + absEps)
			}
			for _, g := range l.flows {
				if g.inF {
					continue
				}
				if over || g.rate < 0 || g.rate > l.level*(1+rateEps) {
					addFlow(g)
					grew = true
					continue
				}
				if g.bott != l || math.IsInf(g.rate, 1) {
					continue
				}
				if lvl := l.level; math.IsInf(lvl, 1) {
					// g's own bottleneck was not leveled this fill but
					// has slack left over: g can rise.
					if l.residual > g.rate*rateEps+absEps {
						addFlow(g)
						grew = true
					}
				} else if lvl > g.rate*(1+rateEps) {
					addFlow(g)
					grew = true
				}
			}
		}
		if !grew {
			return
		}
	}
}

// resolve recomputes the max-min fair allocation of the connected
// component containing the seed links, by progressive filling, and
// applies the result. Links and flows outside the component are never
// visited. This is the per-event path (Window = 0) and always
// re-levels the whole component.
func (m *Model) resolve(now sim.Time, seeds []*link) {
	m.stats.Solves++

	// Component discovery: BFS over the links↔flows bipartite graph.
	// Epoch stamps avoid clearing; traversal order (seed order, then
	// each link's arrival-ordered flow list) is deterministic.
	links := m.compLinks[:0]
	flows := m.compFlows[:0]
	m.epoch++
	ep := m.epoch
	for _, l := range seeds {
		if l.mark != ep {
			l.mark = ep
			links = append(links, l)
		}
	}
	for i := 0; i < len(links); i++ {
		for _, f := range links[i].flows {
			if f.mark == ep {
				continue
			}
			f.mark = ep
			f.inF = true
			flows = append(flows, f)
			for _, l2 := range f.links {
				if l2.mark != ep {
					l2.mark = ep
					links = append(links, l2)
				}
			}
		}
	}
	m.compLinks, m.compFlows = links, flows // keep grown capacity
	m.stats.SolvedFlows += uint64(len(flows))
	if len(flows) == 0 {
		return
	}

	fill(links, flows)
	for _, f := range flows {
		f.inF = false
	}
	m.apply(now, flows)
}

// fill runs progressive filling over the region links R for the
// affected flows F: find the most constrained link (smallest fair
// share among links with unfrozen affected flows), freeze its flows at
// that share, subtract the share from every link they cross, repeat.
// Each iteration saturates at least one link, so the loop runs at most
// len(R) times.
//
// Flows outside F are frozen: their current rates are subtracted from
// their links' capacity up front and never revisited, which is what
// makes a partial re-level cost only the affected region. With F
// covering the whole component there is nothing to freeze and this is
// the classic from-scratch progressive filling.
//
// Outputs: each affected flow's allocation in newRate and its
// bottleneck in bott; each region link's fair-share level in level
// (+Inf if it never constrained anyone) and leftover capacity in
// residual (negative when frozen flows oversubscribe it).
func fill(R []*link, F []*xfer) {
	for _, l := range R {
		// A pipe reconfigured to unlimited (<=0) mid-run stops
		// constraining the flows it still carries: infinite residual
		// keeps it from ever being the bottleneck.
		if bw := l.pipe.Config().Bandwidth; bw <= 0 {
			l.residual = math.Inf(1)
		} else {
			l.residual = float64(bw)
		}
		l.level = math.Inf(1)
		l.active = 0
		for _, f := range l.flows {
			if f.inF {
				l.active++
			} else if f.rate > 0 {
				l.residual -= f.rate
			}
		}
	}
	for _, f := range F {
		f.newRate = -1
	}
	unfrozen := len(F)
	for unfrozen > 0 {
		var bott *link
		var share float64
		for _, l := range R {
			if l.active == 0 {
				continue
			}
			if s := l.residual / float64(l.active); bott == nil || s < share {
				bott, share = l, s
			}
		}
		if bott == nil {
			break // unreachable: every affected flow crosses a region link
		}
		if share < 0 {
			share = 0 // clamp float underflow of a saturated residual
		}
		bott.level = share
		for _, f := range bott.flows {
			if !f.inF || f.newRate >= 0 {
				continue
			}
			f.newRate = share
			f.bott = bott
			unfrozen--
			for _, l2 := range f.links {
				// An infinite share means every remaining active link
				// is unlimited (a finite one would have been a smaller
				// bottleneck); skip the subtraction — Inf-Inf is NaN,
				// which would poison later iterations' shares.
				if !math.IsInf(share, 1) {
					l2.residual -= share
				}
				l2.active--
			}
		}
	}
}

// apply settles and reschedules every affected flow whose allocation
// changed. A flow whose recomputed rate is bit-identical keeps its
// pending completion event untouched — together with component scoping
// and re-leveling scoping this is what makes churn cost proportional
// to the affected bottleneck, not the population.
func (m *Model) apply(now sim.Time, flows []*xfer) {
	for _, f := range flows {
		if f.newRate == f.rate {
			continue
		}
		if el := now.Sub(f.ratedAt).Seconds(); f.rate > 0 && el > 0 {
			// el > 0 also keeps an infinite rate (a link reconfigured
			// to unlimited) from producing Inf*0 = NaN.
			f.remaining -= f.rate * el
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		old := f.rate
		f.rate = f.newRate
		f.ratedAt = now
		at := now.Add(durBits(f.remaining, f.rate))
		if f.ev == nil {
			ff := f
			f.ev = m.k.At(at, func() { m.complete(ff) })
		} else {
			f.ev.Reschedule(at)
		}
		m.stats.Rerates++
		if m.tracer != nil {
			if old < 0 {
				m.tracer.Add(now, "net.flow", f.links[0].pipe.Name(),
					"flow %d start %.0f bps over %d link(s)", f.id, f.rate, len(f.links))
			} else {
				m.tracer.Add(now, "net.flow", f.links[0].pipe.Name(),
					"flow %d rerate %.0f -> %.0f bps", f.id, old, f.rate)
			}
		}
	}
}

// maxDur bounds a completion delay so a degenerate zero rate schedules
// far-future instead of overflowing the timeline.
const maxDur = time.Duration(math.MaxInt64 / 4)

// durBits returns the time to carry bits at rate bits/sec. The
// expression matches netem's Pipe.serialization exactly, which is what
// makes an uncontended single-bottleneck flow byte-identical to the
// pipe model.
func durBits(bits, rate float64) time.Duration {
	if !(bits > 0) { // also catches NaN
		return 0
	}
	if !(rate > 0) { // also catches NaN: a poisoned rate must never
		return maxDur // schedule into the virtual past
	}
	s := bits / rate * float64(time.Second)
	if s >= float64(maxDur) {
		return maxDur
	}
	return time.Duration(s)
}
