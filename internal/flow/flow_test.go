package flow

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

const mbps = float64(netem.Mbps)

// start launches one transfer and returns a pointer to its recorded
// exit time (zero until delivered; loss-free configs always deliver).
func start(t *testing.T, m *Model, k *sim.Kernel, size int, path ...*netem.Pipe) *sim.Time {
	t.Helper()
	exit := new(sim.Time)
	m.Transfer(k.Now(), size, path, k.Rand(), func(e sim.Time, ok bool) {
		if !ok {
			t.Errorf("transfer of %d B dropped unexpectedly", size)
		}
		*exit = e
	})
	return exit
}

// TestMaxMinTextbook is the classic 3-flow/2-link case: link L1 of
// 1 Mbps carries flows A and B, link L2 of 2 Mbps carries flows A and
// C, A crossing both. Max-min fairness gives A=B=0.5 Mbps (L1 is A's
// bottleneck) and C the remaining 1.5 Mbps of L2.
func TestMaxMinTextbook(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	l1 := netem.NewPipe(k, "L1", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
	l2 := netem.NewPipe(k, "L2", netem.PipeConfig{Bandwidth: 2 * netem.Mbps})

	const size = 1_000_000 // 8 Mbit each
	exitA := start(t, m, k, size, l1, l2)
	exitB := start(t, m, k, size, l1)
	exitC := start(t, m, k, size, l2)

	rates := map[uint64]float64{}
	for _, f := range m.links[l1].flows {
		rates[f.id] = f.rate
	}
	for _, f := range m.links[l2].flows {
		rates[f.id] = f.rate
	}
	want := map[uint64]float64{1: 0.5 * mbps, 2: 0.5 * mbps, 3: 1.5 * mbps}
	for id, w := range want {
		if rates[id] != w {
			t.Errorf("flow %d rate = %v bps, want %v", id, rates[id], w)
		}
	}

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	bits := float64(int64(size) * 8)
	// C finishes first at 8 Mbit / 1.5 Mbps; its departure leaves A
	// still bottlenecked on L1, so A and B finish together at exactly
	// 8 Mbit / 0.5 Mbps = 16 s.
	if wantC := sim.Time(0).Add(durBits(bits, 1.5*mbps)); *exitC != wantC {
		t.Errorf("flow C exit = %v, want %v", *exitC, wantC)
	}
	want16 := sim.Time(0).Add(16 * time.Second)
	if *exitA != want16 || *exitB != want16 {
		t.Errorf("flows A, B exit = %v, %v, want both %v", *exitA, *exitB, want16)
	}
}

// TestSingleFlowMatchesSerialization: an uncontended flow over one
// constrained pipe plus delay-only pipes completes exactly at the pipe
// model's serialization + propagation schedule.
func TestSingleFlowMatchesSerialization(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	up := netem.NewPipe(k, "up", netem.PipeConfig{Bandwidth: 512 * netem.Kbps, Delay: 30 * time.Millisecond})
	wan := netem.NewPipe(k, "wan", netem.PipeConfig{Delay: 45 * time.Millisecond})

	const size = 37 * 1024
	exit := start(t, m, k, size, up, wan)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ser := time.Duration(float64(int64(size)*8) / float64(512*netem.Kbps) * float64(time.Second))
	want := sim.Time(0).Add(ser + 75*time.Millisecond)
	if *exit != want {
		t.Errorf("exit = %v, want %v", *exit, want)
	}
}

// TestFairShareSettling: a second flow joining a link mid-transfer
// halves the first flow's rate from that instant; the completion
// schedule must integrate the piecewise-constant rate exactly.
func TestFairShareSettling(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	l := netem.NewPipe(k, "l", netem.PipeConfig{Bandwidth: 8 * netem.Mbps})

	const size = 4_000_000 // 32 Mbit: alone it takes 4 s
	exit1 := start(t, m, k, size, l)
	exit2 := new(sim.Time)
	k.At(sim.Time(0).Add(2*time.Second), func() {
		m.Transfer(k.Now(), size, []*netem.Pipe{l}, k.Rand(), func(e sim.Time, ok bool) {
			*exit2 = e
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Flow 1: 2 s at 8 Mbps (16 Mbit left), then 4 Mbps → done at 6 s.
	// Flow 2: 4 Mbps until flow 1 leaves (16 Mbit carried), then the
	// full 8 Mbps for its last 16 Mbit → done at 8 s.
	if want := sim.Time(0).Add(6 * time.Second); *exit1 != want {
		t.Errorf("flow 1 exit = %v, want %v", *exit1, want)
	}
	if want := sim.Time(0).Add(8 * time.Second); *exit2 != want {
		t.Errorf("flow 2 exit = %v, want %v", *exit2, want)
	}
}

// TestIncrementalComponentScoping: churn on one bottleneck must not
// visit or re-rate flows on a disjoint bottleneck.
func TestIncrementalComponentScoping(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	la := netem.NewPipe(k, "a", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
	lb := netem.NewPipe(k, "b", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})

	const size = 1 << 20
	start(t, m, k, size, la)
	start(t, m, k, size, la)
	start(t, m, k, size, lb)

	fb := m.links[lb].flows[0]
	ratedB := fb.ratedAt
	rateB := fb.rate

	solved := m.stats.SolvedFlows
	rerates := m.stats.Rerates
	start(t, m, k, size, la) // third flow on bottleneck A

	if got := m.stats.SolvedFlows - solved; got != 3 {
		t.Errorf("solve visited %d flows, want 3 (A's component only)", got)
	}
	if got := m.stats.Rerates - rerates; got != 3 {
		t.Errorf("rerated %d flows, want 3", got)
	}
	if fb.ratedAt != ratedB || fb.rate != rateB {
		t.Errorf("disjoint flow B was touched: rate %v@%v -> %v@%v",
			rateB, ratedB, fb.rate, fb.ratedAt)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.InFlight() != 0 {
		t.Errorf("%d flows still in flight after run", m.InFlight())
	}
}

// TestUnchangedRatesKeepSchedules: a flow joining one end of a chain
// component re-solves the whole component, but flows whose share is
// unchanged keep their completion event untouched.
func TestUnchangedRatesKeepSchedules(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	narrow := netem.NewPipe(k, "narrow", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
	wide := netem.NewPipe(k, "wide", netem.PipeConfig{Bandwidth: 100 * netem.Mbps})

	const size = 1 << 20
	start(t, m, k, size, narrow, wide) // bottlenecked at 1 Mbps on narrow
	f := m.links[narrow].flows[0]
	rerates := m.stats.Rerates

	// A flow on the wide link alone: shares the component with f via
	// wide, but wide stays uncongested (99 Mbps residual), so f's rate
	// recomputes to the bit-identical 1 Mbps and is not rescheduled.
	start(t, m, k, size, wide)
	if f.rate != 1*mbps {
		t.Errorf("bottlenecked flow rate = %v, want %v", f.rate, 1*mbps)
	}
	if got := m.stats.Rerates - rerates; got != 1 {
		t.Errorf("rerated %d flows, want 1 (the new flow only)", got)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLossAndQueueAdmission: per-pipe loss drops at entry; the fluid
// queue bound rejects a flow whose bytes exceed the configured backlog.
func TestLossAndQueueAdmission(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	lossy := netem.NewPipe(k, "lossy", netem.PipeConfig{Bandwidth: netem.Mbps, Loss: 1})
	dropped := false
	m.Transfer(0, 1024, []*netem.Pipe{lossy}, k.Rand(), func(_ sim.Time, ok bool) {
		dropped = !ok
	})
	if !dropped || m.stats.Lost != 1 {
		t.Errorf("loss=1 pipe delivered (dropped=%v, lost=%d)", dropped, m.stats.Lost)
	}

	bounded := netem.NewPipe(k, "bounded", netem.PipeConfig{Bandwidth: netem.Mbps, QueueBytes: 64 * 1024})
	start(t, m, k, 60*1024, bounded)
	overflowed := false
	m.Transfer(0, 8*1024, []*netem.Pipe{bounded}, k.Rand(), func(_ sim.Time, ok bool) {
		overflowed = !ok
	})
	if !overflowed || m.stats.Overflows != 1 {
		t.Errorf("overfull link admitted flow (overflowed=%v, overflows=%d)", overflowed, m.stats.Overflows)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMTUPacketLoss: an MTU-chunked pipe keeps packet-granularity loss
// under the flow model — a 10-packet message survives only if all 10
// per-packet draws do, so its drop rate is far above the per-packet
// probability a message-level draw would give it.
func TestMTUPacketLoss(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	p := netem.NewPipe(k, "mtu", netem.PipeConfig{Bandwidth: netem.Gbps, Loss: 0.3, MTU: 1000})
	const trials = 200
	drops := 0
	for i := 0; i < trials; i++ {
		m.Transfer(k.Now(), 10_000, []*netem.Pipe{p}, k.Rand(), func(_ sim.Time, ok bool) {
			if !ok {
				drops++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1-(1-0.3)^10 ≈ 0.97; message-level would be 0.3.
	if rate := float64(drops) / trials; rate < 0.8 {
		t.Errorf("drop rate %v with 10 packets at loss 0.3; want packet-granularity (~0.97)", rate)
	}
	if m.stats.Lost != uint64(drops) || p.Stats().Lost != uint64(drops) {
		t.Errorf("loss accounting off: model=%d pipe=%d drops=%d", m.stats.Lost, p.Stats().Lost, drops)
	}
}

// TestPipeStatsAccounting: the flow model keeps the traversed pipes'
// Messages/Bytes counters (and so Utilization) meaningful.
func TestPipeStatsAccounting(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	up := netem.NewPipe(k, "up", netem.PipeConfig{Bandwidth: netem.Mbps})
	wan := netem.NewPipe(k, "wan", netem.PipeConfig{Delay: time.Millisecond})
	start(t, m, k, 125_000, up, wan)
	start(t, m, k, 125_000, up, wan)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*netem.Pipe{up, wan} {
		st := p.Stats()
		if st.Messages != 2 || st.Bytes != 250_000 {
			t.Errorf("pipe %s stats = %+v, want 2 messages / 250000 B", p.Name(), st)
		}
	}
	// 2 Mbit through a 1 Mbps pipe over the 2 s the run took: fully
	// utilized.
	if u := up.Utilization(netem.PipeStats{}, 0, k.Now()); u < 0.99 {
		t.Errorf("uplink utilization = %v, want ~1", u)
	}
}

// TestTraceRateChanges: rate assignments and completions appear on the
// virtual timeline under the net.flow category.
func TestTraceRateChanges(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	log := trace.New(0)
	m.SetTrace(log)
	l := netem.NewPipe(k, "l", netem.PipeConfig{Bandwidth: netem.Mbps})

	start(t, m, k, 1<<20, l)
	start(t, m, k, 1<<20, l)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// flow 1 start, (flow 2 start + flow 1 rerate), 2 completions, and
	// the surviving flow's speed-up after the first completion.
	if got := log.Count("net.flow"); got < 5 {
		t.Errorf("net.flow trace events = %d, want >= 5", got)
	}
	for _, e := range log.Events() {
		if e.Cat != "net.flow" {
			t.Errorf("unexpected category %q", e.Cat)
		}
	}
}

// TestDeterminism: two runs of an identical randomized workload produce
// identical completion schedules.
func TestDeterminism(t *testing.T) {
	run := func() []sim.Time {
		k := sim.New(7)
		m := New(k)
		var pipes []*netem.Pipe
		for i := 0; i < 4; i++ {
			pipes = append(pipes, netem.NewPipe(k, "p", netem.PipeConfig{
				Bandwidth: int64(i+1) * netem.Mbps, Delay: 5 * time.Millisecond,
			}))
		}
		rng := rand.New(rand.NewSource(99))
		var exits []sim.Time
		for i := 0; i < 50; i++ {
			path := []*netem.Pipe{pipes[rng.Intn(4)], pipes[rng.Intn(4)]}
			size := 1024 + rng.Intn(1<<18)
			at := sim.Time(rng.Int63n(int64(2 * time.Second)))
			k.At(at, func() {
				m.Transfer(k.Now(), size, path, k.Rand(), func(e sim.Time, ok bool) {
					exits = append(exits, e)
				})
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return exits
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("exit %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
