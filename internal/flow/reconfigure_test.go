package flow

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// startFlow launches one transfer over the pipe and returns a pointer
// that receives its exit instant when it completes.
func startFlow(k *sim.Kernel, m *Model, p *netem.Pipe, at sim.Time, size int) *sim.Time {
	exit := new(sim.Time)
	*exit = -1
	k.At(at, func() {
		m.Transfer(k.Now(), size, []*netem.Pipe{p}, k.Rand(), func(t sim.Time, ok bool) {
			if ok {
				*exit = t
			}
		})
	})
	return exit
}

// TestFlowReconfigureRerates: a mid-transfer bandwidth change re-rates
// the in-flight flow from the reconfigure instant — bytes already
// carried were charged at the old rate — and the completion never
// lands in the virtual past.
func TestFlowReconfigureRerates(t *testing.T) {
	const size = 125_000 // 1 Mbit -> 1 s at 1 Mbps
	cases := []struct {
		name  string
		newBW int64
		want  sim.Time
	}{
		// 0.5 Mbit left at the 0.5 s reconfigure.
		{"upgrade", 2 * netem.Mbps, sim.Time(750 * time.Millisecond)},
		{"degrade", 500 * netem.Kbps, sim.Time(1500 * time.Millisecond)},
		// An unlimited link stops constraining: the flow completes at
		// the reconfigure instant, not before it.
		{"to-unlimited", 0, sim.Time(500 * time.Millisecond)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.New(1)
			m := New(k)
			p := netem.NewPipe(k, "p", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
			exit := startFlow(k, m, p, 0, size)
			reconfAt := sim.Time(500 * time.Millisecond)
			k.At(reconfAt, func() {
				cfg := p.Config()
				cfg.Bandwidth = tc.newBW
				p.Reconfigure(cfg)
				m.PipeReconfigured(p)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if *exit != tc.want {
				t.Errorf("flow exits at %v, want %v", *exit, tc.want)
			}
			if *exit < reconfAt {
				t.Errorf("completion scheduled in the virtual past: %v < %v", *exit, reconfAt)
			}
		})
	}
}

// TestFlowReconfigureIdenticalIsNoop: notifying the model after an
// identical-config "change" must not re-rate anything — same exit,
// no extra solver work beyond the component visit.
func TestFlowReconfigureIdenticalIsNoop(t *testing.T) {
	run := func(reconf bool) (sim.Time, Stats) {
		k := sim.New(1)
		m := New(k)
		p := netem.NewPipe(k, "p", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
		exit := startFlow(k, m, p, 0, 125_000)
		if reconf {
			k.At(sim.Time(300*time.Millisecond), func() {
				p.Reconfigure(p.Config()) // no-op by definition
				m.PipeReconfigured(p)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return *exit, m.Stats()
	}
	plainExit, plainStats := run(false)
	reconfExit, reconfStats := run(true)
	if plainExit != reconfExit {
		t.Errorf("identical-config reconfigure moved the exit: %v vs %v", plainExit, reconfExit)
	}
	if reconfStats.Rerates != plainStats.Rerates {
		t.Errorf("identical-config reconfigure re-rated flows: %d vs %d",
			reconfStats.Rerates, plainStats.Rerates)
	}
}

// TestFlowReconfigureIdlePipe: reconfiguring a pipe with no flows (or
// never seen by the model) must be a no-op, not a crash.
func TestFlowReconfigureIdlePipe(t *testing.T) {
	k := sim.New(1)
	m := New(k)
	p := netem.NewPipe(k, "p", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
	m.PipeReconfigured(p) // never carried a flow
	if st := m.Stats(); st.Solves != 0 {
		t.Errorf("idle reconfigure solved %d components", st.Solves)
	}
}

// TestFlowReconfigureBothUnlimited: two pipes reconfigured to
// unlimited while shared flows cross them must not poison the solver
// with Inf-Inf residuals — every flow completes at the reconfigure
// instant, never in the virtual past.
func TestFlowReconfigureBothUnlimited(t *testing.T) {
	const size = 125_000
	k := sim.New(1)
	m := New(k)
	pa := netem.NewPipe(k, "a", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
	pb := netem.NewPipe(k, "b", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
	// f1 crosses both pipes, f2 only pb: with both unlimited, the
	// first filling iteration freezes f1 at an infinite share, and the
	// residual subtraction on pb must not turn f2's share into NaN.
	var e1, e2 *sim.Time
	k.At(0, func() {
		e1 = new(sim.Time)
		m.Transfer(0, size, []*netem.Pipe{pa, pb}, k.Rand(), func(t sim.Time, ok bool) { *e1 = t })
		e2 = new(sim.Time)
		m.Transfer(0, size, []*netem.Pipe{pb}, k.Rand(), func(t sim.Time, ok bool) { *e2 = t })
	})
	reconfAt := sim.Time(100 * time.Millisecond)
	k.At(reconfAt, func() {
		for _, p := range []*netem.Pipe{pa, pb} {
			cfg := p.Config()
			cfg.Bandwidth = 0
			p.Reconfigure(cfg)
			m.PipeReconfigured(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range []*sim.Time{e1, e2} {
		if *e != reconfAt {
			t.Errorf("flow %d exits at %v, want %v (unlimited from the reconfigure instant)", i+1, *e, reconfAt)
		}
	}
}

// TestFlowReconfigureSharesComponent: re-rating one pipe re-solves the
// whole component: two flows sharing the pipe both speed up when it is
// upgraded.
func TestFlowReconfigureSharesComponent(t *testing.T) {
	const size = 125_000
	k := sim.New(1)
	m := New(k)
	p := netem.NewPipe(k, "p", netem.PipeConfig{Bandwidth: 1 * netem.Mbps})
	// Two concurrent flows: each gets 0.5 Mbps -> 2 s alone.
	e1 := startFlow(k, m, p, 0, size)
	e2 := startFlow(k, m, p, 0, size)
	// At 1 s (1 Mbit carried total, 0.5 Mbit left each), quadruple the
	// link: each flow gets 2 Mbps, finishing 0.25 s later.
	k.At(sim.Time(time.Second), func() {
		cfg := p.Config()
		cfg.Bandwidth = 4 * netem.Mbps
		p.Reconfigure(cfg)
		m.PipeReconfigured(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(1250 * time.Millisecond)
	if *e1 != want || *e2 != want {
		t.Errorf("flows exit at %v / %v, want both %v", *e1, *e2, want)
	}
}
