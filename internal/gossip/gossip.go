// Package gossip implements an epidemic dissemination protocol over
// the emulated network — a third peer-to-peer system for the platform,
// in the Demers et al. (PODC '87) tradition: push rumor mongering with
// a fanout parameter, plus periodic anti-entropy exchanges that repair
// missed updates.
//
// Gossip protocols are the standard subject for dissemination-latency
// studies: how fast does an update reach every node, as a function of
// fanout, population size and edge-link latency? The platform answers
// those questions deterministically.
package gossip

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// Port is the gossip protocol port.
const Port ip.Port = 4100

// Update is one disseminated item.
type Update struct {
	ID      uint64
	Origin  ip.Addr
	Payload string
}

// wire message kinds.
type msgKind int

const (
	kindPush msgKind = iota // rumor push: a batch of updates
	kindDigest
	kindDigestReply
)

type wireMsg struct {
	Kind    msgKind
	Updates []Update
	Have    []uint64 // digest: known update ids
}

func (m wireMsg) wireSize() int {
	return 16 + 64*len(m.Updates) + 8*len(m.Have)
}

// Config tunes the protocol.
type Config struct {
	// Fanout is how many random peers receive each fresh rumor.
	Fanout int
	// HotRounds is how many gossip rounds a rumor stays hot (pushed).
	HotRounds int
	// Round is the gossip round period.
	Round time.Duration
	// AntiEntropy is the period of digest exchanges (0 disables).
	AntiEntropy time.Duration
}

// DefaultConfig returns textbook parameters.
func DefaultConfig() Config {
	return Config{
		Fanout:      3,
		HotRounds:   3,
		Round:       time.Second,
		AntiEntropy: 10 * time.Second,
	}
}

// Node is one gossip participant.
type Node struct {
	h     *vnet.Host
	cfg   Config
	peers []ip.Endpoint // full membership view (static, by experiment design)

	known map[uint64]Update
	hot   map[uint64]int // rounds remaining as a hot rumor
	alive bool

	// FirstSeen records when each update arrived (the dissemination-
	// latency measurement).
	FirstSeen map[uint64]sim.Time

	// Stats counts protocol activity.
	Stats NodeStats
}

// NodeStats counts gossip traffic.
type NodeStats struct {
	Pushes       uint64
	Digests      uint64
	UpdatesRecvd uint64
	Duplicates   uint64
}

// NewNode creates a gossip node on host h.
func NewNode(h *vnet.Host, cfg Config) *Node {
	return &Node{
		h:         h,
		cfg:       cfg,
		known:     make(map[uint64]Update),
		hot:       make(map[uint64]int),
		FirstSeen: make(map[uint64]sim.Time),
	}
}

// SetPeers installs the membership view.
func (n *Node) SetPeers(peers []ip.Endpoint) { n.peers = peers }

// Knows reports whether the node has seen update id.
func (n *Node) Knows(id uint64) bool {
	_, ok := n.known[id]
	return ok
}

// KnownCount returns how many updates the node has.
func (n *Node) KnownCount() int { return len(n.known) }

// Start launches the server and the gossip/anti-entropy loops.
func (n *Node) Start() {
	n.alive = true
	k := n.h.Network().Kernel()
	name := "gossip-" + n.h.Addr().String()
	k.Go(name+"/server", n.serve)
	k.Go(name+"/rounds", func(p *sim.Proc) {
		for n.alive {
			p.Sleep(n.cfg.Round)
			n.gossipRound(p)
		}
	})
	if n.cfg.AntiEntropy > 0 {
		k.Go(name+"/anti-entropy", func(p *sim.Proc) {
			for n.alive {
				p.Sleep(n.cfg.AntiEntropy)
				n.antiEntropy(p)
			}
		})
	}
}

// Stop halts the node.
func (n *Node) Stop() { n.alive = false }

// Publish introduces a new update at this node.
func (n *Node) Publish(p *sim.Proc, u Update) {
	n.learn(p.Now(), u)
}

// learn ingests an update, marking it hot if new.
func (n *Node) learn(now sim.Time, u Update) bool {
	if _, dup := n.known[u.ID]; dup {
		n.Stats.Duplicates++
		return false
	}
	n.known[u.ID] = u
	n.hot[u.ID] = n.cfg.HotRounds
	n.FirstSeen[u.ID] = now
	n.Stats.UpdatesRecvd++
	return true
}

// gossipRound pushes all hot rumors to Fanout random peers.
func (n *Node) gossipRound(p *sim.Proc) {
	if len(n.hot) == 0 || len(n.peers) == 0 {
		return
	}
	batch := n.collectHot()
	rng := n.h.Network().Kernel().Rand()
	fanout := n.cfg.Fanout
	if fanout > len(n.peers) {
		fanout = len(n.peers)
	}
	for _, i := range rng.Perm(len(n.peers))[:fanout] {
		target := n.peers[i]
		if target.Addr == n.h.Addr() {
			continue
		}
		n.Stats.Pushes++
		n.sendAsync(p, target, wireMsg{Kind: kindPush, Updates: batch})
	}
}

// antiEntropy exchanges digests with one random peer and pulls what is
// missing (resolves rumors that died before full coverage).
func (n *Node) antiEntropy(p *sim.Proc) {
	if len(n.peers) == 0 {
		return
	}
	rng := n.h.Network().Kernel().Rand()
	target := n.peers[rng.Intn(len(n.peers))]
	if target.Addr == n.h.Addr() {
		return
	}
	n.Stats.Digests++
	n.sendAsync(p, target, wireMsg{Kind: kindDigest, Have: n.digestIDs()})
}

// collectHot drains one round of hotness from every hot rumor and
// returns the push payload in ID order. The hot set is a map; sorting
// here keeps the wire payload (and the peer's learn order) independent
// of Go's randomized iteration order.
func (n *Node) collectHot() []Update {
	var batch []Update
	//lint:allow maporder collected batch is sorted by ID below before use
	for id, rounds := range n.hot {
		batch = append(batch, n.known[id])
		if rounds <= 1 {
			delete(n.hot, id)
		} else {
			n.hot[id] = rounds - 1
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].ID < batch[j].ID })
	return batch
}

// digestIDs returns every known update ID in ascending order — the
// anti-entropy digest payload, sorted for the same reason as
// collectHot.
func (n *Node) digestIDs() []uint64 {
	have := make([]uint64, 0, len(n.known))
	//lint:allow maporder collected digest is sorted below before use
	for id := range n.known {
		have = append(have, id)
	}
	sort.Slice(have, func(i, j int) bool { return have[i] < have[j] })
	return have
}

// missingFor returns the updates a peer with the given digest lacks,
// in ID order.
func (n *Node) missingFor(have []uint64) []Update {
	peerHas := make(map[uint64]bool, len(have))
	for _, id := range have {
		peerHas[id] = true
	}
	var missing []Update
	//lint:allow maporder collected updates are sorted by ID below before use
	for id, u := range n.known {
		if !peerHas[id] {
			missing = append(missing, u)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].ID < missing[j].ID })
	return missing
}

// sendAsync delivers one message over a transient connection.
func (n *Node) sendAsync(p *sim.Proc, to ip.Endpoint, m wireMsg) {
	p.Go("gossip-send", func(p *sim.Proc) {
		c, err := n.h.Dial(p, to)
		if err != nil {
			return
		}
		defer c.Close(p)
		c.SendMeta(p, m.wireSize(), m)
		if m.Kind == kindDigest {
			// Wait for the reply carrying missing updates.
			pk, ok, err := c.RecvTimeout(p, 10*time.Second)
			if err != nil || !ok {
				return
			}
			if reply, isMsg := pk.Meta.(wireMsg); isMsg {
				for _, u := range reply.Updates {
					n.learn(p.Now(), u)
				}
			}
		}
	})
}

// serve handles inbound pushes and digests.
func (n *Node) serve(p *sim.Proc) {
	l, err := n.h.Listen(p, Port)
	if err != nil {
		return
	}
	for {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		c := conn
		p.Go("gossip-conn", func(p *sim.Proc) {
			defer c.Close(p)
			pk, ok, err := c.RecvTimeout(p, 10*time.Second)
			if err != nil || !ok || !n.alive {
				return
			}
			m, isMsg := pk.Meta.(wireMsg)
			if !isMsg {
				return
			}
			switch m.Kind {
			case kindPush:
				for _, u := range m.Updates {
					n.learn(p.Now(), u)
				}
			case kindDigest:
				reply := wireMsg{Kind: kindDigestReply, Updates: n.missingFor(m.Have)}
				c.SendMeta(p, reply.wireSize(), reply)
				// Symmetric repair: learn what the peer has that we
				// lack at the next anti-entropy round (pull-only here).
			}
		})
	}
}

// String describes the node.
func (n *Node) String() string {
	return fmt.Sprintf("gossip(%v: %d known, %d hot)", n.h.Addr(), len(n.known), len(n.hot))
}
