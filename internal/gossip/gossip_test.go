package gossip

import (
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

var lan = topo.LinkClass{Name: "lan", Down: netem.Gbps, Up: netem.Gbps, Latency: time.Millisecond}

// population builds n gossip nodes with full membership views.
func population(t *testing.T, seed int64, n int, class topo.LinkClass, cfg Config) (*sim.Kernel, []*Node) {
	t.Helper()
	k := sim.New(seed)
	net := vnet.NewNetwork(k, nil, vnet.DefaultConfig())
	var nodes []*Node
	var eps []ip.Endpoint
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < n; i++ {
		h, err := net.AddHostClass(base.Add(uint32(i)), class)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, NewNode(h, cfg))
		eps = append(eps, ip.Endpoint{Addr: h.Addr(), Port: Port})
	}
	for _, nd := range nodes {
		nd.SetPeers(eps)
		nd.Start()
	}
	return k, nodes
}

// coverage returns how many nodes know update id.
func coverage(nodes []*Node, id uint64) int {
	c := 0
	for _, nd := range nodes {
		if nd.Knows(id) {
			c++
		}
	}
	return c
}

func TestRumorReachesEveryone(t *testing.T) {
	k, nodes := population(t, 1, 32, lan, DefaultConfig())
	k.Go("publisher", func(p *sim.Proc) {
		p.Sleep(time.Second)
		nodes[0].Publish(p, Update{ID: 1, Origin: nodes[0].h.Addr(), Payload: "hello"})
		p.Sleep(30 * time.Second)
		if got := coverage(nodes, 1); got != 32 {
			t.Errorf("coverage = %d/32 after 30s", got)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDisseminationIsLogarithmicRounds(t *testing.T) {
	// With fanout 3, coverage should be (nearly) complete within
	// ~log_3(N) + a few rounds — far sooner than N rounds.
	k, nodes := population(t, 1, 64, lan, DefaultConfig())
	var at90 sim.Time
	k.Go("driver", func(p *sim.Proc) {
		start := p.Now()
		nodes[0].Publish(p, Update{ID: 7})
		for coverage(nodes, 7) < 58 { // 90% of 64
			p.Sleep(500 * time.Millisecond)
			if p.Now().Sub(start) > 5*time.Minute {
				t.Error("dissemination stalled")
				break
			}
		}
		at90 = p.Now()
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// log_3(64) ≈ 3.8 rounds of 1s; allow 12 rounds for stragglers.
	if at90 > sim.Time(12*time.Second) {
		t.Fatalf("90%% coverage took %v, want ≲12 rounds", at90)
	}
}

func TestAntiEntropyRepairsMissedRumor(t *testing.T) {
	// A rumor whose hot phase dies early (fanout 1, 1 round, 5 nodes)
	// still reaches everyone through anti-entropy digests.
	cfg := Config{Fanout: 1, HotRounds: 1, Round: time.Second, AntiEntropy: 5 * time.Second}
	k, nodes := population(t, 1, 5, lan, cfg)
	k.Go("driver", func(p *sim.Proc) {
		nodes[0].Publish(p, Update{ID: 42})
		p.Sleep(4 * time.Minute)
		if got := coverage(nodes, 42); got != 5 {
			t.Errorf("anti-entropy left coverage at %d/5", got)
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNoAntiEntropyMayStrand(t *testing.T) {
	// The same starved configuration without anti-entropy strands the
	// rumor — showing the repair mechanism is what completes coverage.
	cfg := Config{Fanout: 1, HotRounds: 1, Round: time.Second, AntiEntropy: 0}
	k, nodes := population(t, 1, 5, lan, cfg)
	var covered int
	k.Go("driver", func(p *sim.Proc) {
		nodes[0].Publish(p, Update{ID: 42})
		p.Sleep(4 * time.Minute)
		covered = coverage(nodes, 42)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if covered == 5 {
		t.Skip("lucky seed covered everyone without anti-entropy")
	}
	if covered < 1 {
		t.Fatal("publisher lost its own rumor")
	}
}

func TestMultipleUpdatesAllDisseminate(t *testing.T) {
	k, nodes := population(t, 1, 16, lan, DefaultConfig())
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			nodes[i%16].Publish(p, Update{ID: uint64(100 + i)})
			p.Sleep(500 * time.Millisecond)
		}
		p.Sleep(time.Minute)
		for i := 0; i < 10; i++ {
			if got := coverage(nodes, uint64(100+i)); got != 16 {
				t.Errorf("update %d coverage = %d/16", 100+i, got)
			}
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatesCounted(t *testing.T) {
	k, nodes := population(t, 1, 8, lan, DefaultConfig())
	k.Go("driver", func(p *sim.Proc) {
		nodes[0].Publish(p, Update{ID: 1})
		p.Sleep(30 * time.Second)
		var dups uint64
		for _, nd := range nodes {
			dups += nd.Stats.Duplicates
		}
		if dups == 0 {
			t.Error("push gossip with fanout 3 must produce duplicates")
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyScalesWithLinkClass(t *testing.T) {
	// Same population and fanout on DSL: time to full coverage grows
	// with link latency but stays round-dominated.
	run := func(class topo.LinkClass) sim.Time {
		k, nodes := population(t, 1, 16, class, DefaultConfig())
		var done sim.Time
		k.Go("driver", func(p *sim.Proc) {
			start := p.Now()
			nodes[0].Publish(p, Update{ID: 5})
			for coverage(nodes, 5) < 16 && p.Now().Sub(start) < 5*time.Minute {
				p.Sleep(250 * time.Millisecond)
			}
			done = p.Now()
			k.Stop()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	fast := run(lan)
	slow := run(topo.DSL)
	if slow < fast {
		t.Fatalf("DSL coverage (%v) should not beat LAN (%v)", slow, fast)
	}
}

func TestFirstSeenRecorded(t *testing.T) {
	k, nodes := population(t, 1, 8, lan, DefaultConfig())
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		nodes[0].Publish(p, Update{ID: 9})
		p.Sleep(30 * time.Second)
		for i, nd := range nodes {
			if _, ok := nd.FirstSeen[9]; !ok && nd.Knows(9) {
				t.Errorf("node %d knows update but has no FirstSeen", i)
			}
		}
		// The origin saw it first.
		for i, nd := range nodes[1:] {
			if nd.Knows(9) && nd.FirstSeen[9] < nodes[0].FirstSeen[9] {
				t.Errorf("node %d saw the update before its origin", i+1)
			}
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoppedNodeStopsGossiping(t *testing.T) {
	k, nodes := population(t, 1, 8, lan, DefaultConfig())
	k.Go("driver", func(p *sim.Proc) {
		nodes[3].Stop()
		p.Sleep(2 * time.Second) // let its loops drain
		before := nodes[3].Stats.Pushes
		nodes[0].Publish(p, Update{ID: 11})
		p.Sleep(30 * time.Second)
		if nodes[3].Stats.Pushes != before {
			t.Error("stopped node kept pushing")
		}
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWirePayloadsSortedByID is the regression test for the map-order
// bug p2pvet's maporder analyzer flagged: the push batch, the
// anti-entropy digest and the digest reply were all built by ranging
// over a map, so the wire payload order — and with it the peer's learn
// order — changed from run to run. Payloads must come out in ID order
// no matter what order the maps were populated in.
func TestWirePayloadsSortedByID(t *testing.T) {
	n := &Node{
		known:     make(map[uint64]Update),
		hot:       make(map[uint64]int),
		FirstSeen: make(map[uint64]sim.Time),
		cfg:       DefaultConfig(),
	}
	// Populate in descending order so an insertion-ordered (or
	// map-iteration-ordered) implementation is maximally likely to
	// come out unsorted.
	ids := []uint64{907, 512, 404, 33, 12, 5, 2}
	for _, id := range ids {
		n.known[id] = Update{ID: id}
		n.hot[id] = 2
	}

	batch := n.collectHot()
	if len(batch) != len(ids) {
		t.Fatalf("collectHot returned %d updates, want %d", len(batch), len(ids))
	}
	for i := 1; i < len(batch); i++ {
		if batch[i-1].ID >= batch[i].ID {
			t.Fatalf("push batch not in ascending ID order: %v", batch)
		}
	}

	have := n.digestIDs()
	if len(have) != len(ids) {
		t.Fatalf("digestIDs returned %d IDs, want %d", len(have), len(ids))
	}
	for i := 1; i < len(have); i++ {
		if have[i-1] >= have[i] {
			t.Fatalf("digest not in ascending ID order: %v", have)
		}
	}

	// A peer that only has the two smallest IDs must get the rest back
	// in ascending order.
	missing := n.missingFor([]uint64{2, 5})
	if len(missing) != len(ids)-2 {
		t.Fatalf("missingFor returned %d updates, want %d", len(missing), len(ids)-2)
	}
	for i, u := range missing {
		if i > 0 && missing[i-1].ID >= u.ID {
			t.Fatalf("digest reply not in ascending ID order: %v", missing)
		}
		if u.ID == 2 || u.ID == 5 {
			t.Fatalf("digest reply includes an ID the peer already has: %v", missing)
		}
	}

	// collectHot also drains hotness: two rounds empty the hot set.
	n.collectHot()
	if got := n.collectHot(); len(got) != 0 {
		t.Fatalf("hot set not drained after HotRounds rounds: %v", got)
	}
}
