// Package ip provides the IPv4-style addressing used by the emulated
// network: 32-bit addresses, CIDR prefixes and address arithmetic.
//
// P2PLab assigns each virtual node an interface-alias IP in a dedicated
// subnet (e.g. 10.0.0.0/8) while physical nodes keep an administration
// address (e.g. 192.168.38.0/24); this package supplies the vocabulary
// for that scheme.
package ip

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is a 32-bit IPv4-style address.
type Addr uint32

// ParseAddr parses dotted-quad notation ("10.1.3.207").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ip: invalid address %q", s)
	}
	var a uint32
	for _, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("ip: invalid address %q", s)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr that panics on error; for literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String formats the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Add returns the address n positions after a.
func (a Addr) Add(n uint32) Addr { return a + Addr(n) }

// IsZero reports whether the address is the zero value (0.0.0.0),
// conventionally "unbound".
func (a Addr) IsZero() bool { return a == 0 }

// Prefix is a CIDR block: a base address and a mask length.
type Prefix struct {
	addr Addr
	bits int
}

// NewPrefix returns the prefix addr/bits with host bits zeroed.
func NewPrefix(addr Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{addr: addr & mask(bits), bits: bits}
}

// ParsePrefix parses CIDR notation ("10.1.0.0/16"). A bare address is
// treated as a /32.
func ParsePrefix(s string) (Prefix, error) {
	addrStr, bitsStr, found := strings.Cut(s, "/")
	bits := 32
	if found {
		var err error
		bits, err = strconv.Atoi(bitsStr)
		if err != nil || bits < 0 || bits > 32 {
			return Prefix{}, fmt.Errorf("ip: invalid prefix %q", s)
		}
	}
	a, err := ParseAddr(addrStr)
	if err != nil {
		return Prefix{}, err
	}
	return NewPrefix(a, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error; for literals.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// Addr returns the base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length.
func (p Prefix) Bits() int { return p.bits }

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a&mask(p.bits) == p.addr }

// ContainsPrefix reports whether q is entirely inside p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// Size returns the number of addresses in the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - p.bits) }

// Nth returns the n-th address of the prefix (0 = base). It panics if n
// exceeds the prefix size.
func (p Prefix) Nth(n uint32) Addr {
	if uint64(n) >= p.Size() {
		panic(fmt.Sprintf("ip: index %d out of prefix %v", n, p))
	}
	return p.addr.Add(n)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%v/%d", p.addr, p.bits) }

// Port is a 16-bit transport port.
type Port uint16

// Endpoint is an (address, port) pair, the identity of a socket.
type Endpoint struct {
	Addr Addr
	Port Port
}

// String formats the endpoint as "addr:port".
func (e Endpoint) String() string { return fmt.Sprintf("%v:%d", e.Addr, e.Port) }
