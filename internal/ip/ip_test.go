package ip

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"10.0.0.1", 0x0a000001, true},
		{"192.168.38.2", 0xc0a82602, true},
		{"255.255.255.255", 0xffffffff, true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"a.b.c.d", 0, false},
		{"-1.0.0.0", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on bad address")
		}
	}()
	MustParseAddr("not-an-address")
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseAddr("10.1.3.207")) {
		t.Error("10.1.0.0/16 should contain 10.1.3.207")
	}
	if p.Contains(MustParseAddr("10.2.2.117")) {
		t.Error("10.1.0.0/16 should not contain 10.2.2.117")
	}
}

func TestPrefixNormalizesHostBits(t *testing.T) {
	p := MustParsePrefix("10.1.3.207/16")
	if p.Addr() != MustParseAddr("10.1.0.0") {
		t.Errorf("base = %v, want 10.1.0.0", p.Addr())
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPrefixContainsPrefix(t *testing.T) {
	outer := MustParsePrefix("10.1.0.0/16")
	inner := MustParsePrefix("10.1.3.0/24")
	other := MustParsePrefix("10.2.0.0/16")
	if !outer.ContainsPrefix(inner) {
		t.Error("10.1.0.0/16 should contain 10.1.3.0/24")
	}
	if inner.ContainsPrefix(outer) {
		t.Error("/24 cannot contain /16")
	}
	if outer.ContainsPrefix(other) {
		t.Error("disjoint prefixes")
	}
	if !outer.ContainsPrefix(outer) {
		t.Error("a prefix contains itself")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("192.168.38.0/24")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes overlap")
	}
	if a.Overlaps(c) {
		t.Error("10/8 and 192.168.38/24 are disjoint")
	}
}

func TestPrefixSizeAndNth(t *testing.T) {
	p := MustParsePrefix("10.1.3.0/24")
	if p.Size() != 256 {
		t.Fatalf("Size = %d, want 256", p.Size())
	}
	if p.Nth(207) != MustParseAddr("10.1.3.207") {
		t.Fatalf("Nth(207) = %v", p.Nth(207))
	}
}

func TestPrefixNthPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustParsePrefix("10.1.3.0/24").Nth(256)
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"10.0.0.0/33", "10.0.0.0/-1", "10.0.0/8", "x/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", s)
		}
	}
}

func TestParsePrefixBareAddr(t *testing.T) {
	p, err := ParsePrefix("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits() != 32 || p.Addr() != MustParseAddr("10.0.0.1") {
		t.Fatalf("bare addr parsed as %v", p)
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// Any address constructed by Nth must be contained in its prefix.
	f := func(raw uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := NewPrefix(Addr(raw), bits)
		n := uint32(uint64(raw) % p.Size())
		return p.Contains(p.Nth(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBitsPrefixContainsEverything(t *testing.T) {
	p := NewPrefix(0, 0)
	f := func(raw uint32) bool { return p.Contains(Addr(raw)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{Addr: MustParseAddr("10.0.0.1"), Port: 6881}
	if e.String() != "10.0.0.1:6881" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestAddrIsZero(t *testing.T) {
	if !Addr(0).IsZero() {
		t.Error("0 should be zero")
	}
	if MustParseAddr("10.0.0.1").IsZero() {
		t.Error("10.0.0.1 should not be zero")
	}
}
