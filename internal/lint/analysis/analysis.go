// Package analysis is a minimal, dependency-free analogue of the
// golang.org/x/tools/go/analysis framework, carrying exactly what the
// p2pvet analyzers need: a named Analyzer with a Run function, a Pass
// giving it one typechecked package, and a flat string-valued fact
// store for cross-package propagation.
//
// It exists because this repository builds offline against the
// standard library only; the x/tools module is deliberately not a
// dependency. The shapes mirror x/tools closely enough that porting
// the analyzers onto the real framework later is mechanical.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Name appears in diagnostics and in
// suppression comments (//lint:allow <name> <reason>).
type Analyzer struct {
	Name string
	Doc  string

	// UsesFacts marks analyzers whose verdicts depend on facts exported
	// by dependency packages. Drivers must run fact-using analyzers on
	// every package in the import graph (the vetx chain), not only on
	// the packages being reported on.
	UsesFacts bool

	Run func(*Pass) error
}

// Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass gives an analyzer one typechecked package.
//
// Files holds only the files the analyzer should report on: drivers
// exclude _test.go files, since the invariants p2pvet enforces bind
// emulation code, not host-side test harnesses.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. The driver owns suppression
	// (//lint:allow) filtering; analyzers always report.
	Report func(Diagnostic)

	// ImportFact looks up a fact exported by this package's (transitive)
	// dependencies under the running analyzer's namespace. Keys are
	// analyzer-chosen; tokenheld uses types.Func.FullName.
	ImportFact func(key string) (string, bool)

	// ExportFact publishes a fact for dependent packages.
	ExportFact func(key, value string)
}

// Reportf formats and records one diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}
