package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// FactSet is the serializable fact state of one package: for each
// analyzer name, a flat key→value map. A package's exported set is the
// union of its own facts and everything imported from its dependency
// chain, so fact propagation is transitive by construction (the fact
// volume is tiny: a few hundred annotated functions module-wide).
type FactSet map[string]map[string]string

// NewFactSet returns an empty fact set.
func NewFactSet() FactSet { return make(FactSet) }

// Merge folds other into fs.
func (fs FactSet) Merge(other FactSet) {
	for a, kv := range other {
		m := fs[a]
		if m == nil {
			m = make(map[string]string, len(kv))
			fs[a] = m
		}
		for k, v := range kv {
			m[k] = v
		}
	}
}

// Get looks up a fact under an analyzer namespace.
func (fs FactSet) Get(analyzer, key string) (string, bool) {
	v, ok := fs[analyzer][key]
	return v, ok
}

// Set records a fact under an analyzer namespace.
func (fs FactSet) Set(analyzer, key, value string) {
	m := fs[analyzer]
	if m == nil {
		m = make(map[string]string)
		fs[analyzer] = m
	}
	m[key] = value
}

// Encode serializes the set deterministically (sorted keys, stable
// bytes) so vetx outputs are cache-friendly under the go command's
// content-based build cache.
func (fs FactSet) Encode() ([]byte, error) {
	// json.Marshal sorts map keys, which is all the determinism needed.
	return json.Marshal(fs)
}

// DecodeFacts parses a serialized fact set; empty input yields an
// empty set (a dependency that exported no facts writes zero bytes or
// an empty object).
func DecodeFacts(data []byte) (FactSet, error) {
	fs := NewFactSet()
	if len(data) == 0 {
		return fs, nil
	}
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, err
	}
	return fs, nil
}

// Keys returns the sorted keys under one analyzer namespace (test
// helper).
func (fs FactSet) Keys(analyzer string) []string {
	var out []string
	for k := range fs[analyzer] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
