package analysis

import (
	"bytes"
	"testing"
)

func TestFactSetRoundTrip(t *testing.T) {
	fs := NewFactSet()
	fs.Set("tokenheld", "(*repro/internal/sim.Kernel).Schedule", "token,arg")
	fs.Set("tokenheld", "(*repro/internal/sim.Kernel).Go", "entry,arg")

	data, err := fs.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeFacts(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if v, ok := back.Get("tokenheld", "(*repro/internal/sim.Kernel).Schedule"); !ok || v != "token,arg" {
		t.Errorf("round-tripped fact = (%q, %v), want (token,arg, true)", v, ok)
	}
	if _, ok := back.Get("tokenheld", "nope"); ok {
		t.Error("phantom fact after round trip")
	}

	// Deterministic bytes: the vetx content feeds the build cache.
	again, err := back.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("encoding not stable:\n%s\n%s", data, again)
	}
}

func TestFactSetMerge(t *testing.T) {
	a := NewFactSet()
	a.Set("tokenheld", "f", "token")
	b := NewFactSet()
	b.Set("tokenheld", "g", "entry")
	b.Set("other", "h", "x")

	a.Merge(b)
	if got := a.Keys("tokenheld"); len(got) != 2 || got[0] != "f" || got[1] != "g" {
		t.Errorf("merged keys = %v, want [f g]", got)
	}
	if v, ok := a.Get("other", "h"); !ok || v != "x" {
		t.Errorf("cross-namespace merge lost h: (%q, %v)", v, ok)
	}
}

func TestDecodeEmpty(t *testing.T) {
	fs, err := DecodeFacts(nil)
	if err != nil || len(fs) != 0 {
		t.Fatalf("DecodeFacts(nil) = (%v, %v), want empty set", fs, err)
	}
}
