package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// randConstructors are the math/rand package-level functions that build
// an explicitly seeded source — the blessed pattern
// (rand.New(rand.NewSource(cfg.Seed))). Everything else at package
// level draws from (or reseeds) the process-global source, whose
// sequence is shared across every kernel in a sweep and, since Go 1.20,
// wall-seeded by default: nondeterminism by construction.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// DetRand forbids the global math/rand state in kernel-driven packages.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand draws; RNGs must be seeded *rand.Rand threaded from config",
	Run: func(pass *analysis.Pass) error {
		if !KernelPackage(NormalizeImportPath(pass.Pkg.Path())) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok {
					return true
				}
				// Methods on *rand.Rand (an explicitly threaded source) are
				// fine; only package-level draws touch the global source.
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(id.Pos(),
					"detrand: rand.%s uses the process-global random source; thread a seeded *rand.Rand from config (rand.New(rand.NewSource(seed)))",
					fn.Name())
				return true
			})
		}
		return nil
	},
}
