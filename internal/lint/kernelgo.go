package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// KernelGo forbids native Go concurrency in kernel-driven packages:
// `go` statements, `select`, channel types and operations, and the
// sync package. Inside the emulator exactly one simulated goroutine
// runs at a time on one serialized timeline; concurrency must go
// through the kernel's own primitives (sim.Kernel.Go, sim.Chan,
// sim.Cond, sim.Semaphore, sim.WaitGroup), which park on virtual time
// and keep the schedule deterministic. Native primitives would race
// the wall clock against the virtual one.
//
// The legal exceptions are the documented boundary where true
// cross-goroutine concurrency exists — the sim kernel's own
// run-loop/park/wake machinery and the flow solver's worker pool —
// each carrying an explicit //lint:allow kernelgo <reason>.
var KernelGo = &analysis.Analyzer{
	Name: "kernelgo",
	Doc:  "forbid native go/chan/select/sync in kernel-context code; sim.Kernel primitives are the only legal concurrency",
	Run: func(pass *analysis.Pass) error {
		if !KernelPackage(NormalizeImportPath(pass.Pkg.Path())) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "kernelgo: native `go` statement in kernel-context code; spawn simulated goroutines with sim.Kernel.Go")
				case *ast.SelectStmt:
					pass.Reportf(n.Pos(), "kernelgo: `select` in kernel-context code; block on sim.Chan/sim.Cond instead")
				case *ast.SendStmt:
					pass.Reportf(n.Pos(), "kernelgo: native channel send in kernel-context code; use sim.Chan")
				case *ast.UnaryExpr:
					if n.Op.String() == "<-" {
						pass.Reportf(n.Pos(), "kernelgo: native channel receive in kernel-context code; use sim.Chan")
					}
				case *ast.ChanType:
					pass.Reportf(n.Pos(), "kernelgo: native channel type in kernel-context code; use sim.Chan")
				case *ast.RangeStmt:
					if t := pass.TypesInfo.TypeOf(n.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							pass.Reportf(n.Pos(), "kernelgo: range over native channel in kernel-context code; use sim.Chan")
						}
					}
				case *ast.CallExpr:
					if id, ok := unparen(n.Fun).(*ast.Ident); ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
							if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil {
								if _, isChan := t.Underlying().(*types.Chan); isChan {
									pass.Reportf(n.Pos(), "kernelgo: close of native channel in kernel-context code; use sim.Chan.Close")
								}
							}
						}
					}
				case *ast.Ident:
					obj := pass.TypesInfo.Uses[n]
					if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
						pass.Reportf(n.Pos(), "kernelgo: sync.%s in kernel-context code; the kernel serializes execution — use sim.Cond/sim.Semaphore/sim.WaitGroup", obj.Name())
					}
				}
				return true
			})
		}
		return nil
	},
}
