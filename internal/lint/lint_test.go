package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture package impersonates a kernel-driven import path (the
// analyzers key on the path, and testdata trees can claim any path
// they like) and pins the analyzer's behavior with // want comments.

func TestWallTime(t *testing.T) {
	linttest.Run(t, "testdata/src", "repro/internal/sched", lint.WallTime)
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, "testdata/src", "repro/internal/churn", lint.DetRand)
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata/src", "repro/internal/gossip", lint.MapOrder)
}

func TestKernelGo(t *testing.T) {
	linttest.Run(t, "testdata/src", "repro/internal/netem", lint.KernelGo)
}

// TestTokenHeld loads a fake sim package and a vnet caller: the
// //p2p: annotations must cross the package boundary as facts.
func TestTokenHeld(t *testing.T) {
	linttest.Run(t, "testdata/src", "repro/internal/vnet", lint.TokenHeld)
}

// TestNonKernelPackagesAreExempt runs the whole suite over a host-side
// fixture full of wall clocks, global rand, sync and channels: the
// kernel-scoped analyzers must stay silent outside kernel-driven
// import paths (and tokenheld, which is module-wide, has nothing to
// say about code that never touches the token surface).
func TestNonKernelPackagesAreExempt(t *testing.T) {
	for _, a := range lint.Analyzers() {
		linttest.Run(t, "testdata/src", "repro/internal/hostexp", a)
	}
}
