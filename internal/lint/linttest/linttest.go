// Package linttest is a hermetic analysistest replacement for the
// internal/lint analyzer suite. It loads fixture packages from a
// testdata/src tree (import path = directory path, so fixtures can
// impersonate kernel-driven module packages and even the standard
// library), typechecks them from source, runs one analyzer with the
// same suppression filtering the p2pvet driver applies, and matches
// the resulting diagnostics against // want "regexp" comments.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// Run loads srcRoot/<pkgPath> (and, recursively, every fixture package
// it imports), runs a on all of them in dependency order — so facts
// flow across fixture package boundaries exactly as vetx files flow
// under go vet — and checks every loaded fixture's diagnostics against
// its // want comments.
func Run(t *testing.T, srcRoot, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	l := &loader{
		t:       t,
		root:    srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*loadedPkg),
		loading: make(map[string]bool),
	}
	l.load(pkgPath)

	facts := analysis.NewFactSet()
	for _, p := range l.order { // dependencies first
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     p.files,
			Pkg:       p.pkg,
			TypesInfo: p.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			ImportFact: func(key string) (string, bool) {
				return facts.Get(a.Name, key)
			},
			ExportFact: func(key, value string) {
				facts.Set(a.Name, key, value)
			},
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s on %s: %v", a.Name, p.path, err)
		}
		sup := lint.CollectSuppressions(l.fset, p.files)
		var surviving []analysis.Diagnostic
		surviving = append(surviving, sup.Bad()...)
		for _, d := range diags {
			name, _, _ := strings.Cut(d.Message, ":")
			if !sup.Allowed(name, l.fset.Position(d.Pos)) {
				surviving = append(surviving, d)
			}
		}
		l.check(p, surviving)
	}
}

type loadedPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	t       *testing.T
	root    string
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
	loading map[string]bool
	order   []*loadedPkg // topological: dependencies before dependents
}

func (l *loader) load(path string) *loadedPkg {
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	if l.loading[path] {
		l.t.Fatalf("fixture import cycle at %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("fixture package %q: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.t.Fatalf("fixture package %q has no Go files", path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		dep := l.load(ipath) // recursion yields dependency-first order
		return dep.pkg, nil
	})}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("typecheck %q: %v", path, err)
	}
	p := &loadedPkg{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = p
	l.order = append(l.order, p)
	return p
}

// wantRe extracts the quoted regexps of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// check matches diagnostics against the package's want comments:
// every want must be hit by a diagnostic on its line, and every
// diagnostic must be claimed by a want.
func (l *loader) check(p *loadedPkg, diags []analysis.Diagnostic) {
	l.t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := l.fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						l.t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	unmatched := make(map[key][]*regexp.Regexp)
	for k, v := range wants {
		unmatched[k] = append([]*regexp.Regexp(nil), v...)
	}
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		rest := unmatched[k]
		hit := -1
		for i, re := range rest {
			if re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			l.t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			continue
		}
		unmatched[k] = append(rest[:hit], rest[hit+1:]...)
	}
	var missed []string
	for k, res := range unmatched {
		for _, re := range res {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		l.t.Error(m)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
