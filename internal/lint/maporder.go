package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// MapOrder flags `range` over a map in kernel-driven packages when the
// loop body does anything order-sensitive. Go randomizes map iteration
// order per run, so any schedule, send, append or shared-state write
// that happens inside such a loop injects that randomness straight
// into the virtual timeline — the exact bug class the golden-trace
// digests caught twice (PRs 4 and 5) after the fact.
//
// The body classification is deliberately conservative; what it deems
// order-insensitive without help:
//
//   - pure builtins (len, cap, min, max, new) and type conversions
//   - delete — set subtraction is commutative
//   - integer accumulation into outer state (x++, x += v, x |= v, …);
//     float accumulation is NOT exempt (rounding is order-dependent)
//   - plain writes into an outer map/slice indexed by the iteration
//     key — distinct keys make those writes commutative
//
// Anything else — any other function call, any send, spawn or defer,
// any other write to state declared outside the loop — is reported.
// Genuinely order-insensitive loops (e.g. collect-then-sort) carry a
// justified //lint:allow maporder <reason>.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive iteration over Go maps in kernel-driven packages",
	Run: func(pass *analysis.Pass) error {
		if !KernelPackage(NormalizeImportPath(pass.Pkg.Path())) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, rs)
				return true
			})
		}
		return nil
	},
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	keyObj := rangeVarObj(info, rs.Key)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal defined in the body runs later (if at all); the
			// statement that captures or registers it is what's checked.
			return false
		case *ast.CallExpr:
			if reason := callVerdict(info, n); reason != "" {
				pass.Reportf(n.Pos(), "maporder: %s inside range over map — iteration order is randomized; iterate a sorted/stable order or justify with //lint:allow maporder <reason>", reason)
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "maporder: channel send inside range over map — iteration order is randomized")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "maporder: goroutine spawn inside range over map — iteration order is randomized")
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "maporder: defer inside range over map runs in iteration order")
		case *ast.IncDecStmt:
			checkOuterWrite(pass, rs, keyObj, n.X, token.Pos(0), true)
		case *ast.AssignStmt:
			commutative := n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.OR_ASSIGN || n.Tok == token.AND_ASSIGN || n.Tok == token.XOR_ASSIGN
			for _, lhs := range n.Lhs {
				checkOuterWrite(pass, rs, keyObj, lhs, n.TokPos, commutative)
			}
		}
		return true
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		return walk(n)
	})
}

// callVerdict classifies a call inside the loop body; it returns a
// non-empty description when the call makes the loop order-sensitive.
func callVerdict(info *types.Info, call *ast.CallExpr) string {
	// Type conversions are pure.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return ""
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max", "new", "delete", "append":
				// append's order effect is judged at the assignment that
				// receives it; delete is commutative set subtraction.
				return ""
			}
			return "builtin " + b.Name()
		}
	}
	return "call to " + exprString(call.Fun)
}

// checkOuterWrite reports writes to state declared outside the range
// statement, with the commutative-accumulation and keyed-index
// exemptions described on MapOrder.
func checkOuterWrite(pass *analysis.Pass, rs *ast.RangeStmt, keyObj types.Object, lhs ast.Expr, _ token.Pos, commutativeTok bool) {
	info := pass.TypesInfo
	lhs = unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		pass.Reportf(lhs.Pos(), "maporder: write through a computed expression inside range over map — iteration order is randomized")
		return
	}
	obj := info.Uses[root.Ident]
	if obj == nil {
		obj = info.Defs[root.Ident]
	}
	if obj == nil || declaredWithin(obj, rs) {
		return // loop-local state: per-iteration, order-free
	}
	// Commutative integer accumulation on the outer variable.
	if commutativeTok {
		if t := info.TypeOf(lhs); t != nil {
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
				return
			}
		}
		pass.Reportf(lhs.Pos(), "maporder: non-integer accumulation into %q inside range over map is order-dependent (float rounding / non-commutative op)", root.Ident.Name)
		return
	}
	// Plain `=` into an outer map/slice cell selected by the iteration
	// key: distinct keys, commutative writes.
	if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil && mentionsObj(info, ix.Index, keyObj) {
		return
	}
	pass.Reportf(lhs.Pos(), "maporder: write to %q (declared outside the loop) inside range over map — iteration order is randomized", root.Ident.Name)
}

// rangeVarObj resolves the object of a range key/value variable.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

type rootRef struct{ Ident *ast.Ident }

// rootIdent finds the base identifier of an assignable expression
// (x, x.f, x[i], *x, combinations thereof).
func rootIdent(e ast.Expr) *rootRef {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return &rootRef{Ident: v}
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func exprString(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	default:
		return "expression"
	}
}
