// Package lint implements p2pvet, the project's static-analysis suite.
// Five analyzers enforce at vet time the invariants the emulator
// otherwise only proves after the fact with golden-trace digests and
// -race runs (DESIGN decisions 11 and 13):
//
//   - walltime: no wall-clock reads in kernel-driven packages
//   - detrand:  no global math/rand state; RNGs are seeded and threaded
//   - maporder: no order-sensitive iteration over Go maps
//   - kernelgo: no native concurrency in kernel-context code
//   - tokenheld: the execution-token contract is respected
//
// The analyzers are framework-agnostic checks over a typechecked
// package (see internal/lint/analysis); cmd/p2pvet drives them under
// the `go vet -vettool` protocol.
package lint

import (
	"strings"

	"repro/internal/lint/analysis"
)

// ModulePath is the import-path root of this repository. The analyzers
// only ever fire inside it; everything else (standard library,
// hypothetical vendored code) is skipped wholesale.
const ModulePath = "repro"

// simPath is the package that owns the execution-token primitives. A
// parameter or receiver of type *sim.Proc is an implicit //p2p:token
// annotation (a Proc handle only exists inside a simulated goroutine).
const simPath = "repro/internal/sim"

// kernelDriven lists the packages whose code runs on (or feeds) the
// virtual timeline: one stray wall-clock read, global-RNG draw or
// map-order dependence here silently breaks run-over-run determinism.
// The walltime, detrand, maporder and kernelgo analyzers fire only in
// these packages; tokenheld is module-wide (the token contract also
// binds host-side callers in exp/serve/virt).
var kernelDriven = map[string]bool{
	"sim":      true,
	"vnet":     true,
	"netem":    true,
	"flow":     true,
	"bt":       true,
	"chord":    true,
	"gossip":   true,
	"churn":    true,
	"sched":    true,
	"scenario": true,
	"obs":      true,
	"topo":     true,
	"trace":    true,
	"ip":       true,
}

// KernelPackage reports whether importPath is one of the kernel-driven
// packages.
func KernelPackage(importPath string) bool {
	rest, ok := strings.CutPrefix(importPath, ModulePath+"/internal/")
	if !ok {
		return false
	}
	return kernelDriven[rest]
}

// InModule reports whether importPath belongs to this repository.
// Build-system import paths for test variants carry a " [pkg.test]"
// suffix; callers normalize with NormalizeImportPath first.
func InModule(importPath string) bool {
	return importPath == ModulePath || strings.HasPrefix(importPath, ModulePath+"/")
}

// NormalizeImportPath strips the build system's test-variant suffix
// ("repro/internal/sim [repro/internal/sim.test]" → "repro/internal/sim").
func NormalizeImportPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// Analyzers returns the full p2pvet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		WallTime,
		DetRand,
		MapOrder,
		KernelGo,
		TokenHeld,
	}
}
