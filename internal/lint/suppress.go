package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// Suppression grammar (DESIGN decision 13):
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the offending line, on the line immediately above
// it, in a function's doc comment (covering the whole function), or
// before the package clause (covering the whole file — reserved for
// the documented concurrency boundary, i.e. the kernel's own
// implementation). The reason is mandatory: a suppression without one
// is itself a diagnostic, so every exception to an invariant carries
// its justification in the source.

type lineAllow struct {
	analyzer string
	line     int
}

type rangeAllow struct {
	analyzer   string
	start, end int
}

// Suppressions indexes every //lint:allow comment of a package, keyed
// by file.
type Suppressions struct {
	lines  map[string]map[lineAllow]bool
	ranges map[string][]rangeAllow
	bad    []analysis.Diagnostic
}

// CollectSuppressions scans the given files for //lint:allow comments.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{
		lines:  make(map[string]map[lineAllow]bool),
		ranges: make(map[string][]rangeAllow),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.End() < f.Package {
					// Before the package clause: file-scope allow.
					if name, reason, ok := parseAllow(c.Text); ok && name != "" && reason != "" {
						pos := fset.Position(c.Pos())
						end := fset.Position(f.End())
						s.ranges[pos.Filename] = append(s.ranges[pos.Filename],
							rangeAllow{analyzer: name, start: 1, end: end.Line})
						continue
					}
				}
				s.addComment(fset, c)
			}
		}
		// A function-doc allow covers the function's whole extent.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				name, _, ok := parseAllow(c.Text)
				if !ok || name == "" {
					continue
				}
				pos := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				s.ranges[pos.Filename] = append(s.ranges[pos.Filename],
					rangeAllow{analyzer: name, start: pos.Line, end: end.Line})
			}
		}
		// An allow on (or directly above) a range statement covers the
		// whole loop, so one justified comment clears a loop body.
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			pos := fset.Position(rs.Pos())
			end := fset.Position(rs.End())
			for la := range s.lines[pos.Filename] {
				if la.line == pos.Line {
					s.ranges[pos.Filename] = append(s.ranges[pos.Filename],
						rangeAllow{analyzer: la.analyzer, start: pos.Line, end: end.Line})
				}
			}
			return true
		})
	}
	return s
}

func (s *Suppressions) addComment(fset *token.FileSet, c *ast.Comment) {
	name, reason, ok := parseAllow(c.Text)
	if !ok {
		return
	}
	pos := fset.Position(c.Pos())
	if name == "" || reason == "" {
		s.bad = append(s.bad, analysis.Diagnostic{
			Pos:     c.Pos(),
			Message: "lint:allow needs an analyzer name and a written reason: //lint:allow <analyzer> <reason>",
		})
		return
	}
	m := s.lines[pos.Filename]
	if m == nil {
		m = make(map[lineAllow]bool)
		s.lines[pos.Filename] = m
	}
	// The comment covers its own line (trailing form) and the line
	// below it (stand-alone form above the offending statement).
	m[lineAllow{analyzer: name, line: pos.Line}] = true
	m[lineAllow{analyzer: name, line: pos.Line + 1}] = true
}

// parseAllow splits "//lint:allow walltime some reason" into its
// analyzer name and reason. ok is false for non-suppression comments.
func parseAllow(text string) (analyzer, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, "//lint:allow")
	if !found {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// Allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed.
func (s *Suppressions) Allowed(analyzer string, pos token.Position) bool {
	if s.lines[pos.Filename][lineAllow{analyzer: analyzer, line: pos.Line}] {
		return true
	}
	for _, r := range s.ranges[pos.Filename] {
		if r.analyzer == analyzer && r.start <= pos.Line && pos.Line <= r.end {
			return true
		}
	}
	return false
}

// Bad returns the malformed suppressions (missing analyzer or reason);
// drivers report these unconditionally.
func (s *Suppressions) Bad() []analysis.Diagnostic { return s.bad }
