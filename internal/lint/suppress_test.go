package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text         string
		ok           bool
		name, reason string
	}{
		{"//lint:allow maporder keys sorted below", true, "maporder", "keys sorted below"},
		{"//lint:allow maporder", true, "maporder", ""},
		{"//lint:allow", true, "", ""},
		{"// ordinary comment", false, "", ""},
		{"//p2p:token", false, "", ""},
	}
	for _, c := range cases {
		name, reason, ok := parseAllow(c.text)
		if ok != c.ok || name != c.name || reason != c.reason {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, reason, ok, c.name, c.reason, c.ok)
		}
	}
}

// TestBadSuppressions: an allow without a reason (or without an
// analyzer name at all) is itself a diagnostic — the reason is the
// audit trail, so it cannot be optional.
func TestBadSuppressions(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//lint:allow maporder
	_ = 1
	//lint:allow
	_ = 2
	//lint:allow walltime a proper reason
	_ = 3
}
`)
	s := CollectSuppressions(fset, files)
	bad := s.Bad()
	if len(bad) != 2 {
		t.Fatalf("got %d bad suppressions, want 2: %v", len(bad), bad)
	}
	for _, d := range bad {
		if !strings.Contains(d.Message, "needs an analyzer name and a written reason") {
			t.Errorf("bad suppression message %q lacks the grammar hint", d.Message)
		}
	}
	// The malformed ones must not suppress anything.
	if s.Allowed("maporder", fset.Position(bad[0].Pos)) {
		t.Error("reason-less allow still suppresses")
	}
}

// TestFileScopeAllow: an allow before the package clause covers the
// whole file — the escape hatch reserved for the kernel's documented
// concurrency boundary.
func TestFileScopeAllow(t *testing.T) {
	fset, files := parseOne(t, `//lint:allow kernelgo this file is the concurrency boundary

package p

func f() {}

func g() {}
`)
	s := CollectSuppressions(fset, files)
	if len(s.Bad()) != 0 {
		t.Fatalf("unexpected bad suppressions: %v", s.Bad())
	}
	for _, line := range []int{5, 7} {
		pos := token.Position{Filename: "fixture.go", Line: line}
		if !s.Allowed("kernelgo", pos) {
			t.Errorf("line %d not covered by the file-scope allow", line)
		}
		if s.Allowed("walltime", pos) {
			t.Errorf("file-scope allow for kernelgo leaked to walltime at line %d", line)
		}
	}
}

// TestTokenMarkerGrammar pins the //p2p: annotation parser, including
// the malformed shapes the fixtures cannot carry inline want comments
// for (the diagnostic lands on the marker's own line).
func TestTokenMarkerGrammar(t *testing.T) {
	cases := []struct {
		text    string
		bits    int
		badPart string // "" = well-formed
	}{
		{"//p2p:token", markToken, ""},
		{"//p2p:token hot-path clock read", markToken, ""},
		{"//p2p:tokenarg", markArg, ""},
		{"//p2p:tokenentry k.mu serializes the boundary", markEntry, ""},
		{"//p2p:tokenentry", markEntry, "needs a written reason"},
		{"//p2p:frob", 0, "unknown annotation"},
		{"//p2p:", 0, "empty"},
		{"// not a marker", 0, ""},
	}
	for _, c := range cases {
		bits, bad := parseTokenMarker(c.text)
		if bits != c.bits {
			t.Errorf("parseTokenMarker(%q) bits = %d, want %d", c.text, bits, c.bits)
		}
		if c.badPart == "" && bad != "" {
			t.Errorf("parseTokenMarker(%q) unexpectedly malformed: %s", c.text, bad)
		}
		if c.badPart != "" && !strings.Contains(bad, c.badPart) {
			t.Errorf("parseTokenMarker(%q) bad = %q, want it to mention %q", c.text, bad, c.badPart)
		}
	}
}

func TestKernelPackage(t *testing.T) {
	cases := map[string]bool{
		"repro/internal/sim":   true,
		"repro/internal/vnet":  true,
		"repro/internal/serve": false,
		"repro/internal/exp":   false,
		"repro/cmd/p2plab":     false,
		"fmt":                  false,
		"repro/internal/sim [repro/internal/sim.test]": false, // callers normalize first
	}
	for path, want := range cases {
		if got := KernelPackage(path); got != want {
			t.Errorf("KernelPackage(%q) = %v, want %v", path, got, want)
		}
	}
	if KernelPackage(NormalizeImportPath("repro/internal/sim [repro/internal/sim.test]")) != true {
		t.Error("normalized test-variant path not recognized as kernel-driven")
	}
}
