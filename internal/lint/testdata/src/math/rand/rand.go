// Package rand is a typecheck-only stand-in for math/rand, carrying
// the package-level draws the detrand fixtures exercise plus the
// blessed constructor path (New/NewSource) and *Rand methods.
package rand

type Source interface {
	Int63() int64
	Seed(seed int64)
}

type Rand struct{}

func New(src Source) *Rand        { return &Rand{} }
func NewSource(seed int64) Source { return nil }

type Zipf struct{}

func NewZipf(r *Rand, s float64, v float64, imax uint64) *Zipf { return nil }

func (z *Zipf) Uint64() uint64 { return 0 }

func (r *Rand) Int63() int64                       { return 0 }
func (r *Rand) Intn(n int) int                     { return 0 }
func (r *Rand) Float64() float64                   { return 0 }
func (r *Rand) Perm(n int) []int                   { return nil }
func (r *Rand) Shuffle(n int, swap func(i, j int)) {}

func Seed(seed int64)                    {}
func Int63() int64                       { return 0 }
func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Perm(n int) []int                   { return nil }
func Shuffle(n int, swap func(i, j int)) {}
