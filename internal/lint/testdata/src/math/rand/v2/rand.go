// Package rand is a typecheck-only stand-in for math/rand/v2: the
// detrand analyzer bans its package-level draws just like v1's, while
// the explicit-source constructors stay legal.
package rand

type Source interface {
	Uint64() uint64
}

type Rand struct{}

func New(src Source) *Rand { return &Rand{} }

type PCG struct{}

func NewPCG(seed1, seed2 uint64) *PCG { return nil }

func (p *PCG) Uint64() uint64 { return 0 }

type ChaCha8 struct{}

func NewChaCha8(seed [32]byte) *ChaCha8 { return nil }

func (c *ChaCha8) Uint64() uint64 { return 0 }

func (r *Rand) IntN(n int) int   { return 0 }
func (r *Rand) Uint64() uint64   { return 0 }
func (r *Rand) Float64() float64 { return 0 }

func IntN(n int) int   { return 0 }
func Uint64() uint64   { return 0 }
func Float64() float64 { return 0 }
