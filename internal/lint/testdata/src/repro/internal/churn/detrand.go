// Package churn is a detrand fixture impersonating a kernel-driven
// package: package-level math/rand draws (the process-global source)
// must be flagged; the seeded-constructor pattern and *Rand methods
// must not.
package churn

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func global() {
	_ = rand.Intn(10)                  // want "rand.Intn uses the process-global random source"
	_ = rand.Int63()                   // want "rand.Int63 uses the process-global random source"
	_ = rand.Float64()                 // want "rand.Float64 uses the process-global random source"
	_ = rand.Perm(4)                   // want "rand.Perm uses the process-global random source"
	rand.Seed(42)                      // want "rand.Seed uses the process-global random source"
	rand.Shuffle(2, func(i, j int) {}) // want "rand.Shuffle uses the process-global random source"
}

func globalV2() {
	_ = randv2.IntN(10)  // want "rand.IntN uses the process-global random source"
	_ = randv2.Uint64()  // want "rand.Uint64 uses the process-global random source"
	_ = randv2.Float64() // want "rand.Float64 uses the process-global random source"
}

func seeded(seed int64) {
	// The blessed pattern: an explicit source threaded from config.
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(10)
	_ = r.Int63()
	r.Shuffle(2, func(i, j int) {})
	z := rand.NewZipf(r, 1.1, 1.0, 100)
	_ = z.Uint64()

	r2 := randv2.New(randv2.NewPCG(uint64(seed), 0))
	_ = r2.IntN(10)
	_ = randv2.NewChaCha8([32]byte{})
}

func suppressed() {
	//lint:allow detrand fixture: jitter for a host-side backoff, not simulation state
	_ = rand.Float64()
}
