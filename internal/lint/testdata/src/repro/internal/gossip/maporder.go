// Package gossip is a maporder fixture impersonating a kernel-driven
// package: order-sensitive bodies inside range-over-map must be
// flagged; the commutative exemptions and justified suppressions must
// not.
package gossip

func emit(s string) {}

func pick() *int { return nil }

// Exempt patterns: the analyzer proves these order-insensitive.
func exempt(m map[string]int, out map[string]string, dead map[string]bool) int {
	total := 0
	for k, v := range m {
		total += v     // integer accumulation commutes
		total -= v / 2 // so does subtraction
		x := v * 2     // loop-local state is per-iteration
		x++
		_ = x
		_ = len(m)               // pure builtin
		out[k] = string(rune(v)) // keyed write: distinct keys commute
		delete(dead, k)          // set subtraction commutes
	}
	return total
}

func flagged(m map[string]int, ch chan string, sink []string, total float64) {
	for k, v := range m {
		emit(k)                // want "call to emit inside range over map"
		ch <- k                // want "channel send inside range over map"
		go emit(k)             // want "goroutine spawn inside range over map" "call to emit inside range over map"
		defer emit(k)          // want "defer inside range over map" "call to emit inside range over map"
		total += float64(v)    // want "non-integer accumulation into .total."
		sink = append(sink, k) // want "write to .sink. .declared outside the loop."
		*pick() = v            // want "write through a computed expression" "call to pick inside range over map"
	}
	_ = sink
	_ = total
}

func suppressedLoop(m map[string]int) []string {
	var names []string
	//lint:allow maporder collected names are sorted by the caller before any order matters
	for k := range m {
		names = append(names, k)
	}
	return names
}

// suppressedFunc collects keys for a caller that sorts them.
//
//lint:allow maporder every caller sorts the result before use
func suppressedFunc(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
