// Package hostexp impersonates a host-side (non-kernel-driven) package:
// walltime, detrand, maporder and kernelgo must all stay silent here,
// whatever the code does. Only tokenheld is module-wide, and nothing
// here touches the token surface.
package hostexp

import (
	"math/rand"
	"sync"
	"time"
)

type pool struct {
	mu   sync.Mutex
	last time.Time
}

func (p *pool) tick() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	d := now.Sub(p.last)
	p.last = now
	return d
}

func jitter() float64 { return rand.Float64() }

func fanout(cells map[string]func()) {
	var wg sync.WaitGroup
	done := make(chan string, len(cells))
	for name, run := range cells {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
			done <- name
		}()
	}
	wg.Wait()
	close(done)
}
