// Package netem is a kernelgo fixture impersonating a kernel-driven
// package: native go/select/chan/sync use must be flagged.
package netem

import "sync"

type guarded struct {
	mu sync.Mutex // want "sync.Mutex in kernel-context code"
}

func (g *guarded) lock() {
	g.mu.Lock() // want "sync.Lock in kernel-context code"
}

func run() {}

func spawn() {
	go run() // want "native .go. statement in kernel-context code"
}

func channels(ch chan int) { // want "native channel type in kernel-context code"
	ch <- 1        // want "native channel send in kernel-context code"
	_ = <-ch       // want "native channel receive in kernel-context code"
	close(ch)      // want "close of native channel in kernel-context code"
	for range ch { // want "range over native channel in kernel-context code"
	}
	select { // want "select. in kernel-context code"
	default:
	}
}

func negations(vals []int, n int) {
	// Non-channel uses of the same syntax stay silent.
	for range vals {
	}
	x := -n
	_ = x
	m := map[int]bool{}
	delete(m, n)
}
