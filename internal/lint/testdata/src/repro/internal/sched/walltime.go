// Package sched is a walltime fixture impersonating a kernel-driven
// package: every wall-clock read must be flagged, value plumbing and
// justified suppressions must not.
package sched

import "time"

func forbidden() {
	_ = time.Now()                   // want "time.Now reads the wall clock"
	time.Sleep(time.Second)          // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})      // want "time.Since reads the wall clock"
	_ = time.Until(time.Time{})      // want "time.Until reads the wall clock"
	_ = time.After(time.Second)      // want "time.After reads the wall clock"
	_ = time.Tick(time.Second)       // want "time.Tick reads the wall clock"
	_ = time.NewTimer(time.Second)   // want "time.NewTimer reads the wall clock"
	_ = time.NewTicker(time.Second)  // want "time.NewTicker reads the wall clock"
	_ = time.AfterFunc(0, func() {}) // want "time.AfterFunc reads the wall clock"
}

func plumbing() {
	// Pure value plumbing never touches the clock: fine.
	var d time.Duration = 3 * time.Second
	_ = d
	d2, _ := time.ParseDuration("30s")
	_ = d2
	_ = time.Unix(0, 0)
	_ = time.Time{}.Add(d)
}

func suppressedLine() {
	//lint:allow walltime host-side pacing measurement, never feeds the virtual timeline
	_ = time.Now()
	t := time.Now() //lint:allow walltime trailing form: same justification, same line
	_ = t
}

// suppressedFunc measures wall-clock overhead for the progress UI.
//
//lint:allow walltime the whole function is host-side instrumentation
func suppressedFunc() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
