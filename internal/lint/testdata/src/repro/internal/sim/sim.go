// Package sim is a typecheck-only stand-in for the kernel package,
// carrying the annotated primitive surface the tokenheld fixtures call
// across a package boundary. Running the analyzer here first exports
// the //p2p: markers as facts, exactly as the vetx chain does under go
// vet.
package sim

type Time int64

type Duration int64

// Kernel is the fixture kernel.
type Kernel struct{}

// LoopNow reads the hot clock.
//
//p2p:token
func (k *Kernel) LoopNow() Time { return 0 }

// Schedule enqueues on the hot path; fn runs with the token held.
//
//p2p:token
//p2p:tokenarg
func (k *Kernel) Schedule(at Time, fn func()) {}

// At is the locked cold-boundary scheduler.
//
//p2p:tokenentry the real kernel takes k.mu here, serializing against the run loop
//p2p:tokenarg
func (k *Kernel) At(at Time, fn func()) {}

// Go spawns a simulated goroutine; fn runs once the scheduler grants
// the token.
//
//p2p:tokenentry the spawn handshake hands the token to fn via wake
//p2p:tokenarg
func (k *Kernel) Go(name string, fn func(p *Proc)) {}

// Now is the locked clock read, callable from anywhere.
func (k *Kernel) Now() Time { return 0 }

// Proc is a simulated goroutine's handle; one only ever exists inside
// a simulated goroutine, so *Proc in a signature is an implicit
// //p2p:token.
type Proc struct{}

func (p *Proc) Now() Time        { return 0 }
func (p *Proc) Sleep(d Duration) {}
