// Package vnet is a tokenheld fixture calling the fake sim package's
// annotated primitives across a package boundary: calls from host-side
// code must be flagged, every legal route to the token must not.
package vnet

import "repro/internal/sim"

type endpoint struct {
	k *sim.Kernel
}

// hostPoll runs on the host goroutine: no token anywhere in sight.
func (e *endpoint) hostPoll() {
	_ = e.k.LoopNow()        // want "Kernel.LoopNow requires the execution token"
	e.k.Schedule(0, func() { // want "Kernel.Schedule requires the execution token"
		_ = e.k.LoopNow() // the literal itself is fine: Schedule is //p2p:tokenarg
	})
	e.k.At(0, func() {
		_ = e.k.LoopNow() // fine: At is an entry, its callbacks hold the token
	})
	e.k.Go("worker", func(p *sim.Proc) {
		_ = e.k.LoopNow() // fine: the literal takes a *sim.Proc
	})
	_ = e.k.Now() // fine: the locked API carries no requirement
}

// transmit runs inside the kernel loop.
//
//p2p:token
func (e *endpoint) transmit() {
	_ = e.k.LoopNow() // fine: token context
	e.k.Schedule(0, func() {
		_ = e.k.LoopNow() // fine: unmarked literal inherits the enclosing context
	})
}

// resume is driven by a simulated goroutine: the *sim.Proc parameter
// is an implicit //p2p:token.
func (e *endpoint) resume(p *sim.Proc) {
	p.Sleep(1)
	_ = e.k.LoopNow()
	e.transmit()
}

func hostCallsToken(e *endpoint) {
	e.transmit()  // want "endpoint.transmit requires the execution token"
	e.resume(nil) // want "endpoint.resume requires the execution token"
}

// flush is an audited boundary in this fixture.
//
//p2p:tokenentry fixture boundary: serialized by construction in the harness
func (e *endpoint) flush() {
	_ = e.k.LoopNow() // fine: entries are token contexts
	e.transmit()      // fine
}

func markedLiteral(e *endpoint) func() {
	//p2p:token
	cb := func() {
		_ = e.k.LoopNow() // fine: the marker on the preceding line covers the literal
	}
	return cb
}

func suppressedCall(e *endpoint) {
	//lint:allow tokenheld fixture: this caller is itself the park/wake machinery
	e.transmit()
}

//p2p:frob cold path // want "unknown annotation //p2p:frob"
func misannotated(e *endpoint) {
	_ = e.k.Now()
}
