// Package sync is a typecheck-only stand-in for the standard library's
// sync package, used by the kernelgo fixtures.
package sync

type Locker interface {
	Lock()
	Unlock()
}

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{}

func (w *WaitGroup) Add(delta int) {}
func (w *WaitGroup) Done()         {}
func (w *WaitGroup) Wait()         {}

type Once struct{}

func (o *Once) Do(f func()) {}

type Cond struct{ L Locker }

func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
