// Package time is a typecheck-only stand-in for the standard library's
// time package: just enough surface for the walltime fixtures. Fixture
// packages import it under the real "time" path, which is what the
// analyzer keys on.
package time

type Time struct{}

type Duration int64

const (
	Millisecond Duration = 1000 * 1000
	Second               = 1000 * Millisecond
)

func (t Time) Add(d Duration) Time { return t }
func (t Time) Sub(u Time) Duration { return 0 }
func (t Time) Unix() int64         { return 0 }

type Timer struct{ C <-chan Time }

func (t *Timer) Stop() bool { return false }

type Ticker struct{ C <-chan Time }

func (t *Ticker) Stop() {}

func Now() Time                             { return Time{} }
func Since(t Time) Duration                 { return 0 }
func Until(t Time) Duration                 { return 0 }
func Sleep(d Duration)                      {}
func After(d Duration) <-chan Time          { return nil }
func AfterFunc(d Duration, f func()) *Timer { return nil }
func Tick(d Duration) <-chan Time           { return nil }
func NewTimer(d Duration) *Timer            { return nil }
func NewTicker(d Duration) *Ticker          { return nil }

func ParseDuration(s string) (Duration, error) { return 0, nil }
func Unix(sec, nsec int64) Time                { return Time{} }
