package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// TokenHeld machine-checks DESIGN decision 11: the kernel's hot
// primitives (Schedule, LoopNow, Chan, Cond, Semaphore, park/wake)
// touch no mutex and are serialized purely by the execution token, so
// they may only be reached from code that demonstrably holds it.
// Before this analyzer the contract was "proved" by -race sampling;
// now it is a vet error.
//
// # Annotation grammar (DESIGN decision 13)
//
//	//p2p:token
//	    The function requires the execution token. Its body is a
//	    token context; its callers must be token contexts.
//	//p2p:tokenentry <reason>
//	    The function establishes serialization by other means (the
//	    Run-loop handshake, k.mu on the cold boundary) and is a token
//	    context without requiring it of callers. The reason is
//	    mandatory — entries are the audited boundary of the contract.
//	//p2p:tokenarg
//	    Function-typed arguments passed to this function are invoked
//	    with the token held (Kernel.Go task bodies, Schedule/At/After
//	    callbacks). A function literal passed directly to such a call
//	    is a token context.
//
// A parameter or receiver of type *sim.Proc is an implicit
// //p2p:token: a Proc handle only ever exists inside a simulated
// goroutine, so such functions both hold and require the token.
//
// A function literal with no marker of its own inherits its enclosing
// function's context. That is deliberate: kernel code constantly
// creates callbacks (timer closures, trace hooks) that the kernel
// invokes while the token is held, and the creating function's
// context is the best static approximation of the invoking one. The
// known unsoundness — a literal built in token context but executed
// host-side — is accepted; the race detector remains the backstop.
//
// Annotations propagate across packages as analysis facts keyed by
// types.Func.FullName, so vnet/bt/flow/serve callers of sim's
// annotated family are checked under `go vet` even though each
// package is analyzed separately.
var TokenHeld = &analysis.Analyzer{
	Name:      "tokenheld",
	Doc:       "enforce the execution-token contract: //p2p:token functions reachable only from token-holding contexts",
	UsesFacts: true,
	Run:       runTokenHeld,
}

// marker bits.
const (
	markToken = 1 << iota // requires + holds the token
	markEntry             // holds the token; callable from anywhere
	markArg               // func-typed args are invoked with the token
)

type tokenChecker struct {
	pass   *analysis.Pass
	local  map[string]int         // FullName → marker bits (this package)
	argCtx map[*ast.FuncLit]bool  // literals passed to tokenarg calls
	byLine map[string]map[int]int // file → comment end line → marker bits (for literals)
	proc   map[*types.Func]bool   // memo: implicit-token by *sim.Proc signature
}

func runTokenHeld(pass *analysis.Pass) error {
	tc := &tokenChecker{
		pass:   pass,
		local:  make(map[string]int),
		argCtx: make(map[*ast.FuncLit]bool),
		byLine: make(map[string]map[int]int),
		proc:   make(map[*types.Func]bool),
	}
	tc.collect()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				tc.walk(d.Body, tc.declCtx(d))
			case *ast.GenDecl:
				// Package-level initializers run host-side (init time).
				tc.walk(d, false)
			}
		}
	}
	return nil
}

// collect gathers this package's annotations, validates them, and
// exports them as facts for dependent packages.
func (tc *tokenChecker) collect() {
	pass := tc.pass
	for _, f := range pass.Files {
		// Index every comment by its end line so function literals can
		// carry markers on the preceding line.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				bits, bad := parseTokenMarker(c.Text)
				if bad != "" {
					pass.Reportf(c.Pos(), "tokenheld: %s", bad)
				}
				if bits == 0 {
					continue
				}
				p := pass.Fset.Position(c.End())
				m := tc.byLine[p.Filename]
				if m == nil {
					m = make(map[int]int)
					tc.byLine[p.Filename] = m
				}
				m[p.Line] |= bits
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				bits := markerBits(d.Doc)
				if bits == 0 {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				tc.setMarkers(fn, bits)
			case *ast.GenDecl:
				// Interface methods may be annotated too (timerQueue).
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						bits := markerBits(m.Doc)
						if bits == 0 || len(m.Names) == 0 {
							continue
						}
						if fn, ok := pass.TypesInfo.Defs[m.Names[0]].(*types.Func); ok {
							tc.setMarkers(fn, bits)
						}
					}
				}
			}
		}
	}
}

func (tc *tokenChecker) setMarkers(fn *types.Func, bits int) {
	name := fn.Origin().FullName()
	tc.local[name] |= bits
	tc.pass.ExportFact(name, encodeMarkers(tc.local[name]))
}

// markers resolves the annotation bits of a function, local or
// imported.
func (tc *tokenChecker) markers(fn *types.Func) int {
	name := fn.Origin().FullName()
	if bits, ok := tc.local[name]; ok {
		return bits
	}
	if v, ok := tc.pass.ImportFact(name); ok {
		return decodeMarkers(v)
	}
	return 0
}

// tokenRequired reports whether calling fn requires the token.
func (tc *tokenChecker) tokenRequired(fn *types.Func) bool {
	if tc.markers(fn)&markToken != 0 {
		return true
	}
	return tc.implicitProc(fn)
}

func (tc *tokenChecker) implicitProc(fn *types.Func) bool {
	if v, ok := tc.proc[fn]; ok {
		return v
	}
	sig, ok := fn.Type().(*types.Signature)
	v := ok && signatureTakesProc(sig)
	tc.proc[fn] = v
	return v
}

func signatureTakesProc(sig *types.Signature) bool {
	if r := sig.Recv(); r != nil && isProcPtr(r.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isProcPtr(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isProcPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil &&
		NormalizeImportPath(obj.Pkg().Path()) == simPath
}

// declCtx decides whether a declared function's body is a token
// context.
func (tc *tokenChecker) declCtx(d *ast.FuncDecl) bool {
	bits := markerBits(d.Doc)
	if bits&(markToken|markEntry) != 0 {
		return true
	}
	if fn, ok := tc.pass.TypesInfo.Defs[d.Name].(*types.Func); ok && tc.implicitProc(fn) {
		return true
	}
	return false
}

// litCtx decides whether a function literal's body is a token context.
func (tc *tokenChecker) litCtx(lit *ast.FuncLit, inherited bool) bool {
	if tc.argCtx[lit] {
		return true
	}
	// A literal that takes a *sim.Proc holds the token for the same
	// reason a declared function does: Proc handles only exist inside
	// simulated goroutines.
	if sig, ok := tc.pass.TypesInfo.TypeOf(lit).(*types.Signature); ok && signatureTakesProc(sig) {
		return true
	}
	p := tc.pass.Fset.Position(lit.Pos())
	if m := tc.byLine[p.Filename]; m != nil {
		if m[p.Line-1]&(markToken|markEntry) != 0 || m[p.Line]&(markToken|markEntry) != 0 {
			return true
		}
	}
	return inherited
}

// walk traverses root checking calls, carrying the token context.
func (tc *tokenChecker) walk(root ast.Node, ctx bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			tc.walk(n, tc.litCtx(n, ctx))
			return false
		case *ast.CallExpr:
			tc.checkCall(n, ctx)
		}
		return true
	})
}

func (tc *tokenChecker) checkCall(call *ast.CallExpr, ctx bool) {
	fn := staticCallee(tc.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if tc.markers(fn)&markArg != 0 {
		for _, arg := range call.Args {
			if lit, ok := unparen(arg).(*ast.FuncLit); ok {
				tc.argCtx[lit] = true
			}
		}
	}
	if !ctx && tc.tokenRequired(fn) {
		short := fn.Name()
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			short = recvTypeName(recv.Type()) + "." + short
		}
		tc.pass.Reportf(call.Pos(),
			"tokenheld: call to %s requires the execution token (//p2p:token) but the caller is not a token context; annotate the caller //p2p:token, mark an audited boundary //p2p:tokenentry <reason>, or use the locked API (Kernel.At/After/Now)",
			short)
	}
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.IndexExpr: // generic instantiation: f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// markerBits folds the token markers of a doc comment group.
func markerBits(doc *ast.CommentGroup) int {
	if doc == nil {
		return 0
	}
	bits := 0
	for _, c := range doc.List {
		b, _ := parseTokenMarker(c.Text)
		bits |= b
	}
	return bits
}

// parseTokenMarker parses one comment line. bad is a non-empty
// description when the marker is malformed (unknown name, missing
// entry reason).
func parseTokenMarker(text string) (bits int, bad string) {
	rest, ok := strings.CutPrefix(text, "//p2p:")
	if !ok {
		return 0, ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, "empty //p2p: annotation"
	}
	switch fields[0] {
	case "token":
		return markToken, ""
	case "tokenentry":
		if len(fields) < 2 {
			return markEntry, "//p2p:tokenentry needs a written reason: //p2p:tokenentry <reason>"
		}
		return markEntry, ""
	case "tokenarg":
		return markArg, ""
	default:
		return 0, "unknown annotation //p2p:" + fields[0] + " (known: token, tokenentry <reason>, tokenarg)"
	}
}

func encodeMarkers(bits int) string {
	var parts []string
	if bits&markToken != 0 {
		parts = append(parts, "token")
	}
	if bits&markEntry != 0 {
		parts = append(parts, "entry")
	}
	if bits&markArg != 0 {
		parts = append(parts, "arg")
	}
	return strings.Join(parts, ",")
}

func decodeMarkers(s string) int {
	bits := 0
	for _, p := range strings.Split(s, ",") {
		switch p {
		case "token":
			bits |= markToken
		case "entry":
			bits |= markEntry
		case "arg":
			bits |= markArg
		}
	}
	return bits
}
