package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// wallClockFuncs are the package-time functions that read or act on the
// host's wall clock. Pure value plumbing (time.Duration, ParseDuration,
// Unix construction) is fine; observing "now" or sleeping real time is
// not — inside the emulator the kernel's virtual clock is the only
// clock (sim.Time, Proc.Now, Proc.Sleep).
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallTime forbids wall-clock reads in kernel-driven packages.
var WallTime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Sleep/Timer wall-clock use where virtual time is the only clock",
	Run: func(pass *analysis.Pass) error {
		if !KernelPackage(NormalizeImportPath(pass.Pkg.Path())) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || !wallClockFuncs[fn.Name()] {
					return true
				}
				pass.Reportf(id.Pos(),
					"walltime: time.%s reads the wall clock; kernel-driven code must use virtual time (sim.Time, Proc.Now, Kernel.Now)",
					fn.Name())
				return true
			})
		}
		return nil
	},
}
