// Package metrics collects and renders experiment results: time series,
// cumulative distribution functions and summary statistics, with
// gnuplot-compatible output so every figure of the paper can be
// regenerated as a .dat file.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// SortByX orders the samples by x coordinate (stable).
func (s *Series) SortByX() {
	sort.SliceStable(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// MinY and MaxY return the sample extremes; zero for empty series.
func (s *Series) MinY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < m {
			m = p.Y
		}
	}
	return m
}

func (s *Series) MaxY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// LastY returns the final sample's y value (0 for empty series).
func (s *Series) LastY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Y
}

// At returns the linearly interpolated y at x, clamping outside the
// sampled range. The series must be sorted by X.
func (s *Series) At(x float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	if x <= s.Points[0].X {
		return s.Points[0].Y
	}
	if x >= s.Points[n-1].X {
		return s.Points[n-1].Y
	}
	i := sort.Search(n, func(i int) bool { return s.Points[i].X >= x })
	a, b := s.Points[i-1], s.Points[i]
	if b.X == a.X {
		return b.Y
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// CDF builds the empirical cumulative distribution of samples: points
// (v, F(v)) with F stepping by 1/n, the exact construction of the
// paper's Fig 3.
func CDF(samples []float64) Series {
	vs := append([]float64(nil), samples...)
	sort.Float64s(vs)
	s := Series{Name: "cdf"}
	n := float64(len(vs))
	for i, v := range vs {
		s.Add(v, float64(i+1)/n)
	}
	return s
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Stddev     float64
	P10, Median, P90 float64
}

// Summarize computes order statistics.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	vs := append([]float64(nil), samples...)
	sort.Float64s(vs)
	var sum float64
	for _, v := range vs {
		sum += v
	}
	n := float64(len(vs))
	mean := sum / n
	// Two-pass variance: E[(v-mean)^2] computed against the actual
	// mean. The one-pass E[v^2]-mean^2 form cancels catastrophically
	// when the mean dwarfs the spread (virtual-time timestamps hours
	// into a run differing by milliseconds) and can even go negative.
	var sq float64
	for _, v := range vs {
		d := v - mean
		sq += d * d
	}
	variance := sq / n
	if variance < 0 {
		variance = 0
	}
	q := func(p float64) float64 {
		idx := p * (n - 1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(vs) {
			return vs[len(vs)-1]
		}
		frac := idx - float64(lo)
		return vs[lo]*(1-frac) + vs[hi]*frac
	}
	return Summary{
		N: len(vs), Min: vs[0], Max: vs[len(vs)-1],
		Mean: mean, Stddev: math.Sqrt(variance),
		P10: q(0.10), Median: q(0.50), P90: q(0.90),
	}
}

// Spread returns Max-Min.
func (s Summary) Spread() float64 { return s.Max - s.Min }

// WriteDat renders series in gnuplot's "index" format: one block per
// series, preceded by a comment header, blank-line separated.
func WriteDat(w io.Writer, series ...*Series) error {
	for i, s := range series {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s\n", s.Name); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%g %g\n", p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table renders rows of labeled values as an aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Downsample returns at most n points of s, evenly spaced by index,
// always keeping the first and last point. Useful to keep .dat files of
// 5000-client experiments readable.
func Downsample(s *Series, n int) *Series {
	if n <= 0 || s.Len() <= n {
		out := &Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
		return out
	}
	if n == 1 {
		// A single kept point is the last one (the forced endpoint).
		return &Series{Name: s.Name, Points: []Point{s.Points[s.Len()-1]}}
	}
	out := &Series{Name: s.Name}
	// Exact integer rounding of i*(L-1)/(n-1): no float step, so the
	// rounded second-to-last index can never collide with the forced
	// final point (and no NaN/overflow edge cases). round(a/b) with
	// positive a,b is (2a+b)/(2b).
	last := s.Len() - 1
	for i := 0; i < n; i++ {
		idx := (2*i*last + (n - 1)) / (2 * (n - 1))
		out.Points = append(out.Points, s.Points[idx])
	}
	out.Points[n-1] = s.Points[last]
	return out
}
