package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddAndExtremes(t *testing.T) {
	var s Series
	s.Add(0, 5)
	s.Add(1, 2)
	s.Add(2, 9)
	if s.Len() != 3 || s.MinY() != 2 || s.MaxY() != 9 || s.LastY() != 9 {
		t.Fatalf("series stats wrong: %+v", s)
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.MinY() != 0 || s.MaxY() != 0 || s.LastY() != 0 || s.At(3) != 0 {
		t.Fatal("empty series should return zeros")
	}
}

func TestSeriesAtInterpolates(t *testing.T) {
	s := Series{Points: []Point{{0, 0}, {10, 100}}}
	if got := s.At(5); got != 50 {
		t.Fatalf("At(5) = %v, want 50", got)
	}
	if got := s.At(-1); got != 0 {
		t.Fatalf("At(-1) = %v, want clamp to 0", got)
	}
	if got := s.At(11); got != 100 {
		t.Fatalf("At(11) = %v, want clamp to 100", got)
	}
}

func TestSeriesSortByX(t *testing.T) {
	s := Series{Points: []Point{{3, 1}, {1, 2}, {2, 3}}}
	s.SortByX()
	if s.Points[0].X != 1 || s.Points[2].X != 3 {
		t.Fatalf("not sorted: %v", s.Points)
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		c := CDF(raw)
		if c.Len() != len(raw) {
			return false
		}
		// Monotone in both coordinates, ends at 1.
		for i := 1; i < c.Len(); i++ {
			if c.Points[i].X < c.Points[i-1].X || c.Points[i].Y < c.Points[i-1].Y {
				return false
			}
		}
		return c.Points[c.Len()-1].Y == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFExactSmall(t *testing.T) {
	c := CDF([]float64{3, 1, 2, 4})
	want := []Point{{1, 0.25}, {2, 0.5}, {3, 0.75}, {4, 1}}
	for i, p := range want {
		if c.Points[i] != p {
			t.Fatalf("cdf[%d] = %v, want %v", i, c.Points[i], p)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Spread() != 4 {
		t.Fatalf("spread = %v", s.Spread())
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v, want √2", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSummarizeQuantilesOrdered(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
		}
		s := Summarize(raw)
		return s.Min <= s.P10 && s.P10 <= s.Median && s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDat(t *testing.T) {
	a := &Series{Name: "one", Points: []Point{{1, 2}, {3, 4}}}
	b := &Series{Name: "two", Points: []Point{{5, 6}}}
	var sb strings.Builder
	if err := WriteDat(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# one\n1 2\n3 4\n\n\n# two\n5 6\n"
	if got != want {
		t.Fatalf("dat output:\n%q\nwant:\n%q", got, want)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "alpha  1") {
		t.Fatalf("misaligned: %q", lines[1])
	}
}

func TestDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	d := Downsample(&s, 10)
	if d.Len() != 10 {
		t.Fatalf("len = %d, want 10", d.Len())
	}
	if d.Points[0] != s.Points[0] || d.Points[9] != s.Points[999] {
		t.Fatal("endpoints must be preserved")
	}
	xs := make([]float64, d.Len())
	for i, p := range d.Points {
		xs[i] = p.X
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("downsampled series must stay ordered")
	}
}

func TestDownsampleSmallPassthrough(t *testing.T) {
	s := &Series{Points: []Point{{1, 1}, {2, 2}}}
	d := Downsample(s, 10)
	if d.Len() != 2 {
		t.Fatalf("len = %d, want 2", d.Len())
	}
}
