package metrics

import (
	"math"
	"testing"
)

// TestSummarizeOffsetVariance is the regression test for the one-pass
// variance formula: samples riding a large offset (virtual-time
// timestamps hours into a run, differing by milliseconds) must keep
// their exact spread. The old E[v^2]-mean^2 form lost every significant
// digit of the deviation and could even go negative.
func TestSummarizeOffsetVariance(t *testing.T) {
	// Known sample {-1, 0, 1}: population stddev sqrt(2/3).
	base := []float64{-1, 0, 1}
	want := math.Sqrt(2.0 / 3.0)
	for _, offset := range []float64{0, 1e6, 1e9, 1e12} {
		vs := make([]float64, len(base))
		for i, v := range base {
			vs[i] = v + offset
		}
		got := Summarize(vs).Stddev
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("offset %g: stddev = %.12g, want %.12g", offset, got, want)
		}
	}

	// Identical samples at a huge offset: exactly zero spread, and the
	// result must not be NaN (a negative variance would be).
	s := Summarize([]float64{1e15, 1e15, 1e15})
	if s.Stddev != 0 {
		t.Errorf("constant samples: stddev = %g, want 0", s.Stddev)
	}
	if math.IsNaN(s.Stddev) {
		t.Error("stddev is NaN")
	}
}

func seq(n int) *Series {
	s := &Series{Name: "seq"}
	for i := 0; i < n; i++ {
		s.Add(float64(i), float64(i))
	}
	return s
}

// TestDownsampleBoundaries pins the index arithmetic at the edges where
// float rounding used to threaten a duplicated final point.
func TestDownsampleBoundaries(t *testing.T) {
	check := func(total, n int) {
		t.Helper()
		s := seq(total)
		d := Downsample(s, n)
		wantLen := n
		if n <= 0 || total <= n {
			wantLen = total
		}
		if d.Len() != wantLen {
			t.Fatalf("Downsample(%d, %d): len %d, want %d", total, n, d.Len(), wantLen)
		}
		if d.Len() == 0 {
			return
		}
		// The last point is always the original endpoint.
		if d.Points[d.Len()-1] != s.Points[total-1] {
			t.Fatalf("Downsample(%d, %d): last point %+v", total, n, d.Points[d.Len()-1])
		}
		// Indices strictly increase: no point repeats.
		for i := 1; i < d.Len(); i++ {
			if d.Points[i].X <= d.Points[i-1].X {
				t.Fatalf("Downsample(%d, %d): duplicate/reordered points %v", total, n, d.Points)
			}
		}
		if n > 1 && total > n && d.Points[0] != s.Points[0] {
			t.Fatalf("Downsample(%d, %d): first point %+v", total, n, d.Points[0])
		}
	}

	check(100, 2)    // minimal kept set: first and last only
	check(3, 2)      // Len() == n+1, the tightest non-trivial reduction
	check(101, 100)  // Len() == n+1 at scale: every rounded index distinct
	check(1000, 999) // one-point reduction
	check(5000, 50)  // the .dat use case
	check(10, 1)     // n == 1 keeps the endpoint, no NaN/div-zero
	check(5, 10)     // fewer points than n: untouched copy
	check(5, 5)      // exact fit: untouched copy
	check(7, 0)      // n <= 0: untouched copy
}

// TestDownsampleSecondToLastDistinct is the focused regression: for a
// wide range of sizes the second-to-last rounded index must stay below
// the forced final index.
func TestDownsampleSecondToLastDistinct(t *testing.T) {
	for total := 3; total <= 400; total++ {
		for _, n := range []int{2, 3, total / 2, total - 1} {
			if n < 2 || total <= n {
				continue
			}
			d := Downsample(seq(total), n)
			if d.Points[n-1] == d.Points[n-2] {
				t.Fatalf("Downsample(%d, %d) duplicated the final point", total, n)
			}
		}
	}
}
