package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is one experiment run's results flattened into named
// measurements, the mergeable unit the sweep engine aggregates across
// grid cells. Labels identify the cell (experiment, class, seed, ...),
// Values hold point measurements, Counters hold additive totals.
type Snapshot struct {
	Labels   map[string]string
	Values   map[string]float64
	Counters map[string]uint64
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Labels:   make(map[string]string),
		Values:   make(map[string]float64),
		Counters: make(map[string]uint64),
	}
}

// Label sets an identifying coordinate.
func (s *Snapshot) Label(key, value string) { s.Labels[key] = value }

// Set records a point measurement.
func (s *Snapshot) Set(key string, v float64) { s.Values[key] = v }

// Count adds n to an additive counter.
func (s *Snapshot) Count(key string, n uint64) { s.Counters[key] += n }

// Aggregate merges snapshots from many runs: counters sum, values
// collect into per-key samples ready for Summarize. Merge order is the
// caller's iteration order; because addition over counters is
// commutative and samples are only summarized, the aggregate is
// independent of the order cells *finished* in as long as the caller
// adds them in a fixed order.
type Aggregate struct {
	Cells    int
	Counters map[string]uint64
	// CounterCells tracks, per counter key, how many merged snapshots
	// actually recorded that counter — cells that measure different
	// things must not inflate each other's "n".
	CounterCells map[string]int
	Samples      map[string][]float64
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		Counters:     make(map[string]uint64),
		CounterCells: make(map[string]int),
		Samples:      make(map[string][]float64),
	}
}

// Add merges one snapshot.
func (a *Aggregate) Add(s *Snapshot) {
	if s == nil {
		return
	}
	a.Cells++
	for k, n := range s.Counters {
		a.Counters[k] += n
		a.CounterCells[k]++
	}
	for k, v := range s.Values {
		a.Samples[k] = append(a.Samples[k], v)
	}
}

// ValueKeys returns the sampled value keys, sorted.
func (a *Aggregate) ValueKeys() []string {
	keys := make([]string, 0, len(a.Samples))
	for k := range a.Samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Summary returns order statistics for one value key across all merged
// cells.
func (a *Aggregate) Summary(key string) Summary { return Summarize(a.Samples[key]) }

// Table renders the aggregate as a per-key summary table (one row per
// value key, then one per counter).
func (a *Aggregate) Table() *Table {
	t := &Table{Header: []string{"measurement", "n", "min", "mean", "median", "max"}}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, k := range a.ValueKeys() {
		s := a.Summary(k)
		t.AddRow(k, strconv.Itoa(s.N), f(s.Min), f(s.Mean), f(s.Median), f(s.Max))
	}
	counters := make([]string, 0, len(a.Counters))
	for k := range a.Counters {
		counters = append(counters, k)
	}
	sort.Strings(counters)
	for _, k := range counters {
		t.AddRow(k+" (total)", strconv.Itoa(a.CounterCells[k]), "", "", "", strconv.FormatUint(a.Counters[k], 10))
	}
	return t
}

// WriteSnapshotsCSV renders one CSV row per snapshot. Columns are the
// sorted union of label, value and counter keys, so rows from cells
// that measured different things still align.
func WriteSnapshotsCSV(w io.Writer, snaps []*Snapshot) error {
	labelKeys := map[string]bool{}
	valueKeys := map[string]bool{}
	counterKeys := map[string]bool{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for k := range s.Labels {
			labelKeys[k] = true
		}
		for k := range s.Values {
			valueKeys[k] = true
		}
		for k := range s.Counters {
			counterKeys[k] = true
		}
	}
	sorted := func(m map[string]bool) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	labels, values, counters := sorted(labelKeys), sorted(valueKeys), sorted(counterKeys)

	var header []string
	header = append(header, labels...)
	header = append(header, values...)
	header = append(header, counters...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		row := make([]string, 0, len(header))
		for _, k := range labels {
			row = append(row, csvEscape(s.Labels[k]))
		}
		for _, k := range values {
			if v, ok := s.Values[k]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		for _, k := range counters {
			if n, ok := s.Counters[k]; ok {
				row = append(row, strconv.FormatUint(n, 10))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field if it contains a separator, quote or newline.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
