package metrics

import (
	"strings"
	"testing"
)

func TestAggregateMerge(t *testing.T) {
	a := NewAggregate()
	for i := 0; i < 3; i++ {
		s := NewSnapshot()
		s.Label("cell", string(rune('a'+i)))
		s.Set("latency-ms", float64(10*(i+1)))
		s.Count("events", 100)
		s.Count("drops", uint64(i))
		a.Add(s)
	}
	a.Add(nil) // failed cells contribute nothing
	if a.Cells != 3 {
		t.Fatalf("Cells = %d, want 3", a.Cells)
	}
	if a.Counters["events"] != 300 || a.Counters["drops"] != 3 {
		t.Fatalf("counters = %v", a.Counters)
	}
	sum := a.Summary("latency-ms")
	if sum.N != 3 || sum.Min != 10 || sum.Max != 30 || sum.Mean != 20 {
		t.Fatalf("summary = %+v", sum)
	}
	tbl := a.Table()
	if len(tbl.Rows) != 3 { // 1 value + 2 counters
		t.Fatalf("table rows = %d, want 3", len(tbl.Rows))
	}
}

// TestAggregateCounterCells: a counter's "n" is the number of cells
// that recorded it, not the total number of merged cells.
func TestAggregateCounterCells(t *testing.T) {
	a := NewAggregate()
	for i := 0; i < 4; i++ {
		s := NewSnapshot()
		s.Count("events", 10)
		if i == 0 {
			s.Count("rare", 7) // only one cell measures this
		}
		a.Add(s)
	}
	if a.Cells != 4 {
		t.Fatalf("Cells = %d, want 4", a.Cells)
	}
	if a.CounterCells["events"] != 4 || a.CounterCells["rare"] != 1 {
		t.Fatalf("CounterCells = %v", a.CounterCells)
	}
	tbl := a.Table()
	var rareRow []string
	for _, row := range tbl.Rows {
		if row[0] == "rare (total)" {
			rareRow = row
		}
	}
	if rareRow == nil {
		t.Fatal("rare counter missing from table")
	}
	if rareRow[1] != "1" {
		t.Fatalf("rare n = %q, want 1 (recorded by one cell of four)", rareRow[1])
	}
}

func TestWriteSnapshotsCSV(t *testing.T) {
	s1 := NewSnapshot()
	s1.Label("exp", "dht")
	s1.Label("class", "dsl, fast") // needs quoting
	s1.Set("hops", 3.5)
	s1.Count("timeouts", 2)
	s2 := NewSnapshot()
	s2.Label("exp", "dht")
	s2.Set("hops", 4.0)
	s2.Set("extra", 1) // column union: s1 leaves this blank

	var b strings.Builder
	if err := WriteSnapshotsCSV(&b, []*Snapshot{s1, nil, s2}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if lines[0] != "class,exp,extra,hops,timeouts" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `"dsl, fast",dht,,3.5,2` {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != ",dht,1,4," {
		t.Fatalf("row 2 = %q", lines[2])
	}
}
