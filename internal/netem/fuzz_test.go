package netem

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/sim"
)

// FuzzRuleEval decodes arbitrary bytes into a rule table plus a query
// batch and checks the classifier-equivalence property on it: the
// linear and indexed classifiers must return identical verdicts (pipe
// order, Deny), the two indexed implementations must agree exactly,
// and nothing may panic. The committed seed corpus
// (testdata/fuzz/FuzzRuleEval) is replayed in CI alongside the other
// fuzz targets.
//
// Byte format (forgiving — any input decodes to *some* table):
//
//	data[0]        rule count n (mod 48)
//	6 bytes/rule   idDelta, srcSel, srcBits, dstSel, dstBits, action
//	rest, 2 each   (src, dst) query address selectors
func FuzzRuleEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	// Duplicate IDs across different buckets, then queries that hit them.
	f.Add([]byte{4,
		0, 1, 32, 2, 0, 0, // id 100: src /32 → bySrc
		0, 1, 0, 2, 32, 0, // id 100: dst /32 → byDst
		0, 0, 0, 0, 0, 3, // id 100: wide count → residual
		1, 1, 32, 0, 0, 2, // id 101: deny
		1, 2, 3, 4})
	f.Add([]byte{8, 2, 1, 24, 3, 16, 1, 0, 5, 32, 7, 32, 2, 1, 0, 0, 0, 0, 4,
		9, 9, 1, 7, 2, 8, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			data = []byte{0}
		}
		k := sim.New(1)
		pipe := NewPipe(k, "fuzz", PipeConfig{})
		lin := NewRuleSet()
		idx := NewRuleSet()
		idx.SetClassifier(ClassifierIndexed)
		n := int(data[0]) % 48
		data = data[1:]
		id := 100
		for i := 0; i < n && len(data) >= 6; i++ {
			id += int(data[0]) % 3 // deltas of 0 force duplicate IDs
			r := Rule{
				ID:  id,
				Src: fuzzPrefix(data[1], data[2]),
				Dst: fuzzPrefix(data[3], data[4]),
			}
			switch data[5] % 4 {
			case 0:
				r.Action = ActionPipe
				r.Pipe = pipe
			case 1:
				r.Action = ActionAccept
			case 2:
				r.Action = ActionDeny
			default:
				r.Action = ActionCount
			}
			lin.Add(r)
			idx.Add(r)
			data = data[6:]
		}
		bulk := NewIndexedRuleSet(lin)
		for len(data) >= 2 {
			src, dst := fuzzAddr(data[0]), fuzzAddr(data[1])
			data = data[2:]
			lv := lin.Eval(src, dst)
			iv := idx.Eval(src, dst)
			bv := bulk.Eval(src, dst)
			if lv.Deny != iv.Deny || len(lv.Pipes) != len(iv.Pipes) {
				t.Fatalf("linear %+v != indexed %+v for %v→%v", lv, iv, src, dst)
			}
			for i := range lv.Pipes {
				if lv.Pipes[i] != iv.Pipes[i] {
					t.Fatalf("pipe order diverged at %d for %v→%v", i, src, dst)
				}
			}
			if iv.Deny != bv.Deny || iv.Visited != bv.Visited || len(iv.Pipes) != len(bv.Pipes) {
				t.Fatalf("incremental %+v != bulk %+v for %v→%v", iv, bv, src, dst)
			}
			if iv.Visited > lv.Visited {
				t.Fatalf("indexed visited %d > linear %d", iv.Visited, lv.Visited)
			}
		}
	})
}

// fuzzAddr maps one byte into a small 10/8 pocket so queries collide
// with rule prefixes often.
func fuzzAddr(b byte) ip.Addr {
	return ip.MustParseAddr("10.0.0.0").Add(uint32(b&0x30)<<12 | uint32(b&0x0c)<<6 | uint32(b&0x03))
}

// fuzzPrefix maps (selector, bits) bytes to a prefix over the same
// pocket; bits snaps to the widths real tables use.
func fuzzPrefix(sel, bits byte) ip.Prefix {
	widths := []int{0, 8, 16, 24, 32}
	return ip.NewPrefix(fuzzAddr(sel), widths[int(bits)%len(widths)])
}
