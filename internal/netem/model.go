package netem

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// LinkModel turns one message traversal over an ordered path of pipes
// into a delivery schedule. It is the seam between the transport layer
// (vnet builds the path: sender up-link, fabric pipes, receiver
// down-link) and the emulation model that decides *when* the bytes
// arrive.
//
// Two implementations exist:
//
//   - PipeModel (here): the Dummynet-style store-and-forward model —
//     every pipe is charged independently at the message's arrival
//     instant, O(1) per hop, no interaction between concurrent
//     transfers beyond FIFO queueing on each pipe's cursor.
//   - flow.Model (repro/internal/flow): the flow-level max-min fair
//     model — each in-flight transfer is a fluid flow over the
//     bandwidth-constrained pipes of its path, and concurrent flows
//     sharing a pipe split its capacity by progressive filling.
//
// DESIGN.md decision 5 records the trade-off.
type LinkModel interface {
	// Transfer charges a size-byte message entering the path at instant
	// at. done is called exactly once — possibly synchronously — with
	// the instant the message exits the last pipe (serialization,
	// queueing and per-pipe propagation included) and ok=true, or with
	// ok=false when the message is dropped by loss or queue admission.
	Transfer(at sim.Time, size int, path []*Pipe, rng *rand.Rand, done func(exit sim.Time, ok bool))
}

// ReconfigurableModel is implemented by link models that keep per-pipe
// state of their own and must react when a pipe's configuration changes
// mid-run: the flow model re-solves the connected component of the
// links↔flows graph containing the pipe and re-rates the flows whose
// fair share changed. The pipe model needs no notification — its only
// per-pipe state is the cursor, which Pipe.Reconfigure re-rates itself.
type ReconfigurableModel interface {
	PipeReconfigured(p *Pipe)
}

// FlushableModel is implemented by link models that batch their
// internal re-rating work (the flow model's epsilon-batched solver):
// FlushBatch drains any coalesced churn immediately, at the current
// virtual instant. Synchronization points — a pipe about to be
// reconfigured, a caller about to read rates — call it so they observe
// settled allocations rather than a half-drained window. It must be a
// no-op when nothing is pending.
type FlushableModel interface {
	FlushBatch()
}

// ModelKind selects a LinkModel implementation by name; the zero value
// is the pipe model, so existing configurations are unchanged.
type ModelKind int

const (
	// ModelPipe is the default Dummynet-style per-pipe model.
	ModelPipe ModelKind = iota
	// ModelFlow is the flow-level max-min fair bandwidth-sharing model.
	ModelFlow
)

// String names the model kind for flags and sweep labels.
func (m ModelKind) String() string {
	switch m {
	case ModelPipe:
		return "pipe"
	case ModelFlow:
		return "flow"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(m))
	}
}

// ParseModel parses a model name as used by command-line flags.
func ParseModel(s string) (ModelKind, error) {
	switch s {
	case "pipe":
		return ModelPipe, nil
	case "flow":
		return ModelFlow, nil
	default:
		return 0, fmt.Errorf("netem: unknown link model %q (want pipe or flow)", s)
	}
}

// PipeModel is the default LinkModel: the path's pipes are charged hop
// by hop, each at the message's true arrival instant (via an event),
// never earlier. This matters for pipes shared across flows (the
// physical node's NIC in the folded deployments): charging the whole
// path eagerly at send time would update shared cursors in *send*
// order rather than *arrival* order, and the ~seconds of queueing
// jitter on access links ahead of them would turn into spurious
// queueing delay for later-arriving messages.
type PipeModel struct {
	k *sim.Kernel
}

// NewPipeModel returns the store-and-forward model on kernel k.
func NewPipeModel(k *sim.Kernel) *PipeModel { return &PipeModel{k: k} }

// Transfer implements LinkModel. The first hop is charged inline at
// `at` (a sender's own up-link sees its messages in send order by
// construction); every later hop is charged from an event at its
// arrival instant.
func (pm *PipeModel) Transfer(at sim.Time, size int, path []*Pipe, rng *rand.Rand, done func(sim.Time, bool)) {
	var hop func(i int, t sim.Time)
	hop = func(i int, t sim.Time) {
		if i == len(path) {
			done(t, true)
			return
		}
		exit, ok := path[i].ScheduleAt(t, size, rng)
		if !ok {
			done(0, false)
			return
		}
		if exit == t {
			hop(i+1, exit) // unconstrained pipe: continue inline
			return
		}
		pm.k.At(exit, func() { hop(i+1, exit) })
	}
	hop(0, at)
}
