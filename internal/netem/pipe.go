// Package netem is the Dummynet/IPFW analog: it emulates network links
// ("pipes" limiting bandwidth, adding latency and dropping packets) and
// linearly evaluated firewall rule tables that classify traffic into
// pipes.
//
// Emulation is message-level rather than packet-level: a message of n
// bytes entering a pipe is charged n*8/bandwidth of serialization time
// against the pipe's next-free cursor, then the propagation delay. This
// is the same first-order model Dummynet implements (a token-bucket
// bandwidth limit feeding a delay line) evaluated in O(1) per message,
// which is what makes thousands-of-node swarms tractable.
package netem

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Pipe emulates one direction of a network link, like a Dummynet pipe:
// configured bandwidth, propagation delay, random loss, and a bounded
// queue ahead of the serializer.
type Pipe struct {
	name string
	k    *sim.Kernel
	cfg  PipeConfig

	nextFree sim.Time // instant the serializer becomes idle
	stats    PipeStats
}

// PipeConfig is the static configuration of a pipe.
type PipeConfig struct {
	// Bandwidth in bits per second; 0 means unlimited (no serialization
	// delay).
	Bandwidth int64
	// Delay is the propagation latency added after serialization.
	Delay time.Duration
	// Jitter adds a uniform random variation in [0, Jitter) to each
	// message's propagation delay, like NetEm's delay jitter. Note
	// that jitter can reorder messages relative to pure FIFO delivery;
	// the reliable connection layer reorders by sequence number.
	Jitter time.Duration
	// Loss is the probability in [0,1) that a message is dropped.
	Loss float64
	// QueueBytes bounds the backlog waiting for the serializer; messages
	// arriving with a full queue are dropped (tail drop, like Dummynet's
	// bounded queue). 0 means unbounded.
	QueueBytes int64
	// MTU, when positive, charges the pipe at packet granularity: a
	// message is split into ⌈size/MTU⌉ packets, each tested for loss
	// and queue admission independently, and the message survives only
	// if every packet does (the reliable layer retransmits whole
	// messages). 0 keeps the O(1) message-level model — the ablation
	// of DESIGN.md decision 2.
	MTU int
}

// PipeStats counts pipe activity.
type PipeStats struct {
	Messages  uint64 // messages accepted
	Bytes     uint64 // bytes accepted
	Lost      uint64 // messages dropped by random loss
	Overflows uint64 // messages dropped by queue overflow
}

// NewPipe returns a pipe driven by kernel k. The name appears in
// diagnostics only.
func NewPipe(k *sim.Kernel, name string, cfg PipeConfig) *Pipe {
	if cfg.Loss < 0 || cfg.Loss > 1 {
		panic(fmt.Sprintf("netem: pipe %s: loss %v out of [0,1]", name, cfg.Loss))
	}
	return &Pipe{name: name, k: k, cfg: cfg}
}

// Name returns the pipe's diagnostic name.
func (p *Pipe) Name() string { return p.name }

// SetBandwidth reconfigures the pipe's rate; in-flight serialization
// keeps its already-computed schedule (like reconfiguring a Dummynet
// pipe at run time).
func (p *Pipe) SetBandwidth(bitsPerSec int64) { p.cfg.Bandwidth = bitsPerSec }

// Reconfigure atomically replaces the pipe's configuration at the
// current virtual instant, re-rating the in-flight cursor — Dummynet's
// runtime `pipe NN config` semantics. The bits the serializer still
// owes under the old bandwidth are re-charged at the new bandwidth, so
// the serializer frees earlier after an upgrade and later after a
// degrade; messages already past the serializer (their delivery events
// are scheduled) are not recalled. The cursor never moves into the
// virtual past, so no event derived from it can either. Reconfiguring
// to an identical configuration is a no-op.
//
// Under the flow model the pipe's cursor is idle (the fluid backlog
// lives in flow.Model); callers there must also notify the model so it
// re-solves the affected component — vnet routes both through
// Network-level reconfiguration (see ReconfigurableModel).
func (p *Pipe) Reconfigure(cfg PipeConfig) {
	if cfg.Loss < 0 || cfg.Loss > 1 {
		panic(fmt.Sprintf("netem: pipe %s: loss %v out of [0,1]", p.name, cfg.Loss))
	}
	if cfg == p.cfg {
		return
	}
	if cfg.Bandwidth != p.cfg.Bandwidth {
		now := p.k.Now()
		if p.nextFree > now {
			// Backlog still unserialized under the old rate, in bits.
			bits := p.nextFree.Sub(now).Seconds() * float64(p.cfg.Bandwidth)
			if cfg.Bandwidth <= 0 {
				p.nextFree = now // unlimited: backlog drains instantly
			} else {
				p.nextFree = now.Add(time.Duration(bits / float64(cfg.Bandwidth) * float64(time.Second)))
			}
		}
	}
	p.cfg = cfg
}

// Config returns the pipe's configuration.
func (p *Pipe) Config() PipeConfig { return p.cfg }

// Stats returns a snapshot of the pipe's counters.
func (p *Pipe) Stats() PipeStats { return p.stats }

// serialization returns the time to clock size bytes onto the wire.
func (p *Pipe) serialization(size int) time.Duration {
	if p.cfg.Bandwidth <= 0 {
		return 0
	}
	bits := int64(size) * 8
	return time.Duration(float64(bits) / float64(p.cfg.Bandwidth) * float64(time.Second))
}

// Backlog reports the bytes-equivalent currently queued ahead of the
// serializer at virtual instant now.
func (p *Pipe) Backlog(now sim.Time) int64 {
	if p.nextFree <= now || p.cfg.Bandwidth <= 0 {
		return 0
	}
	busy := p.nextFree.Sub(now)
	return int64(busy.Seconds() * float64(p.cfg.Bandwidth) / 8)
}

// ScheduleAt passes a message of size bytes through the pipe, entering at
// instant at. It returns the instant the message exits the pipe (after
// queueing, serialization and propagation) and whether the message
// survived (false = dropped by loss or queue overflow).
//
// The next-free cursor is mutated immediately, which assumes callers
// schedule a given flow's messages in causal (non-decreasing) order —
// true under the sequential kernel for any single sender.
func (p *Pipe) ScheduleAt(at sim.Time, size int, rng *rand.Rand) (sim.Time, bool) {
	if p.cfg.MTU > 0 && size > p.cfg.MTU {
		return p.schedulePackets(at, size, rng)
	}
	if p.cfg.Loss > 0 && rng.Float64() < p.cfg.Loss {
		p.stats.Lost++
		return 0, false
	}
	if p.cfg.QueueBytes > 0 && p.Backlog(at)+int64(size) > p.cfg.QueueBytes {
		p.stats.Overflows++
		return 0, false
	}
	start := at
	if p.nextFree > start {
		start = p.nextFree
	}
	done := start.Add(p.serialization(size))
	p.nextFree = done
	p.stats.Messages++
	p.stats.Bytes += uint64(size)
	return done.Add(p.propagation(rng)), true
}

// propagation returns the delay plus a jitter draw.
func (p *Pipe) propagation(rng *rand.Rand) time.Duration {
	d := p.cfg.Delay
	if p.cfg.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.cfg.Jitter)))
	}
	return d
}

// schedulePackets is the packet-granularity path: each MTU-sized chunk
// is admitted, lost and serialized independently. The exit instant is
// the last packet's; a single lost packet fails the whole message
// (leaving the already-serialized packets charged, like a real link
// that carried them before the loss was noticed).
func (p *Pipe) schedulePackets(at sim.Time, size int, rng *rand.Rand) (sim.Time, bool) {
	exit := at
	ok := true
	for sent := 0; sent < size; sent += p.cfg.MTU {
		chunk := size - sent
		if chunk > p.cfg.MTU {
			chunk = p.cfg.MTU
		}
		if p.cfg.Loss > 0 && rng.Float64() < p.cfg.Loss {
			p.stats.Lost++
			ok = false
			continue // later packets still occupy the wire
		}
		if p.cfg.QueueBytes > 0 && p.Backlog(at)+int64(chunk) > p.cfg.QueueBytes {
			p.stats.Overflows++
			ok = false
			continue
		}
		start := at
		if p.nextFree > start {
			start = p.nextFree
		}
		done := start.Add(p.serialization(chunk))
		p.nextFree = done
		p.stats.Bytes += uint64(chunk)
		exit = done
	}
	if !ok {
		return 0, false
	}
	p.stats.Messages++
	return exit.Add(p.propagation(rng)), true
}

// AccountTransfer records a message accepted by an external link model
// (the flow engine schedules traffic itself, off the pipe's cursor),
// keeping Messages/Bytes — and therefore Utilization — meaningful
// under either model. Note a flow-model drop charges no pipe at all,
// whereas the pipe model counts a mid-path casualty on the pipes it
// already traversed; Backlog likewise stays zero under the flow model
// (the fluid backlog lives in flow.Model).
func (p *Pipe) AccountTransfer(size int) {
	p.stats.Messages++
	p.stats.Bytes += uint64(size)
}

// AccountDrop records a message dropped by an external link model,
// against either the overflow or the random-loss counter.
func (p *Pipe) AccountDrop(overflow bool) {
	if overflow {
		p.stats.Overflows++
	} else {
		p.stats.Lost++
	}
}

// Utilization returns the fraction of the interval [from, to] during
// which the serializer was busy, computed from the bytes accepted over
// the interval: prev must be the Stats snapshot taken at instant from
// (the zero PipeStats for the start of the run). It is an aggregate
// measure, not a per-instant one. Taking the snapshot as an argument
// rather than lifetime counters is what lets per-phase callers report
// each interval's own traffic instead of everything since boot.
func (p *Pipe) Utilization(prev PipeStats, from, to sim.Time) float64 {
	if p.cfg.Bandwidth <= 0 || to <= from {
		return 0
	}
	sent := float64(p.stats.Bytes-prev.Bytes) * 8
	capacity := float64(p.cfg.Bandwidth) * to.Sub(from).Seconds()
	u := sent / capacity
	if u > 1 {
		u = 1
	}
	return u
}

// Common link-rate constants, in bits per second.
const (
	Kbps int64 = 1_000
	Mbps int64 = 1_000_000
	Gbps int64 = 1_000_000_000
)
