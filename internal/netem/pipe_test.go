package netem

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestPipeSerializationDelay(t *testing.T) {
	k := sim.New(1)
	// 8 Mbit/s: 1 MB takes exactly 1 second on the wire.
	p := NewPipe(k, "dsl-down", PipeConfig{Bandwidth: 8 * Mbps})
	out, ok := p.ScheduleAt(0, 1_000_000, testRNG())
	if !ok {
		t.Fatal("message dropped")
	}
	if out != sim.Time(time.Second) {
		t.Fatalf("exit at %v, want 1s", out)
	}
}

func TestPipePropagationDelay(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "lat", PipeConfig{Delay: 30 * time.Millisecond})
	out, ok := p.ScheduleAt(0, 1500, testRNG())
	if !ok || out != sim.Time(30*time.Millisecond) {
		t.Fatalf("exit at %v ok=%v, want 30ms", out, ok)
	}
}

func TestPipeUnlimitedBandwidth(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "inf", PipeConfig{})
	out, ok := p.ScheduleAt(sim.Time(time.Second), 1<<30, testRNG())
	if !ok || out != sim.Time(time.Second) {
		t.Fatalf("unlimited pipe should add no delay, got %v", out)
	}
}

func TestPipeFIFOQueueing(t *testing.T) {
	k := sim.New(1)
	// 1 Mbit/s: a 125000-byte message takes 1 second.
	p := NewPipe(k, "q", PipeConfig{Bandwidth: 1 * Mbps})
	rng := testRNG()
	first, _ := p.ScheduleAt(0, 125_000, rng)
	second, _ := p.ScheduleAt(0, 125_000, rng)
	if first != sim.Time(time.Second) {
		t.Fatalf("first exits at %v, want 1s", first)
	}
	if second != sim.Time(2*time.Second) {
		t.Fatalf("second must queue behind first: exits at %v, want 2s", second)
	}
}

func TestPipeIdleGapNotAccumulated(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "idle", PipeConfig{Bandwidth: 1 * Mbps})
	rng := testRNG()
	p.ScheduleAt(0, 125_000, rng) // busy until 1s
	// Enter at 10s, long after the pipe went idle.
	out, _ := p.ScheduleAt(sim.Time(10*time.Second), 125_000, rng)
	if out != sim.Time(11*time.Second) {
		t.Fatalf("exit at %v, want 11s (no stale backlog)", out)
	}
}

func TestPipeQueueOverflowDrops(t *testing.T) {
	k := sim.New(1)
	// Backlog counts untransmitted bytes, including the message currently
	// in the serializer: 125 kB + 125 kB fits a 260 kB queue, a third
	// message does not.
	p := NewPipe(k, "small-q", PipeConfig{Bandwidth: 1 * Mbps, QueueBytes: 260_000})
	rng := testRNG()
	if _, ok := p.ScheduleAt(0, 125_000, rng); !ok {
		t.Fatal("first message should pass")
	}
	if _, ok := p.ScheduleAt(0, 125_000, rng); !ok {
		t.Fatal("second message fits the queue")
	}
	if _, ok := p.ScheduleAt(0, 125_000, rng); ok {
		t.Fatal("third message should overflow the 260 kB queue")
	}
	if p.Stats().Overflows != 1 {
		t.Fatalf("overflows = %d, want 1", p.Stats().Overflows)
	}
}

func TestPipeLossRate(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "lossy", PipeConfig{Loss: 0.3})
	rng := testRNG()
	const n = 10000
	dropped := 0
	for i := 0; i < n; i++ {
		if _, ok := p.ScheduleAt(0, 100, rng); !ok {
			dropped++
		}
	}
	rate := float64(dropped) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("observed loss %.3f, want ~0.30", rate)
	}
	if p.Stats().Lost != uint64(dropped) {
		t.Fatalf("stats.Lost = %d, want %d", p.Stats().Lost, dropped)
	}
}

func TestPipeLossOneDropsEverything(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "blackhole", PipeConfig{Loss: 1})
	rng := testRNG()
	for i := 0; i < 100; i++ {
		if _, ok := p.ScheduleAt(0, 100, rng); ok {
			t.Fatal("loss=1 pipe delivered a message")
		}
	}
}

func TestPipeInvalidLossPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for loss > 1")
		}
	}()
	NewPipe(sim.New(1), "bad", PipeConfig{Loss: 1.5})
}

func TestPipeBacklog(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "b", PipeConfig{Bandwidth: 8 * Mbps})
	rng := testRNG()
	p.ScheduleAt(0, 1_000_000, rng) // busy until 1s
	got := p.Backlog(sim.Time(500 * time.Millisecond))
	if got < 490_000 || got > 510_000 {
		t.Fatalf("backlog at 0.5s = %d bytes, want ~500000", got)
	}
	if p.Backlog(sim.Time(2*time.Second)) != 0 {
		t.Fatal("backlog after drain should be 0")
	}
}

func TestPipeStats(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "s", PipeConfig{Bandwidth: 1 * Mbps})
	rng := testRNG()
	p.ScheduleAt(0, 1000, rng)
	p.ScheduleAt(0, 2000, rng)
	st := p.Stats()
	if st.Messages != 2 || st.Bytes != 3000 {
		t.Fatalf("stats = %+v, want 2 msgs / 3000 bytes", st)
	}
}

func TestPipeUtilization(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "u", PipeConfig{Bandwidth: 8 * Mbps})
	rng := testRNG()
	p.ScheduleAt(0, 500_000, rng) // half a second of wire time
	u := p.Utilization(PipeStats{}, 0, sim.Time(time.Second))
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %.3f, want ~0.5", u)
	}
}

// TestPipeUtilizationInterval: Utilization honors its [from, to]
// contract — only the bytes accepted inside the interval count, not
// everything since boot. Regression: the lifetime Bytes counter used
// to be divided by the interval's capacity, so a second phase with no
// traffic still reported the first phase's utilization.
func TestPipeUtilizationInterval(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "u2", PipeConfig{Bandwidth: 8 * Mbps})
	rng := testRNG()
	p.ScheduleAt(0, 500_000, rng) // phase 1: half a second of wire time
	phase1 := p.Stats()

	// Phase 2, [1s, 2s]: no traffic at all.
	if u := p.Utilization(phase1, sim.Time(time.Second), sim.Time(2*time.Second)); u != 0 {
		t.Fatalf("idle phase utilization = %.3f, want 0", u)
	}
	// Phase 2 with its own traffic reports only that traffic.
	p.ScheduleAt(sim.Time(time.Second), 250_000, rng)
	u := p.Utilization(phase1, sim.Time(time.Second), sim.Time(2*time.Second))
	if u < 0.24 || u > 0.26 {
		t.Fatalf("phase-2 utilization = %.3f, want ~0.25", u)
	}
	// The full-run view is unchanged by snapshotting.
	u = p.Utilization(PipeStats{}, 0, sim.Time(2*time.Second))
	if u < 0.36 || u > 0.39 {
		t.Fatalf("lifetime utilization = %.3f, want ~0.375", u)
	}
}

func TestPipeJitterRange(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "jitter", PipeConfig{Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	rng := testRNG()
	seen := map[sim.Time]bool{}
	for i := 0; i < 500; i++ {
		out, ok := p.ScheduleAt(0, 100, rng)
		if !ok {
			t.Fatal("drop")
		}
		if out < sim.Time(10*time.Millisecond) || out >= sim.Time(15*time.Millisecond) {
			t.Fatalf("delay %v outside [10ms, 15ms)", out)
		}
		seen[out] = true
	}
	if len(seen) < 100 {
		t.Fatalf("jitter not varying: %d distinct delays", len(seen))
	}
}

func TestPipeZeroJitterDeterministic(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "nj", PipeConfig{Delay: 10 * time.Millisecond})
	rng := testRNG()
	a, _ := p.ScheduleAt(0, 100, rng)
	b, _ := p.ScheduleAt(0, 100, rng)
	if a != b {
		t.Fatal("no-jitter pipe must be deterministic for identical inputs")
	}
}

func TestPipeMTUSameFirstOrderTiming(t *testing.T) {
	// With no loss and no queue bound, packet-granularity charging must
	// produce the same exit time as message-level charging.
	k := sim.New(1)
	msg := NewPipe(k, "msg", PipeConfig{Bandwidth: 2 * Mbps, Delay: 30 * time.Millisecond})
	pkt := NewPipe(k, "pkt", PipeConfig{Bandwidth: 2 * Mbps, Delay: 30 * time.Millisecond, MTU: 1500})
	rng := testRNG()
	a, okA := msg.ScheduleAt(0, 16384, rng)
	b, okB := pkt.ScheduleAt(0, 16384, rng)
	if !okA || !okB {
		t.Fatal("unexpected drop")
	}
	if a != b {
		t.Fatalf("message-level exit %v != packet-level exit %v", a, b)
	}
}

func TestPipeMTULossPerPacket(t *testing.T) {
	// A 16 KiB message is 11 packets at 1500 B; with 5% per-packet
	// loss the message survival rate is 0.95^11 ≈ 57%, far below the
	// 95% a message-level pipe would deliver.
	k := sim.New(1)
	p := NewPipe(k, "lossy", PipeConfig{Loss: 0.05, MTU: 1500})
	rng := testRNG()
	const n = 5000
	survived := 0
	for i := 0; i < n; i++ {
		if _, ok := p.ScheduleAt(0, 16384, rng); ok {
			survived++
		}
	}
	rate := float64(survived) / n
	if rate < 0.52 || rate > 0.62 {
		t.Fatalf("per-packet survival = %.3f, want ≈0.57 (0.95^11)", rate)
	}
}

func TestPipeMTUSmallMessageUnchanged(t *testing.T) {
	// Messages at or below the MTU take the message-level path.
	k := sim.New(1)
	p := NewPipe(k, "small", PipeConfig{Bandwidth: Mbps, MTU: 1500})
	rng := testRNG()
	if _, ok := p.ScheduleAt(0, 1500, rng); !ok {
		t.Fatal("drop without loss")
	}
	if p.Stats().Messages != 1 {
		t.Fatalf("messages = %d", p.Stats().Messages)
	}
}

func TestPipeMonotoneExitTimes(t *testing.T) {
	// Messages scheduled in causal order must exit in order (FIFO link).
	k := sim.New(1)
	p := NewPipe(k, "fifo", PipeConfig{Bandwidth: 512 * Kbps, Delay: 10 * time.Millisecond})
	rng := testRNG()
	var last sim.Time
	at := sim.Time(0)
	for i := 0; i < 1000; i++ {
		at = at.Add(time.Duration(rng.Intn(3)) * time.Millisecond)
		out, ok := p.ScheduleAt(at, 100+rng.Intn(1400), rng)
		if !ok {
			continue
		}
		if out < last {
			t.Fatalf("exit times went backwards: %v after %v", out, last)
		}
		last = out
	}
}
