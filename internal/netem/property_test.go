package netem

import (
	"math/rand"
	"testing"

	"repro/internal/ip"
	"repro/internal/sim"
)

// randomTable builds a randomized rule table — duplicate IDs included —
// in three synchronized forms: linear, integrated-indexed (incremental
// maintenance path) and standalone IndexedRuleSet (bulk-build path).
// The pipe pool is shared so verdict pipes compare by identity.
func randomTable(rng *rand.Rand, k *sim.Kernel, n int) (lin, idx *RuleSet) {
	lin = NewRuleSet()
	idx = NewRuleSet()
	idx.SetClassifier(ClassifierIndexed) // index maintained rule by rule
	pool := make([]*Pipe, 8)
	for i := range pool {
		pool[i] = NewPipe(k, "pool", PipeConfig{})
	}
	for i := 0; i < n; i++ {
		r := Rule{ID: 100 + rng.Intn(n/4+1)} // dense IDs: many duplicates
		r.Src = randomPrefix(rng)
		r.Dst = randomPrefix(rng)
		switch rng.Intn(10) {
		case 0:
			r.Action = ActionDeny
		case 1:
			r.Action = ActionAccept
		case 2, 3, 4:
			r.Action = ActionPipe
			r.Pipe = pool[rng.Intn(len(pool))]
		default:
			r.Action = ActionCount
		}
		lin.Add(r)
		idx.Add(r)
	}
	return lin, idx
}

// randomPrefix draws from the address shapes real tables mix: wide
// wildcards, group /16s, subnet /24s and host /32s, all inside a small
// space so queries actually hit rules.
func randomPrefix(rng *rand.Rand) ip.Prefix {
	base := ip.MustParseAddr("10.0.0.0").Add(uint32(rng.Intn(4)<<16 | rng.Intn(4)<<8 | rng.Intn(8)))
	switch rng.Intn(5) {
	case 0:
		return ip.Prefix{} // 0.0.0.0/0
	case 1:
		return ip.NewPrefix(base, 16)
	case 2:
		return ip.NewPrefix(base, 24)
	default:
		return ip.NewPrefix(base, 32)
	}
}

func randomAddr(rng *rand.Rand) ip.Addr {
	return ip.MustParseAddr("10.0.0.0").Add(uint32(rng.Intn(4)<<16 | rng.Intn(4)<<8 | rng.Intn(8)))
}

func sameVerdict(a, b Verdict) bool {
	if a.Deny != b.Deny || len(a.Pipes) != len(b.Pipes) {
		return false
	}
	for i := range a.Pipes {
		if a.Pipes[i] != b.Pipes[i] {
			return false
		}
	}
	return true
}

// TestClassifierEquivalenceRandom is the classifier-equivalence
// property: on randomized tables (duplicate IDs, mixed prefix widths,
// all four actions) the linear and indexed classifiers must return
// identical verdicts — pipes in the same order, the same Deny — and
// the two indexed implementations (incrementally maintained vs
// bulk-built) must agree exactly, Visited and Cost included.
func TestClassifierEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := sim.New(1)
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(120)
		lin, idx := randomTable(rng, k, n)
		bulk := NewIndexedRuleSet(lin)
		for q := 0; q < 40; q++ {
			src, dst := randomAddr(rng), randomAddr(rng)
			lv := lin.Eval(src, dst)
			iv := idx.Eval(src, dst)
			bv := bulk.Eval(src, dst)
			if !sameVerdict(lv, iv) {
				t.Fatalf("round %d: linear %+v != indexed %+v for %v→%v\ntable:\n%s",
					round, lv, iv, src, dst, dumpRules(lin))
			}
			if !sameVerdict(iv, bv) || iv.Visited != bv.Visited || iv.Cost != bv.Cost {
				t.Fatalf("round %d: incremental %+v != bulk %+v for %v→%v",
					round, iv, bv, src, dst)
			}
			if iv.Visited > lv.Visited {
				t.Fatalf("round %d: indexed visited %d > linear %d", round, iv.Visited, lv.Visited)
			}
		}
		// Churn: remove a few IDs from both tables and re-verify, then
		// cross-check the incrementally maintained index against a
		// fresh bulk build (catches stale index entries).
		for del := 0; del < 3; del++ {
			id := 100 + rng.Intn(n/4+1)
			if got, want := idx.Remove(id), lin.Remove(id); got != want {
				t.Fatalf("round %d: Remove(%d) removed %d indexed vs %d linear", round, id, got, want)
			}
		}
		rebuilt := NewIndexedRuleSet(lin)
		for q := 0; q < 20; q++ {
			src, dst := randomAddr(rng), randomAddr(rng)
			lv := lin.Eval(src, dst)
			iv := idx.Eval(src, dst)
			rv := rebuilt.Eval(src, dst)
			if !sameVerdict(lv, iv) {
				t.Fatalf("round %d post-churn: linear %+v != indexed %+v", round, lv, iv)
			}
			if !sameVerdict(iv, rv) || iv.Visited != rv.Visited {
				t.Fatalf("round %d post-churn: incremental %+v != rebuilt %+v", round, iv, rv)
			}
		}
	}
}

func dumpRules(rs *RuleSet) string {
	out := ""
	for i := range rs.Rules() {
		out += rs.Rules()[i].String() + "\n"
	}
	return out
}
