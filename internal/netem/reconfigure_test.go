package netem

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

// runPipeWorkload pushes a deterministic message mix through one pipe,
// optionally reconfiguring it (with its own current config — a no-op)
// before every message, and returns the observed exit schedule.
func runPipeWorkload(t *testing.T, seed int64, selfReconfigure bool) []sim.Time {
	t.Helper()
	k := sim.New(seed)
	p := NewPipe(k, "p", PipeConfig{
		Bandwidth: 1 * Mbps, Delay: 10 * time.Millisecond,
		Jitter: time.Millisecond, Loss: 0.05, QueueBytes: 64 << 10,
	})
	rng := rand.New(rand.NewSource(seed))
	var exits []sim.Time
	at := sim.Time(0)
	for i := 0; i < 500; i++ {
		if selfReconfigure {
			p.Reconfigure(p.Config())
		}
		at = at.Add(time.Duration(rng.Intn(12)) * time.Millisecond)
		exit, ok := p.ScheduleAt(at, 200+rng.Intn(8000), rng)
		if ok {
			exits = append(exits, exit)
		} else {
			exits = append(exits, -1)
		}
	}
	return exits
}

// TestReconfigureIdenticalIsNoop: reconfiguring a pipe to its current
// configuration must not perturb the schedule at all — same exits,
// same drops, same RNG consumption.
func TestReconfigureIdenticalIsNoop(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plain := runPipeWorkload(t, seed, false)
		reconf := runPipeWorkload(t, seed, true)
		if len(plain) != len(reconf) {
			t.Fatalf("seed %d: schedule lengths diverge", seed)
		}
		for i := range plain {
			if plain[i] != reconf[i] {
				t.Fatalf("seed %d: message %d exits at %v plain vs %v with no-op reconfigure",
					seed, i, plain[i], reconf[i])
			}
		}
	}
}

// TestReconfigureReratesCursor checks the Dummynet runtime-reconfigure
// semantics analytically: the unserialized backlog is re-charged at
// the new bandwidth, in both directions, and the cursor never lands in
// the virtual past.
func TestReconfigureReratesCursor(t *testing.T) {
	const size = 125_000 // 1 Mbit -> 1 s at 1 Mbps
	cases := []struct {
		name    string
		newBW   int64
		wait    time.Duration // virtual instant of the reconfigure
		nextDur time.Duration // serialization start offset for a probe sent at reconfigure time
	}{
		// Halfway through a 1 s serialization, 0.5 Mbit remain.
		{"upgrade", 2 * Mbps, 500 * time.Millisecond, 250 * time.Millisecond},
		{"degrade", 500 * Kbps, 500 * time.Millisecond, 1000 * time.Millisecond},
		{"to-unlimited", 0, 500 * time.Millisecond, 0},
		// After the message fully serialized, reconfigure must not
		// resurrect a backlog (cursor stays in the past, probe starts
		// immediately).
		{"after-idle", 2 * Mbps, 1500 * time.Millisecond, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.New(1)
			p := NewPipe(k, "p", PipeConfig{Bandwidth: 1 * Mbps})
			rng := rand.New(rand.NewSource(1))
			exit, ok := p.ScheduleAt(0, size, rng)
			if !ok || exit != sim.Time(time.Second) {
				t.Fatalf("setup transfer: exit %v ok %v", exit, ok)
			}
			var probe sim.Time
			k.At(sim.Time(tc.wait), func() {
				cfg := p.Config()
				cfg.Bandwidth = tc.newBW
				p.Reconfigure(cfg)
				if bl := p.Backlog(k.Now()); bl < 0 {
					t.Errorf("negative backlog %d after reconfigure", bl)
				}
				// A zero-size probe exits exactly when the serializer
				// frees: the re-rated cursor, observably.
				probe, _ = p.ScheduleAt(k.Now(), 0, rng)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			want := sim.Time(tc.wait).Add(tc.nextDur)
			if probe != want {
				t.Errorf("probe after reconfigure exits at %v, want %v", probe, want)
			}
			if probe < sim.Time(tc.wait) {
				t.Errorf("cursor moved into the virtual past: %v < %v", probe, tc.wait)
			}
		})
	}
}

// TestReconfigureLossValidation: a reconfigure with an out-of-range
// loss panics like NewPipe does.
func TestReconfigureLossValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad loss accepted")
		}
	}()
	k := sim.New(1)
	p := NewPipe(k, "p", PipeConfig{})
	p.Reconfigure(PipeConfig{Loss: 1.5})
}
