package netem

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ip"
)

// Action tells the firewall what to do with a matching packet.
type Action int

const (
	// ActionPipe sends the packet through the rule's pipe and continues
	// evaluating subsequent rules (Dummynet one-pass mode, as P2PLab
	// uses it: several latency pipes can stack on one path).
	ActionPipe Action = iota
	// ActionAccept terminates evaluation and lets the packet through.
	ActionAccept
	// ActionDeny terminates evaluation and drops the packet.
	ActionDeny
	// ActionCount matches without effect (a no-op filler rule; the paper
	// pads tables with these to measure evaluation cost, Fig 6).
	ActionCount
)

// String names the action like an ipfw listing would.
func (a Action) String() string {
	switch a {
	case ActionPipe:
		return "pipe"
	case ActionAccept:
		return "allow"
	case ActionDeny:
		return "deny"
	case ActionCount:
		return "count"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Classifier selects the packet-classification algorithm a RuleSet
// runs. The linear scan is the faithful IPFW model and the source of
// the paper's Fig 6 artifact; the hash-indexed classifier is what a
// constant-time firewall would have bought ("it is not possible to
// evaluate the rules in a hierarchical way, or with a hash table").
// Both return identical verdicts (pipes in rule order, first terminal
// action wins); only the number of rules *visited* — and therefore the
// evaluation cost charged to virtual time — differs.
type Classifier int

const (
	// ClassifierLinear is the IPFW-faithful ordered linear scan.
	ClassifierLinear Classifier = iota
	// ClassifierIndexed fronts the table with hash indexes over the
	// source and destination /24, leaving a short residual linear list.
	ClassifierIndexed
)

// String names the classifier for flags and sweep labels.
func (c Classifier) String() string {
	switch c {
	case ClassifierLinear:
		return "linear"
	case ClassifierIndexed:
		return "indexed"
	default:
		return fmt.Sprintf("Classifier(%d)", int(c))
	}
}

// ParseClassifier parses a classifier name as used by command-line
// flags and scenario specs.
func ParseClassifier(s string) (Classifier, error) {
	switch s {
	case "linear":
		return ClassifierLinear, nil
	case "indexed":
		return ClassifierIndexed, nil
	default:
		return 0, fmt.Errorf("netem: unknown classifier %q (want linear or indexed)", s)
	}
}

// Rule is one IPFW-style firewall rule: match on source and destination
// prefixes, then apply an action. Src/Dst zero values ("0.0.0.0/0")
// match everything.
type Rule struct {
	ID     int // rule number; evaluation order is ascending ID
	Src    ip.Prefix
	Dst    ip.Prefix
	Action Action
	Pipe   *Pipe // used by ActionPipe

	// seq is the insertion sequence number RuleSet.Add assigns: rules
	// sharing an ID evaluate in insertion order, and (ID, seq) is the
	// total evaluation order every classifier must reproduce.
	seq uint64
}

// Matches reports whether the rule applies to a src→dst packet.
func (r *Rule) Matches(src, dst ip.Addr) bool {
	return r.Src.Contains(src) && r.Dst.Contains(dst)
}

// String formats the rule like an ipfw listing line.
func (r *Rule) String() string {
	target := r.Action.String()
	if r.Action == ActionPipe && r.Pipe != nil {
		target = "pipe " + r.Pipe.Name()
	}
	return fmt.Sprintf("%05d %s ip from %v to %v", r.ID, target, r.Src, r.Dst)
}

// before reports whether r evaluates before s: ascending ID, insertion
// order within an ID.
func (r *Rule) before(s *Rule) bool {
	if r.ID != s.ID {
		return r.ID < s.ID
	}
	return r.seq < s.seq
}

// Verdict is the outcome of evaluating a rule table for one packet.
type Verdict struct {
	// Pipes are the matched ActionPipe rules' pipes, in rule order; the
	// packet traverses all of them.
	Pipes []*Pipe
	// Deny is true when an ActionDeny rule matched.
	Deny bool
	// Visited is the number of rules examined; evaluation cost is
	// Visited × PerRuleCost. This linear cost is the paper's Fig 6.
	Visited int
	// Cost is the evaluation time to charge to the packet.
	Cost time.Duration
}

// DefaultPerRuleCost is the virtual CPU time charged per rule visited.
// Calibrated against the paper's Fig 6: ~50000 rules raise a ping RTT
// from ~0.2 ms to ~5 ms, i.e. about 50 ns per rule per traversal with
// two traversals per round trip.
const DefaultPerRuleCost = 48 * time.Nanosecond

// RuleSet is an IPFW-style firewall rule table. Rules are kept sorted
// by (ID, insertion order). Evaluation runs the selected Classifier:
// the default linear scan is real work, so Go benchmarks over a
// RuleSet show the same linear artifact the paper measured, and Cost
// additionally charges the scan to virtual time; the indexed
// classifier keeps a hash index maintained incrementally on Add and
// Remove, so runtime policy churn stays cheap.
type RuleSet struct {
	rules       []Rule
	nextSeq     uint64
	PerRuleCost time.Duration
	classifier  Classifier
	ix          *ruleIndex // non-nil iff classifier == ClassifierIndexed
	evals       uint64
	visited     uint64
}

// NewRuleSet returns an empty rule table with the default per-rule cost
// and the linear classifier.
func NewRuleSet() *RuleSet {
	return &RuleSet{PerRuleCost: DefaultPerRuleCost}
}

// SetClassifier switches the evaluation algorithm. Switching to the
// indexed classifier builds the index from the current table; later
// Add and Remove calls maintain it incrementally.
func (rs *RuleSet) SetClassifier(c Classifier) {
	rs.classifier = c
	if c == ClassifierIndexed {
		rs.ix = newRuleIndex()
		for i := range rs.rules {
			rs.ix.insert(rs.rules[i])
		}
	} else {
		rs.ix = nil
	}
}

// Classifier returns the active classification algorithm.
func (rs *RuleSet) Classifier() Classifier { return rs.classifier }

// Add inserts a rule, keeping the table sorted by ID. Adding a rule with
// an existing ID places it after the existing ones with that ID.
func (rs *RuleSet) Add(r Rule) {
	r.seq = rs.nextSeq
	rs.nextSeq++
	i := sort.Search(len(rs.rules), func(i int) bool { return rs.rules[i].ID > r.ID })
	rs.rules = append(rs.rules, Rule{})
	copy(rs.rules[i+1:], rs.rules[i:])
	rs.rules[i] = r
	if rs.ix != nil {
		rs.ix.insert(r)
	}
}

// AddCopies inserts n copies of r — sharing its ID, consecutive
// insertion seqs — with one table splice instead of n O(table) Adds,
// so a 100k-rule filler batch (scenario add-rule events cap there)
// stays linear. The indexed classifier's bucket is likewise spliced
// once.
func (rs *RuleSet) AddCopies(r Rule, n int) {
	if n <= 0 {
		return
	}
	i := sort.Search(len(rs.rules), func(i int) bool { return rs.rules[i].ID > r.ID })
	rs.rules = append(rs.rules, make([]Rule, n)...)
	copy(rs.rules[i+n:], rs.rules[i:len(rs.rules)-n])
	for j := 0; j < n; j++ {
		r.seq = rs.nextSeq
		rs.nextSeq++
		rs.rules[i+j] = r
	}
	if rs.ix != nil {
		rs.ix.insertBatch(rs.rules[i : i+n])
	}
}

// Remove deletes every rule with the given ID (like `ipfw delete`) and
// returns how many were removed. The indexed classifier's index is
// maintained incrementally.
func (rs *RuleSet) Remove(id int) int {
	lo := sort.Search(len(rs.rules), func(i int) bool { return rs.rules[i].ID >= id })
	hi := sort.Search(len(rs.rules), func(i int) bool { return rs.rules[i].ID > id })
	if lo == hi {
		return 0
	}
	if rs.ix != nil {
		rs.ix.removeBatch(rs.rules[lo:hi])
	}
	rs.rules = append(rs.rules[:lo], rs.rules[hi:]...)
	return hi - lo
}

// AddPipe appends a pipe rule with the next free ID.
func (rs *RuleSet) AddPipe(src, dst ip.Prefix, pipe *Pipe) {
	rs.Add(Rule{ID: rs.NextID(), Src: src, Dst: dst, Action: ActionPipe, Pipe: pipe})
}

// AddCount appends a filler counting rule with the next free ID.
func (rs *RuleSet) AddCount(src, dst ip.Prefix) {
	rs.Add(Rule{ID: rs.NextID(), Src: src, Dst: dst, Action: ActionCount})
}

// RuleHandle pins one exact rule instance — the (ID, insertion)
// identity — so a policy revert can remove precisely the rule it
// added even if the ID has since been reused by other rules.
type RuleHandle struct {
	ID  int
	seq uint64
}

// AddHandle inserts r like Add and returns a handle pinning exactly
// this rule instance (for RemoveHandle).
func (rs *RuleSet) AddHandle(r Rule) RuleHandle {
	rs.Add(r)
	return RuleHandle{ID: r.ID, seq: rs.nextSeq - 1}
}

// AddDeny appends a deny rule with the next free ID and returns a
// handle pinning exactly that rule (for RemoveHandle).
func (rs *RuleSet) AddDeny(src, dst ip.Prefix) RuleHandle {
	return rs.AddHandle(Rule{ID: rs.NextID(), Src: src, Dst: dst, Action: ActionDeny})
}

// RemoveHandle removes exactly the rule the handle pins and reports
// whether it was still present. Unlike Remove, rules that merely share
// the ID are left alone.
func (rs *RuleSet) RemoveHandle(h RuleHandle) bool {
	lo := sort.Search(len(rs.rules), func(i int) bool { return rs.rules[i].ID >= h.ID })
	hi := sort.Search(len(rs.rules), func(i int) bool { return rs.rules[i].ID > h.ID })
	for i := lo; i < hi; i++ {
		if rs.rules[i].seq == h.seq {
			if rs.ix != nil {
				rs.ix.remove(rs.rules[i])
			}
			rs.rules = append(rs.rules[:i], rs.rules[i+1:]...)
			return true
		}
	}
	return false
}

// NextID returns one more than the highest rule ID (or 100, IPFW's
// customary first rule number, for an empty table).
func (rs *RuleSet) NextID() int {
	if len(rs.rules) == 0 {
		return 100
	}
	return rs.rules[len(rs.rules)-1].ID + 1
}

// Len returns the number of rules in the table.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Rules returns the rules in evaluation order. The slice is shared; do
// not mutate it.
func (rs *RuleSet) Rules() []Rule { return rs.rules }

// Eval classifies a src→dst packet with the active classifier,
// collecting every matching pipe and stopping at the first Accept or
// Deny. Under the linear classifier this is the ordered scan the paper
// identifies as P2PLab's main scalability limit ("it is not possible
// to evaluate the rules in a hierarchical way, or with a hash table");
// under the indexed classifier only the candidate rules whose hash
// buckets can match are merged, in the same (ID, insertion) order, so
// the verdict is identical and only Visited (and Cost) shrink.
func (rs *RuleSet) Eval(src, dst ip.Addr) Verdict {
	var v Verdict
	if rs.ix != nil {
		rs.ix.eval(src, dst, &v)
	} else {
		evalLinear(rs.rules, src, dst, &v)
	}
	v.Cost = time.Duration(v.Visited) * rs.PerRuleCost
	rs.evals++
	rs.visited += uint64(v.Visited)
	return v
}

// EvalStats reports how many evaluations ran and the total rules visited.
func (rs *RuleSet) EvalStats() (evals, visited uint64) { return rs.evals, rs.visited }

// evalLinear is the shared ordered-scan core: rules must be sorted in
// evaluation order. It fills Pipes, Deny and Visited; the caller
// prices Cost.
func evalLinear(rules []Rule, src, dst ip.Addr, v *Verdict) {
	for i := range rules {
		r := &rules[i]
		v.Visited++
		if !r.Matches(src, dst) {
			continue
		}
		switch r.Action {
		case ActionPipe:
			if r.Pipe != nil {
				v.Pipes = append(v.Pipes, r.Pipe)
			}
		case ActionAccept:
			return
		case ActionDeny:
			v.Deny = true
			return
		case ActionCount:
			// match counted, no effect
		}
	}
}

// ruleIndex is the hash-indexed classifier's data structure: hash
// indexes over the source /24 and destination /24 in front of a short
// residual linear table. Bucket lists stay sorted by (ID, insertion
// order) so a three-way merge reproduces the linear table's exact
// evaluation order — including tables with duplicate rule IDs, where
// insertion order is the tie-break.
type ruleIndex struct {
	bySrc    map[ip.Prefix][]Rule // rules with src /24 or longer
	byDst    map[ip.Prefix][]Rule // wide-src rules with dst /24 or longer
	residual []Rule               // wide src and wide dst
}

func newRuleIndex() *ruleIndex {
	return &ruleIndex{
		bySrc: make(map[ip.Prefix][]Rule),
		byDst: make(map[ip.Prefix][]Rule),
	}
}

// bucketKey names the bucket a rule lives in. bucketOf is the single
// place that encodes the bucketing policy: insert and every removal
// path go through it, so they cannot drift apart.
type bucketKey struct {
	kind int // 0 = bySrc, 1 = byDst, 2 = residual
	key  ip.Prefix
}

func bucketOf(r Rule) bucketKey {
	switch {
	case r.Src.Bits() >= 24:
		return bucketKey{kind: 0, key: ip.NewPrefix(r.Src.Addr(), 24)}
	case r.Dst.Bits() >= 24:
		return bucketKey{kind: 1, key: ip.NewPrefix(r.Dst.Addr(), 24)}
	default:
		return bucketKey{kind: 2}
	}
}

func (ix *ruleIndex) get(b bucketKey) []Rule {
	switch b.kind {
	case 0:
		return ix.bySrc[b.key]
	case 1:
		return ix.byDst[b.key]
	default:
		return ix.residual
	}
}

// set stores a bucket's list back, dropping emptied map entries.
func (ix *ruleIndex) set(b bucketKey, list []Rule) {
	switch b.kind {
	case 0:
		if len(list) == 0 {
			delete(ix.bySrc, b.key)
		} else {
			ix.bySrc[b.key] = list
		}
	case 1:
		if len(list) == 0 {
			delete(ix.byDst, b.key)
		} else {
			ix.byDst[b.key] = list
		}
	default:
		ix.residual = list
	}
}

// insert places r into its bucket, keeping (ID, seq) order.
func (ix *ruleIndex) insert(r Rule) {
	b := bucketOf(r)
	list := ix.get(b)
	i := sort.Search(len(list), func(i int) bool { return r.before(&list[i]) })
	list = append(list, Rule{})
	copy(list[i+1:], list[i:])
	list[i] = r
	ix.set(b, list)
}

// remove deletes the exact rule (matched by its unique seq) from its
// bucket.
func (ix *ruleIndex) remove(r Rule) {
	b := bucketOf(r)
	list := ix.get(b)
	for i := range list {
		if list[i].seq == r.seq {
			ix.set(b, append(list[:i], list[i+1:]...))
			return
		}
	}
}

// insertBatch splices a run of rules — identical prefixes (one
// bucket), consecutive (ID, seq) order — into the index with a single
// bucket rebuild.
func (ix *ruleIndex) insertBatch(rules []Rule) {
	if len(rules) == 0 {
		return
	}
	b := bucketOf(rules[0])
	list := ix.get(b)
	r0 := rules[0]
	i := sort.Search(len(list), func(i int) bool { return r0.before(&list[i]) })
	out := make([]Rule, 0, len(list)+len(rules))
	out = append(out, list[:i]...)
	out = append(out, rules...)
	out = append(out, list[i:]...)
	ix.set(b, out)
}

// removeBatch deletes many rules at once, filtering each affected
// bucket a single time — a 100k-copy filler batch removed by one
// del-rule event must not rescan its bucket per rule.
func (ix *ruleIndex) removeBatch(rules []Rule) {
	seqs := make(map[bucketKey]map[uint64]bool)
	for i := range rules {
		b := bucketOf(rules[i])
		if seqs[b] == nil {
			seqs[b] = make(map[uint64]bool)
		}
		seqs[b][rules[i].seq] = true
	}
	//lint:allow maporder each bucket is filtered exactly once, keyed by its own map key; bucket visit order is immaterial
	for b, gone := range seqs {
		list := ix.get(b)
		kept := make([]Rule, 0, len(list)-len(gone))
		for i := range list {
			if !gone[list[i].seq] {
				kept = append(kept, list[i])
			}
		}
		ix.set(b, kept)
	}
}

// eval merges the candidate rules from the two hash buckets and the
// residual list in (ID, insertion) order — exactly the linear table's
// evaluation order restricted to rules that can match this packet's
// /24s — and applies the same action semantics as evalLinear.
func (ix *ruleIndex) eval(src, dst ip.Addr, v *Verdict) {
	srcRules := ix.bySrc[ip.NewPrefix(src, 24)]
	dstRules := ix.byDst[ip.NewPrefix(dst, 24)]

	si, di, ri := 0, 0, 0
	for si < len(srcRules) || di < len(dstRules) || ri < len(ix.residual) {
		// Three-way merge by (ID, seq): strict before() comparison on
		// both components preserves linear-table insertion order even
		// with duplicate rule IDs across lists.
		best := (*Rule)(nil)
		bestList := -1
		if si < len(srcRules) {
			best, bestList = &srcRules[si], 0
		}
		if di < len(dstRules) && (best == nil || dstRules[di].before(best)) {
			best, bestList = &dstRules[di], 1
		}
		if ri < len(ix.residual) && (best == nil || ix.residual[ri].before(best)) {
			best, bestList = &ix.residual[ri], 2
		}
		switch bestList {
		case 0:
			si++
		case 1:
			di++
		case 2:
			ri++
		}
		v.Visited++
		if !best.Matches(src, dst) {
			continue
		}
		switch best.Action {
		case ActionPipe:
			if best.Pipe != nil {
				v.Pipes = append(v.Pipes, best.Pipe)
			}
		case ActionAccept:
			return
		case ActionDeny:
			v.Deny = true
			return
		case ActionCount:
		}
	}
}

// PadFiller appends n never-matching counting rules with distinct /32
// sources (172.16.0.1+i) — the Fig 6 padding shape, shared by every
// driver that measures table-size cost: the linear scan visits every
// filler rule while the indexed classifier buckets them all away from
// 10/8 traffic.
func PadFiller(rs *RuleSet, n int) {
	base := ip.MustParseAddr("172.16.0.1")
	for i := 0; i < n; i++ {
		rs.AddCount(ip.NewPrefix(base.Add(uint32(i)), 32), ip.Prefix{})
	}
}

// NewFillerTable returns a fresh table under the given classifier
// padded with n filler rules (see PadFiller).
func NewFillerTable(n int, classifier Classifier) *RuleSet {
	rs := NewRuleSet()
	rs.SetClassifier(classifier)
	PadFiller(rs, n)
	return rs
}

// IndexedRuleSet is the standalone ablation counterpart of a RuleSet
// running ClassifierIndexed: the same hash-indexed structure built
// once from an existing table, for benchmarks and equivalence tests
// that want both classifiers over one table at the same time.
type IndexedRuleSet struct {
	ix          *ruleIndex
	PerRuleCost time.Duration
	evals       uint64
	visited     uint64
}

// NewIndexedRuleSet builds the index from an existing table. Rules with
// a /24-or-longer source prefix are indexed by source; remaining rules
// with a /24-or-longer destination are indexed by destination; rules
// wide on both sides stay in a residual linear list.
func NewIndexedRuleSet(rs *RuleSet) *IndexedRuleSet {
	out := &IndexedRuleSet{ix: newRuleIndex(), PerRuleCost: rs.PerRuleCost}
	for i := range rs.rules {
		out.ix.insert(rs.rules[i])
	}
	return out
}

// Eval classifies a packet using the hash indexes plus the residual
// list. Candidate rules from the three sources are merged in
// (ID, insertion) order so terminal actions and duplicate-ID tables
// behave exactly as in the linear table.
func (ixs *IndexedRuleSet) Eval(src, dst ip.Addr) Verdict {
	var v Verdict
	ixs.ix.eval(src, dst, &v)
	v.Cost = time.Duration(v.Visited) * ixs.PerRuleCost
	ixs.evals++
	ixs.visited += uint64(v.Visited)
	return v
}

// EvalStats reports how many evaluations ran and the total rules visited.
func (ixs *IndexedRuleSet) EvalStats() (evals, visited uint64) { return ixs.evals, ixs.visited }
