package netem

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ip"
)

// Action tells the firewall what to do with a matching packet.
type Action int

const (
	// ActionPipe sends the packet through the rule's pipe and continues
	// evaluating subsequent rules (Dummynet one-pass mode, as P2PLab
	// uses it: several latency pipes can stack on one path).
	ActionPipe Action = iota
	// ActionAccept terminates evaluation and lets the packet through.
	ActionAccept
	// ActionDeny terminates evaluation and drops the packet.
	ActionDeny
	// ActionCount matches without effect (a no-op filler rule; the paper
	// pads tables with these to measure evaluation cost, Fig 6).
	ActionCount
)

// String names the action like an ipfw listing would.
func (a Action) String() string {
	switch a {
	case ActionPipe:
		return "pipe"
	case ActionAccept:
		return "allow"
	case ActionDeny:
		return "deny"
	case ActionCount:
		return "count"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule is one IPFW-style firewall rule: match on source and destination
// prefixes, then apply an action. Src/Dst zero values ("0.0.0.0/0")
// match everything.
type Rule struct {
	ID     int // rule number; evaluation order is ascending ID
	Src    ip.Prefix
	Dst    ip.Prefix
	Action Action
	Pipe   *Pipe // used by ActionPipe
}

// Matches reports whether the rule applies to a src→dst packet.
func (r *Rule) Matches(src, dst ip.Addr) bool {
	return r.Src.Contains(src) && r.Dst.Contains(dst)
}

// String formats the rule like an ipfw listing line.
func (r *Rule) String() string {
	target := r.Action.String()
	if r.Action == ActionPipe && r.Pipe != nil {
		target = "pipe " + r.Pipe.Name()
	}
	return fmt.Sprintf("%05d %s ip from %v to %v", r.ID, target, r.Src, r.Dst)
}

// Verdict is the outcome of evaluating a rule table for one packet.
type Verdict struct {
	// Pipes are the matched ActionPipe rules' pipes, in rule order; the
	// packet traverses all of them.
	Pipes []*Pipe
	// Deny is true when an ActionDeny rule matched.
	Deny bool
	// Visited is the number of rules examined; evaluation cost is
	// Visited × PerRuleCost. This linear cost is the paper's Fig 6.
	Visited int
	// Cost is the evaluation time to charge to the packet.
	Cost time.Duration
}

// DefaultPerRuleCost is the virtual CPU time charged per rule visited.
// Calibrated against the paper's Fig 6: ~50000 rules raise a ping RTT
// from ~0.2 ms to ~5 ms, i.e. about 50 ns per rule per traversal with
// two traversals per round trip.
const DefaultPerRuleCost = 48 * time.Nanosecond

// RuleSet is a linearly evaluated firewall rule table, the model of
// FreeBSD's IPFW. Rules are kept sorted by ID. The linear scan in Eval
// is real work, so Go benchmarks over a RuleSet show the same linear
// artifact the paper measured; Cost additionally charges the scan to
// virtual time.
type RuleSet struct {
	rules       []Rule
	PerRuleCost time.Duration
	evals       uint64
	visited     uint64
}

// NewRuleSet returns an empty rule table with the default per-rule cost.
func NewRuleSet() *RuleSet {
	return &RuleSet{PerRuleCost: DefaultPerRuleCost}
}

// Add inserts a rule, keeping the table sorted by ID. Adding a rule with
// an existing ID places it after the existing ones with that ID.
func (rs *RuleSet) Add(r Rule) {
	i := sort.Search(len(rs.rules), func(i int) bool { return rs.rules[i].ID > r.ID })
	rs.rules = append(rs.rules, Rule{})
	copy(rs.rules[i+1:], rs.rules[i:])
	rs.rules[i] = r
}

// AddPipe appends a pipe rule with the next free ID.
func (rs *RuleSet) AddPipe(src, dst ip.Prefix, pipe *Pipe) {
	rs.Add(Rule{ID: rs.NextID(), Src: src, Dst: dst, Action: ActionPipe, Pipe: pipe})
}

// AddCount appends a filler counting rule with the next free ID.
func (rs *RuleSet) AddCount(src, dst ip.Prefix) {
	rs.Add(Rule{ID: rs.NextID(), Src: src, Dst: dst, Action: ActionCount})
}

// NextID returns one more than the highest rule ID (or 100, IPFW's
// customary first rule number, for an empty table).
func (rs *RuleSet) NextID() int {
	if len(rs.rules) == 0 {
		return 100
	}
	return rs.rules[len(rs.rules)-1].ID + 1
}

// Len returns the number of rules in the table.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Rules returns the rules in evaluation order. The slice is shared; do
// not mutate it.
func (rs *RuleSet) Rules() []Rule { return rs.rules }

// Eval scans the table in order for a src→dst packet, collecting every
// matching pipe, and stops at the first Accept or Deny. This is the
// linear evaluation the paper identifies as P2PLab's main scalability
// limit ("it is not possible to evaluate the rules in a hierarchical
// way, or with a hash table").
func (rs *RuleSet) Eval(src, dst ip.Addr) Verdict {
	var v Verdict
	for i := range rs.rules {
		r := &rs.rules[i]
		v.Visited++
		if !r.Matches(src, dst) {
			continue
		}
		switch r.Action {
		case ActionPipe:
			if r.Pipe != nil {
				v.Pipes = append(v.Pipes, r.Pipe)
			}
		case ActionAccept:
			rs.finish(&v)
			return v
		case ActionDeny:
			v.Deny = true
			rs.finish(&v)
			return v
		case ActionCount:
			// match counted, no effect
		}
	}
	rs.finish(&v)
	return v
}

func (rs *RuleSet) finish(v *Verdict) {
	v.Cost = time.Duration(v.Visited) * rs.PerRuleCost
	rs.evals++
	rs.visited += uint64(v.Visited)
}

// EvalStats reports how many evaluations ran and the total rules visited.
func (rs *RuleSet) EvalStats() (evals, visited uint64) { return rs.evals, rs.visited }

// IndexedRuleSet is the ablation counterpart of RuleSet: hash indexes
// over the source /24 and destination /24 in front of a short residual
// linear table. IPFW could not do this (Fig 6 discussion: "it is not
// possible to evaluate the rules ... with a hash table"); the ablation
// benchmark shows what a constant-time classifier would have bought.
type IndexedRuleSet struct {
	bySrc       map[ip.Prefix][]*Rule // rules with src /24 or longer
	byDst       map[ip.Prefix][]*Rule // wide-src rules with dst /24 or longer
	residual    []*Rule               // wide src and wide dst
	PerRuleCost time.Duration
}

// NewIndexedRuleSet builds the index from an existing table. Rules with
// a /24-or-longer source prefix are indexed by source; remaining rules
// with a /24-or-longer destination are indexed by destination; rules
// wide on both sides stay in a residual linear list.
func NewIndexedRuleSet(rs *RuleSet) *IndexedRuleSet {
	ix := &IndexedRuleSet{
		bySrc:       make(map[ip.Prefix][]*Rule),
		byDst:       make(map[ip.Prefix][]*Rule),
		PerRuleCost: rs.PerRuleCost,
	}
	for i := range rs.rules {
		r := &rs.rules[i]
		switch {
		case r.Src.Bits() >= 24:
			key := ip.NewPrefix(r.Src.Addr(), 24)
			ix.bySrc[key] = append(ix.bySrc[key], r)
		case r.Dst.Bits() >= 24:
			key := ip.NewPrefix(r.Dst.Addr(), 24)
			ix.byDst[key] = append(ix.byDst[key], r)
		default:
			ix.residual = append(ix.residual, r)
		}
	}
	return ix
}

// Eval classifies a packet using the hash indexes plus the residual
// list. Candidate rules from the three sources are merged in rule-ID
// order so terminal actions behave exactly as in the linear table.
func (ix *IndexedRuleSet) Eval(src, dst ip.Addr) Verdict {
	srcRules := ix.bySrc[ip.NewPrefix(src, 24)]
	dstRules := ix.byDst[ip.NewPrefix(dst, 24)]

	var v Verdict
	si, di, ri := 0, 0, 0
	for si < len(srcRules) || di < len(dstRules) || ri < len(ix.residual) {
		// Three-way merge by ascending rule ID.
		best := (*Rule)(nil)
		bestList := -1
		if si < len(srcRules) {
			best, bestList = srcRules[si], 0
		}
		if di < len(dstRules) && (best == nil || dstRules[di].ID < best.ID) {
			best, bestList = dstRules[di], 1
		}
		if ri < len(ix.residual) && (best == nil || ix.residual[ri].ID < best.ID) {
			best, bestList = ix.residual[ri], 2
		}
		switch bestList {
		case 0:
			si++
		case 1:
			di++
		case 2:
			ri++
		}
		v.Visited++
		if !best.Matches(src, dst) {
			continue
		}
		switch best.Action {
		case ActionPipe:
			if best.Pipe != nil {
				v.Pipes = append(v.Pipes, best.Pipe)
			}
		case ActionAccept:
			v.Cost = time.Duration(v.Visited) * ix.PerRuleCost
			return v
		case ActionDeny:
			v.Deny = true
			v.Cost = time.Duration(v.Visited) * ix.PerRuleCost
			return v
		case ActionCount:
		}
	}
	v.Cost = time.Duration(v.Visited) * ix.PerRuleCost
	return v
}
