package netem

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

var (
	anyNet = ip.Prefix{} // 0.0.0.0/0
	netA   = ip.MustParsePrefix("10.1.0.0/16")
	netB   = ip.MustParsePrefix("10.2.0.0/16")
	hostA  = ip.MustParseAddr("10.1.3.207")
	hostB  = ip.MustParseAddr("10.2.2.117")
)

func TestRuleMatches(t *testing.T) {
	r := Rule{Src: netA, Dst: netB}
	if !r.Matches(hostA, hostB) {
		t.Error("rule should match A→B")
	}
	if r.Matches(hostB, hostA) {
		t.Error("rule should not match B→A")
	}
}

func TestRuleSetOrderedByID(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(Rule{ID: 300, Action: ActionCount})
	rs.Add(Rule{ID: 100, Action: ActionCount})
	rs.Add(Rule{ID: 200, Action: ActionCount})
	ids := []int{}
	for _, r := range rs.Rules() {
		ids = append(ids, r.ID)
	}
	if fmt.Sprint(ids) != "[100 200 300]" {
		t.Fatalf("rule order = %v", ids)
	}
}

func TestEvalCollectsPipesInOrder(t *testing.T) {
	k := sim.New(1)
	p1 := NewPipe(k, "p1", PipeConfig{})
	p2 := NewPipe(k, "p2", PipeConfig{})
	rs := NewRuleSet()
	rs.AddPipe(ip.NewPrefix(hostA, 32), anyNet, p1) // per-node rule
	rs.AddPipe(netA, netB, p2)                      // group latency rule
	v := rs.Eval(hostA, hostB)
	if len(v.Pipes) != 2 || v.Pipes[0] != p1 || v.Pipes[1] != p2 {
		t.Fatalf("pipes = %v", v.Pipes)
	}
	if v.Deny {
		t.Fatal("unexpected deny")
	}
}

func TestEvalVisitsWholeTableWithoutTerminal(t *testing.T) {
	rs := NewRuleSet()
	for i := 0; i < 50; i++ {
		rs.AddCount(netB, netB) // never matches A→B
	}
	v := rs.Eval(hostA, hostB)
	if v.Visited != 50 {
		t.Fatalf("visited = %d, want 50", v.Visited)
	}
}

func TestEvalStopsAtAccept(t *testing.T) {
	rs := NewRuleSet()
	rs.AddCount(netB, netB)
	rs.Add(Rule{ID: rs.NextID(), Action: ActionAccept}) // match-all accept
	rs.AddCount(anyNet, anyNet)
	v := rs.Eval(hostA, hostB)
	if v.Visited != 2 {
		t.Fatalf("visited = %d, want 2 (stop at accept)", v.Visited)
	}
}

func TestEvalDeny(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(Rule{ID: 100, Src: netA, Dst: netB, Action: ActionDeny})
	v := rs.Eval(hostA, hostB)
	if !v.Deny {
		t.Fatal("want deny")
	}
	if rs.Eval(hostB, hostA).Deny {
		t.Fatal("reverse direction should pass")
	}
}

func TestEvalCostLinearInRules(t *testing.T) {
	rs := NewRuleSet()
	rs.PerRuleCost = 50 * time.Nanosecond
	for i := 0; i < 1000; i++ {
		rs.AddCount(netB, netB)
	}
	v := rs.Eval(hostA, hostB)
	if v.Cost != 50*time.Microsecond {
		t.Fatalf("cost = %v, want 50µs (1000 rules × 50ns)", v.Cost)
	}
}

func TestEvalStatsAccumulate(t *testing.T) {
	rs := NewRuleSet()
	rs.AddCount(anyNet, anyNet)
	rs.AddCount(anyNet, anyNet)
	rs.Eval(hostA, hostB)
	rs.Eval(hostB, hostA)
	evals, visited := rs.EvalStats()
	if evals != 2 || visited != 4 {
		t.Fatalf("stats = (%d,%d), want (2,4)", evals, visited)
	}
}

func TestNextID(t *testing.T) {
	rs := NewRuleSet()
	if rs.NextID() != 100 {
		t.Fatalf("empty NextID = %d, want 100", rs.NextID())
	}
	rs.Add(Rule{ID: 100, Action: ActionCount})
	if rs.NextID() != 101 {
		t.Fatalf("NextID = %d, want 101", rs.NextID())
	}
}

func TestRuleString(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "dsl", PipeConfig{})
	r := Rule{ID: 100, Src: netA, Dst: netB, Action: ActionPipe, Pipe: p}
	want := "00100 pipe dsl ip from 10.1.0.0/16 to 10.2.0.0/16"
	if r.String() != want {
		t.Fatalf("String = %q, want %q", r.String(), want)
	}
}

func TestActionString(t *testing.T) {
	cases := map[Action]string{
		ActionPipe: "pipe", ActionAccept: "allow",
		ActionDeny: "deny", ActionCount: "count", Action(99): "Action(99)",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("Action(%d).String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestIndexedRuleSetMatchesLinear(t *testing.T) {
	k := sim.New(1)
	rs := NewRuleSet()
	pipes := map[ip.Addr]*Pipe{}
	// 50 per-host /32 rules plus filler.
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < 50; i++ {
		a := base.Add(uint32(i))
		p := NewPipe(k, a.String(), PipeConfig{})
		pipes[a] = p
		rs.AddPipe(ip.NewPrefix(a, 32), anyNet, p)
	}
	ix := NewIndexedRuleSet(rs)
	for a, want := range pipes {
		lv := rs.Eval(a, hostB)
		iv := ix.Eval(a, hostB)
		if len(lv.Pipes) != 1 || lv.Pipes[0] != want {
			t.Fatalf("linear eval wrong for %v", a)
		}
		if len(iv.Pipes) != 1 || iv.Pipes[0] != want {
			t.Fatalf("indexed eval wrong for %v", a)
		}
	}
}

func TestIndexedRuleSetCheaperThanLinear(t *testing.T) {
	k := sim.New(1)
	rs := NewRuleSet()
	base := ip.MustParseAddr("10.0.0.1")
	var last ip.Addr
	for i := 0; i < 5000; i++ {
		a := base.Add(uint32(i))
		rs.AddPipe(ip.NewPrefix(a, 32), anyNet, NewPipe(k, "p", PipeConfig{}))
		last = a
	}
	ix := NewIndexedRuleSet(rs)
	lv := rs.Eval(last, hostB)
	iv := ix.Eval(last, hostB)
	if lv.Visited != 5000 {
		t.Fatalf("linear visited = %d, want 5000", lv.Visited)
	}
	// The index buckets by /24, so one bucket (≤256 rules) is scanned
	// instead of the whole 5000-rule table.
	if iv.Visited > 256 {
		t.Fatalf("indexed visited = %d, want one /24 bucket at most", iv.Visited)
	}
	if len(iv.Pipes) != 1 || iv.Pipes[0] != lv.Pipes[0] {
		t.Fatal("indexed verdict differs from linear")
	}
}

// TestIndexedDuplicateIDsPreserveInsertionOrder is the tie-break
// regression: rules sharing an ID evaluate in insertion order in the
// linear table, and every classifier must reproduce that order — the
// old strict-ID merge interleaved duplicate-ID rules arbitrarily.
func TestIndexedDuplicateIDsPreserveInsertionOrder(t *testing.T) {
	k := sim.New(1)
	p1 := NewPipe(k, "p1", PipeConfig{})
	p2 := NewPipe(k, "p2", PipeConfig{})
	p3 := NewPipe(k, "p3", PipeConfig{})
	rs := NewRuleSet()
	// Three rules with the same ID, landing in three different index
	// buckets (src /32 → bySrc, dst /32 → byDst, wide → residual).
	rs.Add(Rule{ID: 100, Src: ip.NewPrefix(hostA, 32), Action: ActionPipe, Pipe: p1})
	rs.Add(Rule{ID: 100, Dst: ip.NewPrefix(hostB, 32), Action: ActionPipe, Pipe: p2})
	rs.Add(Rule{ID: 100, Action: ActionPipe, Pipe: p3})
	lv := rs.Eval(hostA, hostB)
	want := []*Pipe{p1, p2, p3}
	if len(lv.Pipes) != 3 || lv.Pipes[0] != p1 || lv.Pipes[1] != p2 || lv.Pipes[2] != p3 {
		t.Fatalf("linear pipes = %v, want %v", lv.Pipes, want)
	}
	iv := NewIndexedRuleSet(rs).Eval(hostA, hostB)
	if len(iv.Pipes) != 3 || iv.Pipes[0] != p1 || iv.Pipes[1] != p2 || iv.Pipes[2] != p3 {
		t.Fatalf("indexed pipes = %v, want %v (insertion order lost)", iv.Pipes, want)
	}
	// Terminal actions among duplicates must fire in insertion order
	// too: a deny inserted before a pipe with the same ID wins.
	rs2 := NewRuleSet()
	rs2.Add(Rule{ID: 100, Src: ip.NewPrefix(hostA, 32), Action: ActionDeny})
	rs2.Add(Rule{ID: 100, Action: ActionPipe, Pipe: p1})
	iv2 := NewIndexedRuleSet(rs2).Eval(hostA, hostB)
	if !iv2.Deny || len(iv2.Pipes) != 0 {
		t.Fatalf("indexed verdict = %+v, want deny before same-ID pipe", iv2)
	}
}

// TestIndexedEvalStats: the indexed classifier accumulates EvalStats
// like the linear one (it previously never updated them).
func TestIndexedEvalStats(t *testing.T) {
	rs := NewRuleSet()
	rs.AddCount(ip.NewPrefix(hostA, 32), anyNet)
	rs.AddCount(anyNet, anyNet)
	ix := NewIndexedRuleSet(rs)
	ix.Eval(hostA, hostB)
	ix.Eval(hostB, hostA)
	evals, visited := ix.EvalStats()
	if evals != 2 {
		t.Fatalf("evals = %d, want 2", evals)
	}
	if visited == 0 {
		t.Fatal("visited never accumulated")
	}
	// And through the RuleSet-integrated classifier as well.
	rs.SetClassifier(ClassifierIndexed)
	rs.Eval(hostA, hostB)
	evals, _ = rs.EvalStats()
	if evals != 1 {
		t.Fatalf("ruleset evals = %d, want 1", evals)
	}
}

// TestRemoveMaintainsIndex: Remove deletes every rule with the ID and
// keeps the incremental index in sync with the linear table.
func TestRemoveMaintainsIndex(t *testing.T) {
	rs := NewRuleSet()
	rs.SetClassifier(ClassifierIndexed)
	rs.Add(Rule{ID: 100, Src: ip.NewPrefix(hostA, 32), Action: ActionDeny})
	rs.Add(Rule{ID: 100, Dst: ip.NewPrefix(hostB, 32), Action: ActionDeny})
	rs.Add(Rule{ID: 200, Action: ActionCount})
	if !rs.Eval(hostA, hostB).Deny {
		t.Fatal("deny rules not active")
	}
	if n := rs.Remove(100); n != 2 {
		t.Fatalf("Remove(100) = %d, want 2", n)
	}
	if rs.Len() != 1 {
		t.Fatalf("len = %d, want 1", rs.Len())
	}
	if v := rs.Eval(hostA, hostB); v.Deny {
		t.Fatal("deny still active after Remove (stale index)")
	}
	if n := rs.Remove(100); n != 0 {
		t.Fatalf("second Remove(100) = %d, want 0", n)
	}
}

// TestAddCopiesMatchesRepeatedAdd: the single-splice batch insert is
// indistinguishable from n individual Adds — table order, verdicts
// under both classifiers, and batch retirement via Remove.
func TestAddCopiesMatchesRepeatedAdd(t *testing.T) {
	build := func(batch bool) *RuleSet {
		rs := NewRuleSet()
		rs.SetClassifier(ClassifierIndexed)
		rs.Add(Rule{ID: 100, Src: ip.NewPrefix(hostA, 32), Action: ActionCount})
		rs.Add(Rule{ID: 300, Action: ActionCount})
		r := Rule{ID: 200, Src: ip.NewPrefix(hostA, 32), Dst: netB, Action: ActionCount}
		if batch {
			rs.AddCopies(r, 50)
		} else {
			for i := 0; i < 50; i++ {
				rs.Add(r)
			}
		}
		return rs
	}
	one, many := build(false), build(true)
	if one.Len() != many.Len() {
		t.Fatalf("len %d vs %d", one.Len(), many.Len())
	}
	for i := range one.Rules() {
		if one.Rules()[i].String() != many.Rules()[i].String() {
			t.Fatalf("order diverges at %d: %v vs %v", i, one.Rules()[i], many.Rules()[i])
		}
	}
	ov, mv := one.Eval(hostA, hostB), many.Eval(hostA, hostB)
	if ov.Visited != mv.Visited || ov.Deny != mv.Deny {
		t.Fatalf("verdicts diverge: %+v vs %+v", ov, mv)
	}
	if n := many.Remove(200); n != 50 {
		t.Fatalf("Remove retired %d of the batch, want 50", n)
	}
	if v := many.Eval(hostA, hostB); v.Visited != 2 {
		t.Fatalf("visited = %d after batch removal, want 2 (stale index)", v.Visited)
	}
}

// TestRemoveHandlePinsInstance: a handle removes exactly the rule it
// was issued for — rules that merely reuse the ID afterwards survive,
// and a spent handle is a no-op (the deny-prefix auto-revert contract).
func TestRemoveHandlePinsInstance(t *testing.T) {
	rs := NewRuleSet()
	rs.SetClassifier(ClassifierIndexed)
	h := rs.AddDeny(ip.NewPrefix(hostA, 32), anyNet) // auto-ID 100
	// The ID is reused by an unrelated author rule while the deny is up.
	rs.Add(Rule{ID: h.ID, Src: netA, Dst: netB, Action: ActionCount})
	if !rs.RemoveHandle(h) {
		t.Fatal("handle did not remove its rule")
	}
	if rs.Len() != 1 {
		t.Fatalf("len = %d, want 1 (the reused-ID rule must survive)", rs.Len())
	}
	if rs.Eval(hostA, hostB).Deny {
		t.Fatal("deny still active")
	}
	if v := rs.Eval(hostA, hostB); v.Visited != 1 {
		t.Fatalf("visited = %d, want the surviving count rule only", v.Visited)
	}
	if rs.RemoveHandle(h) {
		t.Fatal("spent handle removed something")
	}
}

// TestSetClassifierSwitchesAlgorithm: flipping the classifier changes
// Visited (the whole point) but never the verdict.
func TestSetClassifierSwitchesAlgorithm(t *testing.T) {
	rs := NewRuleSet()
	base := ip.MustParseAddr("172.16.0.1")
	for i := 0; i < 1000; i++ {
		rs.AddCount(ip.NewPrefix(base.Add(uint32(i)), 32), anyNet)
	}
	rs.AddDeny(ip.NewPrefix(hostA, 32), anyNet)
	lin := rs.Eval(hostA, hostB)
	if !lin.Deny || lin.Visited != 1001 {
		t.Fatalf("linear verdict = %+v", lin)
	}
	rs.SetClassifier(ClassifierIndexed)
	idx := rs.Eval(hostA, hostB)
	if !idx.Deny {
		t.Fatal("indexed classifier lost the deny")
	}
	if idx.Visited >= lin.Visited {
		t.Fatalf("indexed visited %d, want far fewer than %d", idx.Visited, lin.Visited)
	}
	rs.SetClassifier(ClassifierLinear)
	if again := rs.Eval(hostA, hostB); again.Visited != lin.Visited {
		t.Fatalf("back to linear: visited = %d, want %d", again.Visited, lin.Visited)
	}
}

func TestParseClassifier(t *testing.T) {
	for name, want := range map[string]Classifier{"linear": ClassifierLinear, "indexed": ClassifierIndexed} {
		got, err := ParseClassifier(name)
		if err != nil || got != want {
			t.Errorf("ParseClassifier(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParseClassifier("hash"); err == nil {
		t.Error("ParseClassifier accepted unknown name")
	}
}

func TestIndexedRuleSetResidualWideRules(t *testing.T) {
	k := sim.New(1)
	rs := NewRuleSet()
	wide := NewPipe(k, "wide", PipeConfig{})
	rs.AddPipe(netA, netB, wide) // /16 rules go to the residual table
	ix := NewIndexedRuleSet(rs)
	v := ix.Eval(hostA, hostB)
	if len(v.Pipes) != 1 || v.Pipes[0] != wide {
		t.Fatalf("residual rule not applied: %v", v.Pipes)
	}
}
