package netem

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

var (
	anyNet = ip.Prefix{} // 0.0.0.0/0
	netA   = ip.MustParsePrefix("10.1.0.0/16")
	netB   = ip.MustParsePrefix("10.2.0.0/16")
	hostA  = ip.MustParseAddr("10.1.3.207")
	hostB  = ip.MustParseAddr("10.2.2.117")
)

func TestRuleMatches(t *testing.T) {
	r := Rule{Src: netA, Dst: netB}
	if !r.Matches(hostA, hostB) {
		t.Error("rule should match A→B")
	}
	if r.Matches(hostB, hostA) {
		t.Error("rule should not match B→A")
	}
}

func TestRuleSetOrderedByID(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(Rule{ID: 300, Action: ActionCount})
	rs.Add(Rule{ID: 100, Action: ActionCount})
	rs.Add(Rule{ID: 200, Action: ActionCount})
	ids := []int{}
	for _, r := range rs.Rules() {
		ids = append(ids, r.ID)
	}
	if fmt.Sprint(ids) != "[100 200 300]" {
		t.Fatalf("rule order = %v", ids)
	}
}

func TestEvalCollectsPipesInOrder(t *testing.T) {
	k := sim.New(1)
	p1 := NewPipe(k, "p1", PipeConfig{})
	p2 := NewPipe(k, "p2", PipeConfig{})
	rs := NewRuleSet()
	rs.AddPipe(ip.NewPrefix(hostA, 32), anyNet, p1) // per-node rule
	rs.AddPipe(netA, netB, p2)                      // group latency rule
	v := rs.Eval(hostA, hostB)
	if len(v.Pipes) != 2 || v.Pipes[0] != p1 || v.Pipes[1] != p2 {
		t.Fatalf("pipes = %v", v.Pipes)
	}
	if v.Deny {
		t.Fatal("unexpected deny")
	}
}

func TestEvalVisitsWholeTableWithoutTerminal(t *testing.T) {
	rs := NewRuleSet()
	for i := 0; i < 50; i++ {
		rs.AddCount(netB, netB) // never matches A→B
	}
	v := rs.Eval(hostA, hostB)
	if v.Visited != 50 {
		t.Fatalf("visited = %d, want 50", v.Visited)
	}
}

func TestEvalStopsAtAccept(t *testing.T) {
	rs := NewRuleSet()
	rs.AddCount(netB, netB)
	rs.Add(Rule{ID: rs.NextID(), Action: ActionAccept}) // match-all accept
	rs.AddCount(anyNet, anyNet)
	v := rs.Eval(hostA, hostB)
	if v.Visited != 2 {
		t.Fatalf("visited = %d, want 2 (stop at accept)", v.Visited)
	}
}

func TestEvalDeny(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(Rule{ID: 100, Src: netA, Dst: netB, Action: ActionDeny})
	v := rs.Eval(hostA, hostB)
	if !v.Deny {
		t.Fatal("want deny")
	}
	if rs.Eval(hostB, hostA).Deny {
		t.Fatal("reverse direction should pass")
	}
}

func TestEvalCostLinearInRules(t *testing.T) {
	rs := NewRuleSet()
	rs.PerRuleCost = 50 * time.Nanosecond
	for i := 0; i < 1000; i++ {
		rs.AddCount(netB, netB)
	}
	v := rs.Eval(hostA, hostB)
	if v.Cost != 50*time.Microsecond {
		t.Fatalf("cost = %v, want 50µs (1000 rules × 50ns)", v.Cost)
	}
}

func TestEvalStatsAccumulate(t *testing.T) {
	rs := NewRuleSet()
	rs.AddCount(anyNet, anyNet)
	rs.AddCount(anyNet, anyNet)
	rs.Eval(hostA, hostB)
	rs.Eval(hostB, hostA)
	evals, visited := rs.EvalStats()
	if evals != 2 || visited != 4 {
		t.Fatalf("stats = (%d,%d), want (2,4)", evals, visited)
	}
}

func TestNextID(t *testing.T) {
	rs := NewRuleSet()
	if rs.NextID() != 100 {
		t.Fatalf("empty NextID = %d, want 100", rs.NextID())
	}
	rs.Add(Rule{ID: 100, Action: ActionCount})
	if rs.NextID() != 101 {
		t.Fatalf("NextID = %d, want 101", rs.NextID())
	}
}

func TestRuleString(t *testing.T) {
	k := sim.New(1)
	p := NewPipe(k, "dsl", PipeConfig{})
	r := Rule{ID: 100, Src: netA, Dst: netB, Action: ActionPipe, Pipe: p}
	want := "00100 pipe dsl ip from 10.1.0.0/16 to 10.2.0.0/16"
	if r.String() != want {
		t.Fatalf("String = %q, want %q", r.String(), want)
	}
}

func TestActionString(t *testing.T) {
	cases := map[Action]string{
		ActionPipe: "pipe", ActionAccept: "allow",
		ActionDeny: "deny", ActionCount: "count", Action(99): "Action(99)",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("Action(%d).String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestIndexedRuleSetMatchesLinear(t *testing.T) {
	k := sim.New(1)
	rs := NewRuleSet()
	pipes := map[ip.Addr]*Pipe{}
	// 50 per-host /32 rules plus filler.
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < 50; i++ {
		a := base.Add(uint32(i))
		p := NewPipe(k, a.String(), PipeConfig{})
		pipes[a] = p
		rs.AddPipe(ip.NewPrefix(a, 32), anyNet, p)
	}
	ix := NewIndexedRuleSet(rs)
	for a, want := range pipes {
		lv := rs.Eval(a, hostB)
		iv := ix.Eval(a, hostB)
		if len(lv.Pipes) != 1 || lv.Pipes[0] != want {
			t.Fatalf("linear eval wrong for %v", a)
		}
		if len(iv.Pipes) != 1 || iv.Pipes[0] != want {
			t.Fatalf("indexed eval wrong for %v", a)
		}
	}
}

func TestIndexedRuleSetCheaperThanLinear(t *testing.T) {
	k := sim.New(1)
	rs := NewRuleSet()
	base := ip.MustParseAddr("10.0.0.1")
	var last ip.Addr
	for i := 0; i < 5000; i++ {
		a := base.Add(uint32(i))
		rs.AddPipe(ip.NewPrefix(a, 32), anyNet, NewPipe(k, "p", PipeConfig{}))
		last = a
	}
	ix := NewIndexedRuleSet(rs)
	lv := rs.Eval(last, hostB)
	iv := ix.Eval(last, hostB)
	if lv.Visited != 5000 {
		t.Fatalf("linear visited = %d, want 5000", lv.Visited)
	}
	// The index buckets by /24, so one bucket (≤256 rules) is scanned
	// instead of the whole 5000-rule table.
	if iv.Visited > 256 {
		t.Fatalf("indexed visited = %d, want one /24 bucket at most", iv.Visited)
	}
	if len(iv.Pipes) != 1 || iv.Pipes[0] != lv.Pipes[0] {
		t.Fatal("indexed verdict differs from linear")
	}
}

func TestIndexedRuleSetResidualWideRules(t *testing.T) {
	k := sim.New(1)
	rs := NewRuleSet()
	wide := NewPipe(k, "wide", PipeConfig{})
	rs.AddPipe(netA, netB, wide) // /16 rules go to the residual table
	ix := NewIndexedRuleSet(rs)
	v := ix.Eval(hostA, hostB)
	if len(v.Pipes) != 1 || v.Pipes[0] != wide {
		t.Fatalf("residual rule not applied: %v", v.Pipes)
	}
}
