// Package obs is the deterministic in-kernel metric registry: counters,
// gauges and fixed-bucket histograms registered by name+labels, updated
// from emulation hot paths with zero allocation, and sampled only at
// virtual-time boundaries.
//
// Determinism is the design constraint that separates this package from
// an ordinary metrics library. Metric updates are plain memory writes —
// they never allocate, never consult the kernel RNG, never write the
// trace and never schedule events — so an instrumented run dispatches
// exactly the same event sequence as an uninstrumented one and golden
// traces stay byte-identical with a registry attached or not (the
// corpus-wide property test lives in internal/scenario). Sampling
// happens from a kernel event at virtual-time boundaries (see Sampler),
// so every snapshot is taken at a well-defined instant of the timeline
// rather than whenever a scraper happens to ask.
//
// The registry is not thread-safe by design: everything inside one
// kernel runs one goroutine at a time, which is exactly the discipline
// updates and snapshots follow. Callers outside a kernel (the serve
// layer's own request counters) must serialize access themselves.
//
// All accessors tolerate a nil registry and nil instruments: a nil
// *Counter's Inc is a no-op, so instrumented code paths need no
// "metrics enabled?" branches beyond the nil check built into the
// method.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Kind discriminates metric families.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing value. The zero method set on a
// nil receiver is a no-op, so disabled instrumentation costs one branch.
type Counter struct{ v uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a value that can go up and down.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets chosen at
// registration. Observe is a linear scan over the (small, fixed) bound
// slice: no allocation, no branching on registry state.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// series is one labelled instance of a family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	cfn    func() uint64  // pull-style counter
	gfn    func() float64 // pull-style gauge
}

// family groups the series sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	bounds     []float64
	series     map[string]*series // canonical label signature -> series
	order      []*series          // registration order
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid "observability off" value:
// every getter returns nil and every registration is a no-op.
type Registry struct {
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// sig canonicalizes a label set; labels are sorted by key so the same
// set registered in any order lands on the same series.
func sig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// getFamily finds or creates the named family, panicking on a kind or
// bucket-layout conflict — re-registering a name with a different shape
// is a programming error, not a runtime condition.
func (r *Registry) getFamily(name, help string, kind Kind, bounds []float64) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind,
			bounds: append([]float64(nil), bounds...),
			series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	if kind == KindHistogram && len(f.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
	}
	return f
}

// getSeries finds or creates the labelled series within f.
func (f *family) getSeries(labels []Label) *series {
	key := sig(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...)}
		sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
		f.series[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter returns the named counter series, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.getFamily(name, help, KindCounter, nil).getSeries(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns the named gauge series, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getFamily(name, help, KindGauge, nil).getSeries(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the named histogram series with the given ascending
// bucket upper bounds (+Inf is implicit), creating it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %s bounds not ascending: %v", name, bounds))
	}
	f := r.getFamily(name, help, KindHistogram, bounds)
	s := f.getSeries(labels)
	if s.hist == nil {
		s.hist = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	return s.hist
}

// CounterFunc registers a pull-style counter evaluated at snapshot
// time — the idiom for mirroring counters a subsystem already keeps
// (flow.Stats, netem.PipeStats) without double-counting on the hot
// path. fn runs in kernel context during Snapshot and must be cheap,
// deterministic and side-effect free.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.getFamily(name, help, KindCounter, nil).getSeries(labels).cfn = fn
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time
// (queue depths, connection counts). Same contract as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.getFamily(name, help, KindGauge, nil).getSeries(labels).gfn = fn
}

// Snapshot types: a deep copy of the registry at one instant, safe to
// hand to other goroutines (the serve layer publishes them to HTTP
// clients while the kernel keeps running).

// Bucket is one cumulative histogram bucket (observations ≤ LE).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// SeriesSnap is one series at snapshot time.
type SeriesSnap struct {
	Labels []Label `json:"labels,omitempty"`
	// Value carries the counter or gauge value.
	Value float64 `json:"value"`
	// Histogram-only fields. Buckets are cumulative over the finite
	// bounds; the implicit +Inf bucket equals Count.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Family is all series of one metric name.
type Family struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Kind   Kind         `json:"kind"`
	Series []SeriesSnap `json:"series"`
}

// Snapshot is the whole registry at one instant, families sorted by
// name, series in registration order.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Snapshot deep-copies the registry, evaluating Func collectors. It
// allocates (unlike updates) and is meant to run at sampling boundaries
// only. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.families))
	//lint:allow maporder collected names are sorted below before use
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := &Snapshot{Families: make([]Family, 0, len(names))}
	for _, name := range names {
		f := r.families[name]
		fam := Family{Name: f.name, Help: f.help, Kind: f.kind,
			Series: make([]SeriesSnap, 0, len(f.order))}
		for _, s := range f.order {
			ss := SeriesSnap{Labels: append([]Label(nil), s.labels...)}
			switch f.kind {
			case KindCounter:
				v := s.ctr.Value()
				if s.cfn != nil {
					v += s.cfn()
				}
				ss.Value = float64(v)
			case KindGauge:
				if s.gfn != nil {
					ss.Value = s.gfn()
				} else {
					ss.Value = s.gauge.Value()
				}
			case KindHistogram:
				h := s.hist
				ss.Count, ss.Sum = h.n, h.sum
				ss.Buckets = make([]Bucket, len(h.bounds))
				var cum uint64
				for i, b := range h.bounds {
					cum += h.counts[i]
					ss.Buckets[i] = Bucket{LE: b, Count: cum}
				}
			}
			fam.Series = append(fam.Series, ss)
		}
		snap.Families = append(snap.Families, fam)
	}
	return snap
}

// Find returns the named family of a snapshot, or nil.
func (s *Snapshot) Find(name string) *Family {
	if s == nil {
		return nil
	}
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Total sums the values of every series of the named family — the
// common "how many in total, across labels" test helper. Histograms
// contribute their observation count.
func (s *Snapshot) Total(name string) float64 {
	f := s.Find(name)
	if f == nil {
		return 0
	}
	var sum float64
	for _, ss := range f.Series {
		if f.Kind == KindHistogram {
			sum += float64(ss.Count)
		} else {
			sum += ss.Value
		}
	}
	return sum
}
