package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCounterGaugeGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("requests_total", "Requests.")
	c2 := r.Counter("requests_total", "Requests.")
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	c1.Inc()
	c1.Add(4)
	if got := c2.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}

	// Label order must not matter.
	a := r.Counter("labelled_total", "x", L("a", "1"), L("b", "2"))
	b := r.Counter("labelled_total", "x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label registration order must canonicalize to one series")
	}
	// A different value is a different series.
	c := r.Counter("labelled_total", "x", L("a", "1"), L("b", "3"))
	if c == a {
		t.Fatal("distinct label values must be distinct series")
	}

	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %g, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must be inert")
	}
	r.CounterFunc("f", "", func() uint64 { return 1 })
	r.GaugeFunc("f2", "", func() float64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var s *Sampler
	s.Stop() // must not panic
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 102.65 {
		t.Fatalf("sum = %g, want 102.65", h.Sum())
	}
	snap := r.Snapshot()
	f := snap.Find("latency_seconds")
	if f == nil || len(f.Series) != 1 {
		t.Fatal("missing histogram family")
	}
	ss := f.Series[0]
	// Buckets are cumulative: ≤0.1 holds 2 (0.05 and the boundary 0.1),
	// ≤1 holds 3, ≤10 holds 4; +Inf (implicit) equals Count = 5.
	want := []Bucket{{0.1, 2}, {1, 3}, {10, 4}}
	if len(ss.Buckets) != len(want) {
		t.Fatalf("buckets = %v", ss.Buckets)
	}
	for i, b := range want {
		if ss.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, ss.Buckets[i], b)
		}
	}
	if ss.Count != 5 {
		t.Fatalf("snapshot count = %d", ss.Count)
	}

	// Same name with the same bucket count is the same series...
	h2 := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	if h2 != h {
		t.Fatal("histogram get-or-create broken")
	}
	// ...but a different layout panics.
	defer func() {
		if recover() == nil {
			t.Fatal("bucket-layout conflict must panic")
		}
	}()
	r.Histogram("latency_seconds", "Latency.", []float64{5})
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("pulled_total", "", func() uint64 { return n })
	r.GaugeFunc("pulled_depth", "", func() float64 { return float64(n) * 2 })
	n = 21
	snap := r.Snapshot()
	if got := snap.Total("pulled_total"); got != 21 {
		t.Fatalf("counter func = %g, want 21", got)
	}
	if got := snap.Total("pulled_depth"); got != 42 {
		t.Fatalf("gauge func = %g, want 42", got)
	}

	// A push counter and a pull func on the same series add up.
	c := r.Counter("mixed_total", "")
	c.Add(10)
	r.CounterFunc("mixed_total", "", func() uint64 { return 5 })
	if got := r.Snapshot().Total("mixed_total"); got != 15 {
		t.Fatalf("mixed counter = %g, want 15", got)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "")
	c.Inc()
	snap := r.Snapshot()
	c.Add(100)
	if got := snap.Total("x_total"); got != 1 {
		t.Fatalf("snapshot mutated after the fact: %g", got)
	}
}

// promLine matches the sample lines of the text exposition format
// (metric name, optional label set, float value).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)

// checkPromText validates the exposition: every line is a comment or a
// well-formed sample, TYPE precedes the samples of its family, and no
// metric family block repeats.
func checkPromText(t *testing.T, text string) (samples int) {
	t.Helper()
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, kind := parts[2], parts[3]
			if typed[name] {
				t.Fatalf("family %s declared twice", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("unknown kind in %q", line)
			}
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %s has no preceding TYPE", name)
		}
		samples++
	}
	return samples
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", `Help with "quotes" and \ slash`, L("peer", `p"1`)).Add(3)
	r.Gauge("g", "A gauge.").Set(-1.5)
	h := r.Histogram("h_seconds", "A histogram.", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(9)

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if n := checkPromText(t, text); n != 7 { // 1 counter + 1 gauge + 3 buckets + sum + count
		t.Fatalf("got %d samples:\n%s", n, text)
	}
	for _, want := range []string{
		`c_total{peer="p\"1"} 3`,
		"g -1.5",
		`h_seconds_bucket{le="0.5"} 1`,
		`h_seconds_bucket{le="2"} 2`,
		`h_seconds_bucket{le="+Inf"} 3`,
		"h_seconds_sum 10.1",
		"h_seconds_count 3",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, text)
		}
	}
}

func TestMerge(t *testing.T) {
	mk := func(v uint64) *Snapshot {
		r := NewRegistry()
		r.Counter("shared_total", "Shared.").Add(v)
		r.Gauge(fmt.Sprintf("only_%d", v), "").Set(1)
		return r.Snapshot()
	}
	merged := Merge("job", []Labeled{
		{Value: "job-1", Snap: mk(1)},
		{Value: "job-2", Snap: mk(2)},
		{Value: "job-3", Snap: nil}, // skipped
	})
	f := merged.Find("shared_total")
	if f == nil || len(f.Series) != 2 {
		t.Fatalf("shared family not merged: %+v", f)
	}
	for i, want := range []string{"job-1", "job-2"} {
		if len(f.Series[i].Labels) == 0 || f.Series[i].Labels[0] != L("job", want) {
			t.Fatalf("series %d labels = %v", i, f.Series[i].Labels)
		}
	}
	if merged.Total("shared_total") != 3 {
		t.Fatalf("merged total = %g", merged.Total("shared_total"))
	}
	// The merged exposition must stay valid (no repeated family block).
	var b strings.Builder
	if err := merged.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	checkPromText(t, b.String())
}

func TestSamplerFiresAtVirtualBoundaries(t *testing.T) {
	k := sim.New(1)
	r := NewRegistry()
	c := r.Counter("ticks_total", "")
	// A workload that bumps the counter every 100ms of virtual time and
	// stops the kernel at 1s.
	var work func()
	work = func() {
		c.Inc()
		k.After(100*time.Millisecond, work)
	}
	k.After(100*time.Millisecond, work)
	k.After(time.Second, k.Stop)

	var at []sim.Time
	var vals []float64
	s := StartSampler(k, r, 250*time.Millisecond, func(now sim.Time, snap *Snapshot) {
		at = append(at, now)
		vals = append(vals, snap.Total("ticks_total"))
	})
	defer s.Stop()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 3 { // 250ms, 500ms, 750ms; 1s loses to Stop ordering either way
		t.Fatalf("samples at %v", at)
	}
	for i, wantAt := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond} {
		if time.Duration(at[i]) != wantAt {
			t.Fatalf("sample %d at %v, want %v", i, time.Duration(at[i]), wantAt)
		}
	}
	// Counter visible at each boundary: 2 ticks by 250ms; at 500ms the
	// sampler (scheduled at 250ms) dispatches before that instant's tick
	// (scheduled at 400ms), so it sees 4; 7 ticks by 750ms.
	if vals[0] != 2 || vals[1] != 4 || vals[2] != 7 {
		t.Fatalf("sampled values %v", vals)
	}

	// nil cases produce a no-op sampler.
	if StartSampler(k, nil, time.Second, func(sim.Time, *Snapshot) {}) != nil {
		t.Fatal("nil registry must yield nil sampler")
	}
	if StartSampler(k, r, 0, func(sim.Time, *Snapshot) {}) != nil {
		t.Fatal("zero interval must yield nil sampler")
	}
}

func TestUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4, 8, 16, 32})
	var nilC *Counter
	var nilH *Histogram
	cases := map[string]func(){
		"counter.Inc":     func() { c.Inc() },
		"counter.Add":     func() { c.Add(3) },
		"gauge.Set":       func() { g.Set(1) },
		"gauge.Add":       func() { g.Add(1) },
		"hist.Observe":    func() { h.Observe(7) },
		"nilCounter.Inc":  func() { nilC.Inc() },
		"nilHist.Observe": func() { nilH.Observe(7) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", name, allocs)
		}
	}
}
