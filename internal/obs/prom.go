package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family, then
// one line per series, with histogram series expanded into cumulative
// _bucket{le=...} lines plus _sum and _count.
func (s *Snapshot) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, ss := range f.Series {
			if err := writeSeries(w, f, ss); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f Family, ss SeriesSnap) error {
	switch f.Kind {
	case KindHistogram:
		for _, b := range ss.Buckets {
			le := append(append([]Label(nil), ss.Labels...), Label{Key: "le", Value: formatFloat(b.LE)})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(le), b.Count); err != nil {
				return err
			}
		}
		inf := append(append([]Label(nil), ss.Labels...), Label{Key: "le", Value: "+Inf"})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(inf), ss.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelString(ss.Labels), formatFloat(ss.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelString(ss.Labels), ss.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(ss.Labels), formatFloat(ss.Value))
		return err
	}
}

// labelString renders {k="v",...} (sorted by key), or "" when empty.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Labeled pairs a snapshot with the value an injected label takes for
// its series (e.g. the job id publishing the snapshot).
type Labeled struct {
	Value string
	Snap  *Snapshot
}

// Merge combines several snapshots into one, tagging every series of
// group i with the label key=groups[i].Value. Families that appear in
// multiple snapshots are merged into a single family block, which keeps
// the merged exposition valid Prometheus text (a metric name must not
// repeat). Nil snapshots are skipped; the result has families sorted by
// name and series in group order.
func Merge(key string, groups []Labeled) *Snapshot {
	byName := make(map[string]*Family)
	var names []string
	for _, g := range groups {
		if g.Snap == nil {
			continue
		}
		for _, f := range g.Snap.Families {
			mf := byName[f.Name]
			if mf == nil {
				mf = &Family{Name: f.Name, Help: f.Help, Kind: f.Kind}
				byName[f.Name] = mf
				names = append(names, f.Name)
			}
			for _, ss := range f.Series {
				tagged := ss
				tagged.Labels = append([]Label{{Key: key, Value: g.Value}}, ss.Labels...)
				mf.Series = append(mf.Series, tagged)
			}
		}
	}
	sort.Strings(names)
	out := &Snapshot{Families: make([]Family, 0, len(names))}
	for _, n := range names {
		out.Families = append(out.Families, *byName[n])
	}
	return out
}
