package obs

import (
	"time"

	"repro/internal/sim"
)

// Sampler snapshots a registry at fixed virtual-time boundaries: a
// self-rescheduling kernel event that runs the snapshot callback every
// interval of *simulated* time. Because the callback takes no RNG
// draws, writes no trace records and wakes no tasks, its presence in
// the event queue does not perturb the dispatch order of any other
// event — instrumented runs stay byte-identical to bare ones (the
// trace-neutrality property test in internal/scenario).
//
// The sampler keeps rescheduling itself until the run ends, so it must
// only be attached to workloads that terminate via Kernel.Stop or
// RunUntil — a run that waits for an empty event queue would never see
// one. Every scenario workload stops the kernel explicitly, so this
// holds throughout the repo.
type Sampler struct {
	stopped bool
	ev      *sim.Event
}

// StartSampler arranges for fn(now, registry.Snapshot()) to run every
// interval of virtual time on kernel k, starting one interval from now.
// fn executes in kernel context: it may read kernel state but must not
// block. Returns nil (a valid no-op Sampler) when the registry, the
// interval or fn is unset.
func StartSampler(k *sim.Kernel, reg *Registry, interval time.Duration, fn func(at sim.Time, snap *Snapshot)) *Sampler {
	if reg == nil || interval <= 0 || fn == nil {
		return nil
	}
	s := &Sampler{}
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		fn(k.Now(), reg.Snapshot())
		s.ev = k.After(interval, tick)
	}
	s.ev = k.After(interval, tick)
	return s
}

// Stop cancels future samples. Safe on nil.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopped = true
	s.ev.Cancel()
}
