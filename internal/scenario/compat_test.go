package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
)

// goldenCompatFile pins every corpus scenario's trace digest to the
// value recorded at the commit before PR 8 (the bt hot-loop refactor
// and bugfix sweep). TestGoldenTraces proves determinism *within* a
// build; this file proves compatibility *across* builds: the picker,
// choker and interest refactors must not move a single byte of any
// corpus trace, and a bugfix may shift a trace only when the shift is
// declared and justified in intentionalShifts below.
//
// Regenerate with:
//
//	GOLDEN_UPDATE=1 go test ./internal/scenario/ -run TestGoldenTraceCompat
//
// Only regenerate when a PR deliberately changes observable behavior,
// and record the justification in intentionalShifts (or clear it when
// re-baselining).
const goldenCompatFile = "testdata/golden_digests.json"

// intentionalShifts names the corpus scenarios whose digests are
// expected to differ from the recorded pre-PR baseline, each with the
// reason the shift is correct. Scenarios not listed here must match
// the file exactly.
var intentionalShifts = map[string]string{
	// (none for PR 8: the dial-budget fix only binds when a tracker
	// response could push a client past MaxInitiate — corpus swarms top
	// out at ~21 nodes, under the 30-dial budget — and the multi-word
	// block bitmap only binds for pieces over 1 MiB, while the corpus
	// uses 256 KiB pieces. Both fixes are therefore trace-neutral on
	// the corpus and are instead pinned by dedicated regression tests
	// in internal/bt.)
}

func TestGoldenTraceCompat(t *testing.T) {
	digests := make(map[string]string)
	for _, sp := range Corpus() {
		sp := sp
		d, _, _ := traceDigest(t, sp, sim.QueueCalendar)
		digests[sp.Name] = d
	}

	if os.Getenv("GOLDEN_UPDATE") != "" {
		names := make([]string, 0, len(digests))
		for n := range digests {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make(map[string]string, len(digests))
		for _, n := range names {
			ordered[n] = digests[n]
		}
		blob, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenCompatFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCompatFile, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenCompatFile, len(digests))
		return
	}

	blob, err := os.ReadFile(goldenCompatFile)
	if err != nil {
		t.Fatalf("missing %s (run with GOLDEN_UPDATE=1 to record): %v", goldenCompatFile, err)
	}
	var want map[string]string
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenCompatFile, err)
	}
	for name, got := range digests {
		pinned, known := want[name]
		if !known {
			t.Errorf("%s: not in %s — new scenario? record it (GOLDEN_UPDATE=1)", name, goldenCompatFile)
			continue
		}
		if reason, shifted := intentionalShifts[name]; shifted {
			if got == pinned {
				t.Errorf("%s: declared as intentionally shifted (%s) but digest is unchanged — drop it from intentionalShifts", name, reason)
			}
			continue
		}
		if got != pinned {
			t.Errorf("%s: trace shifted from the recorded baseline\n  recorded %s\n  got      %s\nif this shift is intentional, declare it in intentionalShifts with a justification", name, pinned, got)
		}
	}
	for name := range want {
		if _, ok := digests[name]; !ok {
			t.Errorf("%s: recorded in %s but no longer in the corpus", name, goldenCompatFile)
		}
	}
}
