package scenario

import (
	"sort"
	"time"
)

// The committed scenario corpus: named, runnable experiment
// descriptions exercising every workload family and every timeline
// action, each covered by a golden-trace determinism test
// (golden_test.go) and runnable as `p2plab run <name>`. Populations
// and file sizes are deliberately modest so the whole corpus runs in
// test time; scale up by editing a JSON export (`p2plab run -dump`).
var corpus = []Spec{
	{
		Name:        "flash-crowd",
		Description: "20 DSL clients arrive nearly at once on a single seeder; the flow model shares the seeder uplink max-min fairly",
		Model:       "flow",
		Horizon:     Duration(30 * time.Minute),
		Groups: []GroupSpec{
			{Name: "crowd", Class: "dsl", Nodes: 21},
		},
		Workload: WorkloadSpec{
			Kind:          WorkloadSwarm,
			FileSize:      1 << 20,
			Seeders:       1,
			StartInterval: Duration(100 * time.Millisecond),
		},
	},
	{
		Name:        "slow-seeder-wan",
		Description: "fast-DSL consumers drain a single seeder stuck behind a slow-DSL uplink across a 150 ms WAN",
		Model:       "flow",
		Horizon:     Duration(time.Hour),
		Groups: []GroupSpec{
			{Name: "origin", Class: "slow-dsl", Nodes: 1},
			{Name: "consumers", Class: "fast-dsl", Nodes: 12},
		},
		Latencies: []LatencySpec{
			{A: "origin", B: "consumers", OneWay: Duration(150 * time.Millisecond)},
		},
		Workload: WorkloadSpec{
			Kind:        WorkloadSwarm,
			FileSize:    1 << 20,
			Seeders:     1,
			SeederGroup: "origin",
		},
	},
	{
		Name:        "transatlantic-partition-heal",
		Description: "two DSL continents share a swarm; the ocean link partitions at 45 s and heals at 225 s, stranding the seederless side",
		Horizon:     Duration(time.Hour),
		Groups: []GroupSpec{
			{Name: "america", Class: "dsl", Nodes: 10},
			{Name: "europe", Class: "dsl", Nodes: 10},
		},
		Latencies: []LatencySpec{
			{A: "america", B: "europe", OneWay: Duration(80 * time.Millisecond)},
		},
		Workload: WorkloadSpec{
			Kind:        WorkloadSwarm,
			FileSize:    1 << 20,
			Seeders:     2,
			SeederGroup: "america",
		},
		Timeline: []EventSpec{
			{At: Duration(45 * time.Second), Action: ActionPartition,
				A: []string{"america"}, B: []string{"europe"}, For: Duration(180 * time.Second)},
		},
	},
	{
		Name:        "modem-heavy-endgame",
		Description: "a DSL swarm with a modem minority: the endgame tail is dominated by the slowest access class",
		Horizon:     Duration(time.Hour),
		Groups: []GroupSpec{
			{Name: "dsl", Class: "dsl", Nodes: 12},
			{Name: "modem", Class: "modem", Nodes: 6},
		},
		Workload: WorkloadSpec{
			Kind:     WorkloadSwarm,
			FileSize: 1 << 20,
			Seeders:  2,
		},
	},
	{
		Name:        "degrade-restore",
		Description: "a campus swarm whose links degrade to modem mid-download and restore later; in-flight transfers are re-rated both ways",
		Model:       "flow",
		Horizon:     Duration(30 * time.Minute),
		Groups: []GroupSpec{
			{Name: "campus", Class: "campus", Nodes: 16},
		},
		Workload: WorkloadSpec{
			Kind:     WorkloadSwarm,
			FileSize: 2 << 20,
			Seeders:  2,
		},
		Timeline: []EventSpec{
			{At: Duration(5 * time.Second), Action: ActionSetClass, Groups: []string{"campus"}, Class: "modem"},
			{At: Duration(65 * time.Second), Action: ActionSetClass, Groups: []string{"campus"}, Class: "campus"},
		},
	},
	{
		Name:        "churn-storm",
		Description: "half the clients churn on Pareto sessions while a 60 s partition splits the swarm down the middle",
		Horizon:     Duration(time.Hour),
		Groups: []GroupSpec{
			{Name: "east", Class: "dsl", Nodes: 10},
			{Name: "west", Class: "dsl", Nodes: 10},
		},
		Workload: WorkloadSpec{
			Kind:        WorkloadChurnSwarm,
			FileSize:    1 << 20,
			Seeders:     2,
			SeederGroup: "east",
			Session:     Duration(90 * time.Second),
			Downtime:    Duration(45 * time.Second),
		},
		Timeline: []EventSpec{
			{At: Duration(100 * time.Second), Action: ActionPartition,
				A: []string{"east"}, B: []string{"west"}, For: Duration(60 * time.Second)},
		},
	},
	{
		Name:        "lossy-mobile-gossip",
		Description: "an epidemic update spreads over slow-DSL 'mobile' links hit by two 20% loss bursts",
		Horizon:     Duration(10 * time.Minute),
		Groups: []GroupSpec{
			{Name: "mobile", Class: "slow-dsl", Nodes: 32},
		},
		Workload: WorkloadSpec{
			Kind:   WorkloadGossip,
			Fanout: 3,
		},
		Timeline: []EventSpec{
			{At: Duration(2 * time.Second), Action: ActionLoss, Groups: []string{"mobile"},
				Loss: 0.2, For: Duration(10 * time.Second)},
			{At: Duration(25 * time.Second), Action: ActionLoss, Groups: []string{"mobile"},
				Loss: 0.2, For: Duration(10 * time.Second)},
		},
	},
	{
		Name:        "gossip-partition",
		Description: "dissemination stalls at half coverage while a partition splits the population, then completes on heal",
		Horizon:     Duration(10 * time.Minute),
		Groups: []GroupSpec{
			{Name: "north", Class: "campus", Nodes: 16},
			{Name: "south", Class: "campus", Nodes: 16},
		},
		Workload: WorkloadSpec{
			Kind:   WorkloadGossip,
			Fanout: 3,
		},
		Timeline: []EventSpec{
			{At: Duration(1500 * time.Millisecond), Action: ActionPartition,
				A: []string{"north"}, B: []string{"south"}, For: Duration(30 * time.Second)},
		},
	},
	{
		Name:        "firewalled-group",
		Description: "a deny-prefix rule firewalls the filtered group off mid-download for 3 minutes; retransmission backs off, stranded conns reset, the swarm recovers on the del",
		Horizon:     Duration(time.Hour),
		Groups: []GroupSpec{
			{Name: "open", Class: "dsl", Nodes: 10},
			{Name: "filtered", Class: "dsl", Nodes: 8},
		},
		Workload: WorkloadSpec{
			Kind:        WorkloadSwarm,
			FileSize:    1 << 20,
			Seeders:     2,
			SeederGroup: "open",
		},
		Timeline: []EventSpec{
			{At: Duration(45 * time.Second), Action: ActionDenyPfx,
				Groups: []string{"filtered"}, For: Duration(180 * time.Second)},
		},
	},
	{
		Name:        "policy-churn",
		Description: "gossip spreads while the indexed-classifier firewall churns: filler batches install and retire, and the edge group is denied for 20 s mid-spread",
		Classifier:  "indexed",
		Horizon:     Duration(10 * time.Minute),
		Groups: []GroupSpec{
			{Name: "core", Class: "campus", Nodes: 16},
			{Name: "edge", Class: "dsl", Nodes: 8},
		},
		Workload: WorkloadSpec{
			Kind:   WorkloadGossip,
			Fanout: 3,
		},
		Timeline: []EventSpec{
			{At: Duration(2 * time.Second), Action: ActionAddRule,
				Rule: "count", Src: "172.16.5.0/24", ID: 50000, Copies: 2000},
			{At: Duration(5 * time.Second), Action: ActionDenyPfx,
				Groups: []string{"edge"}, For: Duration(20 * time.Second)},
			{At: Duration(40 * time.Second), Action: ActionDelRule, ID: 50000},
			{At: Duration(45 * time.Second), Action: ActionAddRule,
				Rule: "count", Dst: "core", ID: 60000, Copies: 500},
		},
	},
	{
		Name:        "snapshot-cold-cdn-fill",
		Description: "a seederless snapshot pull: 5 fast-DSL clients bootstrap a 8 MiB file in 2 MiB pieces entirely from one web seed, then trade pieces among themselves",
		Model:       "flow",
		Horizon:     Duration(30 * time.Minute),
		Groups: []GroupSpec{
			{Name: "pullers", Class: "fast-dsl", Nodes: 5},
		},
		Workload: WorkloadSpec{
			Kind:     WorkloadSnapshot,
			Seeders:  0,
			WebSeeds: 1,
		},
	},
	{
		Name:        "snapshot-flash-crowd-capped",
		Description: "6 fast-DSL clients rush one seeder for an 8 MiB snapshot; every peer's upload is token-bucket capped at 64 KiB/s, well under the access uplink, so the caps (not the links) set the completion tail",
		Model:       "flow",
		Horizon:     Duration(time.Hour),
		Groups: []GroupSpec{
			{Name: "crowd", Class: "fast-dsl", Nodes: 7},
		},
		Workload: WorkloadSpec{
			Kind:          WorkloadSnapshot,
			Seeders:       1,
			UpRate:        64 * 1024,
			StartInterval: Duration(250 * time.Millisecond),
		},
	},
	{
		Name:        "snapshot-seed-restart",
		Description: "the only seeder of an 8 MiB snapshot goes down 30 s into the transfer and resumes from its kept storage 45 s later; the 4 clients ride out the gap on partial-piece trading",
		Horizon:     Duration(30 * time.Minute),
		Groups: []GroupSpec{
			{Name: "nodes", Class: "fast-dsl", Nodes: 5},
		},
		Workload: WorkloadSpec{
			Kind:            WorkloadSnapshot,
			Seeders:         1,
			SeedRestartAt:   Duration(30 * time.Second),
			SeedRestartDown: Duration(45 * time.Second),
		},
	},
	{
		Name:        "dht-flapping-links",
		Description: "Chord lookups measured while a fifth of the ring's interfaces flap down twice for 30 s",
		Horizon:     Duration(20 * time.Minute),
		Groups: []GroupSpec{
			{Name: "stable", Class: "campus", Nodes: 16},
			{Name: "flappy", Class: "dsl", Nodes: 4},
		},
		Workload: WorkloadSpec{
			Kind:    WorkloadDHT,
			Lookups: 40,
		},
		Timeline: []EventSpec{
			{At: Duration(80 * time.Second), Action: ActionLinkDown, Groups: []string{"flappy"}, For: Duration(30 * time.Second)},
			{At: Duration(150 * time.Second), Action: ActionLinkDown, Groups: []string{"flappy"}, For: Duration(30 * time.Second)},
		},
	},
}

// Corpus returns copies of the committed scenarios, sorted by name.
func Corpus() []Spec {
	out := append([]Spec(nil), corpus...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the corpus scenario names, sorted.
func Names() []string {
	out := make([]string, len(corpus))
	for i, sp := range corpus {
		out[i] = sp.Name
	}
	sort.Strings(out)
	return out
}

// ByName returns a copy of the named corpus scenario.
func ByName(name string) (Spec, bool) {
	for _, sp := range corpus {
		if sp.Name == name {
			return sp, true
		}
	}
	return Spec{}, false
}
