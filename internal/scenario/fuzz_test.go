package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzLoadSpec is the loader-robustness property: Load followed by
// WithDefaults and Validate must never panic on arbitrary bytes (the
// spec file is user input via `p2plab run -spec`), and any spec that
// validates must survive a marshal/load round trip still valid.
func FuzzLoadSpec(f *testing.F) {
	// The whole committed corpus seeds the fuzzer with realistic specs.
	for _, sp := range Corpus() {
		data, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`{"name":"x","groups":[{"name":"g","class":"dsl","nodes":-1}]}`))
	f.Add([]byte(`{"name":"x","horizon":"-5s"}`))
	f.Add([]byte(`{"name":"x","timeline":[{"at":"1s","action":"partition"}]}`))
	f.Add([]byte(`{"name":"x","workload":{"kind":"swarm","seeders":999}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Load(data)
		if err != nil {
			return
		}
		d := sp.WithDefaults()
		if err := d.Validate(); err != nil {
			return
		}
		out, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		back, err := Load(out)
		if err != nil {
			t.Fatalf("marshalled spec does not load: %v\n%s", err, out)
		}
		if err := back.WithDefaults().Validate(); err != nil {
			t.Fatalf("valid spec became invalid after round trip: %v\n%s", err, out)
		}
	})
}
