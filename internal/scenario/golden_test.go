package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// traceDigest runs a scenario with full tracing and returns the
// SHA-256 of the rendered event stream plus the headline counters —
// one short string that pins the entire observable behavior of the
// run.
func traceDigest(t *testing.T, sp Spec, queue sim.QueueKind) (string, *Result, *trace.Log) {
	t.Helper()
	lg := trace.New(0)
	res, err := Run(&sp, Options{Queue: queue, Trace: lg})
	if err != nil {
		t.Fatalf("%s: %v", sp.Name, err)
	}
	var buf bytes.Buffer
	if err := lg.Render(&buf); err != nil {
		t.Fatalf("%s: render: %v", sp.Name, err)
	}
	fmt.Fprintf(&buf, "kernel %+v net %+v ended %v done %d/%d\n",
		res.Kernel, res.Net, res.EndedAt, res.Done, res.Total)
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), res, lg
}

// TestGoldenTraces is the corpus-wide determinism property: every
// committed scenario, run with its fixed seed, must produce a
// byte-identical trace stream (a) run over run and (b) under
// sim.QueueHeap versus the calendar queue — the queue-swap determinism
// property of internal/sim extended to full scenario runs, timeline
// reconfiguration included.
func TestGoldenTraces(t *testing.T) {
	for _, sp := range Corpus() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			first, res, lg := traceDigest(t, sp, sim.QueueCalendar)
			again, _, _ := traceDigest(t, sp, sim.QueueCalendar)
			if first != again {
				t.Errorf("calendar-queue runs diverged: %s vs %s", first, again)
			}
			heap, _, _ := traceDigest(t, sp, sim.QueueHeap)
			if first != heap {
				t.Errorf("queue kinds diverged: calendar %s, heap %s", first, heap)
			}
			if len(sp.Timeline) > 0 && lg.Count("scenario.event") == 0 {
				t.Errorf("timeline scenario recorded no scenario.event")
			}
			t.Logf("digest %s (%d/%d done, ended %v)", first[:16], res.Done, res.Total, res.EndedAt)
		})
	}
}

// TestGoldenTracesWindowed extends the determinism property to the
// batched solver: the flow-model corpus scenarios with a positive
// batch window must still be byte-identical run over run and across
// queue kinds — batching changes when flows are leveled, never
// nondeterministically.
func TestGoldenTracesWindowed(t *testing.T) {
	for _, sp := range Corpus() {
		if sp.Model != "flow" {
			continue
		}
		sp := sp
		sp.Name += "-windowed"
		sp.FlowWindow = Duration(100 * time.Millisecond)
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			if err := sp.WithDefaults().Validate(); err != nil {
				t.Fatal(err)
			}
			first, res, _ := traceDigest(t, sp, sim.QueueCalendar)
			again, _, _ := traceDigest(t, sp, sim.QueueCalendar)
			if first != again {
				t.Errorf("windowed runs diverged: %s vs %s", first, again)
			}
			heap, _, _ := traceDigest(t, sp, sim.QueueHeap)
			if first != heap {
				t.Errorf("windowed queue kinds diverged: calendar %s, heap %s", first, heap)
			}
			if res.Done == 0 {
				t.Errorf("windowed run completed nothing: %d/%d", res.Done, res.Total)
			}
			t.Logf("digest %s (%d/%d done, ended %v)", first[:16], res.Done, res.Total, res.EndedAt)
		})
	}
}
