package scenario

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestObsTraceNeutral is the observability half of the golden-trace
// property: attaching a metric registry and a virtual-time sampler must
// not move a single event of a single scenario — the rendered trace,
// the network stats and the completion figures are byte-identical with
// obs on or off. Kernel stats are deliberately excluded: the sampler's
// own self-rescheduling event legitimately increases the dispatched
// event count without touching anyone else's dispatch order.
func TestObsTraceNeutral(t *testing.T) {
	render := func(sp Spec, opt Options, lg *trace.Log) (string, *Result) {
		t.Helper()
		opt.Trace = lg
		res, err := Run(&sp, opt)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		var buf bytes.Buffer
		if err := lg.Render(&buf); err != nil {
			t.Fatalf("%s: render: %v", sp.Name, err)
		}
		fmt.Fprintf(&buf, "net %+v ended %v done %d/%d\n",
			res.Net, res.EndedAt, res.Done, res.Total)
		return buf.String(), res
	}

	sampledAny := false
	for _, sp := range Corpus() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			bare, _ := render(sp, Options{}, trace.New(0))

			reg := obs.NewRegistry()
			samples := 0
			var lastSnap *obs.Snapshot
			instrumented, _ := render(sp, Options{
				Obs:            reg,
				SampleInterval: 10 * time.Second,
				OnSample: func(at sim.Time, snap *obs.Snapshot) {
					samples++
					lastSnap = snap
				},
			}, trace.New(0))

			if bare != instrumented {
				t.Fatalf("trace diverged with obs attached (bare %d bytes, instrumented %d bytes)",
					len(bare), len(instrumented))
			}
			if samples > 0 {
				sampledAny = true
				if lastSnap.Total("p2plab_sim_events_total") == 0 {
					t.Error("sampled snapshot shows no kernel events")
				}
			}
			// The final registry state must mirror the run regardless of
			// whether a sampling boundary was reached.
			final := reg.Snapshot()
			if final.Find("p2plab_net_messages_sent_total") == nil {
				t.Error("network counters not registered")
			}
		})
	}
	if !sampledAny {
		t.Error("no scenario reached a single 10s sampling boundary")
	}
}

// TestObsFinalCountersMirrorStats pins the hot-path counters to the
// NetworkStats they shadow: after any scenario run the registry's
// counters must equal the struct the vnet layer already keeps.
func TestObsFinalCountersMirrorStats(t *testing.T) {
	sp, ok := ByName("flash-crowd")
	if !ok {
		t.Skip("flash-crowd not in corpus")
	}
	reg := obs.NewRegistry()
	res, err := Run(&sp, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	checks := map[string]uint64{
		"p2plab_net_messages_sent_total":      res.Net.MessagesSent,
		"p2plab_net_messages_delivered_total": res.Net.MessagesDelivered,
		"p2plab_net_messages_dropped_total":   res.Net.MessagesDropped,
		"p2plab_net_retransmits_total":        res.Net.Retransmits,
		"p2plab_net_bytes_delivered_total":    res.Net.BytesDelivered,
	}
	for name, want := range checks {
		if got := snap.Total(name); got != float64(want) {
			t.Errorf("%s = %g, want %d", name, got, want)
		}
	}
	if snap.Total("p2plab_net_messages_sent_total") == 0 {
		t.Error("flash-crowd sent no messages?")
	}
	if got := snap.Total("p2plab_sim_events_total"); got != float64(res.Kernel.Events) {
		t.Errorf("sim events counter = %g, want %d", got, res.Kernel.Events)
	}
}
