package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bt"
	"repro/internal/chord"
	"repro/internal/churn"
	"repro/internal/gossip"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/vnet"
)

// Options tunes how a scenario is executed without changing what it
// describes. The zero value is the standard run.
type Options struct {
	// Queue selects the kernel's event-queue implementation; the zero
	// value is the calendar queue. The golden-trace tests run every
	// corpus scenario under both kinds and require identical traces.
	Queue sim.QueueKind
	// Trace, when non-nil, records the full event stream of the run
	// (network sends/deliveries/drops, flow re-rates, scenario timeline
	// events) — the basis of the golden-trace regression tests.
	Trace *trace.Log
	// Seed overrides the spec's seed when non-zero (the sweep engine's
	// seed axis).
	Seed int64
	// Obs, when non-nil, attaches the deterministic metric registry to
	// the run: the network, the protocol layers and the kernel register
	// their instruments on it. Attaching a registry never changes the
	// run itself — the golden-trace corpus is byte-identical with Obs
	// set or nil (TestObsTraceNeutral).
	Obs *obs.Registry
	// SampleInterval, with Obs and OnSample set, snapshots the registry
	// every interval of *virtual* time (obs.StartSampler) and hands the
	// snapshot to OnSample in kernel context. Zero disables sampling;
	// the registry can still be snapshotted after the run.
	SampleInterval time.Duration
	// OnSample receives each periodic snapshot. It runs in kernel
	// context and must not block; the serve layer uses it to publish
	// live metric frames to HTTP subscribers.
	OnSample func(at sim.Time, snap *obs.Snapshot)
}

// Result is a completed scenario run.
type Result struct {
	Spec    *Spec
	Model   netem.ModelKind
	EndedAt sim.Time
	Kernel  sim.Stats
	Net     vnet.NetworkStats
	// Snapshot carries workload metrics keyed like the sweep engine's
	// cell results, labelled with scenario/workload/model/seed.
	Snapshot *metrics.Snapshot

	// Swarm family.
	Completions []sim.Time // per client, zero = unfinished
	Done, Total int        // clients completed / total clients
	Arrivals    int        // churn-swarm: sessions started
	Departures  int

	// DHT.
	AvgHops    float64
	AvgLatency time.Duration

	// Gossip.
	Coverage float64
	T100     time.Duration
}

// runner is the per-run state the timeline events act on.
type runner struct {
	spec    *Spec
	k       *sim.Kernel
	net     *vnet.Network
	tracer  *trace.Log
	tracker *vnet.Host
	hosts   []*vnet.Host              // all workload hosts, creation order
	groups  map[string][]*vnet.Host   // group name -> member hosts
	prefix  map[string]ip.Prefix      // group name -> address block
	class   map[string]topo.LinkClass // group name -> current class
	parts   map[string]int            // active partition signature -> id
	lossGen map[string]uint64         // group -> loss-burst generation
	linkGen map[string]uint64         // group -> link up/down generation
	rules   *netem.RuleSet            // firewall table; nil unless enabled
	finish  func(*Result)             // workload result collection
}

// Run executes a scenario to completion (or its horizon) on a fresh
// kernel and returns the measured result. The spec is defaulted and
// validated first; the caller's value is not mutated.
func Run(sp *Spec, opt Options) (*Result, error) {
	sp = sp.WithDefaults()
	if opt.Seed != 0 {
		sp.Seed = opt.Seed
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	model, err := netem.ParseModel(sp.Model)
	if err != nil {
		return nil, err
	}

	r := &runner{
		spec:    sp,
		k:       sim.NewWithQueue(sp.Seed, opt.Queue),
		tracer:  opt.Trace,
		groups:  make(map[string][]*vnet.Host, len(sp.Groups)),
		prefix:  make(map[string]ip.Prefix, len(sp.Groups)),
		class:   make(map[string]topo.LinkClass, len(sp.Groups)),
		parts:   make(map[string]int),
		lossGen: make(map[string]uint64),
		linkGen: make(map[string]uint64),
	}

	// Topology: one topo group per spec group, auto-prefixed unless
	// pinned, plus the declared inter-group latencies.
	t := topo.New()
	for i, g := range sp.Groups {
		prefix := g.Prefix
		if prefix == "" {
			prefix = fmt.Sprintf("10.%d.0.0/16", i+1)
		}
		pfx, err := ip.ParsePrefix(prefix)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: group %q: %w", sp.Name, g.Name, err)
		}
		class, _ := topo.ClassByName(g.Class)
		if _, err := t.AddGroup(topo.Group{Name: g.Name, Prefix: pfx, Class: class, Nodes: g.Nodes}); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
		}
		r.class[g.Name] = class
		r.prefix[g.Name] = pfx
	}
	for _, l := range sp.Latencies {
		if err := t.SetLatency(l.A, l.B, l.OneWay.D()); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
		}
	}

	ncfg := vnet.DefaultConfig()
	ncfg.Model = model
	ncfg.FlowWindow = sp.FlowWindow.D()
	ncfg.Obs = opt.Obs
	if opt.Obs != nil {
		// Kernel instruments: pull-style, evaluated only at snapshot
		// time (Kernel.Snapshot/QueueResizes take the kernel mutex, which
		// is free while a kernel callback runs).
		k := r.k
		opt.Obs.CounterFunc("p2plab_sim_events_total", "Kernel callbacks dispatched.", func() uint64 {
			return k.Snapshot().Events
		})
		opt.Obs.CounterFunc("p2plab_sim_switches_total", "Simulated-task activations.", func() uint64 {
			return k.Snapshot().Switches
		})
		opt.Obs.CounterFunc("p2plab_sim_spawns_total", "Simulated tasks created.", func() uint64 {
			return k.Snapshot().Spawns
		})
		opt.Obs.CounterFunc("p2plab_sim_queue_resizes_total", "Calendar-queue rebuilds (0 under the heap queue).", func() uint64 {
			return k.QueueResizes()
		})
		opt.Obs.GaugeFunc("p2plab_sim_virtual_seconds", "Current virtual time of the run.", func() float64 {
			return k.Now().Seconds()
		})
	}
	if sp.FirewallEnabled() {
		classifier := netem.ClassifierLinear
		if sp.Classifier != "" {
			classifier, _ = netem.ParseClassifier(sp.Classifier)
		}
		r.rules = netem.NewRuleSet()
		r.rules.SetClassifier(classifier)
		ncfg.Rules = r.rules
	}
	r.net = vnet.NewNetwork(r.k, &vnet.TopoFabric{Topo: t}, ncfg)
	if opt.Trace != nil {
		r.net.SetTrace(opt.Trace)
	}

	// Hosts, in leaf-group declaration order (the same addressing as
	// vnet.PopulateTopology), recorded per group so timeline events can
	// address groups.
	for _, g := range t.LeafGroups() {
		for i := 0; i < g.Nodes; i++ {
			h, err := r.net.AddHostClass(g.Prefix.Nth(uint32(i+1)), g.Class)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
			}
			r.groups[g.Name] = append(r.groups[g.Name], h)
			r.hosts = append(r.hosts, h)
		}
	}

	res := &Result{Spec: sp, Model: model, Snapshot: metrics.NewSnapshot()}
	res.Snapshot.Label("scenario", sp.Name)
	res.Snapshot.Label("workload", sp.Workload.Kind)
	res.Snapshot.Label("model", model.String())
	res.Snapshot.Label("seed", fmt.Sprintf("%d", sp.Seed))

	if err := r.startWorkload(); err != nil {
		return nil, err
	}
	for _, ev := range sp.Timeline {
		r.schedule(ev)
	}
	// The sampler is a repeating kernel event; it is safe here because
	// every workload ends the run via k.Stop() (never by queue
	// exhaustion), which discards the pending sample event.
	sampler := obs.StartSampler(r.k, opt.Obs, opt.SampleInterval, opt.OnSample)
	defer sampler.Stop()
	if err := r.k.Run(); err != nil {
		return nil, fmt.Errorf("scenario %s: kernel: %w", sp.Name, err)
	}
	r.finish(res)
	res.EndedAt = r.k.Now()
	res.Kernel = r.k.Snapshot()
	res.Net = r.net.Stats()
	res.Snapshot.Set("ended-s", res.EndedAt.Seconds())
	res.Snapshot.Count("net-sent", res.Net.MessagesSent)
	res.Snapshot.Count("net-delivered", res.Net.MessagesDelivered)
	res.Snapshot.Count("net-dropped", res.Net.MessagesDropped)
	res.Snapshot.Count("net-retransmits", res.Net.Retransmits)
	if r.rules != nil {
		evals, visited := r.rules.EvalStats()
		res.Snapshot.Label("classifier", r.rules.Classifier().String())
		res.Snapshot.Count("net-rule-denied", res.Net.RuleDenied)
		res.Snapshot.Count("fw-evals", evals)
		res.Snapshot.Count("fw-visited", visited)
	}
	return res, nil
}

// event records a timeline action on the trace so golden traces cover
// the scenario layer itself, not just its network effects.
func (r *runner) event(format string, args ...any) {
	if r.tracer != nil {
		r.tracer.Add(r.k.Now(), "scenario.event", r.spec.Name, format, args...)
	}
}

// schedule installs one timeline event on the kernel. Auto-reverts
// (For > 0) are armed by apply itself, only when the event actually
// took effect, and guard against later events on the same targets —
// a revert never undoes a newer partition, burst or flap.
func (r *runner) schedule(ev EventSpec) {
	r.k.At(sim.Time(0).Add(ev.At.D()), func() { r.apply(ev) })
}

// groupHosts returns the member hosts of the named groups, in group
// then creation order.
func (r *runner) groupHosts(names []string) []*vnet.Host {
	var out []*vnet.Host
	for _, g := range names {
		out = append(out, r.groups[g]...)
	}
	return out
}

func (r *runner) groupAddrs(names []string) []ip.Addr {
	hosts := r.groupHosts(names)
	out := make([]ip.Addr, len(hosts))
	for i, h := range hosts {
		out[i] = h.Addr()
	}
	return out
}

// partKey canonicalizes a partition's two sides so a heal (or
// auto-heal) finds the partition regardless of declaration order.
func partKey(a, b []string) string {
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	ka, kb := strings.Join(as, ","), strings.Join(bs, ",")
	if ka > kb {
		ka, kb = kb, ka
	}
	return ka + "|" + kb
}

func (r *runner) apply(ev EventSpec) {
	switch ev.Action {
	case ActionPartition:
		key := partKey(ev.A, ev.B)
		if _, active := r.parts[key]; active {
			return // already split; the earlier partition keeps its schedule
		}
		r.event("partition %s | %s", strings.Join(ev.A, ","), strings.Join(ev.B, ","))
		id := r.net.Partition(r.groupAddrs(ev.A), r.groupAddrs(ev.B))
		r.parts[key] = id
		if ev.For > 0 {
			// The revert is pinned to this partition instance: an
			// explicit heal + re-partition in between leaves the newer
			// partition alone.
			r.k.After(ev.For.D(), func() {
				if r.parts[key] == id {
					r.heal(ev.A, ev.B)
				}
			})
		}
	case ActionHeal:
		r.heal(ev.A, ev.B)
	case ActionSetClass:
		class, _ := topo.ClassByName(ev.Class)
		r.event("set-class %s -> %s", strings.Join(ev.Groups, ","), class.Name)
		for _, g := range ev.Groups {
			r.class[g] = class
			for _, h := range r.groups[g] {
				r.net.SetLinkClass(h, class)
			}
		}
	case ActionLoss:
		r.event("loss burst %g on %s for %v", ev.Loss, strings.Join(ev.Groups, ","), ev.For)
		gens := make(map[string]uint64, len(ev.Groups))
		for _, g := range ev.Groups {
			r.lossGen[g]++
			gens[g] = r.lossGen[g]
			for _, h := range r.groups[g] {
				r.net.SetLinkLoss(h, ev.Loss)
			}
		}
		r.k.After(ev.For.D(), func() {
			// Restore only the groups this burst still owns: an
			// overlapping later burst keeps its own loss rate and its
			// own expiry.
			for _, g := range ev.Groups {
				if r.lossGen[g] != gens[g] {
					continue
				}
				r.event("loss burst over on %s", g)
				for _, h := range r.groups[g] {
					r.net.SetLinkLoss(h, r.class[g].Loss)
				}
			}
		})
	case ActionLinkDown:
		r.event("link-down %s", strings.Join(ev.Groups, ","))
		gens := make(map[string]uint64, len(ev.Groups))
		for _, g := range ev.Groups {
			r.linkGen[g]++
			gens[g] = r.linkGen[g]
			for _, h := range r.groups[g] {
				r.net.SetLinkUp(h, false)
			}
		}
		if ev.For > 0 {
			r.k.After(ev.For.D(), func() {
				for _, g := range ev.Groups {
					if r.linkGen[g] != gens[g] {
						continue // a newer flap owns the interfaces
					}
					r.event("link-up %s", g)
					for _, h := range r.groups[g] {
						r.net.SetLinkUp(h, true)
					}
				}
			})
		}
	case ActionLinkUp:
		r.event("link-up %s", strings.Join(ev.Groups, ","))
		for _, g := range ev.Groups {
			r.linkGen[g]++ // an explicit up cancels pending auto-restores
			for _, h := range r.groups[g] {
				r.net.SetLinkUp(h, true)
			}
		}
	case ActionAddRule:
		src, dst := r.rulePrefix(ev.Src), r.rulePrefix(ev.Dst)
		action := netem.ActionCount
		switch ev.Rule {
		case "deny":
			action = netem.ActionDeny
		case "allow":
			action = netem.ActionAccept
		}
		copies := ev.Copies
		if copies == 0 {
			copies = 1
		}
		// Every copy of the batch shares one rule number (duplicates
		// are legal, evaluated in insertion order), so one del-rule
		// with that id retires the whole batch.
		id := ev.ID
		if id == 0 {
			id = r.rules.NextID()
		}
		r.rules.AddCopies(netem.Rule{ID: id, Src: src, Dst: dst, Action: action}, copies)
		r.event("add-rule %s %d× id %d from %v to %v (table %d, %s)",
			ev.Rule, copies, id, src, dst, r.rules.Len(), r.rules.Classifier())
	case ActionDelRule:
		n := r.rules.Remove(ev.ID)
		r.event("del-rule id %d removed %d (table %d)", ev.ID, n, r.rules.Len())
	case ActionDenyPfx:
		r.event("deny-prefix %s", strings.Join(ev.Groups, ","))
		var handles []netem.RuleHandle
		for _, g := range ev.Groups {
			pfx := r.prefix[g]
			// Firewall the group's uplink, with partition semantics:
			// members still reach each other (the leading intra-group
			// accept terminates evaluation, the ipfw idiom), while
			// traffic crossing the group boundary is denied in both
			// directions. A pinned ID shares one rule number across the
			// event so a later del-rule can lift it; otherwise the
			// rules get auto-assigned numbers.
			id := ev.ID
			if id == 0 {
				id = r.rules.NextID()
			}
			handles = append(handles,
				r.rules.AddHandle(netem.Rule{ID: id, Src: pfx, Dst: pfx, Action: netem.ActionAccept}),
				r.rules.AddHandle(netem.Rule{ID: id, Src: pfx, Action: netem.ActionDeny}),
				r.rules.AddHandle(netem.Rule{ID: id, Dst: pfx, Action: netem.ActionDeny}))
		}
		if ev.For > 0 {
			// The revert removes exactly the rule instances this event
			// added — handles pin (ID, insertion), so an explicit
			// del-rule in between makes the removal a no-op, and an
			// overlapping event sharing the pinned ID keeps its own
			// rules until its own revert.
			r.k.After(ev.For.D(), func() {
				for _, h := range handles {
					r.rules.RemoveHandle(h)
				}
				r.event("deny-prefix lifted on %s", strings.Join(ev.Groups, ","))
			})
		}
	}
}

// rulePrefix resolves an add-rule match side: empty matches everything,
// a group name resolves to the group's address block, anything else is
// a CIDR prefix (validated by Spec.Validate).
func (r *runner) rulePrefix(s string) ip.Prefix {
	if s == "" {
		return ip.Prefix{}
	}
	if pfx, ok := r.prefix[s]; ok {
		return pfx
	}
	pfx, _ := ip.ParsePrefix(s)
	return pfx
}

func (r *runner) heal(a, b []string) {
	key := partKey(a, b)
	id, active := r.parts[key]
	if !active {
		return
	}
	r.event("heal %s | %s", strings.Join(a, ","), strings.Join(b, ","))
	delete(r.parts, key)
	r.net.Heal(id)
}

// startWorkload builds and launches the spec's workload and sets
// r.finish to collect its results after the run.
func (r *runner) startWorkload() error {
	switch r.spec.Workload.Kind {
	case WorkloadSwarm:
		return r.startSwarm(false)
	case WorkloadChurnSwarm:
		return r.startSwarm(true)
	case WorkloadSnapshot:
		return r.startSnapshot()
	case WorkloadDHT:
		return r.startDHT()
	case WorkloadGossip:
		return r.startGossip()
	}
	return fmt.Errorf("scenario %s: unknown workload %q", r.spec.Name, r.spec.Workload.Kind)
}

// addTracker registers the swarm tracker on an unconstrained link in
// admin space, outside the 10/8 group prefixes.
func (r *runner) addTracker() error {
	h, err := r.net.AddHostClass(ip.MustParseAddr("192.168.0.1"), topo.LAN)
	if err != nil {
		return fmt.Errorf("scenario %s: tracker: %w", r.spec.Name, err)
	}
	r.tracker = h
	return nil
}

func (r *runner) startSwarm(churned bool) error {
	if err := r.addTracker(); err != nil {
		return err
	}
	w := r.spec.Workload
	horizon := r.spec.Horizon.D()
	seedHosts := r.groups[w.SeederGroup][:w.Seeders]
	isSeed := make(map[*vnet.Host]bool, len(seedHosts))
	for _, h := range seedHosts {
		isSeed[h] = true
	}
	var clients []*vnet.Host
	for _, h := range r.hosts {
		h.SetBindEnv(h.Addr()) // P2PLab's BINDIP interception, as in exp
		if !isSeed[h] {
			clients = append(clients, h)
		}
	}
	nChurn := 0
	if churned {
		nChurn = int(float64(len(clients)) * w.ChurnFraction)
	}
	stable, churning := clients[:len(clients)-nChurn], clients[len(clients)-nChurn:]

	bspec := bt.DefaultSwarmSpec()
	bspec.FileSize = w.FileSize
	swarm, err := bt.BuildSwarm(bspec, r.tracker, seedHosts, stable)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", r.spec.Name, err)
	}
	trackerEP := ip.Endpoint{Addr: r.tracker.Addr(), Port: bt.TrackerPort}
	churners := make([]*bt.ResumingClient, len(churning))
	peers := make([]churn.Peer, len(churning))
	for i, h := range churning {
		churners[i] = bt.NewResumingClient(h, swarm.Meta, bt.NewSparseStorage(swarm.Meta), trackerEP, bspec.Client)
		peers[i] = churners[i]
	}

	swarm.Start(w.StartInterval.D())
	var driver *churn.Driver
	if len(churners) > 0 {
		driver = churn.NewDriver(r.k, churn.Config{
			Session:      churn.Pareto{Scale: w.Session.D(), Alpha: 1.8},
			Downtime:     churn.Exponential{MeanDuration: w.Downtime.D()},
			InitialDelay: time.Duration(len(churning)) * w.StartInterval.D(),
			Horizon:      horizon,
		})
		driver.Drive(peers)
	}

	r.k.Go("scenario-waiter", func(p *sim.Proc) {
		if len(churners) == 0 {
			swarm.WaitAll(p, horizon)
			r.k.Stop()
			return
		}
		// Stable clients get the first half of the horizon, churners
		// the rest — the E3 driver's schedule.
		swarm.WaitAll(p, horizon/2)
		deadline := p.Now().Add(horizon / 2)
		for p.Now() < deadline {
			all := true
			for _, cc := range churners {
				if !cc.Done() {
					all = false
					break
				}
			}
			if all {
				break
			}
			p.Sleep(30 * time.Second)
		}
		r.k.Stop()
	})

	r.finish = func(res *Result) {
		res.Completions = swarm.CompletionTimes()
		res.Total = len(stable) + len(churners)
		var last float64
		for _, t := range res.Completions {
			if t > 0 {
				res.Done++
				if t.Seconds() > last {
					last = t.Seconds()
				}
			}
		}
		for _, cc := range churners {
			if cc.Done() {
				res.Done++
			}
		}
		if driver != nil {
			st := driver.Stats()
			res.Arrivals, res.Departures = st.Arrivals, st.Departures
			res.Snapshot.Count("arrivals", uint64(st.Arrivals))
			res.Snapshot.Count("departures", uint64(st.Departures))
		}
		res.Snapshot.Set("clients-done", float64(res.Done))
		res.Snapshot.Set("done-fraction", float64(res.Done)/float64(res.Total))
		res.Snapshot.Set("last-completion-s", last)
	}
	return nil
}

func (r *runner) startDHT() error {
	w := r.spec.Workload
	nodes := make([]*chord.Node, len(r.hosts))
	for i, h := range r.hosts {
		nodes[i] = chord.NewNode(h, chord.DefaultConfig())
	}
	nodes[0].Create()
	for i := 1; i < len(nodes); i++ {
		i := i
		r.k.After(time.Duration(i)*500*time.Millisecond, func() { nodes[i].Join(nodes[0].Ref().Addr) })
	}
	warm := time.Duration(len(nodes))*500*time.Millisecond + 60*time.Second

	var avgHops float64
	var avgLat time.Duration
	var done int
	r.k.Go("scenario-measure", func(p *sim.Proc) {
		p.Sleep(warm)
		totalHops := 0
		var totalLat time.Duration
		for i := 0; i < w.Lookups; i++ {
			res, err := nodes[i%len(nodes)].Lookup(p, fmt.Sprintf("key-%d", i))
			if err != nil {
				continue
			}
			done++
			totalHops += res.Hops
			totalLat += res.Latency
		}
		if done > 0 {
			avgHops = float64(totalHops) / float64(done)
			avgLat = totalLat / time.Duration(done)
		}
		r.k.Stop()
	})

	r.finish = func(res *Result) {
		res.AvgHops = avgHops
		res.AvgLatency = avgLat
		res.Done, res.Total = done, w.Lookups
		var timeouts uint64
		for _, nd := range nodes {
			timeouts += nd.Stats.Timeouts
		}
		res.Snapshot.Set("avg-hops", avgHops)
		res.Snapshot.Set("avg-latency-ms", avgLat.Seconds()*1000)
		res.Snapshot.Set("lookups-done", float64(done))
		res.Snapshot.Count("timeouts", timeouts)
	}
	return nil
}

func (r *runner) startGossip() error {
	w := r.spec.Workload
	cfg := gossip.DefaultConfig()
	cfg.Fanout = w.Fanout
	nodes := make([]*gossip.Node, len(r.hosts))
	eps := make([]ip.Endpoint, len(r.hosts))
	for i, h := range r.hosts {
		nodes[i] = gossip.NewNode(h, cfg)
		eps[i] = ip.Endpoint{Addr: h.Addr(), Port: gossip.Port}
	}
	for _, nd := range nodes {
		nd.SetPeers(eps)
		nd.Start()
	}

	var coveredFinal int
	var coverage float64
	var t100 time.Duration
	var pushes uint64
	r.k.Go("scenario-driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		start := p.Now()
		const updateID = 1
		nodes[0].Publish(p, gossip.Update{ID: updateID})
		window := 5 * time.Minute
		if h := r.spec.Horizon.D(); h < window {
			window = h
		}
		deadline := start.Add(window)
		n := len(nodes)
		for p.Now() < deadline {
			p.Sleep(250 * time.Millisecond)
			covered := 0
			for _, nd := range nodes {
				if nd.Knows(updateID) {
					covered++
				}
			}
			if covered == n {
				t100 = p.Now().Sub(start)
				break
			}
		}
		covered := 0
		for _, nd := range nodes {
			if nd.Knows(updateID) {
				covered++
			}
			pushes += nd.Stats.Pushes
		}
		coveredFinal = covered
		coverage = float64(covered) / float64(n)
		r.k.Stop()
	})

	r.finish = func(res *Result) {
		res.Coverage = coverage
		res.T100 = t100
		res.Done = coveredFinal
		res.Total = len(nodes)
		res.Snapshot.Set("coverage", coverage)
		res.Snapshot.Set("t100-s", t100.Seconds())
		res.Snapshot.Count("pushes", pushes)
	}
	return nil
}
