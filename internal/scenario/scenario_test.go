package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestCorpusValidates: every committed scenario must default and
// validate cleanly, names must be unique, and the corpus must hold at
// least the 8 scenarios the catalogue promises.
func TestCorpusValidates(t *testing.T) {
	if len(corpus) < 8 {
		t.Fatalf("corpus has %d scenarios, want >= 8", len(corpus))
	}
	seen := map[string]bool{}
	for _, sp := range corpus {
		if seen[sp.Name] {
			t.Errorf("duplicate scenario name %q", sp.Name)
		}
		seen[sp.Name] = true
		if err := sp.WithDefaults().Validate(); err != nil {
			t.Errorf("scenario %s: %v", sp.Name, err)
		}
	}
	for _, name := range Names() {
		if _, ok := ByName(name); !ok {
			t.Errorf("Names lists %q but ByName misses it", name)
		}
	}
}

// TestJSONRoundTrip: a spec marshalled to JSON loads back identical,
// including duration strings.
func TestJSONRoundTrip(t *testing.T) {
	for _, sp := range Corpus() {
		data, err := json.MarshalIndent(sp, "", "  ")
		if err != nil {
			t.Fatalf("%s: marshal: %v", sp.Name, err)
		}
		back, err := Load(data)
		if err != nil {
			t.Fatalf("%s: load: %v\n%s", sp.Name, err, data)
		}
		if !reflect.DeepEqual(&sp, back) {
			t.Errorf("%s: round trip diverged:\nhave %+v\nwant %+v", sp.Name, back, sp)
		}
	}
}

// TestDurationJSON covers both accepted encodings and the error path.
func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90s"`), &d); err != nil || d.D() != 90*time.Second {
		t.Errorf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1500000000`), &d); err != nil || d.D() != 1500*time.Millisecond {
		t.Errorf("number form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &d); err == nil {
		t.Errorf("bad duration accepted")
	}
	if err := json.Unmarshal([]byte(`{}`), &d); err == nil {
		t.Errorf("object accepted as duration")
	}
}

// TestValidationRejects drives the validator over representative
// malformed specs.
func TestValidationRejects(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:     "t",
			Groups:   []GroupSpec{{Name: "g", Class: "dsl", Nodes: 4}},
			Workload: WorkloadSpec{Kind: WorkloadGossip},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"no groups", func(s *Spec) { s.Groups = nil }, "no groups"},
		{"bad class", func(s *Spec) { s.Groups[0].Class = "isdn" }, "unknown class"},
		{"zero nodes", func(s *Spec) { s.Groups[0].Nodes = 0 }, "nodes outside"},
		{"huge nodes", func(s *Spec) { s.Groups[0].Nodes = 1 << 20 }, "nodes outside"},
		{"bad prefix", func(s *Spec) { s.Groups[0].Prefix = "nope" }, "prefix"},
		{"dup group", func(s *Spec) { s.Groups = append(s.Groups, s.Groups[0]) }, "duplicate group"},
		{"bad model", func(s *Spec) { s.Model = "quantum" }, "unknown link model"},
		{"bad workload", func(s *Spec) { s.Workload.Kind = "mapreduce" }, "unknown workload"},
		{"no workload", func(s *Spec) { s.Workload.Kind = "" }, "missing workload"},
		{"bad latency group", func(s *Spec) { s.Latencies = []LatencySpec{{A: "g", B: "x"}} }, "unknown groups"},
		{"bad action", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: "reboot", Groups: []string{"g"}}}
		}, "unknown action"},
		{"negative at", func(s *Spec) {
			s.Timeline = []EventSpec{{At: Duration(-time.Second), Action: ActionLinkDown, Groups: []string{"g"}}}
		}, "negative instant"},
		{"partition unknown group", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionPartition, A: []string{"g"}, B: []string{"x"}}}
		}, "unknown group"},
		{"partition overlap", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionPartition, A: []string{"g"}, B: []string{"g"}}}
		}, "both sides"},
		{"loss without duration", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionLoss, Groups: []string{"g"}, Loss: 0.5}}
		}, "positive duration"},
		{"loss out of range", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionLoss, Groups: []string{"g"}, Loss: 1.5, For: Duration(time.Second)}}
		}, "outside [0,1]"},
		{"set-class unknown class", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionSetClass, Groups: []string{"g"}, Class: "isdn"}}
		}, "unknown class"},
		{"for on set-class", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionSetClass, Groups: []string{"g"}, Class: "dsl", For: Duration(time.Second)}}
		}, "does not support a duration"},
		{"for on heal", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionHeal, A: []string{"g"}, B: []string{"g"}, For: Duration(time.Second)}}
		}, "does not support a duration"},
		{"path separator in name", func(s *Spec) { s.Name = "a/b" }, "only letters"},
		{"traversal in name", func(s *Spec) { s.Name = "../x" }, "only letters"},
		{"bad classifier", func(s *Spec) { s.Classifier = "hash" }, "unknown classifier"},
		{"add-rule bad body", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionAddRule, Rule: "fwd"}}
		}, "unknown rule body"},
		{"add-rule bad side", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionAddRule, Rule: "count", Src: "nowhere"}}
		}, "neither a group nor a prefix"},
		{"add-rule too many copies", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionAddRule, Rule: "count", Copies: maxRuleCopies + 1}}
		}, "copies outside"},
		{"add-rule with for", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionAddRule, Rule: "count", For: Duration(time.Second)}}
		}, "does not support a duration"},
		{"del-rule without id", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionDelRule}}
		}, "positive rule id"},
		{"deny-prefix unknown group", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionDenyPfx, Groups: []string{"x"}}}
		}, "unknown group"},
		{"rule fields on non-rule action", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionDenyPfx, Groups: []string{"g"}, Rule: "deny"}}
		}, "does not use the add-rule fields"},
		{"rule id on non-rule action", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionLinkDown, Groups: []string{"g"}, ID: 100}}
		}, "does not use a rule id"},
		{"permanent deny-prefix without id", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionDenyPfx, Groups: []string{"g"}}}
		}, "needs a pinned id"},
		{"groups on add-rule", func(s *Spec) {
			s.Timeline = []EventSpec{{Action: ActionAddRule, Rule: "deny", Groups: []string{"g"}}}
		}, "does not use groups"},
		{"negative flow window", func(s *Spec) {
			s.Model = "flow"
			s.FlowWindow = Duration(-time.Second)
		}, "negative flow window"},
		{"flow window without flow model", func(s *Spec) {
			s.FlowWindow = Duration(50 * time.Millisecond)
		}, "needs the flow model"},
		{"snapshot knob on gossip", func(s *Spec) {
			s.Workload.WebSeeds = 1
		}, "need the snapshot workload"},
		{"rate cap on gossip", func(s *Spec) {
			s.Workload.DownRate = 1 << 20
		}, "need the snapshot workload"},
	}
	for _, tc := range cases {
		sp := base()
		tc.mut(sp)
		err := sp.WithDefaults().Validate()
		if err == nil {
			t.Errorf("%s: validated unexpectedly", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// And the valid combination: a positive window under the flow model.
	sp := base()
	sp.Model = "flow"
	sp.FlowWindow = Duration(50 * time.Millisecond)
	if err := sp.WithDefaults().Validate(); err != nil {
		t.Errorf("flow_window with flow model rejected: %v", err)
	}
}

// TestSnapshotValidation: the snapshot-only knobs are range-checked,
// the seederless cold fill needs a web seed, and the restart timeline
// fields compose sensibly.
func TestSnapshotValidation(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:     "t",
			Groups:   []GroupSpec{{Name: "g", Class: "fast-dsl", Nodes: 5}},
			Workload: WorkloadSpec{Kind: WorkloadSnapshot},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"too many web seeds", func(s *Spec) { s.Workload.WebSeeds = maxWebSeeds + 1 }, "web seeds outside"},
		{"negative up rate", func(s *Spec) { s.Workload.UpRate = -1 }, "negative rate cap"},
		{"negative down rate", func(s *Spec) { s.Workload.DownRate = -1 }, "negative rate cap"},
		{"negative restart at", func(s *Spec) {
			s.Workload.SeedRestartAt = Duration(-time.Second)
		}, "negative seed restart"},
		{"restart without seeder", func(s *Spec) {
			s.Workload.WebSeeds = 1 // keeps WithDefaults from minting a seeder
			s.Workload.SeedRestartAt = Duration(time.Second)
		}, "needs at least one seeder"},
		{"restart down without at", func(s *Spec) {
			s.Workload.SeedRestartDown = Duration(time.Second)
		}, "seed_restart_down without seed_restart_at"},
	}
	for _, tc := range cases {
		sp := base()
		tc.mut(sp)
		err := sp.WithDefaults().Validate()
		if err == nil {
			t.Errorf("%s: validated unexpectedly", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Valid combinations: the seederless cold fill (web seed carries
	// the swarm) and a rate-capped restart run.
	cold := base()
	cold.Workload.WebSeeds = 1
	if err := cold.WithDefaults().Validate(); err != nil {
		t.Errorf("seederless cold fill rejected: %v", err)
	}
	restart := base()
	restart.Workload.UpRate = 64 * 1024
	restart.Workload.SeedRestartAt = Duration(30 * time.Second)
	if err := restart.WithDefaults().Validate(); err != nil {
		t.Errorf("capped restart run rejected: %v", err)
	}
	if d := restart.WithDefaults().Workload.SeedRestartDown; d <= 0 {
		t.Errorf("seed_restart_down not defaulted alongside seed_restart_at: %v", d)
	}
}

// TestSwarmSeederValidation: seeders must fit in the seeder group and
// leave at least one client.
func TestSwarmSeederValidation(t *testing.T) {
	sp := &Spec{
		Name:   "t",
		Groups: []GroupSpec{{Name: "g", Class: "dsl", Nodes: 3}},
		Workload: WorkloadSpec{
			Kind: WorkloadSwarm, Seeders: 4,
		},
	}
	if err := sp.WithDefaults().Validate(); err == nil || !strings.Contains(err.Error(), "seeders outside") {
		t.Errorf("oversized seeders: %v", err)
	}
	sp.Workload.Seeders = 3
	if err := sp.WithDefaults().Validate(); err == nil || !strings.Contains(err.Error(), "no clients") {
		t.Errorf("all-seeder swarm: %v", err)
	}
	sp.Workload.SeederGroup = "nope"
	if err := sp.WithDefaults().Validate(); err == nil || !strings.Contains(err.Error(), "unknown seeder group") {
		t.Errorf("bad seeder group: %v", err)
	}
}

// testSwarmSpec is a small fast swarm scenario used by behavior tests.
func testSwarmSpec() *Spec {
	return &Spec{
		Name:    "test-swarm",
		Horizon: Duration(30 * time.Minute),
		Groups: []GroupSpec{
			{Name: "left", Class: "dsl", Nodes: 5},
			{Name: "right", Class: "dsl", Nodes: 4},
		},
		Workload: WorkloadSpec{
			Kind:        WorkloadSwarm,
			FileSize:    512 << 10,
			Seeders:     1,
			SeederGroup: "left",
		},
	}
}

// TestPartitionChangesCompletion: the same swarm with a mid-download
// partition between the seeder side and the other side must finish
// measurably later (or less completely) than without it — the
// examples/partition walkthrough as an assertion.
func TestPartitionChangesCompletion(t *testing.T) {
	baseline, err := Run(testSwarmSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Done != baseline.Total {
		t.Fatalf("baseline swarm incomplete: %d/%d", baseline.Done, baseline.Total)
	}

	parted := testSwarmSpec()
	parted.Timeline = []EventSpec{{
		At: Duration(10 * time.Second), Action: ActionPartition,
		A: []string{"left"}, B: []string{"right"}, For: Duration(120 * time.Second),
	}}
	cut, err := Run(parted, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lastOf := func(r *Result) float64 {
		var out float64
		for _, c := range r.Completions {
			if c > 0 && c.Seconds() > out {
				out = c.Seconds()
			}
		}
		return out
	}
	if cut.Done == cut.Total && lastOf(cut) <= lastOf(baseline) {
		t.Errorf("partition did not slow the swarm: baseline last=%.1fs, partitioned last=%.1fs",
			lastOf(baseline), lastOf(cut))
	}
	t.Logf("baseline %d/%d last=%.1fs; partitioned %d/%d last=%.1fs",
		baseline.Done, baseline.Total, lastOf(baseline), cut.Done, cut.Total, lastOf(cut))
}

// TestTimelineFires: timeline actions must appear on the trace (the
// scenario layer's own events plus the network-layer partition record).
func TestTimelineFires(t *testing.T) {
	sp := testSwarmSpec()
	sp.Timeline = []EventSpec{
		{At: Duration(5 * time.Second), Action: ActionPartition,
			A: []string{"left"}, B: []string{"right"}, For: Duration(20 * time.Second)},
		{At: Duration(6 * time.Second), Action: ActionSetClass, Groups: []string{"right"}, Class: "modem"},
		{At: Duration(7 * time.Second), Action: ActionLoss, Groups: []string{"right"}, Loss: 0.3, For: Duration(5 * time.Second)},
		{At: Duration(8 * time.Second), Action: ActionLinkDown, Groups: []string{"right"}, For: Duration(4 * time.Second)},
	}
	lg := trace.New(0)
	if _, err := Run(sp, Options{Trace: lg}); err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{"scenario.event", "net.partition", "net.reconf", "net.link"} {
		if lg.Count(cat) == 0 {
			t.Errorf("no %q events on the trace", cat)
		}
	}
	// Partition + auto-heal, loss burst + restore, link down + up, one
	// set-class: 7 scenario.event records.
	if got := lg.Count("scenario.event"); got != 7 {
		t.Errorf("scenario.event count = %d, want 7", got)
	}
}

// TestFirewallTimeline: rule events install a firewall (classifier
// label + fw counters on the snapshot), deny-prefix actually denies
// traffic, and a deny-prefix with a duration behaves like the same
// partition: the swarm finishes later than the unfirewalled baseline.
func TestFirewallTimeline(t *testing.T) {
	baseline, err := Run(testSwarmSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := baseline.Snapshot.Labels["classifier"]; ok {
		t.Fatal("baseline run grew a firewall")
	}

	fw := testSwarmSpec()
	fw.Timeline = []EventSpec{
		{At: Duration(2 * time.Second), Action: ActionAddRule,
			Rule: "count", Src: "172.16.9.0/24", ID: 9000, Copies: 50},
		{At: Duration(10 * time.Second), Action: ActionDenyPfx,
			Groups: []string{"right"}, For: Duration(120 * time.Second)},
		{At: Duration(200 * time.Second), Action: ActionDelRule, ID: 9000},
	}
	lg := trace.New(0)
	cut, err := Run(fw, Options{Trace: lg})
	if err != nil {
		t.Fatal(err)
	}
	if got := cut.Snapshot.Labels["classifier"]; got != "linear" {
		t.Fatalf("classifier label = %q, want linear", got)
	}
	if cut.Snapshot.Counters["net-rule-denied"] == 0 {
		t.Error("no attempts denied by the firewall")
	}
	if lg.Count("net.deny") == 0 {
		t.Error("no net.deny events on the trace")
	}
	// add-rule + deny-prefix + lift + del-rule = 4 scenario.event records.
	if got := lg.Count("scenario.event"); got != 4 {
		t.Errorf("scenario.event count = %d, want 4", got)
	}
	lastOf := func(r *Result) float64 {
		var last float64
		for _, c := range r.Completions {
			if c > 0 && c.Seconds() > last {
				last = c.Seconds()
			}
		}
		return last
	}
	if cut.Done == cut.Total && lastOf(cut) <= lastOf(baseline) {
		t.Errorf("deny-prefix did not slow the swarm: baseline %gs, firewalled %gs",
			lastOf(baseline), lastOf(cut))
	}
}

// TestOverlappingEvents: a shorter duplicate partition must not heal
// the longer one it overlaps, and an overlapping loss burst keeps its
// own loss rate until its own expiry — reverts are pinned to the event
// instance that armed them.
func TestOverlappingEvents(t *testing.T) {
	sp := testSwarmSpec() // swarm outlasts the whole timeline below
	sp.Name = "overlap"
	sp.Timeline = []EventSpec{
		{At: Duration(5 * time.Second), Action: ActionPartition,
			A: []string{"left"}, B: []string{"right"}, For: Duration(60 * time.Second)},
		// Identical partition, shorter: its revert must not heal the
		// one above at 30 s.
		{At: Duration(10 * time.Second), Action: ActionPartition,
			A: []string{"left"}, B: []string{"right"}, For: Duration(20 * time.Second)},
		// Overlapping loss bursts: the first's expiry at 42 s must not
		// end the second, which owns the links until 52 s.
		{At: Duration(40 * time.Second), Action: ActionLoss, Groups: []string{"right"},
			Loss: 0.3, For: Duration(2 * time.Second)},
		{At: Duration(41 * time.Second), Action: ActionLoss, Groups: []string{"right"},
			Loss: 0.6, For: Duration(11 * time.Second)},
	}
	lg := trace.New(0)
	if _, err := Run(sp, Options{Trace: lg}); err != nil {
		t.Fatal(err)
	}
	var heals, burstEnds []sim.Time
	for _, e := range lg.Filter("scenario.event") {
		if strings.HasPrefix(e.Msg, "heal") {
			heals = append(heals, e.At)
		}
		if strings.HasPrefix(e.Msg, "loss burst over") {
			burstEnds = append(burstEnds, e.At)
		}
	}
	if len(heals) != 1 || heals[0] != sim.Time(0).Add(65*time.Second) {
		t.Errorf("heals at %v, want exactly one at 65s", heals)
	}
	if len(burstEnds) != 1 || burstEnds[0] != sim.Time(0).Add(52*time.Second) {
		t.Errorf("loss bursts end at %v, want exactly one at 52s", burstEnds)
	}
}

// TestSeedOverride: Options.Seed replaces the spec seed and changes
// the run (different RNG draws), while the spec value is untouched.
func TestSeedOverride(t *testing.T) {
	sp := testSwarmSpec()
	a, err := Run(sp, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 0 {
		t.Errorf("caller spec mutated: seed %d", sp.Seed)
	}
	if got := a.Spec.Seed; got != 7 {
		t.Errorf("result seed %d, want 7", got)
	}
	if a.Snapshot.Labels["seed"] != "7" {
		t.Errorf("snapshot seed label %q", a.Snapshot.Labels["seed"])
	}
}
