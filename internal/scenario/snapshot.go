package scenario

import (
	"fmt"

	"repro/internal/bt"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// startSnapshot launches the snapshot workload: a handful of clients
// pulling one large file in big pieces over few connections, optionally
// rate-capped and backed by web seeds — the regime of a blockchain
// snapshot downloader rather than the paper's many-small-peers swarms.
// Web seeds live in admin space (192.168.0.2+) on LAN links next to the
// tracker: the CDN side of the path is fat, so the bottleneck stays the
// clients' access links and their token-bucket caps.
func (r *runner) startSnapshot() error {
	if err := r.addTracker(); err != nil {
		return err
	}
	w := r.spec.Workload
	horizon := r.spec.Horizon.D()

	wsBase := ip.MustParseAddr("192.168.0.2")
	var wsHosts []*vnet.Host
	var wsEndpoints []ip.Endpoint
	for i := 0; i < w.WebSeeds; i++ {
		h, err := r.net.AddHostClass(wsBase.Add(uint32(i)), topo.LAN)
		if err != nil {
			return fmt.Errorf("scenario %s: web seed: %w", r.spec.Name, err)
		}
		wsHosts = append(wsHosts, h)
		wsEndpoints = append(wsEndpoints, ip.Endpoint{Addr: h.Addr(), Port: bt.WebSeedPort})
	}

	seedHosts := r.groups[w.SeederGroup][:w.Seeders]
	isSeed := make(map[*vnet.Host]bool, len(seedHosts))
	for _, h := range seedHosts {
		isSeed[h] = true
	}
	var clients []*vnet.Host
	for _, h := range r.hosts {
		h.SetBindEnv(h.Addr())
		if !isSeed[h] {
			clients = append(clients, h)
		}
	}

	cfg := bt.DefaultClientConfig()
	cfg.MaxPeers = w.ConnCap
	cfg.MaxInitiate = w.ConnCap
	cfg.MinPeers = w.ConnCap
	cfg.PipelineDepth = 0 // auto-scale to blocks-per-piece
	cfg.UploadRate = w.UpRate
	cfg.DownloadRate = w.DownRate
	cfg.WebSeeds = wsEndpoints

	bspec := bt.DefaultSwarmSpec()
	bspec.FileName = "snapshot"
	bspec.FileSize = w.FileSize
	bspec.PieceLength = w.PieceLength
	bspec.Sparse = true
	bspec.Client = cfg

	// A restart scenario peels the first seeder off the swarm's static
	// seeder set and runs it through the resuming-client lifecycle
	// instead: offline at seed_restart_at, back (same storage) after
	// seed_restart_down.
	restart := w.SeedRestartAt > 0
	buildSeeds := seedHosts
	if restart {
		buildSeeds = seedHosts[1:]
	}
	swarm, err := bt.BuildSwarm(bspec, r.tracker, buildSeeds, clients)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", r.spec.Name, err)
	}
	webseeds := make([]*bt.WebSeed, len(wsHosts))
	for i, h := range wsHosts {
		webseeds[i] = bt.NewWebSeed(h, swarm.Meta, bt.NewSeededSparseStorage(swarm.Meta))
	}
	trackerEP := ip.Endpoint{Addr: r.tracker.Addr(), Port: bt.TrackerPort}

	swarm.Start(w.StartInterval.D())
	if restart {
		rc := bt.NewResumingClient(seedHosts[0], swarm.Meta,
			bt.NewSeededSparseStorage(swarm.Meta), trackerEP, cfg)
		r.k.Go("snapshot-restart-seed", func(p *sim.Proc) {
			rc.Online(p)
			p.Sleep(w.SeedRestartAt.D())
			r.event("seed offline (restart)")
			rc.Offline(p)
			p.Sleep(w.SeedRestartDown.D())
			r.event("seed back online")
			rc.Online(p)
		})
	}

	r.k.Go("scenario-waiter", func(p *sim.Proc) {
		swarm.WaitAll(p, horizon)
		r.k.Stop()
	})

	r.finish = func(res *Result) {
		res.Completions = swarm.CompletionTimes()
		res.Total = len(clients)
		var last float64
		for _, t := range res.Completions {
			if t > 0 {
				res.Done++
				if t.Seconds() > last {
					last = t.Seconds()
				}
			}
		}
		var wsBytes uint64
		for _, ws := range webseeds {
			wsBytes += ws.Stats().BytesServed
		}
		res.Snapshot.Set("clients-done", float64(res.Done))
		res.Snapshot.Set("done-fraction", float64(res.Done)/float64(res.Total))
		res.Snapshot.Set("last-completion-s", last)
		res.Snapshot.Count("webseed-bytes", wsBytes)
	}
	return nil
}
