// Package scenario is the declarative experiment layer: a Spec
// composes a topology (node groups with access-link classes and
// inter-group latencies), a link model (pipe or flow), a workload
// (swarm, churn-swarm, snapshot, DHT, gossip) and a timeline of
// scheduled
// network events — partitions and heals between node groups, runtime
// link-class changes (degrade/restore), loss bursts and interface
// flaps. Specs are plain Go values, JSON-loadable, and runnable by
// name from the committed corpus (see corpus.go, `p2plab run`).
//
// This is the layer the paper's testbed reaches with hand-edited
// Dummynet configurations reloaded at run time; here the timeline is
// part of the experiment description itself, so a dynamic-network
// study is as reproducible as a static one.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/topo"
)

// Duration is a time.Duration that marshals to and from JSON as a
// human-readable string ("30s", "1h30m"); plain JSON numbers are
// accepted as nanoseconds.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String formats like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"30s\" or nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// GroupSpec declares one node group: a named set of nodes sharing an
// access-link class, addressable as a unit by timeline events.
type GroupSpec struct {
	Name  string `json:"name"`
	Class string `json:"class"` // one of topo.Classes (dsl, modem, ...)
	Nodes int    `json:"nodes"`
	// Prefix optionally pins the group's address block; empty assigns
	// 10.<index+1>.0.0/16 automatically.
	Prefix string `json:"prefix,omitempty"`
}

// LatencySpec declares the one-way latency between two groups.
type LatencySpec struct {
	A      string   `json:"a"`
	B      string   `json:"b"`
	OneWay Duration `json:"one_way"`
}

// Workload kinds.
const (
	WorkloadSwarm      = "swarm"
	WorkloadChurnSwarm = "churn-swarm"
	WorkloadSnapshot   = "snapshot"
	WorkloadDHT        = "dht"
	WorkloadGossip     = "gossip"
)

// maxWebSeeds caps a snapshot workload's web-seed fleet; web seeds are
// admin-space CDN hosts, not swarm members, and a handful saturates any
// corpus-sized scenario.
const maxWebSeeds = 16

// WorkloadSpec selects and tunes the application driven over the
// scenario's network. Zero-valued knobs take workload defaults.
type WorkloadSpec struct {
	Kind string `json:"kind"` // swarm | churn-swarm | snapshot | dht | gossip

	// Swarm family (swarm, churn-swarm, snapshot).
	FileSize      int64    `json:"file_size,omitempty"`      // bytes, default 1 MiB (8 MiB for snapshot)
	Seeders       int      `json:"seeders,omitempty"`        // default 1 (snapshot allows 0 with web seeds)
	SeederGroup   string   `json:"seeder_group,omitempty"`   // default: first group
	StartInterval Duration `json:"start_interval,omitempty"` // default 1s

	// Churn-swarm only.
	ChurnFraction float64  `json:"churn_fraction,omitempty"` // default 0.5
	Session       Duration `json:"session,omitempty"`        // mean up-time, default 120s
	Downtime      Duration `json:"downtime,omitempty"`       // mean down-time, default 60s

	// Snapshot only: the few-peers / huge-file / rate-capped regime.
	PieceLength int   `json:"piece_length,omitempty"` // bytes, default 2 MiB
	ConnCap     int   `json:"conn_cap,omitempty"`     // per-client peer budget, default 5
	UpRate      int64 `json:"up_rate,omitempty"`      // bytes/s token-bucket cap, 0 unlimited
	DownRate    int64 `json:"down_rate,omitempty"`    // bytes/s token-bucket cap, 0 unlimited
	WebSeeds    int   `json:"web_seeds,omitempty"`    // admin-space block servers, default 0
	// SeedRestartAt takes the first seeder offline mid-transfer; it
	// resumes (same storage) SeedRestartDown later (default 30s).
	SeedRestartAt   Duration `json:"seed_restart_at,omitempty"`
	SeedRestartDown Duration `json:"seed_restart_down,omitempty"`

	// DHT only.
	Lookups int `json:"lookups,omitempty"` // default 50

	// Gossip only.
	Fanout int `json:"fanout,omitempty"` // default 3
}

// Timeline actions.
const (
	ActionPartition = "partition"   // split A-side groups from B-side groups
	ActionHeal      = "heal"        // remove the partition between A and B
	ActionSetClass  = "set-class"   // re-rate Groups' access links to Class
	ActionLoss      = "loss"        // loss burst on Groups' links for For
	ActionLinkDown  = "link-down"   // take Groups' interfaces down
	ActionLinkUp    = "link-up"     // bring Groups' interfaces back up
	ActionAddRule   = "add-rule"    // install firewall rule(s) (Src/Dst/Rule/ID/Copies)
	ActionDelRule   = "del-rule"    // remove every firewall rule with ID
	ActionDenyPfx   = "deny-prefix" // firewall Groups off (deny to and from), For auto-reverts
)

// actions lists the known timeline actions.
var actions = []string{ActionPartition, ActionHeal, ActionSetClass, ActionLoss,
	ActionLinkDown, ActionLinkUp, ActionAddRule, ActionDelRule, ActionDenyPfx}

// ruleActions lists the rule bodies an add-rule event may install.
var ruleActions = []string{"count", "deny", "allow"}

// maxRuleCopies caps one add-rule event's filler batch.
const maxRuleCopies = 100000

// EventSpec is one scheduled network event on the scenario timeline.
type EventSpec struct {
	At     Duration `json:"at"`
	Action string   `json:"action"`

	// Partition / heal: the two sides, as group names. A heal removes
	// the partition with the same (unordered) sides.
	A []string `json:"a,omitempty"`
	B []string `json:"b,omitempty"`

	// Set-class / loss / link-down / link-up targets.
	Groups []string `json:"groups,omitempty"`

	// Set-class: the new access-link class.
	Class string `json:"class,omitempty"`

	// Loss: the burst drop probability in [0,1].
	Loss float64 `json:"loss,omitempty"`

	// Add-rule: the rule's match sides — each a CIDR prefix or a group
	// name (resolved to the group's prefix); empty matches everything —
	// and its body ("count", "deny" or "allow").
	Src  string `json:"src,omitempty"`
	Dst  string `json:"dst,omitempty"`
	Rule string `json:"rule,omitempty"`

	// Add-rule / del-rule / deny-prefix: the IPFW rule number. 0 on
	// add-rule and deny-prefix auto-assigns the next free number;
	// del-rule requires it and removes every rule carrying it. A
	// permanent deny-prefix (no `for`) must pin an ID to be liftable
	// by a later del-rule — auto-assigned numbers are not knowable to
	// the spec author.
	ID int `json:"id,omitempty"`

	// Add-rule: install this many copies of the rule (a filler batch
	// for table-size studies, Fig 6). 0 means 1.
	Copies int `json:"copies,omitempty"`

	// For auto-reverts the event after this duration: a partition
	// heals, a loss burst restores the class loss rate, a downed link
	// comes back up, a deny-prefix lifts. Zero means permanent (until
	// a matching heal / link-up / set-class / del-rule event).
	// Required for loss.
	For Duration `json:"for,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Model       string   `json:"model,omitempty"` // pipe (default) | flow
	Seed        int64    `json:"seed,omitempty"`
	Horizon     Duration `json:"horizon,omitempty"` // default 1h virtual
	// FlowWindow batches the flow model's re-rate solves: churn events
	// within one window of virtual time drain in a single deterministic
	// solve per affected component (vnet.Config.FlowWindow). 0 keeps
	// the per-event solves the golden traces pin. Only valid with the
	// flow model — the pipe model has no solver to batch.
	FlowWindow Duration `json:"flow_window,omitempty"`
	// Classifier selects the firewall's classification algorithm
	// ("linear" or "indexed"). Setting it — or scheduling any rule
	// event on the timeline — gives the network a firewall table;
	// otherwise the run has none (vnet.Config.Rules == nil) and its
	// trace is byte-identical to pre-firewall builds.
	Classifier string        `json:"classifier,omitempty"`
	Groups     []GroupSpec   `json:"groups"`
	Latencies  []LatencySpec `json:"latencies,omitempty"`
	Workload   WorkloadSpec  `json:"workload"`
	Timeline   []EventSpec   `json:"timeline,omitempty"`
}

// FirewallEnabled reports whether the run carries a firewall table: an
// explicit classifier or any rule event on the timeline enables it.
func (s *Spec) FirewallEnabled() bool {
	if s.Classifier != "" {
		return true
	}
	for _, ev := range s.Timeline {
		switch ev.Action {
		case ActionAddRule, ActionDelRule, ActionDenyPfx:
			return true
		}
	}
	return false
}

// Sanity bounds: scenarios describe emulation corpora, not arbitrary
// deployments; the caps keep a malformed (or fuzzed) spec from
// requesting an absurd build.
const (
	maxGroups        = 64
	maxNodesPerGroup = 8192
	maxTimeline      = 1024
)

// Load parses a JSON scenario spec. It never panics on malformed
// input; the returned spec is parsed but not yet validated.
func Load(data []byte) (*Spec, error) {
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &sp, nil
}

// WithDefaults returns a copy with every zero-valued knob replaced by
// its documented default.
func (s *Spec) WithDefaults() *Spec {
	out := *s
	if out.Model == "" {
		out.Model = "pipe"
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Horizon <= 0 {
		out.Horizon = Duration(time.Hour)
	}
	w := &out.Workload
	switch w.Kind {
	case WorkloadSwarm, WorkloadChurnSwarm, WorkloadSnapshot:
		if w.FileSize <= 0 {
			w.FileSize = 1 << 20
			if w.Kind == WorkloadSnapshot {
				w.FileSize = 8 << 20 // a scaled-down huge-file pull
			}
		}
		// A snapshot workload with web seeds may legitimately run
		// seederless (the cold-CDN-fill case); everything else needs a
		// seeder.
		if w.Seeders <= 0 && (w.Kind != WorkloadSnapshot || w.WebSeeds <= 0) {
			w.Seeders = 1
		}
		if w.SeederGroup == "" && len(out.Groups) > 0 {
			w.SeederGroup = out.Groups[0].Name
		}
		if w.StartInterval <= 0 {
			w.StartInterval = Duration(time.Second)
		}
		if w.Kind == WorkloadChurnSwarm {
			if w.ChurnFraction == 0 {
				w.ChurnFraction = 0.5
			}
			if w.Session <= 0 {
				w.Session = Duration(120 * time.Second)
			}
			if w.Downtime <= 0 {
				w.Downtime = Duration(60 * time.Second)
			}
		}
		if w.Kind == WorkloadSnapshot {
			if w.PieceLength <= 0 {
				w.PieceLength = 2 << 20
			}
			if w.ConnCap <= 0 {
				w.ConnCap = 5
			}
			if w.SeedRestartAt > 0 && w.SeedRestartDown <= 0 {
				w.SeedRestartDown = Duration(30 * time.Second)
			}
		}
	case WorkloadDHT:
		if w.Lookups <= 0 {
			w.Lookups = 50
		}
	case WorkloadGossip:
		if w.Fanout <= 0 {
			w.Fanout = 3
		}
	}
	return &out
}

// Validate checks the spec for structural errors: unknown classes,
// groups or actions, out-of-range knobs, malformed prefixes. It is
// meant to be called on a defaulted spec (WithDefaults) and reports
// the first problem found.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	for _, r := range s.Name {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			// Names become identifiers and file names (the result CSV);
			// path separators and shell metacharacters stay out.
			return fmt.Errorf("scenario name %q: only letters, digits, '.', '_' and '-' allowed", s.Name)
		}
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("scenario %s: no groups", s.Name)
	}
	if len(s.Groups) > maxGroups {
		return fmt.Errorf("scenario %s: %d groups (max %d)", s.Name, len(s.Groups), maxGroups)
	}
	if _, err := netem.ParseModel(s.Model); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.Classifier != "" {
		if _, err := netem.ParseClassifier(s.Classifier); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("scenario %s: horizon %v not positive", s.Name, s.Horizon)
	}
	if s.FlowWindow < 0 {
		return fmt.Errorf("scenario %s: negative flow window %v", s.Name, s.FlowWindow)
	}
	if s.FlowWindow > 0 && s.Model != "flow" {
		// Silently ignoring the knob would run a different scenario
		// than the author wrote — same policy as the other gated knobs.
		return fmt.Errorf("scenario %s: flow_window needs the flow model (got %q)", s.Name, s.Model)
	}
	groups := make(map[string]bool, len(s.Groups))
	total := 0
	for _, g := range s.Groups {
		if g.Name == "" {
			return fmt.Errorf("scenario %s: group with empty name", s.Name)
		}
		if groups[g.Name] {
			return fmt.Errorf("scenario %s: duplicate group %q", s.Name, g.Name)
		}
		groups[g.Name] = true
		if _, ok := topo.ClassByName(g.Class); !ok {
			return fmt.Errorf("scenario %s: group %q: unknown class %q", s.Name, g.Name, g.Class)
		}
		if g.Nodes < 1 || g.Nodes > maxNodesPerGroup {
			return fmt.Errorf("scenario %s: group %q: %d nodes outside [1,%d]", s.Name, g.Name, g.Nodes, maxNodesPerGroup)
		}
		if g.Prefix != "" {
			if _, err := ip.ParsePrefix(g.Prefix); err != nil {
				return fmt.Errorf("scenario %s: group %q: bad prefix %q: %w", s.Name, g.Name, g.Prefix, err)
			}
		}
		total += g.Nodes
	}
	for _, l := range s.Latencies {
		if !groups[l.A] || !groups[l.B] {
			return fmt.Errorf("scenario %s: latency between unknown groups %q and %q", s.Name, l.A, l.B)
		}
		if l.OneWay < 0 {
			return fmt.Errorf("scenario %s: negative latency %v", s.Name, l.OneWay)
		}
	}
	if err := s.validateWorkload(total); err != nil {
		return err
	}
	if len(s.Timeline) > maxTimeline {
		return fmt.Errorf("scenario %s: %d timeline events (max %d)", s.Name, len(s.Timeline), maxTimeline)
	}
	for i, ev := range s.Timeline {
		if err := s.validateEvent(ev, groups); err != nil {
			return fmt.Errorf("scenario %s: timeline[%d]: %w", s.Name, i, err)
		}
	}
	return nil
}

func (s *Spec) validateWorkload(totalNodes int) error {
	w := s.Workload
	// The snapshot knobs change what the experiment measures; silently
	// ignoring them on another kind would run a different scenario than
	// the author wrote — same policy as the gated timeline fields.
	if w.Kind != WorkloadSnapshot {
		if w.PieceLength != 0 || w.ConnCap != 0 || w.UpRate != 0 || w.DownRate != 0 ||
			w.WebSeeds != 0 || w.SeedRestartAt != 0 || w.SeedRestartDown != 0 {
			return fmt.Errorf("scenario %s: piece_length/conn_cap/up_rate/down_rate/web_seeds/seed_restart_* need the snapshot workload (got %q)",
				s.Name, w.Kind)
		}
	}
	switch w.Kind {
	case WorkloadSwarm, WorkloadChurnSwarm, WorkloadSnapshot:
		if w.FileSize <= 0 {
			return fmt.Errorf("scenario %s: file size %d not positive", s.Name, w.FileSize)
		}
		var seederGroup *GroupSpec
		for i := range s.Groups {
			if s.Groups[i].Name == w.SeederGroup {
				seederGroup = &s.Groups[i]
			}
		}
		if seederGroup == nil {
			return fmt.Errorf("scenario %s: unknown seeder group %q", s.Name, w.SeederGroup)
		}
		minSeeders := 1
		if w.Kind == WorkloadSnapshot && w.WebSeeds > 0 {
			minSeeders = 0 // web seeds carry a seederless cold fill
		}
		if w.Seeders < minSeeders || w.Seeders > seederGroup.Nodes {
			return fmt.Errorf("scenario %s: %d seeders outside [%d,%d] (group %q)",
				s.Name, w.Seeders, minSeeders, seederGroup.Nodes, seederGroup.Name)
		}
		if totalNodes-w.Seeders < 1 {
			return fmt.Errorf("scenario %s: no clients left after %d seeders", s.Name, w.Seeders)
		}
		if w.StartInterval < 0 {
			return fmt.Errorf("scenario %s: negative start interval", s.Name)
		}
		if w.Kind == WorkloadChurnSwarm {
			if w.ChurnFraction < 0 || w.ChurnFraction >= 1 {
				return fmt.Errorf("scenario %s: churn fraction %g outside [0,1)", s.Name, w.ChurnFraction)
			}
			if w.Session <= 0 || w.Downtime <= 0 {
				return fmt.Errorf("scenario %s: churn session/downtime must be positive", s.Name)
			}
		}
		if w.Kind == WorkloadSnapshot {
			if w.WebSeeds < 0 || w.WebSeeds > maxWebSeeds {
				return fmt.Errorf("scenario %s: %d web seeds outside [0,%d]", s.Name, w.WebSeeds, maxWebSeeds)
			}
			if w.UpRate < 0 || w.DownRate < 0 {
				return fmt.Errorf("scenario %s: negative rate cap (up %d, down %d)", s.Name, w.UpRate, w.DownRate)
			}
			if w.SeedRestartAt < 0 || w.SeedRestartDown < 0 {
				return fmt.Errorf("scenario %s: negative seed restart timing", s.Name)
			}
			if w.SeedRestartAt > 0 && w.Seeders < 1 {
				return fmt.Errorf("scenario %s: seed_restart_at needs at least one seeder", s.Name)
			}
			if w.SeedRestartDown > 0 && w.SeedRestartAt == 0 {
				return fmt.Errorf("scenario %s: seed_restart_down without seed_restart_at", s.Name)
			}
		}
	case WorkloadDHT:
		if totalNodes < 2 {
			return fmt.Errorf("scenario %s: dht needs at least 2 nodes", s.Name)
		}
		if w.Lookups < 1 {
			return fmt.Errorf("scenario %s: %d lookups not positive", s.Name, w.Lookups)
		}
	case WorkloadGossip:
		if totalNodes < 2 {
			return fmt.Errorf("scenario %s: gossip needs at least 2 nodes", s.Name)
		}
		if w.Fanout < 1 {
			return fmt.Errorf("scenario %s: fanout %d not positive", s.Name, w.Fanout)
		}
	case "":
		return fmt.Errorf("scenario %s: missing workload kind", s.Name)
	default:
		return fmt.Errorf("scenario %s: unknown workload kind %q (want %s)", s.Name, w.Kind,
			strings.Join([]string{WorkloadSwarm, WorkloadChurnSwarm, WorkloadSnapshot, WorkloadDHT, WorkloadGossip}, ", "))
	}
	return nil
}

func (s *Spec) validateEvent(ev EventSpec, groups map[string]bool) error {
	if ev.At < 0 {
		return fmt.Errorf("negative instant %v", ev.At)
	}
	if ev.For < 0 {
		return fmt.Errorf("negative duration %v", ev.For)
	}
	known := false
	for _, a := range actions {
		if a == ev.Action {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown action %q (want %s)", ev.Action, strings.Join(actions, ", "))
	}
	checkGroups := func(names []string, what string) error {
		if len(names) == 0 {
			return fmt.Errorf("%s: no groups named", what)
		}
		for _, g := range names {
			if !groups[g] {
				return fmt.Errorf("%s: unknown group %q", what, g)
			}
		}
		return nil
	}
	switch ev.Action {
	case ActionHeal, ActionLinkUp, ActionSetClass, ActionAddRule, ActionDelRule:
		// These have no auto-revert; silently ignoring a duration would
		// run a different scenario than the author wrote.
		if ev.For > 0 {
			return fmt.Errorf("%s does not support a duration (for); schedule the opposite event instead", ev.Action)
		}
	}
	// The rule fields belong to add-rule (and ID to del-rule); ignoring
	// them elsewhere would likewise run a different scenario than
	// written (e.g. a deny-prefix author setting rule: "deny").
	if ev.Action != ActionAddRule {
		if ev.Src != "" || ev.Dst != "" || ev.Rule != "" || ev.Copies != 0 {
			return fmt.Errorf("%s does not use the add-rule fields (src/dst/rule/copies)", ev.Action)
		}
		if ev.ID != 0 && ev.Action != ActionDelRule && ev.Action != ActionDenyPfx {
			return fmt.Errorf("%s does not use a rule id", ev.Action)
		}
	}
	switch ev.Action {
	case ActionAddRule, ActionDelRule:
		// The reverse of the check above: group/partition/link fields on
		// a rule event would likewise be silently ignored (add-rule
		// matches by src/dst, which may name a group).
		if len(ev.Groups) > 0 || len(ev.A) > 0 || len(ev.B) > 0 || ev.Class != "" || ev.Loss != 0 {
			return fmt.Errorf("%s does not use groups/a/b/class/loss; match by the src and dst fields", ev.Action)
		}
	}
	switch ev.Action {
	case ActionPartition, ActionHeal:
		if err := checkGroups(ev.A, ev.Action+" side a"); err != nil {
			return err
		}
		if err := checkGroups(ev.B, ev.Action+" side b"); err != nil {
			return err
		}
		for _, a := range ev.A {
			for _, b := range ev.B {
				if a == b {
					return fmt.Errorf("group %q on both sides of the %s", a, ev.Action)
				}
			}
		}
	case ActionSetClass:
		if err := checkGroups(ev.Groups, "set-class"); err != nil {
			return err
		}
		if _, ok := topo.ClassByName(ev.Class); !ok {
			return fmt.Errorf("set-class: unknown class %q", ev.Class)
		}
	case ActionLoss:
		if err := checkGroups(ev.Groups, "loss"); err != nil {
			return err
		}
		if ev.Loss < 0 || ev.Loss > 1 {
			return fmt.Errorf("loss %g outside [0,1]", ev.Loss)
		}
		if ev.For <= 0 {
			return fmt.Errorf("loss burst needs a positive duration (for)")
		}
	case ActionLinkDown, ActionLinkUp:
		if err := checkGroups(ev.Groups, ev.Action); err != nil {
			return err
		}
	case ActionAddRule:
		known := false
		for _, a := range ruleActions {
			if a == ev.Rule {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("add-rule: unknown rule body %q (want %s)", ev.Rule, strings.Join(ruleActions, ", "))
		}
		for _, side := range []string{ev.Src, ev.Dst} {
			if side == "" || groups[side] {
				continue
			}
			if _, err := ip.ParsePrefix(side); err != nil {
				return fmt.Errorf("add-rule: %q is neither a group nor a prefix: %w", side, err)
			}
		}
		if ev.ID < 0 {
			return fmt.Errorf("add-rule: negative rule id %d", ev.ID)
		}
		if ev.Copies < 0 || ev.Copies > maxRuleCopies {
			return fmt.Errorf("add-rule: %d copies outside [0,%d]", ev.Copies, maxRuleCopies)
		}
	case ActionDelRule:
		if ev.ID <= 0 {
			return fmt.Errorf("del-rule: needs a positive rule id")
		}
	case ActionDenyPfx:
		if err := checkGroups(ev.Groups, "deny-prefix"); err != nil {
			return err
		}
		if ev.ID < 0 {
			return fmt.Errorf("deny-prefix: negative rule id %d", ev.ID)
		}
		if ev.For == 0 && ev.ID == 0 {
			// Auto-assigned rule numbers are not knowable to the spec
			// author, so a permanent deny without a pinned id could
			// never be lifted by del-rule — reject rather than let the
			// author believe it is revertible.
			return fmt.Errorf("deny-prefix: a permanent deny (no for) needs a pinned id so a del-rule can lift it")
		}
	}
	return nil
}

// TotalNodes sums the spec's group populations.
func (s *Spec) TotalNodes() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Nodes
	}
	return n
}
