package sched

import (
	"math/rand"
	"time"
)

// proc is the engine-side state of one simulated process.
type proc struct {
	id        int
	remaining time.Duration
	mem       int64
	resident  int64
	lastRun   time.Duration
	slice     time.Duration // effective quantum for this process
	home      int           // ULE home CPU
	done      bool
	stat      ProcStat
}

// cpuEvent orders scheduler decision points. requeue carries the proc
// whose slice ends at this instant: it must not be visible to other
// CPUs before then (requeueing it at dispatch time would let another
// CPU run it concurrently with its own slice).
type cpuEvent struct {
	at      time.Duration
	cpu     int
	requeue *proc
}

// eventHeap is a typed min-heap ordered by (at, cpu). It deliberately
// avoids container/heap: the any-based interface boxes every cpuEvent
// on Push and Pop, two heap allocations per scheduler decision that
// dominated the Fig 1 allocation profile.
type eventHeap []cpuEvent

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].cpu < h[j].cpu
}

func (h *eventHeap) push(ev cpuEvent) {
	q := append(*h, ev)
	*h = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() cpuEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = cpuEvent{} // release the requeue pointer
	q = q[:n]
	*h = q
	i := 0
	for {
		small, l, r := i, 2*i+1, 2*i+2
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// engine drives one simulation run.
type engine struct {
	cfg   Config
	rng   *rand.Rand
	procs []*proc
	sched queue

	residentTotal int64
	running       []*proc // per CPU, nil when idle
	swapUsed      bool

	// Linux swap token.
	tokenHolder   *proc
	tokenAcquired time.Duration
}

// Run simulates the jobs under the configured scheduler and returns the
// per-process statistics. All processes start at time zero (the paper
// starts instances simultaneously from a high-priority launcher).
func Run(cfg Config, jobs []Job) Result {
	e := &engine{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		running: make([]*proc, cfg.CPUs),
	}
	for i, j := range jobs {
		p := &proc{
			id:        i,
			remaining: j.Work,
			mem:       j.Mem,
			slice:     cfg.Quantum,
			home:      i % cfg.CPUs,
		}
		if cfg.Kind == ULE && cfg.ULESliceJitter > 0 {
			f := 1 + cfg.ULESliceJitter*(2*e.rng.Float64()-1)
			p.slice = time.Duration(float64(cfg.Quantum) * f)
			p.home = e.rng.Intn(cfg.CPUs)
		}
		e.procs = append(e.procs, p)
	}
	e.sched = newQueue(cfg, e.procs)
	e.loop()

	res := Result{Kind: cfg.Kind, SwapUsed: e.swapUsed}
	n := time.Duration(len(jobs))
	for _, p := range e.procs {
		if cfg.BatchFixedCost > 0 && n > 0 {
			amortized := cfg.BatchFixedCost / n
			p.stat.ExecTime += amortized
			p.stat.CPUTime += amortized
		}
		res.Procs = append(res.Procs, p.stat)
		if p.stat.Finish > res.Makespan {
			res.Makespan = p.stat.Finish
		}
	}
	return res
}

// idleRecheck is how long an idle CPU waits before re-inspecting the
// queues (all runnable processes blocked on the swap token).
const idleRecheck = 10 * time.Millisecond

func (e *engine) loop() {
	var h eventHeap
	for cpu := 0; cpu < e.cfg.CPUs; cpu++ {
		h.push(cpuEvent{at: 0, cpu: cpu})
	}
	remaining := len(e.procs)
	for remaining > 0 && len(h) > 0 {
		ev := h.pop()
		e.running[ev.cpu] = nil
		if ev.requeue != nil {
			e.sched.put(ev.requeue)
		}
		p := e.pick(ev.cpu, ev.at)
		if p == nil {
			h.push(cpuEvent{at: ev.at + idleRecheck, cpu: ev.cpu})
			continue
		}
		t := ev.at
		e.running[ev.cpu] = p
		p.stat.Switches++
		p.stat.ExecTime += e.cfg.CtxSwitch
		p.stat.CPUTime += e.cfg.CtxSwitch
		t += e.cfg.CtxSwitch

		// Service the page-fault backlog before computing.
		if deficit := p.mem - p.resident; deficit > 0 {
			dt := e.pageIn(p, deficit, t)
			p.stat.Faults += dt
			p.stat.ExecTime += dt
			t += dt
		}

		run := p.slice
		if p.remaining < run {
			run = p.remaining
		}
		t += run
		p.remaining -= run
		p.stat.CPUTime += run
		p.stat.ExecTime += run
		p.lastRun = t

		if p.remaining <= 0 {
			p.done = true
			p.stat.ID = p.id
			p.stat.Finish = t
			e.residentTotal -= p.resident
			p.resident = 0
			if e.tokenHolder == p {
				e.tokenHolder = nil
			}
			remaining--
			h.push(cpuEvent{at: t, cpu: ev.cpu})
		} else {
			// The proc stays invisible to other CPUs until its slice
			// ends; it rejoins the queue when this event pops.
			h.push(cpuEvent{at: t, cpu: ev.cpu, requeue: p})
		}
	}
}

// pick selects the next process for a CPU, honoring the Linux swap
// token: when memory is overcommitted and the token is held, faulting
// processes are passed over in favor of resident ones.
func (e *engine) pick(cpu int, now time.Duration) *proc {
	var skipped []*proc
	defer func() {
		for _, s := range skipped {
			e.sched.put(s)
		}
	}()
	limit := e.sched.len(cpu) + 1
	for i := 0; i < limit; i++ {
		p := e.sched.get(cpu, now)
		if p == nil {
			return nil
		}
		// The swap token gates refaults (reloads of evicted pages), not
		// first-touch allocation: a process that has never paged before
		// is building its working set, not thrashing.
		if e.cfg.Kind == LinuxO1 && e.cfg.TokenHold > 0 &&
			p.mem > p.resident && p.stat.PageIns > 0 {
			if e.tokenHolder != nil && e.tokenHolder != p &&
				now-e.tokenAcquired < e.cfg.TokenHold {
				// Token contention means aggregate demand exceeds RAM.
				e.swapUsed = true
				skipped = append(skipped, p)
				continue
			}
			e.tokenHolder = p
			e.tokenAcquired = now
		}
		return p
	}
	return nil
}

// pageIn services a process's missing pages, evicting from other
// processes if needed, and returns the service time. The first build of
// the working set is allocation (zero-fill at RAM speed); only reloads
// of previously evicted pages come from the swap disk.
func (e *engine) pageIn(p *proc, deficit int64, now time.Duration) time.Duration {
	free := e.cfg.RAM - e.residentTotal
	if free < deficit {
		e.swapUsed = true
		e.evict(deficit-free, p)
	}
	firstTouch := p.stat.PageIns == 0
	p.resident += deficit
	e.residentTotal += deficit
	p.stat.PageIns += deficit
	rate := e.cfg.DiskBytesPerSec
	if firstTouch {
		rate = e.cfg.RAMTouchBytesPerSec
	}
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(deficit) / float64(rate) * float64(time.Second))
}

// evict reclaims want bytes, spreading the reclaim across all eligible
// processes proportionally to their resident sizes — the behaviour of a
// page daemon scanning one global page LRU, where every process's pages
// are interleaved. (Evicting whole victims in LRU order would hit the
// classic round-robin+LRU pathology: always evicting exactly the next
// process to run, which turns mild overcommit into a full-reload cliff
// the paper's gradual Fig 2 curves do not show.)
func (e *engine) evict(want int64, beneficiary *proc) {
	var victims []*proc
	var evictable int64
	for _, cand := range e.procs {
		if cand == beneficiary || cand.done || cand.resident == 0 {
			continue
		}
		if cand == e.tokenHolder {
			continue
		}
		if e.onCPU(cand) {
			continue
		}
		victims = append(victims, cand)
		evictable += cand.resident
	}
	if evictable == 0 {
		return // nothing evictable; model allows transient overcommit
	}
	if want > evictable {
		want = evictable
	}
	remaining := want
	for _, v := range victims {
		take := int64(float64(want) * float64(v.resident) / float64(evictable))
		if take > v.resident {
			take = v.resident
		}
		if take > remaining {
			take = remaining
		}
		v.resident -= take
		e.residentTotal -= take
		remaining -= take
	}
	// Rounding leftovers: take from the least recently run.
	for remaining > 0 {
		var victim *proc
		for _, v := range victims {
			if v.resident == 0 {
				continue
			}
			if victim == nil || v.lastRun < victim.lastRun {
				victim = v
			}
		}
		if victim == nil {
			return
		}
		take := victim.resident
		if take > remaining {
			take = remaining
		}
		victim.resident -= take
		e.residentTotal -= take
		remaining -= take
	}
}

func (e *engine) onCPU(p *proc) bool {
	for _, r := range e.running {
		if r == p {
			return true
		}
	}
	return false
}
