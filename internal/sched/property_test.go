package sched

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMakespanLowerBoundProperty(t *testing.T) {
	// For any CPU-bound job set, makespan ≥ total work / CPUs and every
	// finish time is within the makespan.
	f := func(worksRaw []uint16, kindRaw uint8) bool {
		if len(worksRaw) == 0 || len(worksRaw) > 60 {
			return true
		}
		kind := Kinds[int(kindRaw)%len(Kinds)]
		cfg := DefaultConfig(kind)
		var jobs []Job
		var total time.Duration
		for _, w := range worksRaw {
			work := time.Duration(w%2000+1) * time.Millisecond
			jobs = append(jobs, Job{Work: work})
			total += work
		}
		res := Run(cfg, jobs)
		if res.Makespan < total/time.Duration(cfg.CPUs) {
			return false
		}
		for _, p := range res.Procs {
			if p.Finish > res.Makespan || p.Finish <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExecTimeAtLeastWorkProperty(t *testing.T) {
	// ExecTime can never be below the requested work (no stolen CPU).
	f := func(worksRaw []uint16, kindRaw uint8) bool {
		if len(worksRaw) == 0 || len(worksRaw) > 40 {
			return true
		}
		kind := Kinds[int(kindRaw)%len(Kinds)]
		var jobs []Job
		for _, w := range worksRaw {
			jobs = append(jobs, Job{Work: time.Duration(w%2000+1) * time.Millisecond})
		}
		res := Run(DefaultConfig(kind), jobs)
		for i, p := range res.Procs {
			if p.ExecTime < jobs[i].Work {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapTokenAblation(t *testing.T) {
	// Mechanism check: Linux's bounded Fig 2 behaviour comes from the
	// swap token. Disabling it (TokenHold = 0, the pre-2.6.9 VM) makes
	// Linux thrash like FreeBSD.
	with := DefaultConfig(LinuxO1)
	without := DefaultConfig(LinuxO1)
	without.TokenHold = 0
	resWith := Run(with, MemoryJobs(50))
	resWithout := Run(without, MemoryJobs(50))
	if resWith.AvgExecTime() > 4*time.Second {
		t.Fatalf("with token: %v, want bounded", resWith.AvgExecTime())
	}
	if resWithout.AvgExecTime() < 2*resWith.AvgExecTime() {
		t.Fatalf("without token: %v, want thrashing well above %v",
			resWithout.AvgExecTime(), resWith.AvgExecTime())
	}
}

func TestULEJitterAblation(t *testing.T) {
	// Mechanism check: ULE's wide fairness CDF comes from the slice
	// jitter + per-CPU queues. Zeroing the jitter and using global
	// queue behaviour is not possible directly, but zero jitter alone
	// must shrink the spread substantially.
	noisy := DefaultConfig(ULE)
	quiet := DefaultConfig(ULE)
	quiet.ULESliceJitter = 0
	spreadOf := func(cfg Config) time.Duration {
		res := Run(cfg, FairnessJobs(100))
		times := res.FinishTimes()
		min, max := times[0], times[0]
		for _, v := range times {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max - min
	}
	n, q := spreadOf(noisy), spreadOf(quiet)
	if q >= n {
		t.Fatalf("zero jitter spread %v should be below jittered %v", q, n)
	}
}
