package sched

import "time"

// queue abstracts the run-queue structure of each scheduler kind.
type queue interface {
	// get removes and returns the next process to run on cpu, or nil
	// when none is available to it right now.
	get(cpu int, now time.Duration) *proc
	// put re-inserts a preempted (or skipped) process.
	put(p *proc)
	// len reports how many processes cpu could currently reach.
	len(cpu int) int
}

// newQueue builds the run-queue structure for the configured scheduler.
func newQueue(cfg Config, procs []*proc) queue {
	switch cfg.Kind {
	case ULE:
		q := &uleQueue{
			perCPU:          make([][]*proc, cfg.CPUs),
			balanceInterval: cfg.ULEBalanceInterval,
			lastBalance:     make([]time.Duration, cfg.CPUs),
		}
		for _, p := range procs {
			q.perCPU[p.home] = append(q.perCPU[p.home], p)
		}
		return q
	default: // FourBSD and LinuxO1: one global round-robin queue
		q := &globalQueue{}
		for _, p := range procs {
			q.q = append(q.q, p)
		}
		return q
	}
}

// globalQueue models the single shared run queue of 4BSD (and, for
// identical CPU-bound processes, the effectively fair behaviour of the
// Linux O(1) scheduler): strict round-robin, perfect fairness.
type globalQueue struct {
	q []*proc
}

func (g *globalQueue) get(_ int, _ time.Duration) *proc {
	if len(g.q) == 0 {
		return nil
	}
	p := g.q[0]
	copy(g.q, g.q[1:])
	g.q = g.q[:len(g.q)-1]
	return p
}

func (g *globalQueue) put(p *proc)   { g.q = append(g.q, p) }
func (g *globalQueue) len(_ int) int { return len(g.q) }

// uleQueue models ULE's per-CPU run queues: processes stay on their
// home CPU (affinity) and an idle CPU steals from the longest queue at
// most once per balance interval. Combined with the per-process
// effective-slice jitter (interactivity scoring), this reproduces the
// wide fairness CDF the paper measures for ULE in Fig 3.
type uleQueue struct {
	perCPU          [][]*proc
	balanceInterval time.Duration
	lastBalance     []time.Duration
}

func (u *uleQueue) get(cpu int, now time.Duration) *proc {
	q := u.perCPU[cpu]
	if len(q) > 0 {
		p := q[0]
		copy(q, q[1:])
		u.perCPU[cpu] = q[:len(q)-1]
		return p
	}
	// Idle: steal from the longest queue, rate-limited.
	if now-u.lastBalance[cpu] < u.balanceInterval && u.lastBalance[cpu] != 0 {
		return nil
	}
	u.lastBalance[cpu] = now
	busiest, max := -1, 1 // only steal from queues with ≥2 entries
	for i, oq := range u.perCPU {
		if len(oq) > max {
			busiest, max = i, len(oq)
		}
	}
	if busiest < 0 {
		// Last resort: take a lone entry so work never strands.
		for i, oq := range u.perCPU {
			if len(oq) > 0 {
				busiest = i
				break
			}
		}
		if busiest < 0 {
			return nil
		}
	}
	oq := u.perCPU[busiest]
	p := oq[len(oq)-1] // steal from the tail (coldest)
	u.perCPU[busiest] = oq[:len(oq)-1]
	p.home = cpu
	return p
}

func (u *uleQueue) put(p *proc) {
	u.perCPU[p.home] = append(u.perCPU[p.home], p)
}

func (u *uleQueue) len(cpu int) int {
	n := 0
	for _, q := range u.perCPU {
		n += len(q)
	}
	return n
}
