// Package sched simulates the operating-system schedulers the paper
// evaluates in "Suitability of FreeBSD" (Figs 1–3): FreeBSD's classic
// 4BSD scheduler, FreeBSD's ULE scheduler, and Linux 2.6's O(1)
// scheduler, together with a paged-memory model that reproduces the
// swap-thrashing difference between FreeBSD and Linux.
//
// Metrics follow the paper's measurements:
//
//   - ExecTime (Figs 1 and 2) is the time a process spent executing or
//     servicing page faults — CPU time plus fault service, excluding
//     runnable-queue wait. (With 1000 concurrent processes the paper
//     still reports ≈1.65 s per process, so the metric cannot be wall
//     time.)
//   - Finish (Fig 3) is the wall-clock completion instant, whose
//     distribution over identical processes measures fairness.
//
// The memory model captures the paper's Fig 2 contrast mechanically:
// when the aggregate working set exceeds RAM, FreeBSD processes page
// back in whatever was evicted every time they are scheduled
// (thrashing), while Linux 2.6's swap-token mechanism admits one
// faulting process at a time and protects its pages, bounding fault
// service per process.
package sched

import (
	"fmt"
	"time"
)

// Kind selects the scheduler discipline.
type Kind int

const (
	// FourBSD is FreeBSD's classic scheduler: one global run queue,
	// priority decay, round-robin time slices.
	FourBSD Kind = iota
	// ULE is FreeBSD 6's ULE scheduler: per-CPU run queues with
	// affinity, interactivity scoring (which perturbs effective slices)
	// and idle stealing. Fig 3 shows its fairness spread.
	ULE
	// LinuxO1 is Linux 2.6's O(1) scheduler with the swap-token
	// anti-thrashing mechanism in the VM.
	LinuxO1
)

// String names the scheduler like the paper's figure legends.
func (k Kind) String() string {
	switch k {
	case FourBSD:
		return "4BSD scheduler"
	case ULE:
		return "ULE scheduler"
	case LinuxO1:
		return "Linux 2.6"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all scheduler disciplines, in the paper's legend order.
var Kinds = []Kind{ULE, FourBSD, LinuxO1}

// Job describes one process to run.
type Job struct {
	// Work is the pure CPU time the job needs (its solo execution time
	// on an idle machine, excluding paging).
	Work time.Duration
	// Mem is the working-set size in bytes (0 for CPU-only jobs like
	// Fig 1's Ackermann computation).
	Mem int64
}

// Config describes the simulated machine. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	Kind Kind
	// CPUs is the processor count (GridExplorer nodes: dual Opteron).
	CPUs int
	// RAM is physical memory available to jobs, after OS reserve.
	RAM int64
	// DiskBytesPerSec is the swap device throughput (page reloads).
	DiskBytesPerSec int64
	// RAMTouchBytesPerSec is the zero-fill/allocation rate for the first
	// build of a working set (not a disk transfer).
	RAMTouchBytesPerSec int64
	// Quantum is the base time slice.
	Quantum time.Duration
	// CtxSwitch is the CPU cost of one context switch, charged to the
	// incoming process's execution time.
	CtxSwitch time.Duration
	// BatchFixedCost is a per-experiment fixed cost (loader, shared
	// page warm-up) amortized over the batch: each process's ExecTime
	// includes BatchFixedCost/N. This reproduces Fig 1's slight
	// *decrease* of per-process time at high process counts.
	BatchFixedCost time.Duration
	// ULESliceJitter is the relative spread of per-process effective
	// slices under ULE (interactivity-score noise); it drives Fig 3's
	// wide ULE CDF. Ignored by other schedulers.
	ULESliceJitter float64
	// ULEBalanceInterval is how often an idle CPU steals work.
	ULEBalanceInterval time.Duration
	// TokenHold is how long the Linux swap token protects a faulting
	// process's pages. Zero disables the token (pre-2.6.9 behaviour).
	TokenHold time.Duration
	// Seed drives the deterministic random source.
	Seed int64
}

// DefaultConfig returns a GridExplorer-like machine: 2 CPUs, 2 GB RAM
// (minus ~200 MB OS reserve), a single disk for swap.
func DefaultConfig(kind Kind) Config {
	return Config{
		Kind:                kind,
		CPUs:                2,
		RAM:                 1_800_000_000,
		DiskBytesPerSec:     100_000_000,
		RAMTouchBytesPerSec: 2_000_000_000,
		Quantum:             100 * time.Millisecond,
		CtxSwitch:           5 * time.Microsecond,
		BatchFixedCost:      40 * time.Millisecond,
		ULESliceJitter:      0.20,
		ULEBalanceInterval:  30 * time.Second,
		TokenHold:           2 * time.Second,
		Seed:                1,
	}
}

// ProcStat reports one process's outcome.
type ProcStat struct {
	ID       int
	Start    time.Duration // always 0 in the paper's experiments
	Finish   time.Duration // wall-clock completion (Fig 3 metric)
	ExecTime time.Duration // CPU + fault service (Figs 1–2 metric)
	CPUTime  time.Duration // pure CPU component
	Faults   time.Duration // fault-service component
	PageIns  int64         // bytes paged in over the process lifetime
	Switches int           // times scheduled
}

// Result is the outcome of one Run.
type Result struct {
	Kind     Kind
	Procs    []ProcStat
	Makespan time.Duration
	// SwapUsed reports whether the run ever exceeded RAM.
	SwapUsed bool
}

// AvgExecTime returns the mean per-process execution time — the y-axis
// of Figs 1 and 2.
func (r *Result) AvgExecTime() time.Duration {
	if len(r.Procs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, p := range r.Procs {
		sum += p.ExecTime
	}
	return sum / time.Duration(len(r.Procs))
}

// FinishTimes returns the wall-clock completion times — the sample
// behind Fig 3's CDFs.
func (r *Result) FinishTimes() []time.Duration {
	out := make([]time.Duration, len(r.Procs))
	for i, p := range r.Procs {
		out[i] = p.Finish
	}
	return out
}
