package sched

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func run(t *testing.T, kind Kind, jobs []Job) Result {
	t.Helper()
	return Run(DefaultConfig(kind), jobs)
}

func spread(times []time.Duration) time.Duration {
	min, max := times[0], times[0]
	for _, v := range times {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

func TestSingleCPUBoundJob(t *testing.T) {
	for _, kind := range Kinds {
		res := run(t, kind, CPUBoundJobs(1))
		got := res.Procs[0].ExecTime
		// 1.65s work + 40ms batch cost + context switches.
		if got < AckermannWork || got > AckermannWork+60*time.Millisecond {
			t.Errorf("%v: solo exec = %v, want ≈1.69s", kind, got)
		}
		if res.SwapUsed {
			t.Errorf("%v: CPU-bound job used swap", kind)
		}
	}
}

func TestFig1ShapeFlatAndDecreasing(t *testing.T) {
	// Per-process execution time must stay within the paper's Fig 1
	// band (≈1.645–1.69 s) and decrease as N grows.
	for _, kind := range Kinds {
		var prev time.Duration = 1<<62 - 1
		for _, n := range []int{1, 10, 100, 500, 1000} {
			res := run(t, kind, CPUBoundJobs(n))
			avg := res.AvgExecTime()
			lo, hi := 1640*time.Millisecond, 1700*time.Millisecond
			if avg < lo || avg > hi {
				t.Errorf("%v N=%d: avg exec = %v, want in [1.64s,1.70s]", kind, n, avg)
			}
			if avg > prev {
				t.Errorf("%v N=%d: avg exec %v increased from %v", kind, n, avg, prev)
			}
			prev = avg
		}
	}
}

func TestFig1NoWallTimeConfusion(t *testing.T) {
	// Wall completion of 1000 concurrent 1.65s jobs on 2 CPUs is
	// ≈825 s; ExecTime must not be that.
	res := run(t, FourBSD, CPUBoundJobs(1000))
	if res.Makespan < 800*time.Second {
		t.Fatalf("makespan = %v, want ≈825s", res.Makespan)
	}
	if res.AvgExecTime() > 2*time.Second {
		t.Fatalf("avg exec = %v, must be CPU time not wall", res.AvgExecTime())
	}
}

func TestFig2BelowRAMAllFlat(t *testing.T) {
	// 10 × 80 MB fits 1.8 GB: no scheduler should swap.
	for _, kind := range Kinds {
		res := run(t, kind, MemoryJobs(10))
		if res.SwapUsed {
			t.Errorf("%v: swap used below RAM", kind)
		}
		avg := res.AvgExecTime()
		// 1.2s work + one initial 80MB page-in (~1.1s at 70MB/s).
		if avg < MatrixWork || avg > 3*time.Second {
			t.Errorf("%v N=10: avg exec = %v", kind, avg)
		}
	}
}

func TestFig2FreeBSDThrashesLinuxDoesNot(t *testing.T) {
	// The paper's key contrast at N=50 (4 GB demanded of a 2 GB box):
	// FreeBSD execution time blows up, Linux 2.6 stays bounded.
	bsd := run(t, FourBSD, MemoryJobs(50))
	ule := run(t, ULE, MemoryJobs(50))
	lin := run(t, LinuxO1, MemoryJobs(50))
	if !bsd.SwapUsed || !lin.SwapUsed {
		t.Fatal("both OSes must hit swap at N=50")
	}
	if bsd.AvgExecTime() < 5*time.Second {
		t.Errorf("4BSD avg exec = %v, want thrashing (>5s)", bsd.AvgExecTime())
	}
	if ule.AvgExecTime() < 5*time.Second {
		t.Errorf("ULE avg exec = %v, want thrashing (>5s)", ule.AvgExecTime())
	}
	if lin.AvgExecTime() > 4*time.Second {
		t.Errorf("Linux avg exec = %v, want bounded (<4s)", lin.AvgExecTime())
	}
	if lin.AvgExecTime() >= bsd.AvgExecTime() {
		t.Errorf("Linux (%v) should beat FreeBSD (%v) under overcommit",
			lin.AvgExecTime(), bsd.AvgExecTime())
	}
}

func TestFig2MonotoneDegradation(t *testing.T) {
	// FreeBSD's execution time grows with N once swapping starts.
	var prev time.Duration
	for _, n := range []int{25, 35, 50} {
		res := run(t, FourBSD, MemoryJobs(n))
		avg := res.AvgExecTime()
		if avg < prev {
			t.Errorf("4BSD avg exec at N=%d (%v) below N-1 step (%v)", n, avg, prev)
		}
		prev = avg
	}
}

func TestFig3FairnessTightFor4BSDAndLinux(t *testing.T) {
	for _, kind := range []Kind{FourBSD, LinuxO1} {
		res := run(t, kind, FairnessJobs(100))
		sp := spread(res.FinishTimes())
		if sp > 5*time.Second {
			t.Errorf("%v finish spread = %v, want tight (<5s)", kind, sp)
		}
		// Centered around 100×5s/2 = 250s.
		if res.Makespan < 245*time.Second || res.Makespan > 260*time.Second {
			t.Errorf("%v makespan = %v, want ≈250s", kind, res.Makespan)
		}
	}
}

func TestFig3ULESpreadWide(t *testing.T) {
	res := run(t, ULE, FairnessJobs(100))
	sp := spread(res.FinishTimes())
	if sp < 20*time.Second {
		t.Errorf("ULE finish spread = %v, want wide (>20s, paper: ~60s)", sp)
	}
	if sp > 90*time.Second {
		t.Errorf("ULE finish spread = %v, too wide", sp)
	}
	bsd := run(t, FourBSD, FairnessJobs(100))
	if sp < 4*spread(bsd.FinishTimes()) {
		t.Errorf("ULE spread (%v) should dwarf 4BSD spread (%v)", sp, spread(bsd.FinishTimes()))
	}
}

func TestWorkConservation(t *testing.T) {
	// Total CPU time handed out must equal requested work plus
	// context-switch and batch overheads (no lost or invented work).
	jobs := CPUBoundJobs(50)
	res := run(t, FourBSD, jobs)
	var cpu time.Duration
	var switches int
	for _, p := range res.Procs {
		cpu += p.CPUTime
		switches += p.Switches
	}
	cfg := DefaultConfig(FourBSD)
	want := 50*AckermannWork + time.Duration(switches)*cfg.CtxSwitch + cfg.BatchFixedCost
	if diff := cpu - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("cpu time = %v, want %v", cpu, want)
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range Kinds {
		a := Run(DefaultConfig(kind), FairnessJobs(40))
		b := Run(DefaultConfig(kind), FairnessJobs(40))
		if fmt.Sprint(a.FinishTimes()) != fmt.Sprint(b.FinishTimes()) {
			t.Errorf("%v: runs diverged with identical seed", kind)
		}
	}
}

func TestSeedVariesULE(t *testing.T) {
	cfgA := DefaultConfig(ULE)
	cfgB := DefaultConfig(ULE)
	cfgB.Seed = 99
	a := Run(cfgA, FairnessJobs(40))
	b := Run(cfgB, FairnessJobs(40))
	if fmt.Sprint(a.FinishTimes()) == fmt.Sprint(b.FinishTimes()) {
		t.Error("different seeds should change ULE schedules")
	}
}

func TestAllProcsComplete(t *testing.T) {
	for _, kind := range Kinds {
		res := run(t, kind, MemoryJobs(40))
		if len(res.Procs) != 40 {
			t.Fatalf("%v: %d results, want 40", kind, len(res.Procs))
		}
		for _, p := range res.Procs {
			if p.Finish == 0 {
				t.Errorf("%v: proc %d never finished", kind, p.ID)
			}
		}
	}
}

func TestMakespanEfficiency(t *testing.T) {
	// With 2 CPUs and no memory pressure, makespan must be close to
	// N×W/2 (no CPU left idle while work remains).
	res := run(t, ULE, CPUBoundJobs(100))
	ideal := 100 * AckermannWork / 2
	if res.Makespan > ideal+ideal/10 {
		t.Fatalf("ULE makespan = %v, ideal %v: CPUs idling", res.Makespan, ideal)
	}
}

func TestKindString(t *testing.T) {
	if FourBSD.String() != "4BSD scheduler" || ULE.String() != "ULE scheduler" ||
		LinuxO1.String() != "Linux 2.6" {
		t.Fatal("legend names drifted")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestAvgExecTimeEmpty(t *testing.T) {
	var r Result
	if r.AvgExecTime() != 0 {
		t.Fatal("empty result should average to 0")
	}
}

func TestPageInAccounting(t *testing.T) {
	res := run(t, FourBSD, MemoryJobs(5))
	for _, p := range res.Procs {
		if p.PageIns < MatrixMem {
			t.Fatalf("proc %d paged in %d bytes, want ≥ %d (initial load)", p.ID, p.PageIns, MatrixMem)
		}
		if p.Faults <= 0 {
			t.Fatalf("proc %d has no fault time despite paging", p.ID)
		}
	}
}

func TestCVTightFairness(t *testing.T) {
	// Coefficient of variation of 4BSD finishes should be tiny.
	res := run(t, FourBSD, FairnessJobs(100))
	times := res.FinishTimes()
	var sum, sq float64
	for _, v := range times {
		s := v.Seconds()
		sum += s
		sq += s * s
	}
	n := float64(len(times))
	mean := sum / n
	cv := math.Sqrt(sq/n-mean*mean) / mean
	if cv > 0.01 {
		t.Fatalf("4BSD fairness CV = %.4f, want <1%%", cv)
	}
}
