package sched

import "time"

// The paper's three process workloads.

// AckermannWork is the solo runtime of the Fig 1 job ("calculating
// Ackermann's function, requiring about 1.65 seconds to complete when
// run alone"); it uses no significant memory.
const AckermannWork = 1650 * time.Millisecond

// MatrixWork and MatrixMem describe the Fig 2 job ("simple operations
// on large matrices"): CPU-light but with a working set big enough that
// ~22 instances fill a 2 GB machine.
const (
	MatrixWork = 1200 * time.Millisecond
	MatrixMem  = 80_000_000
)

// FairnessWork is the solo runtime of the Fig 3 job ("when executed
// alone, the program needs about 5 seconds to complete").
const FairnessWork = 5 * time.Second

// CPUBoundJobs returns n copies of the Fig 1 Ackermann job.
func CPUBoundJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Work: AckermannWork}
	}
	return jobs
}

// MemoryJobs returns n copies of the Fig 2 matrix job.
func MemoryJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Work: MatrixWork, Mem: MatrixMem}
	}
	return jobs
}

// FairnessJobs returns n copies of the Fig 3 five-second job.
func FairnessJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Work: FairnessWork}
	}
	return jobs
}
