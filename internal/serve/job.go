package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobRequest is the submission body of POST /api/v1/jobs.
type JobRequest struct {
	// Kind selects the job type: "scenario" (the default) runs one
	// scenario to completion with live metric sampling; "sweep" runs a
	// parameter grid on the sweep worker pool with per-cell progress.
	Kind string `json:"kind,omitempty"`

	// Scenario jobs: exactly one of Scenario (a corpus name) or Spec
	// (an inline scenario spec, same JSON schema as `p2plab run -spec`).
	Scenario string         `json:"scenario,omitempty"`
	Spec     *scenario.Spec `json:"spec,omitempty"`
	// Seed overrides the spec's seed when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// SampleInterval is the virtual-time distance between metric
	// snapshots ("30s", "2m"); the server default applies when unset.
	SampleInterval scenario.Duration `json:"sample_interval,omitempty"`

	// Sweep jobs.
	Sweep *SweepRequest `json:"sweep,omitempty"`
}

// SweepRequest mirrors the `p2plab sweep` flags as JSON.
type SweepRequest struct {
	Experiment  string              `json:"experiment"`
	Peers       []int               `json:"peers,omitempty"`
	Churn       []float64           `json:"churn,omitempty"`
	Classes     []string            `json:"classes,omitempty"`
	Models      []string            `json:"models,omitempty"`
	Windows     []scenario.Duration `json:"windows,omitempty"`
	Scenarios   []string            `json:"scenarios,omitempty"`
	Rules       []int               `json:"rules,omitempty"`
	Classifiers []string            `json:"classifiers,omitempty"`
	Seeds       []int64             `json:"seeds,omitempty"`
	FileSize    int                 `json:"file_size,omitempty"`
	Lookups     int                 `json:"lookups,omitempty"`
	Fanout      int                 `json:"fanout,omitempty"`
	Horizon     scenario.Duration   `json:"horizon,omitempty"`
	Workers     int                 `json:"workers,omitempty"`
}

// Event is one frame of a job's progress stream.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // state | progress | sample | result
	Data any    `json:"data,omitempty"`
}

// SamplePayload is the Data of a "sample" event: one virtual-time
// metric snapshot plus the wall-clock pacing figures the kernel itself
// must never see (they would break determinism inside the registry).
type SamplePayload struct {
	VirtualS float64 `json:"virtual_s"`
	WallMS   int64   `json:"wall_ms"` // wall time since the job started
	// EventsPerSec is kernel callbacks dispatched per wall-clock second
	// since the previous sample; VTWallRatio is virtual seconds
	// simulated per wall second over the same stretch.
	EventsPerSec float64       `json:"events_per_sec"`
	VTWallRatio  float64       `json:"vt_wall_ratio"`
	Metrics      *obs.Snapshot `json:"metrics"`
}

// ProgressPayload is the Data of a sweep job's "progress" event.
type ProgressPayload struct {
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	Cell      string `json:"cell"`
	Err       string `json:"err,omitempty"`
	WallMS    int64  `json:"wall_ms"`
}

// CellSummary is one sweep cell in a JobResult.
type CellSummary struct {
	Cell   string `json:"cell"`
	Err    string `json:"err,omitempty"`
	WallMS int64  `json:"wall_ms"`
}

// JobResult is the final payload of GET /api/v1/jobs/{id}/result.
type JobResult struct {
	Kind     string `json:"kind"`
	Scenario string `json:"scenario,omitempty"`
	WallMS   int64  `json:"wall_ms"`

	// Scenario jobs.
	EndedVirtualS float64            `json:"ended_virtual_s,omitempty"`
	Done          int                `json:"done,omitempty"`
	Total         int                `json:"total,omitempty"`
	Kernel        *sim.Stats         `json:"kernel,omitempty"`
	Net           *vnet.NetworkStats `json:"net,omitempty"`
	Labels        map[string]string  `json:"labels,omitempty"`
	Values        map[string]float64 `json:"values,omitempty"`
	Counters      map[string]uint64  `json:"counters,omitempty"`

	// Sweep jobs.
	Cells  []CellSummary `json:"cells,omitempty"`
	Failed int           `json:"failed,omitempty"`
}

// JobInfo is the list/inspect view of a job.
type JobInfo struct {
	ID       string     `json:"id"`
	Kind     string     `json:"kind"`
	Name     string     `json:"name"` // scenario or experiment name
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// LastSample summarizes the latest snapshot (scenario jobs).
	LastVirtualS float64 `json:"last_virtual_s,omitempty"`
	Events       int     `json:"events"` // frames published so far
}

// Job is one queued, running or finished unit of work. Its mutable
// state is guarded by mu: the worker goroutine publishes, HTTP handler
// goroutines read and subscribe.
type Job struct {
	id   string
	req  JobRequest
	kind string
	name string

	mu       sync.Mutex
	state    JobState
	err      string
	created  time.Time
	started  time.Time
	finished time.Time

	seq      int
	events   []Event // bounded replay history (oldest dropped)
	firstSeq int     // seq of events[0]
	histMax  int
	subs     map[chan Event]struct{}
	done     chan struct{} // closed by finish; wait on it instead of polling state

	lastSample   *obs.Snapshot
	lastVirtualS float64

	result   *JobResult
	csvSnaps []*metrics.Snapshot
}

func newJob(id string, req JobRequest, histMax int) *Job {
	kind := req.Kind
	if kind == "" {
		kind = "scenario"
	}
	name := req.Scenario
	if req.Spec != nil {
		name = req.Spec.Name
	}
	if kind == "sweep" && req.Sweep != nil {
		name = req.Sweep.Experiment
	}
	if histMax <= 0 {
		histMax = 256
	}
	return &Job{
		id: id, req: req, kind: kind, name: name,
		state: JobQueued, created: time.Now(), histMax: histMax,
		subs: make(map[chan Event]struct{}),
		done: make(chan struct{}),
	}
}

// publish appends one event to the history and fans it out to live
// subscribers. A subscriber whose buffer is full loses the frame (the
// replay history still holds it while it stays within histMax).
func (j *Job) publish(typ string, data any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(typ, data)
}

func (j *Job) publishLocked(typ string, data any) {
	ev := Event{Seq: j.seq, Type: typ, Data: data}
	j.seq++
	j.events = append(j.events, ev)
	if len(j.events) > j.histMax {
		drop := len(j.events) - j.histMax
		j.events = append(j.events[:0:0], j.events[drop:]...)
		j.firstSeq += drop
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// publishSample records a metric snapshot frame.
func (j *Job) publishSample(p SamplePayload) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lastSample = p.Metrics
	j.lastVirtualS = p.VirtualS
	j.publishLocked("sample", p)
}

// setRunning transitions queued -> running.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = time.Now()
	j.publishLocked("state", map[string]any{"state": j.state})
}

// finish transitions to done/failed, publishes the final frame, closes
// every subscriber channel (streams end at job completion) and closes
// the done channel. Finishing twice is a no-op.
func (j *Job) finish(res *JobResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed {
		return
	}
	defer close(j.done)
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
		j.publishLocked("state", map[string]any{"state": j.state, "error": j.err})
	} else {
		j.state = JobDone
		j.result = res
		j.publishLocked("result", res)
	}
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
}

// subscribe returns the replay history and, for an unfinished job, a
// live channel (nil once finished — the history is complete) plus an
// unsubscribe function.
func (j *Job) subscribe() (history []Event, live chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	if j.state == JobDone || j.state == JobFailed {
		return history, nil, func() {}
	}
	ch := make(chan Event, 256)
	j.subs[ch] = struct{}{}
	return history, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// info snapshots the job's list/inspect view.
func (j *Job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	inf := JobInfo{
		ID: j.id, Kind: j.kind, Name: j.name, State: j.state,
		Error: j.err, Created: j.created,
		LastVirtualS: j.lastVirtualS, Events: j.seq,
	}
	if !j.started.IsZero() {
		t := j.started
		inf.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		inf.Finished = &t
	}
	return inf
}

// snapshotForMetrics returns the latest sample for /metrics exposure.
func (j *Job) snapshotForMetrics() *obs.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSample
}

func (j *Job) stateNow() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) resultNow() (*JobResult, []*metrics.Snapshot, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobDone:
		return j.result, j.csvSnaps, nil
	case JobFailed:
		return nil, nil, fmt.Errorf("job %s failed: %s", j.id, j.err)
	default:
		return nil, nil, fmt.Errorf("job %s not finished (state %s)", j.id, j.state)
	}
}
