// Package serve is the outside half of the observability layer: a
// long-running HTTP service that accepts scenario and sweep jobs into a
// bounded queue, runs them on a worker pool, streams per-cell progress
// and live virtual-time metric snapshots to subscribers, and exposes
// final results, CSV exports and a Prometheus /metrics endpoint.
//
// The boundary discipline: everything inside a kernel stays
// deterministic (the obs registry, sampled at virtual-time boundaries),
// and everything wall-clock flavored — request counters, events/sec,
// virtual-vs-wall ratios — lives out here, computed from snapshots
// after they cross the boundary.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	// QueueDepth bounds jobs waiting to run; submissions beyond it are
	// rejected with 503 (default 8).
	QueueDepth int
	// Workers is the number of jobs running concurrently (default 2).
	// Each sweep job additionally parallelizes internally via the sweep
	// engine's own pool.
	Workers int
	// SampleInterval is the default virtual-time distance between
	// metric snapshots for scenario jobs (default 10s of virtual time);
	// per-job requests may override it.
	SampleInterval time.Duration
	// HistoryLimit bounds each job's replayable event history
	// (default 256 frames; older frames are dropped).
	HistoryLimit int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 10 * time.Second
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 256
	}
	return c
}

// Server is the experiment service. Create with New, mount via Handler
// (it implements nothing else HTTP-specific, so httptest works
// directly), stop with Close.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []*Job
	nextID int
	// reg holds the server's own (wall-clock-side) metrics. The obs
	// registry is not thread-safe; every access happens under mu.
	reg       *obs.Registry
	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter

	start time.Time

	// run executes one job; replaced in tests to model slow jobs
	// without running kernels.
	run func(*Job)
}

// New creates a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueDepth),
		quit:  make(chan struct{}),
		jobs:  make(map[string]*Job),
		reg:   obs.NewRegistry(),
		start: time.Now(),
	}
	s.submitted = s.reg.Counter("p2plab_server_jobs_submitted_total", "Jobs accepted into the queue.")
	s.rejected = s.reg.Counter("p2plab_server_jobs_rejected_total", "Submissions rejected because the queue was full.")
	s.completed = s.reg.Counter("p2plab_server_jobs_completed_total", "Jobs finished successfully.")
	s.failed = s.reg.Counter("p2plab_server_jobs_failed_total", "Jobs that ended in an error.")
	s.reg.GaugeFunc("p2plab_server_queue_depth", "Jobs waiting in the bounded queue.", func() float64 {
		return float64(len(s.queue))
	})
	s.reg.GaugeFunc("p2plab_server_jobs_running", "Jobs currently executing.", func() float64 {
		running := 0
		for _, j := range s.order {
			if j.stateNow() == JobRunning {
				running++
			}
		}
		return float64(running)
	})
	s.run = s.execute
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool; queued jobs that have not started stay
// queued forever. Safe to call once.
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			j.setRunning()
			s.run(j)
			s.mu.Lock()
			if j.stateNow() == JobFailed {
				s.failed.Inc()
			} else {
				s.completed.Inc()
			}
			s.mu.Unlock()
		}
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /health", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result.csv", s.handleResultCSV)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// resolveSpec validates a scenario job request and returns its spec.
func resolveSpec(req JobRequest) (*scenario.Spec, error) {
	if (req.Scenario == "") == (req.Spec == nil) {
		return nil, fmt.Errorf("scenario job needs exactly one of \"scenario\" (corpus name) or \"spec\" (inline)")
	}
	var sp scenario.Spec
	if req.Spec != nil {
		sp = *req.Spec
	} else {
		var ok bool
		sp, ok = scenario.ByName(req.Scenario)
		if !ok {
			return nil, fmt.Errorf("unknown corpus scenario %q", req.Scenario)
		}
	}
	wd := sp.WithDefaults()
	if req.Seed != 0 {
		wd.Seed = req.Seed
	}
	if err := wd.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// buildGrid translates a sweep request into an exp.Grid, mirroring the
// `p2plab sweep` flag parsing.
func buildGrid(req *SweepRequest) (exp.Grid, error) {
	var g exp.Grid
	if req == nil {
		return g, fmt.Errorf("sweep job needs a \"sweep\" object")
	}
	g = exp.Grid{
		Experiment: exp.Experiment(req.Experiment),
		Peers:      req.Peers,
		Churn:      req.Churn,
		Scenarios:  req.Scenarios,
		Rules:      req.Rules,
		Seeds:      req.Seeds,
		FileSize:   req.FileSize,
		Lookups:    req.Lookups,
		Fanout:     req.Fanout,
		Horizon:    req.Horizon.D(),
	}
	for _, c := range req.Classes {
		cls, ok := topo.ClassByName(c)
		if !ok {
			return g, fmt.Errorf("unknown link class %q", c)
		}
		g.Classes = append(g.Classes, cls)
	}
	for _, m := range req.Models {
		mk, err := netem.ParseModel(m)
		if err != nil {
			return g, err
		}
		g.Models = append(g.Models, mk)
	}
	for _, w := range req.Windows {
		g.Windows = append(g.Windows, w.D())
	}
	for _, c := range req.Classifiers {
		cl, err := netem.ParseClassifier(c)
		if err != nil {
			return g, err
		}
		g.Classifiers = append(g.Classifiers, cl)
	}
	return g, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Validate up front so a malformed job is a 400 at submission, not
	// an async failure discovered through the stream.
	switch req.Kind {
	case "", "scenario":
		if _, err := resolveSpec(req); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case "sweep":
		g, err := buildGrid(req.Sweep)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if _, err := g.Cells(); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown job kind %q", req.Kind)
		return
	}

	s.mu.Lock()
	s.nextID++
	j := newJob(fmt.Sprintf("job-%04d", s.nextID), req, s.cfg.HistoryLimit)
	// Reserve the queue slot while holding s.mu so the id sequence and
	// the queue admission decision stay consistent.
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.submitted.Inc()
		s.mu.Unlock()
	default:
		s.nextID--
		s.rejected.Inc()
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "job queue full (%d deep); retry later", s.cfg.QueueDepth)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":    j.id,
		"state": JobQueued,
		"links": map[string]string{
			"self":   "/api/v1/jobs/" + j.id,
			"events": "/api/v1/jobs/" + j.id + "/events",
			"result": "/api/v1/jobs/" + j.id + "/result",
		},
	})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleEvents streams the job's frames as Server-Sent Events: the
// replayable history first, then live frames until the job finishes or
// the client disconnects. Each frame is `event: <type>` + `data:
// <JSON>`.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, live, cancel := j.subscribe()
	defer cancel()
	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range history {
		if !send(ev) {
			return
		}
	}
	if live == nil {
		return // finished job: history is the whole story
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return // job finished
			}
			if !send(ev) {
				return
			}
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	res, _, err := j.resultNow()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleResultCSV(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	_, snaps, err := j.resultNow()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_ = metrics.WriteSnapshotsCSV(w, snaps)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[JobState]int{}
	for _, j := range s.order {
		counts[j.stateNow()]++
	}
	depth, capacity := len(s.queue), cap(s.queue)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
		"queue":    map[string]int{"depth": depth, "capacity": capacity},
		"jobs": map[string]int{
			"queued": counts[JobQueued], "running": counts[JobRunning],
			"done": counts[JobDone], "failed": counts[JobFailed],
		},
	})
}

// handleMetrics renders the server's own counters plus the latest
// virtual-time snapshot of every job (tagged job="<id>") as Prometheus
// text. Job snapshots are merged family-by-family so a metric name
// appears exactly once, which is what the text format requires.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	server := s.reg.Snapshot()
	var groups []obs.Labeled
	for _, j := range s.order {
		if snap := j.snapshotForMetrics(); snap != nil {
			groups = append(groups, obs.Labeled{Value: j.id, Snap: snap})
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = server.WriteProm(w)
	if len(groups) > 0 {
		_ = obs.Merge("job", groups).WriteProm(w)
	}
}

// execute runs one job to completion (the default Server.run).
func (s *Server) execute(j *Job) {
	var (
		res *JobResult
		err error
	)
	switch j.kind {
	case "sweep":
		res, err = s.executeSweep(j)
	default:
		res, err = s.executeScenario(j)
	}
	j.finish(res, err)
}

func (s *Server) executeScenario(j *Job) (*JobResult, error) {
	sp, err := resolveSpec(j.req)
	if err != nil {
		return nil, err
	}
	interval := j.req.SampleInterval.D()
	if interval <= 0 {
		interval = s.cfg.SampleInterval
	}
	reg := obs.NewRegistry()
	start := time.Now()
	prevWall := start
	var prevVirt, prevEvents float64
	opt := scenario.Options{
		Seed:           j.req.Seed,
		Obs:            reg,
		SampleInterval: interval,
		OnSample: func(at sim.Time, snap *obs.Snapshot) {
			now := time.Now()
			wall := now.Sub(prevWall).Seconds()
			events := snap.Total("p2plab_sim_events_total")
			p := SamplePayload{
				VirtualS: at.Seconds(),
				WallMS:   now.Sub(start).Milliseconds(),
				Metrics:  snap,
			}
			if wall > 0 {
				p.EventsPerSec = (events - prevEvents) / wall
				p.VTWallRatio = (at.Seconds() - prevVirt) / wall
			}
			prevWall, prevVirt, prevEvents = now, at.Seconds(), events
			j.publishSample(p)
		},
	}
	res, err := scenario.Run(sp, opt)
	if err != nil {
		return nil, err
	}
	kernel, net := res.Kernel, res.Net
	out := &JobResult{
		Kind:          "scenario",
		Scenario:      res.Spec.Name,
		WallMS:        time.Since(start).Milliseconds(),
		EndedVirtualS: res.EndedAt.Seconds(),
		Done:          res.Done,
		Total:         res.Total,
		Kernel:        &kernel,
		Net:           &net,
		Labels:        res.Snapshot.Labels,
		Values:        res.Snapshot.Values,
		Counters:      res.Snapshot.Counters,
	}
	j.mu.Lock()
	j.csvSnaps = []*metrics.Snapshot{res.Snapshot}
	// Publish the final registry state so /metrics reflects the
	// completed run even when the horizon fell between samples.
	j.lastSample = reg.Snapshot()
	j.lastVirtualS = res.EndedAt.Seconds()
	j.mu.Unlock()
	return out, nil
}

func (s *Server) executeSweep(j *Job) (*JobResult, error) {
	g, err := buildGrid(j.req.Sweep)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := exp.RunSweepProgress(g, j.req.Sweep.Workers, func(completed, total int, c exp.CellResult) {
		p := ProgressPayload{
			Completed: completed, Total: total,
			Cell: c.Cell.String(), WallMS: c.Wall.Milliseconds(),
		}
		if c.Err != nil {
			p.Err = c.Err.Error()
		}
		j.publish("progress", p)
	})
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Kind:   "sweep",
		WallMS: time.Since(start).Milliseconds(),
		Failed: res.Failed,
	}
	for _, c := range res.Cells {
		cs := CellSummary{Cell: c.Cell.String(), WallMS: c.Wall.Milliseconds()}
		if c.Err != nil {
			cs.Err = c.Err.Error()
		}
		out.Cells = append(out.Cells, cs)
	}
	j.mu.Lock()
	j.csvSnaps = res.Snapshots()
	j.mu.Unlock()
	return out, nil
}
