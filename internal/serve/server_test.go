package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, base string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return out
}

// sseEvent is one decoded frame of an /events stream.
type sseEvent struct {
	Type string
	Data map[string]any
}

// streamEvents reads the SSE stream until the job reaches a terminal
// frame ("result" or a failed "state") or the deadline passes.
func streamEvents(t *testing.T, url string, deadline time.Duration) []sseEvent {
	t.Helper()
	client := &http.Client{Timeout: deadline}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = sseEvent{Type: strings.TrimPrefix(line, "event: ")}
		case strings.HasPrefix(line, "data: "):
			var frame struct {
				Type string         `json:"type"`
				Data map[string]any `json:"data"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame); err != nil {
				t.Fatalf("bad SSE data line: %v", err)
			}
			cur.Data = frame.Data
		case line == "":
			if cur.Type == "" {
				continue
			}
			evs = append(evs, cur)
			if cur.Type == "result" {
				return evs
			}
			if cur.Type == "state" {
				if st, _ := cur.Data["state"].(string); st == string(JobFailed) {
					return evs
				}
			}
			cur = sseEvent{}
		}
	}
	return evs
}

// TestServeScenarioEndToEnd is the serve-mode smoke test: submit the
// flash-crowd scenario over HTTP, stream its events to completion,
// and check the result, CSV and /metrics views.
func TestServeScenarioEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, sub := postJob(t, ts.URL, `{"scenario": "flash-crowd", "sample_interval": "30s"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", code, sub)
	}
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", sub)
	}

	evs := streamEvents(t, ts.URL+"/api/v1/jobs/"+id+"/events", 120*time.Second)
	var samples, results int
	var lastSample map[string]any
	for _, ev := range evs {
		switch ev.Type {
		case "sample":
			samples++
			lastSample = ev.Data
		case "result":
			results++
		}
	}
	if results != 1 {
		t.Fatalf("stream ended without a result frame (%d events)", len(evs))
	}
	if samples == 0 {
		t.Fatal("no sample frames streamed")
	}
	// A sample carries the virtual timestamp and the live registry state.
	if v, _ := lastSample["virtual_s"].(float64); v <= 0 {
		t.Errorf("sample virtual_s = %v", lastSample["virtual_s"])
	}
	if lastSample["metrics"] == nil {
		t.Error("sample has no metrics snapshot")
	}

	// Inspect view.
	info := getJSON(t, ts.URL+"/api/v1/jobs/"+id, http.StatusOK)
	if info["state"] != string(JobDone) {
		t.Fatalf("job state = %v", info["state"])
	}
	list := getJSON(t, ts.URL+"/api/v1/jobs", http.StatusOK)
	if jobs, _ := list["jobs"].([]any); len(jobs) != 1 {
		t.Fatalf("list = %v", list)
	}

	// Result: the scenario ran and moved traffic.
	res := getJSON(t, ts.URL+"/api/v1/jobs/"+id+"/result", http.StatusOK)
	if res["scenario"] != "flash-crowd" {
		t.Errorf("result scenario = %v", res["scenario"])
	}
	if done, _ := res["done"].(float64); done <= 0 {
		t.Errorf("result done = %v", res["done"])
	}
	net, _ := res["net"].(map[string]any)
	if net == nil {
		t.Fatal("result has no net stats")
	}
	if sent, _ := net["MessagesSent"].(float64); sent <= 0 {
		t.Errorf("net.MessagesSent = %v", net["MessagesSent"])
	}

	// CSV export has a header plus at least one row.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	_, _ = csv.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(strings.Split(strings.TrimSpace(csv.String()), "\n")) < 2 {
		t.Errorf("csv = %d:\n%s", resp.StatusCode, csv.String())
	}

	// /metrics: server counters plus the job's final snapshot, tagged
	// with the job id, in Prometheus text format.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	_, _ = prom.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	text := prom.String()
	for _, want := range []string{
		"p2plab_server_jobs_submitted_total 1",
		"p2plab_server_jobs_completed_total 1",
		"# TYPE p2plab_net_messages_sent_total counter",
		`p2plab_net_messages_sent_total{job="` + id + `"} `,
		`p2plab_sim_events_total{job="` + id + `"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, text)
		}
	}

	// Health reflects the finished job.
	health := getJSON(t, ts.URL+"/health", http.StatusOK)
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}
	jobs, _ := health["jobs"].(map[string]any)
	if done, _ := jobs["done"].(float64); done != 1 {
		t.Errorf("health jobs = %v", jobs)
	}
}

// TestServeBoundedQueue fills the queue with jobs held by a blocking
// runner and checks that overflow submissions get 503 while every
// admitted job still runs to completion after release.
func TestServeBoundedQueue(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	firstRunning := make(chan struct{})
	var firstOnce sync.Once
	var ran sync.WaitGroup
	s.run = func(j *Job) {
		firstOnce.Do(func() { close(firstRunning) })
		<-release
		j.finish(&JobResult{Kind: j.kind}, nil)
		ran.Done()
	}

	// Worker capacity 1 + queue depth 2 = 3 admitted jobs; the 4th and
	// 5th submissions must bounce. The first submission may sit in the
	// queue briefly before the worker picks it up, so allow one retry
	// round for the expected 202 count.
	body := `{"scenario": "flash-crowd"}`
	accepted, rejected := 0, 0
	for i := 0; i < 5; i++ {
		code, out := postJob(t, ts.URL, body)
		switch code {
		case http.StatusAccepted:
			accepted++
			ran.Add(1)
		case http.StatusServiceUnavailable:
			if msg, _ := out["error"].(string); !strings.Contains(msg, "queue full") {
				t.Errorf("503 body = %v", out)
			}
			rejected++
		default:
			t.Fatalf("submit %d = %d", i, code)
		}
		if i == 0 {
			// Wait until the worker has dequeued the first job (it
			// parks in the blocking runner) so the admission
			// arithmetic below is deterministic.
			<-firstRunning
		}
	}
	if accepted != 3 || rejected != 2 {
		t.Fatalf("accepted %d rejected %d, want 3/2", accepted, rejected)
	}

	// Queue-full metrics and health agree.
	prom := getText(t, ts.URL+"/metrics")
	if !strings.Contains(prom, "p2plab_server_jobs_rejected_total 2") {
		t.Errorf("rejected counter missing:\n%s", prom)
	}

	close(release)
	// The runner calls finish before ran.Done, so after Wait returns
	// every admitted job's state is JobDone — no polling needed.
	ran.Wait()
	h := getJSON(t, ts.URL+"/health", http.StatusOK)
	jobs2, _ := h["jobs"].(map[string]any)
	if done, _ := jobs2["done"].(float64); done != 3 {
		t.Fatalf("health done = %v, want 3", done)
	}
}

// TestServeSweepJob runs a tiny sweep over HTTP and checks per-cell
// progress frames and the aggregate result.
func TestServeSweepJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, sub := postJob(t, ts.URL, `{
		"kind": "sweep",
		"sweep": {
			"experiment": "sched",
			"peers": [4, 8],
			"seeds": [1, 2],
			"workers": 2,
			"horizon": "10m"
		}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", code, sub)
	}
	id := sub["id"].(string)

	evs := streamEvents(t, ts.URL+"/api/v1/jobs/"+id+"/events", 120*time.Second)
	progress := 0
	for _, ev := range evs {
		if ev.Type == "progress" {
			progress++
			if total, _ := ev.Data["total"].(float64); total != 4 {
				t.Errorf("progress total = %v", ev.Data["total"])
			}
		}
	}
	if progress != 4 {
		t.Fatalf("got %d progress frames, want 4", progress)
	}

	res := getJSON(t, ts.URL+"/api/v1/jobs/"+id+"/result", http.StatusOK)
	if cells, _ := res["cells"].([]any); len(cells) != 4 {
		t.Fatalf("result cells = %v", res["cells"])
	}
	if failed, _ := res["failed"].(float64); failed != 0 {
		t.Fatalf("failed cells: %v", res["failed"])
	}
}

// TestServeValidation covers the submission-time error paths.
func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},                               // neither scenario nor spec
		{`{"scenario": "no-such-scenario"}`, http.StatusBadRequest}, // unknown corpus name
		{`{"kind": "sweep"}`, http.StatusBadRequest},                // sweep without grid
		{`{"kind": "sweep", "sweep": {"experiment": "bogus"}}`, http.StatusBadRequest},
		{`{"kind": "teleport"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _ := postJob(t, ts.URL, c.body); code != c.want {
			t.Errorf("submit %q = %d, want %d", c.body, code, c.want)
		}
	}

	getJSON(t, ts.URL+"/api/v1/jobs/nope", http.StatusNotFound)
	getJSON(t, ts.URL+"/api/v1/jobs/nope/result", http.StatusNotFound)
}

// TestServeResultConflict checks that /result is a 409 until the job
// finishes.
func TestServeResultConflict(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	jobCh := make(chan *Job, 1)
	s.run = func(j *Job) {
		jobCh <- j
		<-release
		j.finish(&JobResult{Kind: j.kind}, nil)
	}
	code, sub := postJob(t, ts.URL, `{"scenario": "flash-crowd"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	id := sub["id"].(string)
	getJSON(t, ts.URL+"/api/v1/jobs/"+id+"/result", http.StatusConflict)
	j := <-jobCh
	close(release)
	<-j.done // finish closes it; no state polling
	h := getJSON(t, ts.URL+"/api/v1/jobs/"+id, http.StatusOK)
	if h["state"] != string(JobDone) {
		t.Fatalf("state = %v, want done", h["state"])
	}
	getJSON(t, ts.URL+"/api/v1/jobs/"+id+"/result", http.StatusOK)
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	_, _ = b.ReadFrom(resp.Body)
	return b.String()
}
