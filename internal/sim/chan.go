package sim

import "errors"

// ErrClosed is returned when sending on or receiving from a closed Chan
// once it has drained.
var ErrClosed = errors.New("sim: channel closed")

// Chan is a virtual-time message channel with an optional capacity bound,
// analogous to a Go channel but scheduled by the kernel. A capacity of 0
// means unbounded (senders never block).
//
// The buffer is a growable ring: the earlier sliding-slice version
// (buf = buf[1:] on receive) marched the slice down its backing array,
// forcing a fresh allocation every len(buf) operations even at a steady
// queue depth of one — measurably the second-largest allocation source
// in large swarm runs.
//
// All operations require the execution token (they are only meaningful
// from simulated goroutines or event callbacks), so the ring and flags
// are accessed without locking — Send/Recv are the per-message hot
// path, and the former mutex round-trips were a measurable share of
// event cost at swarm scale. On unbounded channels (cap == 0) nothing
// ever waits on notFull, so those signals are skipped entirely.
type Chan[T any] struct {
	k      *Kernel
	buf    []T // ring storage; element i is buf[(head+i)%len(buf)]
	head   int // index of the oldest element
	n      int // number of buffered elements
	cap    int
	closed bool

	notEmpty *Cond
	notFull  *Cond
}

// NewChan returns a channel bound to kernel k. capacity 0 = unbounded.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	return &Chan[T]{
		k:        k,
		cap:      capacity,
		notEmpty: NewCond(k),
		notFull:  NewCond(k),
	}
}

// push appends v to the ring, growing the storage when full.
//
//p2p:token
func (c *Chan[T]) push(v T) {
	if c.n == len(c.buf) {
		grown := make([]T, max(4, 2*len(c.buf)))
		for i := 0; i < c.n; i++ {
			grown[i] = c.buf[(c.head+i)%len(c.buf)]
		}
		c.buf, c.head = grown, 0
	}
	c.buf[(c.head+c.n)%len(c.buf)] = v
	c.n++
}

// pop removes and returns the oldest element, zeroing its slot so the
// ring does not pin dead payloads. Callers guarantee c.n > 0.
//
//p2p:token
func (c *Chan[T]) pop() T {
	var zero T
	v := c.buf[c.head]
	c.buf[c.head] = zero
	c.head = (c.head + 1) % len(c.buf)
	c.n--
	return v
}

// Len reports the number of buffered items.
func (c *Chan[T]) Len() int { return c.n }

// Send enqueues v, parking while the channel is full. It returns
// ErrClosed if the channel is (or becomes) closed.
func (c *Chan[T]) Send(p *Proc, v T) error {
	for {
		if c.closed {
			return ErrClosed
		}
		if c.cap == 0 || c.n < c.cap {
			c.push(v)
			c.notEmpty.Signal()
			return nil
		}
		c.notFull.Wait(p)
	}
}

// TrySend enqueues v without blocking; it reports whether the item was
// accepted (false when full or closed).
//
//p2p:token
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed || (c.cap > 0 && c.n >= c.cap) {
		return false
	}
	c.push(v)
	c.notEmpty.Signal()
	return true
}

// TryRecv dequeues the oldest item without blocking; ok=false when the
// buffer is empty.
//
//p2p:token
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if c.n == 0 {
		return v, false
	}
	v = c.pop()
	if c.cap > 0 {
		c.notFull.Signal()
	}
	return v, true
}

// Recv dequeues the oldest item, parking while the channel is empty.
// It returns ErrClosed once the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (T, error) {
	var zero T
	for {
		if c.n > 0 {
			v := c.pop()
			if c.cap > 0 {
				c.notFull.Signal()
			}
			return v, nil
		}
		if c.closed {
			return zero, ErrClosed
		}
		c.notEmpty.Wait(p)
	}
}

// RecvTimeout is Recv with a virtual-time deadline. ok=false with a nil
// error means the deadline expired. d <= 0 waits forever.
func (c *Chan[T]) RecvTimeout(p *Proc, d Duration) (v T, ok bool, err error) {
	deadline := p.Now().Add(d)
	for {
		if c.n > 0 {
			v = c.pop()
			if c.cap > 0 {
				c.notFull.Signal()
			}
			return v, true, nil
		}
		if c.closed {
			return v, false, ErrClosed
		}
		if d <= 0 {
			c.notEmpty.Wait(p)
			continue
		}
		remaining := deadline.Sub(p.Now())
		if remaining <= 0 {
			return v, false, nil
		}
		if !c.notEmpty.WaitTimeout(p, remaining) {
			return v, false, nil
		}
	}
}

// Close marks the channel closed. Buffered items remain receivable;
// blocked receivers and senders are released.
//
//p2p:token
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.notEmpty.Broadcast()
	if c.cap > 0 {
		c.notFull.Broadcast()
	}
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }
