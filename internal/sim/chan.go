package sim

import "errors"

// ErrClosed is returned when sending on or receiving from a closed Chan
// once it has drained.
var ErrClosed = errors.New("sim: channel closed")

// Chan is a virtual-time message channel with an optional capacity bound,
// analogous to a Go channel but scheduled by the kernel. A capacity of 0
// means unbounded (senders never block).
type Chan[T any] struct {
	k        *Kernel
	buf      []T
	cap      int
	closed   bool
	notEmpty *Cond
	notFull  *Cond
}

// NewChan returns a channel bound to kernel k. capacity 0 = unbounded.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	return &Chan[T]{
		k:        k,
		cap:      capacity,
		notEmpty: NewCond(k),
		notFull:  NewCond(k),
	}
}

// Len reports the number of buffered items.
func (c *Chan[T]) Len() int {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	return len(c.buf)
}

// Send enqueues v, parking while the channel is full. It returns
// ErrClosed if the channel is (or becomes) closed.
func (c *Chan[T]) Send(p *Proc, v T) error {
	for {
		c.k.mu.Lock()
		if c.closed {
			c.k.mu.Unlock()
			return ErrClosed
		}
		if c.cap == 0 || len(c.buf) < c.cap {
			c.buf = append(c.buf, v)
			c.k.mu.Unlock()
			c.notEmpty.Signal()
			return nil
		}
		c.k.mu.Unlock()
		c.notFull.Wait(p)
	}
}

// TrySend enqueues v without blocking; it reports whether the item was
// accepted (false when full or closed).
func (c *Chan[T]) TrySend(v T) bool {
	c.k.mu.Lock()
	if c.closed || (c.cap > 0 && len(c.buf) >= c.cap) {
		c.k.mu.Unlock()
		return false
	}
	c.buf = append(c.buf, v)
	c.k.mu.Unlock()
	c.notEmpty.Signal()
	return true
}

// TryRecv dequeues the oldest item without blocking; ok=false when the
// buffer is empty.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	c.k.mu.Lock()
	if len(c.buf) == 0 {
		c.k.mu.Unlock()
		return v, false
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.k.mu.Unlock()
	c.notFull.Signal()
	return v, true
}

// Recv dequeues the oldest item, parking while the channel is empty.
// It returns ErrClosed once the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (T, error) {
	var zero T
	for {
		c.k.mu.Lock()
		if len(c.buf) > 0 {
			v := c.buf[0]
			c.buf = c.buf[1:]
			c.k.mu.Unlock()
			c.notFull.Signal()
			return v, nil
		}
		if c.closed {
			c.k.mu.Unlock()
			return zero, ErrClosed
		}
		c.k.mu.Unlock()
		c.notEmpty.Wait(p)
	}
}

// RecvTimeout is Recv with a virtual-time deadline. ok=false with a nil
// error means the deadline expired. d <= 0 waits forever.
func (c *Chan[T]) RecvTimeout(p *Proc, d Duration) (v T, ok bool, err error) {
	deadline := p.Now().Add(d)
	for {
		c.k.mu.Lock()
		if len(c.buf) > 0 {
			v = c.buf[0]
			c.buf = c.buf[1:]
			c.k.mu.Unlock()
			c.notFull.Signal()
			return v, true, nil
		}
		if c.closed {
			c.k.mu.Unlock()
			return v, false, ErrClosed
		}
		c.k.mu.Unlock()
		if d <= 0 {
			c.notEmpty.Wait(p)
			continue
		}
		remaining := deadline.Sub(p.Now())
		if remaining <= 0 {
			return v, false, nil
		}
		if !c.notEmpty.WaitTimeout(p, remaining) {
			return v, false, nil
		}
	}
}

// Close marks the channel closed. Buffered items remain receivable;
// blocked receivers and senders are released.
func (c *Chan[T]) Close() {
	c.k.mu.Lock()
	if c.closed {
		c.k.mu.Unlock()
		return
	}
	c.closed = true
	c.k.mu.Unlock()
	c.notEmpty.Broadcast()
	c.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	return c.closed
}
