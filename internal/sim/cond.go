package sim

// Cond is a virtual-time condition variable: processes park on it with
// Wait and are released in FIFO order by Signal or all at once by
// Broadcast. Unlike sync.Cond there is no associated mutex — simulated
// goroutines already execute one at a time, so state guarded by a Cond
// can be read and written without further locking.
type Cond struct {
	k       *Kernel
	waiters []*condWaiter
}

type condWaiter struct {
	t        *task
	fired    bool // woken by Signal/Broadcast (vs timeout)
	timedOut bool
	timer    *Event
}

// NewCond returns a condition variable bound to kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks the calling process until Signal or Broadcast releases it.
func (c *Cond) Wait(p *Proc) { c.wait(p, 0) }

// WaitTimeout parks the calling process until it is signalled or d of
// virtual time elapses. It reports whether the wakeup was a signal
// (true) rather than a timeout (false). d <= 0 waits forever.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool { return c.wait(p, d) }

func (c *Cond) wait(p *Proc, d Duration) bool {
	k := c.k
	w := &condWaiter{t: p.t}
	k.mu.Lock()
	c.waiters = append(c.waiters, w)
	if d > 0 {
		w.timer = k.scheduleLocked(k.now.Add(d), func() {
			k.mu.Lock()
			defer k.mu.Unlock()
			if w.fired {
				return
			}
			w.fired = true
			w.timedOut = true
			c.removeLocked(w)
			k.wakeLocked(w.t)
		})
	}
	k.mu.Unlock()
	p.park()
	return !w.timedOut
}

// removeLocked unlinks w from the waiter list. Callers hold k.mu.
func (c *Cond) removeLocked(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Signal releases the longest-waiting process, if any. It may be called
// from simulated goroutines or from event callbacks.
func (c *Cond) Signal() {
	k := c.k
	k.mu.Lock()
	c.signalLocked()
	k.mu.Unlock()
}

func (c *Cond) signalLocked() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.fired {
			continue
		}
		w.fired = true
		if w.timer != nil {
			w.timer.ev.dead = true
		}
		c.k.wakeLocked(w.t)
		return
	}
}

// Broadcast releases every waiting process.
func (c *Cond) Broadcast() {
	k := c.k
	k.mu.Lock()
	for len(c.waiters) > 0 {
		c.signalLocked()
	}
	k.mu.Unlock()
}

// Len reports how many processes are currently parked on the Cond.
func (c *Cond) Len() int {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	return len(c.waiters)
}
