package sim

// Cond is a virtual-time condition variable: processes park on it with
// Wait and are released in FIFO order by Signal or all at once by
// Broadcast. Unlike sync.Cond there is no associated mutex — simulated
// goroutines already execute one at a time, so state guarded by a Cond
// can be read and written without further locking.
//
// Every Cond operation requires the execution token (a simulated
// goroutine or an event callback); the waiter list is kernel state
// under the serialization discipline documented on Kernel, so no
// operation here touches k.mu.
type Cond struct {
	k       *Kernel
	waiters []*condWaiter
}

// condWaiter is one task's registration on a Cond. A task parks on at
// most one Cond at a time, so the waiter is embedded in the task struct
// and reused across waits instead of being allocated per call — Wait is
// the park path of every Chan operation and was a top-ten allocation
// source in swarm runs. The timer is tracked as a raw (event, gen) pair
// rather than an Event handle for the same reason.
type condWaiter struct {
	t        *task
	c        *Cond // cond currently waited on; for timeout removal
	fired    bool  // woken by Signal/Broadcast (vs timeout)
	timedOut bool
	timerEv  *event
	timerGen uint64
	// timeoutFn is the timer callback, bound once per task on the first
	// timed wait and reused afterwards.
	timeoutFn func()
}

// NewCond returns a condition variable bound to kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks the calling process until Signal or Broadcast releases it.
func (c *Cond) Wait(p *Proc) { c.wait(p, 0) }

// WaitTimeout parks the calling process until it is signalled or d of
// virtual time elapses. It reports whether the wakeup was a signal
// (true) rather than a timeout (false). d <= 0 waits forever.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool { return c.wait(p, d) }

func (c *Cond) wait(p *Proc, d Duration) bool {
	k := c.k
	w := &p.t.cw
	w.t = p.t
	w.c = c
	w.fired, w.timedOut, w.timerEv = false, false, nil
	c.waiters = append(c.waiters, w)
	if d > 0 {
		if w.timeoutFn == nil {
			// Timer callbacks run holding the execution token, so the
			// waiter bookkeeping needs no lock either.
			w.timeoutFn = func() {
				if w.fired {
					return
				}
				w.fired = true
				w.timedOut = true
				w.c.remove(w)
				k.wake(w.t)
			}
		}
		ev := k.alloc(k.now.Add(d), w.timeoutFn)
		k.events.push(ev)
		w.timerEv, w.timerGen = ev, ev.gen
	}
	p.park()
	return !w.timedOut
}

// remove unlinks w from the waiter list.
//
//p2p:token
func (c *Cond) remove(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Signal releases the longest-waiting process, if any. It may be called
// from simulated goroutines or from event callbacks.
//
//p2p:token
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.fired {
			continue
		}
		w.fired = true
		// A live pending timer (gen still matches) must not fire for a
		// waiter that has been signalled — and possibly reused since.
		if w.timerEv != nil && w.timerEv.gen == w.timerGen {
			w.timerEv.dead = true
		}
		c.k.wake(w.t)
		return
	}
}

// Broadcast releases every waiting process.
//
//p2p:token
func (c *Cond) Broadcast() {
	for len(c.waiters) > 0 {
		c.Signal()
	}
}

// Len reports how many processes are currently parked on the Cond.
func (c *Cond) Len() int { return len(c.waiters) }
