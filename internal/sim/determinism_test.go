package sim_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// determinismWorkload is a deliberately messy mix of everything the
// event queue must order: parked goroutines with tie-heavy sleep
// durations, timers that get cancelled and rescheduled mid-run, and
// far-future events that fall off the horizon. Every observable step is
// written to a trace log.
func determinismWorkload(kind sim.QueueKind, seed int64) (string, sim.Stats, error) {
	k := sim.NewWithQueue(seed, kind)
	lg := trace.New(0)

	// Tie-heavy sleepers: coarse sleep quanta force many same-instant
	// wakeups whose relative order is pure (at, seq) FIFO.
	for i := 0; i < 8; i++ {
		k.Go(fmt.Sprintf("worker-%d", i), func(p *sim.Proc) {
			for j := 0; j < 60; j++ {
				p.Sleep(time.Duration(p.Rand().Intn(4)) * time.Millisecond)
				lg.Add(p.Now(), "step", p.Name(), "j=%d", j)
			}
		})
	}

	// Timers scheduled on a coarse lattice (more ties), a third of which
	// are later cancelled and a third rescheduled.
	var timers []*sim.Event
	for i := 0; i < 48; i++ {
		i := i
		at := sim.Time(i%6) * sim.Time(20*time.Millisecond)
		timers = append(timers, k.At(at, func() {
			lg.Add(k.Now(), "timer", "", "i=%d", i)
		}))
	}
	k.After(30*time.Millisecond, func() {
		lg.Add(k.Now(), "perturb", "", "cancel+reschedule")
		for i, ev := range timers {
			switch i % 3 {
			case 0:
				ev.Cancel()
			case 1:
				ev.Reschedule(k.Now().Add(time.Duration(i) * time.Millisecond))
			}
		}
	})

	// Far-future events, past the horizon: they must be discarded
	// without ever firing, under either queue.
	for i := 0; i < 16; i++ {
		i := i
		k.At(sim.Time(400*24*time.Hour)+sim.Time(i), func() {
			lg.Add(k.Now(), "far", "", "i=%d", i)
		})
	}

	err := k.RunUntil(sim.Time(5 * time.Second))
	var buf bytes.Buffer
	if rerr := lg.Render(&buf); rerr != nil {
		return "", sim.Stats{}, rerr
	}
	return buf.String(), k.Snapshot(), err
}

// TestQueueSwapPreservesDeterminism is the property test backing the
// calendar-queue swap: for any fixed seed, the event-delivery order
// (and hence the rendered trace and kernel stats) must be byte-identical
// between the reference heap and the calendar queue.
func TestQueueSwapPreservesDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		heapTrace, heapStats, err := determinismWorkload(sim.QueueHeap, seed)
		if err != nil {
			t.Fatalf("seed %d: heap run: %v", seed, err)
		}
		calTrace, calStats, err := determinismWorkload(sim.QueueCalendar, seed)
		if err != nil {
			t.Fatalf("seed %d: calendar run: %v", seed, err)
		}
		if heapStats != calStats {
			t.Errorf("seed %d: stats diverge: heap %+v, calendar %+v", seed, heapStats, calStats)
		}
		if heapTrace != calTrace {
			t.Errorf("seed %d: traces diverge (heap %d bytes, calendar %d bytes)",
				seed, len(heapTrace), len(calTrace))
			reportFirstDiff(t, heapTrace, calTrace)
		}
		if !bytes.Contains([]byte(heapTrace), []byte("perturb")) {
			t.Fatalf("seed %d: workload never reached the cancel/reschedule phase", seed)
		}
		if bytes.Contains([]byte(heapTrace), []byte("far")) {
			t.Fatalf("seed %d: far-future event fired inside the horizon", seed)
		}
	}
}

// TestSameKindRunsAreIdentical is the baseline reproducibility check:
// the same seed and queue kind give the same bytes run over run.
func TestSameKindRunsAreIdentical(t *testing.T) {
	for _, kind := range []sim.QueueKind{sim.QueueHeap, sim.QueueCalendar} {
		a, as, err := determinismWorkload(kind, 99)
		if err != nil {
			t.Fatal(err)
		}
		b, bs, err := determinismWorkload(kind, 99)
		if err != nil {
			t.Fatal(err)
		}
		if a != b || as != bs {
			t.Errorf("queue kind %d: repeated run diverged", kind)
		}
	}
}

func reportFirstDiff(t *testing.T, a, b string) {
	t.Helper()
	al := bytes.Split([]byte(a), []byte("\n"))
	bl := bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Logf("first divergence at line %d:\n  heap:     %s\n  calendar: %s", i+1, al[i], bl[i])
			return
		}
	}
	t.Logf("one trace is a prefix of the other (%d vs %d lines)", len(al), len(bl))
}
