//lint:allow kernelgo this file IS the concurrency boundary: the run-loop/park/wake machinery that native go/chan/sync exist to implement; everything above it uses sim primitives

// Package sim implements a deterministic virtual-time simulation kernel.
//
// The kernel multiplexes many simulated processes (real goroutines) onto a
// single logical timeline. Exactly one simulated goroutine executes at any
// real instant; the virtual clock advances only when every simulated
// goroutine is parked. This yields bit-for-bit reproducible runs for a
// fixed seed, which is the property the P2PLab paper calls "allowing
// reproduction of experiments".
//
// The two core abstractions are:
//
//   - Kernel: the event queue, the clock and the run loop.
//   - Proc: the handle a simulated goroutine uses to block (Sleep, Wait),
//     spawn children (Go) and observe time (Now).
//
// Blocking primitives (Cond, Chan, Semaphore) are built on top of the
// park/wake mechanism and are safe to use only from simulated goroutines.
//
// Determinism is a per-kernel property: one kernel is one serialized
// timeline, and nothing inside it may run concurrently. Experiment
// sweeps therefore parallelize across kernels — many independent
// Kernel instances on separate OS threads (see repro/internal/exp's
// sweep engine) — never within one.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Time is an absolute instant on the virtual timeline, in nanoseconds
// since the start of the simulation.
type Time int64

// Duration re-exports time.Duration for callers' convenience.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the instant expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback. Callbacks run inside the kernel loop and
// must not block; they typically wake parked tasks or schedule more events.
//
// event structs are pooled on a per-kernel free list: after dispatch (or
// a cancelled event's lazy removal) the struct is recycled for the next
// schedule. gen distinguishes incarnations so a stale Event handle held
// across recycling can no longer cancel or reschedule the new occupant.
type event struct {
	at      Time
	seq     uint64 // FIFO tie-break for events at the same instant
	fn      func()
	next    *event // calendar-queue slot chain / free-list link
	tie     *event // calendar queue: next event at the same instant
	tieTail *event // calendar queue: last event of a slot head's tie run
	idx     int    // heap index (QueueHeap only)
	gen     uint64 // incarnation counter, bumped on recycle
	dead    bool   // cancelled; skipped (and recycled) at dispatch
	queued  bool   // currently in the timer queue
}

// task is the kernel-side state of one simulated goroutine.
type task struct {
	name    string
	id      uint64        // spawn order; fixes the unwind order at kill time
	wake    chan struct{} // capacity 1; token grant
	blocked bool          // parked, waiting for a wake
	exited  bool
	killed  bool       // task should unwind instead of resuming
	cw      condWaiter // reusable Cond registration (one park at a time)
}

// killedPanic is the sentinel used to unwind tasks that are still parked
// when a run ends (horizon reached, Stop called, or deadlock reported).
type killedPanic struct{}

// Kernel is a deterministic discrete-event simulation kernel.
// Create one with New, spawn the root process with Go, then call Run.
//
// # Serialization discipline
//
// All kernel state below mu is owned by whoever holds the execution
// token: the one running simulated goroutine, the event callback the
// scheduler is dispatching, or the Run goroutine while no task runs.
// Token handoffs (wake-channel sends, the running/cond handshake with
// Run) each establish a happens-before edge, so token holders read and
// write this state without touching mu at all — on the per-message hot
// paths (Schedule, Chan, Cond, park/wake) the elided lock round-trips
// are a measurable share of event cost at 10k-peer scale.
//
// mu still guards the cold boundary where true concurrency can exist:
// the running/cond handshake itself, spawn (Go), Stop, the cancellable
// At/After/Event handles, and the external observers Now/Snapshot/
// QueueResizes (meaningful when the kernel is idle). Helpers suffixed
// "Locked" require mu; everything else requires the token.
type Kernel struct {
	mu   sync.Mutex
	cond *sync.Cond // signalled when the running task yields

	now     Time
	seq     uint64
	events  timerQueue
	free    *event  // recycled event structs
	ready   []*task // runnable tasks, FIFO
	running bool    // a task currently holds the execution token
	nLive   int     // spawned and not yet exited
	nBlock  int     // parked tasks
	blocked map[*task]struct{}

	rng     *rand.Rand
	stopped bool
	halted  bool // a task-side scheduler hit the horizon; Run tears down
	limit   Time // 0 = no limit
	stats   Stats
}

// Stats counts kernel activity over a run; useful for throughput
// benchmarks and for validating experiment scale.
type Stats struct {
	Events   uint64 // callbacks dispatched
	Switches uint64 // task activations
	Spawns   uint64 // tasks created
}

// New returns a kernel whose random source is seeded with seed.
// The same seed and workload reproduce the same run exactly.
func New(seed int64) *Kernel { return NewWithQueue(seed, QueueCalendar) }

// NewWithQueue returns a kernel using the given event-queue
// implementation. Both kinds dispatch in identical order; QueueHeap
// exists for differential tests and benchmarks against QueueCalendar.
func NewWithQueue(seed int64, kind QueueKind) *Kernel {
	k := &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[*task]struct{}),
	}
	switch kind {
	case QueueHeap:
		k.events = &heapQueue{}
	default:
		k.events = newCalQueue()
	}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// Now returns the current virtual time. Safe from any goroutine.
func (k *Kernel) Now() Time {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// LoopNow returns the current virtual time without synchronization.
// It is safe only from code holding the execution token — a running
// simulated goroutine or an event callback dispatched by the loop —
// because the clock is only written by the token holder and every
// prior write happened-before the token grant. Goroutines outside the
// simulation (observers, HTTP handlers) must use Now. On the
// per-message fast paths the mutex round-trip this elides is a
// measurable share of event cost.
//
//p2p:token
func (k *Kernel) LoopNow() Time { return k.now }

// Stats returns a snapshot of kernel activity counters.
func (k *Kernel) Snapshot() Stats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.stats
}

// QueueResizes returns how many times the event queue restructured
// itself (calendar-queue rebuilds; always 0 under QueueHeap). Kept out
// of Stats on purpose: golden-trace digests include Stats and must be
// identical across queue kinds, while this counter is queue-specific.
func (k *Kernel) QueueResizes() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.events.resizes()
}

// Rand returns the kernel's deterministic random source. Because simulated
// goroutines execute one at a time, sharing one source is race-free and
// deterministic.
//
//p2p:token
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Go spawns a new simulated goroutine executing fn. It may be called
// before Run (to create the initial population) or from a running
// simulated goroutine. The child starts at the current virtual time,
// after the caller next yields.
//
//p2p:tokenentry spawn bookkeeping is under k.mu; the wrapper goroutine runs fn only after the scheduler grants the token via t.wake
//p2p:tokenarg
func (k *Kernel) Go(name string, fn func(p *Proc)) {
	t := &task{name: name, wake: make(chan struct{}, 1)}
	p := &Proc{k: k, t: t}
	k.mu.Lock()
	k.nLive++
	k.stats.Spawns++
	t.id = k.stats.Spawns
	k.ready = append(k.ready, t)
	k.mu.Unlock()
	go func() {
		<-t.wake // wait for the scheduler to grant the token
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok {
					panic(r) // real panic from user code: propagate
				}
			}
			k.exit(t)
		}()
		if t.killed {
			return
		}
		fn(p)
	}()
}

// exit releases the execution token when a task's function returns.
// The dying task holds the token, so the bookkeeping is lock-free; the
// handback to Run (inside yield) takes mu.
//
//p2p:token
func (k *Kernel) exit(t *task) {
	t.exited = true
	k.nLive--
	k.yield()
}

// yield releases the execution token: if another task is ready (and
// the run is not stopping), the baton passes to it directly — the
// departing goroutine wakes the next one without a round-trip through
// the kernel goroutine, which halves the real context switches per
// activation. Otherwise control returns to the run loop via the
// running/cond handshake. Callers hold the execution token. The ready
// pop, FIFO order and Switches count are identical to the run loop's
// own grant, so the execution schedule — and therefore every trace —
// is unchanged.
//
//p2p:token
func (k *Kernel) yield() {
	if len(k.ready) > 0 && !k.stopped && !k.halted {
		t := k.ready[0]
		copy(k.ready, k.ready[1:])
		k.ready = k.ready[:len(k.ready)-1]
		k.stats.Switches++
		t.wake <- struct{}{}
		return
	}
	k.mu.Lock()
	k.running = false
	k.cond.Signal()
	k.mu.Unlock()
}

// sched advances the simulation on the calling (parking) task's own
// goroutine: it dispatches events and grants ready tasks exactly as
// the Run loop would, returning once self has been granted execution
// again. When the grant goes to another task — or the run must end
// (stop, horizon, deadlock, completion) and the Run goroutine has to
// take over — it blocks on self's wake token instead.
//
// This is a pure execution-mechanics optimization: the event pops,
// ready-queue order, Events/Switches counts and callback sequence are
// byte-for-byte those of the Run loop, so traces are unchanged. What
// changes is only which OS goroutine turns the crank — the common
// park→event→wake cycle costs one real context switch (zero when the
// dispatched event wakes the parker itself) instead of two round
// trips through the Run goroutine.
//
// Called by the parking task, which holds the execution token — the
// whole loop is mutex-free; only the teardown handback to Run takes
// mu (see the serialization-discipline note on Kernel).
//
//p2p:token
func (k *Kernel) sched(self *task) {
	for {
		if k.stopped || k.halted {
			break // Run tears down
		}
		if len(k.ready) > 0 {
			t := k.ready[0]
			copy(k.ready, k.ready[1:])
			k.ready = k.ready[:len(k.ready)-1]
			k.stats.Switches++
			if t == self {
				return // resumed: the execution token is ours again
			}
			t.wake <- struct{}{}
			<-self.wake
			return
		}
		if k.events.len() > 0 {
			ev := k.events.pop()
			if ev.dead {
				k.recycle(ev)
				continue
			}
			if k.limit > 0 && ev.at > k.limit {
				k.now = k.limit
				k.recycle(ev)
				k.drain()
				k.halted = true
				break
			}
			k.now = ev.at
			k.stats.Events++
			fn := ev.fn
			k.recycle(ev)
			fn()
			continue
		}
		break // no work: completion or deadlock — Run decides which
	}
	k.mu.Lock()
	k.running = false
	k.cond.Signal()
	k.mu.Unlock()
	<-self.wake
}

// At schedules fn to run at instant at (clamped to now if in the past).
// fn executes inside the kernel loop and must not block. It returns a
// handle that can cancel the event before it fires.
//
//p2p:tokenentry k.mu serializes the cold scheduling boundary against the run loop
//p2p:tokenarg
func (k *Kernel) At(at Time, fn func()) *Event {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.scheduleLocked(at, fn)
}

// After schedules fn to run d after the current virtual time.
//
//p2p:tokenentry k.mu serializes the cold scheduling boundary against the run loop
//p2p:tokenarg
func (k *Kernel) After(d Duration, fn func()) *Event {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.scheduleLocked(k.now.Add(d), fn)
}

// Schedule is At without the cancellable handle. The event struct itself
// is pooled, so for callers that never cancel — the per-packet hop and
// delivery events of the network layer — this path schedules with zero
// allocations, where At allocates one Event handle per call.
//
// Schedule elides the kernel mutex: it may only be called from code
// holding the execution token (a running simulated goroutine or an
// event callback), where pushes are serialized with every other queue
// access by the token's happens-before chain — the same contract as
// LoopNow. It is the highest-frequency kernel entry point (several
// calls per emulated message), so the two elided atomics are a
// measurable share of per-event cost. External goroutines must use At.
//
//p2p:token
//p2p:tokenarg
func (k *Kernel) Schedule(at Time, fn func()) {
	k.events.push(k.alloc(at, fn))
}

// scheduleLocked is the common body of At and After.
//
//p2p:tokenentry callers hold k.mu, which serializes the cold scheduling boundary
func (k *Kernel) scheduleLocked(at Time, fn func()) *Event {
	ev := k.alloc(at, fn)
	k.events.push(ev)
	return &Event{k: k, ev: ev, gen: ev.gen}
}

// alloc takes an event struct off the free list (or allocates one)
// and initializes it for scheduling. Callers hold the execution token
// (or k.mu on the cold At/After paths — both serialize against every
// other queue access).
//
//p2p:token
func (k *Kernel) alloc(at Time, fn func()) *event {
	if at < k.now {
		at = k.now
	}
	ev := k.free
	if ev != nil {
		k.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.dead = at, k.seq, fn, false
	k.seq++
	return ev
}

// recycle returns a dispatched or cancelled event struct to the free
// list. Same serialization contract as alloc; ev must no longer be
// queued.
//
//p2p:token
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.next = k.free
	k.free = ev
}

// Event is a cancellable handle to a scheduled callback.
type Event struct {
	k   *Kernel
	ev  *event
	gen uint64 // incarnation the handle refers to
}

// live reports whether the handle still refers to a pending event.
// Callers hold e.k.mu.
func (e *Event) liveLocked() bool {
	return e.ev.gen == e.gen && e.ev.queued && !e.ev.dead
}

// Cancel prevents the callback from running if it has not fired yet.
// It reports whether the cancellation took effect.
func (e *Event) Cancel() bool {
	if e == nil || e.ev == nil {
		return false
	}
	e.k.mu.Lock()
	defer e.k.mu.Unlock()
	if !e.liveLocked() {
		return false
	}
	e.ev.dead = true
	return true
}

// Reschedule moves a still-pending callback to instant at (clamped to
// now if in the past), preserving the callback but taking a fresh
// position in the same-instant FIFO order, exactly as if the event had
// been cancelled and scheduled anew. It reports whether the move took
// effect; a fired or cancelled event is not revived.
//
//p2p:tokenentry holds e.k.mu for the whole splice, same contract as At
func (e *Event) Reschedule(at Time) bool {
	if e == nil || e.ev == nil {
		return false
	}
	e.k.mu.Lock()
	defer e.k.mu.Unlock()
	if !e.liveLocked() {
		return false
	}
	fn := e.ev.fn
	e.ev.dead = true // lazily removed by the queue
	ev := e.k.alloc(at, fn)
	e.k.events.push(ev)
	e.ev, e.gen = ev, ev.gen
	return true
}

// DeadlockError is returned by Run when simulated goroutines remain
// parked but no event can ever wake them.
type DeadlockError struct {
	Now     Time
	Blocked []string // names of parked tasks
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d task(s) parked forever: %s",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// Run executes the simulation until no work remains: every task has
// exited and the event queue is empty (events scheduled beyond RunUntil's
// limit are discarded). It returns a *DeadlockError if tasks are parked
// with no pending events, and nil otherwise. Run must be called from a
// non-simulated goroutine, exactly once.
//
//p2p:tokenentry the Run goroutine owns the token whenever no task is running (running/cond handshake)
func (k *Kernel) Run() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	for {
		if k.stopped {
			k.killAllLocked()
			return nil
		}
		if k.halted {
			// A task-side scheduler (sched) crossed the horizon: events
			// are already drained, only the teardown is left.
			k.halted = false
			k.killAllLocked()
			return nil
		}
		// 1. Run every ready task to its next park point, in FIFO order.
		if len(k.ready) > 0 {
			t := k.ready[0]
			copy(k.ready, k.ready[1:])
			k.ready = k.ready[:len(k.ready)-1]
			k.running = true
			k.stats.Switches++
			t.wake <- struct{}{}
			for k.running {
				k.cond.Wait()
			}
			continue
		}
		// 2. Advance the clock to the next event batch.
		if k.events.len() > 0 {
			ev := k.events.pop()
			if ev.dead {
				k.recycle(ev)
				continue
			}
			if k.limit > 0 && ev.at > k.limit {
				// Past the horizon: drop remaining events and stop.
				k.now = k.limit
				k.recycle(ev)
				k.drain()
				k.killAllLocked()
				return nil
			}
			k.now = ev.at
			k.stats.Events++
			fn := ev.fn
			k.recycle(ev)
			// Callbacks run without the kernel lock: no simulated
			// goroutine is executing at this point (ready is empty and
			// running is false), so callbacks may freely use the public
			// blocking-free API (Cond.Signal, Kernel.At, ...).
			k.mu.Unlock()
			fn()
			k.mu.Lock()
			continue
		}
		// 3. Nothing runnable, nothing scheduled.
		if k.nBlock > 0 {
			names := make([]string, 0, len(k.blocked))
			//lint:allow maporder collected names are sorted below before use
			for t := range k.blocked {
				names = append(names, t.name)
			}
			sort.Strings(names)
			err := &DeadlockError{Now: k.now, Blocked: names}
			k.killAllLocked()
			return err
		}
		return nil
	}
}

// killAllLocked unwinds every remaining task (parked or ready) so a
// finished run leaks no goroutines. Unwound tasks panic with a sentinel
// that the Go wrapper recovers; deferred cleanups (conn.Close and the
// like) run during that unwind, so tasks are unwound strictly one at a
// time — ready tasks in FIFO order, then parked tasks in spawn order —
// keeping the one-goroutine-at-a-time invariant (and therefore
// determinism and race-freedom) through teardown. Callers hold k.mu;
// on return nLive is zero.
//
//p2p:tokenentry callers hold k.mu and no task is running during teardown
func (k *Kernel) killAllLocked() {
	victims := append([]*task(nil), k.ready...)
	k.ready = nil
	parked := make([]*task, 0, len(k.blocked))
	//lint:allow maporder collected tasks are sorted by spawn id below before unwinding
	for t := range k.blocked {
		t.blocked = false
		delete(k.blocked, t)
		k.nBlock--
		parked = append(parked, t)
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].id < parked[j].id })
	victims = append(victims, parked...)
	for _, t := range victims {
		t.killed = true
		k.running = true
		t.wake <- struct{}{}
		for k.running {
			k.cond.Wait()
		}
	}
	for k.nLive > 0 {
		k.cond.Wait()
	}
}

// RunUntil executes the simulation like Run but stops once virtual time
// would pass limit. Tasks still parked at the horizon are abandoned (the
// usual way to end an open-ended experiment such as a swarm download).
func (k *Kernel) RunUntil(limit Time) error {
	k.mu.Lock()
	k.limit = limit
	k.mu.Unlock()
	err := k.Run()
	var dl *DeadlockError
	if e, ok := err.(*DeadlockError); ok {
		dl = e
	}
	// A horizon-limited run treats parked-forever tasks as "experiment
	// over", not an error, as long as the horizon was actually reached.
	if dl != nil && k.Now() >= limit {
		return nil
	}
	return err
}

// drain discards all pending events. Same serialization contract as
// alloc.
//
//p2p:token
func (k *Kernel) drain() {
	for k.events.len() > 0 {
		k.recycle(k.events.pop())
	}
}

// Stop aborts the run loop at the next scheduling point. Safe to call
// from event callbacks or simulated goroutines.
func (k *Kernel) Stop() {
	k.mu.Lock()
	k.stopped = true
	k.mu.Unlock()
}

// wake moves a parked task to the ready queue. Callers hold the
// execution token (wakes are triggered by running tasks and event
// callbacks only).
//
//p2p:token
func (k *Kernel) wake(t *task) {
	if !t.blocked || t.exited {
		return
	}
	t.blocked = false
	k.nBlock--
	delete(k.blocked, t)
	k.ready = append(k.ready, t)
}
