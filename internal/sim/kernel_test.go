package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := New(1)
	if k.Now() != 0 {
		t.Fatalf("new kernel clock = %v, want 0", k.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := New(1)
	var end Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(3*time.Second) {
		t.Fatalf("woke at %v, want 3s", end)
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := New(1)
	var order []string
	k.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	k := New(1)
	var got []int
	k.At(Time(5*time.Second), func() { got = append(got, 5) })
	k.At(Time(1*time.Second), func() { got = append(got, 1) })
	k.At(Time(3*time.Second), func() { got = append(got, 3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("event order = %v, want [1 3 5]", got)
	}
}

func TestSameInstantEventsFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(time.Second), func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	k := New(1)
	fired := false
	ev := k.At(Time(time.Second), func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel reported failure on pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Go("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v, want [stuck]", dl.Blocked)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := New(1)
	var last Time
	k.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			last = p.Now()
		}
	})
	if err := k.RunUntil(Time(10*time.Second) + 1); err != nil {
		t.Fatal(err)
	}
	if last != Time(10*time.Second) {
		t.Fatalf("last tick at %v, want 10s", last)
	}
	if k.Now() != Time(10*time.Second)+1 {
		t.Fatalf("final clock %v, want horizon", k.Now())
	}
}

func TestRunUntilStillReportsEarlyDeadlock(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Go("stuck", func(p *Proc) { c.Wait(p) })
	err := k.RunUntil(Time(time.Hour))
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("RunUntil = %v, want DeadlockError before horizon", err)
	}
}

func TestStopEndsRun(t *testing.T) {
	k := New(1)
	n := 0
	k.Go("worker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			n++
			if n == 5 {
				k.Stop()
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("iterations = %d, want 5", n)
	}
}

func TestSpawnFromRunningProc(t *testing.T) {
	k := New(1)
	var childTime Time
	k.Go("parent", func(p *Proc) {
		p.Sleep(time.Second)
		p.Go("child", func(c *Proc) {
			childTime = c.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != Time(time.Second) {
		t.Fatalf("child started at %v, want 1s", childTime)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() string {
		k := New(42)
		out := ""
		for i := 0; i < 20; i++ {
			i := i
			k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				d := Duration(p.Rand().Intn(1000)) * time.Millisecond
				p.Sleep(d)
				out += fmt.Sprintf("%d@%v;", i, p.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("runs with same seed diverged:\n%s\n%s", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	trace := func(seed int64) string {
		k := New(seed)
		out := ""
		for i := 0; i < 20; i++ {
			i := i
			k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Duration(p.Rand().Intn(1000)) * time.Millisecond)
				out += fmt.Sprintf("%d@%v;", i, p.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if trace(1) == trace(2) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestStatsCounters(t *testing.T) {
	k := New(1)
	for i := 0; i < 3; i++ {
		k.Go("p", func(p *Proc) { p.Sleep(time.Second) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s := k.Snapshot()
	if s.Spawns != 3 {
		t.Fatalf("spawns = %d, want 3", s.Spawns)
	}
	if s.Events < 3 {
		t.Fatalf("events = %d, want >= 3 (one wake per sleeper)", s.Events)
	}
	if s.Switches < 6 {
		t.Fatalf("switches = %d, want >= 6 (start + resume per task)", s.Switches)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(time.Second)
	if a.Add(time.Second) != Time(2*time.Second) {
		t.Fatal("Add broken")
	}
	if a.Add(time.Second).Sub(a) != time.Second {
		t.Fatal("Sub broken")
	}
	if a.Seconds() != 1.0 {
		t.Fatalf("Seconds = %v, want 1", a.Seconds())
	}
	if a.String() != "1s" {
		t.Fatalf("String = %q, want 1s", a.String())
	}
}

func TestManyTasksScale(t *testing.T) {
	k := New(7)
	const n = 2000
	done := 0
	for i := 0; i < n; i++ {
		k.Go("w", func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Sleep(Duration(1+p.Rand().Intn(100)) * time.Millisecond)
			}
			done++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("completed = %d, want %d", done, n)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	k := New(1)
	var fireTime Time
	k.Go("p", func(p *Proc) {
		p.Sleep(5 * time.Second)
		k.At(Time(time.Second), func() { fireTime = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fireTime != Time(5*time.Second) {
		t.Fatalf("past event fired at %v, want clamp to 5s", fireTime)
	}
}
