package sim

import "math/rand"

// Proc is the handle a simulated goroutine uses to interact with the
// kernel. Every function spawned with Kernel.Go or Proc.Go receives its
// own Proc; a Proc must only be used by the goroutine it was given to.
type Proc struct {
	k *Kernel
	t *task

	// wakeFn is the Sleep timer callback, bound lazily once per proc so
	// the hottest blocking primitive does not allocate a fresh closure
	// (plus an Event handle) on every call.
	wakeFn func()
}

// Kernel returns the kernel this process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.t.name }

// Now returns the current virtual time. The read is unsynchronized but
// race-free: a Proc is only used by the goroutine it was granted to,
// which holds the execution token (see Kernel.LoopNow).
func (p *Proc) Now() Time {
	return p.k.now
}

// Rand returns the kernel's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.k.rng }

// Go spawns a child simulated goroutine. The child starts at the current
// virtual time once the scheduler next runs it.
func (p *Proc) Go(name string, fn func(p *Proc)) { p.k.Go(name, fn) }

// park blocks the calling task until another component wakes it via
// kernel.wake. The caller holds the execution token, so the blocked
// bookkeeping is mutex-free; sched hands the token on (or back to Run)
// and returns once this task is granted again.
//
// A task that has been killed (run ended at a horizon, Stop, or after a
// deadlock report) re-panics instead of blocking: this lets deferred
// cleanups that use blocking primitives (defer conn.Close(p)) unwind
// instantly rather than hang on a wake that will never come.
func (p *Proc) park() {
	k := p.k
	if p.t.killed {
		panic(killedPanic{})
	}
	p.t.blocked = true
	k.nBlock++
	k.blocked[p.t] = struct{}{}
	k.sched(p.t)
	if p.t.killed {
		panic(killedPanic{})
	}
}

// Sleep suspends the process for d of virtual time. Non-positive
// durations yield the processor to other runnable tasks at the same
// instant (a deterministic round-robin yield).
func (p *Proc) Sleep(d Duration) {
	k := p.k
	if p.wakeFn == nil {
		t := p.t
		p.wakeFn = func() { k.wake(t) }
	}
	// The timer push is mutex-free: the calling task holds the execution
	// token, which serializes every queue access (see Kernel.Schedule).
	at := k.now
	if d > 0 {
		at = at.Add(d)
	}
	k.events.push(k.alloc(at, p.wakeFn))
	p.park()
}

// Yield lets every other currently-runnable task proceed before this one
// continues, without advancing the clock.
func (p *Proc) Yield() { p.Sleep(0) }

// SleepUntil suspends the process until the given instant (or yields if
// the instant is not in the future).
func (p *Proc) SleepUntil(at Time) {
	now := p.Now()
	if at <= now {
		p.Yield()
		return
	}
	p.Sleep(at.Sub(now))
}
