package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrderProperty(t *testing.T) {
	// For any multiset of event delays, callbacks fire in nondecreasing
	// time order, and ties fire in insertion order.
	f := func(delaysRaw []uint16) bool {
		k := New(1)
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		for i, d := range delaysRaw {
			i := i
			at := Time(time.Duration(d) * time.Millisecond)
			k.At(at, func() { log = append(log, fired{at: k.Now(), seq: i}) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(log) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false
			}
			if log[i].at == log[i-1].at && log[i].seq < log[i-1].seq {
				return false // FIFO tie-break violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSleepersWakeSortedProperty(t *testing.T) {
	// Any population of sleepers wakes in sorted delay order.
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		k := New(1)
		var woke []Time
		for _, d := range delaysRaw {
			d := time.Duration(d) * time.Millisecond
			k.Go("sleeper", func(p *Proc) {
				p.Sleep(d)
				woke = append(woke, p.Now())
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		sorted := append([]Time(nil), woke...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range woke {
			if woke[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChanFIFOProperty(t *testing.T) {
	// Whatever interleaving of sends, a single receiver observes FIFO
	// order per sender.
	f := func(itemsRaw []uint8) bool {
		k := New(1)
		ch := NewChan[int](k, 0)
		var got []int
		k.Go("recv", func(p *Proc) {
			for i := 0; i < len(itemsRaw); i++ {
				v, err := ch.Recv(p)
				if err != nil {
					return
				}
				got = append(got, v)
			}
		})
		k.Go("send", func(p *Proc) {
			for i, d := range itemsRaw {
				p.Sleep(time.Duration(d) * time.Millisecond)
				ch.Send(p, i)
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != len(itemsRaw) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreNeverOversubscribedProperty(t *testing.T) {
	f := func(permitsRaw, workersRaw uint8) bool {
		permits := int(permitsRaw%5) + 1
		workers := int(workersRaw%20) + 1
		k := New(1)
		s := NewSemaphore(k, permits)
		inside, ok := 0, true
		for i := 0; i < workers; i++ {
			k.Go("w", func(p *Proc) {
				s.Acquire(p)
				inside++
				if inside > permits {
					ok = false
				}
				p.Sleep(time.Millisecond)
				inside--
				s.Release()
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
