package sim

import "container/heap"

// timerQueue is the kernel's pending-event store. Both implementations
// dequeue in strict (at, seq) order, so the kernel's dispatch order —
// and therefore every run — is identical whichever one is plugged in.
type timerQueue interface {
	push(*event)
	pop() *event // minimum by (at, seq); nil when empty
	len() int
	// resizes counts internal restructurings (calendar-queue rebuilds);
	// the heap reports 0. Diagnostic only — deliberately NOT part of
	// sim.Stats, which golden-trace digests compare across queue kinds.
	resizes() uint64
}

// QueueKind selects the kernel's event-queue implementation.
type QueueKind int

const (
	// QueueCalendar is the default: a bucketed calendar queue with O(1)
	// amortized push/pop for the clustered-in-time event distributions
	// simulations produce.
	QueueCalendar QueueKind = iota
	// QueueHeap is the reference container/heap implementation
	// (O(log n) per operation). Kept for differential testing and
	// benchmarking against the calendar queue.
	QueueHeap
)

// --- heap queue (reference implementation) ---

type eventHeap []*event

func (q eventHeap) Len() int { return len(q) }
func (q eventHeap) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventHeap) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventHeap) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(ev *event) {
	ev.queued = true
	heap.Push(&q.h, ev)
}

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	ev := heap.Pop(&q.h).(*event)
	ev.queued = false
	return ev
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) resizes() uint64 { return 0 }

// --- calendar queue ---

// calQueue is a calendar queue (R. Brown, CACM 1988): an array of
// buckets, each covering a window of `width` virtual nanoseconds; an
// event at time t lives in bucket (t/width) mod nb, kept sorted by
// (at, seq). Dequeue sweeps buckets in time order within the current
// "year" (one rotation of the calendar), so for event populations
// whose density matches the bucket width — the steady state the
// resize policy maintains — both operations are O(1) amortized,
// versus O(log n) for the binary heap.
//
// Correctness leans on one kernel invariant: events are never pushed
// before the at of the last popped event (the kernel clamps schedule
// times to now). A defensive scan reset handles the general case
// anyway.
type calQueue struct {
	buckets []*event // sorted singly-linked lists (chained via event.next)
	mask    int      // len(buckets)-1; len is a power of two
	width   Time     // virtual-ns window per bucket
	n       int

	// Dequeue scan state: cur is the bucket whose current-year window
	// is [top-width, top); lastAt is the priority of the last pop.
	cur    int
	top    Time
	lastAt Time

	// avgGap is an EWMA of nonzero separations between successive pops:
	// the density of the *head* of the queue, which is what bucket width
	// must match. (Sizing from the full occupied span alone collapses
	// under skew — one far-future straggler inflates the width until the
	// near-now cluster piles into a single bucket and sorted insertion
	// goes quadratic — so tuneWidth takes the smaller of the two
	// signals.)
	avgGap Time

	// maxAt is the largest instant ever pushed; with lastAt it bounds
	// the pending span without walking the buckets.
	maxAt Time

	// Insert-cost watchdog: when the average bucket-chain scan per push
	// grows past a few steps AND retuning would materially change the
	// width, the calendar rebuilds itself at the same size. (Long scans
	// caused by many events at the very same instant are inherent —
	// equal instants must share a bucket — and rebuilding cannot help,
	// so the width check gates the rebuild.)
	scanSteps int
	scanOps   int

	nResizes uint64 // rebuilds performed (growth, shrink, watchdog)
}

const (
	calMinBuckets = 32
	calMaxBuckets = 1 << 20
	calInitWidth  = Time(1 << 16) // ~65 µs; retuned on every resize
)

func newCalQueue() *calQueue {
	q := &calQueue{}
	q.init(calMinBuckets, calInitWidth, 0)
	return q
}

func (q *calQueue) init(nb int, width Time, startAt Time) {
	q.buckets = make([]*event, nb)
	q.mask = nb - 1
	q.width = width
	q.n = 0
	q.lastAt = startAt
	q.cur = int((startAt / width)) & q.mask
	q.top = (startAt/width + 1) * width
}

func (q *calQueue) len() int { return q.n }

func (q *calQueue) resizes() uint64 { return q.nResizes }

func (q *calQueue) push(ev *event) {
	ev.queued = true
	if ev.at > q.maxAt {
		q.maxAt = ev.at
	}
	q.scanSteps += q.insert(ev)
	q.scanOps++
	q.n++
	switch {
	case q.n > len(q.buckets) && len(q.buckets) < calMaxBuckets:
		q.resize(len(q.buckets) * 2)
	case q.scanOps >= 256:
		// Width watchdog: long insert scans mean overcrowded buckets —
		// unless the crowding is same-instant ties, which no width can
		// spread; rebuild only when retuning would actually move it.
		if q.scanSteps/q.scanOps > 2 {
			if w := q.tuneWidth(); w < q.width/2 || w > 2*q.width {
				q.resize(len(q.buckets))
			}
		}
		q.scanSteps, q.scanOps = 0, 0
	}
}

// insert links ev into its bucket and returns the number of chain
// links scanned. Buckets are chains of "slots" — one per distinct
// instant, in at order — and each slot is a FIFO run of same-instant
// events chained via tie. Appending to a run is O(1) and is correct
// because the kernel's seq counter is globally monotone: a new event
// always orders after every already-queued event at the same instant.
func (q *calQueue) insert(ev *event) int {
	i := int(ev.at/q.width) & q.mask
	steps := 0
	head := q.buckets[i]
	switch {
	case head == nil || ev.at < head.at:
		ev.next = head
		q.buckets[i] = ev
	case ev.at == head.at:
		appendTie(head, ev)
	default:
		p := head
		for p.next != nil && p.next.at < ev.at {
			p = p.next
			steps++
		}
		if p.next != nil && p.next.at == ev.at {
			appendTie(p.next, ev)
		} else {
			ev.next = p.next
			p.next = ev
		}
	}
	// Defensive: an event scheduled before the scan's floor rewinds the
	// scan so it cannot be skipped. Unreachable under the kernel's
	// monotone-clamp invariant.
	if ev.at < q.lastAt {
		q.lastAt = ev.at
		q.cur = i
		q.top = (ev.at/q.width + 1) * q.width
	}
	return steps
}

// appendTie adds ev to slot head h's same-instant FIFO run.
func appendTie(h, ev *event) {
	if h.tie == nil {
		h.tie = ev
	} else {
		h.tieTail.tie = ev
	}
	h.tieTail = ev
}

func (q *calQueue) pop() *event {
	if q.n == 0 {
		return nil
	}
	// Sweep at most one full year from the current bucket. Bucket
	// windows are disjoint and visited in increasing time order, so the
	// first in-window head is the global minimum; within a bucket the
	// sorted chain already breaks at-ties by seq, and equal instants
	// always share a bucket.
	for i := 0; i <= q.mask; i++ {
		if head := q.buckets[q.cur]; head != nil && head.at < q.top {
			return q.unlink(q.cur)
		}
		q.cur = (q.cur + 1) & q.mask
		q.top += q.width
	}
	// Sparse queue: every pending event is at least a year ahead of the
	// scan. Find the minimum head directly (equal instants share a
	// bucket, so comparing heads is sufficient) and restart the scan at
	// its window.
	best := -1
	for i, h := range q.buckets {
		if h == nil {
			continue
		}
		if best < 0 || h.at < q.buckets[best].at ||
			(h.at == q.buckets[best].at && h.seq < q.buckets[best].seq) {
			best = i
		}
	}
	h := q.buckets[best]
	q.cur = best
	q.top = (h.at/q.width + 1) * q.width
	return q.unlink(best)
}

// unlink removes and returns the head of bucket i (its minimum): the
// first event of the first slot's tie run, whose successor — if any —
// is promoted to slot head.
func (q *calQueue) unlink(i int) *event {
	ev := q.buckets[i]
	if t := ev.tie; t != nil {
		t.next = ev.next
		if ev.tieTail != t {
			t.tieTail = ev.tieTail
		}
		q.buckets[i] = t
	} else {
		q.buckets[i] = ev.next
	}
	ev.next, ev.tie, ev.tieTail = nil, nil, nil
	ev.queued = false
	q.n--
	if gap := ev.at - q.lastAt; gap > 0 {
		q.avgGap += (gap - q.avgGap) / 8
	}
	q.lastAt = ev.at
	if q.n < len(q.buckets)/8 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// resize rebuilds the calendar with nb buckets and a retuned width,
// reinserting every pending event. Amortized against the pushes/pops
// that triggered it.
func (q *calQueue) resize(nb int) {
	q.nResizes++
	events := make([]*event, 0, q.n)
	for i, h := range q.buckets {
		for h != nil {
			nextSlot := h.next
			// Flatten the slot's tie run in order: reinsertion preserves
			// seq order within each instant, which appendTie relies on.
			for m := h; m != nil; {
				nextTie := m.tie
				m.next, m.tie, m.tieTail = nil, nil, nil
				events = append(events, m)
				m = nextTie
			}
			h = nextSlot
		}
		q.buckets[i] = nil
	}
	q.init(nb, q.tuneWidth(), q.lastAt)
	for _, ev := range events {
		q.insert(ev)
	}
	q.n = len(events)
	q.scanSteps, q.scanOps = 0, 0
}

// tuneWidth picks a bucket width from two density signals: the EWMA of
// pop gaps (head density — meaningless before the first pops) and the
// pending span [lastAt, maxAt] (misleading under skew, when stragglers
// stretch it). Taking the smaller keeps buckets short in both regimes;
// the ×4 slack keeps same-window neighbors together so the year sweep
// rarely advances. Both inputs are tracked incrementally, so the
// watchdog can evaluate the retune cheaply before committing to a
// rebuild.
func (q *calQueue) tuneWidth() Time {
	var w Time
	if q.avgGap > 0 {
		w = 4 * q.avgGap
	}
	if q.n > 1 && q.maxAt > q.lastAt {
		if spanW := (q.maxAt - q.lastAt) * 4 / Time(q.n); w == 0 || spanW < w {
			w = spanW
		}
	}
	if w == 0 {
		w = q.width
	}
	if w < 16 {
		w = 16
	}
	return w
}
