package sim

import (
	"math/rand"
	"testing"
	"time"
)

// popOrderKey compares two events in dispatch order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// TestCalQueueMatchesHeap drives a calendar queue and the reference heap
// through the same randomized kernel-shaped push/pop schedule (pushes
// never go below the last popped instant, mirroring the kernel's clamp)
// and asserts every pop agrees.
func TestCalQueueMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cal := newCalQueue()
	ref := &heapQueue{}
	var seq uint64
	now := Time(0)

	mk := func(at Time) (*event, *event) {
		a := &event{at: at, seq: seq}
		b := &event{at: at, seq: seq}
		seq++
		return a, b
	}
	for step := 0; step < 200000; step++ {
		if cal.len() == 0 || rng.Intn(3) != 0 {
			var at Time
			switch rng.Intn(10) {
			case 0: // same instant: FIFO tie-break territory
				at = now
			case 1: // far future: exercises the sparse direct-search path
				at = now + Time(time.Hour)*Time(1+rng.Intn(100))
			default: // clustered near now, the common case
				at = now + Time(rng.Intn(int(50*time.Microsecond)))
			}
			a, b := mk(at)
			cal.push(a)
			ref.push(b)
		} else {
			a := cal.pop()
			b := ref.pop()
			if a.at != b.at || a.seq != b.seq {
				t.Fatalf("step %d: calendar popped (at=%v seq=%d), heap popped (at=%v seq=%d)",
					step, a.at, a.seq, b.at, b.seq)
			}
			now = a.at
		}
	}
	for cal.len() > 0 {
		a := cal.pop()
		b := ref.pop()
		if a.at != b.at || a.seq != b.seq {
			t.Fatalf("drain: calendar popped (at=%v seq=%d), heap popped (at=%v seq=%d)",
				a.at, a.seq, b.at, b.seq)
		}
	}
	if ref.len() != 0 {
		t.Fatalf("heap retains %d events after calendar drained", ref.len())
	}
}

// TestCalQueueSameInstantFIFO checks that a burst at one instant comes
// back in schedule order.
func TestCalQueueSameInstantFIFO(t *testing.T) {
	q := newCalQueue()
	for i := 0; i < 1000; i++ {
		q.push(&event{at: 12345, seq: uint64(i)})
	}
	for i := 0; i < 1000; i++ {
		ev := q.pop()
		if ev.seq != uint64(i) {
			t.Fatalf("pop %d: got seq %d", i, ev.seq)
		}
	}
}

// TestCalQueueResize pushes enough events to force growth, drains to
// force shrink, and checks global ordering throughout.
func TestCalQueueResize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := newCalQueue()
	const n = 50000
	for i := 0; i < n; i++ {
		q.push(&event{at: Time(rng.Intn(int(time.Second))), seq: uint64(i)})
	}
	if len(q.buckets) <= calMinBuckets {
		t.Fatalf("expected bucket growth, still %d buckets for %d events", len(q.buckets), n)
	}
	var prev *event
	for q.len() > 0 {
		ev := q.pop()
		if prev != nil && !eventLess(prev, ev) {
			t.Fatalf("out of order: (at=%v seq=%d) after (at=%v seq=%d)", ev.at, ev.seq, prev.at, prev.seq)
		}
		prev = ev
	}
	if len(q.buckets) != calMinBuckets {
		t.Fatalf("expected shrink back to %d buckets, have %d", calMinBuckets, len(q.buckets))
	}
}

// TestCalQueueSparseFarFuture exercises the direct-search path: a
// handful of events separated by enormous gaps.
func TestCalQueueSparseFarFuture(t *testing.T) {
	q := newCalQueue()
	ats := []Time{
		Time(365 * 24 * time.Hour),
		Time(time.Nanosecond),
		Time(100 * 365 * 24 * time.Hour),
		Time(time.Hour),
	}
	for i, at := range ats {
		q.push(&event{at: at, seq: uint64(i)})
	}
	want := []Time{ats[1], ats[3], ats[0], ats[2]}
	for i, w := range want {
		ev := q.pop()
		if ev.at != w {
			t.Fatalf("pop %d: got at=%v, want %v", i, ev.at, w)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue should return nil")
	}
}

// TestEventHandleStaleAfterRecycle checks that a handle to a fired
// event cannot cancel the recycled struct's next incarnation.
func TestEventHandleStaleAfterRecycle(t *testing.T) {
	k := New(1)
	fired := make(map[string]bool)
	h1 := k.After(time.Millisecond, func() { fired["first"] = true })
	k.After(2*time.Millisecond, func() {
		// "first" already fired and its struct was recycled (the free
		// list is LIFO, so the next schedule reuses it).
		if h1.Cancel() {
			t.Error("Cancel on a fired event's stale handle reported success")
		}
		if h1.Reschedule(k.Now().Add(time.Hour)) {
			t.Error("Reschedule on a fired event's stale handle reported success")
		}
		k.After(time.Millisecond, func() { fired["second"] = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired["first"] || !fired["second"] {
		t.Fatalf("fired = %v, want both", fired)
	}
}

// TestEventReschedule moves a timer forward and backward and checks the
// callback fires exactly once, at the rescheduled instant, in fresh
// FIFO position.
func TestEventReschedule(t *testing.T) {
	k := New(1)
	var order []string
	at := func(name string) func() {
		return func() { order = append(order, name) }
	}
	ev := k.At(Time(10*time.Millisecond), at("moved"))
	k.At(Time(5*time.Millisecond), at("five"))
	k.At(Time(20*time.Millisecond), at("twenty"))
	k.At(0, func() {
		// Move the 10ms timer to 20ms: it must now fire after the
		// pre-existing 20ms event (fresh seq).
		if !ev.Reschedule(Time(20 * time.Millisecond)) {
			t.Error("Reschedule of pending event failed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"five", "twenty", "moved"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// A fired event cannot be revived.
	if ev.Reschedule(Time(time.Hour)) {
		t.Error("Reschedule of fired event reported success")
	}
}

// TestCancelledEventRecycled checks cancelled events are lazily removed
// and their structs reused without disturbing later events.
func TestCancelledEventRecycled(t *testing.T) {
	k := New(1)
	n := 0
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, k.After(time.Duration(i+1)*time.Millisecond, func() { n++ }))
	}
	for i, ev := range evs {
		if i%2 == 0 && !ev.Cancel() {
			t.Fatalf("cancel %d failed", i)
		}
	}
	for i := 0; i < 50; i++ {
		k.After(time.Duration(i+1)*time.Microsecond, func() { n++ })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("fired %d callbacks, want 100", n)
	}
}
