package sim

// The primitives in this file rely on the kernel's serialization
// invariant: exactly one simulated goroutine executes at a time, and
// event callbacks only run when no goroutine is executing. A
// check-then-park sequence is therefore atomic with respect to all other
// simulated activity and cannot lose wakeups.

// Semaphore is a counting semaphore on virtual time.
type Semaphore struct {
	k     *Kernel
	avail int
	cond  *Cond
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	return &Semaphore{k: k, avail: n, cond: NewCond(k)}
}

// Acquire takes one permit, parking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		s.cond.Wait(p)
	}
	s.avail--
}

// TryAcquire takes a permit without blocking; reports success.
//
//p2p:token
func (s *Semaphore) TryAcquire() bool {
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit and wakes a waiter if any.
//
//p2p:token
func (s *Semaphore) Release() {
	s.avail++
	s.cond.Signal()
}

// Available reports the current permit count.
func (s *Semaphore) Available() int { return s.avail }

// WaitGroup tracks a set of outstanding simulated activities, like
// sync.WaitGroup but parking on virtual time.
type WaitGroup struct {
	k    *Kernel
	n    int
	cond *Cond
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{k: k, cond: NewCond(k)}
}

// Add adds delta to the counter.
//
//p2p:token
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter by one.
//
//p2p:token
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.cond.Wait(p)
	}
}

// WaitTimeout parks until the counter reaches zero or d elapses; it
// reports whether the counter reached zero.
func (w *WaitGroup) WaitTimeout(p *Proc, d Duration) bool {
	deadline := p.Now().Add(d)
	for w.n > 0 {
		remaining := deadline.Sub(p.Now())
		if remaining <= 0 {
			return false
		}
		w.cond.WaitTimeout(p, remaining)
	}
	return true
}

// Pending reports the current counter value.
func (w *WaitGroup) Pending() int { return w.n }
