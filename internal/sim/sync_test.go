package sim

import (
	"errors"
	"testing"
	"time"
)

func TestCondSignalWakesFIFO(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var order []string
	spawn := func(name string) {
		k.Go(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	spawn("first")
	spawn("second")
	k.Go("signaller", func(p *Proc) {
		p.Sleep(time.Second)
		c.Signal()
		p.Sleep(time.Second)
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("wake order = %v, want [first second]", order)
	}
}

func TestCondBroadcast(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	woken := 0
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Go("b", func(p *Proc) {
		p.Sleep(time.Second)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var signalled bool
	var woke Time
	k.Go("w", func(p *Proc) {
		signalled = c.WaitTimeout(p, 2*time.Second)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if signalled {
		t.Fatal("WaitTimeout reported signal, want timeout")
	}
	if woke != Time(2*time.Second) {
		t.Fatalf("woke at %v, want 2s", woke)
	}
}

func TestCondSignalBeatsTimeout(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var signalled bool
	k.Go("w", func(p *Proc) {
		signalled = c.WaitTimeout(p, 10*time.Second)
	})
	k.Go("s", func(p *Proc) {
		p.Sleep(time.Second)
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !signalled {
		t.Fatal("want signal to win over timeout")
	}
	if k.Now() >= Time(10*time.Second) {
		t.Fatalf("clock ran to %v; timeout event should be cancelled", k.Now())
	}
}

func TestCondLen(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) { c.Wait(p) })
	}
	k.Go("check", func(p *Proc) {
		p.Sleep(time.Second)
		if got := c.Len(); got != 3 {
			t.Errorf("Len = %d, want 3", got)
		}
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanSendRecv(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 0)
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, err := ch.Recv(p)
			if err != nil {
				t.Errorf("Recv: %v", err)
			}
			got = append(got, v)
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Second)
			if err := ch.Send(p, i); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestChanCapacityBlocksSender(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 2)
	var sentAt []Time
	k.Go("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if err := ch.Send(p, i); err != nil {
				t.Errorf("Send: %v", err)
			}
			sentAt = append(sentAt, p.Now())
		}
	})
	k.Go("recv", func(p *Proc) {
		p.Sleep(5 * time.Second)
		if _, err := ch.Recv(p); err != nil {
			t.Errorf("Recv: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sentAt[0] != 0 || sentAt[1] != 0 {
		t.Fatalf("first two sends should not block: %v", sentAt)
	}
	if sentAt[2] != Time(5*time.Second) {
		t.Fatalf("third send completed at %v, want 5s", sentAt[2])
	}
}

func TestChanTrySend(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 1)
	if !ch.TrySend(1) {
		t.Fatal("TrySend on empty bounded chan should succeed")
	}
	if ch.TrySend(2) {
		t.Fatal("TrySend on full chan should fail")
	}
	ch.Close()
	if ch.TrySend(3) {
		t.Fatal("TrySend on closed chan should fail")
	}
}

func TestChanCloseDrains(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 0)
	ch.TrySend(7)
	ch.Close()
	var v int
	var errAfter error
	k.Go("r", func(p *Proc) {
		v, _ = ch.Recv(p)
		_, errAfter = ch.Recv(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("drained value = %d, want 7", v)
	}
	if !errors.Is(errAfter, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", errAfter)
	}
}

func TestChanCloseWakesBlockedReceiver(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 0)
	var err error
	k.Go("r", func(p *Proc) { _, err = ch.Recv(p) })
	k.Go("c", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Close()
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv err = %v, want ErrClosed", err)
	}
}

func TestChanRecvTimeout(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 0)
	var ok bool
	var at Time
	k.Go("r", func(p *Proc) {
		_, ok, _ = ch.RecvTimeout(p, 3*time.Second)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("RecvTimeout should have timed out")
	}
	if at != Time(3*time.Second) {
		t.Fatalf("timed out at %v, want 3s", at)
	}
}

func TestChanRecvTimeoutDelivery(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 0)
	var got int
	var ok bool
	k.Go("r", func(p *Proc) { got, ok, _ = ch.RecvTimeout(p, 10*time.Second) })
	k.Go("s", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Send(p, 42)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 42 {
		t.Fatalf("got (%d,%v), want (42,true)", got, ok)
	}
}

func TestSemaphore(t *testing.T) {
	k := New(1)
	s := NewSemaphore(k, 2)
	var concurrent, peak int
	for i := 0; i < 6; i++ {
		k.Go("w", func(p *Proc) {
			s.Acquire(p)
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			p.Sleep(time.Second)
			concurrent--
			s.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if k.Now() != Time(3*time.Second) {
		t.Fatalf("6 jobs × 1s with 2 permits should take 3s, got %v", k.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := New(1)
	s := NewSemaphore(k, 1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire with permit should succeed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire without permit should fail")
	}
	s.Release()
	if s.Available() != 1 {
		t.Fatalf("Available = %d, want 1", s.Available())
	}
}

func TestWaitGroup(t *testing.T) {
	k := New(1)
	wg := NewWaitGroup(k)
	wg.Add(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := Duration(i) * time.Second
		k.Go("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != Time(3*time.Second) {
		t.Fatalf("waiter released at %v, want 3s", doneAt)
	}
}

func TestWaitGroupTimeout(t *testing.T) {
	k := New(1)
	wg := NewWaitGroup(k)
	wg.Add(1)
	var ok bool
	k.Go("waiter", func(p *Proc) { ok = wg.WaitTimeout(p, time.Second) })
	k.Go("late", func(p *Proc) {
		p.Sleep(5 * time.Second)
		wg.Done()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("WaitTimeout should have expired")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative counter")
		}
	}()
	k := New(1)
	wg := NewWaitGroup(k)
	wg.Add(-1)
}
