// Package topo describes emulated network topologies the way P2PLab
// does: from the end node's point of view. A topology is a set of node
// groups (an ISP, a country, a continent), each with an access-link
// class (asymmetric bandwidth, latency, loss) for its member nodes, plus
// pairwise latencies between groups. There is deliberately no core-
// network model — the paper's argument is that the edge link is the
// bottleneck for peer-to-peer workloads.
package topo

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
)

// LinkClass describes the access link between a node and its ISP:
// asymmetric down/up bandwidth, one-way latency and loss rate. The
// latency is charged on each traversal (egress at the sender, ingress at
// the receiver), matching the paper's Fig 7 decomposition.
type LinkClass struct {
	Name    string
	Down    int64 // bits per second toward the node
	Up      int64 // bits per second from the node
	Latency time.Duration
	Loss    float64
}

// Predefined access-link classes used across the paper's experiments.
var (
	// DSL reproduces the BitTorrent experiments' link: "a download rate
	// of 2 mbps, an upload rate of 128 kbps, and a latency of 30 ms".
	DSL = LinkClass{Name: "dsl", Down: 2 * netem.Mbps, Up: 128 * netem.Kbps, Latency: 30 * time.Millisecond}
	// Modem is the 10.1.1.0/24 class of Fig 7.
	Modem = LinkClass{Name: "modem", Down: 56 * netem.Kbps, Up: 33_600, Latency: 100 * time.Millisecond}
	// SlowDSL is the 10.1.2.0/24 class of Fig 7.
	SlowDSL = LinkClass{Name: "slow-dsl", Down: 512 * netem.Kbps, Up: 128 * netem.Kbps, Latency: 40 * time.Millisecond}
	// FastDSL is the 10.1.3.0/24 class of Fig 7.
	FastDSL = LinkClass{Name: "fast-dsl", Down: 8 * netem.Mbps, Up: 1 * netem.Mbps, Latency: 20 * time.Millisecond}
	// Campus is the 10.2.0.0/16 class of Fig 7 (symmetric 10 Mb/s).
	Campus = LinkClass{Name: "campus", Down: 10 * netem.Mbps, Up: 10 * netem.Mbps, Latency: 5 * time.Millisecond}
	// Office is the 10.3.0.0/16 class of Fig 7 (symmetric 1 Mb/s).
	Office = LinkClass{Name: "office", Down: 1 * netem.Mbps, Up: 1 * netem.Mbps, Latency: 10 * time.Millisecond}
	// LAN is an effectively unconstrained link for trackers and servers.
	LAN = LinkClass{Name: "lan", Down: 1 * netem.Gbps, Up: 1 * netem.Gbps, Latency: time.Millisecond}
)

// Classes lists the predefined access-link classes.
func Classes() []LinkClass {
	return []LinkClass{DSL, Modem, SlowDSL, FastDSL, Campus, Office, LAN}
}

// ClassByName looks up a predefined access-link class by its Name,
// for command-line parameter grids.
func ClassByName(name string) (LinkClass, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return LinkClass{}, false
}

// Group is a set of nodes sharing a prefix and an access-link class.
// Groups may nest (a /24 ISP inside a /16 country); latencies can be
// declared at any level and the most specific declared pair wins.
type Group struct {
	Name   string
	Prefix ip.Prefix
	Class  LinkClass
	Nodes  int // number of addressable nodes; 0 for pure container groups
}

// Topology is a collection of groups and pairwise group latencies.
type Topology struct {
	groups  []*Group
	byName  map[string]*Group
	latency map[[2]string]time.Duration
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		byName:  make(map[string]*Group),
		latency: make(map[[2]string]time.Duration),
	}
}

// AddGroup registers a group. It returns an error for duplicate names,
// or if the prefix partially overlaps an existing group (full nesting is
// allowed, straddling is not).
func (t *Topology) AddGroup(g Group) (*Group, error) {
	if _, dup := t.byName[g.Name]; dup {
		return nil, fmt.Errorf("topo: duplicate group %q", g.Name)
	}
	for _, other := range t.groups {
		if g.Prefix.Overlaps(other.Prefix) &&
			!g.Prefix.ContainsPrefix(other.Prefix) && !other.Prefix.ContainsPrefix(g.Prefix) {
			return nil, fmt.Errorf("topo: group %q prefix %v straddles %q (%v)",
				g.Name, g.Prefix, other.Name, other.Prefix)
		}
	}
	if uint64(g.Nodes) > g.Prefix.Size() {
		return nil, fmt.Errorf("topo: group %q wants %d nodes in %v", g.Name, g.Nodes, g.Prefix)
	}
	gp := g
	t.groups = append(t.groups, &gp)
	t.byName[g.Name] = &gp
	return &gp, nil
}

// MustAddGroup is AddGroup that panics on error; for literal topologies.
func (t *Topology) MustAddGroup(g Group) *Group {
	gp, err := t.AddGroup(g)
	if err != nil {
		panic(err)
	}
	return gp
}

// SetLatency declares the one-way latency between two groups, in both
// directions. Both groups must exist.
func (t *Topology) SetLatency(a, b string, d time.Duration) error {
	if _, ok := t.byName[a]; !ok {
		return fmt.Errorf("topo: unknown group %q", a)
	}
	if _, ok := t.byName[b]; !ok {
		return fmt.Errorf("topo: unknown group %q", b)
	}
	t.latency[[2]string{a, b}] = d
	t.latency[[2]string{b, a}] = d
	return nil
}

// MustSetLatency is SetLatency that panics on error.
func (t *Topology) MustSetLatency(a, b string, d time.Duration) {
	if err := t.SetLatency(a, b, d); err != nil {
		panic(err)
	}
}

// Groups returns all groups in registration order.
func (t *Topology) Groups() []*Group { return t.groups }

// Group returns the group with the given name, or nil.
func (t *Topology) Group(name string) *Group { return t.byName[name] }

// LeafGroups returns the groups that actually hold nodes (Nodes > 0).
func (t *Topology) LeafGroups() []*Group {
	var leaves []*Group
	for _, g := range t.groups {
		if g.Nodes > 0 {
			leaves = append(leaves, g)
		}
	}
	return leaves
}

// chain returns the groups containing a, most specific first.
func (t *Topology) chain(a ip.Addr) []*Group {
	var c []*Group
	for _, g := range t.groups {
		if g.Prefix.Contains(a) {
			c = append(c, g)
		}
	}
	sort.Slice(c, func(i, j int) bool { return c[i].Prefix.Bits() > c[j].Prefix.Bits() })
	return c
}

// Locate returns the most specific group containing a, or nil.
func (t *Topology) Locate(a ip.Addr) *Group {
	c := t.chain(a)
	if len(c) == 0 {
		return nil
	}
	return c[0]
}

// GroupLatency returns the inter-group one-way latency between the
// groups of src and dst: the latency declared for the most specific
// (src-group, dst-group) ancestor pair. Nodes under the same leaf group
// with no declared pair get zero (they only pay their access links).
func (t *Topology) GroupLatency(src, dst ip.Addr) time.Duration {
	sc := t.chain(src)
	dc := t.chain(dst)
	for _, sg := range sc {
		for _, dg := range dc {
			if d, ok := t.latency[[2]string{sg.Name, dg.Name}]; ok {
				return d
			}
		}
	}
	return 0
}

// PathLatency returns the modelled one-way latency from src to dst:
// egress access latency + inter-group latency + ingress access latency.
// This is exactly the decomposition of the paper's Fig 7 (e.g. 20 ms +
// 400 ms + 5 ms for 10.1.3.207 → 10.2.2.117).
func (t *Topology) PathLatency(src, dst ip.Addr) time.Duration {
	var total time.Duration
	if g := t.Locate(src); g != nil {
		total += g.Class.Latency
	}
	total += t.GroupLatency(src, dst)
	if g := t.Locate(dst); g != nil {
		total += g.Class.Latency
	}
	return total
}

// TotalNodes sums the node counts of all leaf groups.
func (t *Topology) TotalNodes() int {
	n := 0
	for _, g := range t.LeafGroups() {
		n += g.Nodes
	}
	return n
}

// Fig7 builds the exact topology of the paper's Fig 7: three top-level
// regions (10.1/16 with three DSL/modem ISPs, 10.2/16 campus, 10.3/16
// office) with 100 ms latency between the 10.1 ISPs, and 400 ms / 600 ms
// / 1 s between regions.
func Fig7() *Topology {
	t := New()
	t.MustAddGroup(Group{Name: "region-1", Prefix: ip.MustParsePrefix("10.1.0.0/16")})
	t.MustAddGroup(Group{Name: "isp-modem", Prefix: ip.MustParsePrefix("10.1.1.0/24"), Class: Modem, Nodes: 250})
	t.MustAddGroup(Group{Name: "isp-slow-dsl", Prefix: ip.MustParsePrefix("10.1.2.0/24"), Class: SlowDSL, Nodes: 250})
	t.MustAddGroup(Group{Name: "isp-fast-dsl", Prefix: ip.MustParsePrefix("10.1.3.0/24"), Class: FastDSL, Nodes: 250})
	t.MustAddGroup(Group{Name: "region-2", Prefix: ip.MustParsePrefix("10.2.0.0/16"), Class: Campus, Nodes: 1000})
	t.MustAddGroup(Group{Name: "region-3", Prefix: ip.MustParsePrefix("10.3.0.0/16"), Class: Office, Nodes: 1000})
	t.MustSetLatency("isp-modem", "isp-slow-dsl", 100*time.Millisecond)
	t.MustSetLatency("isp-modem", "isp-fast-dsl", 100*time.Millisecond)
	t.MustSetLatency("isp-slow-dsl", "isp-fast-dsl", 100*time.Millisecond)
	t.MustSetLatency("region-1", "region-2", 400*time.Millisecond)
	t.MustSetLatency("region-1", "region-3", 600*time.Millisecond)
	t.MustSetLatency("region-2", "region-3", time.Second)
	return t
}

// Uniform builds a single-group topology of n nodes sharing one link
// class — the configuration of the paper's BitTorrent experiments
// (every node on a DSL-like link, no locality).
func Uniform(n int, class LinkClass) *Topology {
	t := New()
	prefix := ip.MustParsePrefix("10.0.0.0/8")
	t.MustAddGroup(Group{Name: "swarm", Prefix: prefix, Class: class, Nodes: n})
	return t
}
