package topo

import (
	"testing"
	"time"

	"repro/internal/ip"
)

func TestAddGroupDuplicateName(t *testing.T) {
	tp := New()
	tp.MustAddGroup(Group{Name: "a", Prefix: ip.MustParsePrefix("10.1.0.0/16")})
	if _, err := tp.AddGroup(Group{Name: "a", Prefix: ip.MustParsePrefix("10.2.0.0/16")}); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestAddGroupNestingAllowed(t *testing.T) {
	tp := New()
	tp.MustAddGroup(Group{Name: "outer", Prefix: ip.MustParsePrefix("10.1.0.0/16")})
	if _, err := tp.AddGroup(Group{Name: "inner", Prefix: ip.MustParsePrefix("10.1.3.0/24"), Nodes: 10}); err != nil {
		t.Fatalf("nesting should be allowed: %v", err)
	}
}

func TestAddGroupTooManyNodes(t *testing.T) {
	tp := New()
	if _, err := tp.AddGroup(Group{Name: "x", Prefix: ip.MustParsePrefix("10.1.3.0/24"), Nodes: 300}); err == nil {
		t.Fatal("300 nodes cannot fit a /24")
	}
}

func TestSetLatencyUnknownGroup(t *testing.T) {
	tp := New()
	tp.MustAddGroup(Group{Name: "a", Prefix: ip.MustParsePrefix("10.1.0.0/16")})
	if err := tp.SetLatency("a", "nope", time.Second); err == nil {
		t.Fatal("unknown group should fail")
	}
}

func TestLocateMostSpecific(t *testing.T) {
	tp := Fig7()
	g := tp.Locate(ip.MustParseAddr("10.1.3.207"))
	if g == nil || g.Name != "isp-fast-dsl" {
		t.Fatalf("Locate = %v, want isp-fast-dsl", g)
	}
	if tp.Locate(ip.MustParseAddr("192.168.38.1")) != nil {
		t.Fatal("admin subnet should not be located")
	}
}

func TestFig7GroupLatencies(t *testing.T) {
	tp := Fig7()
	cases := []struct {
		src, dst string
		want     time.Duration
	}{
		{"10.1.3.207", "10.2.2.117", 400 * time.Millisecond}, // region-1 ↔ region-2
		{"10.1.3.207", "10.1.1.5", 100 * time.Millisecond},   // ISP ↔ ISP inside region 1
		{"10.1.3.207", "10.3.0.9", 600 * time.Millisecond},   // region-1 ↔ region-3
		{"10.2.2.117", "10.3.0.9", 1000 * time.Millisecond},  // region-2 ↔ region-3
		{"10.1.3.207", "10.1.3.10", 0},                       // same ISP
	}
	for _, c := range cases {
		got := tp.GroupLatency(ip.MustParseAddr(c.src), ip.MustParseAddr(c.dst))
		if got != c.want {
			t.Errorf("GroupLatency(%s→%s) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestFig7PathLatencyDecomposition(t *testing.T) {
	// The paper's worked example: 10.1.3.207 → 10.2.2.117 one way is
	// 20 ms (fast-dsl egress) + 400 ms (region pair) + 5 ms (campus
	// ingress) = 425 ms; the measured RTT was 853 ms (850 + overhead).
	tp := Fig7()
	oneWay := tp.PathLatency(ip.MustParseAddr("10.1.3.207"), ip.MustParseAddr("10.2.2.117"))
	if oneWay != 425*time.Millisecond {
		t.Fatalf("one-way latency = %v, want 425ms", oneWay)
	}
	back := tp.PathLatency(ip.MustParseAddr("10.2.2.117"), ip.MustParseAddr("10.1.3.207"))
	if oneWay+back != 850*time.Millisecond {
		t.Fatalf("model RTT = %v, want 850ms", oneWay+back)
	}
}

func TestGroupLatencySymmetric(t *testing.T) {
	tp := Fig7()
	a, b := ip.MustParseAddr("10.1.1.1"), ip.MustParseAddr("10.3.1.1")
	if tp.GroupLatency(a, b) != tp.GroupLatency(b, a) {
		t.Fatal("group latency must be symmetric")
	}
}

func TestFig7NodeCount(t *testing.T) {
	tp := Fig7()
	if got := tp.TotalNodes(); got != 2750 {
		t.Fatalf("TotalNodes = %d, want 2750 (3×250 + 2×1000)", got)
	}
	if len(tp.LeafGroups()) != 5 {
		t.Fatalf("leaf groups = %d, want 5", len(tp.LeafGroups()))
	}
}

func TestUniformTopology(t *testing.T) {
	tp := Uniform(160, DSL)
	if tp.TotalNodes() != 160 {
		t.Fatalf("TotalNodes = %d", tp.TotalNodes())
	}
	g := tp.Locate(ip.MustParseAddr("10.0.0.5"))
	if g == nil || g.Class.Name != "dsl" {
		t.Fatalf("Locate = %+v", g)
	}
	if tp.PathLatency(ip.MustParseAddr("10.0.0.1"), ip.MustParseAddr("10.0.0.2")) != 60*time.Millisecond {
		t.Fatal("uniform path latency should be 2×30ms access latency")
	}
}

func TestDSLClassMatchesPaper(t *testing.T) {
	if DSL.Down != 2_000_000 || DSL.Up != 128_000 || DSL.Latency != 30*time.Millisecond {
		t.Fatalf("DSL class drifted from the paper: %+v", DSL)
	}
}

func TestStraddlingPrefixRejected(t *testing.T) {
	tp := New()
	tp.MustAddGroup(Group{Name: "a", Prefix: ip.MustParsePrefix("10.1.0.0/16")})
	// /8 contains the /16 — allowed (nesting), not straddling.
	if _, err := tp.AddGroup(Group{Name: "b", Prefix: ip.MustParsePrefix("10.0.0.0/8")}); err != nil {
		t.Fatalf("containment should be allowed: %v", err)
	}
}

func TestGroupLookupByName(t *testing.T) {
	tp := Fig7()
	if tp.Group("region-2") == nil {
		t.Fatal("Group lookup failed")
	}
	if tp.Group("nope") != nil {
		t.Fatal("unknown group should be nil")
	}
}
