// Package trace records structured experiment events on the virtual
// timeline — the observability side of an experimentation platform
// (the paper instruments its BitTorrent client by time-stamping its
// output; here the platform itself can time-stamp everything).
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Event is one time-stamped record.
type Event struct {
	At   sim.Time
	Cat  string // category: "net.send", "bt.piece", "chord.lookup", ...
	Node string // originating node (address or name)
	Msg  string
}

// Log is a bounded in-memory event recorder. A zero Log is unusable;
// create one with New. Methods are safe from simulated goroutines and
// kernel callbacks (the sequential kernel serializes them).
type Log struct {
	max    int
	events []Event
	counts map[string]uint64
	drops  uint64
}

// New returns a log keeping at most max events (older events are
// discarded first; counters keep counting). max <= 0 means unbounded.
func New(max int) *Log {
	return &Log{max: max, counts: make(map[string]uint64)}
}

// Add records an event.
func (l *Log) Add(at sim.Time, cat, node, format string, args ...any) {
	l.counts[cat]++
	if l.max > 0 && len(l.events) >= l.max {
		// Drop the oldest half in one move to amortize.
		n := copy(l.events, l.events[len(l.events)/2:])
		l.events = l.events[:n]
		l.drops++
	}
	l.events = append(l.events, Event{At: at, Cat: cat, Node: node, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Count returns how many events of a category were ever recorded
// (including discarded ones).
func (l *Log) Count(cat string) uint64 { return l.counts[cat] }

// Events returns the retained events in order. The slice is shared; do
// not mutate.
func (l *Log) Events() []Event { return l.events }

// Filter returns retained events of one category.
func (l *Log) Filter(cat string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}

// Between returns retained events within [from, to).
func (l *Log) Between(from, to sim.Time) []Event {
	var out []Event
	for _, e := range l.events {
		if e.At >= from && e.At < to {
			out = append(out, e)
		}
	}
	return out
}

// Render writes the retained events as a readable timeline.
func (l *Log) Render(w io.Writer) error {
	for _, e := range l.events {
		if _, err := fmt.Fprintf(w, "%12s  %-12s %-16s %s\n",
			e.At.String(), e.Cat, e.Node, e.Msg); err != nil {
			return err
		}
	}
	return nil
}
