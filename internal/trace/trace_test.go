package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func at(s int) sim.Time { return sim.Time(time.Duration(s) * time.Second) }

func TestAddAndFilter(t *testing.T) {
	l := New(0)
	l.Add(at(1), "net.send", "10.0.0.1", "msg %d", 1)
	l.Add(at(2), "bt.piece", "10.0.0.2", "piece %d", 7)
	l.Add(at(3), "net.send", "10.0.0.1", "msg %d", 2)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	sends := l.Filter("net.send")
	if len(sends) != 2 || sends[1].Msg != "msg 2" {
		t.Fatalf("filter = %+v", sends)
	}
	if l.Count("net.send") != 2 || l.Count("bt.piece") != 1 {
		t.Fatal("counts wrong")
	}
	if l.Count("nothing") != 0 {
		t.Fatal("unknown category should count 0")
	}
}

func TestBounded(t *testing.T) {
	l := New(10)
	for i := 0; i < 100; i++ {
		l.Add(at(i), "c", "n", "e%d", i)
	}
	if l.Len() > 10 {
		t.Fatalf("len = %d, want ≤ 10", l.Len())
	}
	if l.Count("c") != 100 {
		t.Fatalf("count = %d, want 100 despite truncation", l.Count("c"))
	}
	// The newest event survives.
	events := l.Events()
	if events[len(events)-1].Msg != "e99" {
		t.Fatalf("newest lost: %+v", events[len(events)-1])
	}
}

func TestBetween(t *testing.T) {
	l := New(0)
	for i := 0; i < 10; i++ {
		l.Add(at(i), "c", "n", "e%d", i)
	}
	mid := l.Between(at(3), at(6))
	if len(mid) != 3 || mid[0].Msg != "e3" || mid[2].Msg != "e5" {
		t.Fatalf("between = %+v", mid)
	}
}

func TestRender(t *testing.T) {
	l := New(0)
	l.Add(at(1), "chord.lookup", "10.0.0.5", "key abc -> node 7")
	var sb strings.Builder
	if err := l.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "chord.lookup") || !strings.Contains(out, "10.0.0.5") {
		t.Fatalf("render = %q", out)
	}
}
