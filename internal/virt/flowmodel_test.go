package virt

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// nicContention sends one bulk datagram from each of n virtual nodes
// folded onto phys0 to n receivers on phys1 simultaneously, so every
// transfer crosses the two shared physical NICs, and returns the
// per-receiver delivery instants.
func nicContention(t *testing.T, model netem.ModelKind, n int) []sim.Time {
	t.Helper()
	k := sim.New(1)
	cfg := DefaultConfig(nil)
	cfg.NIC = netem.PipeConfig{Bandwidth: 10 * netem.Mbps, Delay: 50 * time.Microsecond}
	cluster, err := NewCluster(k, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ncfg := vnet.DefaultConfig()
	ncfg.Model = model
	net := vnet.NewNetwork(k, cluster, ncfg)

	// Unconstrained access links: the physical NICs are the only
	// bottleneck, exactly the paper's folding-limit observation ("the
	// first limiting factor was the network speed").
	var senders, receivers []*vnet.Host
	for i := 0; i < n; i++ {
		s, err := net.AddHost(ip.MustParseAddr("10.0.0.1").Add(uint32(i)), netem.PipeConfig{}, netem.PipeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := net.AddHost(ip.MustParseAddr("10.0.1.1").Add(uint32(i)), netem.PipeConfig{}, netem.PipeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		senders, receivers = append(senders, s), append(receivers, r)
	}
	if err := cluster.PlaceSuccessive(append(append([]*vnet.Host{}, senders...), receivers...), n); err != nil {
		t.Fatal(err)
	}

	const size = 1_250_000 // 10 Mbit: alone, 1 s through the 10 Mbps NIC
	done := make([]sim.Time, n)
	for i := range receivers {
		i := i
		k.Go(fmt.Sprintf("recv-%d", i), func(p *sim.Proc) {
			pc, err := receivers[i].ListenPacket(p, 7000)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := pc.RecvFrom(p); err == nil {
				done[i] = p.Now()
			}
		})
	}
	for i := range senders {
		i := i
		k.Go(fmt.Sprintf("send-%d", i), func(p *sim.Proc) {
			pc, err := senders[i].ListenPacket(p, 7001)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(time.Second)
			pc.SendTo(p, ip.Endpoint{Addr: receivers[i].Addr(), Port: 7000}, make([]byte, size))
		})
	}
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	return done
}

// TestClusterNICSharing: under the flow model, transfers folded onto
// one physical node share its NIC max-min fair and finish together;
// under the pipe model the NIC cursor serializes them into a
// staircase. This is the cross-traffic scenario the flow engine
// exists for.
func TestClusterNICSharing(t *testing.T) {
	const n = 4
	pipe := nicContention(t, netem.ModelPipe, n)
	flow := nicContention(t, netem.ModelFlow, n)

	spread := func(ts []sim.Time) time.Duration {
		min, max := ts[0], ts[0]
		for _, v := range ts {
			if v == 0 {
				t.Fatalf("a transfer did not complete: %v", ts)
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max.Sub(min)
	}
	if s := spread(pipe); s < 2*time.Second {
		t.Errorf("pipe model spread = %v, want a serialized staircase (>= 2s)", s)
	}
	if s := spread(flow); s > 10*time.Millisecond {
		t.Errorf("flow model spread = %v, want simultaneous completion", s)
	}
	// Fair sharing conserves capacity: the shared completion must land
	// near the staircase's last step (n seconds of NIC time), not
	// before the pipe model's first completion.
	if flow[0] < pipe[0] {
		t.Errorf("flow completion %v earlier than uncontended pipe completion %v", flow[0], pipe[0])
	}
}
