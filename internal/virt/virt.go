// Package virt models P2PLab's physical substrate: a cluster of physical
// nodes, each hosting many virtual nodes (the folding ratio), with a
// host NIC, a CPU budget and an IPFW rule table per physical node.
//
// The package implements vnet.Fabric: every message between two virtual
// nodes additionally traverses the sending and receiving physical nodes'
// NIC pipes and CPU pipes, is charged the firewall rule-evaluation cost
// on egress and ingress, and picks up the inter-group latency of the
// topology. This is what makes the paper's folding-ratio experiment
// (Fig 9) and its observed limit ("the first limiting factor was the
// network speed" — host NIC saturation) reproducible.
//
// One fidelity note: in real P2PLab the per-node Dummynet pipes *are*
// firewall rules. Here the access-link pipes live on the vnet hosts and
// the per-virtual-node firewall entries are Count rules, so bandwidth is
// shaped exactly once while the rule table keeps the paper's size and
// linear evaluation cost (two rules per hosted virtual node plus one
// rule per reachable group pair).
//
// The fabric is link-model agnostic: the NIC and CPU pipes it adds to
// each route are charged by whichever model the network was built with
// (vnet.Config.Model). Under the flow model the shared physical NIC
// becomes a genuine contention point — virtual nodes folded onto one
// physical node split its capacity max-min fair instead of queueing
// FIFO — which is what makes oversubscribed-cluster studies
// meaningful (see TestClusterNICSharing).
package virt

import (
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// Config describes the physical cluster.
type Config struct {
	// AdminSubnet is the physical nodes' administration network
	// (paper Fig 4: 192.168.38.0/24).
	AdminSubnet ip.Prefix
	// NIC is the physical interface pipe configuration, applied in each
	// direction (default: 1 Gb/s, 50 µs).
	NIC netem.PipeConfig
	// CPU throughput available for message processing, in bytes/second
	// of payload handled (default 1 GB/s). Zero disables CPU modelling.
	CPUBytesPerSec int64
	// PerMessageCPU is the fixed processing cost per message traversal
	// (default 5 µs).
	PerMessageCPU time.Duration
	// PerRuleCost is the firewall's linear-scan cost per rule visited.
	PerRuleCost time.Duration
	// Classifier selects each physical node's packet classifier:
	// netem.ClassifierLinear (the zero value) is the faithful IPFW
	// linear scan; netem.ClassifierIndexed is the hash-indexed
	// ablation, now runnable end-to-end (`p2plab -fig 6 -classifier
	// indexed` shows the near-flat curve IPFW could not offer).
	Classifier netem.Classifier
	// Topo supplies inter-group latencies and group definitions for the
	// latency rules. May be nil for a flat cluster.
	Topo *topo.Topology
}

// DefaultConfig returns a GridExplorer-like cluster configuration:
// Gigabit Ethernet, dual-Opteron-class processing budget.
func DefaultConfig(t *topo.Topology) Config {
	return Config{
		AdminSubnet:    ip.MustParsePrefix("192.168.38.0/24"),
		NIC:            netem.PipeConfig{Bandwidth: 1 * netem.Gbps, Delay: 50 * time.Microsecond},
		CPUBytesPerSec: 1 << 30,
		PerMessageCPU:  5 * time.Microsecond,
		PerRuleCost:    netem.DefaultPerRuleCost,
		Topo:           t,
	}
}

// PhysNode is one physical machine of the cluster.
type PhysNode struct {
	name      string
	admin     ip.Addr
	nicOut    *netem.Pipe
	nicIn     *netem.Pipe
	cpu       *netem.Pipe
	rules     *netem.RuleSet
	aliases   []ip.Addr
	groupSeen map[[2]string]bool // group-pair latency rules installed
}

// Name returns the node's name (phys0, phys1, ...).
func (pn *PhysNode) Name() string { return pn.name }

// AdminAddr returns the node's administration address.
func (pn *PhysNode) AdminAddr() ip.Addr { return pn.admin }

// Aliases returns the virtual-node addresses configured on this node's
// interface, in placement order.
func (pn *PhysNode) Aliases() []ip.Addr { return pn.aliases }

// Rules returns the node's firewall table.
func (pn *PhysNode) Rules() *netem.RuleSet { return pn.rules }

// NICOut and NICIn expose the physical interface pipes.
func (pn *PhysNode) NICOut() *netem.Pipe { return pn.nicOut }
func (pn *PhysNode) NICIn() *netem.Pipe  { return pn.nicIn }

// Cluster is a set of physical nodes and the placement of virtual nodes
// onto them. It implements vnet.Fabric.
type Cluster struct {
	k         *sim.Kernel
	cfg       Config
	nodes     []*PhysNode
	placement map[ip.Addr]*PhysNode
	vcpu      map[ip.Addr]*netem.Pipe // per-virtual-node CPU throttles
}

// NewCluster creates n physical nodes with administration addresses
// allocated from the admin subnet.
func NewCluster(k *sim.Kernel, n int, cfg Config) (*Cluster, error) {
	if cfg.AdminSubnet.Bits() == 0 {
		cfg.AdminSubnet = ip.MustParsePrefix("192.168.38.0/24")
	}
	if uint64(n)+1 > cfg.AdminSubnet.Size() {
		return nil, fmt.Errorf("virt: %d nodes do not fit admin subnet %v", n, cfg.AdminSubnet)
	}
	c := &Cluster{
		k:         k,
		cfg:       cfg,
		placement: make(map[ip.Addr]*PhysNode),
		vcpu:      make(map[ip.Addr]*netem.Pipe),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("phys%d", i)
		pn := &PhysNode{
			name:      name,
			admin:     cfg.AdminSubnet.Nth(uint32(i + 1)),
			nicOut:    netem.NewPipe(k, name+"/nic-out", cfg.NIC),
			nicIn:     netem.NewPipe(k, name+"/nic-in", cfg.NIC),
			rules:     netem.NewRuleSet(),
			groupSeen: make(map[[2]string]bool),
		}
		pn.rules.PerRuleCost = cfg.PerRuleCost
		pn.rules.SetClassifier(cfg.Classifier)
		if cfg.CPUBytesPerSec > 0 {
			pn.cpu = netem.NewPipe(k, name+"/cpu", netem.PipeConfig{Bandwidth: cfg.CPUBytesPerSec * 8})
		}
		c.nodes = append(c.nodes, pn)
	}
	return c, nil
}

// Nodes returns the physical nodes in order.
func (c *Cluster) Nodes() []*PhysNode { return c.nodes }

// Node returns the i-th physical node.
func (c *Cluster) Node(i int) *PhysNode { return c.nodes[i] }

// NodeOf returns the physical node hosting addr, or nil if unplaced.
func (c *Cluster) NodeOf(addr ip.Addr) *PhysNode { return c.placement[addr] }

// place assigns one virtual address to a physical node: registers the
// interface alias, installs the two per-virtual-node firewall rules
// (incoming and outgoing packets — the paper's "two rules for each
// hosted virtual node") and the group-latency rules its groups need.
func (c *Cluster) place(addr ip.Addr, pn *PhysNode) error {
	if c.cfg.AdminSubnet.Contains(addr) {
		return fmt.Errorf("virt: %v collides with admin subnet %v", addr, c.cfg.AdminSubnet)
	}
	if prev := c.placement[addr]; prev != nil {
		return fmt.Errorf("virt: %v already placed on %s", addr, prev.name)
	}
	c.placement[addr] = pn
	pn.aliases = append(pn.aliases, addr)
	host := ip.NewPrefix(addr, 32)
	pn.rules.AddCount(host, ip.Prefix{}) // outgoing packets
	pn.rules.AddCount(ip.Prefix{}, host) // incoming packets
	if t := c.cfg.Topo; t != nil {
		c.installGroupRules(pn, addr)
	}
	return nil
}

// installGroupRules adds one rule per (group of addr, other group) pair
// with a declared latency, as in the paper's Fig 7 walk-through.
func (c *Cluster) installGroupRules(pn *PhysNode, addr ip.Addr) {
	t := c.cfg.Topo
	g := t.Locate(addr)
	if g == nil {
		return
	}
	for _, other := range t.Groups() {
		if other.Name == g.Name {
			continue
		}
		key := [2]string{g.Name, other.Name}
		if pn.groupSeen[key] {
			continue
		}
		if t.GroupLatency(g.Prefix.Addr(), other.Prefix.Addr()) == 0 {
			continue
		}
		pn.groupSeen[key] = true
		pn.rules.AddCount(g.Prefix, other.Prefix)
	}
}

// PlaceSuccessive deploys hosts perNode at a time: the first perNode
// hosts on phys0, the next on phys1, and so on — the paper's
// "deployed successively on 160 physical nodes, 16 physical nodes (10
// virtual nodes per physical node), 8, 4 and 2".
func (c *Cluster) PlaceSuccessive(hosts []*vnet.Host, perNode int) error {
	if perNode <= 0 {
		return fmt.Errorf("virt: perNode must be positive, got %d", perNode)
	}
	if (len(hosts)+perNode-1)/perNode > len(c.nodes) {
		return fmt.Errorf("virt: %d hosts at %d per node exceed %d physical nodes",
			len(hosts), perNode, len(c.nodes))
	}
	for i, h := range hosts {
		if err := c.place(h.Addr(), c.nodes[i/perNode]); err != nil {
			return err
		}
	}
	return nil
}

// PlaceRoundRobin deploys hosts one per physical node, wrapping around.
func (c *Cluster) PlaceRoundRobin(hosts []*vnet.Host) error {
	for i, h := range hosts {
		if err := c.place(h.Addr(), c.nodes[i%len(c.nodes)]); err != nil {
			return err
		}
	}
	return nil
}

// FoldingRatio returns virtual nodes per used physical node (the
// paper's headline virtualization metric).
func (c *Cluster) FoldingRatio() float64 {
	used := 0
	for _, pn := range c.nodes {
		if len(pn.aliases) > 0 {
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return float64(len(c.placement)) / float64(used)
}

// SetVirtualCPU assigns a per-virtual-node processing rate, in bytes
// of message payload handled per second. This implements the extension
// the paper identifies as missing from process-level virtualization:
// "it is not possible to perform experiments where virtual processors
// of different speeds are assigned to instances. This approach is
// therefore not suitable for the study of Desktop Computing systems."
// Every message to or from the node passes through its private CPU
// pipe, so a slow virtual processor delays and serializes that node's
// traffic without affecting co-hosted nodes.
func (c *Cluster) SetVirtualCPU(addr ip.Addr, bytesPerSec int64) {
	if bytesPerSec <= 0 {
		delete(c.vcpu, addr)
		return
	}
	if p, exists := c.vcpu[addr]; exists {
		p.SetBandwidth(bytesPerSec * 8)
		return
	}
	c.vcpu[addr] = netem.NewPipe(c.k, addr.String()+"/vcpu",
		netem.PipeConfig{Bandwidth: bytesPerSec * 8})
}

// VirtualCPU returns the node's private CPU pipe, or nil when the node
// runs at full speed.
func (c *Cluster) VirtualCPU(addr ip.Addr) *netem.Pipe { return c.vcpu[addr] }

// Route implements vnet.Fabric. The message is charged: the egress
// firewall scan, the source NIC, the inter-group latency, the
// destination NIC, the ingress firewall scan, and CPU processing at
// both ends. Messages between virtual nodes of the same physical node
// skip the NIC (loopback) but still pay the firewall and CPU.
func (c *Cluster) Route(src, dst ip.Addr, size int) vnet.Route {
	var r vnet.Route
	sp := c.placement[src]
	dp := c.placement[dst]
	if sp != nil {
		v := sp.rules.Eval(src, dst)
		r.Cost += v.Cost
		if v.Deny {
			r.Drop = true
			return r
		}
		r.Cost += c.cfg.PerMessageCPU
	}
	if dp != nil {
		v := dp.rules.Eval(src, dst)
		r.Cost += v.Cost
		if v.Deny {
			r.Drop = true
			return r
		}
		r.Cost += c.cfg.PerMessageCPU
	}
	if vp := c.vcpu[src]; vp != nil {
		r.Pipes = append(r.Pipes, vp)
	}
	if sp != nil && dp != nil && sp != dp {
		r.Pipes = append(r.Pipes, sp.nicOut)
	}
	if sp != nil && sp.cpu != nil {
		r.Pipes = append(r.Pipes, sp.cpu)
	}
	if dp != nil && dp.cpu != nil && dp != sp {
		r.Pipes = append(r.Pipes, dp.cpu)
	}
	if sp != nil && dp != nil && sp != dp {
		r.Pipes = append(r.Pipes, dp.nicIn)
	}
	if vp := c.vcpu[dst]; vp != nil && dst != src {
		r.Pipes = append(r.Pipes, vp)
	}
	if c.cfg.Topo != nil {
		r.Latency += c.cfg.Topo.GroupLatency(src, dst)
	}
	return r
}
